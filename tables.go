package vanetsim

import (
	"fmt"
	"strings"

	"vanetsim/internal/metrics"
)

// DelayRow is one line of the paper's in-text delay statistics: per trial,
// per platoon, per receiving vehicle.
type DelayRow struct {
	Trial     string
	Platoon   int
	Vehicle   string // "middle" or "trailing"
	N         int
	AvgS      float64
	MinS      float64
	MaxS      float64
	FirstS    float64 // initial packet's delay (the safety-critical one)
	SteadyS   float64 // steady-state level after the transient
	Transient int     // packets in the transient (MSER-5 truncation index)
}

// DelayTable computes the paper's per-vehicle delay statistics for a
// completed trial.
func DelayTable(r *TrialResult) []DelayRow {
	var rows []DelayRow
	add := func(platoon int, vehicle string, s *metrics.DelaySeries) {
		sm := s.Summary()
		first, _ := s.First()
		_, steady := s.SteadyState()
		rows = append(rows, DelayRow{
			Trial:     r.Config.Name,
			Platoon:   platoon,
			Vehicle:   vehicle,
			N:         sm.N,
			AvgS:      sm.Mean,
			MinS:      sm.Min,
			MaxS:      sm.Max,
			FirstS:    float64(first),
			SteadyS:   steady,
			Transient: s.TruncationIndex(),
		})
	}
	add(1, "middle", r.Platoon1.MiddleDelays())
	add(1, "trailing", r.Platoon1.TrailingDelays())
	add(2, "middle", r.Platoon2.MiddleDelays())
	add(2, "trailing", r.Platoon2.TrailingDelays())
	return rows
}

// FormatDelayTable renders delay rows as an aligned text table.
func FormatDelayTable(rows []DelayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-3s %-9s %6s %9s %9s %9s %9s %9s %5s\n",
		"trial", "pl", "vehicle", "n", "avg(s)", "min(s)", "max(s)", "first(s)", "steady(s)", "trans")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-3d %-9s %6d %9.4f %9.4f %9.4f %9.4f %9.4f %5d\n",
			r.Trial, r.Platoon, r.Vehicle, r.N, r.AvgS, r.MinS, r.MaxS, r.FirstS, r.SteadyS, r.Transient)
	}
	return b.String()
}

// ThroughputRow is one line of the paper's throughput statistics,
// including the 95% confidence analysis ("within X Mbps of the observed
// value, with a 95% confidence and a Y% relative precision").
type ThroughputRow struct {
	Trial        string
	Platoon      int
	AvgMbps      float64
	MinMbps      float64
	MaxMbps      float64
	CIHalfMbps   float64
	RelPrecision float64 // fraction, e.g. 0.053 for 5.3%
	Level        float64
}

// ThroughputTable computes throughput statistics and confidence intervals
// for both platoons of a completed trial, using 10 batch means at 95%
// confidence.
func ThroughputTable(r *TrialResult) []ThroughputRow {
	const (
		batches = 10
		level   = 0.95
	)
	var rows []ThroughputRow
	add := func(platoon int, p *PlatoonResult) {
		sm := p.Throughput().Summary(r.Config.Duration)
		ci := p.Throughput().CI(r.Config.Duration, batches, level)
		rows = append(rows, ThroughputRow{
			Trial:        r.Config.Name,
			Platoon:      platoon,
			AvgMbps:      sm.Mean,
			MinMbps:      sm.Min,
			MaxMbps:      sm.Max,
			CIHalfMbps:   ci.HalfWidth,
			RelPrecision: ci.RelPrecision(),
			Level:        level,
		})
	}
	add(1, r.Platoon1)
	add(2, r.Platoon2)
	return rows
}

// FormatThroughputTable renders throughput rows as an aligned text table.
func FormatThroughputTable(rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-3s %10s %10s %10s %12s %8s\n",
		"trial", "pl", "avg(Mbps)", "min(Mbps)", "max(Mbps)", "95%CI(Mbps)", "relprec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-3d %10.4f %10.4f %10.4f %12.4f %7.1f%%\n",
			r.Trial, r.Platoon, r.AvgMbps, r.MinMbps, r.MaxMbps, r.CIHalfMbps, r.RelPrecision*100)
	}
	return b.String()
}

// StoppingRow is one line of the §III.E stopping-distance analysis.
type StoppingRow struct {
	Trial string
	StoppingAnalysis
}

// StoppingTable runs the paper's stopping-distance arithmetic on each
// trial's initial-packet delay (platoon 1, middle vehicle).
func StoppingTable(results ...*TrialResult) []StoppingRow {
	var rows []StoppingRow
	for _, r := range results {
		first, ok := r.Platoon1.MiddleDelays().First()
		if !ok {
			continue
		}
		rows = append(rows, StoppingRow{
			Trial:            r.Config.Name,
			StoppingAnalysis: PaperStoppingAnalysis(first),
		})
	}
	return rows
}

// FormatStoppingTable renders stopping rows as an aligned text table.
func FormatStoppingTable(rows []StoppingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %14s\n", "trial", "1st delay(s)", "travelled(m)", "% of 25 m gap")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.4f %12.2f %13.1f%%\n",
			r.Trial, float64(r.InitialDelay), r.DistanceBeforeNotice, r.FractionOfSeparation*100)
	}
	return b.String()
}
