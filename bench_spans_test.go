// Span-tracing overhead benchmark pair: BenchmarkTrial1SpansDisarmed and
// BenchmarkTrial1Spans run the identical deterministic trial with causal
// tracing off and on. Compare them with
//
//	go test -bench='BenchmarkTrial1Spans' -benchmem .
//
// Disarmed, every instrumented seam pays exactly one nil comparison, so
// the disarmed run must match BenchmarkTrial1Baseline to the allocation —
// BenchmarkTrial1SpansDisarmed is in the bench-guard baseline
// (BENCH_PR3.json) precisely to pin that. The armed run appends one Event
// per lifecycle step per packet and is deliberately NOT guarded: its cost
// scales with traffic, not with hot-path discipline.
package vanetsim_test

import (
	"testing"

	"vanetsim"
)

func benchTrial1Spans(b *testing.B, spans bool) {
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	cfg.Spans = spans
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := vanetsim.RunTrial(cfg)
		if spans {
			if len(r.Spans) == 0 {
				b.Fatal("armed run recorded no span events")
			}
		} else if r.Spans != nil {
			b.Fatal("disarmed run leaked span events")
		}
	}
}

func BenchmarkTrial1SpansDisarmed(b *testing.B) { benchTrial1Spans(b, false) }
func BenchmarkTrial1Spans(b *testing.B)         { benchTrial1Spans(b, true) }
