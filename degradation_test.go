package vanetsim_test

import (
	"math"
	"strings"
	"testing"

	"vanetsim"
)

func shortDegradation(lossProbs ...float64) vanetsim.DegradationConfig {
	cfg := vanetsim.DefaultDegradation(vanetsim.MACTDMA)
	cfg.Base.Duration = vanetsim.Seconds(30)
	cfg.LossProbs = lossProbs
	return cfg
}

func TestDegradationSweepMonotoneInjection(t *testing.T) {
	cfg := shortDegradation(0, 0.1, 0.3)
	pts := vanetsim.RunDegradation(cfg)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Injected != 0 {
		t.Fatalf("clean point injected %d drops", pts[0].Injected)
	}
	// Absolute injection counts are not monotone — heavier loss collapses
	// TCP's offered load, shrinking the frame population — so assert only
	// that every faulted point injects.
	if pts[1].Injected == 0 || pts[2].Injected == 0 {
		t.Fatalf("faulted points injected nothing: %d, %d", pts[1].Injected, pts[2].Injected)
	}
	if pts[2].ThroughputMbps >= pts[0].ThroughputMbps {
		t.Fatalf("30%% loss did not cut throughput: %.4f vs %.4f Mbps",
			pts[2].ThroughputMbps, pts[0].ThroughputMbps)
	}
	if pts[2].Retransmits <= pts[0].Retransmits {
		t.Fatalf("30%% loss did not force TCP retransmissions: %d vs %d",
			pts[2].Retransmits, pts[0].Retransmits)
	}
	// The default braking model's 5 m margin already makes the paper's
	// 25 m / 50 mph point marginal for the trailing vehicle, so assert
	// degradation, not absolute safety: loss can only delay the first
	// packet, never speed it up.
	if pts[2].SafetyMarginM > pts[0].SafetyMarginM {
		t.Fatalf("safety margin improved under 30%% loss: %.2f m vs %.2f m",
			pts[2].SafetyMarginM, pts[0].SafetyMarginM)
	}
	if math.IsInf(pts[0].SafetyMarginM, -1) || math.IsNaN(pts[0].FirstDelayS) {
		t.Fatal("clean channel delivered no first packet")
	}
}

func TestDegradationBurstModeAndOutage(t *testing.T) {
	cfg := shortDegradation(0.1)
	cfg.BurstLen = 4
	cfg.ShadowSigmaDB = 4
	cfg.Outage = vanetsim.FaultOutage{Node: 1, Start: 22, Duration: 5}
	pts := vanetsim.RunDegradation(cfg)
	if len(pts) != 1 || pts[0].Injected == 0 {
		t.Fatalf("burst-mode point injected nothing: %+v", pts)
	}
}

func TestDegradationOrderIndependentOfJobs(t *testing.T) {
	mk := func(jobs int) []vanetsim.DegradationPoint {
		cfg := shortDegradation(0, 0.05, 0.1, 0.2)
		cfg.Jobs = jobs
		return vanetsim.RunDegradation(cfg)
	}
	a, b := mk(1), mk(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs between -j1 and -j8:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestDegradationRenderers(t *testing.T) {
	pts := vanetsim.RunDegradation(shortDegradation(0, 0.2))
	table := vanetsim.FormatDegradationTable(pts)
	if !strings.Contains(table, "margin_m") || len(strings.Split(strings.TrimSpace(table), "\n")) != 3 {
		t.Fatalf("bad table:\n%s", table)
	}
	csv := vanetsim.DegradationCSV(pts)
	if !strings.HasPrefix(csv, "loss_prob,") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("bad csv:\n%s", csv)
	}
	if vanetsim.RunDegradation(shortDegradation()) != nil {
		t.Fatal("empty sweep must return nil")
	}
}
