package vanetsim_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"vanetsim"
)

// Shared trial results: the facade tests only read them.
var (
	once             sync.Once
	res1, res2, res3 *vanetsim.TrialResult
)

func results(t testing.TB) (*vanetsim.TrialResult, *vanetsim.TrialResult, *vanetsim.TrialResult) {
	once.Do(func() {
		res1 = vanetsim.RunTrial(vanetsim.Trial1())
		res2 = vanetsim.RunTrial(vanetsim.Trial2())
		res3 = vanetsim.RunTrial(vanetsim.Trial3())
	})
	return res1, res2, res3
}

func TestTrialConfigs(t *testing.T) {
	t1, t2, t3 := vanetsim.Trial1(), vanetsim.Trial2(), vanetsim.Trial3()
	if t1.MAC != vanetsim.MACTDMA || t1.PacketSize != 1000 {
		t.Fatalf("trial1 = %+v", t1)
	}
	if t2.MAC != vanetsim.MACTDMA || t2.PacketSize != 500 {
		t.Fatalf("trial2 = %+v", t2)
	}
	if t3.MAC != vanetsim.MAC80211 || t3.PacketSize != 1000 {
		t.Fatalf("trial3 = %+v", t3)
	}
	if math.Abs(t1.SpeedMS-22.352) > 0.01 {
		t.Fatalf("speed = %v, want 50 mph in m/s", t1.SpeedMS)
	}
}

func TestAllFiguresNonEmpty(t *testing.T) {
	r1, r2, r3 := results(t)
	figs := []vanetsim.Figure{
		vanetsim.Fig5(r1), vanetsim.Fig6(r1), vanetsim.Fig7(r1),
		vanetsim.Fig8(r2), vanetsim.Fig9(r2), vanetsim.Fig10(r2),
		vanetsim.Fig11(r3), vanetsim.Fig12(r3), vanetsim.Fig13(r3),
		vanetsim.Fig14(r3), vanetsim.Fig15(r3),
	}
	for _, f := range figs {
		if f.Len() == 0 {
			t.Errorf("%s is empty", f.ID)
		}
		if len(f.X) != len(f.Y) {
			t.Errorf("%s has mismatched axes", f.ID)
		}
	}
}

func TestTransientFiguresShorter(t *testing.T) {
	r1, _, _ := results(t)
	if vanetsim.Fig6(r1).Len() >= vanetsim.Fig5(r1).Len() {
		t.Fatal("transient figure must be a strict prefix of the overall one")
	}
}

func TestFigureCSV(t *testing.T) {
	r1, _, _ := results(t)
	csv := vanetsim.Fig7(r1).CSV()
	if !strings.HasPrefix(csv, "# Fig7") {
		t.Fatalf("CSV header missing: %q", csv[:40])
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != vanetsim.Fig7(r1).Len()+2 {
		t.Fatalf("CSV has %d lines for %d points", len(lines), vanetsim.Fig7(r1).Len())
	}
}

func TestFigureASCII(t *testing.T) {
	r1, _, _ := results(t)
	art := vanetsim.Fig5(r1).ASCII(60, 12)
	if !strings.Contains(art, "*") {
		t.Fatal("ASCII plot has no points")
	}
	if !strings.Contains(art, "packet ID") {
		t.Fatal("ASCII plot missing axis label")
	}
	empty := vanetsim.Figure{ID: "x", Title: "t"}
	if !strings.Contains(empty.ASCII(40, 8), "no data") {
		t.Fatal("empty figure should say so")
	}
}

func TestDelayTableShape(t *testing.T) {
	r1, _, _ := results(t)
	rows := vanetsim.DelayTable(r1)
	if len(rows) != 4 {
		t.Fatalf("delay table has %d rows, want 4 (2 platoons x 2 vehicles)", len(rows))
	}
	for _, row := range rows {
		if row.N == 0 {
			t.Fatalf("row %+v has no packets", row)
		}
		if row.MinS > row.AvgS || row.AvgS > row.MaxS {
			t.Fatalf("row %+v violates min<=avg<=max", row)
		}
	}
	txt := vanetsim.FormatDelayTable(rows)
	if !strings.Contains(txt, "trial1") || !strings.Contains(txt, "trailing") {
		t.Fatal("formatted delay table missing content")
	}
}

func TestThroughputTableShape(t *testing.T) {
	r1, _, _ := results(t)
	rows := vanetsim.ThroughputTable(r1)
	if len(rows) != 2 {
		t.Fatalf("throughput table has %d rows", len(rows))
	}
	for _, row := range rows {
		if row.MinMbps != 0 {
			t.Fatalf("min throughput %v, want 0 (silent prefix as in the paper)", row.MinMbps)
		}
		if row.AvgMbps <= 0 || row.MaxMbps < row.AvgMbps {
			t.Fatalf("row %+v inconsistent", row)
		}
		if row.Level != 0.95 {
			t.Fatal("confidence level must be 95% as in the paper")
		}
	}
	txt := vanetsim.FormatThroughputTable(rows)
	if !strings.Contains(txt, "95%CI") {
		t.Fatal("formatted throughput table missing CI column")
	}
}

func TestStoppingTableReproducesContrast(t *testing.T) {
	r1, _, r3 := results(t)
	rows := vanetsim.StoppingTable(r1, r3)
	if len(rows) != 2 {
		t.Fatalf("stopping table has %d rows", len(rows))
	}
	tdma, dcf := rows[0], rows[1]
	// The paper's punchline: TDMA eats a large fraction of the 25 m gap
	// before the driver knows; 802.11 a tiny one.
	if tdma.FractionOfSeparation < 10*dcf.FractionOfSeparation {
		t.Fatalf("contrast too weak: TDMA %.3f vs 802.11 %.3f",
			tdma.FractionOfSeparation, dcf.FractionOfSeparation)
	}
	txt := vanetsim.FormatStoppingTable(rows)
	if !strings.Contains(txt, "% of 25 m gap") {
		t.Fatal("formatted stopping table missing header")
	}
}

func TestPaperStoppingAnalysisNumbers(t *testing.T) {
	// The paper's published example: 0.24 s at 50 mph = 5.38 m, >20%.
	a := vanetsim.PaperStoppingAnalysis(0.24)
	if math.Abs(a.DistanceBeforeNotice-5.376) > 0.01 {
		t.Fatalf("distance = %v", a.DistanceBeforeNotice)
	}
	if a.FractionOfSeparation <= 0.20 {
		t.Fatalf("fraction = %v, want > 20%%", a.FractionOfSeparation)
	}
}

func TestAnalyzeStoppingWithBraking(t *testing.T) {
	a := vanetsim.AnalyzeStopping(0.018, 22.4, 25, 8, 0.7)
	if a.Sufficient {
		t.Fatal("50 mph with 0.7 s reaction in 25 m cannot be sufficient")
	}
	if a.BrakingDistance <= 0 {
		t.Fatal("braking distance missing")
	}
}

func TestMPHToMS(t *testing.T) {
	if v := vanetsim.MPHToMS(100); math.Abs(v-44.704) > 1e-9 {
		t.Fatalf("100 mph = %v", v)
	}
}
