// Package netlayer is the per-node network layer: it dispatches packets
// between transport agents (by port), the routing agent, and the interface
// queue + MAC below, mirroring ns-2's link-layer/routing-agent glue.
package netlayer

import (
	"fmt"

	"vanetsim/internal/mac"
	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/span"
)

// DefaultTTL is the initial IP TTL for locally originated packets (ns-2
// uses 32 for AODV scenarios).
const DefaultTTL = 32

// PortHandler is a transport endpoint bound to a local port.
type PortHandler interface {
	RecvFromNet(p *packet.Packet)
}

// Routing is the routing agent interface. AODV implements it; a static
// routing table for tests can too. The agent owns every forwarding
// decision: the network layer hands it all traffic.
type Routing interface {
	// HandleOutgoing routes a locally originated packet (IP.Src/Dst set).
	// The agent either sets IP.NextHop and transmits it via Net.Send, or
	// buffers it pending route discovery.
	HandleOutgoing(p *packet.Packet)
	// HandleIncoming processes a packet arriving from the MAC: protocol
	// control, local delivery (via Net.DeliverLocally), or forwarding.
	HandleIncoming(p *packet.Packet)
	// MacTxDone relays MAC transmission fate; ok=false signals a broken
	// link to p.Mac.Dst.
	MacTxDone(p *packet.Packet, ok bool)
}

// Stats counts network-layer outcomes.
type Stats struct {
	Sent       int // locally originated packets handed to routing
	Delivered  int // packets delivered to a local port
	NoPort     int // local deliveries with no bound handler
	IfqDropped int // packets rejected by the interface queue
}

// Net is one node's network layer. Wire it with Attach and SetRouting
// before the simulation starts.
type Net struct {
	id    packet.NodeID
	ifq   queue.Queue
	mac   mac.MAC
	route Routing
	ports map[int]PortHandler
	spans *span.Recorder
	// release recycles a fully consumed received frame back into the PHY's
	// clone pool (nil when the MAC below offers no recycling).
	release func(*packet.Packet)

	stats Stats
}

// frameReleaser is the optional MAC capability the network layer uses to
// recycle received frames it has finished with. Both bundled MACs forward
// it to phy.Radio.ReleaseFrame.
type frameReleaser interface {
	ReleaseDelivered(p *packet.Packet)
}

var _ mac.Upcall = (*Net)(nil)

// New creates a network layer for node id.
func New(id packet.NodeID) *Net {
	return &Net{id: id, ports: make(map[int]PortHandler)}
}

// ID returns the owning node's ID.
func (n *Net) ID() packet.NodeID { return n.id }

// Stats returns the layer's counters.
func (n *Net) Stats() Stats { return n.stats }

// Attach wires the interface queue and MAC below this layer.
func (n *Net) Attach(ifq queue.Queue, m mac.MAC) {
	n.ifq = ifq
	n.mac = m
	if fr, ok := m.(frameReleaser); ok {
		n.release = fr.ReleaseDelivered
	}
}

// SetRouting installs the routing agent.
func (n *Net) SetRouting(r Routing) { n.route = r }

// SetSpans wires the causal span recorder (may be nil). The recorder
// carries the run's clock, so this layer needs no scheduler of its own.
func (n *Net) SetSpans(rec *span.Recorder) { n.spans = rec }

// BindPort registers a transport handler on a local port. Binding an
// already-bound port panics: silent replacement would orphan an agent.
func (n *Net) BindPort(port int, h PortHandler) {
	if _, dup := n.ports[port]; dup {
		panic(fmt.Sprintf("netlayer: node %v port %d already bound", n.id, port))
	}
	n.ports[port] = h
}

// SendFrom originates a packet from a local transport agent. The IP
// destination and ports must be set; source and TTL are filled here.
func (n *Net) SendFrom(p *packet.Packet) {
	p.IP.Src = n.id
	if p.IP.TTL == 0 {
		p.IP.TTL = DefaultTTL
	}
	n.stats.Sent++
	n.spans.Record(span.OpEmit, span.CauseNone, n.id, p)
	n.route.HandleOutgoing(p)
}

// Send transmits a routed packet (IP.NextHop set) through the interface
// queue and MAC. Routing agents call this for both forwarded data and
// their own control packets.
func (n *Net) Send(p *packet.Packet) {
	if p.IP.NextHop == packet.None {
		panic(fmt.Sprintf("netlayer: node %v sending packet with no next hop: %v", n.id, p))
	}
	if !n.ifq.Enqueue(p) {
		n.stats.IfqDropped++
		return
	}
	n.mac.Poke()
}

// DeliverLocally dispatches a packet addressed to this node up to the
// transport handler bound to its destination port.
func (n *Net) DeliverLocally(p *packet.Packet) {
	h, ok := n.ports[p.IP.DstPort]
	if !ok {
		n.stats.NoPort++
		n.spans.Record(span.OpNetDrop, span.CauseNoPort, n.id, p)
		return
	}
	n.stats.Delivered++
	n.spans.Record(span.OpDeliver, span.CauseNone, n.id, p)
	h.RecvFromNet(p)
}

// RecvFromMac implements mac.Upcall.
func (n *Net) RecvFromMac(p *packet.Packet) {
	n.route.HandleIncoming(p)
	// Routing-control packets terminate here: the agent's handlers copy
	// whatever they keep (table entries, forwarded floods are fresh
	// packets), so the receiver's private clone — and its payload — can go
	// straight back to the PHY's pool. Data packets cannot: they may be
	// buffered for discovery, forwarded, or handed to an application.
	if p.Type.IsControl() && n.release != nil {
		n.release(p)
	}
}

// MacTxDone implements mac.Upcall.
func (n *Net) MacTxDone(p *packet.Packet, ok bool) {
	if ok {
		n.spans.Record(span.OpMacDone, span.CauseNone, n.id, p)
	} else {
		n.spans.Record(span.OpMacDone, span.CauseLinkFail, n.id, p)
	}
	n.route.MacTxDone(p, ok)
}
