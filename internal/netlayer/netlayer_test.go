package netlayer

import (
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
)

// fakeMAC records pokes.
type fakeMAC struct {
	id    packet.NodeID
	pokes int
}

func (m *fakeMAC) ID() packet.NodeID { return m.id }
func (m *fakeMAC) Poke()             { m.pokes++ }

// fakeRouting records calls.
type fakeRouting struct {
	outgoing []*packet.Packet
	incoming []*packet.Packet
	txDone   []bool
}

func (r *fakeRouting) HandleOutgoing(p *packet.Packet)     { r.outgoing = append(r.outgoing, p) }
func (r *fakeRouting) HandleIncoming(p *packet.Packet)     { r.incoming = append(r.incoming, p) }
func (r *fakeRouting) MacTxDone(_ *packet.Packet, ok bool) { r.txDone = append(r.txDone, ok) }

// fakePort records deliveries.
type fakePort struct {
	got []*packet.Packet
}

func (h *fakePort) RecvFromNet(p *packet.Packet) { h.got = append(h.got, p) }

func rig(t *testing.T) (*Net, *fakeMAC, *fakeRouting, queue.Queue) {
	t.Helper()
	n := New(7)
	m := &fakeMAC{id: 7}
	q := queue.NewDropTail(2, nil)
	r := &fakeRouting{}
	n.Attach(q, m)
	n.SetRouting(r)
	return n, m, r, q
}

func mk(f *packet.Factory) *packet.Packet { return f.New(packet.TypeTCP, 100, 0) }

func TestSendFromStampsSourceAndTTL(t *testing.T) {
	n, _, r, _ := rig(t)
	var f packet.Factory
	p := mk(&f)
	p.IP.Dst = 9
	n.SendFrom(p)
	if len(r.outgoing) != 1 {
		t.Fatal("routing did not receive the packet")
	}
	if p.IP.Src != 7 {
		t.Fatalf("source = %v, want node id", p.IP.Src)
	}
	if p.IP.TTL != DefaultTTL {
		t.Fatalf("TTL = %d, want default %d", p.IP.TTL, DefaultTTL)
	}
	if n.Stats().Sent != 1 {
		t.Fatal("Sent not counted")
	}
}

func TestSendFromPreservesExplicitTTL(t *testing.T) {
	n, _, _, _ := rig(t)
	var f packet.Factory
	p := mk(&f)
	p.IP.Dst = 9
	p.IP.TTL = 3
	n.SendFrom(p)
	if p.IP.TTL != 3 {
		t.Fatalf("TTL overwritten: %d", p.IP.TTL)
	}
}

func TestSendEnqueuesAndPokes(t *testing.T) {
	n, m, _, q := rig(t)
	var f packet.Factory
	p := mk(&f)
	p.IP.NextHop = 9
	n.Send(p)
	if q.Len() != 1 || m.pokes != 1 {
		t.Fatalf("queue=%d pokes=%d", q.Len(), m.pokes)
	}
}

func TestSendWithoutNextHopPanics(t *testing.T) {
	n, _, _, _ := rig(t)
	var f packet.Factory
	defer func() {
		if recover() == nil {
			t.Fatal("Send without next hop did not panic")
		}
	}()
	n.Send(mk(&f))
}

func TestSendCountsIfqDrops(t *testing.T) {
	n, m, _, _ := rig(t) // capacity 2
	var f packet.Factory
	for i := 0; i < 3; i++ {
		p := mk(&f)
		p.IP.NextHop = 9
		n.Send(p)
	}
	if n.Stats().IfqDropped != 1 {
		t.Fatalf("IfqDropped = %d, want 1", n.Stats().IfqDropped)
	}
	if m.pokes != 2 {
		t.Fatalf("pokes = %d: a dropped packet must not poke the MAC", m.pokes)
	}
}

func TestDeliverLocally(t *testing.T) {
	n, _, _, _ := rig(t)
	h := &fakePort{}
	n.BindPort(80, h)
	var f packet.Factory
	p := mk(&f)
	p.IP.DstPort = 80
	n.DeliverLocally(p)
	if len(h.got) != 1 || n.Stats().Delivered != 1 {
		t.Fatal("port handler not invoked")
	}
	// Unbound port: counted, not crashed.
	p2 := mk(&f)
	p2.IP.DstPort = 81
	n.DeliverLocally(p2)
	if n.Stats().NoPort != 1 {
		t.Fatalf("NoPort = %d", n.Stats().NoPort)
	}
}

func TestBindPortDuplicatePanics(t *testing.T) {
	n, _, _, _ := rig(t)
	n.BindPort(80, &fakePort{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate bind did not panic")
		}
	}()
	n.BindPort(80, &fakePort{})
}

func TestMacUpcallsForwardToRouting(t *testing.T) {
	n, _, r, _ := rig(t)
	var f packet.Factory
	p := mk(&f)
	n.RecvFromMac(p)
	if len(r.incoming) != 1 || r.incoming[0] != p {
		t.Fatal("incoming not forwarded to routing")
	}
	n.MacTxDone(p, false)
	if len(r.txDone) != 1 || r.txDone[0] {
		t.Fatal("MacTxDone not relayed")
	}
}

func TestID(t *testing.T) {
	if New(3).ID() != 3 {
		t.Fatal("ID wrong")
	}
}
