// Package anim records vehicle positions over a run and renders them as
// terminal animation frames — the role the Nam animator played in the
// paper's workflow ("the above command automatically launches the Nam
// network animator when the simulation completes").
package anim

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Sample is one node's position at one instant.
type Sample struct {
	T   sim.Time
	Pos geom.Vec2
}

// Recorder samples registered nodes' positions at a fixed interval.
type Recorder struct {
	sched    *sim.Scheduler
	interval sim.Time

	order  []packet.NodeID
	posFns map[packet.NodeID]func() geom.Vec2
	tracks map[packet.NodeID][]Sample

	running bool
	until   sim.Time
}

// NewRecorder creates a recorder sampling every interval.
func NewRecorder(sched *sim.Scheduler, interval sim.Time) *Recorder {
	if interval <= 0 {
		panic("anim: non-positive sample interval")
	}
	return &Recorder{
		sched:    sched,
		interval: interval,
		posFns:   make(map[packet.NodeID]func() geom.Vec2),
		tracks:   make(map[packet.NodeID][]Sample),
	}
}

// Track registers a node to be sampled. Call before Start.
func (r *Recorder) Track(id packet.NodeID, pos func() geom.Vec2) {
	if _, dup := r.posFns[id]; dup {
		panic(fmt.Sprintf("anim: node %v tracked twice", id))
	}
	r.order = append(r.order, id)
	r.posFns[id] = pos
}

// Start begins sampling (first sample immediately) until the given time.
func (r *Recorder) Start(until sim.Time) {
	if r.running {
		return
	}
	r.running = true
	r.until = until
	r.sample()
}

func (r *Recorder) sample() {
	now := r.sched.Now()
	if now > r.until {
		r.running = false
		return
	}
	for _, id := range r.order {
		r.tracks[id] = append(r.tracks[id], Sample{T: now, Pos: r.posFns[id]()})
	}
	r.sched.ScheduleKind(sim.KindObs, r.interval, r.sample)
}

// Nodes returns the tracked node IDs in registration order.
func (r *Recorder) Nodes() []packet.NodeID {
	out := make([]packet.NodeID, len(r.order))
	copy(out, r.order)
	return out
}

// Track samples for one node, in time order.
func (r *Recorder) Samples(id packet.NodeID) []Sample { return r.tracks[id] }

// Frames returns the number of sampling instants recorded.
func (r *Recorder) Frames() int {
	if len(r.order) == 0 {
		return 0
	}
	return len(r.tracks[r.order[0]])
}

// Viewport is the world-coordinate window rendered into frames.
type Viewport struct {
	Min, Max geom.Vec2
}

// AutoViewport returns the tightest viewport containing every recorded
// sample, padded by pad metres on each side.
func (r *Recorder) AutoViewport(pad float64) Viewport {
	lo := geom.V(math.Inf(1), math.Inf(1))
	hi := geom.V(math.Inf(-1), math.Inf(-1))
	for _, samples := range r.tracks {
		for _, s := range samples {
			lo.X = math.Min(lo.X, s.Pos.X)
			lo.Y = math.Min(lo.Y, s.Pos.Y)
			hi.X = math.Max(hi.X, s.Pos.X)
			hi.Y = math.Max(hi.Y, s.Pos.Y)
		}
	}
	if math.IsInf(lo.X, 1) {
		return Viewport{Min: geom.V(-1, -1), Max: geom.V(1, 1)}
	}
	return Viewport{
		Min: geom.V(lo.X-pad, lo.Y-pad),
		Max: geom.V(hi.X+pad, hi.Y+pad),
	}
}

// glyph assigns a stable single-character label per node.
func glyph(i int) byte {
	const alphabet = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return alphabet[i%len(alphabet)]
}

// RenderFrame draws the recorded positions at frame index f (see Frames)
// on a width×height character grid.
func (r *Recorder) RenderFrame(f int, vp Viewport, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	spanX := vp.Max.X - vp.Min.X
	spanY := vp.Max.Y - vp.Min.Y
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	var ts sim.Time
	for i, id := range r.order {
		samples := r.tracks[id]
		if f < 0 || f >= len(samples) {
			continue
		}
		s := samples[f]
		ts = s.T
		c := int((s.Pos.X - vp.Min.X) / spanX * float64(width-1))
		row := height - 1 - int((s.Pos.Y-vp.Min.Y)/spanY*float64(height-1))
		if c >= 0 && c < width && row >= 0 && row < height {
			grid[row][c] = glyph(i)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%7.2fs  [%.0f..%.0f]x[%.0f..%.0f] m\n",
		float64(ts), vp.Min.X, vp.Max.X, vp.Min.Y, vp.Max.Y)
	for _, line := range grid {
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// Play writes every stride-th frame to w.
func (r *Recorder) Play(w io.Writer, vp Viewport, width, height, stride int) error {
	if stride < 1 {
		stride = 1
	}
	for f := 0; f < r.Frames(); f += stride {
		if _, err := io.WriteString(w, r.RenderFrame(f, vp, width, height)); err != nil {
			return fmt.Errorf("anim: %w", err)
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return fmt.Errorf("anim: %w", err)
		}
	}
	return nil
}

// Legend maps glyphs back to node IDs, one per line, in registration
// order.
func (r *Recorder) Legend() string {
	var b strings.Builder
	for i, id := range r.order {
		fmt.Fprintf(&b, "%c = node %v\n", glyph(i), id)
	}
	return b.String()
}
