package anim

import (
	"strings"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/sim"
)

func TestRecorderSamplesAtInterval(t *testing.T) {
	s := sim.New()
	v := mobility.NewVehicle(1, s, geom.V(0, 0))
	r := NewRecorder(s, 1)
	r.Track(1, v.Position)
	v.SetDest(geom.V(0, 100), 10) // 10 s of travel
	r.Start(10)
	s.Run()
	samples := r.Samples(1)
	if len(samples) != 11 { // t = 0..10 inclusive
		t.Fatalf("samples = %d, want 11", len(samples))
	}
	if samples[5].T != 5 || !samples[5].Pos.ApproxEqual(geom.V(0, 50), 1e-9) {
		t.Fatalf("sample 5 = %+v", samples[5])
	}
	if r.Frames() != 11 {
		t.Fatalf("Frames = %d", r.Frames())
	}
}

func TestRecorderMultipleNodes(t *testing.T) {
	s := sim.New()
	a := mobility.NewVehicle(1, s, geom.V(0, 0))
	b := mobility.NewVehicle(2, s, geom.V(10, 0))
	r := NewRecorder(s, 0.5)
	r.Track(1, a.Position)
	r.Track(2, b.Position)
	r.Start(2)
	s.Run()
	if len(r.Nodes()) != 2 {
		t.Fatalf("nodes = %v", r.Nodes())
	}
	if len(r.Samples(1)) != len(r.Samples(2)) {
		t.Fatal("tracks out of sync")
	}
}

func TestTrackDuplicatePanics(t *testing.T) {
	s := sim.New()
	r := NewRecorder(s, 1)
	r.Track(1, func() geom.Vec2 { return geom.V(0, 0) })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Track did not panic")
		}
	}()
	r.Track(1, func() geom.Vec2 { return geom.V(0, 0) })
}

func TestNewRecorderPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewRecorder(sim.New(), 0)
}

func TestAutoViewport(t *testing.T) {
	s := sim.New()
	v := mobility.NewVehicle(1, s, geom.V(-10, 5))
	r := NewRecorder(s, 1)
	r.Track(1, v.Position)
	v.SetDest(geom.V(30, 5), 10)
	r.Start(4)
	s.Run()
	vp := r.AutoViewport(2)
	if vp.Min.X > -12+1e-9 && vp.Min.X < -12-1e-9 {
		t.Fatalf("viewport min = %v", vp.Min)
	}
	if vp.Min.X != -12 || vp.Min.Y != 3 {
		t.Fatalf("viewport min = %v, want (-12, 3)", vp.Min)
	}
	if vp.Max.Y != 7 {
		t.Fatalf("viewport max = %v", vp.Max)
	}
	// Empty recorder gets a degenerate-but-valid viewport.
	empty := NewRecorder(sim.New(), 1)
	evp := empty.AutoViewport(0)
	if evp.Max.X <= evp.Min.X {
		t.Fatal("empty viewport inverted")
	}
}

func TestRenderFrameShowsGlyphs(t *testing.T) {
	s := sim.New()
	a := mobility.NewVehicle(1, s, geom.V(0, 0))
	b := mobility.NewVehicle(2, s, geom.V(50, 50))
	r := NewRecorder(s, 1)
	r.Track(1, a.Position)
	r.Track(2, b.Position)
	r.Start(0)
	s.Run()
	frame := r.RenderFrame(0, Viewport{Min: geom.V(-10, -10), Max: geom.V(60, 60)}, 40, 12)
	if !strings.Contains(frame, "0") || !strings.Contains(frame, "1") {
		t.Fatalf("frame missing node glyphs:\n%s", frame)
	}
	if !strings.Contains(frame, "t=") {
		t.Fatal("frame missing timestamp")
	}
	// Node 2 (glyph '1', higher y) must appear on an earlier line than
	// node 1 (glyph '0') — y grows upward.
	lines := strings.Split(frame, "\n")
	row0, row1 := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "0") && i > 0 && row0 == -1 {
			row0 = i
		}
		if strings.Contains(l, "1") && i > 0 && row1 == -1 {
			row1 = i
		}
	}
	if row1 >= row0 {
		t.Fatalf("vertical orientation wrong: glyph rows %d vs %d", row1, row0)
	}
}

func TestPlayAndLegend(t *testing.T) {
	s := sim.New()
	v := mobility.NewVehicle(3, s, geom.V(0, 0))
	r := NewRecorder(s, 1)
	r.Track(3, v.Position)
	v.SetDest(geom.V(0, 100), 10)
	r.Start(10)
	s.Run()
	var sb strings.Builder
	if err := r.Play(&sb, r.AutoViewport(5), 30, 8, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "t=") != 6 { // frames 0,2,4,6,8,10
		t.Fatalf("played %d frames, want 6", strings.Count(sb.String(), "t="))
	}
	if !strings.Contains(r.Legend(), "0 = node 3") {
		t.Fatalf("legend = %q", r.Legend())
	}
}
