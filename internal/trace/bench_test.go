package trace

import (
	"testing"
)

// benchRecords is a representative mix of the lines a trial emits: TCP data
// at the agent layer, an AODV control packet, a drop with a reason, and a
// MAC-layer forward.
var benchRecords = []Record{
	{Op: Send, At: 12.000350, Node: 0, Layer: LayerAgent,
		UID: 42, Type: "tcp", Size: 1040, Src: 0, SrcPt: 100, Dst: 1, DstPt: 200, Seq: 5},
	{Op: Recv, At: 0.003, Node: 1, Layer: LayerRouting,
		UID: 9, Type: "AODV", Size: 48, Src: 4, SrcPt: 254, Dst: 5, DstPt: 254, Seq: -1},
	{Op: Drop, At: 99.5, Node: 3, Layer: LayerIfq, Reason: "IFQ",
		UID: 7, Type: "tcp", Size: 1040, Src: 0, SrcPt: 1000, Dst: 2, DstPt: 1001, Seq: 17},
	{Op: Forward, At: 150.25, Node: 2, Layer: LayerMac,
		UID: 1234, Type: "ack", Size: 40, Src: 1, SrcPt: 2001, Dst: 0, DstPt: 2000, Seq: 0},
}

// BenchmarkTraceEncode measures formatting one record as a trace line into
// a reused buffer, the per-event cost of every traced run.
func BenchmarkTraceEncode(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = benchRecords[i%len(benchRecords)].AppendLine(buf[:0])
	}
	_ = buf
}

// BenchmarkTraceDecode measures parsing one trace line, the per-event cost
// of cmd/ebltrace-style offline analysis.
func BenchmarkTraceDecode(b *testing.B) {
	lines := make([]string, len(benchRecords))
	for i, r := range benchRecords {
		lines[i] = r.Line()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}
