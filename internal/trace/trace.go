// Package trace records simulation events in an ns-2-like trace format and
// parses them back. The paper computed its one-way delay "offline by
// parsing the trace file"; cmd/ebltrace reproduces that workflow on the
// traces this package writes.
//
// Line format (one event per line):
//
//	s 12.000350 _0_ AGT --- 42 tcp 1040 [0:100 1:200] 5
//
// fields: op time _node_ layer reason uid type size [src:sport dst:dport]
// seq. Reason is "---" when absent; seq is the transport sequence number
// or -1.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Op is the event kind.
type Op byte

// Event kinds, using ns-2's letters.
const (
	Send    Op = 's'
	Recv    Op = 'r'
	Drop    Op = 'd'
	Forward Op = 'f'
)

// Layer identifies where in the stack the event happened.
type Layer string

// Stack layers, ns-2 names.
const (
	LayerAgent   Layer = "AGT" // application/transport boundary
	LayerRouting Layer = "RTR"
	LayerIfq     Layer = "IFQ"
	LayerMac     Layer = "MAC"
)

// Record is one trace event.
type Record struct {
	Op     Op
	At     sim.Time
	Node   packet.NodeID
	Layer  Layer
	Reason string // drop reason, empty otherwise
	UID    uint64
	Type   string // packet type name ("tcp", "ack", "AODV", ...)
	Size   int
	Src    packet.NodeID
	SrcPt  int
	Dst    packet.NodeID
	DstPt  int
	Seq    int // transport sequence number, -1 if none
}

// AppendLine appends the record's trace-file line (no trailing newline) to
// buf and returns the extended slice. Callers that reuse the returned
// buffer encode with zero allocations; the byte output is identical to the
// fmt-based formatting this replaced ('f' with 6 digits is exactly %.6f).
func (r Record) AppendLine(buf []byte) []byte {
	buf = append(buf, byte(r.Op), ' ')
	buf = strconv.AppendFloat(buf, float64(r.At), 'f', 6, 64)
	buf = append(buf, ' ', '_')
	buf = strconv.AppendInt(buf, int64(int32(r.Node)), 10)
	buf = append(buf, '_', ' ')
	buf = append(buf, r.Layer...)
	buf = append(buf, ' ')
	if r.Reason == "" {
		buf = append(buf, "---"...)
	} else {
		buf = append(buf, r.Reason...)
	}
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, r.UID, 10)
	buf = append(buf, ' ')
	buf = append(buf, r.Type...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(r.Size), 10)
	buf = append(buf, ' ', '[')
	buf = strconv.AppendInt(buf, int64(int32(r.Src)), 10)
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, int64(r.SrcPt), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(int32(r.Dst)), 10)
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, int64(r.DstPt), 10)
	buf = append(buf, ']', ' ')
	buf = strconv.AppendInt(buf, int64(r.Seq), 10)
	return buf
}

// Line formats the record in the trace-file syntax.
func (r Record) Line() string { return string(r.AppendLine(nil)) }

// FromPacket fills a record's packet-derived fields.
func FromPacket(op Op, at sim.Time, node packet.NodeID, layer Layer, p *packet.Packet) Record {
	seq := -1
	if p.TCP != nil {
		seq = p.TCP.Seq
	}
	return Record{
		Op: op, At: at, Node: node, Layer: layer,
		UID: p.UID, Type: p.Type.String(), Size: p.Size,
		Src: p.IP.Src, SrcPt: p.IP.SrcPort,
		Dst: p.IP.Dst, DstPt: p.IP.DstPort,
		Seq: seq,
	}
}

// asciiSpace marks the ASCII bytes unicode.IsSpace reports as whitespace,
// the same fast-path table strings.Fields uses.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// splitFields splits line on Unicode whitespace exactly like
// strings.Fields, writing at most len(dst) fields and returning the total
// field count (which may exceed len(dst)). The fields are substrings
// sharing line's backing array, so splitting allocates nothing.
func splitFields(line string, dst []string) int {
	n := 0
	for i := 0; i < len(line); {
		space, w := false, 1
		if c := line[i]; c < utf8.RuneSelf {
			space = asciiSpace[c] == 1
		} else {
			var r rune
			r, w = utf8.DecodeRuneInString(line[i:])
			space = unicode.IsSpace(r)
		}
		if space {
			i += w
			continue
		}
		start := i
		for i < len(line) {
			space, w = false, 1
			if c := line[i]; c < utf8.RuneSelf {
				space = asciiSpace[c] == 1
			} else {
				var r rune
				r, w = utf8.DecodeRuneInString(line[i:])
				space = unicode.IsSpace(r)
			}
			if space {
				break
			}
			i += w
		}
		if n < len(dst) {
			dst[n] = line[start:i]
		}
		n++
	}
	return n
}

// Parse decodes one trace line. It allocates only on error: the field
// scanner and the strconv parsers all work on substrings of line.
func Parse(line string) (Record, error) {
	var f [11]string
	if n := splitFields(line, f[:]); n != 11 {
		return Record{}, fmt.Errorf("trace: want 11 fields, got %d in %q", n, line)
	}
	var r Record
	if len(f[0]) != 1 {
		return Record{}, fmt.Errorf("trace: bad op %q", f[0])
	}
	switch Op(f[0][0]) {
	case Send, Recv, Drop, Forward:
		r.Op = Op(f[0][0])
	default:
		return Record{}, fmt.Errorf("trace: unknown op %q", f[0])
	}
	at, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad time: %w", err)
	}
	r.At = sim.Time(at)
	node := strings.Trim(f[2], "_")
	n, err := strconv.ParseInt(node, 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad node: %w", err)
	}
	r.Node = packet.NodeID(n)
	r.Layer = Layer(f[3])
	if f[4] != "---" {
		r.Reason = f[4]
	}
	uid, err := strconv.ParseUint(f[5], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad uid: %w", err)
	}
	r.UID = uid
	r.Type = f[6]
	size, err := strconv.Atoi(f[7])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad size: %w", err)
	}
	r.Size = size
	srcPart := strings.TrimPrefix(f[8], "[")
	dstPart := strings.TrimSuffix(f[9], "]")
	if r.Src, r.SrcPt, err = parseAddr(srcPart); err != nil {
		return Record{}, err
	}
	if r.Dst, r.DstPt, err = parseAddr(dstPart); err != nil {
		return Record{}, err
	}
	seq, err := strconv.Atoi(f[10])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad seq: %w", err)
	}
	r.Seq = seq
	return r, nil
}

func parseAddr(s string) (packet.NodeID, int, error) {
	host, port, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("trace: bad address %q", s)
	}
	h, err := strconv.ParseInt(host, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: bad address host: %w", err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return 0, 0, fmt.Errorf("trace: bad address port: %w", err)
	}
	return packet.NodeID(h), p, nil
}

// writeLine writes one record (plus newline) to w, encoding into buf's
// capacity, and returns the buffer for reuse. It is the single line writer
// behind both Collector streaming and WriteAll, so the on-disk format has
// exactly one producer.
func writeLine(w io.Writer, buf []byte, r Record) ([]byte, error) {
	buf = r.AppendLine(buf[:0])
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return buf, err
}

// WriteAll writes records to w one line each, buffered — the inverse of
// ReadAll.
func WriteAll(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	var err error
	for _, r := range recs {
		if buf, err = writeLine(bw, buf, r); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

// Collector accumulates records in memory and optionally streams them to a
// writer. The zero value collects in memory only.
type Collector struct {
	recs []Record
	w    io.Writer
	buf  []byte // reused line-encoding buffer for the streaming path
	err  error
}

// NewCollector returns a collector that also writes each record as a line
// to w (which may be nil).
func NewCollector(w io.Writer) *Collector { return &Collector{w: w} }

// Add records one event.
func (c *Collector) Add(r Record) {
	c.recs = append(c.recs, r)
	if c.w != nil && c.err == nil {
		c.buf, c.err = writeLine(c.w, c.buf, r)
	}
}

// Records returns all events in order.
func (c *Collector) Records() []Record { return c.recs }

// Err returns the first write error, if any.
func (c *Collector) Err() error { return c.err }

// ReadAll parses a whole trace stream.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
