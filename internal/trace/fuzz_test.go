package trace

import "testing"

// FuzzParseLine checks the Record ↔ line round trip: any line Parse
// accepts must reserialize to a line Parse accepts again, and the second
// pass must be a fixed point (identical record, or at worst an identical
// line once float formatting has normalised the time field).
func FuzzParseLine(f *testing.F) {
	seeds := []Record{
		// The documented example line.
		{Op: Send, At: 12.000350, Node: 0, Layer: LayerAgent,
			UID: 42, Type: "tcp", Size: 1040, Src: 0, SrcPt: 100, Dst: 1, DstPt: 200, Seq: 5},
		// A drop with a reason.
		{Op: Drop, At: 99.5, Node: 3, Layer: LayerIfq, Reason: "IFQ",
			UID: 7, Type: "tcp", Size: 1040, Src: 0, SrcPt: 1000, Dst: 2, DstPt: 1001, Seq: 17},
		// A sequence-less packet (Seq == -1, e.g. AODV control).
		{Op: Recv, At: 0.003, Node: 1, Layer: LayerRouting,
			UID: 9, Type: "AODV", Size: 48, Src: 4, SrcPt: 254, Dst: 5, DstPt: 254, Seq: -1},
		// A MAC-layer forward.
		{Op: Forward, At: 150.25, Node: 2, Layer: LayerMac,
			UID: 1234, Type: "ack", Size: 40, Src: 1, SrcPt: 2001, Dst: 0, DstPt: 2000, Seq: 0},
	}
	for _, r := range seeds {
		f.Add(r.Line())
	}
	f.Add("x 1.0 _0_ AGT --- 1 tcp 10 [0:1 1:2] 3") // bad op
	f.Add("s 1.0 _0_ AGT --- 1 tcp 10 [0:1 1:2]")   // missing field

	f.Fuzz(func(t *testing.T, line string) {
		r1, err := Parse(line)
		if err != nil {
			return // invalid input: only well-formed lines must round-trip
		}
		line1 := r1.Line()
		r2, err := Parse(line1)
		if err != nil {
			t.Fatalf("reserialized line does not parse: %v\nline: %q", err, line1)
		}
		// %.6f truncates sub-microsecond times, so the struct may differ
		// after the first normalisation — but the line must then be stable.
		if r1 != r2 && r2.Line() != line1 {
			t.Fatalf("round trip not a fixed point:\n in: %#v\nout: %#v", r1, r2)
		}
	})
}
