package trace

import (
	"vanetsim/internal/metrics"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// FlowKey identifies one transport flow in a trace.
type FlowKey struct {
	Src   packet.NodeID
	SrcPt int
	Dst   packet.NodeID
	DstPt int
}

// OneWayDelays pairs agent-level sends with receives per flow and returns
// a delay series per flow indexed by transport sequence number — exactly
// the offline trace analysis the paper describes. A retransmitted sequence
// number keeps its first send time; only the first receive counts.
func OneWayDelays(recs []Record) map[FlowKey]*metrics.DelaySeries {
	type pk struct {
		flow FlowKey
		seq  int
	}
	firstSend := make(map[pk]sim.Time)
	received := make(map[pk]bool)
	out := make(map[FlowKey]*metrics.DelaySeries)
	for _, r := range recs {
		if r.Layer != LayerAgent || r.Type != "tcp" || r.Seq < 0 {
			continue
		}
		key := pk{FlowKey{r.Src, r.SrcPt, r.Dst, r.DstPt}, r.Seq}
		switch r.Op {
		case Send:
			if _, dup := firstSend[key]; !dup {
				firstSend[key] = r.At
			}
		case Recv:
			if r.Node != r.Dst || received[key] {
				continue
			}
			sent, ok := firstSend[key]
			if !ok {
				continue
			}
			received[key] = true
			s := out[key.flow]
			if s == nil {
				s = &metrics.DelaySeries{}
				out[key.flow] = s
			}
			s.Add(r.Seq, r.At-sent)
		}
	}
	return out
}

// FlowThroughput bins agent-level receive bytes per destination node,
// mirroring the paper's per-platoon throughput records.
func FlowThroughput(recs []Record, bin sim.Time) map[packet.NodeID]*metrics.Throughput {
	out := make(map[packet.NodeID]*metrics.Throughput)
	for _, r := range recs {
		if r.Layer != LayerAgent || r.Op != Recv || r.Type != "tcp" {
			continue
		}
		if r.Node != r.Dst {
			continue
		}
		t := out[r.Node]
		if t == nil {
			t = metrics.NewThroughput(bin)
			out[r.Node] = t
		}
		t.Add(r.At, r.Size)
	}
	return out
}
