package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

func sample() Record {
	return Record{
		Op: Send, At: 12.00035, Node: 3, Layer: LayerAgent,
		UID: 42, Type: "tcp", Size: 1040,
		Src: 0, SrcPt: 100, Dst: 1, DstPt: 200, Seq: 5,
	}
}

func TestLineFormat(t *testing.T) {
	got := sample().Line()
	want := "s 12.000350 _3_ AGT --- 42 tcp 1040 [0:100 1:200] 5"
	if got != want {
		t.Fatalf("Line = %q, want %q", got, want)
	}
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	back, err := Parse(r.Line())
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, r)
	}
}

func TestRoundTripWithReason(t *testing.T) {
	r := sample()
	r.Op = Drop
	r.Layer = LayerIfq
	r.Reason = "IFQ"
	back, err := Parse(r.Line())
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != "IFQ" || back.Op != Drop {
		t.Fatalf("round trip with reason = %+v", back)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x 1.0 _0_ AGT --- 1 tcp 10 [0:0 1:0] -1",     // bad op
		"s abc _0_ AGT --- 1 tcp 10 [0:0 1:0] -1",     // bad time
		"s 1.0 _zz_ AGT --- 1 tcp 10 [0:0 1:0] -1",    // bad node
		"s 1.0 _0_ AGT --- x tcp 10 [0:0 1:0] -1",     // bad uid
		"s 1.0 _0_ AGT --- 1 tcp ten [0:0 1:0] -1",    // bad size
		"s 1.0 _0_ AGT --- 1 tcp 10 [0=0 1:0] -1",     // bad addr
		"s 1.0 _0_ AGT --- 1 tcp 10 [0:0 1:0]",        // missing field
		"s 1.0 _0_ AGT --- 1 tcp 10 [0:0 1:0] -1 huh", // extra field
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) should fail", line)
		}
	}
}

func TestFromPacket(t *testing.T) {
	var f packet.Factory
	p := f.New(packet.TypeTCP, 1040, 1.5)
	p.IP = packet.IPHdr{Src: 0, Dst: 1, SrcPort: 100, DstPort: 200}
	p.TCP = &packet.TCPHdr{Seq: 7}
	r := FromPacket(Recv, 2.0, 1, LayerAgent, p)
	if r.Seq != 7 || r.UID != p.UID || r.Type != "tcp" || r.Node != 1 {
		t.Fatalf("FromPacket = %+v", r)
	}
	q := f.New(packet.TypeAODV, 48, 0)
	if FromPacket(Send, 0, 0, LayerRouting, q).Seq != -1 {
		t.Fatal("non-TCP packet should have seq -1")
	}
}

func TestCollectorAndReadAll(t *testing.T) {
	var sb strings.Builder
	c := NewCollector(&sb)
	c.Add(sample())
	r2 := sample()
	r2.Op = Recv
	r2.Node = 1
	r2.At = 12.1
	c.Add(r2)
	if len(c.Records()) != 2 || c.Err() != nil {
		t.Fatalf("collector state: %d records, err=%v", len(c.Records()), c.Err())
	}
	recs, err := ReadAll(strings.NewReader(sb.String() + "\n# comment\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Op != Recv {
		t.Fatalf("ReadAll = %+v", recs)
	}
}

func TestReadAllBadLine(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("garbage line\n")); err == nil {
		t.Fatal("bad line should error with line number")
	}
}

func TestOneWayDelays(t *testing.T) {
	flow := FlowKey{Src: 0, SrcPt: 100, Dst: 1, DstPt: 200}
	mk := func(op Op, at sim.Time, node packet.NodeID, seq int) Record {
		return Record{Op: op, At: at, Node: node, Layer: LayerAgent,
			UID: uint64(seq), Type: "tcp", Size: 1040,
			Src: 0, SrcPt: 100, Dst: 1, DstPt: 200, Seq: seq}
	}
	recs := []Record{
		mk(Send, 1.0, 0, 1),
		mk(Recv, 1.3, 1, 1),
		mk(Send, 2.0, 0, 2),
		mk(Send, 5.0, 0, 2), // retransmission: first send time must win
		mk(Recv, 5.4, 1, 2),
		mk(Recv, 5.5, 1, 2), // duplicate receive: ignored
	}
	byFlow := OneWayDelays(recs)
	s := byFlow[flow]
	if s == nil || s.Len() != 2 {
		t.Fatalf("series = %+v", byFlow)
	}
	pts := s.Points()
	if !approx(float64(pts[0].Delay), 0.3) {
		t.Fatalf("delay 1 = %v", pts[0].Delay)
	}
	if !approx(float64(pts[1].Delay), 3.4) {
		t.Fatalf("delay 2 = %v, want 3.4 (from first send)", pts[1].Delay)
	}
}

func TestFlowThroughput(t *testing.T) {
	mk := func(at sim.Time, size int) Record {
		return Record{Op: Recv, At: at, Node: 1, Layer: LayerAgent,
			UID: 1, Type: "tcp", Size: size,
			Src: 0, SrcPt: 100, Dst: 1, DstPt: 200, Seq: 1}
	}
	recs := []Record{mk(0.1, 1000), mk(0.2, 1000), mk(0.7, 500)}
	tps := FlowThroughput(recs, 0.5)
	tp := tps[1]
	if tp == nil {
		t.Fatal("no throughput for node 1")
	}
	if tp.TotalBytes() != 2500 {
		t.Fatalf("total = %d", tp.TotalBytes())
	}
	series := tp.SeriesUntil(1)
	if !approx(series[0].Mbps, 2000*8/0.5/1e6) {
		t.Fatalf("bin 0 = %v", series[0].Mbps)
	}
}

// Property: Line/Parse round-trips arbitrary well-formed records.
func TestRoundTripProperty(t *testing.T) {
	ops := []Op{Send, Recv, Drop, Forward}
	layers := []Layer{LayerAgent, LayerRouting, LayerIfq, LayerMac}
	f := func(opI, layerI uint8, at uint32, node int16, uid uint32, size uint16, src, dst int16, sp, dp uint8, seq int16) bool {
		r := Record{
			Op: ops[int(opI)%len(ops)], At: sim.Time(at) / 1000,
			Node: packet.NodeID(node), Layer: layers[int(layerI)%len(layers)],
			UID: uint64(uid), Type: "tcp", Size: int(size),
			Src: packet.NodeID(src), SrcPt: int(sp),
			Dst: packet.NodeID(dst), DstPt: int(dp), Seq: int(seq),
		}
		back, err := Parse(r.Line())
		return err == nil && back == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
