package app

import (
	"vanetsim/internal/sim"
)

// ByteSender is the transport write interface applications drive: both
// tcp.Sender and UDPSource satisfy it (ns-2 lets Application/Traffic/CBR
// attach to either agent the same way).
type ByteSender interface {
	SendBytes(n int)
}

// CBR generates packetSize-byte writes at a constant bit rate while
// started. The paper's scenario attaches a CBR generator to each TCP flow;
// the platoon's braking/stopped phases start and stop it.
type CBR struct {
	sched *sim.Scheduler
	tr    ByteSender

	packetSize int
	interval   sim.Time

	running bool
	timer   sim.Timer
	ticks   int
}

// NewCBR creates a generator producing packetSize bytes every
// packetSize*8/rateBps seconds once started.
func NewCBR(sched *sim.Scheduler, tr ByteSender, packetSize int, rateBps float64) *CBR {
	if packetSize <= 0 || rateBps <= 0 {
		panic("app: CBR needs positive packet size and rate")
	}
	return &CBR{
		sched:      sched,
		tr:         tr,
		packetSize: packetSize,
		interval:   sim.Time(float64(packetSize) * 8 / rateBps),
	}
}

// Interval returns the inter-packet gap.
func (c *CBR) Interval() sim.Time { return c.interval }

// Ticks returns how many writes the generator has produced.
func (c *CBR) Ticks() int { return c.ticks }

// Running reports whether the generator is active.
func (c *CBR) Running() bool { return c.running }

// Start begins generation immediately (first write now). Idempotent.
func (c *CBR) Start() {
	if c.running {
		return
	}
	c.running = true
	c.tick()
}

// Stop halts generation. Idempotent.
func (c *CBR) Stop() {
	if !c.running {
		return
	}
	c.running = false
	c.timer.Cancel()
	c.timer = sim.Timer{}
}

func (c *CBR) tick() {
	if !c.running {
		return
	}
	c.ticks++
	c.tr.SendBytes(c.packetSize)
	c.timer = c.sched.ScheduleKind(sim.KindApp, c.interval, c.tick)
}

// FTP is a greedy source: it keeps the transport's backlog effectively
// infinite, modelling ns-2's Application/FTP.
type FTP struct {
	tr      ByteSender
	started bool
}

// NewFTP creates a greedy source over tr.
func NewFTP(tr ByteSender) *FTP { return &FTP{tr: tr} }

// Start floods the transport with an effectively unbounded backlog.
// Idempotent.
func (f *FTP) Start() {
	if f.started {
		return
	}
	f.started = true
	f.tr.SendBytes(1 << 40)
}
