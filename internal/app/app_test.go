package app

import (
	"math"
	"testing"

	"vanetsim/internal/sim"
)

// countingSender records SendBytes calls.
type countingSender struct {
	calls []int
}

func (c *countingSender) SendBytes(n int) { c.calls = append(c.calls, n) }

func TestCBRRateAndInterval(t *testing.T) {
	s := sim.New()
	tr := &countingSender{}
	// 1,000 bytes at 100 kb/s -> one write every 80 ms.
	c := NewCBR(s, tr, 1000, 1e5)
	if math.Abs(float64(c.Interval())-0.08) > 1e-12 {
		t.Fatalf("interval = %v, want 80 ms", c.Interval())
	}
	c.Start()
	s.RunUntil(1)
	// Writes at t=0, 0.08, ..., 0.96 -> 13 ticks.
	if len(tr.calls) != 13 {
		t.Fatalf("writes in 1 s = %d, want 13", len(tr.calls))
	}
	for _, n := range tr.calls {
		if n != 1000 {
			t.Fatalf("write size = %d", n)
		}
	}
	if c.Ticks() != 13 {
		t.Fatalf("Ticks = %d", c.Ticks())
	}
}

func TestCBRStartIdempotent(t *testing.T) {
	s := sim.New()
	tr := &countingSender{}
	c := NewCBR(s, tr, 100, 1e5)
	c.Start()
	c.Start() // second start must not double the rate
	s.RunUntil(0.1)
	first := len(tr.calls)
	s.RunUntil(0.2)
	if len(tr.calls) >= 2*first+2 {
		t.Fatalf("double-started CBR: %d writes", len(tr.calls))
	}
	if !c.Running() {
		t.Fatal("should be running")
	}
}

func TestCBRStopAndRestart(t *testing.T) {
	s := sim.New()
	tr := &countingSender{}
	c := NewCBR(s, tr, 1000, 1e6) // 8 ms interval
	c.Start()
	s.RunUntil(0.1)
	c.Stop()
	c.Stop() // idempotent
	n := len(tr.calls)
	s.RunUntil(0.5)
	if len(tr.calls) != n {
		t.Fatal("writes after Stop")
	}
	c.Start()
	s.RunUntil(0.6)
	if len(tr.calls) <= n {
		t.Fatal("no writes after restart")
	}
}

func TestCBRPanicsOnBadConfig(t *testing.T) {
	s := sim.New()
	for name, fn := range map[string]func(){
		"zero size": func() { NewCBR(s, &countingSender{}, 0, 1e5) },
		"zero rate": func() { NewCBR(s, &countingSender{}, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFTPFloodsOnce(t *testing.T) {
	tr := &countingSender{}
	f := NewFTP(tr)
	f.Start()
	f.Start()
	if len(tr.calls) != 1 {
		t.Fatalf("FTP wrote %d times, want once", len(tr.calls))
	}
	if tr.calls[0] < 1<<30 {
		t.Fatalf("FTP backlog too small to be greedy: %d", tr.calls[0])
	}
}
