// Package app provides the traffic applications that ride on the transport
// layer: a constant-bit-rate generator (the paper's "packets are sent at a
// constant bit rate"), a greedy FTP source, and a minimal UDP datagram
// agent for connectionless traffic such as EBL status messages.
package app

import (
	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// UDPHdrBytes is UDP+IP header overhead.
const UDPHdrBytes = 28

// UDPSource sends datagrams to a fixed destination without any reliability
// or congestion control.
type UDPSource struct {
	sched   *sim.Scheduler
	net     *netlayer.Net
	pf      *packet.Factory
	srcPort int
	dst     packet.NodeID
	dstPort int
	ptype   packet.Type

	sent int
}

// NewUDPSource creates a datagram source on net bound to srcPort,
// addressing (dst, dstPort). ptype tags the datagrams (TypeCBR, TypeEBL).
func NewUDPSource(sched *sim.Scheduler, n *netlayer.Net, pf *packet.Factory, srcPort int, dst packet.NodeID, dstPort int, ptype packet.Type) *UDPSource {
	u := &UDPSource{sched: sched, net: n, pf: pf, srcPort: srcPort, dst: dst, dstPort: dstPort, ptype: ptype}
	n.BindPort(srcPort, noopHandler{})
	return u
}

// Sent returns the number of datagrams sent.
func (u *UDPSource) Sent() int { return u.sent }

// Send transmits one datagram of payload bytes with an optional payload
// body, returning the packet for test inspection.
func (u *UDPSource) Send(payload int, body packet.Payload) *packet.Packet {
	p := u.pf.New(u.ptype, payload+UDPHdrBytes, u.sched.Now())
	p.IP.Dst = u.dst
	p.IP.SrcPort = u.srcPort
	p.IP.DstPort = u.dstPort
	p.Payload = body
	p.SentAt = u.sched.Now()
	u.sent++
	u.net.SendFrom(p)
	return p
}

// SendBytes implements ByteSender so a CBR generator can drive UDP.
func (u *UDPSource) SendBytes(n int) { u.Send(n, nil) }

// noopHandler absorbs anything addressed back at a source's port.
type noopHandler struct{}

func (noopHandler) RecvFromNet(*packet.Packet) {}

// UDPSink receives datagrams on a port and exposes them to an observer.
type UDPSink struct {
	sched  *sim.Scheduler
	node   packet.NodeID
	port   int
	onRecv func(p *packet.Packet, at sim.Time)
	spans  *span.Recorder

	received int
	bytes    int
}

var _ netlayer.PortHandler = (*UDPSink)(nil)

// NewUDPSink binds a datagram sink to port on net.
func NewUDPSink(sched *sim.Scheduler, n *netlayer.Net, port int) *UDPSink {
	k := &UDPSink{sched: sched, node: n.ID(), port: port}
	n.BindPort(port, k)
	return k
}

// SetSpans wires the causal span recorder (may be nil).
func (k *UDPSink) SetSpans(rec *span.Recorder) { k.spans = rec }

// OnRecv registers an observer called for every datagram.
func (k *UDPSink) OnRecv(fn func(p *packet.Packet, at sim.Time)) { k.onRecv = fn }

// Received returns the number of datagrams delivered.
func (k *UDPSink) Received() int { return k.received }

// Bytes returns cumulative payload bytes delivered.
func (k *UDPSink) Bytes() int { return k.bytes }

// RecvFromNet implements netlayer.PortHandler.
func (k *UDPSink) RecvFromNet(p *packet.Packet) {
	k.received++
	k.bytes += p.Size - UDPHdrBytes
	k.spans.Record(span.OpAppRecv, span.CauseNone, k.node, p)
	if k.onRecv != nil {
		k.onRecv(p, k.sched.Now())
	}
}
