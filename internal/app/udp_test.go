package app

import (
	"testing"

	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

// loopRouting short-circuits routing: outgoing packets addressed to the
// local node are delivered straight up (enough to exercise the agents).
type loopRouting struct {
	n    *netlayer.Net
	sent []*packet.Packet
}

func (r *loopRouting) HandleOutgoing(p *packet.Packet) {
	r.sent = append(r.sent, p)
	if p.IP.Dst == r.n.ID() {
		r.n.DeliverLocally(p)
	}
}
func (r *loopRouting) HandleIncoming(p *packet.Packet) { r.n.DeliverLocally(p) }
func (r *loopRouting) MacTxDone(*packet.Packet, bool)  {}

type idleMAC struct{}

func (idleMAC) ID() packet.NodeID { return 1 }
func (idleMAC) Poke()             {}

func udpRig(t *testing.T) (*sim.Scheduler, *netlayer.Net, *loopRouting, *packet.Factory) {
	t.Helper()
	s := sim.New()
	n := netlayer.New(1)
	n.Attach(queue.NewDropTail(8, nil), idleMAC{})
	r := &loopRouting{n: n}
	n.SetRouting(r)
	return s, n, r, &packet.Factory{}
}

func TestUDPSourceSendsDatagrams(t *testing.T) {
	s, n, r, pf := udpRig(t)
	src := NewUDPSource(s, n, pf, 10, 1, 20, packet.TypeEBL)
	sink := NewUDPSink(s, n, 20)
	p := src.Send(500, nil)
	if p.Size != 500+UDPHdrBytes {
		t.Fatalf("wire size = %d, want payload + UDP/IP headers", p.Size)
	}
	if p.Type != packet.TypeEBL || p.IP.DstPort != 20 || p.IP.SrcPort != 10 {
		t.Fatalf("datagram misaddressed: %+v", p)
	}
	if src.Sent() != 1 || len(r.sent) != 1 {
		t.Fatal("send not accounted")
	}
	if sink.Received() != 1 || sink.Bytes() != 500 {
		t.Fatalf("sink got %d datagrams / %d bytes", sink.Received(), sink.Bytes())
	}
}

func TestUDPSourceSendBytesAdapter(t *testing.T) {
	s, n, _, pf := udpRig(t)
	src := NewUDPSource(s, n, pf, 10, 1, 20, packet.TypeCBR)
	sink := NewUDPSink(s, n, 20)
	var st ByteSender = src // the CBR attachment point
	st.SendBytes(250)
	if sink.Bytes() != 250 {
		t.Fatalf("sink bytes = %d", sink.Bytes())
	}
}

func TestUDPSinkObserver(t *testing.T) {
	s, n, _, pf := udpRig(t)
	src := NewUDPSource(s, n, pf, 10, 1, 20, packet.TypeCBR)
	sink := NewUDPSink(s, n, 20)
	var got []*packet.Packet
	var at sim.Time
	sink.OnRecv(func(p *packet.Packet, t sim.Time) {
		got = append(got, p)
		at = t
	})
	sent := src.Send(100, nil)
	if len(got) != 1 || got[0].UID != sent.UID {
		t.Fatal("observer not invoked with the datagram")
	}
	if at != s.Now() {
		t.Fatal("observer timestamp wrong")
	}
}

func TestUDPSourceAbsorbsReturnTraffic(t *testing.T) {
	// Anything addressed back at the source's port must be swallowed
	// without a bound-handler panic.
	s, n, _, pf := udpRig(t)
	NewUDPSource(s, n, pf, 10, 1, 20, packet.TypeCBR)
	p := pf.New(packet.TypeCBR, 100, 0)
	p.IP.Dst = 1
	p.IP.DstPort = 10
	n.DeliverLocally(p)
	if got := n.Stats().NoPort; got != 0 {
		t.Fatalf("NoPort = %d; source port should be bound", got)
	}
}

func TestCBROverUDPEndToEnd(t *testing.T) {
	s, n, _, pf := udpRig(t)
	src := NewUDPSource(s, n, pf, 10, 1, 20, packet.TypeCBR)
	sink := NewUDPSink(s, n, 20)
	c := NewCBR(s, src, 200, 1.6e5) // 200 B every 10 ms
	c.Start()
	s.RunUntil(0.1)
	c.Stop()
	if sink.Received() != 11 { // t = 0..100 ms inclusive
		t.Fatalf("received %d datagrams, want 11", sink.Received())
	}
}
