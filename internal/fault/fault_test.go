package fault

import (
	"math"
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// frame builds a data frame from src for the injector to judge.
func frame(src packet.NodeID, size int) *packet.Packet {
	return &packet.Packet{
		Type: packet.TypeTCP,
		Size: size,
		Mac:  packet.MacHdr{Src: src, Dst: 1, Subtype: packet.MacData},
	}
}

// lossRate feeds n frames over one link and returns the observed drop rate.
func lossRate(in *Injector, n int) float64 {
	dropped := 0
	p := frame(0, 1000)
	for i := 0; i < n; i++ {
		if in.DropRx(1, p) {
			dropped++
		}
	}
	return float64(dropped) / float64(n)
}

func TestBernoulliLossRate(t *testing.T) {
	const want = 0.1
	in := NewInjector(Plan{Bernoulli: Bernoulli{LossProb: want}}, sim.NewRNG(7))
	got := lossRate(in, 200_000)
	// Binomial std dev at n=200k, p=0.1 is ~0.00067; 5 sigma ≈ 0.0034.
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("Bernoulli loss rate = %.4f, want %.2f ± 0.005", got, want)
	}
	if s := in.Stats(); s.DroppedBernoulli == 0 || s.DroppedBurst != 0 {
		t.Fatalf("stats misattributed: %+v", s)
	}
}

func TestBitErrorRateComposition(t *testing.T) {
	b := Bernoulli{BitErrorRate: 1e-5}
	// 1000-byte frame: 1-(1-1e-5)^8000 ≈ 0.0769.
	want := 1 - math.Pow(1-1e-5, 8000)
	if got := b.FrameLossProb(1000); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FrameLossProb(1000) = %v, want %v", got, want)
	}
	// Composes with per-frame loss.
	b.LossProb = 0.5
	want = 1 - 0.5*math.Pow(1-1e-5, 8000)
	if got := b.FrameLossProb(1000); math.Abs(got-want) > 1e-12 {
		t.Fatalf("combined FrameLossProb = %v, want %v", got, want)
	}
	if got := (Bernoulli{}).FrameLossProb(1000); got != 0 {
		t.Fatalf("zero model loss prob = %v, want 0", got)
	}
}

func TestGilbertElliottStationaryLossRate(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		g := Burst(p, 4)
		if got := g.StationaryLossProb(); math.Abs(got-p) > 1e-12 {
			t.Fatalf("Burst(%v, 4) stationary loss = %v, want %v", p, got, p)
		}
		in := NewInjector(Plan{Burst: g}, sim.NewRNG(11))
		got := lossRate(in, 300_000)
		// Burst correlation inflates the variance of the empirical rate vs
		// an independent chain by roughly 2·L; allow a generous band.
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("GE empirical loss rate = %.4f, want %.2f ± 0.01", got, p)
		}
		s := in.Stats()
		if s.DroppedBurst == 0 || s.BurstTransitions == 0 {
			t.Fatalf("GE stats empty: %+v", s)
		}
		// Mean burst length ≈ dropped frames per bad visit; each visit is
		// two transitions, so dropped/(transitions/2) ≈ 4.
		meanBurst := float64(s.DroppedBurst) / (float64(s.BurstTransitions) / 2)
		if meanBurst < 3 || meanBurst > 5 {
			t.Fatalf("mean burst length = %.2f, want ≈ 4", meanBurst)
		}
	}
}

func TestBurstParameterisationEdges(t *testing.T) {
	if g := Burst(0, 4); g.Enabled() {
		t.Fatal("Burst(0, L) must be disabled")
	}
	g := Burst(1, 4)
	if g.StationaryLossProb() != 1 {
		t.Fatalf("Burst(1, L) stationary loss = %v, want 1", g.StationaryLossProb())
	}
	// Sub-frame burst lengths clamp to one frame.
	g = Burst(0.3, 0.1)
	if g.PBadGood != 1 {
		t.Fatalf("clamped burst length: PBadGood = %v, want 1", g.PBadGood)
	}
}

func TestPerLinkStreamsIndependentOfDiscoveryOrder(t *testing.T) {
	plan := Plan{Bernoulli: Bernoulli{LossProb: 0.3}, Burst: Burst(0.1, 3)}
	links := []packet.NodeID{2, 3, 4}

	// First injector discovers links in order 2,3,4; second in 4,3,2. The
	// per-link decision sequences must match exactly.
	decisions := func(order []int) map[packet.NodeID][]bool {
		in := NewInjector(plan, sim.NewRNG(99))
		out := make(map[packet.NodeID][]bool)
		for round := 0; round < 50; round++ {
			for _, i := range order {
				src := links[i]
				out[src] = append(out[src], in.DropRx(1, frame(src, 500)))
			}
		}
		return out
	}
	a := decisions([]int{0, 1, 2})
	b := decisions([]int{2, 1, 0})
	for _, src := range links {
		if len(a[src]) != len(b[src]) {
			t.Fatalf("link %v: decision counts differ", src)
		}
		for i := range a[src] {
			if a[src][i] != b[src][i] {
				t.Fatalf("link %v decision %d differs with discovery order", src, i)
			}
		}
	}
	// And distinct links must not share a stream.
	same := true
	for i := range a[2] {
		if a[2][i] != a[3][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("links 2 and 3 produced identical decision streams")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Bernoulli: Bernoulli{LossProb: -0.1}},
		{Bernoulli: Bernoulli{BitErrorRate: 1.5}},
		{Burst: GilbertElliott{PGoodBad: 2}},
		{ShadowSigmaDB: -1},
		{Outages: []Outage{{Node: 0, Start: sim.Time(math.NaN())}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: Validate accepted %+v", i, p)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid plan")
		}
	}()
	NewInjector(bad[0], sim.NewRNG(1))
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	if (Plan{Outages: []Outage{{Node: 1, Start: 5, Duration: 0}}}).Enabled() {
		t.Fatal("zero-length outage alone must not enable the plan")
	}
	for _, p := range []Plan{
		{Bernoulli: Bernoulli{LossProb: 0.1}},
		{Bernoulli: Bernoulli{BitErrorRate: 1e-6}},
		{Burst: Burst(0.1, 4)},
		{ShadowSigmaDB: 4},
		{Outages: []Outage{{Node: 1, Start: 5, Duration: 1}}},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestOutageSeconds(t *testing.T) {
	p := Plan{Outages: []Outage{
		{Node: 0, Start: 10, Duration: 5},   // fully inside
		{Node: 1, Start: 55, Duration: 20},  // spans the run end
		{Node: 2, Start: -3, Duration: 5},   // clamped start
		{Node: 3, Start: 30, Duration: 0},   // zero-length: no-op
		{Node: 4, Start: 100, Duration: 10}, // entirely after the end
	}}
	got := p.OutageSeconds(60)
	want := 5.0 + 5.0 + 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("OutageSeconds(60) = %v, want %v", got, want)
	}
}

func TestDroppedDataCountsOnlyDataFrames(t *testing.T) {
	in := NewInjector(Plan{Bernoulli: Bernoulli{LossProb: 1}}, sim.NewRNG(5))
	ack := &packet.Packet{Type: packet.TypeMACAck, Size: 40,
		Mac: packet.MacHdr{Src: 0, Dst: 1, Subtype: packet.MacAck}}
	if !in.DropRx(1, ack) || !in.DropRx(1, frame(0, 1000)) {
		t.Fatal("LossProb=1 must drop everything")
	}
	if s := in.Stats(); s.DroppedData != 1 {
		t.Fatalf("DroppedData = %d, want 1 (MAC ack must not count)", s.DroppedData)
	}
}
