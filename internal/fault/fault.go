// Package fault is the simulator's deterministic impairment layer: seedable
// packet/bit error models, bursty Gilbert–Elliott loss, and scheduled radio
// outages, composed into the PHY without touching its hot path when
// disabled.
//
// Two disciplines make fault injection safe to hang off a reproduction
// repository:
//
//   - Zero effect when off. A zero-value Plan injects nothing, consumes no
//     randomness, and registers no telemetry, so every golden digest of an
//     unfaulted run is unchanged by this package's existence.
//
//   - Per-link, per-model RNG streams. Each (transmitter, receiver) link
//     draws from its own generator, forked by label from a dedicated fault
//     seed stream (never drawn from directly). Streams therefore do not
//     depend on link discovery order, and — because each simulation run is
//     single-threaded — results are byte-identical at any worker-pool width,
//     exactly like internal/runner's guarantee.
package fault

import (
	"fmt"
	"math"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Bernoulli is the independent per-frame error model: every otherwise-intact
// reception on a link is destroyed with a fixed probability, memorylessly.
type Bernoulli struct {
	// LossProb is the per-frame loss probability in [0, 1].
	LossProb float64
	// BitErrorRate is an independent per-bit error probability in [0, 1);
	// a frame is lost if any of its 8·size bits flips. It composes with
	// LossProb: the frame survives only if it dodges both.
	BitErrorRate float64
}

// Enabled reports whether the model can ever drop a frame.
func (b Bernoulli) Enabled() bool { return b.LossProb > 0 || b.BitErrorRate > 0 }

// FrameLossProb returns the combined per-frame loss probability for a frame
// of sizeBytes.
func (b Bernoulli) FrameLossProb(sizeBytes int) float64 {
	p := 1 - (1-b.LossProb)*math.Pow(1-b.BitErrorRate, float64(8*sizeBytes))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// GilbertElliott is the classic two-state bursty loss model: the link
// alternates between a good and a bad state with per-frame transition
// probabilities, and loses frames with a state-dependent probability.
// Every link starts in the good state.
type GilbertElliott struct {
	// PGoodBad is the per-frame probability of a good→bad transition.
	PGoodBad float64
	// PBadGood is the per-frame probability of a bad→good transition; its
	// reciprocal is the mean burst length in frames.
	PBadGood float64
	// LossGood and LossBad are the loss probabilities in each state
	// (classically 0 and 1).
	LossGood, LossBad float64
}

// Enabled reports whether the model can ever drop a frame.
func (g GilbertElliott) Enabled() bool {
	return (g.PGoodBad > 0 && g.LossBad > 0) || g.LossGood > 0
}

// StationaryBadProb returns the chain's stationary probability of the bad
// state (0 when the chain never leaves good).
func (g GilbertElliott) StationaryBadProb() float64 {
	if g.PGoodBad <= 0 {
		return 0
	}
	if g.PBadGood <= 0 {
		return 1
	}
	return g.PGoodBad / (g.PGoodBad + g.PBadGood)
}

// StationaryLossProb returns the long-run per-frame loss rate implied by the
// transition and per-state loss probabilities.
func (g GilbertElliott) StationaryLossProb() float64 {
	pb := g.StationaryBadProb()
	return pb*g.LossBad + (1-pb)*g.LossGood
}

// Burst returns a Gilbert–Elliott configuration with the given stationary
// loss probability and mean bad-burst length in frames, using the classic
// parameterisation (no loss in good, total loss in bad). It is the
// convenient entry point for the loss-probability × burst-length sweep axes.
func Burst(lossProb, meanBurstLen float64) GilbertElliott {
	if lossProb <= 0 {
		return GilbertElliott{}
	}
	if meanBurstLen < 1 {
		meanBurstLen = 1
	}
	pBG := 1 / meanBurstLen
	if lossProb >= 1 {
		return GilbertElliott{PGoodBad: 1, PBadGood: 0, LossBad: 1}
	}
	pGB := lossProb * pBG / (1 - lossProb)
	if pGB > 1 {
		pGB = 1
	}
	return GilbertElliott{PGoodBad: pGB, PBadGood: pBG, LossBad: 1}
}

// Outage takes one node's radio off the air for a window of simulated time:
// it neither transmits energy nor hears arrivals, and any reception in
// progress when the window opens is destroyed. The node's upper layers keep
// running (timers, TCP state), so recovery exercises AODV repair and TCP
// retransmission, not a cold boot.
type Outage struct {
	Node packet.NodeID
	// Start is the absolute simulated time the radio goes down (clamped
	// to 0 if negative).
	Start sim.Time
	// Duration is how long the radio stays down. A non-positive duration is
	// a no-op outage; a window extending past the end of the run simply
	// never recovers (the trial ends mid-outage).
	Duration sim.Time
}

// Plan is a trial's complete impairment recipe. The zero value injects
// nothing and is free: no RNG streams are created, no telemetry is
// registered, and the PHY hot path pays only a nil check.
type Plan struct {
	// Bernoulli is the independent per-frame/per-bit error model.
	Bernoulli Bernoulli
	// Burst is the two-state Gilbert–Elliott bursty loss model. It composes
	// with Bernoulli: a frame must survive both.
	Burst GilbertElliott
	// ShadowSigmaDB enables log-normal shadowing on the propagation model
	// with the given standard deviation in dB (0 disables it).
	ShadowSigmaDB float64
	// Outages lists scheduled radio outages.
	Outages []Outage
}

// LinkEnabled reports whether any per-link reception model is active (and
// therefore whether an Injector is needed).
func (p Plan) LinkEnabled() bool { return p.Bernoulli.Enabled() || p.Burst.Enabled() }

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	if p.LinkEnabled() || p.ShadowSigmaDB > 0 {
		return true
	}
	for _, o := range p.Outages {
		if o.Duration > 0 {
			return true
		}
	}
	return false
}

// Validate checks every probability and window for sanity.
func (p Plan) Validate() error {
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    float64
	}{
		{"Bernoulli.LossProb", p.Bernoulli.LossProb},
		{"Bernoulli.BitErrorRate", p.Bernoulli.BitErrorRate},
		{"Burst.PGoodBad", p.Burst.PGoodBad},
		{"Burst.PBadGood", p.Burst.PBadGood},
		{"Burst.LossGood", p.Burst.LossGood},
		{"Burst.LossBad", p.Burst.LossBad},
	}
	for _, c := range checks {
		if err := inUnit(c.name, c.v); err != nil {
			return err
		}
	}
	if p.ShadowSigmaDB < 0 || math.IsNaN(p.ShadowSigmaDB) {
		return fmt.Errorf("fault: ShadowSigmaDB = %v is negative", p.ShadowSigmaDB)
	}
	for i, o := range p.Outages {
		if math.IsNaN(float64(o.Start)) || math.IsNaN(float64(o.Duration)) {
			return fmt.Errorf("fault: outage %d has NaN window", i)
		}
	}
	return nil
}

// OutageSeconds returns the total radio-down time across all outages,
// clamped to the run's end time — the value the fault/outage_seconds gauge
// reports.
func (p Plan) OutageSeconds(end sim.Time) float64 {
	var total float64
	for _, o := range p.Outages {
		stop := o.Start + o.Duration
		if stop > end {
			stop = end
		}
		start := o.Start
		if start < 0 {
			start = 0
		}
		if stop > start {
			total += float64(stop - start)
		}
	}
	return total
}

// Stats counts what the injector did, for telemetry and tests.
type Stats struct {
	// DroppedBernoulli and DroppedBurst count frames destroyed by each
	// model (a frame failing both is charged to Bernoulli, which draws
	// first).
	DroppedBernoulli int
	DroppedBurst     int
	// DroppedData counts dropped frames that carried application or
	// transport data — each one forces a MAC or TCP retransmission.
	DroppedData int
	// BurstTransitions counts Gilbert–Elliott state flips across all links.
	BurstTransitions int
}

// linkKey identifies one directed radio link.
type linkKey struct {
	src, dst packet.NodeID
}

// linkState is one link's RNG stream and burst-chain state.
type linkState struct {
	rng *sim.RNG
	bad bool
}

// Injector applies a Plan's per-link reception models. It implements the
// PHY's Impairment interface and is consulted once per otherwise-intact
// frame delivery; collision- or SINR-corrupted frames never reach it, so
// enabling it perturbs no other layer's randomness.
type Injector struct {
	plan  Plan
	base  *sim.RNG // fork-only seed stream; never drawn from
	links map[linkKey]*linkState
	stats Stats
}

// NewInjector builds an injector for plan drawing from rng (which the
// injector owns: per-link streams are forked from it by label, so creation
// order never shifts a stream). It panics on an invalid plan, like the rest
// of the scenario builders.
func NewInjector(plan Plan, rng *sim.RNG) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("fault: NewInjector with nil RNG")
	}
	return &Injector{plan: plan, base: rng, links: make(map[linkKey]*linkState)}
}

// Stats returns the injector's counters so far.
func (in *Injector) Stats() Stats { return in.stats }

// link returns (creating on first use) the state for src→dst. The stream is
// forked by label from the never-drawn base, so it is identical no matter
// when the link first carries a frame.
func (in *Injector) link(src, dst packet.NodeID) *linkState {
	k := linkKey{src, dst}
	ls, ok := in.links[k]
	if !ok {
		ls = &linkState{rng: in.base.Fork(fmt.Sprintf("link/%v->%v", src, dst))}
		in.links[k] = ls
	}
	return ls
}

// DropRx implements the PHY impairment hook: it decides whether the frame
// p, arriving intact at dst, is destroyed by the configured error models.
func (in *Injector) DropRx(dst packet.NodeID, p *packet.Packet) bool {
	ls := in.link(p.Mac.Src, dst)
	drop := false

	if b := in.plan.Bernoulli; b.Enabled() {
		if ls.rng.Float64() < b.FrameLossProb(p.Size) {
			drop = true
			in.stats.DroppedBernoulli++
		}
	}

	if g := in.plan.Burst; g.Enabled() {
		lossP := g.LossGood
		if ls.bad {
			lossP = g.LossBad
		}
		lost := lossP > 0 && ls.rng.Float64() < lossP
		// Advance the chain once per frame, whatever the loss verdict.
		pFlip := g.PGoodBad
		if ls.bad {
			pFlip = g.PBadGood
		}
		if pFlip > 0 && ls.rng.Float64() < pFlip {
			ls.bad = !ls.bad
			in.stats.BurstTransitions++
		}
		if lost && !drop {
			in.stats.DroppedBurst++
		}
		drop = drop || lost
	}

	if drop && p.Mac.Subtype == packet.MacData {
		switch p.Type {
		case packet.TypeTCP, packet.TypeCBR, packet.TypeEBL:
			in.stats.DroppedData++
		}
	}
	return drop
}
