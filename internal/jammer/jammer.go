// Package jammer models denial-of-service radio interference against the
// inter-vehicle network — the attack the paper's §III.E discussion (and
// its companion work on DoS prevention) raises when weighing 802.11's
// performance against TDMA+FHSS's resilience. A jammer is a bare radio
// with no protocol stack that floods its channel with meaningless frames:
// they are never delivered upward, but they occupy the medium, defeat
// carrier sense and corrupt overlapping receptions.
package jammer

import (
	"fmt"

	"vanetsim/internal/mac"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/sim"
)

// Config shapes the interference.
type Config struct {
	// Channel is the frequency channel to jam (Sweep overrides).
	Channel int
	// Sweep, when positive, cycles the jammer across channels 0..Sweep-1,
	// dwelling one burst per channel — a sweep jammer against FHSS.
	Sweep int
	// FrameBytes is the size of each jamming burst.
	FrameBytes int
	// RateBps is the jammer's transmit bit rate.
	RateBps float64
	// DutyCycle in (0, 1] is the fraction of time spent transmitting.
	DutyCycle float64
	// StartAt and StopAt bound the attack window; StopAt 0 means forever.
	StartAt, StopAt sim.Time
}

// DefaultConfig returns a continuous single-channel jammer.
func DefaultConfig() Config {
	return Config{
		Channel:    0,
		FrameBytes: 1500,
		RateBps:    1e6,
		DutyCycle:  1.0,
	}
}

// Jammer is an attacking node. It implements phy.MAC so it can own a
// radio, but it ignores everything it hears.
type Jammer struct {
	id    packet.NodeID
	sched *sim.Scheduler
	radio *phy.Radio
	pf    *packet.Factory
	cfg   Config

	channel  int
	bursts   int
	txErrors int
	running  bool
}

var _ phy.MAC = (*Jammer)(nil)

// New creates a jammer on the given radio and starts it per cfg. The
// radio must already be attached to a channel. Invalid attack parameters
// are reported as an error rather than a panic so scenario sweeps over
// user-supplied grids degrade gracefully.
func New(id packet.NodeID, sched *sim.Scheduler, radio *phy.Radio, pf *packet.Factory, cfg Config) (*Jammer, error) {
	if cfg.FrameBytes <= 0 {
		return nil, fmt.Errorf("jammer: FrameBytes must be positive, got %d", cfg.FrameBytes)
	}
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("jammer: RateBps must be positive, got %g", cfg.RateBps)
	}
	if cfg.DutyCycle <= 0 || cfg.DutyCycle > 1 {
		return nil, fmt.Errorf("jammer: DutyCycle must be in (0, 1], got %g", cfg.DutyCycle)
	}
	j := &Jammer{id: id, sched: sched, radio: radio, pf: pf, cfg: cfg, channel: cfg.Channel}
	radio.SetMAC(j)
	radio.SetFreqFn(func() int { return j.channel })
	sched.AtKind(sim.KindApp, maxTime(cfg.StartAt, sched.Now()), j.start)
	return j, nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// Bursts returns how many jamming frames have been transmitted.
func (j *Jammer) Bursts() int { return j.bursts }

// TxErrors returns how many bursts the radio refused.
func (j *Jammer) TxErrors() int { return j.txErrors }

// Running reports whether the attack is active.
func (j *Jammer) Running() bool { return j.running }

func (j *Jammer) start() {
	j.running = true
	j.burst()
}

func (j *Jammer) burst() {
	if !j.running {
		return
	}
	if j.cfg.StopAt > 0 && j.sched.Now() >= j.cfg.StopAt {
		j.running = false
		return
	}
	if j.cfg.Sweep > 0 {
		j.channel = j.bursts % j.cfg.Sweep
	}
	p := j.pf.New(packet.TypeCBR, j.cfg.FrameBytes, j.sched.Now())
	p.Mac = packet.MacHdr{Src: j.id, Dst: packet.Broadcast, Subtype: packet.MacJam}
	dur := mac.Duration(j.cfg.FrameBytes, j.cfg.RateBps)
	j.bursts++
	if err := j.radio.Transmit(p, dur); err != nil {
		j.txErrors++ // burst lost; keep the attack cadence
	}
	period := sim.Time(float64(dur) / j.cfg.DutyCycle)
	j.sched.ScheduleKind(sim.KindApp, period, j.burst)
}

// RecvFromPhy implements phy.MAC: the jammer ignores all traffic, so
// every frame it decodes goes straight back to the channel's clone pool.
func (j *Jammer) RecvFromPhy(p *packet.Packet, _ bool) {
	j.radio.ReleaseFrame(p)
}

// ChannelBusy implements phy.MAC.
func (j *Jammer) ChannelBusy() {}

// ChannelIdle implements phy.MAC.
func (j *Jammer) ChannelIdle() {}
