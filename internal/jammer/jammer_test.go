package jammer_test

import (
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/jammer"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/sim"
)

type recorder struct {
	frames    int
	dataClean int // clean MacData frames (jam bursts excluded)
	corrupted int
	busy      int
}

func (m *recorder) RecvFromPhy(p *packet.Packet, corrupt bool) {
	if corrupt {
		m.corrupted++
		return
	}
	m.frames++
	if p.Mac.Subtype == packet.MacData {
		m.dataClean++
	}
}
func (m *recorder) ChannelBusy() { m.busy++ }
func (m *recorder) ChannelIdle() {}

func rig(t *testing.T) (*sim.Scheduler, *phy.Channel, *packet.Factory) {
	t.Helper()
	s := sim.New()
	return s, phy.NewChannel(s, phy.DefaultPropagation()), &packet.Factory{}
}

func victim(s *sim.Scheduler, ch *phy.Channel, id packet.NodeID, x float64) (*phy.Radio, *recorder) {
	r := phy.NewRadio(id, s, func() geom.Vec2 { return geom.V(x, 0) }, phy.DefaultRadioParams())
	m := &recorder{}
	r.SetMAC(m)
	ch.Attach(r)
	return r, m
}

func newJammer(t *testing.T, s *sim.Scheduler, ch *phy.Channel, pf *packet.Factory, cfg jammer.Config) *jammer.Jammer {
	t.Helper()
	r := phy.NewRadio(99, s, func() geom.Vec2 { return geom.V(0, 30) }, phy.DefaultRadioParams())
	ch.Attach(r)
	j, err := jammer.New(99, s, r, pf, cfg)
	if err != nil {
		t.Fatalf("jammer.New: %v", err)
	}
	return j
}

func TestJammerFloodsContinuously(t *testing.T) {
	s, ch, pf := rig(t)
	_, vm := victim(s, ch, 1, 0)
	cfg := jammer.DefaultConfig() // 1500 B at 1 Mb/s = 12 ms per burst
	j := newJammer(t, s, ch, pf, cfg)
	s.RunUntil(1.2)
	if got := j.Bursts(); got < 95 || got > 105 {
		t.Fatalf("bursts in 1.2 s = %d, want ~100 at full duty", got)
	}
	// The victim senses the energy but never gets a deliverable frame
	// (jam frames are not MacData; this recorder counts raw deliveries,
	// which the radio does make — the MAC-level filtering is tested in
	// mactdma/mac80211).
	if vm.busy == 0 {
		t.Fatal("victim never sensed the jammer")
	}
}

func TestJammerDutyCycle(t *testing.T) {
	s, ch, pf := rig(t)
	victim(s, ch, 1, 0)
	cfg := jammer.DefaultConfig()
	cfg.DutyCycle = 0.5
	j := newJammer(t, s, ch, pf, cfg)
	s.RunUntil(1.2)
	if got := j.Bursts(); got < 45 || got > 55 {
		t.Fatalf("bursts at 50%% duty = %d, want ~50", got)
	}
}

func TestJammerWindow(t *testing.T) {
	s, ch, pf := rig(t)
	victim(s, ch, 1, 0)
	cfg := jammer.DefaultConfig()
	cfg.StartAt = 1
	cfg.StopAt = 2
	j := newJammer(t, s, ch, pf, cfg)
	s.RunUntil(0.5)
	if j.Bursts() != 0 || j.Running() {
		t.Fatal("jammer active before StartAt")
	}
	s.RunUntil(3)
	if j.Running() {
		t.Fatal("jammer still running after StopAt")
	}
	if got := j.Bursts(); got < 75 || got > 90 {
		t.Fatalf("bursts in a 1 s window = %d, want ~83", got)
	}
}

func TestJammerSweepCyclesChannels(t *testing.T) {
	s, ch, pf := rig(t)
	// Victim tuned to channel 3: a sweep over 4 channels should be heard
	// only ~1/4 of the time.
	r := phy.NewRadio(1, s, func() geom.Vec2 { return geom.V(0, 0) }, phy.DefaultRadioParams())
	m := &recorder{}
	r.SetMAC(m)
	r.SetFreqFn(func() int { return 3 })
	ch.Attach(r)
	cfg := jammer.DefaultConfig()
	cfg.Sweep = 4
	j := newJammer(t, s, ch, pf, cfg)
	s.RunUntil(1.2)
	heard := m.frames + m.corrupted
	if heard == 0 {
		t.Fatal("sweep jammer never crossed the victim's channel")
	}
	if frac := float64(heard) / float64(j.Bursts()); frac < 0.15 || frac > 0.35 {
		t.Fatalf("victim heard %.2f of sweep bursts, want ~0.25", frac)
	}
}

func TestJammerCorruptsOverlappingReception(t *testing.T) {
	s, ch, pf := rig(t)
	// A legitimate sender and a jammer close to the receiver.
	tx, _ := victim(s, ch, 1, 0)
	_, rxm := victim(s, ch, 2, 25)
	cfg := jammer.DefaultConfig()
	newJammer(t, s, ch, pf, cfg) // at (0, 30): 39 m from rx — no capture escape
	var f packet.Factory
	s.Schedule(0.1, func() {
		p := f.New(packet.TypeTCP, 1000, s.Now())
		p.Mac = packet.MacHdr{Src: 1, Dst: 2, Subtype: packet.MacData}
		tx.Transmit(p, 8*sim.Millisecond)
	})
	s.RunUntil(0.5)
	if rxm.dataClean > 0 {
		t.Fatalf("data frame survived continuous co-channel jamming (%d clean)", rxm.dataClean)
	}
}

func TestJammerIgnoresIncoming(t *testing.T) {
	s, ch, pf := rig(t)
	tx, _ := victim(s, ch, 1, 0)
	cfg := jammer.DefaultConfig()
	cfg.StartAt = 10
	j := newJammer(t, s, ch, pf, cfg)
	var f packet.Factory
	p := f.New(packet.TypeTCP, 100, 0)
	p.Mac = packet.MacHdr{Src: 1, Dst: packet.Broadcast, Subtype: packet.MacData}
	tx.Transmit(p, sim.Millisecond)
	s.RunUntil(1)
	if j.Bursts() != 0 {
		t.Fatal("incoming traffic should not trigger the jammer")
	}
}

// Regression: an invalid attack configuration must be reported as an
// error, not a panic, so sweeps over user-supplied grids degrade per-run.
func TestJammerBadConfigError(t *testing.T) {
	s, ch, pf := rig(t)
	bad := []func(*jammer.Config){
		func(c *jammer.Config) { c.DutyCycle = 0 },
		func(c *jammer.Config) { c.DutyCycle = 1.5 },
		func(c *jammer.Config) { c.FrameBytes = 0 },
		func(c *jammer.Config) { c.RateBps = -1 },
	}
	for i, mod := range bad {
		cfg := jammer.DefaultConfig()
		mod(&cfg)
		r := phy.NewRadio(packet.NodeID(200+i), s, func() geom.Vec2 { return geom.V(0, 30) }, phy.DefaultRadioParams())
		ch.Attach(r)
		if _, err := jammer.New(packet.NodeID(200+i), s, r, pf, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
