package phy

import (
	"fmt"
	"runtime"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// TestShardedBroadcastMatchesSerialWithMobility is the pipeline's
// byte-identity property: the same traffic over a dense moving column —
// vehicles braking and redirecting mid-run, crossing grid-cell (shard
// region) boundaries while frames are in flight — must produce an
// event-for-event identical delivery log at every shard count, because
// staged computation commits in the serial offer loop's candidate order.
func TestShardedBroadcastMatchesSerialWithMobility(t *testing.T) {
	type delivery struct {
		at    sim.Time
		radio int
		uid   uint64
	}
	run := func(shards int) ([]delivery, ChannelStats, []PipeShardStats) {
		s := sim.New()
		ch := NewChannel(s, DefaultPropagation())
		ch.EnableCulling()
		ch.EnableSharding(shards)
		defer ch.CloseSharding()
		var log []delivery
		var pf packet.Factory
		const n = 48
		radios := make([]*Radio, 0, n+1)
		attach := func(id int, pos PositionFn) *Radio {
			r := NewRadio(packet.NodeID(id), s, pos, DefaultRadioParams())
			idx := len(radios)
			r.SetMAC(recorderFunc(func(p *packet.Packet, _ bool) {
				log = append(log, delivery{at: s.Now(), radio: idx, uid: p.UID})
			}))
			ch.Attach(r)
			radios = append(radios, r)
			return r
		}
		// A dense column along +x: close enough that broadcasts stage tens
		// of candidates, long enough to span several grid cells.
		vehicles := make([]*mobility.Vehicle, 0, n)
		for i := 0; i < n; i++ {
			v := mobility.NewVehicle(packet.NodeID(i), s, geom.V(float64(i)*60, 0))
			r := attach(i, v.Position)
			ch.SetMotion(r, func() Motion {
				pos, vel, acc := v.Motion()
				return Motion{Pos: pos, Vel: vel, Acc: acc}
			})
			radio := r
			v.OnMotionChange(func() { ch.MotionChanged(radio) })
			vehicles = append(vehicles, v)
		}
		// One radio with no motion info: staged by slot, never by region.
		attach(n, fixedPos(1500, 40))

		for i, v := range vehicles {
			v.SetDest(geom.V(1e6, 0), 30+float64(i%5))
		}
		for i, v := range vehicles {
			if i%3 == 0 {
				v := v
				s.At(sim.Time(2+float64(i)/10), func() { v.Brake(6) })
			}
			if i%7 == 1 {
				v := v
				s.At(sim.Time(4+float64(i)/10), func() { v.SetDest(geom.V(0, 1e6), 25) })
			}
		}
		for tick := 0; tick < 120; tick++ {
			src := radios[(tick*7)%len(radios)]
			at := sim.Time(float64(tick) * 0.09)
			s.At(at, func() {
				p := pf.New(packet.TypeCBR, 100, s.Now())
				_ = src.Transmit(p, 0.001)
			})
		}
		s.RunUntil(12)
		return log, ch.Stats(), ch.PipeStats()
	}

	serial, serialStats, _ := run(1)
	check := func(t *testing.T, shards int) {
		{
			got, gotStats, pipe := run(shards)
			if gotStats != serialStats {
				t.Fatalf("channel stats diverged: %d shards %+v vs serial %+v", shards, gotStats, serialStats)
			}
			if len(got) != len(serial) {
				t.Fatalf("delivery counts diverged: %d shards %d vs serial %d", shards, len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("delivery %d diverged: %d shards %+v vs serial %+v", i, shards, got[i], serial[i])
				}
			}
			// The pipeline must actually have engaged, on every shard.
			if len(pipe) != shards {
				t.Fatalf("PipeStats reported %d shards, want %d", len(pipe), shards)
			}
			var staged uint64
			for i, ps := range pipe {
				if ps.Batches == 0 || ps.Batches != pipe[0].Batches {
					t.Fatalf("shard %d ran %d batches (shard 0: %d); the pipeline never engaged or skipped a shard",
						i, ps.Batches, pipe[0].Batches)
				}
				if ps.Heard > ps.Staged {
					t.Fatalf("shard %d heard %d of %d staged", i, ps.Heard, ps.Staged)
				}
				staged += ps.Staged
			}
			if staged == 0 {
				t.Fatal("no candidates were ever staged")
			}
		}
	}

	// Worker mode: forceParallel spawns the per-shard goroutines even on a
	// single-CPU host, so -race observes the concurrent compute stage.
	forceParallel = true
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("workers/shards=%d", shards), func(t *testing.T) { check(t, shards) })
	}
	forceParallel = false

	// Inline mode: with GOMAXPROCS=1 EnableSharding spawns no workers and
	// the simulation goroutine computes every shard itself; the committed
	// event sequence must be the same one.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("inline/shards=%d", shards), func(t *testing.T) { check(t, shards) })
	}
}

// nonDistProp hides a model's distance fast path behind the plain
// Propagation interface; the pipeline cannot stage such a model (compute
// order would matter for stateful ones), so EnableSharding must decline.
type nonDistProp struct{ Propagation }

func TestEnableShardingRequiresDistPropagation(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, nonDistProp{DefaultPropagation()})
	ch.EnableCulling()
	ch.EnableSharding(4)
	if ch.ShardingEnabled() {
		t.Fatal("sharding enabled under a propagation model with no distance fast path")
	}
	if got := ch.PipeStats(); got != nil {
		t.Fatalf("PipeStats = %v, want nil when sharding never enabled", got)
	}
}

// TestCloseShardingKeepsStats pins the counter lifecycle: stats survive
// CloseSharding (telemetry harvests after the run), and a closed channel
// falls back to the serial loop rather than deadlocking on dead workers.
func TestCloseShardingKeepsStats(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	ch.EnableCulling()
	ch.EnableSharding(2)
	if !ch.ShardingEnabled() {
		t.Fatal("sharding did not enable")
	}
	ch.CloseSharding()
	ch.CloseSharding() // idempotent
	if ch.ShardingEnabled() {
		t.Fatal("sharding still reported enabled after close")
	}
	if got := ch.PipeStats(); len(got) != 2 {
		t.Fatalf("PipeStats after close = %v, want 2 shards of counters", got)
	}
}
