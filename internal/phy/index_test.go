package phy

import (
	"fmt"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// staticMotion adapts a fixed point to the index's MotionFn.
func staticMotion(x, y float64) MotionFn {
	return func() Motion { return Motion{Pos: geom.V(x, y)} }
}

// TestCandidatesCoverAllAudibleRadios is the core culling property: every
// radio the power check would accept must appear in the candidate list.
// Placements include uniform pseudo-random scatter, points exactly on grid
// cell boundaries, and points at exactly the carrier-sense range.
func TestCandidatesCoverAllAudibleRadios(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	ch.EnableCulling()
	params := DefaultRadioParams()
	prop := DefaultPropagation()
	csRange := prop.Range(params.TxPowerW, params.CSThreshW)
	cell := ch.idx.queryRadius()

	rng := sim.NewRNG(42)
	var radios []*Radio
	addAt := func(x, y float64) {
		r := NewRadio(packet.NodeID(len(radios)), s, fixedPos(x, y), params)
		r.SetMAC(&recorder{})
		ch.Attach(r)
		ch.SetMotion(r, staticMotion(x, y))
		radios = append(radios, r)
	}
	for i := 0; i < 300; i++ {
		addAt(rng.Range(-3000, 3000), rng.Range(-3000, 3000))
	}
	// Cell corners and edges: positions where floor-based bucketing is
	// most likely to disagree with the distance test.
	for i := -2; i <= 2; i++ {
		addAt(float64(i)*cell, 0)
		addAt(float64(i)*cell, cell)
		addAt(float64(i)*cell+cell/2, -cell)
	}
	// Exactly at carrier-sense range from the origin (the boundary the
	// rangeMargin epsilon exists for).
	addAt(csRange, 0)
	addAt(0, -csRange)

	for trial := 0; trial < 64; trial++ {
		src := geom.V(rng.Range(-3000, 3000), rng.Range(-3000, 3000))
		got := ch.idx.candidates(s.Now(), src)
		inSet := make(map[int32]bool, len(got))
		for i, slot := range got {
			inSet[slot] = true
			if i > 0 && got[i-1] >= slot {
				t.Fatalf("candidates not strictly ascending: %d then %d", got[i-1], slot)
			}
		}
		for slot, r := range radios {
			audible := prop.RxPower(params.TxPowerW, src, r.pos()) >= params.CSThreshW
			if audible && !inSet[int32(slot)] {
				t.Fatalf("radio %d at %v audible from %v (dist %.3f, cs range %.3f) but culled",
					slot, r.pos(), src, src.Dist(r.pos()), csRange)
			}
		}
	}
}

// TestCulledBroadcastMatchesScanWithMobility runs the same traffic over a
// culled and a full-scan channel — vehicles accelerating, braking and
// redirecting mid-run, plus an unindexed static radio — and demands the
// delivery logs be identical event for event.
func TestCulledBroadcastMatchesScanWithMobility(t *testing.T) {
	type delivery struct {
		at    sim.Time
		radio int
		uid   uint64
	}
	run := func(cull bool) ([]delivery, ChannelStats) {
		s := sim.New()
		ch := NewChannel(s, DefaultPropagation())
		if cull {
			ch.EnableCulling()
		}
		var log []delivery
		var pf packet.Factory
		const n = 40
		radios := make([]*Radio, 0, n+1)
		attach := func(id int, pos PositionFn) *Radio {
			r := NewRadio(packet.NodeID(id), s, pos, DefaultRadioParams())
			idx := len(radios)
			r.SetMAC(recorderFunc(func(p *packet.Packet, _ bool) {
				log = append(log, delivery{at: s.Now(), radio: idx, uid: p.UID})
			}))
			ch.Attach(r)
			radios = append(radios, r)
			return r
		}
		// A column of vehicles along +x, spaced past each other's carrier
		// sense, cruising then braking at staggered times.
		vehicles := make([]*mobility.Vehicle, 0, n)
		for i := 0; i < n; i++ {
			v := mobility.NewVehicle(packet.NodeID(i), s, geom.V(float64(i)*150, 0))
			r := attach(i, v.Position)
			ch.SetMotion(r, func() Motion {
				pos, vel, acc := v.Motion()
				return Motion{Pos: pos, Vel: vel, Acc: acc}
			})
			radio := r
			v.OnMotionChange(func() { ch.MotionChanged(radio) })
			vehicles = append(vehicles, v)
		}
		// One radio with no motion info: must stay an always-candidate.
		attach(n, fixedPos(1000, 40))

		for i, v := range vehicles {
			v.SetDest(geom.V(1e6, 0), 30+float64(i%5))
		}
		for i, v := range vehicles {
			if i%3 == 0 {
				v := v
				s.At(sim.Time(2+float64(i)/10), func() { v.Brake(6) })
			}
			if i%7 == 1 {
				v := v
				// Redirect mid-run: a phase-preserving trajectory change the
				// index must hear about.
				s.At(sim.Time(4+float64(i)/10), func() { v.SetDest(geom.V(0, 1e6), 25) })
			}
		}
		// Transmissions sprinkled through the run, mid-segment by design.
		for tick := 0; tick < 80; tick++ {
			src := radios[(tick*7)%len(radios)]
			at := sim.Time(float64(tick) * 0.11)
			s.At(at, func() {
				p := pf.New(packet.TypeCBR, 100, s.Now())
				_ = src.Transmit(p, 0.001)
			})
		}
		s.RunUntil(10)
		return log, ch.Stats()
	}

	culled, culledStats := run(true)
	scanned, scannedStats := run(false)
	if culledStats != scannedStats {
		t.Fatalf("channel stats diverged: culled %+v vs scan %+v", culledStats, scannedStats)
	}
	if len(culled) != len(scanned) {
		t.Fatalf("delivery counts diverged: culled %d vs scan %d", len(culled), len(scanned))
	}
	for i := range culled {
		if culled[i] != scanned[i] {
			t.Fatalf("delivery %d diverged: culled %+v vs scan %+v", i, culled[i], scanned[i])
		}
	}
}

// recorderFunc adapts a function to the MAC interface for delivery-log
// tests that only care about RecvFromPhy.
type recorderFunc func(p *packet.Packet, corrupted bool)

func (f recorderFunc) RecvFromPhy(p *packet.Packet, corrupted bool) { f(p, corrupted) }
func (recorderFunc) ChannelBusy()                                   {}
func (recorderFunc) ChannelIdle()                                   {}

// TestBroadcastSamplesReceiverPositionOnce pins the fix for the double
// dst.pos() sample: power and propagation delay must come from the same
// position, so a receiver's position callback fires exactly once per
// broadcast it is offered.
func TestBroadcastSamplesReceiverPositionOnce(t *testing.T) {
	for _, cull := range []bool{false, true} {
		s := sim.New()
		ch := NewChannel(s, DefaultPropagation())
		if cull {
			ch.EnableCulling()
		}
		tx := NewRadio(0, s, fixedPos(0, 0), DefaultRadioParams())
		tx.SetMAC(&recorder{})
		ch.Attach(tx)
		calls := 0
		rx := NewRadio(1, s, func() geom.Vec2 {
			calls++
			return geom.V(100, 0)
		}, DefaultRadioParams())
		rx.SetMAC(&recorder{})
		ch.Attach(rx)

		var pf packet.Factory
		if err := tx.Transmit(pf.New(packet.TypeCBR, 100, 0), 0.001); err != nil {
			t.Fatal(err)
		}
		if calls != 1 {
			t.Fatalf("cull=%v: receiver position sampled %d times during broadcast, want 1", cull, calls)
		}
	}
}

// TestFrequencyFilteredArrivalDoesNotClone pins the clone elision: an
// arrival borrows the transmitter's packet, so an arrival discarded by the
// frequency filter never allocates (or pools) a per-receiver clone at all.
func TestFrequencyFilteredArrivalDoesNotClone(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	tx := NewRadio(0, s, fixedPos(0, 0), DefaultRadioParams())
	tx.SetMAC(&recorder{})
	ch.Attach(tx)
	rxMAC := &recorder{}
	rx := NewRadio(1, s, fixedPos(100, 0), DefaultRadioParams())
	rx.SetMAC(rxMAC)
	rx.SetFreqFn(func() int { return 7 }) // tuned away: every arrival filtered
	ch.Attach(rx)

	var pf packet.Factory
	if err := tx.Transmit(pf.New(packet.TypeCBR, 100, 0), 0.001); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	if got := ch.Stats().FilteredFreq; got != 1 {
		t.Fatalf("FilteredFreq = %d, want 1", got)
	}
	if len(rxMAC.frames) != 0 {
		t.Fatalf("filtered receiver still got %d frames", len(rxMAC.frames))
	}
	if len(ch.pktFree) != 0 {
		t.Fatalf("free list holds %d clones, want 0: a borrowed arrival has no clone to pool", len(ch.pktFree))
	}
}

// TestEagerCloneRecycledOnFilter pins the eager-clone fallback (first bit
// arriving at or after the sender's end of transmission): its filtered
// clone must land on the channel's free list and back the next eager clone.
func TestEagerCloneRecycledOnFilter(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	tx := NewRadio(0, s, fixedPos(0, 0), DefaultRadioParams())
	tx.SetMAC(&recorder{})
	ch.Attach(tx)
	rxMAC := &recorder{}
	rx := NewRadio(1, s, fixedPos(100, 0), DefaultRadioParams())
	rx.SetMAC(rxMAC)
	rx.SetFreqFn(func() int { return 7 }) // tuned away: every arrival filtered
	ch.Attach(rx)

	// 100 m of propagation is ~333 ns; a 100 ns frame ends before its first
	// bit lands, so offer must clone eagerly rather than borrow.
	const dur = 100e-9
	var pf packet.Factory
	if err := tx.Transmit(pf.New(packet.TypeCBR, 100, 0), dur); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	if got := ch.Stats().FilteredFreq; got != 1 {
		t.Fatalf("FilteredFreq = %d, want 1", got)
	}
	if len(ch.pktFree) != 1 {
		t.Fatalf("free list holds %d clones after a filtered eager arrival, want 1", len(ch.pktFree))
	}
	recycled := ch.pktFree[0]
	if recycled.Payload != nil {
		t.Fatal("released clone still pins a payload")
	}
	// The next eager broadcast must reuse the pooled struct, not allocate.
	if err := tx.Transmit(pf.New(packet.TypeCBR, 100, 0), dur); err != nil {
		t.Fatal(err)
	}
	if len(ch.pktFree) != 0 {
		t.Fatal("second broadcast did not pop the recycled clone")
	}
	s.RunUntil(2)
	if len(ch.pktFree) != 1 {
		t.Fatal("recycled clone not returned after second filtered arrival")
	}
	if ch.pktFree[0] != recycled {
		t.Fatal("free list grew a new struct instead of reusing the recycled one")
	}
}

// TestCloneIntoDeepCopies guards CloneInto's aliasing contract: header
// reuse must never leak state from the pooled destination or share
// mutable memory with the source.
func TestCloneIntoDeepCopies(t *testing.T) {
	var pf packet.Factory
	src := pf.New(packet.TypeTCP, 1000, 3)
	src.TCP = &packet.TCPHdr{Seq: 9, Echo: 1.5}
	dst := &packet.Packet{TCP: &packet.TCPHdr{Seq: 77, Retransmit: true}}
	oldHdr := dst.TCP

	got := src.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto must return dst")
	}
	if dst.TCP == src.TCP {
		t.Fatal("TCP header aliased between source and clone")
	}
	if dst.TCP != oldHdr {
		t.Fatal("CloneInto dropped the pooled TCP header allocation")
	}
	if *dst.TCP != *src.TCP {
		t.Fatalf("TCP header not copied: %+v vs %+v", *dst.TCP, *src.TCP)
	}
	dst.TCP.Seq = 1234
	if src.TCP.Seq != 9 {
		t.Fatal("mutating the clone's TCP header reached the source")
	}
	// A TCP-less source must not resurrect the pooled header.
	plain := pf.New(packet.TypeCBR, 64, 4)
	plain.CloneInto(dst)
	if dst.TCP != nil {
		t.Fatal("clone of a TCP-less packet kept a stale TCP header")
	}
}

// TestIndexLateActivation covers the attach-order corner: radios that
// attach (and receive motion info) while no finite cull range exists yet
// must be promoted into the grid when a normally-parameterised radio
// finally provides one.
func TestIndexLateActivation(t *testing.T) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	ch.EnableCulling()
	degenerate := DefaultRadioParams()
	degenerate.TxPowerW = 0 // no finite range derivable
	r0 := NewRadio(0, s, fixedPos(0, 0), degenerate)
	r0.SetMAC(&recorder{})
	ch.Attach(r0)
	ch.SetMotion(r0, staticMotion(0, 0))
	if ch.idx.active() {
		t.Fatal("index active with a degenerate radio only")
	}
	// A normal radio arrives: the index must activate and index r0 too.
	r1 := NewRadio(1, s, fixedPos(100, 0), DefaultRadioParams())
	r1.SetMAC(&recorder{})
	ch.Attach(r1)
	ch.SetMotion(r1, staticMotion(100, 0))
	if !ch.idx.active() {
		t.Fatal("index still inactive after a normal radio attached")
	}
	got := ch.idx.candidates(s.Now(), geom.V(50, 0))
	want := []int32{0, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("candidates = %v, want %v (degenerate-era radio lost)", got, want)
	}
}
