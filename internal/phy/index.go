package phy

import (
	"math"

	"vanetsim/internal/geom"
	"vanetsim/internal/sim"
)

// Motion is an instantaneous kinematic sample: the node follows
// pos + vel·t + ½·acc·t² until its next trajectory change.
type Motion struct {
	Pos, Vel, Acc geom.Vec2
}

// MotionFn reports a node's current motion segment. The contract the
// spatial index depends on: between two calls with no MotionChanged
// notification in between, the node moves exactly along the reported
// constant-acceleration law. mobility.Vehicle satisfies this — its
// trajectory is piecewise constant-acceleration and every segment
// replacement fires OnMotionChange.
type MotionFn func() Motion

// rangeMargin widens the cull radius by a relative epsilon so that a
// receiver sitting numerically on the carrier-sense boundary — where
// Propagation.Range and Propagation.RxPower may round the last bit in
// opposite directions — is always iterated. Culling must be conservative:
// it may only skip radios the power check would have skipped anyway.
const rangeMargin = 1e-9

// slackFraction sets the stale-position allowance as a fraction of the
// cull range. Larger slack means fewer re-bucketing samples but a wider
// query disc; a quarter of the carrier-sense range keeps both costs small.
const slackFraction = 0.25

// idxItem is one pending revalidation deadline in the index's internal
// min-heap. Items are lazily deleted: a resample bumps the slot's
// generation, turning every older item for that slot inert.
type idxItem struct {
	until sim.Time
	slot  int32
	gen   uint32
}

// neighborIndex culls broadcast receivers to the transmitter's
// neighborhood. It keeps a uniform grid of slack-stale radio positions:
// each indexed radio's stored position is guaranteed within slack metres
// of its true position until the radio's revalidation deadline, derived
// from its current motion segment (a vehicle doing 30 m/s with a 130 m
// slack needs re-bucketing every ~4 s; a parked one never). Deadlines are
// processed lazily inside broadcast — never via scheduler events, which
// would perturb the sched/* telemetry the golden digests pin.
//
// Radios attached without motion information are never culled: they join
// the always-candidate list, so an index over a partially mobile world
// stays exact and merely degrades toward the full scan.
//
// Determinism contract: the candidate list is sorted by attach slot, so
// culled iteration visits receivers in exactly the relative order the full
// scan would, and the cull disc conservatively covers the carrier-sense
// range of every attached radio pair — the index changes who is iterated,
// never what is delivered.
type neighborIndex struct {
	prop Propagation
	grid *geom.Grid

	// Per-attach-slot state. motion is nil for unindexed radios.
	motion []MotionFn
	gen    []uint32

	heap      []idxItem
	unindexed []int32 // attach slots without motion info, ascending

	// Cull-range inputs, maintained over attached radios. The query disc
	// must cover the worst pair: strongest possible transmitter heard by
	// the most sensitive possible receiver.
	maxTxW float64
	minCSW float64

	cullRange float64 // prop.Range(maxTxW, minCSW), cached
	slack     float64 // stale-position bound baked into the query radius

	scratch []int32 // grid query buffer
	merged  []int32 // grid hits merged with the unindexed list
}

func newNeighborIndex(prop Propagation) *neighborIndex {
	return &neighborIndex{prop: prop, minCSW: math.Inf(1)}
}

// active reports whether culling is usable: a finite positive cull range
// exists. A world with a non-positive carrier-sense threshold has infinite
// range and must fall back to the full scan.
func (ix *neighborIndex) active() bool {
	return ix != nil && ix.cullRange > 0 && !math.IsInf(ix.cullRange, 1)
}

// attach registers a newly attached radio at slot. Radios start unindexed;
// setMotion upgrades them.
func (ix *neighborIndex) attach(slot int, r *Radio, now sim.Time) {
	for len(ix.motion) <= slot {
		ix.motion = append(ix.motion, nil)
		ix.gen = append(ix.gen, 0)
	}
	ix.unindexed = append(ix.unindexed, int32(slot))
	changed := false
	if r.Params.TxPowerW > ix.maxTxW {
		ix.maxTxW = r.Params.TxPowerW
		changed = true
	}
	if r.Params.CSThreshW < ix.minCSW {
		ix.minCSW = r.Params.CSThreshW
		changed = true
	}
	if changed {
		ix.recomputeRange(now)
	}
}

// recomputeRange refreshes the cached cull range and slack after the
// attached-radio extremes moved, rebuilding the grid when the query disc
// outgrew the cell size. A non-positive or infinite range (degenerate
// radio parameters) leaves the index inactive and broadcast full-scanning.
func (ix *neighborIndex) recomputeRange(now sim.Time) {
	if ix.maxTxW <= 0 || ix.minCSW <= 0 || math.IsInf(ix.minCSW, 1) {
		ix.cullRange = 0
		return
	}
	ix.cullRange = ix.prop.Range(ix.maxTxW, ix.minCSW)
	ix.slack = ix.cullRange * slackFraction
	if !ix.active() {
		return
	}
	radius := ix.queryRadius()
	if ix.grid == nil {
		ix.grid = geom.NewGrid(radius)
		// Promote motion-bearing radios that attached before any radio
		// gave the index a finite range to build cells from.
		keep := ix.unindexed[:0]
		for _, s := range ix.unindexed {
			if ix.motion[s] != nil {
				ix.resample(s, now)
			} else {
				keep = append(keep, s)
			}
		}
		ix.unindexed = keep
	} else if radius > ix.grid.Cell() {
		ix.grid.Rebuild(radius)
	}
}

// queryRadius is the disc that conservatively covers every radio whose
// true position could clear any attached receiver's carrier-sense
// threshold: the worst-pair range, a relative epsilon for boundary
// rounding, and the stale-position slack.
func (ix *neighborIndex) queryRadius() float64 {
	return ix.cullRange*(1+rangeMargin) + ix.slack
}

// setMotion upgrades slot from unindexed to indexed, sampling its position
// now. Before the grid materialises the radio simply stays unindexed (an
// always-candidate); recomputeRange promotes it when the first finite cull
// range arrives.
func (ix *neighborIndex) setMotion(slot int, fn MotionFn, now sim.Time) {
	if fn == nil || ix.motion[slot] != nil {
		return
	}
	ix.motion[slot] = fn
	if ix.grid == nil {
		return
	}
	for i, s := range ix.unindexed {
		if s == int32(slot) {
			ix.unindexed = append(ix.unindexed[:i], ix.unindexed[i+1:]...)
			break
		}
	}
	ix.resample(int32(slot), now)
}

// motionChanged re-buckets slot immediately: its previous deadline was
// computed from a trajectory that no longer holds.
func (ix *neighborIndex) motionChanged(slot int, now sim.Time) {
	if slot < len(ix.motion) && ix.motion[slot] != nil {
		ix.resample(int32(slot), now)
	}
}

// resample stores slot's current position and schedules (internally) its
// next revalidation from the current motion segment.
func (ix *neighborIndex) resample(slot int32, now sim.Time) {
	if ix.grid == nil {
		// No finite cull range yet; the index is inactive and broadcast
		// full-scans, so positions need no maintenance.
		return
	}
	m := ix.motion[slot]()
	ix.grid.Update(slot, m.Pos)
	ix.gen[slot]++
	ix.heapPush(idxItem{until: now + ix.horizon(m), slot: slot, gen: ix.gen[slot]})
}

// horizon bounds how long the sampled position stays within slack of the
// true one: the first t with |v|·t + ½|a|·t² = slack, a conservative
// (triangle-inequality) displacement bound for the current segment.
func (ix *neighborIndex) horizon(m Motion) sim.Time {
	v, a := m.Vel.Len(), m.Acc.Len()
	switch {
	case a == 0 && v == 0:
		return sim.Forever
	case a == 0:
		return sim.Time(ix.slack / v)
	default:
		return sim.Time((math.Sqrt(v*v+2*a*ix.slack) - v) / a)
	}
}

// refresh re-buckets every indexed radio whose revalidation deadline has
// passed. Amortised cost is one heap pop per expiry, independent of the
// radio count.
func (ix *neighborIndex) refresh(now sim.Time) {
	for len(ix.heap) > 0 {
		top := ix.heap[0]
		if top.until > now {
			return
		}
		ix.heapPop()
		if top.gen != ix.gen[top.slot] {
			continue // superseded by a later resample
		}
		ix.resample(top.slot, now)
	}
}

// candidates returns the attach slots that may hear a transmission from
// srcPos, in ascending slot order: grid hits within the query disc merged
// with the always-candidate unindexed radios. The returned slice is reused
// across calls.
func (ix *neighborIndex) candidates(now sim.Time, srcPos geom.Vec2) []int32 {
	ix.refresh(now)
	hits := ix.grid.QueryInto(ix.scratch[:0], srcPos, ix.queryRadius())
	ix.scratch = hits[:0]
	if len(ix.unindexed) == 0 {
		return hits
	}
	// Merge two ascending slot lists.
	out := ix.merged[:0]
	i, j := 0, 0
	for i < len(hits) && j < len(ix.unindexed) {
		if hits[i] < ix.unindexed[j] {
			out = append(out, hits[i])
			i++
		} else {
			out = append(out, ix.unindexed[j])
			j++
		}
	}
	out = append(out, hits[i:]...)
	out = append(out, ix.unindexed[j:]...)
	ix.merged = out
	return out
}

// The deadline heap: a hand-rolled binary min-heap on until (ties in any
// order — expired items are processed in one batch and resampling is
// order-independent), matching the repo's no-interface-boxing idiom.

func (ix *neighborIndex) heapPush(it idxItem) {
	ix.heap = append(ix.heap, it)
	j := len(ix.heap) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if ix.heap[parent].until <= ix.heap[j].until {
			break
		}
		ix.heap[parent], ix.heap[j] = ix.heap[j], ix.heap[parent]
		j = parent
	}
}

func (ix *neighborIndex) heapPop() {
	last := len(ix.heap) - 1
	ix.heap[0] = ix.heap[last]
	ix.heap = ix.heap[:last]
	j := 0
	for {
		l := 2*j + 1
		if l >= last {
			break
		}
		small := l
		if r := l + 1; r < last && ix.heap[r].until < ix.heap[l].until {
			small = r
		}
		if ix.heap[j].until <= ix.heap[small].until {
			break
		}
		ix.heap[j], ix.heap[small] = ix.heap[small], ix.heap[j]
		j = small
	}
}
