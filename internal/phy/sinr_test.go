package phy

import (
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// sinrRig builds radios at the given x positions with SINR mode on.
func sinrRig(t *testing.T, xs ...float64) (*sim.Scheduler, []*Radio, []*recorder) {
	t.Helper()
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	params := DefaultRadioParams()
	params.SINRMode = true
	radios := make([]*Radio, len(xs))
	macs := make([]*recorder, len(xs))
	for i, x := range xs {
		radios[i] = NewRadio(packet.NodeID(i), s, fixedPos(x, 0), params)
		macs[i] = &recorder{}
		radios[i].SetMAC(macs[i])
		ch.Attach(radios[i])
	}
	return s, radios, macs
}

func TestSINRCleanDelivery(t *testing.T) {
	s, radios, macs := sinrRig(t, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatal("clean SINR delivery failed")
	}
}

func TestSINRSingleStrongInterfererStillCaptures(t *testing.T) {
	// Desired at 50 m, one interferer at 300 m: signal/interference far
	// above 10 — survives in both models.
	s, radios, macs := sinrRig(t, 0, 50, 300)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Schedule(sim.Millisecond, func() {
		radios[2].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	})
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatal("strong frame should survive one weak interferer under SINR too")
	}
}

func TestSINRAggregationCatchesWhatCaptureMisses(t *testing.T) {
	// Desired sender at 100 m; three interferers at 290 m each. Pairwise:
	// signal/each = (290/100)^4 ≈ 70 ≥ 10, so the legacy capture model
	// passes the frame. Aggregate: signal/(3×interferer) ≈ 23.6 ≥ 10
	// still passes... so use five interferers? Aggregate 70/5 = 14 —
	// passes. Bring them to 230 m: (230/100)^4 ≈ 28 each; five of them
	// give 28/5 ≈ 5.6 < 10 -> corrupted under SINR, captured pairwise.
	run := func(sinr bool) bool {
		s := sim.New()
		ch := NewChannel(s, DefaultPropagation())
		params := DefaultRadioParams()
		params.SINRMode = sinr
		mk := func(id packet.NodeID, x, y float64) *Radio {
			r := NewRadio(id, s, fixedPos(x, y), params)
			r.SetMAC(&recorder{})
			ch.Attach(r)
			return r
		}
		rxm := &recorder{}
		rx := mk(0, 0, 0)
		rx.SetMAC(rxm)
		tx := mk(1, 100, 0)
		var jam []*Radio
		for i := 0; i < 5; i++ {
			jam = append(jam, mk(packet.NodeID(10+i), 230, float64(i-2)*20))
		}
		var f packet.Factory
		tx.Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
		s.Schedule(sim.Millisecond, func() {
			for _, j := range jam {
				j.Transmit(mkPkt(&f, 1000), 2*sim.Millisecond)
			}
		})
		s.Run()
		return len(rxm.frames) == 1 && !rxm.corrupted[0]
	}
	if !run(false) {
		t.Fatal("legacy capture model should pass the frame (each interferer individually weak)")
	}
	if run(true) {
		t.Fatal("SINR model should corrupt the frame (aggregate interference too high)")
	}
}

func TestSINRInterferencePresentAtLockTime(t *testing.T) {
	// An undecodable arrival already on the air when the desired frame
	// begins must count against it.
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	params := DefaultRadioParams()
	params.SINRMode = true
	rxm := &recorder{}
	rx := NewRadio(0, s, fixedPos(0, 0), params)
	rx.SetMAC(rxm)
	ch.Attach(rx)
	near := NewRadio(1, s, fixedPos(150, 0), params)
	near.SetMAC(&recorder{})
	ch.Attach(near)
	// Interferer at 260 m: decodable threshold is ~250 m, so it arrives
	// as noise — but powerful noise relative to a 150 m signal? Signal
	// (150 m): ratio (260/150)^4 ≈ 9.0 < 10 -> corrupted.
	noise := NewRadio(2, s, fixedPos(260, 0), params)
	noise.SetMAC(&recorder{})
	ch.Attach(noise)
	var f packet.Factory
	noise.Transmit(mkPkt(&f, 1500), 10*sim.Millisecond)
	s.Schedule(2*sim.Millisecond, func() {
		near.Transmit(mkPkt(&f, 500), 3*sim.Millisecond)
	})
	s.Run()
	if len(rxm.frames) != 1 {
		t.Fatalf("frames = %d", len(rxm.frames))
	}
	if !rxm.corrupted[0] {
		t.Fatal("pre-existing noise should have corrupted the marginal signal")
	}
}

func TestSINRInterferenceDecays(t *testing.T) {
	// The same marginal geometry, but the noise ends before the signal
	// starts: delivery must succeed (interference bookkeeping decays).
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	params := DefaultRadioParams()
	params.SINRMode = true
	rxm := &recorder{}
	rx := NewRadio(0, s, fixedPos(0, 0), params)
	rx.SetMAC(rxm)
	ch.Attach(rx)
	near := NewRadio(1, s, fixedPos(150, 0), params)
	near.SetMAC(&recorder{})
	ch.Attach(near)
	noise := NewRadio(2, s, fixedPos(260, 0), params)
	noise.SetMAC(&recorder{})
	ch.Attach(noise)
	var f packet.Factory
	noise.Transmit(mkPkt(&f, 500), sim.Millisecond)
	s.Schedule(5*sim.Millisecond, func() {
		near.Transmit(mkPkt(&f, 500), 3*sim.Millisecond)
	})
	s.Run()
	if len(rxm.frames) != 1 || rxm.corrupted[0] {
		t.Fatal("interference must decay once its frame ends")
	}
}
