package phy

import (
	"runtime"
	"sync"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Staged offer pipeline: the sharded half of the channel's intra-run
// parallelism. A broadcast's per-receiver work splits cleanly in two:
//
//   - compute: sample the receiver's position, derive distance, received
//     power, the carrier-sense verdict, and the propagation delay. Pure —
//     it reads immutable radio parameters and piecewise-trajectory state
//     that nothing mutates while a broadcast runs.
//   - commit: pool an arrival, decide borrow-vs-clone, count it, and
//     schedule the first-bit event. Order-sensitive — arrivals must enter
//     the scheduler in candidate order to keep sequence numbers, and with
//     them the whole run, byte-identical.
//
// The pipeline computes stage one across shards — candidates are
// partitioned by their internal/geom grid region — and then commits
// serially in ascending candidate order, exactly the order the serial
// offer loop uses. The partition therefore never affects output: any
// shard count, including the degenerate single shard, produces
// bit-for-bit the serial engine's run. The conservative-window PDES
// runtime (sim.ShardGroup) makes the same guarantee for whole event
// streams; this pipeline applies it to the simulator's highest-volume
// inner loop, where the receivers of one transmission are causally
// independent by construction.

// pipeThreshold is the candidate count below which a broadcast skips the
// pipeline: dispatching shards costs two synchronisations, which only pays
// for itself once a transmission has tens of prospective receivers.
const pipeThreshold = 16

// offerStage is one candidate's precomputed offer: the order-independent
// half of the per-receiver work, filled in by whichever shard owns the
// candidate's grid region.
type offerStage struct {
	dst   *Radio
	shard uint32
	heard bool // cleared carrier sense; power and delay are valid
	power float64
	delay sim.Time
}

// PipeShardStats counts one shard's pipeline activity. The counters are
// host-execution diagnostics in the same sense as wall-clock time: they
// are deterministic for a fixed shard count but necessarily vary across
// shard counts, so they live outside the byte-identity contract (telemetry
// comparisons strip sched/shard_* lines alongside run/wall_*).
type PipeShardStats struct {
	Staged  uint64 // candidates whose compute stage this shard ran
	Heard   uint64 // staged candidates that cleared carrier sense
	Batches uint64 // staged broadcasts this shard participated in
}

// forceParallel makes EnableSharding spawn worker goroutines even on a
// single-CPU host. Tests set it (before enabling sharding) so the
// concurrent compute stage runs — and races surface — under -race
// regardless of the machine the tests happen to run on.
var forceParallel = false

// offerPipe owns the shard workers and their shared per-broadcast state.
// Shard 0 is computed by the simulation goroutine itself; shards 1..n-1
// each have a parked worker goroutine woken per staged broadcast. On a
// single-CPU host the workers could only ever time-slice with the
// simulation goroutine, so no goroutines are spawned and the simulation
// goroutine computes every shard itself, in shard order — the per-shard
// counters and the committed event sequence are identical either way,
// because the shard partition (not the goroutine count) is what the
// stage assignment depends on.
type offerPipe struct {
	shards int
	stages []offerStage
	stats  []PipeShardStats

	// Per-broadcast inputs, written before workers are woken (the channel
	// send orders the writes) and read-only while they run.
	srcPos geom.Vec2
	txPowW float64
	prop   DistPropagation

	start []chan struct{}
	wg    sync.WaitGroup
}

// compute runs the pure stage for every candidate owned by shard. Each
// shard writes only its own candidates' stage slots and its own stats
// entry; position sampling is a pure read of piecewise-trajectory state.
func (p *offerPipe) compute(shard uint32) {
	st := &p.stats[shard]
	st.Batches++
	for i := range p.stages {
		sg := &p.stages[i]
		if sg.shard != shard {
			continue
		}
		st.Staged++
		dstPos := sg.dst.pos()
		dist := p.srcPos.Dist(dstPos)
		pr := p.prop.RxPowerDist(p.txPowW, dist)
		if pr < sg.dst.Params.CSThreshW {
			continue // below the noise floor: invisible
		}
		sg.heard = true
		sg.power = pr
		sg.delay = sim.Time(dist / SpeedOfLight)
		st.Heard++
	}
}

// EnableSharding turns on the staged offer pipeline with n shards. It is a
// no-op for n < 2 or when sharding is already enabled. Sharding requires a
// distance-based propagation model (the fast path every bundled
// deterministic model provides); models that draw per-computation
// randomness (shadowing) must stay serial, so the call declines when no
// such model is available. Position functions of
// attached radios must be safe for concurrent read-only sampling —
// mobility.Vehicle's piecewise-trajectory queries are.
func (c *Channel) EnableSharding(n int) {
	if n < 2 || c.pipe != nil || c.propDist == nil {
		return
	}
	p := &offerPipe{
		shards: n,
		stats:  make([]PipeShardStats, n),
		prop:   c.propDist,
	}
	if runtime.GOMAXPROCS(0) > 1 || forceParallel {
		p.start = make([]chan struct{}, n-1)
		for w := 1; w < n; w++ {
			ch := make(chan struct{}, 1)
			p.start[w-1] = ch
			go func(shard uint32) {
				for range ch {
					p.compute(shard)
					p.wg.Done()
				}
			}(uint32(w))
		}
	}
	c.pipe = p
}

// CloseSharding stops the shard workers and returns broadcast to the
// serial offer loop. Idempotent; the run's accumulated PipeStats survive.
func (c *Channel) CloseSharding() {
	if c.pipe == nil {
		return
	}
	for _, ch := range c.pipe.start {
		close(ch)
	}
	c.pipeStats = c.pipe.stats
	c.pipe = nil
}

// ShardingEnabled reports whether the staged offer pipeline is active.
func (c *Channel) ShardingEnabled() bool { return c.pipe != nil }

// PipeStats returns the per-shard pipeline counters (nil when sharding was
// never enabled). The slice is indexed by shard.
func (c *Channel) PipeStats() []PipeShardStats {
	if c.pipe != nil {
		return c.pipe.stats
	}
	return c.pipeStats
}

// mix64 is a splitmix64-style finalizer: grid cell keys pack the cell
// coordinates into fixed bit fields, so reducing them modulo the shard
// count without mixing would shard on the low coordinate alone.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardOf assigns a candidate slot to a shard by its current grid region,
// so one shard's candidates cluster spatially. Unindexed radios (no grid
// cell) spread by slot. The assignment is deterministic for a fixed shard
// count — and, because commit order is candidate order regardless of
// shard, it never influences output.
func (c *Channel) shardOf(slot int32) uint32 {
	n := uint64(c.pipe.shards)
	if k, ok := c.idx.grid.CellKey(slot); ok {
		return uint32(mix64(k) % n)
	}
	return uint32(uint64(slot) % n)
}

// broadcastStaged is broadcast's pipelined body: stage every candidate,
// compute the pure half across shards, then commit arrivals serially in
// candidate order — the exact tail of the serial offer loop, producing the
// exact event sequence it would.
func (c *Channel) broadcastStaged(src *Radio, cands []int32, srcPos geom.Vec2, p *packet.Packet, duration sim.Time, txFreq int) {
	pp := c.pipe
	stages := pp.stages[:0]
	for _, slot := range cands {
		dst := c.radios[slot]
		if dst == src {
			continue
		}
		stages = append(stages, offerStage{dst: dst, shard: c.shardOf(slot)})
	}
	pp.stages = stages
	pp.srcPos, pp.txPowW = srcPos, src.Params.TxPowerW
	if len(pp.start) == 0 {
		// Single-CPU host: no workers to wake; compute every shard here.
		for w := 0; w < pp.shards; w++ {
			pp.compute(uint32(w))
		}
	} else {
		pp.wg.Add(pp.shards - 1)
		for _, ch := range pp.start {
			ch <- struct{}{}
		}
		pp.compute(0)
		pp.wg.Wait()
	}

	for i := range stages {
		sg := &stages[i]
		if !sg.heard {
			continue
		}
		var ar *arrival
		if n := len(c.arrFree); n > 0 {
			ar = c.arrFree[n-1]
			c.arrFree = c.arrFree[:n-1]
		} else {
			ar = &arrival{}
		}
		ap, owned := p, false
		if sg.delay >= duration {
			// Same pathological-geometry fallback as the serial offer: the
			// first bit would arrive after the sender's end of transmission.
			ap, owned = c.clonePacket(p), true
		}
		*ar = arrival{dst: sg.dst, p: ap, power: sg.power, duration: duration, freq: txFreq, owned: owned}
		c.stats.Offered++
		c.sched.ScheduleArgKind(sim.KindPHY, sg.delay, c.arriveFn, ar)
	}
}
