package phy

import (
	"math"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// dropAll is an Impairment that destroys every frame and records what it saw.
type dropAll struct {
	seen []*packet.Packet
	drop bool
}

func (d *dropAll) DropRx(dst packet.NodeID, p *packet.Packet) bool {
	d.seen = append(d.seen, p)
	return d.drop
}

func TestImpairmentDropsIntactFrame(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	imp := &dropAll{drop: true}
	radios[1].SetImpairment(imp)
	var f packet.Factory
	p := mkPkt(&f, 1000)
	p.Mac.Src = 0
	radios[0].Transmit(p, 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || !macs[1].corrupted[0] {
		t.Fatal("impaired frame must reach the MAC marked corrupted")
	}
	if got := radios[1].Stats().RxImpaired; got != 1 {
		t.Fatalf("RxImpaired = %d, want 1", got)
	}
	if got := radios[1].Stats().RxOK; got != 0 {
		t.Fatalf("RxOK = %d, want 0", got)
	}
	if len(imp.seen) != 1 || imp.seen[0].Mac.Src != 0 {
		t.Fatalf("impairment saw %d frames (src %v), want the one frame from node 0", len(imp.seen), imp.seen[0].Mac.Src)
	}
}

func TestImpairmentNotConsultedOnCollision(t *testing.T) {
	// Equal-power overlap corrupts the locked frame before the impairment
	// hook; the model's randomness must not be consumed for it.
	s, radios, _ := rig(t, -100, 0, 100)
	imp := &dropAll{}
	radios[1].SetImpairment(imp)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	radios[2].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(imp.seen) != 0 {
		t.Fatalf("impairment consulted %d times for collided frames, want 0", len(imp.seen))
	}
	if got := radios[1].Stats().RxCollided; got != 1 {
		t.Fatalf("RxCollided = %d, want 1", got)
	}
}

func TestImpairmentPassthrough(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	radios[1].SetImpairment(&dropAll{drop: false})
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatal("non-dropping impairment must not corrupt the frame")
	}
	if got := radios[1].Stats().RxOK; got != 1 {
		t.Fatalf("RxOK = %d, want 1", got)
	}
}

func TestOutageDropsArrivalsCounted(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	radios[1].SetDown(true)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 0 || macs[1].busy != 0 {
		t.Fatal("a down radio must neither deliver nor carrier-sense")
	}
	if got := radios[1].Stats().RxDroppedOutage; got != 1 {
		t.Fatalf("RxDroppedOutage = %d, want 1 (no silent loss)", got)
	}
	// Recovery: the next frame is heard normally.
	radios[1].SetDown(false)
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatal("recovered radio must receive again")
	}
}

func TestOutageAbortsInProgressReception(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Schedule(sim.Millisecond, func() { radios[1].SetDown(true) })
	s.Run()
	if len(macs[1].frames) != 0 {
		t.Fatal("reception in progress when the outage starts must be destroyed")
	}
	if got := radios[1].Stats().RxDroppedOutage; got != 1 {
		t.Fatalf("RxDroppedOutage = %d, want 1 for the aborted reception", got)
	}
	if radios[1].State() == Receiving {
		t.Fatal("radio stuck in Receiving after outage")
	}
	// The recycled reception struct must not leak into the next lock-on.
	radios[1].SetDown(false)
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatal("post-outage delivery broken")
	}
}

func TestOutageSuppressesTransmit(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	radios[0].SetDown(true)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	if radios[0].State() != Transmitting {
		t.Fatal("suppressed transmit must still walk the MAC's state machine")
	}
	s.Run()
	if radios[0].State() != Idle {
		t.Fatal("radio stuck after suppressed transmit")
	}
	if len(macs[1].frames) != 0 || macs[1].busy != 0 {
		t.Fatal("a down radio must radiate no energy")
	}
	st := radios[0].Stats()
	if st.TxSuppressedOutage != 1 {
		t.Fatalf("TxSuppressedOutage = %d, want 1", st.TxSuppressedOutage)
	}
	if st.TxFrames != 0 {
		t.Fatalf("TxFrames = %d, want 0 (frame never aired)", st.TxFrames)
	}
}

func TestSetDownIdempotent(t *testing.T) {
	s, radios, _ := rig(t, 0, 100)
	radios[1].SetDown(true)
	radios[1].SetDown(true)
	radios[1].SetDown(false)
	radios[1].SetDown(false)
	if radios[1].Down() {
		t.Fatal("radio should be up")
	}
	_ = s
}

func TestShadowingMoments(t *testing.T) {
	m := NewShadowing(DefaultPropagation(), 6, sim.NewRNG(42))
	src, dst := geom.V(0, 0), geom.V(120, 0)
	base := DefaultPropagation().RxPower(0.1, src, dst)

	const n = 50_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		p := m.RxPower(0.1, src, dst)
		db := 10 * math.Log10(p/base)
		sum += db
		sumSq += db * db
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	// Zero-mean in the dB domain, stddev as configured (5-sigma bands for
	// the sample mean and a 2% band for the sample stddev).
	if math.Abs(mean) > 5*6/math.Sqrt(n) {
		t.Fatalf("shadowing dB mean = %v, want ≈ 0", mean)
	}
	if math.Abs(std-6) > 0.12 {
		t.Fatalf("shadowing dB stddev = %v, want ≈ 6", std)
	}
	if m.Samples() != n {
		t.Fatalf("Samples() = %d, want %d", m.Samples(), n)
	}
}

func TestShadowingRangeIsMedian(t *testing.T) {
	base := DefaultPropagation()
	m := NewShadowing(base, 8, sim.NewRNG(1))
	p := DefaultRadioParams()
	if got, want := m.Range(p.TxPowerW, p.RxThreshW), base.Range(p.TxPowerW, p.RxThreshW); got != want {
		t.Fatalf("shadowed Range = %v, want base %v", got, want)
	}
}

func TestShadowingZeroSigmaAndZeroPower(t *testing.T) {
	m := NewShadowing(DefaultPropagation(), 0, sim.NewRNG(1))
	src, dst := geom.V(0, 0), geom.V(100, 0)
	if got, want := m.RxPower(0.1, src, dst), DefaultPropagation().RxPower(0.1, src, dst); got != want {
		t.Fatal("sigma=0 must be a transparent passthrough")
	}
	if m.Samples() != 0 {
		t.Fatal("sigma=0 must consume no randomness")
	}
	if got := m.RxPower(0, src, dst); got != 0 {
		t.Fatalf("zero tx power shadowed to %v", got)
	}
}

func TestShadowingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil base":  func() { NewShadowing(nil, 4, sim.NewRNG(1)) },
		"nil rng":   func() { NewShadowing(DefaultPropagation(), 4, nil) },
		"neg sigma": func() { NewShadowing(DefaultPropagation(), -1, sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
