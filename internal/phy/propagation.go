// Package phy models the wireless physical layer: signal propagation,
// radios, and the shared channel that connects them. The model follows
// ns-2's WirelessPhy/Channel pair, which the paper's simulations ran on:
// received-power thresholds decide carrier sense and receivability, and a
// capture ratio decides whether overlapping frames collide.
package phy

import (
	"math"

	"vanetsim/internal/geom"
	"vanetsim/internal/sim"
)

// SpeedOfLight is the propagation speed used for over-the-air delay, m/s.
const SpeedOfLight = 3e8

// Propagation computes received signal power as a function of transmit
// power and geometry.
type Propagation interface {
	// RxPower returns the received power in watts at dst for a
	// transmission of txPower watts from src.
	RxPower(txPower float64, src, dst geom.Vec2) float64
	// Range returns the distance in metres at which received power falls
	// to thresh watts — the radio's effective range for that threshold.
	Range(txPower, thresh float64) float64
}

// DistPropagation is an optional fast path for models whose received power
// depends on geometry only through the transmitter–receiver distance: the
// channel computes that distance once per candidate (it also needs it for
// the propagation delay) and passes it in, instead of having RxPower
// re-derive it from the positions. Implementations must return bit-
// identical results to RxPower evaluated at the same distance.
type DistPropagation interface {
	Propagation
	// RxPowerDist is RxPower with the src–dst distance precomputed.
	RxPowerDist(txPower, d float64) float64
}

// FreeSpace is the Friis free-space model: Pr = Pt·Gt·Gr·λ² / ((4πd)²·L).
type FreeSpace struct {
	// WavelengthM is the carrier wavelength λ in metres.
	WavelengthM float64
	// GainTx, GainRx are antenna gains (dimensionless, 1.0 = isotropic).
	GainTx, GainRx float64
	// SystemLoss L >= 1 aggregates hardware losses.
	SystemLoss float64
}

var _ DistPropagation = FreeSpace{}

// RxPower implements Propagation. At zero distance the transmit power is
// returned unattenuated.
func (m FreeSpace) RxPower(txPower float64, src, dst geom.Vec2) float64 {
	return m.RxPowerDist(txPower, src.Dist(dst))
}

// RxPowerDist implements DistPropagation.
func (m FreeSpace) RxPowerDist(txPower, d float64) float64 {
	if d == 0 {
		return txPower
	}
	num := txPower * m.GainTx * m.GainRx * m.WavelengthM * m.WavelengthM
	den := 16 * math.Pi * math.Pi * d * d * m.SystemLoss
	return num / den
}

// Range implements Propagation.
func (m FreeSpace) Range(txPower, thresh float64) float64 {
	num := txPower * m.GainTx * m.GainRx * m.WavelengthM * m.WavelengthM
	return math.Sqrt(num / (16 * math.Pi * math.Pi * m.SystemLoss * thresh))
}

// TwoRayGround is ns-2's default outdoor model: free space up to the
// crossover distance dc = 4π·ht·hr/λ, and ground-reflection attenuation
// Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L) beyond it. It fits flat road geometry,
// which is why ad hoc vehicle simulations (and the paper) use it.
type TwoRayGround struct {
	FreeSpace
	// HeightTxM, HeightRxM are antenna heights above ground in metres.
	HeightTxM, HeightRxM float64
}

var _ DistPropagation = TwoRayGround{}

// Crossover returns the distance at which the two-ray term takes over from
// free space.
func (m TwoRayGround) Crossover() float64 {
	return 4 * math.Pi * m.HeightTxM * m.HeightRxM / m.WavelengthM
}

// RxPower implements Propagation.
func (m TwoRayGround) RxPower(txPower float64, src, dst geom.Vec2) float64 {
	return m.RxPowerDist(txPower, src.Dist(dst))
}

// RxPowerDist implements DistPropagation.
func (m TwoRayGround) RxPowerDist(txPower, d float64) float64 {
	if d < m.Crossover() {
		return m.FreeSpace.RxPowerDist(txPower, d)
	}
	num := txPower * m.GainTx * m.GainRx * m.HeightTxM * m.HeightTxM * m.HeightRxM * m.HeightRxM
	return num / (d * d * d * d * m.SystemLoss)
}

// Range implements Propagation.
func (m TwoRayGround) Range(txPower, thresh float64) float64 {
	num := txPower * m.GainTx * m.GainRx * m.HeightTxM * m.HeightTxM * m.HeightRxM * m.HeightRxM
	d := math.Pow(num/(m.SystemLoss*thresh), 0.25)
	if d < m.Crossover() {
		return m.FreeSpace.Range(txPower, thresh)
	}
	return d
}

// Shadowing decorates a base propagation model with log-normal shadowing:
// each received-power computation is scaled by 10^(X/10) where X is a fresh
// zero-mean Gaussian in dB. This is the standard model for the bursty,
// building-induced power swings that intersection measurements show, and it
// is how the fault layer degrades the channel below the deterministic
// two-ray prediction.
//
// Shadowing draws from its own RNG stream, forked from the run seed, so
// enabling it never perturbs any other layer's randomness; and because a
// run is single-threaded, the draw sequence (one per channel-broadcast
// power computation, in radio attach order) is deterministic. Range
// deliberately delegates to the base model: it reports the *median* range,
// which is what slot-timing and topology helpers want.
type Shadowing struct {
	// Base is the deterministic model being decorated.
	Base Propagation
	// SigmaDB is the shadowing standard deviation in dB (typical outdoor
	// values: 4–8 dB).
	SigmaDB float64

	rng     *sim.RNG
	samples uint64
}

var _ Propagation = (*Shadowing)(nil)

// NewShadowing wraps base with log-normal shadowing of the given sigma,
// drawing from rng (which the decorator owns).
func NewShadowing(base Propagation, sigmaDB float64, rng *sim.RNG) *Shadowing {
	if base == nil {
		panic("phy: NewShadowing with nil base model")
	}
	if rng == nil {
		panic("phy: NewShadowing with nil RNG")
	}
	if sigmaDB < 0 || math.IsNaN(sigmaDB) {
		panic("phy: NewShadowing with negative sigma")
	}
	return &Shadowing{Base: base, SigmaDB: sigmaDB, rng: rng}
}

// RxPower implements Propagation: the base model's power scaled by a fresh
// log-normal draw.
func (m *Shadowing) RxPower(txPower float64, src, dst geom.Vec2) float64 {
	p := m.Base.RxPower(txPower, src, dst)
	if p <= 0 || m.SigmaDB == 0 {
		return p
	}
	m.samples++
	return p * math.Pow(10, m.rng.Normal(0, m.SigmaDB)/10)
}

// Range implements Propagation by delegating to the base model (the median
// range under zero-mean shadowing).
func (m *Shadowing) Range(txPower, thresh float64) float64 {
	return m.Base.Range(txPower, thresh)
}

// Samples returns how many shadowing draws have been made, for telemetry.
func (m *Shadowing) Samples() uint64 { return m.samples }

// RadioParams are the per-radio RF constants. DefaultRadioParams matches
// ns-2's 914 MHz Lucent WaveLAN card, giving a 250 m receive range and a
// 550 m carrier-sense range under two-ray ground — the configuration the
// paper inherited from ns-2's wireless defaults.
type RadioParams struct {
	// TxPowerW is the transmit power in watts.
	TxPowerW float64
	// RxThreshW: frames arriving above this power are receivable.
	RxThreshW float64
	// CSThreshW: energy above this power marks the medium busy.
	CSThreshW float64
	// CaptureRatio: a frame survives interference if its power exceeds the
	// interferer's by this factor (10 = 10 dB, the ns-2 default).
	CaptureRatio float64
	// SINRMode switches reception from ns-2's pairwise capture test to an
	// aggregate signal-to-interference-plus-noise decision: the locked
	// frame survives only if its power exceeds CaptureRatio times the
	// *sum* of concurrent interference plus NoiseFloorW at every moment
	// of the reception. Pairwise capture can pass frames that several
	// simultaneous weak interferers would in fact destroy; this mode is
	// the ablation that quantifies the difference.
	SINRMode bool
	// NoiseFloorW is the thermal noise power added to interference in
	// SINR mode.
	NoiseFloorW float64
}

// DefaultRadioParams returns the ns-2 WaveLAN constants.
func DefaultRadioParams() RadioParams {
	return RadioParams{
		TxPowerW:     0.28183815,
		RxThreshW:    3.652e-10,
		CSThreshW:    1.559e-11,
		CaptureRatio: 10.0,
		NoiseFloorW:  1e-13,
	}
}

// DefaultPropagation returns ns-2's default outdoor model: two-ray ground
// at 914 MHz with 1.5 m antennas and unity gains.
func DefaultPropagation() TwoRayGround {
	return TwoRayGround{
		FreeSpace: FreeSpace{
			WavelengthM: SpeedOfLight / 914e6,
			GainTx:      1,
			GainRx:      1,
			SystemLoss:  1,
		},
		HeightTxM: 1.5,
		HeightRxM: 1.5,
	}
}
