package phy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// recorder is a MAC stub that records deliveries and carrier transitions.
type recorder struct {
	frames    []*packet.Packet
	corrupted []bool
	busy      int
	idle      int
}

func (m *recorder) RecvFromPhy(p *packet.Packet, corrupt bool) {
	m.frames = append(m.frames, p)
	m.corrupted = append(m.corrupted, corrupt)
}
func (m *recorder) ChannelBusy() { m.busy++ }
func (m *recorder) ChannelIdle() { m.idle++ }

func fixedPos(x, y float64) PositionFn {
	return func() geom.Vec2 { return geom.V(x, y) }
}

// rig builds a channel with radios at the given x positions (y=0) and a
// recorder MAC on each.
func rig(t *testing.T, xs ...float64) (*sim.Scheduler, []*Radio, []*recorder) {
	t.Helper()
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	radios := make([]*Radio, len(xs))
	macs := make([]*recorder, len(xs))
	for i, x := range xs {
		radios[i] = NewRadio(packet.NodeID(i), s, fixedPos(x, 0), DefaultRadioParams())
		macs[i] = &recorder{}
		radios[i].SetMAC(macs[i])
		ch.Attach(radios[i])
	}
	return s, radios, macs
}

func mkPkt(f *packet.Factory, size int) *packet.Packet {
	return f.New(packet.TypeTCP, size, 0)
}

func TestFreeSpaceInverseSquare(t *testing.T) {
	m := DefaultPropagation().FreeSpace
	p50 := m.RxPower(1, geom.V(0, 0), geom.V(50, 0))
	p100 := m.RxPower(1, geom.V(0, 0), geom.V(100, 0))
	if math.Abs(p50/p100-4) > 1e-9 {
		t.Fatalf("free space should fall off as 1/d²: ratio = %v", p50/p100)
	}
	if got := m.RxPower(1, geom.V(0, 0), geom.V(0, 0)); got != 1 {
		t.Fatalf("zero-distance power = %v, want txPower", got)
	}
}

func TestTwoRayInverseFourth(t *testing.T) {
	m := DefaultPropagation()
	dc := m.Crossover()
	if dc < 80 || dc > 95 {
		t.Fatalf("crossover = %v m, want ~86 m for WaveLAN geometry", dc)
	}
	p200 := m.RxPower(1, geom.V(0, 0), geom.V(200, 0))
	p400 := m.RxPower(1, geom.V(0, 0), geom.V(400, 0))
	if math.Abs(p200/p400-16) > 1e-9 {
		t.Fatalf("two-ray should fall off as 1/d⁴ beyond crossover: ratio = %v", p200/p400)
	}
}

func TestTwoRayMatchesFreeSpaceBelowCrossover(t *testing.T) {
	m := DefaultPropagation()
	d := m.Crossover() / 2
	got := m.RxPower(1, geom.V(0, 0), geom.V(d, 0))
	want := m.FreeSpace.RxPower(1, geom.V(0, 0), geom.V(d, 0))
	if got != want {
		t.Fatalf("below crossover, two-ray (%v) must equal free space (%v)", got, want)
	}
}

func TestDefaultRanges(t *testing.T) {
	m := DefaultPropagation()
	p := DefaultRadioParams()
	rx := m.Range(p.TxPowerW, p.RxThreshW)
	if math.Abs(rx-250) > 1 {
		t.Fatalf("receive range = %v m, want ~250 (ns-2 WaveLAN)", rx)
	}
	cs := m.Range(p.TxPowerW, p.CSThreshW)
	if math.Abs(cs-550) > 2 {
		t.Fatalf("carrier-sense range = %v m, want ~550", cs)
	}
}

// Property: received power is non-increasing with distance for both models.
func TestMonotonicAttenuationProperty(t *testing.T) {
	m := DefaultPropagation()
	f := func(d1Raw, d2Raw uint16) bool {
		d1 := float64(d1Raw%2000) + 1
		d2 := d1 + float64(d2Raw%2000)
		p1 := m.RxPower(0.1, geom.V(0, 0), geom.V(d1, 0))
		p2 := m.RxPower(0.1, geom.V(0, 0), geom.V(d2, 0))
		f1 := m.FreeSpace.RxPower(0.1, geom.V(0, 0), geom.V(d1, 0))
		f2 := m.FreeSpace.RxPower(0.1, geom.V(0, 0), geom.V(d2, 0))
		return p2 <= p1+1e-18 && f2 <= f1+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryInRange(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	var f packet.Factory
	p := mkPkt(&f, 1000)
	radios[0].Transmit(p, 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(macs[1].frames))
	}
	if macs[1].corrupted[0] {
		t.Fatal("clean transmission marked corrupted")
	}
	if macs[1].frames[0].UID != p.UID {
		t.Fatal("delivered frame has wrong UID")
	}
	if macs[1].frames[0] == p {
		t.Fatal("receiver must get a clone, not the sender's pointer")
	}
	if got := radios[1].Stats().RxOK; got != 1 {
		t.Fatalf("RxOK = %d", got)
	}
}

func TestDeliveryTiming(t *testing.T) {
	s, radios, _ := rig(t, 0, 150)
	var f packet.Factory
	var deliveredAt sim.Time
	mac := &recorder{}
	radios[1].SetMAC(mac)
	done := false
	duration := 2 * sim.Millisecond
	radios[0].Transmit(mkPkt(&f, 500), duration)
	for !done && s.Step() {
		if len(mac.frames) > 0 {
			deliveredAt = s.Now()
			done = true
		}
	}
	want := duration + sim.Time(150/SpeedOfLight)
	if math.Abs(float64(deliveredAt-want)) > 1e-12 {
		t.Fatalf("delivered at %v, want tx duration + propagation = %v", deliveredAt, want)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	s, radios, macs := rig(t, 0, 600) // beyond 550 m carrier-sense range
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 0 || macs[1].busy != 0 {
		t.Fatal("600 m receiver should neither decode nor sense the frame")
	}
}

func TestSensedButUndecodable(t *testing.T) {
	// Between 250 m (rx) and 550 m (cs): busy is sensed, nothing delivered.
	s, radios, macs := rig(t, 0, 400)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 0 {
		t.Fatal("400 m receiver should not decode the frame")
	}
	if macs[1].busy != 1 {
		t.Fatalf("carrier sense transitions = %d, want 1", macs[1].busy)
	}
	if macs[1].idle == 0 {
		t.Fatal("medium should eventually be reported idle")
	}
	if radios[1].Stats().RxBelowThresh != 1 {
		t.Fatal("arrival should be counted as below-threshold")
	}
}

func TestCollisionBothCorrupted(t *testing.T) {
	// Two senders equidistant from the middle receiver: equal powers, no
	// capture, overlapping in time -> the locked frame is corrupted.
	s, radios, macs := rig(t, -100, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	radios[2].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 {
		t.Fatalf("receiver locked onto %d frames, want 1", len(macs[1].frames))
	}
	if !macs[1].corrupted[0] {
		t.Fatal("overlapping equal-power frames must collide")
	}
	if radios[1].Stats().RxCollided != 1 {
		t.Fatal("collision not counted")
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	// Sender at 50 m is far stronger (>(10x)) than sender at 300 m; the
	// receiver locks the near frame first and capture suppresses the far
	// one.
	s, radios, macs := rig(t, 0, 50, 300)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Schedule(sim.Millisecond, func() {
		radios[2].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	})
	s.Run()
	// macs[1] hears node 0 at 50 m (strong) then node 2 at 250 m (weak).
	if len(macs[1].frames) != 1 {
		t.Fatalf("receiver delivered %d frames, want 1", len(macs[1].frames))
	}
	if macs[1].corrupted[0] {
		t.Fatal("strong frame should survive weak interferer (capture)")
	}
}

func TestHalfDuplexTxBlindsRx(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	var f packet.Factory
	// Both transmit simultaneously: neither can receive the other.
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	radios[1].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[0].frames) != 0 || len(macs[1].frames) != 0 {
		t.Fatal("half-duplex radios received while transmitting")
	}
	if radios[0].Stats().RxWhileTx != 1 || radios[1].Stats().RxWhileTx != 1 {
		t.Fatal("blinded arrivals not counted")
	}
}

// Regression: a double transmit is refused with ErrTxWhileTx and counted,
// not panicked over — one misbehaving MAC must degrade its own node, not
// crash a 1,000-replication sweep.
func TestTransmitWhileTransmittingRefused(t *testing.T) {
	s, radios, _ := rig(t, 0, 100)
	var f packet.Factory
	if err := radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond); err != nil {
		t.Fatalf("first transmit refused: %v", err)
	}
	err := radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	if !errors.Is(err, ErrTxWhileTx) {
		t.Fatalf("double transmit error = %v, want ErrTxWhileTx", err)
	}
	if got := radios[0].Stats().TxRefused; got != 1 {
		t.Fatalf("TxRefused = %d, want 1", got)
	}
	if got := radios[0].Stats().TxFrames; got != 1 {
		t.Fatalf("TxFrames = %d, want 1 (refused frame must not count)", got)
	}
	s.Run()
}

// Regression: the overlap-losing arrival in a collision used to vanish
// from the radio's books entirely — neither delivered, captured, nor
// counted — so arrivals could not be reconciled against outcomes. Every
// arrival must land in exactly one outcome counter.
func TestArrivalOutcomeConservation(t *testing.T) {
	s, radios, _ := rig(t, -100, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	radios[2].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	st := radios[1].Stats()
	if st.RxArrivals != 2 {
		t.Fatalf("RxArrivals = %d, want 2", st.RxArrivals)
	}
	if st.RxCollided != 1 || st.RxOverlapLost != 1 {
		t.Fatalf("collision outcomes = %+v, want one collided + one overlap-lost", st)
	}
	sum := st.RxOK + st.RxCollided + st.RxImpaired + st.RxCaptured +
		st.RxOverlapLost + st.RxWhileTx + st.RxBelowThresh +
		st.RxDroppedOutage + st.RxAbortedByTx
	if st.RxArrivals != sum {
		t.Fatalf("arrivals %d != outcome sum %d (%+v)", st.RxArrivals, sum, st)
	}
}

// Regression: a non-positive duration is refused with ErrTxDuration.
func TestTransmitNonPositiveDurationRefused(t *testing.T) {
	_, radios, _ := rig(t, 0, 100)
	var f packet.Factory
	if err := radios[0].Transmit(mkPkt(&f, 1000), 0); !errors.Is(err, ErrTxDuration) {
		t.Fatalf("zero-duration transmit error = %v, want ErrTxDuration", err)
	}
	if got := radios[0].Stats().TxRefused; got != 1 {
		t.Fatalf("TxRefused = %d, want 1", got)
	}
}

func TestTransmitAbortsReception(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	// Node 1 starts its own transmission mid-reception.
	s.Schedule(sim.Millisecond, func() {
		radios[1].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	})
	s.Run()
	if len(macs[1].frames) != 0 {
		t.Fatal("reception should be destroyed by own transmission")
	}
	if got := radios[1].Stats().RxAbortedByTx; got != 1 {
		t.Fatalf("RxAbortedByTx = %d, want 1", got)
	}
	if got := radios[0].Stats().RxAbortedByTx; got != 0 {
		t.Fatalf("sender RxAbortedByTx = %d, want 0", got)
	}
	// A later clean frame must still be delivered intact: the aborted
	// reception's recycled struct must not leak state into the next lock-on.
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 || macs[1].corrupted[0] {
		t.Fatalf("post-abort delivery broken: got %d frames", len(macs[1].frames))
	}
	if got := radios[1].Stats().RxOK; got != 1 {
		t.Fatalf("post-abort RxOK = %d, want 1", got)
	}
}

func TestCarrierBusyDuringOwnTx(t *testing.T) {
	s, radios, _ := rig(t, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	if !radios[0].CarrierBusy() {
		t.Fatal("radio must sense busy during own transmission")
	}
	s.Run()
	if radios[0].CarrierBusy() {
		t.Fatal("radio still busy after all events drained")
	}
	if radios[0].State() != Idle {
		t.Fatalf("state = %v, want idle", radios[0].State())
	}
}

func TestBusyIdleTransitions(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 1000), 4*sim.Millisecond)
	s.Run()
	if macs[1].busy != 1 {
		t.Fatalf("busy transitions = %d, want exactly 1", macs[1].busy)
	}
	if macs[1].idle < 1 {
		t.Fatal("no idle notification after frame ended")
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Receiving.String() != "rx" || Transmitting.String() != "tx" {
		t.Fatal("state names wrong")
	}
}

func TestNewRadioNilPosPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil position fn did not panic")
		}
	}()
	NewRadio(0, sim.New(), nil, DefaultRadioParams())
}

func TestMovingReceiverAttenuates(t *testing.T) {
	// A receiver that drifts out of range between two transmissions stops
	// hearing the sender: positions must be sampled per transmission.
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	var f packet.Factory
	tx := NewRadio(0, s, fixedPos(0, 0), DefaultRadioParams())
	txm := &recorder{}
	tx.SetMAC(txm)
	ch.Attach(tx)

	pos := geom.V(100, 0)
	rx := NewRadio(1, s, func() geom.Vec2 { return pos }, DefaultRadioParams())
	rxm := &recorder{}
	rx.SetMAC(rxm)
	ch.Attach(rx)

	tx.Transmit(mkPkt(&f, 500), sim.Millisecond)
	s.Run()
	pos = geom.V(1000, 0) // receiver moved far away
	tx.Transmit(mkPkt(&f, 500), sim.Millisecond)
	s.Run()
	if len(rxm.frames) != 1 {
		t.Fatalf("got %d frames, want only the in-range one", len(rxm.frames))
	}
}

func TestFrequencyChannelsIsolate(t *testing.T) {
	s, radios, macs := rig(t, 0, 100)
	radios[1].SetFreqFn(func() int { return 3 }) // receiver tuned elsewhere
	var f packet.Factory
	radios[0].Transmit(mkPkt(&f, 500), sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 0 || macs[1].busy != 0 {
		t.Fatal("cross-channel transmission was seen")
	}
	// Retune back: now it is heard.
	radios[1].SetFreqFn(nil)
	radios[0].Transmit(mkPkt(&f, 500), sim.Millisecond)
	s.Run()
	if len(macs[1].frames) != 1 {
		t.Fatal("same-channel transmission lost after retune")
	}
}

func TestFrequencyDefaultChannelZero(t *testing.T) {
	s, radios, _ := rig(t, 0, 100)
	if radios[0].Freq() != 0 {
		t.Fatal("default channel should be 0")
	}
	radios[0].SetFreqFn(func() int { return 7 })
	if radios[0].Freq() != 7 {
		t.Fatal("SetFreqFn not honoured")
	}
	_ = s
}

func BenchmarkChannelBroadcast(b *testing.B) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	for i := 0; i < 12; i++ {
		r := NewRadio(packet.NodeID(i), s, fixedPos(float64(i)*40, 0), DefaultRadioParams())
		r.SetMAC(&recorder{})
		ch.Attach(r)
	}
	tx := ch.Radios()[0]
	var f packet.Factory
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx.Transmit(mkPkt(&f, 1000), sim.Millisecond)
		s.Run()
	}
}
