package phy

import (
	"fmt"
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// benchBroadcastSharded is benchBroadcast's fixture with the staged offer
// pipeline enabled: one transmission's full channel cost over the same
// 1000-radio highway line, with the ~45-candidate carrier-sense disc
// staged across shards and committed serially. shards=1 is the serial
// offer loop the pipeline is judged against — the guard pins the staged
// path's overhead on a single-CPU host (inline compute, no workers) to
// within tolerance of it, and both paths to zero steady-state
// allocations. Run under GOMAXPROCS=1 (make bench-shard does) so the
// compute stage stays inline and timings are comparable across hosts.
func benchBroadcastSharded(b *testing.B, shards int) {
	const n = 1000
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	ch.EnableCulling()
	if shards > 1 {
		ch.EnableSharding(shards)
		defer ch.CloseSharding()
	}
	offChannel := func() int { return 1 }
	for i := 0; i < n; i++ {
		x := float64(i) * 25
		r := NewRadio(packet.NodeID(i), s, fixedPos(x, 0), DefaultRadioParams())
		r.SetMAC(nullMAC{})
		if i != n/2 {
			r.SetFreqFn(offChannel)
		}
		ch.Attach(r)
		ch.SetMotion(r, staticMotion(x, 0))
	}
	src := ch.Radios()[n/2]
	var pf packet.Factory
	p := pf.New(packet.TypeCBR, 100, 0)
	ch.broadcast(src, p, 0.001)
	s.RunUntil(s.Now() + 1)
	if shards > 1 && ch.PipeStats()[0].Batches == 0 {
		b.Fatal("staged pipeline did not engage")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.broadcast(src, p, 0.001)
		s.RunUntil(s.Now() + 1)
	}
}

func BenchmarkBroadcastSharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchBroadcastSharded(b, shards) })
	}
}
