package phy

import (
	"fmt"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// nullMAC swallows deliveries so benchmarks measure the channel, not a
// recording sink.
type nullMAC struct{}

func (nullMAC) RecvFromPhy(*packet.Packet, bool) {}
func (nullMAC) ChannelBusy()                     {}
func (nullMAC) ChannelIdle()                     {}

// benchBroadcast measures one transmission's full channel cost — candidate
// selection, per-receiver power checks, arrival scheduling and the arrival
// events themselves — over a dense-highway geometry: n radios in a 25 m
// line, transmitter in the middle. Receivers are tuned to another
// frequency channel so every arrival takes the filtered path: the arrival
// structs and packet clones recycle through the channel's free lists and
// the steady state is allocation-free, which keeps the scan-vs-culled
// comparison a pure measure of the broadcast path. The carrier-sense disc
// holds ~45 receivers (550 m / 25 m, both sides) regardless of n: culled
// cost is flat in n, scan cost is linear.
func benchBroadcast(b *testing.B, n int, cull bool) {
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	if cull {
		ch.EnableCulling()
	}
	offChannel := func() int { return 1 }
	for i := 0; i < n; i++ {
		x := float64(i) * 25
		r := NewRadio(packet.NodeID(i), s, fixedPos(x, 0), DefaultRadioParams())
		r.SetMAC(nullMAC{})
		if i != n/2 {
			r.SetFreqFn(offChannel)
		}
		ch.Attach(r)
		ch.SetMotion(r, staticMotion(x, 0))
	}
	src := ch.Radios()[n/2]
	var pf packet.Factory
	p := pf.New(packet.TypeCBR, 100, 0)
	// Warm the free lists (first broadcast allocates its arrival pool).
	ch.broadcast(src, p, 0.001)
	s.RunUntil(s.Now() + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.broadcast(src, p, 0.001)
		s.RunUntil(s.Now() + 1)
	}
}

func BenchmarkBroadcastScan(b *testing.B) {
	for _, n := range []int{100, 1000, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchBroadcast(b, n, false) })
	}
}

func BenchmarkBroadcastCulled(b *testing.B) {
	for _, n := range []int{100, 1000, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchBroadcast(b, n, true) })
	}
}

// BenchmarkBroadcastCulledMoving is the culled path with every radio
// reporting highway cruise velocity: cell-revalidation deadlines expire a
// few simulated seconds apart forever, so each broadcast pays the index's
// lazy refresh (deadline-heap pops and grid re-buckets) on top of
// candidate selection — the mobility-aware machinery, not just the
// static-grid best case. Positions are pinned so the neighborhood, and
// with it the work being measured, stays constant across iterations.
func BenchmarkBroadcastCulledMoving(b *testing.B) {
	const n = 1000
	s := sim.New()
	ch := NewChannel(s, DefaultPropagation())
	ch.EnableCulling()
	offChannel := func() int { return 1 }
	for i := 0; i < n; i++ {
		x := float64(i) * 25
		r := NewRadio(packet.NodeID(i), s, fixedPos(x, 0), DefaultRadioParams())
		r.SetMAC(nullMAC{})
		if i != n/2 {
			r.SetFreqFn(offChannel)
		}
		ch.Attach(r)
		xi := x
		ch.SetMotion(r, func() Motion {
			return Motion{Pos: geom.V(xi, 0), Vel: geom.V(30, 0)}
		})
	}
	src := ch.Radios()[n/2]
	var pf packet.Factory
	p := pf.New(packet.TypeCBR, 100, 0)
	ch.broadcast(src, p, 0.001)
	s.RunUntil(s.Now() + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.broadcast(src, p, 0.001)
		s.RunUntil(s.Now() + 1)
	}
}
