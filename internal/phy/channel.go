package phy

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// arrival carries one receiver's pending first-bit event from broadcast to
// delivery. Arrivals are the highest-volume scheduled payload in the
// simulator (one per in-range receiver per frame), so they are recycled
// through a per-channel free list and delivered via a single long-lived
// callback instead of a capturing closure per receiver.
type arrival struct {
	dst      *Radio
	p        *packet.Packet
	power    float64
	duration sim.Time
	freq     int
	// owned marks p as this arrival's private clone. In the common case an
	// arrival borrows the transmitter's packet instead: the first bit
	// reaches every receiver after the propagation delay, strictly before
	// the sender's end-of-transmission at +duration — the earliest moment
	// any MAC touches the frame again — so the original is immutable for
	// the whole flight and the deep copy can wait until a receiver actually
	// locks on. Loss paths (the vast majority under load) then never copy.
	owned bool
}

// ChannelStats counts medium-level arrival outcomes: every arrival the
// channel schedules either fires (and is then frequency-filtered or
// offered to the destination radio) or is still propagating when the run
// ends. The invariant checker audits this against the radios' own arrival
// counters.
type ChannelStats struct {
	Offered      int // arrival events scheduled toward in-range receivers
	Delivered    int // arrival events that fired
	FilteredFreq int // fired arrivals discarded: receiver tuned elsewhere
}

// Channel is the shared wireless medium. Every attached radio's
// transmission is offered to every other radio whose received power
// clears its carrier-sense threshold, after the speed-of-light delay.
//
// With culling enabled (EnableCulling) the candidate receivers are first
// narrowed to the transmitter's neighborhood through a uniform spatial
// grid, making per-transmission cost proportional to the neighbor count
// instead of the attached-radio count. Culling is exact: the grid's query
// disc conservatively covers the carrier-sense range of every radio pair,
// candidates are visited in attach order, and every culled radio would
// have failed the received-power check anyway — so an indexed run is
// byte-identical to a full-scan run.
type Channel struct {
	sched *sim.Scheduler
	prop  Propagation
	// propDist is prop's distance-based fast path, nil when prop does not
	// provide one. offer needs the src–dst distance anyway for the
	// propagation delay, so this avoids re-deriving it inside RxPower.
	propDist DistPropagation
	radios   []*Radio
	idx      *neighborIndex // nil: broadcast full-scans

	arriveFn func(any)
	arrFree  []*arrival
	// pktFree recycles broadcast clones whose arrival was frequency-
	// filtered: such a clone never escaped the channel, so its allocation
	// can back the next broadcast's clone instead of becoming garbage.
	pktFree []*packet.Packet
	stats   ChannelStats

	// pipe is the staged offer pipeline (see pipe.go); nil keeps broadcast
	// fully serial. pipeStats preserves the counters past CloseSharding.
	pipe      *offerPipe
	pipeStats []PipeShardStats
}

// NewChannel creates a channel using the given propagation model.
func NewChannel(sched *sim.Scheduler, prop Propagation) *Channel {
	c := &Channel{sched: sched, prop: prop}
	c.propDist, _ = prop.(DistPropagation)
	c.arriveFn = func(a any) {
		ar := a.(*arrival)
		dst, p, power, duration, freq, owned := ar.dst, ar.p, ar.power, ar.duration, ar.freq, ar.owned
		*ar = arrival{}
		c.arrFree = append(c.arrFree, ar)
		c.stats.Delivered++
		if dst.Freq() != freq {
			c.stats.FilteredFreq++
			if owned {
				c.releaseClone(p) // tuned elsewhere: no energy seen, clone unused
			}
			return
		}
		dst.frameArrives(p, power, duration, owned)
	}
	return c
}

// EnableCulling switches broadcast to spatial-index neighbor culling. It
// may be called before or after radios attach, and is idempotent. Do not
// enable culling under a propagation model whose received power is not a
// monotone function of distance at the Range the model reports (log-normal
// shadowing, for instance, can lift a receiver beyond the median range
// above threshold — and culling it would also skip its RNG draw, changing
// every draw after it).
func (c *Channel) EnableCulling() {
	if c.idx != nil {
		return
	}
	c.idx = newNeighborIndex(c.prop)
	for slot, r := range c.radios {
		c.idx.attach(slot, r, c.sched.Now())
	}
}

// CullingEnabled reports whether broadcast uses the spatial index.
func (c *Channel) CullingEnabled() bool { return c.idx != nil }

// Attach registers a radio on the medium.
func (c *Channel) Attach(r *Radio) {
	r.ch = c
	r.slot = len(c.radios)
	c.radios = append(c.radios, r)
	if c.idx != nil {
		c.idx.attach(r.slot, r, c.sched.Now())
	}
}

// SetMotion gives the spatial index kinematic visibility into an attached
// radio: its grid cell is revalidated on a deadline derived from the
// reported motion segment instead of every broadcast. The caller must
// pair this with MotionChanged notifications on every trajectory change.
// A radio without motion info is never culled. No-op while culling is
// disabled.
func (c *Channel) SetMotion(r *Radio, fn MotionFn) {
	if c.idx != nil && r.ch == c {
		c.idx.setMotion(r.slot, fn, c.sched.Now())
	}
}

// MotionChanged tells the spatial index that r's trajectory changed and
// its cached cell deadline no longer holds. No-op while culling is
// disabled or for radios without motion info.
func (c *Channel) MotionChanged(r *Radio) {
	if c.idx != nil && r.ch == c {
		c.idx.motionChanged(r.slot, c.sched.Now())
	}
}

// Radios returns all attached radios.
func (c *Channel) Radios() []*Radio { return c.radios }

// Propagation returns the channel's propagation model.
func (c *Channel) Propagation() Propagation { return c.prop }

// broadcast delivers a transmission from src to every other radio above
// its carrier-sense threshold that is tuned to the same frequency channel
// when the first bit arrives. A receiver that locks onto the frame gets
// its own clone of the packet (made at lock time) so that forwarding
// never aliases.
func (c *Channel) broadcast(src *Radio, p *packet.Packet, duration sim.Time) {
	srcPos := src.pos()
	txFreq := src.Freq()
	if c.idx.active() {
		cands := c.idx.candidates(c.sched.Now(), srcPos)
		if c.pipe != nil && len(cands) >= pipeThreshold {
			c.broadcastStaged(src, cands, srcPos, p, duration, txFreq)
			return
		}
		for _, slot := range cands {
			c.offer(src, c.radios[slot], srcPos, p, duration, txFreq)
		}
		return
	}
	for _, dst := range c.radios {
		c.offer(src, dst, srcPos, p, duration, txFreq)
	}
}

// offer runs the per-receiver half of broadcast: the power check and, when
// it passes, the pooled first-bit arrival. The receiver's position is
// sampled exactly once, so received power and propagation delay are always
// computed from the same point of its motion segment.
func (c *Channel) offer(src, dst *Radio, srcPos geom.Vec2, p *packet.Packet, duration sim.Time, txFreq int) {
	if dst == src {
		return
	}
	dstPos := dst.pos()
	var pr float64
	var dist float64
	if c.propDist != nil {
		dist = srcPos.Dist(dstPos)
		pr = c.propDist.RxPowerDist(src.Params.TxPowerW, dist)
	} else {
		pr = c.prop.RxPower(src.Params.TxPowerW, srcPos, dstPos)
	}
	if pr < dst.Params.CSThreshW {
		return // below the noise floor: invisible
	}
	if c.propDist == nil {
		dist = srcPos.Dist(dstPos)
	}
	delay := sim.Time(dist / SpeedOfLight)
	var ar *arrival
	if n := len(c.arrFree); n > 0 {
		ar = c.arrFree[n-1]
		c.arrFree = c.arrFree[:n-1]
	} else {
		ar = &arrival{}
	}
	ap, owned := p, false
	if delay >= duration {
		// Pathological geometry: the first bit would arrive at or after the
		// sender's end of transmission, when the MAC is free to mutate the
		// frame again. Fall back to the eager per-receiver clone.
		ap, owned = c.clonePacket(p), true
	}
	*ar = arrival{dst: dst, p: ap, power: pr, duration: duration, freq: txFreq, owned: owned}
	c.stats.Offered++
	c.sched.ScheduleArgKind(sim.KindPHY, delay, c.arriveFn, ar)
}

// clonePacket deep-copies p for one receiver, reusing a recycled
// frequency-filtered clone when one is available.
func (c *Channel) clonePacket(p *packet.Packet) *packet.Packet {
	if n := len(c.pktFree); n > 0 {
		q := c.pktFree[n-1]
		c.pktFree = c.pktFree[:n-1]
		return p.CloneInto(q)
	}
	return p.Clone()
}

// releaseClone returns a released clone to the free list. The payload is
// deliberately kept: the releaser asserts nothing upstack retained it, so
// the next clonePacket of a same-typed payload can reuse its allocation
// in place (packet, TCP header, and payload then all recycle). The pool's
// footprint stays bounded by the peak number of in-flight clones.
func (c *Channel) releaseClone(p *packet.Packet) {
	c.pktFree = append(c.pktFree, p)
}

// Stats returns the channel's arrival counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// FreqFn reports a radio's current frequency channel. It is sampled at
// transmit time (sender) and first-bit arrival time (receiver), which is
// exact for slot-synchronised hopping schemes.
type FreqFn func() int

// PositionFn reports a node's current position; radios call it at
// transmission and reception time so moving vehicles attenuate naturally.
type PositionFn func() geom.Vec2

// MAC is the upward interface a radio delivers into. The 802.11 MAC uses
// all three callbacks; the TDMA MAC ignores the carrier-sense pair.
type MAC interface {
	// RecvFromPhy delivers a frame whose last bit has arrived. corrupted
	// is true when the frame overlapped another transmission and lost
	// (collision without capture).
	RecvFromPhy(p *packet.Packet, corrupted bool)
	// ChannelBusy signals the medium transitioned idle -> busy as seen by
	// this radio (physical carrier sense).
	ChannelBusy()
	// ChannelIdle signals the medium transitioned busy -> idle. Idle
	// notifications can be delivered redundantly when several busy periods
	// end at the same instant; implementations must be idempotent.
	ChannelIdle()
}
