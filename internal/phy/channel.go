package phy

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// arrival carries one receiver's pending first-bit event from broadcast to
// delivery. Arrivals are the highest-volume scheduled payload in the
// simulator (one per in-range receiver per frame), so they are recycled
// through a per-channel free list and delivered via a single long-lived
// callback instead of a capturing closure per receiver.
type arrival struct {
	dst      *Radio
	p        *packet.Packet
	power    float64
	duration sim.Time
	freq     int
}

// ChannelStats counts medium-level arrival outcomes: every arrival the
// channel schedules either fires (and is then frequency-filtered or
// offered to the destination radio) or is still propagating when the run
// ends. The invariant checker audits this against the radios' own arrival
// counters.
type ChannelStats struct {
	Offered      int // arrival events scheduled toward in-range receivers
	Delivered    int // arrival events that fired
	FilteredFreq int // fired arrivals discarded: receiver tuned elsewhere
}

// Channel is the shared wireless medium. Every attached radio's
// transmission is offered to every other radio whose received power
// clears its carrier-sense threshold, after the speed-of-light delay.
//
// With culling enabled (EnableCulling) the candidate receivers are first
// narrowed to the transmitter's neighborhood through a uniform spatial
// grid, making per-transmission cost proportional to the neighbor count
// instead of the attached-radio count. Culling is exact: the grid's query
// disc conservatively covers the carrier-sense range of every radio pair,
// candidates are visited in attach order, and every culled radio would
// have failed the received-power check anyway — so an indexed run is
// byte-identical to a full-scan run.
type Channel struct {
	sched  *sim.Scheduler
	prop   Propagation
	radios []*Radio
	idx    *neighborIndex // nil: broadcast full-scans

	arriveFn func(any)
	arrFree  []*arrival
	// pktFree recycles broadcast clones whose arrival was frequency-
	// filtered: such a clone never escaped the channel, so its allocation
	// can back the next broadcast's clone instead of becoming garbage.
	pktFree []*packet.Packet
	stats   ChannelStats
}

// NewChannel creates a channel using the given propagation model.
func NewChannel(sched *sim.Scheduler, prop Propagation) *Channel {
	c := &Channel{sched: sched, prop: prop}
	c.arriveFn = func(a any) {
		ar := a.(*arrival)
		dst, p, power, duration, freq := ar.dst, ar.p, ar.power, ar.duration, ar.freq
		*ar = arrival{}
		c.arrFree = append(c.arrFree, ar)
		c.stats.Delivered++
		if dst.Freq() != freq {
			c.stats.FilteredFreq++
			c.releaseClone(p) // tuned elsewhere: no energy seen, clone unused
			return
		}
		dst.frameArrives(p, power, duration)
	}
	return c
}

// EnableCulling switches broadcast to spatial-index neighbor culling. It
// may be called before or after radios attach, and is idempotent. Do not
// enable culling under a propagation model whose received power is not a
// monotone function of distance at the Range the model reports (log-normal
// shadowing, for instance, can lift a receiver beyond the median range
// above threshold — and culling it would also skip its RNG draw, changing
// every draw after it).
func (c *Channel) EnableCulling() {
	if c.idx != nil {
		return
	}
	c.idx = newNeighborIndex(c.prop)
	for slot, r := range c.radios {
		c.idx.attach(slot, r, c.sched.Now())
	}
}

// CullingEnabled reports whether broadcast uses the spatial index.
func (c *Channel) CullingEnabled() bool { return c.idx != nil }

// Attach registers a radio on the medium.
func (c *Channel) Attach(r *Radio) {
	r.ch = c
	r.slot = len(c.radios)
	c.radios = append(c.radios, r)
	if c.idx != nil {
		c.idx.attach(r.slot, r, c.sched.Now())
	}
}

// SetMotion gives the spatial index kinematic visibility into an attached
// radio: its grid cell is revalidated on a deadline derived from the
// reported motion segment instead of every broadcast. The caller must
// pair this with MotionChanged notifications on every trajectory change.
// A radio without motion info is never culled. No-op while culling is
// disabled.
func (c *Channel) SetMotion(r *Radio, fn MotionFn) {
	if c.idx != nil && r.ch == c {
		c.idx.setMotion(r.slot, fn, c.sched.Now())
	}
}

// MotionChanged tells the spatial index that r's trajectory changed and
// its cached cell deadline no longer holds. No-op while culling is
// disabled or for radios without motion info.
func (c *Channel) MotionChanged(r *Radio) {
	if c.idx != nil && r.ch == c {
		c.idx.motionChanged(r.slot, c.sched.Now())
	}
}

// Radios returns all attached radios.
func (c *Channel) Radios() []*Radio { return c.radios }

// Propagation returns the channel's propagation model.
func (c *Channel) Propagation() Propagation { return c.prop }

// broadcast delivers a transmission from src to every other radio above
// its carrier-sense threshold that is tuned to the same frequency channel
// when the first bit arrives. Each receiver gets its own clone of the
// packet so that forwarding never aliases.
func (c *Channel) broadcast(src *Radio, p *packet.Packet, duration sim.Time) {
	srcPos := src.pos()
	txFreq := src.Freq()
	if c.idx.active() {
		for _, slot := range c.idx.candidates(c.sched.Now(), srcPos) {
			c.offer(src, c.radios[slot], srcPos, p, duration, txFreq)
		}
		return
	}
	for _, dst := range c.radios {
		c.offer(src, dst, srcPos, p, duration, txFreq)
	}
}

// offer runs the per-receiver half of broadcast: the power check and, when
// it passes, the pooled first-bit arrival. The receiver's position is
// sampled exactly once, so received power and propagation delay are always
// computed from the same point of its motion segment.
func (c *Channel) offer(src, dst *Radio, srcPos geom.Vec2, p *packet.Packet, duration sim.Time, txFreq int) {
	if dst == src {
		return
	}
	dstPos := dst.pos()
	pr := c.prop.RxPower(src.Params.TxPowerW, srcPos, dstPos)
	if pr < dst.Params.CSThreshW {
		return // below the noise floor: invisible
	}
	delay := sim.Time(srcPos.Dist(dstPos) / SpeedOfLight)
	var ar *arrival
	if n := len(c.arrFree); n > 0 {
		ar = c.arrFree[n-1]
		c.arrFree = c.arrFree[:n-1]
	} else {
		ar = &arrival{}
	}
	*ar = arrival{dst: dst, p: c.clonePacket(p), power: pr, duration: duration, freq: txFreq}
	c.stats.Offered++
	c.sched.ScheduleArgKind(sim.KindPHY, delay, c.arriveFn, ar)
}

// clonePacket deep-copies p for one receiver, reusing a recycled
// frequency-filtered clone when one is available.
func (c *Channel) clonePacket(p *packet.Packet) *packet.Packet {
	if n := len(c.pktFree); n > 0 {
		q := c.pktFree[n-1]
		c.pktFree = c.pktFree[:n-1]
		return p.CloneInto(q)
	}
	return p.Clone()
}

// releaseClone returns a clone that never left the channel to the free
// list. The payload reference is dropped so the pool pins no packet
// bodies; the struct (and any TCP header allocation) is reused by the
// next clonePacket.
func (c *Channel) releaseClone(p *packet.Packet) {
	p.Payload = nil
	c.pktFree = append(c.pktFree, p)
}

// Stats returns the channel's arrival counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// FreqFn reports a radio's current frequency channel. It is sampled at
// transmit time (sender) and first-bit arrival time (receiver), which is
// exact for slot-synchronised hopping schemes.
type FreqFn func() int

// PositionFn reports a node's current position; radios call it at
// transmission and reception time so moving vehicles attenuate naturally.
type PositionFn func() geom.Vec2

// MAC is the upward interface a radio delivers into. The 802.11 MAC uses
// all three callbacks; the TDMA MAC ignores the carrier-sense pair.
type MAC interface {
	// RecvFromPhy delivers a frame whose last bit has arrived. corrupted
	// is true when the frame overlapped another transmission and lost
	// (collision without capture).
	RecvFromPhy(p *packet.Packet, corrupted bool)
	// ChannelBusy signals the medium transitioned idle -> busy as seen by
	// this radio (physical carrier sense).
	ChannelBusy()
	// ChannelIdle signals the medium transitioned busy -> idle. Idle
	// notifications can be delivered redundantly when several busy periods
	// end at the same instant; implementations must be idempotent.
	ChannelIdle()
}
