package phy

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Channel is the shared wireless medium. Every attached radio's
// transmission is offered to every other radio whose received power
// clears its carrier-sense threshold, after the speed-of-light delay.
type Channel struct {
	sched  *sim.Scheduler
	prop   Propagation
	radios []*Radio
}

// NewChannel creates a channel using the given propagation model.
func NewChannel(sched *sim.Scheduler, prop Propagation) *Channel {
	return &Channel{sched: sched, prop: prop}
}

// Attach registers a radio on the medium.
func (c *Channel) Attach(r *Radio) {
	r.ch = c
	c.radios = append(c.radios, r)
}

// Radios returns all attached radios.
func (c *Channel) Radios() []*Radio { return c.radios }

// Propagation returns the channel's propagation model.
func (c *Channel) Propagation() Propagation { return c.prop }

// broadcast delivers a transmission from src to every other radio above
// its carrier-sense threshold that is tuned to the same frequency channel
// when the first bit arrives. Each receiver gets its own clone of the
// packet so that forwarding never aliases.
func (c *Channel) broadcast(src *Radio, p *packet.Packet, duration sim.Time) {
	srcPos := src.pos()
	txFreq := src.Freq()
	for _, dst := range c.radios {
		if dst == src {
			continue
		}
		pr := c.prop.RxPower(src.Params.TxPowerW, srcPos, dst.pos())
		if pr < dst.Params.CSThreshW {
			continue // below the noise floor: invisible
		}
		dst := dst
		cp := p.Clone()
		delay := sim.Time(srcPos.Dist(dst.pos()) / SpeedOfLight)
		c.sched.ScheduleKind(sim.KindPHY, delay, func() {
			if dst.Freq() != txFreq {
				return // tuned elsewhere: no energy seen
			}
			dst.frameArrives(cp, pr, duration)
		})
	}
}

// FreqFn reports a radio's current frequency channel. It is sampled at
// transmit time (sender) and first-bit arrival time (receiver), which is
// exact for slot-synchronised hopping schemes.
type FreqFn func() int

// PositionFn reports a node's current position; radios call it at
// transmission and reception time so moving vehicles attenuate naturally.
type PositionFn func() geom.Vec2

// MAC is the upward interface a radio delivers into. The 802.11 MAC uses
// all three callbacks; the TDMA MAC ignores the carrier-sense pair.
type MAC interface {
	// RecvFromPhy delivers a frame whose last bit has arrived. corrupted
	// is true when the frame overlapped another transmission and lost
	// (collision without capture).
	RecvFromPhy(p *packet.Packet, corrupted bool)
	// ChannelBusy signals the medium transitioned idle -> busy as seen by
	// this radio (physical carrier sense).
	ChannelBusy()
	// ChannelIdle signals the medium transitioned busy -> idle. Idle
	// notifications can be delivered redundantly when several busy periods
	// end at the same instant; implementations must be idempotent.
	ChannelIdle()
}
