package phy

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// arrival carries one receiver's pending first-bit event from broadcast to
// delivery. Arrivals are the highest-volume scheduled payload in the
// simulator (one per in-range receiver per frame), so they are recycled
// through a per-channel free list and delivered via a single long-lived
// callback instead of a capturing closure per receiver.
type arrival struct {
	dst      *Radio
	p        *packet.Packet
	power    float64
	duration sim.Time
	freq     int
}

// ChannelStats counts medium-level arrival outcomes: every arrival the
// channel schedules either fires (and is then frequency-filtered or
// offered to the destination radio) or is still propagating when the run
// ends. The invariant checker audits this against the radios' own arrival
// counters.
type ChannelStats struct {
	Offered      int // arrival events scheduled toward in-range receivers
	Delivered    int // arrival events that fired
	FilteredFreq int // fired arrivals discarded: receiver tuned elsewhere
}

// Channel is the shared wireless medium. Every attached radio's
// transmission is offered to every other radio whose received power
// clears its carrier-sense threshold, after the speed-of-light delay.
type Channel struct {
	sched  *sim.Scheduler
	prop   Propagation
	radios []*Radio

	arriveFn func(any)
	arrFree  []*arrival
	stats    ChannelStats
}

// NewChannel creates a channel using the given propagation model.
func NewChannel(sched *sim.Scheduler, prop Propagation) *Channel {
	c := &Channel{sched: sched, prop: prop}
	c.arriveFn = func(a any) {
		ar := a.(*arrival)
		dst, p, power, duration, freq := ar.dst, ar.p, ar.power, ar.duration, ar.freq
		*ar = arrival{}
		c.arrFree = append(c.arrFree, ar)
		c.stats.Delivered++
		if dst.Freq() != freq {
			c.stats.FilteredFreq++
			return // tuned elsewhere: no energy seen
		}
		dst.frameArrives(p, power, duration)
	}
	return c
}

// Attach registers a radio on the medium.
func (c *Channel) Attach(r *Radio) {
	r.ch = c
	c.radios = append(c.radios, r)
}

// Radios returns all attached radios.
func (c *Channel) Radios() []*Radio { return c.radios }

// Propagation returns the channel's propagation model.
func (c *Channel) Propagation() Propagation { return c.prop }

// broadcast delivers a transmission from src to every other radio above
// its carrier-sense threshold that is tuned to the same frequency channel
// when the first bit arrives. Each receiver gets its own clone of the
// packet so that forwarding never aliases.
func (c *Channel) broadcast(src *Radio, p *packet.Packet, duration sim.Time) {
	srcPos := src.pos()
	txFreq := src.Freq()
	for _, dst := range c.radios {
		if dst == src {
			continue
		}
		pr := c.prop.RxPower(src.Params.TxPowerW, srcPos, dst.pos())
		if pr < dst.Params.CSThreshW {
			continue // below the noise floor: invisible
		}
		delay := sim.Time(srcPos.Dist(dst.pos()) / SpeedOfLight)
		var ar *arrival
		if n := len(c.arrFree); n > 0 {
			ar = c.arrFree[n-1]
			c.arrFree = c.arrFree[:n-1]
		} else {
			ar = &arrival{}
		}
		*ar = arrival{dst: dst, p: p.Clone(), power: pr, duration: duration, freq: txFreq}
		c.stats.Offered++
		c.sched.ScheduleArgKind(sim.KindPHY, delay, c.arriveFn, ar)
	}
}

// Stats returns the channel's arrival counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// FreqFn reports a radio's current frequency channel. It is sampled at
// transmit time (sender) and first-bit arrival time (receiver), which is
// exact for slot-synchronised hopping schemes.
type FreqFn func() int

// PositionFn reports a node's current position; radios call it at
// transmission and reception time so moving vehicles attenuate naturally.
type PositionFn func() geom.Vec2

// MAC is the upward interface a radio delivers into. The 802.11 MAC uses
// all three callbacks; the TDMA MAC ignores the carrier-sense pair.
type MAC interface {
	// RecvFromPhy delivers a frame whose last bit has arrived. corrupted
	// is true when the frame overlapped another transmission and lost
	// (collision without capture).
	RecvFromPhy(p *packet.Packet, corrupted bool)
	// ChannelBusy signals the medium transitioned idle -> busy as seen by
	// this radio (physical carrier sense).
	ChannelBusy()
	// ChannelIdle signals the medium transitioned busy -> idle. Idle
	// notifications can be delivered redundantly when several busy periods
	// end at the same instant; implementations must be idempotent.
	ChannelIdle()
}
