package phy

import (
	"errors"
	"fmt"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// Transmit error sentinels. Both indicate a MAC-layer programming error;
// the radio refuses the frame, counts it in Stats.TxRefused, and returns a
// wrapped error instead of panicking so a malformed scenario degrades a
// run rather than crashing a sweep.
var (
	// ErrTxWhileTx is returned when Transmit is called on a radio that is
	// already transmitting.
	ErrTxWhileTx = errors.New("phy: transmit while transmitting")
	// ErrTxDuration is returned for a non-positive transmit duration.
	ErrTxDuration = errors.New("phy: non-positive transmit duration")
)

// State is the radio transceiver state.
type State uint8

// Radio states.
const (
	Idle State = iota
	Receiving
	Transmitting
)

var stateNames = [...]string{"idle", "rx", "tx"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// reception tracks the frame the radio is currently locked onto. Receptions
// are recycled through a per-radio free list: every reception's lifetime
// ends in finishReception (delivered or aborted), which releases it.
type reception struct {
	p         *packet.Packet
	power     float64
	end       sim.Time
	corrupted bool
	// maxInterfW is the worst aggregate interference seen during the
	// reception (SINR mode only).
	maxInterfW float64
}

// interfEntry carries one interferer's power until its end-of-arrival
// event; pooled like receptions.
type interfEntry struct {
	power float64
}

// Stats counts radio-level outcomes for diagnostics and tests. Every
// first-bit arrival the channel delivers (RxArrivals) ends in exactly one
// of the terminal counters below or is still in flight at the end of the
// run — the conservation identity the invariant checker audits.
type Stats struct {
	TxFrames      int // frames transmitted
	TxRefused     int // Transmit calls rejected with an error (MAC bug guard)
	RxArrivals    int // first-bit arrivals offered by the channel
	RxOK          int // frames delivered intact
	RxCollided    int // frames delivered corrupted (collision, no capture)
	RxCaptured    int // interferers suppressed by capture
	RxOverlapLost int // arrivals lost overlapping a locked reception (no capture credit)
	RxWhileTx     int // arrivals ignored because the radio was transmitting
	RxBelowThresh int // arrivals sensed but too weak to decode
	RxAbortedByTx int // in-progress receptions destroyed by our own transmission

	// Fault-injection outcomes. These stay zero unless an Impairment is
	// installed or the radio is taken down (see SetDown); no silent path
	// exists — every frame a fault destroys is counted in exactly one of
	// them, mirroring the RxAbortedByTx accounting.
	RxImpaired         int // intact receptions destroyed by injected impairment
	RxDroppedOutage    int // arrivals (or in-progress receptions) lost to a radio outage
	TxSuppressedOutage int // transmissions attempted while the radio was down
}

// Impairment is the pluggable fault-injection hook consulted once for every
// frame that would otherwise be delivered intact: returning true destroys
// the frame (it reaches the MAC marked corrupted, like a failed checksum).
// Collision- or SINR-corrupted frames are never offered to it, so an
// impairment model's randomness is consumed only for genuine decisions. A
// nil impairment costs one pointer check per delivery and nothing else.
type Impairment interface {
	// DropRx judges the frame p arriving intact at radio dst.
	DropRx(dst packet.NodeID, p *packet.Packet) bool
}

// Radio is one node's transceiver. It is half-duplex: transmitting blinds
// it to arrivals, and arrivals overlapping in time collide unless one
// exceeds the other by the capture ratio.
type Radio struct {
	// Params holds the RF constants (thresholds, power).
	Params RadioParams

	id    packet.NodeID
	sched *sim.Scheduler
	ch    *Channel
	slot  int // attach index on ch; the spatial index keys per-radio state by it
	pos   PositionFn
	mac   MAC
	freq  FreqFn

	state     State
	rx        *reception
	busyUntil sim.Time
	idleTimer sim.Timer
	down      bool
	imp       Impairment
	spans     *span.Recorder

	// interfW is the aggregate power of all arrivals not locked onto,
	// maintained only in SINR mode.
	interfW float64

	// Hot-path callbacks, allocated once per radio so per-event scheduling
	// captures nothing, plus free lists for the per-event payload structs.
	txDoneFn    func()
	idleFn      func()
	finishRecFn func(any)
	interfEndFn func(any)
	recFree     []*reception
	interfFree  []*interfEntry

	stats Stats
}

// NewRadio creates a radio for node id at the position reported by pos.
// Attach it to a Channel and set its MAC with SetMAC before use.
func NewRadio(id packet.NodeID, sched *sim.Scheduler, pos PositionFn, params RadioParams) *Radio {
	if pos == nil {
		panic("phy: nil position function")
	}
	r := &Radio{id: id, sched: sched, pos: pos, Params: params}
	r.txDoneFn = func() {
		r.state = Idle
		r.maybeIdle()
	}
	r.idleFn = func() {
		r.idleTimer = sim.Timer{}
		r.maybeIdle()
	}
	r.finishRecFn = func(a any) { r.finishReception(a.(*reception)) }
	r.interfEndFn = func(a any) {
		e := a.(*interfEntry)
		r.interfW -= e.power
		if r.interfW < 0 {
			r.interfW = 0 // floating-point drift floor
		}
		r.interfFree = append(r.interfFree, e)
	}
	return r
}

// ID returns the owning node's ID.
func (r *Radio) ID() packet.NodeID { return r.id }

// SetMAC wires the MAC layer that receives frames and carrier-sense
// transitions.
func (r *Radio) SetMAC(m MAC) { r.mac = m }

// SetFreqFn installs a frequency-channel provider, sampled at transmit
// and arrival time. Frequency-hopping MACs install a hop-sequence
// function; the default (nil) keeps the radio on channel 0.
func (r *Radio) SetFreqFn(fn FreqFn) { r.freq = fn }

// Freq returns the radio's current frequency channel.
func (r *Radio) Freq() int {
	if r.freq == nil {
		return 0
	}
	return r.freq()
}

// SetImpairment installs a fault-injection model consulted on every intact
// reception. Pass nil to remove it.
func (r *Radio) SetImpairment(imp Impairment) { r.imp = imp }

// SetSpans installs the causal span recorder. A nil recorder (the default)
// is the disarmed state and costs each PHY event one nil comparison.
func (r *Radio) SetSpans(rec *span.Recorder) { r.spans = rec }

// SetDown takes the radio off the air (true) or recovers it (false). A down
// radio transmits no energy and hears no arrivals; a reception in progress
// when it goes down is destroyed and counted in RxDroppedOutage. Recovery
// re-checks carrier state so a CSMA MAC waiting on an idle medium is not
// left stuck.
func (r *Radio) SetDown(down bool) {
	if r.down == down {
		return
	}
	r.down = down
	if !down {
		r.maybeIdle()
		return
	}
	if r.rx != nil {
		// The locked frame is lost; its end-of-frame event releases the
		// reception struct when it finds r.rx changed.
		r.stats.RxDroppedOutage++
		r.spans.Record(span.OpRxLost, span.CauseOutage, r.id, r.rx.p)
		r.rx = nil
	}
	if r.state == Receiving {
		r.state = Idle
	}
}

// Down reports whether the radio is currently in an injected outage.
func (r *Radio) Down() bool { return r.down }

// State returns the transceiver state.
func (r *Radio) State() State { return r.state }

// Stats returns the radio's counters.
func (r *Radio) Stats() Stats { return r.stats }

// ReceptionInProgress reports whether a locked reception is still in
// flight — the one arrival a run-end conservation audit must not expect a
// terminal counter for.
func (r *Radio) ReceptionInProgress() bool { return r.rx != nil }

// newReception returns a recycled (or new) reception initialised for a
// locked-onto frame.
func (r *Radio) newReception(p *packet.Packet, power float64, end sim.Time) *reception {
	if n := len(r.recFree); n > 0 {
		rec := r.recFree[n-1]
		r.recFree = r.recFree[:n-1]
		*rec = reception{p: p, power: power, end: end}
		return rec
	}
	return &reception{p: p, power: power, end: end}
}

// releaseReception returns a finished reception to the free list, dropping
// its packet reference so the pool pins no frames.
func (r *Radio) releaseReception(rec *reception) {
	rec.p = nil
	r.recFree = append(r.recFree, rec)
}

// ReleaseFrame returns a delivered frame to the channel's clone pool.
// Every delivered frame is the receiver's private clone, so whichever
// layer finally consumes it may release it — the MAC for frames it
// discards in RecvFromPhy (overheard unicasts, control frames,
// duplicates, corrupted frames), the network layer for routing-control
// packets its agent has fully digested. The releaser asserts that no
// reference to the packet, its TCP header, or its payload escaped: all
// three allocations are recycled into future clones.
func (r *Radio) ReleaseFrame(p *packet.Packet) {
	if r.ch != nil {
		r.ch.releaseClone(p)
	}
}

// CarrierBusy reports whether the medium appears busy to this radio: it is
// transmitting, locked onto a frame, or sensing energy above the
// carrier-sense threshold.
func (r *Radio) CarrierBusy() bool {
	return r.state != Idle || r.rx != nil || r.busyUntil > r.sched.Now()
}

// Transmit puts a frame on the air for the given duration. The caller (the
// MAC) is responsible for medium access; the radio enforces only physical
// constraints: transmitting while already transmitting or for a
// non-positive duration is a programming error — the frame is refused,
// counted in Stats.TxRefused, and a wrapped ErrTxWhileTx/ErrTxDuration is
// returned. Transmitting while receiving destroys the reception
// (half-duplex).
func (r *Radio) Transmit(p *packet.Packet, duration sim.Time) error {
	if r.state == Transmitting {
		r.stats.TxRefused++
		return fmt.Errorf("%w (radio %v)", ErrTxWhileTx, r.id)
	}
	if duration <= 0 {
		r.stats.TxRefused++
		return fmt.Errorf("%w (radio %v: %v)", ErrTxDuration, r.id, duration)
	}
	if r.down {
		// Outage: the MAC's transmit state machine proceeds normally, but
		// no energy leaves the antenna — the frame is silently lost on air,
		// and counted here rather than vanishing.
		r.stats.TxSuppressedOutage++
		r.spans.RecordDur(span.OpTx, span.CauseOutage, r.id, p, duration)
		r.state = Transmitting
		r.sched.ScheduleKind(sim.KindPHY, duration, r.txDoneFn)
		return nil
	}
	if r.rx != nil {
		// Half-duplex: the in-progress reception is lost. The reception's
		// end-of-frame event releases it when it finds r.rx changed.
		r.stats.RxAbortedByTx++
		r.spans.Record(span.OpRxLost, span.CauseAbortedByTx, r.id, r.rx.p)
		r.rx = nil
	}
	r.state = Transmitting
	r.stats.TxFrames++
	r.spans.RecordDur(span.OpTx, span.CauseNone, r.id, p, duration)
	r.extendBusy(r.sched.Now() + duration)
	r.ch.broadcast(r, p, duration)
	r.sched.ScheduleKind(sim.KindPHY, duration, r.txDoneFn)
	return nil
}

// frameArrives is called by the channel when the first bit of a frame
// reaches this radio (power already above CSThreshW). owned reports
// whether p is this arrival's private clone; otherwise p is the
// transmitter's packet, borrowed for the duration of this event only —
// loss paths may read it (span metadata), but locking onto the frame must
// clone it first.
func (r *Radio) frameArrives(p *packet.Packet, power float64, duration sim.Time, owned bool) {
	r.stats.RxArrivals++
	if r.down {
		// A dead radio hears nothing: no carrier sense, no interference
		// bookkeeping — but the loss is counted, never silent.
		r.stats.RxDroppedOutage++
		r.spans.Record(span.OpRxLost, span.CauseOutage, r.id, p)
		return
	}
	now := r.sched.Now()
	end := now + duration
	wasBusy := r.CarrierBusy()
	r.extendBusy(end)
	if !wasBusy && r.mac != nil {
		r.mac.ChannelBusy()
	}

	if r.Params.SINRMode {
		r.arriveSINR(p, power, duration, end, owned)
		return
	}

	switch {
	case r.state == Transmitting:
		// Blinded by our own transmission.
		r.stats.RxWhileTx++
		r.spans.Record(span.OpRxLost, span.CauseWhileTx, r.id, p)
	case power < r.Params.RxThreshW:
		// Sensed but undecodable: pure noise. If we were locked onto a
		// frame, noise this weak does not corrupt it only when capture
		// holds.
		r.stats.RxBelowThresh++
		r.spans.Record(span.OpRxLost, span.CauseBelowThresh, r.id, p)
		if r.rx != nil && r.rx.power < power*r.Params.CaptureRatio {
			r.rx.corrupted = true
		}
	case r.rx == nil:
		// Lock onto the frame; deliver when the last bit arrives. A
		// borrowed packet is cloned here — the one moment the radio keeps a
		// reference past the arrival event.
		if !owned {
			p = r.ch.clonePacket(p)
		}
		rec := r.newReception(p, power, end)
		r.rx = rec
		r.state = Receiving
		r.sched.ScheduleArgKind(sim.KindPHY, duration, r.finishRecFn, rec)
	default:
		// Overlap with the frame we are locked onto.
		if r.rx.power >= power*r.Params.CaptureRatio {
			// Capture: the locked frame is strong enough to survive.
			r.stats.RxCaptured++
			r.spans.Record(span.OpRxLost, span.CauseCaptured, r.id, p)
		} else {
			// Collision: the locked frame is corrupted, and the new frame
			// cannot be acquired mid-overlap either.
			r.stats.RxOverlapLost++
			r.spans.Record(span.OpRxLost, span.CauseOverlap, r.id, p)
			r.rx.corrupted = true
		}
	}
}

// arriveSINR handles an arrival under the aggregate-interference model:
// decodable frames lock an idle receiver; everything else accumulates
// into the interference level, and the verdict falls at reception end.
func (r *Radio) arriveSINR(p *packet.Packet, power float64, duration sim.Time, end sim.Time, owned bool) {
	if r.state != Transmitting && r.rx == nil && power >= r.Params.RxThreshW {
		if !owned {
			p = r.ch.clonePacket(p)
		}
		rec := r.newReception(p, power, end)
		rec.maxInterfW = r.interfW
		r.rx = rec
		r.state = Receiving
		r.sched.ScheduleArgKind(sim.KindPHY, duration, r.finishRecFn, rec)
		return
	}
	switch {
	case r.state == Transmitting:
		r.stats.RxWhileTx++
		r.spans.Record(span.OpRxLost, span.CauseWhileTx, r.id, p)
	case power < r.Params.RxThreshW:
		r.stats.RxBelowThresh++
		r.spans.Record(span.OpRxLost, span.CauseBelowThresh, r.id, p)
	default:
		// Decodable power, but the receiver is locked onto another frame:
		// the arrival folds into interference and is lost.
		r.stats.RxOverlapLost++
		r.spans.Record(span.OpRxLost, span.CauseOverlap, r.id, p)
	}
	r.addInterference(power, duration)
}

// addInterference raises the aggregate interference level for the
// arrival's duration.
func (r *Radio) addInterference(power float64, duration sim.Time) {
	r.interfW += power
	if r.rx != nil && r.interfW > r.rx.maxInterfW {
		r.rx.maxInterfW = r.interfW
	}
	var e *interfEntry
	if n := len(r.interfFree); n > 0 {
		e = r.interfFree[n-1]
		r.interfFree = r.interfFree[:n-1]
	} else {
		e = &interfEntry{}
	}
	e.power = power
	r.sched.ScheduleArgKind(sim.KindPHY, duration, r.interfEndFn, e)
}

// finishReception delivers the locked frame when its last bit arrives.
func (r *Radio) finishReception(rec *reception) {
	if r.rx != rec {
		// Reception was aborted (e.g. we transmitted over it); this event
		// held the last reference, so the struct can be recycled now.
		r.releaseReception(rec)
		return
	}
	r.rx = nil
	if r.state == Receiving {
		r.state = Idle
	}
	if r.Params.SINRMode && rec.power < r.Params.CaptureRatio*(r.Params.NoiseFloorW+rec.maxInterfW) {
		rec.corrupted = true
	}
	p, corrupted := rec.p, rec.corrupted
	impaired := !corrupted && r.imp != nil && r.imp.DropRx(r.id, p)
	switch {
	case impaired:
		r.stats.RxImpaired++
		r.spans.Record(span.OpRxLost, span.CauseImpaired, r.id, p)
	case corrupted:
		r.stats.RxCollided++
		r.spans.Record(span.OpRxLost, span.CauseCollision, r.id, p)
	default:
		r.stats.RxOK++
		r.spans.Record(span.OpRxOK, span.CauseNone, r.id, p)
	}
	r.releaseReception(rec)
	if r.mac != nil {
		r.mac.RecvFromPhy(p, corrupted || impaired)
	}
	r.maybeIdle()
}

// extendBusy pushes the carrier-busy horizon out to at least t and
// arranges an idle notification when it expires.
func (r *Radio) extendBusy(t sim.Time) {
	if t <= r.busyUntil {
		return
	}
	r.busyUntil = t
	// Each overlapping arrival pushes the deadline back; postponing the
	// pending timer in place avoids a heap remove + re-insert per frame.
	if tm, ok := r.idleTimer.Postpone(t); ok {
		r.idleTimer = tm
		return
	}
	r.idleTimer.Cancel()
	r.idleTimer = r.sched.AtKind(sim.KindPHY, t, r.idleFn)
}

// maybeIdle notifies the MAC if the medium has gone fully quiet.
func (r *Radio) maybeIdle() {
	if !r.CarrierBusy() && r.mac != nil {
		r.mac.ChannelIdle()
	}
}
