// Package mac defines the contract between the network layer, an
// interface queue, and a medium-access protocol. The paper's variable
// parameter "MAC type" selects between the two implementations:
// internal/mactdma (Time Division Multiple Access) and internal/mac80211
// (IEEE 802.11 DCF).
package mac

import (
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Upcall is the interface the network layer exposes to its MAC.
type Upcall interface {
	// RecvFromMac delivers a frame addressed to this node (or broadcast),
	// already stripped of MAC-level concerns.
	RecvFromMac(p *packet.Packet)
	// MacTxDone reports the fate of a frame previously handed to the MAC:
	// ok=false means the MAC exhausted its retries (802.11) — AODV treats
	// that as a broken link. Broadcast frames always report ok=true.
	MacTxDone(p *packet.Packet, ok bool)
}

// MAC is a medium-access protocol instance bound to one radio and one
// interface queue.
type MAC interface {
	// ID returns the node this MAC belongs to.
	ID() packet.NodeID
	// Poke tells the MAC that the interface queue may have a packet for
	// it. Poke is idempotent and cheap; the network layer calls it after
	// every enqueue.
	Poke()
}

// Duration returns the time to clock out n bytes at rate bits/second.
func Duration(n int, rateBps float64) sim.Time {
	return sim.Time(float64(n) * 8 / rateBps)
}
