package mac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDuration(t *testing.T) {
	// 1,000 bytes at 1 Mb/s = 8 ms.
	if got := Duration(1000, 1e6); math.Abs(float64(got)-0.008) > 1e-12 {
		t.Fatalf("Duration = %v, want 8 ms", got)
	}
	// 1,500 bytes at 2 Mb/s = 6 ms.
	if got := Duration(1500, 2e6); math.Abs(float64(got)-0.006) > 1e-12 {
		t.Fatalf("Duration = %v, want 6 ms", got)
	}
	if Duration(0, 1e6) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

// Property: duration is linear in size and inverse in rate.
func TestDurationScalingProperty(t *testing.T) {
	f := func(nRaw uint16, rateRaw uint8) bool {
		n := int(nRaw%10000) + 1
		rate := float64(rateRaw%10+1) * 1e6
		d1 := Duration(n, rate)
		d2 := Duration(2*n, rate)
		d3 := Duration(n, 2*rate)
		return math.Abs(float64(d2-2*d1)) < 1e-15 && math.Abs(float64(d3-d1/2)) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
