package scenario_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"vanetsim/internal/app"
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

// TestRandomTopologyConservation fuzzes small random topologies and
// traffic patterns over the full stack (AODV + MAC + PHY) and checks
// end-to-end conservation invariants:
//
//   - a sink never receives more datagrams than its source sent;
//   - no datagram is delivered twice (UID uniqueness at the sink);
//   - every measured one-way delay is positive;
//   - the run terminates (no event-loop livelock) and is deterministic.
func TestRandomTopologyConservation(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MAC80211, scenario.MACTDMA} {
		mac := mac
		f := func(seed uint16, nRaw, flowsRaw uint8) bool {
			n := int(nRaw%5) + 3      // 3..7 nodes
			nf := int(flowsRaw%3) + 1 // 1..3 flows
			rng := sim.NewRNG(uint64(seed) + 99)
			w := scenario.NewWorld(scenario.DefaultStackConfig(mac), uint64(seed))
			for i := 0; i < n; i++ {
				x, y := rng.Range(0, 500), rng.Range(0, 500)
				w.AddNode(packet.NodeID(i), func() geom.Vec2 { return geom.V(x, y) })
			}
			type flow struct {
				src  *app.UDPSource
				sink *app.UDPSink
			}
			var flows []flow
			for k := 0; k < nf; k++ {
				from := rng.Intn(n)
				to := rng.Intn(n)
				if to == from {
					to = (to + 1) % n
				}
				port := 5000 + 2*k
				fl := flow{
					src:  app.NewUDPSource(w.Sched, w.Nodes[from].Net, w.PF, port, packet.NodeID(to), port+1, packet.TypeCBR),
					sink: app.NewUDPSink(w.Sched, w.Nodes[to].Net, port+1),
				}
				seen := make(map[uint64]bool)
				ok := true
				fl.sink.OnRecv(func(p *packet.Packet, at sim.Time) {
					if seen[p.UID] {
						ok = false
					}
					seen[p.UID] = true
					if at < p.SentAt {
						ok = false
					}
				})
				defer func(k int, okp *bool) {
					if !*okp {
						t.Errorf("mac=%v seed=%d flow=%d: duplicate or time-travelling delivery", mac, seed, k)
					}
				}(k, &ok)
				app.NewCBR(w.Sched, fl.src, 400, 5e4).Start()
				flows = append(flows, fl)
			}
			w.Sched.RunUntil(10)
			for k, fl := range flows {
				if fl.sink.Received() > fl.src.Sent() {
					t.Errorf("mac=%v seed=%d flow=%d: received %d > sent %d",
						mac, seed, k, fl.sink.Received(), fl.src.Sent())
					return false
				}
			}
			return !t.Failed()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatal(fmt.Errorf("mac %v: %w", mac, err))
		}
	}
}
