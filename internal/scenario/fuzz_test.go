package scenario_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"vanetsim/internal/app"
	"vanetsim/internal/check"
	"vanetsim/internal/fault"
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

// topologyConservation builds a small random topology and traffic pattern
// over the full stack (AODV + MAC + PHY), optionally impaired by the fault
// layer, runs it, and checks end-to-end conservation invariants:
//
//   - a sink never receives more UNIQUE datagrams than its source sent
//     (duplicates are legal: when every ACK of an exchange is lost the
//     source cannot distinguish "data lost" from "ACK lost", declares the
//     link broken, and AODV salvage re-sends a datagram that already
//     arrived — at-least-once delivery, exactly as real UDP over 802.11);
//   - no delivery happens before its own send time;
//   - the run terminates (no event-loop livelock).
//
// It reports failures through t and returns false on the first violated
// conservation bound. Shared by the quick.Check test and the native fuzz
// target.
func topologyConservation(t *testing.T, mac scenario.MACType, seed uint16, nRaw, flowsRaw, faultRaw uint8) bool {
	n := int(nRaw%5) + 3      // 3..7 nodes
	nf := int(flowsRaw%3) + 1 // 1..3 flows
	rng := sim.NewRNG(uint64(seed) + 99)
	cfg := scenario.DefaultStackConfig(mac)
	cfg.Check = check.New()
	// faultRaw != 0 impairs the run: up to 60% independent loss plus up to
	// 7 dB shadowing. The invariants must hold on an arbitrarily bad
	// channel — loss may shrink delivery, never duplicate or time-travel.
	if faultRaw != 0 {
		cfg.Faults = fault.Plan{
			Bernoulli:     fault.Bernoulli{LossProb: float64(faultRaw%61) / 100},
			ShadowSigmaDB: float64(faultRaw % 8),
		}
	}
	w := scenario.NewWorld(cfg, uint64(seed))
	for i := 0; i < n; i++ {
		x, y := rng.Range(0, 500), rng.Range(0, 500)
		w.AddNode(packet.NodeID(i), func() geom.Vec2 { return geom.V(x, y) })
	}
	type flow struct {
		src  *app.UDPSource
		sink *app.UDPSink
	}
	var flows []flow
	var unique []map[uint64]bool
	for k := 0; k < nf; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if to == from {
			to = (to + 1) % n
		}
		port := 5000 + 2*k
		fl := flow{
			src:  app.NewUDPSource(w.Sched, w.Nodes[from].Net, w.PF, port, packet.NodeID(to), port+1, packet.TypeCBR),
			sink: app.NewUDPSink(w.Sched, w.Nodes[to].Net, port+1),
		}
		seen := make(map[uint64]bool)
		fl.sink.OnRecv(func(p *packet.Packet, at sim.Time) {
			seen[p.UID] = true
			if at < p.SentAt {
				t.Errorf("mac=%v seed=%d fault=%d flow=%d: uid %d delivered at %v before its send time %v",
					mac, seed, faultRaw, k, p.UID, at, p.SentAt)
			}
		})
		unique = append(unique, seen)
		app.NewCBR(w.Sched, fl.src, 400, 5e4).Start()
		flows = append(flows, fl)
	}
	w.Sched.RunUntil(10)
	for _, v := range w.AuditInvariants() {
		t.Errorf("mac=%v seed=%d fault=%d: %v", mac, seed, faultRaw, v.Error())
	}
	for k, fl := range flows {
		if len(unique[k]) > fl.src.Sent() {
			t.Errorf("mac=%v seed=%d fault=%d flow=%d: %d unique datagrams delivered > %d sent",
				mac, seed, faultRaw, k, len(unique[k]), fl.src.Sent())
			return false
		}
	}
	return !t.Failed()
}

// TestRandomTopologyConservation drives the invariant check from
// testing/quick for fast every-run coverage, clean and faulted.
func TestRandomTopologyConservation(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MAC80211, scenario.MACTDMA} {
		mac := mac
		f := func(seed uint16, nRaw, flowsRaw, faultRaw uint8) bool {
			return topologyConservation(t, mac, seed, nRaw, flowsRaw, faultRaw)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatal(fmt.Errorf("mac %v: %w", mac, err))
		}
	}
}

// FuzzTopologyConservation is the native fuzz entry point the nightly CI
// job runs with -fuzz: the engine mutates topology, traffic, and fault
// bytes freely, and the same conservation invariants must hold.
func FuzzTopologyConservation(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint8(0), uint8(0), false)
	f.Add(uint16(7), uint8(4), uint8(2), uint8(55), true)
	f.Add(uint16(999), uint8(255), uint8(255), uint8(255), false)
	f.Fuzz(func(t *testing.T, seed uint16, nRaw, flowsRaw, faultRaw uint8, dcf bool) {
		mac := scenario.MACTDMA
		if dcf {
			mac = scenario.MAC80211
		}
		topologyConservation(t, mac, seed, nRaw, flowsRaw, faultRaw)
	})
}
