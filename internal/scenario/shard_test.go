package scenario_test

import (
	"bytes"
	"fmt"
	"testing"

	"vanetsim/internal/scenario"
)

// shardTelemetry renders a run's telemetry with the sched/shard_* gauges
// removed: like run/wall_*, the per-shard pipeline profile is a
// host-execution diagnostic that necessarily varies with the shard count,
// and it is the only telemetry allowed to.
func shardTelemetry(t *testing.T, r *scenario.DenseHighwayResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Telemetry.NDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.Contains(line, []byte(`"sched/shard_`)) {
			continue
		}
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestDenseHighwayShardInvariance is the tentpole's end-to-end acceptance
// at test scale: the dense highway, with the invariant checker, telemetry,
// and span tracing all armed, must produce identical simulation output at
// every shard count — indications, collisions, channel and traffic
// counters, the full causal span stream, and the telemetry report (modulo
// the per-shard diagnostics) — while the sharded runs demonstrably engage
// the staged pipeline.
func TestDenseHighwayShardInvariance(t *testing.T) {
	run := func(shards int) *scenario.DenseHighwayResult {
		cfg := denseTestConfig(scenario.MAC80211, 60)
		cfg.Shards = shards
		cfg.Telemetry = true
		cfg.Check = true
		cfg.Spans = true
		return mustDense(t, cfg)
	}
	serial := run(1)
	if len(serial.World.Channel.PipeStats()) != 0 {
		t.Fatal("single-shard run spun up the offer pipeline")
	}
	serialTel := shardTelemetry(t, serial)

	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := run(shards)
			for _, v := range r.Violations {
				t.Errorf("violation: %v", v.Error())
			}
			if r.Channel != serial.Channel {
				t.Fatalf("channel stats diverged: %+v vs serial %+v", r.Channel, serial.Channel)
			}
			if r.Collisions != serial.Collisions || r.RxCollided != serial.RxCollided {
				t.Fatalf("collision outcomes diverged: (%d, rx %d) vs serial (%d, rx %d)",
					r.Collisions, r.RxCollided, serial.Collisions, serial.RxCollided)
			}
			if r.SafetySent != serial.SafetySent || r.SafetyReceived != serial.SafetyReceived ||
				r.BeaconSent != serial.BeaconSent || r.BeaconReceived != serial.BeaconReceived {
				t.Fatal("traffic totals diverged from the serial run")
			}
			for i := range r.Indications {
				if r.Indications[i] != serial.Indications[i] {
					t.Fatalf("indication %d diverged: %+v vs serial %+v",
						i, r.Indications[i], serial.Indications[i])
				}
			}
			if len(r.Spans) != len(serial.Spans) {
				t.Fatalf("span counts diverged: %d vs serial %d", len(r.Spans), len(serial.Spans))
			}
			for i := range r.Spans {
				if r.Spans[i] != serial.Spans[i] {
					t.Fatalf("span %d diverged: %+v vs serial %+v", i, r.Spans[i], serial.Spans[i])
				}
			}
			if !bytes.Equal(shardTelemetry(t, r), serialTel) {
				t.Fatal("telemetry (shard diagnostics stripped) diverged from the serial run")
			}
			// The guarantee must not be vacuous: the pipeline ran.
			pipe := r.World.Channel.PipeStats()
			if len(pipe) != shards {
				t.Fatalf("PipeStats reported %d shards, want %d", len(pipe), shards)
			}
			if pipe[0].Batches == 0 {
				t.Fatal("the staged pipeline never engaged at this density")
			}
		})
	}
}

// TestDenseHighwayBeaconJitter pins the jitter knob's contract: a jittered
// run is deterministic (same seed, same run), actually changes the beacon
// timing relative to the lockstep default, and stays clean under the
// invariant checker.
func TestDenseHighwayBeaconJitter(t *testing.T) {
	base := func(jitter float64) scenario.DenseHighwayConfig {
		cfg := denseTestConfig(scenario.MAC80211, 45)
		cfg.BeaconJitter = jitter
		cfg.Check = true
		return cfg
	}
	lockstep := mustDense(t, base(0))
	a := mustDense(t, base(0.3))
	b := mustDense(t, base(0.3))
	for _, v := range a.Violations {
		t.Errorf("violation under jitter: %v", v.Error())
	}
	if a.Channel != b.Channel || a.BeaconSent != b.BeaconSent || a.BeaconReceived != b.BeaconReceived {
		t.Fatalf("jittered runs of the same seed diverged: %+v vs %+v", a.Channel, b.Channel)
	}
	if a.Channel == lockstep.Channel && a.BeaconSent == lockstep.BeaconSent {
		t.Fatal("30% interval jitter left the run identical to lockstep beaconing")
	}
}
