package scenario_test

import (
	"bytes"
	"testing"

	"vanetsim/internal/fault"
	"vanetsim/internal/geom"
	"vanetsim/internal/scenario"
	"vanetsim/internal/trace"
)

// shortFaultTrial is a 30-second trial1 with tracing and telemetry on,
// faulted by plan.
func shortFaultTrial(mac scenario.MACType, plan fault.Plan) scenario.TrialConfig {
	cfg := scenario.Trial1()
	if mac == scenario.MAC80211 {
		cfg = scenario.Trial3()
	}
	cfg.Duration = 30
	cfg.CollectTrace = true
	cfg.Telemetry = true
	cfg.Faults = plan
	return cfg
}

func traceBytes(t *testing.T, r *scenario.TrialResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, r.Trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFaultedTrialInjectsAndCounts(t *testing.T) {
	plan := fault.Plan{
		Bernoulli:     fault.Bernoulli{LossProb: 0.05},
		Burst:         fault.Burst(0.1, 4),
		ShadowSigmaDB: 4,
		Outages:       []fault.Outage{{Node: 1, Start: 22, Duration: 5}},
	}
	r := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, plan))

	fs := r.World.FaultStats()
	if fs.DroppedBernoulli == 0 || fs.DroppedBurst == 0 || fs.BurstTransitions == 0 {
		t.Fatalf("loss models never fired: %+v", fs)
	}
	snap := r.Telemetry
	for _, name := range []string{
		"fault/rx_impaired", "fault/rx_dropped_outage", "fault/tx_suppressed_outage",
		"fault/rx_dropped_bernoulli", "fault/rx_dropped_burst",
		"fault/rx_dropped_data_frames", "fault/burst_transitions",
		"fault/shadow_samples",
	} {
		if _, ok := snap.Counter(name); !ok {
			t.Errorf("faulted run missing counter %s", name)
		}
	}
	if imp, _ := snap.Counter("fault/rx_impaired"); imp == 0 {
		t.Fatal("fault/rx_impaired = 0 with 15% stationary loss")
	}
	if shadow, _ := snap.Counter("fault/shadow_samples"); shadow == 0 {
		t.Fatal("shadowing enabled but drew no samples")
	}
	g, ok := snap.Gauge("fault/outage_seconds")
	if !ok || g.Value != 5 {
		t.Fatalf("fault/outage_seconds = %+v, want 5", g)
	}
	// Node 1's radio must have seen the outage directly. The in-window drops
	// are audited: nothing vanishes without a counter.
	st := r.World.Node(1).Radio.Stats()
	if st.RxDroppedOutage == 0 {
		t.Fatal("outage on node 1 dropped nothing — silent loss or no outage")
	}
}

func TestFaultCountersAbsentWhenOff(t *testing.T) {
	r := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{}))
	if _, ok := r.Telemetry.Counter("fault/rx_impaired"); ok {
		t.Fatal("unfaulted run registered fault counters (golden digests would shift)")
	}
	if _, ok := r.Telemetry.Gauge("fault/outage_seconds"); ok {
		t.Fatal("unfaulted run registered fault/outage_seconds")
	}
	if fs := r.World.FaultStats(); fs != (fault.Stats{}) {
		t.Fatalf("unfaulted run has non-zero fault stats: %+v", fs)
	}
}

func TestZeroLengthOutageIsZeroEffect(t *testing.T) {
	// A plan containing only no-op entries must be indistinguishable from no
	// plan at all, byte for byte.
	base := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{}))
	noop := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{
		Outages: []fault.Outage{
			{Node: 1, Start: 10, Duration: 0},
			{Node: 2, Start: 5, Duration: -1},
		},
	}))
	if !bytes.Equal(traceBytes(t, base), traceBytes(t, noop)) {
		t.Fatal("zero-length outages changed the trace")
	}
	if _, ok := noop.Telemetry.Counter("fault/rx_impaired"); ok {
		t.Fatal("no-op plan registered fault telemetry")
	}
}

func TestOutageSpanningTrialEnd(t *testing.T) {
	// The outage opens at t=25 and nominally recovers at t=45, but the trial
	// ends at 30: the radio must still be down at the end, and the gauge
	// must report only the 5 in-run seconds.
	plan := fault.Plan{Outages: []fault.Outage{{Node: 1, Start: 25, Duration: 20}}}
	r := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, plan))
	if !r.World.Node(1).Radio.Down() {
		t.Fatal("radio recovered even though the outage outlives the trial")
	}
	g, ok := r.Telemetry.Gauge("fault/outage_seconds")
	if !ok || g.Value != 5 {
		t.Fatalf("fault/outage_seconds = %+v, want 5 (clamped to run end)", g)
	}
	for _, n := range r.World.Nodes {
		if n.ID != 1 && n.Radio.Down() {
			t.Fatalf("outage leaked to node %v", n.ID)
		}
	}
}

func TestOutageDegradesDelivery(t *testing.T) {
	// Platoon 2 (nodes 3,4,5) communicates from t=0; knock out its middle
	// receiver for most of that window and the platoon must deliver less.
	base := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{}))
	out := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{
		Outages: []fault.Outage{{Node: 4, Start: 1, Duration: 18}},
	}))
	nBase := len(base.Platoon2.MiddleDelays().Points())
	nOut := len(out.Platoon2.MiddleDelays().Points())
	if nOut >= nBase {
		t.Fatalf("middle-vehicle deliveries %d with an 18 s outage, %d without", nOut, nBase)
	}
	if st := out.World.Node(4).Radio.Stats(); st.RxDroppedOutage == 0 {
		t.Fatal("receptions lost to the outage were not counted")
	}
}

func TestFaultedTrialDeterminism80211(t *testing.T) {
	// Same seed, same plan → byte-identical trace, including under the
	// randomised MAC. This is the single-run core of the CI determinism gate.
	plan := fault.Plan{
		Bernoulli:     fault.Bernoulli{LossProb: 0.05, BitErrorRate: 1e-6},
		Burst:         fault.Burst(0.1, 4),
		ShadowSigmaDB: 4,
		Outages:       []fault.Outage{{Node: 1, Start: 22, Duration: 5}},
	}
	a := scenario.RunTrial(shortFaultTrial(scenario.MAC80211, plan))
	b := scenario.RunTrial(shortFaultTrial(scenario.MAC80211, plan))
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("same seed and plan produced different traces")
	}
}

func TestShadowingChangesOutcomeButNotStructure(t *testing.T) {
	base := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{}))
	shadowed := scenario.RunTrial(shortFaultTrial(scenario.MACTDMA, fault.Plan{ShadowSigmaDB: 8}))
	if bytes.Equal(traceBytes(t, base), traceBytes(t, shadowed)) {
		t.Fatal("8 dB shadowing left the trace untouched")
	}
	if n, _ := shadowed.Telemetry.Counter("fault/shadow_samples"); n == 0 {
		t.Fatal("no shadowing draws recorded")
	}
}

func TestWorldRejectsInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld accepted an invalid fault plan")
		}
	}()
	cfg := scenario.DefaultStackConfig(scenario.MACTDMA)
	cfg.Faults = fault.Plan{Bernoulli: fault.Bernoulli{LossProb: 1.5}}
	scenario.NewWorld(cfg, 1)
}

func TestOutageStartClampedToNow(t *testing.T) {
	// An outage whose window opened before the world was built drops the
	// radio immediately at t=0 and recovers on schedule.
	plan := fault.Plan{Outages: []fault.Outage{{Node: 0, Start: -5, Duration: 8}}}
	cfg := scenario.DefaultStackConfig(scenario.MACTDMA)
	cfg.Faults = plan
	w := scenario.NewWorld(cfg, 1)
	n := w.AddNode(0, func() geom.Vec2 { return geom.V(0, 0) })
	w.Sched.RunUntil(10)
	if n.Radio.Down() {
		t.Fatal("radio still down after the clamped window closed")
	}
	if plan.OutageSeconds(10) != 3 {
		t.Fatalf("OutageSeconds = %v, want 3", plan.OutageSeconds(10))
	}
}
