package scenario

import (
	"fmt"
	"time"

	"vanetsim/internal/app"
	"vanetsim/internal/check"
	"vanetsim/internal/geom"
	"vanetsim/internal/jammer"
	"vanetsim/internal/mactdma"
	"vanetsim/internal/metrics"
	"vanetsim/internal/mobility"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// JammingConfig sets up the denial-of-service experiment the paper's
// §III.E discussion motivates: a stopped platoon exchanging EBL status
// datagrams while an attacker floods the radio channel. Status messages
// ride UDP here (no retransmission), so the delivery ratio measures the
// MAC's resilience directly.
type JammingConfig struct {
	MAC         MACType
	HopChannels int // >1 enables TDMA FHSS over this many channels
	HopSeed     uint64
	Jam         jammer.Config
	JammerDistM float64 // attacker's distance from the platoon lead
	Vehicles    int
	SpacingM    float64
	PacketSize  int
	RateBps     float64 // offered datagram rate per flow
	TDMARateBps float64
	Duration    sim.Time
	Seed        uint64
	Telemetry   bool // collect a cross-layer metrics snapshot
	Check       bool // arm the runtime invariant checker (observation-only)
	Spans       bool // arm causal span tracing (observation-only)
}

// DefaultJamming returns a 3-vehicle, 60-second attack run: 1,000-byte
// status datagrams at 100 kb/s per flow, attacker 30 m away flooding
// channel 0 continuously from t = 10 s.
func DefaultJamming(mac MACType) JammingConfig {
	jam := jammer.DefaultConfig()
	jam.StartAt = 10
	return JammingConfig{
		MAC:         mac,
		Jam:         jam,
		JammerDistM: 30,
		Vehicles:    3,
		SpacingM:    25,
		PacketSize:  1000,
		RateBps:     1e5,
		TDMARateBps: 1e6,
		Duration:    60,
		Seed:        1,
	}
}

// JamFlowResult is one lead-to-follower flow's outcome under attack.
type JamFlowResult struct {
	Receiver packet.NodeID
	Sent     int
	Received int
	// DeliveryRatio is Received/Sent over the whole run (attack included).
	DeliveryRatio float64
	Delays        *metrics.DelaySeries
}

// JammingResult is a completed attack run.
type JammingResult struct {
	Config JammingConfig
	World  *World
	Jammer *jammer.Jammer
	Flows  []JamFlowResult
	// OverallDelivery is the total received/sent ratio across flows.
	OverallDelivery float64
	// Telemetry is the metrics snapshot (nil unless Config.Telemetry).
	Telemetry *obs.Snapshot
	// Violations are the invariant violations of a checked run (nil unless
	// checking was armed; empty means clean).
	Violations []check.Violation
	// Spans is the causal per-packet event stream (nil unless Config.Spans).
	Spans []span.Event
	// WallSeconds is the host wall-clock cost of the run (host-dependent,
	// never feeds simulation output).
	WallSeconds float64
}

// RunJamming executes the experiment. It returns an error when the attack
// configuration is invalid (see jammer.New).
func RunJamming(cfg JammingConfig) (*JammingResult, error) {
	if cfg.Vehicles < 2 {
		return nil, fmt.Errorf("scenario: jamming run needs at least two vehicles, got %d", cfg.Vehicles)
	}
	stack := DefaultStackConfig(cfg.MAC)
	if cfg.TDMARateBps > 0 {
		stack.TDMA.DataRateBps = cfg.TDMARateBps
	}
	if cfg.Telemetry {
		stack.Obs = obs.NewRegistry()
	}
	if cfg.Check || check.ForceAll {
		stack.Check = check.New()
	}
	if cfg.Spans {
		stack.Spans = span.NewRecorder()
	}
	w := NewWorld(stack, cfg.Seed)
	s := w.Sched
	wallStart := time.Now()
	if cfg.MAC == MACTDMA && cfg.HopChannels > 1 {
		w.TDMASchedule().SetHopping(mactdma.Hopping{Channels: cfg.HopChannels, Seed: cfg.HopSeed})
	}

	// Stopped platoon along +x, lead at the origin.
	p := mobility.NewPlatoon(s, 0, cfg.Vehicles, geom.V(0, 0), geom.V(1, 0), cfg.SpacingM)
	type flowEnd struct {
		src    *app.UDPSource
		sink   *app.UDPSink
		delays *metrics.DelaySeries
		rcv    packet.NodeID
	}
	leadNode := w.AddVehicleNode(p.Lead())
	flows := make([]*flowEnd, 0, cfg.Vehicles-1)
	for i, f := range p.Followers() {
		n := w.AddVehicleNode(f)
		port := 3000 + 2*i
		fe := &flowEnd{
			src:    app.NewUDPSource(s, leadNode.Net, w.PF, port, f.ID(), port+1, packet.TypeEBL),
			sink:   app.NewUDPSink(s, n.Net, port+1),
			delays: &metrics.DelaySeries{},
			rcv:    f.ID(),
		}
		fe.sink.SetSpans(stack.Spans)
		seq := 0
		fe.sink.OnRecv(func(pkt *packet.Packet, at sim.Time) {
			seq++
			fe.delays.Add(seq, at-pkt.SentAt)
		})
		flows = append(flows, fe)
	}

	// CBR datagram generators for each flow.
	for _, fe := range flows {
		app.NewCBR(s, fe.src, cfg.PacketSize, cfg.RateBps).Start()
	}

	// The attacker: a bare radio off to the side of the road, no stack.
	jamID := packet.NodeID(cfg.Vehicles)
	jpos := geom.V(0, cfg.JammerDistM)
	jradio := phy.NewRadio(jamID, s, func() geom.Vec2 { return jpos }, stack.Radio)
	w.Channel.Attach(jradio)
	j, err := jammer.New(jamID, s, jradio, w.PF, cfg.Jam)
	if err != nil {
		return nil, err
	}

	s.RunUntil(cfg.Duration)

	res := &JammingResult{Config: cfg, World: w, Jammer: j}
	totalSent, totalRecv := 0, 0
	for _, fe := range flows {
		fr := JamFlowResult{
			Receiver: fe.rcv,
			Sent:     fe.src.Sent(),
			Received: fe.sink.Received(),
			Delays:   fe.delays,
		}
		if fr.Sent > 0 {
			fr.DeliveryRatio = float64(fr.Received) / float64(fr.Sent)
		}
		totalSent += fr.Sent
		totalRecv += fr.Received
		res.Flows = append(res.Flows, fr)
	}
	if totalSent > 0 {
		res.OverallDelivery = float64(totalRecv) / float64(totalSent)
	}
	res.Telemetry = w.HarvestTelemetry()
	res.Violations = w.AuditInvariants()
	res.Spans = stack.Spans.Events()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}
