package scenario

import (
	"fmt"
	"time"

	"vanetsim/internal/anim"
	"vanetsim/internal/check"
	"vanetsim/internal/ebl"
	"vanetsim/internal/fault"
	"vanetsim/internal/geom"
	"vanetsim/internal/metrics"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
	"vanetsim/internal/trace"
)

// TrialConfig describes one run of the paper's intersection scenario. The
// fixed parameters (drop-tail priority ifq, AODV, 50 mph) and the variable
// ones (MAC type, packet size) match §III.A.
type TrialConfig struct {
	Name       string
	MAC        MACType
	PacketSize int // bytes per brake-status packet

	// Scenario geometry and choreography.
	SpeedMS      float64   // cruise speed (paper: 22.4 m/s = 50 mph)
	SpacingM     float64   // inter-vehicle separation (paper: 25 m)
	ApproachM    float64   // platoon 1's initial distance from the intersection
	Duration     sim.Time  // simulated time
	PlatoonSize  int       // vehicles per platoon (paper: 3)
	DepartDistM  float64   // how far platoon 2 drives away
	RateBps      float64   // offered CBR load per flow
	TDMARateBps  float64   // TDMA radio bit rate (calibration: 1 Mb/s)
	QueueCap     int       // interface queue length (ns-2 default: 50)
	Queue        QueueType // interface queue flavour (default: PriQueue)
	TCPWindow    float64   // TCP max congestion window in segments (0 = ns-2 default 20)
	ThroughputBn sim.Time  // throughput record interval
	Seed         uint64
	SINRPhy      bool // aggregate-interference PHY instead of pairwise capture
	CollectTrace bool // also record an agent-level trace
	// Telemetry enables the cross-layer observability registry; the
	// snapshot lands on TrialResult.Telemetry. Observation-only: the same
	// seed yields identical traces and figures with it on or off.
	Telemetry bool
	// AnimInterval enables position recording (the Nam-animator role)
	// with the given sample period; 0 disables it.
	AnimInterval sim.Time
	// Check arms the runtime invariant checker: layer seams audit packet
	// conservation, slot exclusivity, route sanity and event monotonicity,
	// and the violations land on TrialResult.Violations. Observation-only:
	// the same seed yields identical outputs with it on or off. The
	// `checkall` build tag forces it on regardless of this field.
	Check bool
	// Spans arms causal per-packet span tracing: every datagram's lifecycle
	// (emit, queue, MAC wait, airtime, loss or delivery) lands on
	// TrialResult.Spans in scheduler order. Observation-only: the same seed
	// yields identical traces and figures with it on or off.
	Spans bool
	// Faults is the impairment recipe (packet/bit error models, bursty
	// loss, shadowing, scheduled outages). The zero value injects nothing:
	// an unfaulted run is byte-identical with or without this field.
	Faults fault.Plan
	// Shards is the intra-run shard count for the channel's staged offer
	// pipeline (see StackConfig.Shards). Exact: any value, including 0/1
	// (serial), produces a byte-identical run.
	Shards int
}

// defaultTrial fills the fixed parameters shared by all three trials.
func defaultTrial(name string, mac MACType, pktSize int) TrialConfig {
	return TrialConfig{
		Name:        name,
		MAC:         mac,
		PacketSize:  pktSize,
		SpeedMS:     ebl.MPHToMS(50), // 22.4 m/s
		SpacingM:    25,
		ApproachM:   448, // 20 s of travel at 22.4 m/s
		Duration:    200,
		PlatoonSize: 3,
		// Far enough that platoon 2 is still driving when the run ends, so
		// it stays silent after departing, as in the paper's figures.
		DepartDistM:  5000,
		RateBps:      1.4e6,
		TDMARateBps:  1e6,
		QueueCap:     50,
		Queue:        QueuePri,
		ThroughputBn: 0.5,
		Seed:         1,
	}
}

// Trial1 is the paper's base trial: TDMA MAC, 1,000-byte packets.
func Trial1() TrialConfig { return defaultTrial("trial1", MACTDMA, 1000) }

// Trial2 varies packet size: TDMA MAC, 500-byte packets.
func Trial2() TrialConfig { return defaultTrial("trial2", MACTDMA, 500) }

// Trial3 varies the MAC: 802.11, 1,000-byte packets.
func Trial3() TrialConfig { return defaultTrial("trial3", MAC80211, 1000) }

// PlatoonResult exposes one platoon's mobility, application, and
// measurements after a run.
type PlatoonResult struct {
	Platoon *mobility.Platoon
	Comms   *ebl.PlatoonComms
}

// MiddleDelays returns the delay series of the flow to the middle vehicle.
func (p *PlatoonResult) MiddleDelays() *metrics.DelaySeries {
	return p.Comms.Flows()[0].Delays
}

// TrailingDelays returns the delay series of the flow to the trailing
// vehicle.
func (p *PlatoonResult) TrailingDelays() *metrics.DelaySeries {
	flows := p.Comms.Flows()
	return flows[len(flows)-1].Delays
}

// AllDelays returns every flow's delays concatenated in arrival order per
// flow (middle first) — used for platoon-level delay summaries.
func (p *PlatoonResult) AllDelays() []*metrics.DelaySeries {
	out := make([]*metrics.DelaySeries, 0, len(p.Comms.Flows()))
	for _, f := range p.Comms.Flows() {
		out = append(out, f.Delays)
	}
	return out
}

// Throughput returns the platoon-aggregate throughput sampler.
func (p *PlatoonResult) Throughput() *metrics.Throughput { return p.Comms.Throughput() }

// TrialResult is everything a trial run produced.
type TrialResult struct {
	Config   TrialConfig
	World    *World
	Platoon1 *PlatoonResult
	Platoon2 *PlatoonResult
	Trace    []trace.Record // nil unless CollectTrace
	Anim     *anim.Recorder // nil unless AnimInterval > 0
	// Telemetry is the cross-layer metrics snapshot (nil unless
	// Config.Telemetry).
	Telemetry *obs.Snapshot
	// Violations are the invariant violations recorded during a checked run
	// (nil unless checking was armed; empty means the run was clean).
	Violations []check.Violation
	// Spans is the causal per-packet event stream in scheduler order (nil
	// unless Config.Spans).
	Spans []span.Event
	// WallSeconds is the host wall-clock cost of the run. It is the only
	// host-dependent field and feeds no simulation output.
	WallSeconds float64
}

// RunTrial executes the paper's scenario under cfg and returns the
// measurements.
//
// Choreography (paper Figs. 1–2): platoon 2 sits stopped at the
// intersection, communicating, while platoon 1 approaches vertically at
// cruise speed. When platoon 1 reaches the intersection it halts and
// begins communicating; platoon 2 simultaneously departs horizontally and
// stops communicating.
func RunTrial(cfg TrialConfig) *TrialResult {
	if cfg.PlatoonSize < 2 {
		panic("scenario: platoon needs a lead and at least one follower")
	}
	stack := DefaultStackConfig(cfg.MAC)
	stack.QueueCap = cfg.QueueCap
	stack.Queue = cfg.Queue
	if cfg.TDMARateBps > 0 {
		stack.TDMA.DataRateBps = cfg.TDMARateBps
	}
	stack.Radio.SINRMode = cfg.SINRPhy
	stack.Faults = cfg.Faults
	stack.Shards = cfg.Shards
	if cfg.Telemetry {
		stack.Obs = obs.NewRegistry()
	}
	if cfg.Check || check.ForceAll {
		stack.Check = check.New()
	}
	if cfg.Spans {
		stack.Spans = span.NewRecorder()
	}
	w := NewWorld(stack, cfg.Seed)
	defer w.Close()
	s := w.Sched
	wallStart := time.Now()

	// Platoon 1 approaches the intersection from the south in its own
	// lane (x = 5 m), lead first.
	p1Start := geom.V(5, -cfg.ApproachM)
	p1 := mobility.NewPlatoon(s, 0, cfg.PlatoonSize, p1Start, geom.V(0, 1), cfg.SpacingM)
	// Platoon 2 sits at the intersection heading east.
	first2 := packet.NodeID(cfg.PlatoonSize)
	p2 := mobility.NewPlatoon(s, first2, cfg.PlatoonSize, geom.V(0, 0), geom.V(1, 0), cfg.SpacingM)

	// Stacks. TDMA slot order is node-ID order, as in ns-2.
	addStacks := func(p *mobility.Platoon) []*netlayer.Net {
		nets := make([]*netlayer.Net, 0, p.Len())
		for _, v := range p.Vehicles() {
			v := v
			n := w.AddVehicleNode(v)
			nets = append(nets, n.Net)
		}
		return nets
	}
	nets1 := addStacks(p1)
	nets2 := addStacks(p2)

	// Start platoon 1 moving *before* wiring comms so its application
	// correctly begins silent.
	p1.SetDest(geom.V(5, 0), cfg.SpeedMS)

	var tracer *trace.Collector
	if cfg.CollectTrace {
		tracer = trace.NewCollector(nil)
	}
	comms := func(p *mobility.Platoon, nets []*netlayer.Net, basePort int) *ebl.PlatoonComms {
		c := ebl.DefaultCommsConfig()
		c.PacketSize = cfg.PacketSize
		c.RateBps = cfg.RateBps
		c.BasePort = basePort
		c.ThroughputBin = cfg.ThroughputBn
		c.Obs = stack.Obs
		c.Spans = stack.Spans
		if stack.Check != nil {
			c.Check = check.NewEnvelope(stack.Check, envelopeRate(stack))
		}
		if cfg.TCPWindow > 0 {
			c.TCP.MaxCwnd = cfg.TCPWindow
		}
		return ebl.NewPlatoonComms(s, p, nets, w.PF, c, tracer)
	}
	comms1 := comms(p1, nets1, 1000)
	comms2 := comms(p2, nets2, 2000)

	var rec *anim.Recorder
	if cfg.AnimInterval > 0 {
		rec = anim.NewRecorder(s, cfg.AnimInterval)
		for _, v := range append(append([]*mobility.Vehicle{}, p1.Vehicles()...), p2.Vehicles()...) {
			rec.Track(v.ID(), v.Position)
		}
		rec.Start(cfg.Duration)
	}

	// When platoon 1 halts at the intersection, platoon 2 departs.
	p1.Lead().Subscribe(func(e mobility.Event) {
		if e.Type == mobility.EventStopped {
			p2.SetDest(geom.V(cfg.DepartDistM, 0), cfg.SpeedMS)
		}
	})

	// Epoch batching drains each equal-timestamp cohort in one structural
	// heap repair — byte-for-byte the execution RunUntil produces.
	s.RunEpochs(cfg.Duration)

	res := &TrialResult{
		Config:   cfg,
		World:    w,
		Platoon1: &PlatoonResult{Platoon: p1, Comms: comms1},
		Platoon2: &PlatoonResult{Platoon: p2, Comms: comms2},
	}
	if tracer != nil {
		res.Trace = tracer.Records()
	}
	res.Anim = rec
	res.Telemetry = w.HarvestTelemetry(comms1, comms2)
	res.Violations = w.AuditInvariants(comms1, comms2)
	res.Spans = stack.Spans.Events()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res
}

// envelopeRate picks the radio bit rate the EBL delay envelope is checked
// against: the active MAC's data rate.
func envelopeRate(stack StackConfig) float64 {
	if stack.MAC == MAC80211 {
		return stack.DCF.DataRateBps
	}
	return stack.TDMA.DataRateBps
}

// String summarises the configuration.
func (c TrialConfig) String() string {
	return fmt.Sprintf("%s{mac=%v pkt=%dB}", c.Name, c.MAC, c.PacketSize)
}
