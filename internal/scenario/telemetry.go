package scenario

import (
	"fmt"

	"vanetsim/internal/ebl"
	"vanetsim/internal/obs"
	"vanetsim/internal/sim"
)

// Telemetry instrumentation strategy: monotonic event counts are harvested
// once, after the run, from the Stats structs every layer already keeps —
// harvesting cannot perturb the simulation by construction. Only
// distributions and time series (which need to see individual events) use
// live instruments, and those are nil-safe no-ops when telemetry is off.

// DurationBuckets are the histogram bounds (seconds) shared by the latency
// instruments, spanning the microsecond MAC scale through the multi-second
// queueing plateau of the paper's delay figures.
var DurationBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30,
}

// RetryBuckets cover 802.11's retry counter (RetryLimit defaults keep it
// single-digit).
var RetryBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 7}

// occupancyBin is the IFQ occupancy time-series resolution, matching the
// paper's 0.5 s throughput record interval.
const occupancyBin = sim.Time(0.5)

// liveInstruments holds the event-level instruments a world wires into its
// stacks. Every field is a nil-safe no-op when telemetry is disabled, so
// the wiring is unconditional and only the queue decorator is gated.
type liveInstruments struct {
	dcfBackoffWait *obs.Histogram
	dcfRetries     *obs.Histogram
	dcfService     *obs.Histogram
	tdmaSlotWait   *obs.Histogram
	ifqOccupancy   *obs.Gauge
	ifqEnqueued    *obs.Counter
	ifqOccSeries   *obs.Series
}

func newLiveInstruments(r *obs.Registry, mac MACType) liveInstruments {
	li := liveInstruments{
		ifqOccupancy: r.Gauge("ifq/occupancy_pkts",
			"interface-queue occupancy across all nodes"),
		ifqEnqueued: r.Counter("ifq/enqueued_total",
			"packets accepted by interface queues"),
		ifqOccSeries: r.Series("ifq/occupancy_series",
			"time-binned interface-queue occupancy", occupancyBin),
	}
	// Only the active MAC's instruments are registered, so a DCF run's
	// report carries no empty TDMA histogram and vice versa.
	switch mac {
	case MACTDMA:
		li.tdmaSlotWait = r.Histogram("mac/tdma/slot_wait_s",
			"head-of-line wait for the node's own TDMA slot", DurationBuckets)
	case MAC80211:
		li.dcfBackoffWait = r.Histogram("mac/dcf/backoff_wait_s",
			"time spent in backoff before each transmission attempt", DurationBuckets)
		li.dcfRetries = r.Histogram("mac/dcf/retries_per_frame",
			"retransmission attempts per completed frame", RetryBuckets)
		li.dcfService = r.Histogram("mac/dcf/service_time_s",
			"head-of-line time from Poke to MAC completion", DurationBuckets)
	}
	return li
}

// HarvestTelemetry folds every layer's post-run statistics and the
// scheduler's execution profile into the world's registry and returns the
// snapshot. comms lists the platoon TCP endpoints to summarise. It returns
// nil when telemetry is disabled. The snapshot is a pure function of the
// run: no host-clock value flows into it, so the same seed produces
// byte-identical reports on any machine (host-clock cost lives on the
// result structs' WallSeconds fields instead).
func (w *World) HarvestTelemetry(comms ...*ebl.PlatoonComms) *obs.Snapshot {
	r := w.Obs
	if !r.Enabled() {
		return nil
	}

	add := func(name, help string, n int) {
		if n < 0 {
			n = 0
		}
		r.Counter(name, help).Add(uint64(n))
	}

	// PHY, summed over every attached radio.
	for _, n := range w.Nodes {
		ps := n.Radio.Stats()
		add("phy/tx_frames", "frames transmitted by radios", ps.TxFrames)
		add("phy/rx_ok", "frames delivered intact", ps.RxOK)
		add("phy/rx_collided", "frames corrupted by collision", ps.RxCollided)
		add("phy/rx_captured", "interferers suppressed by capture", ps.RxCaptured)
		add("phy/rx_while_tx", "arrivals lost to half-duplex transmission", ps.RxWhileTx)
		add("phy/rx_below_thresh", "arrivals below the receive threshold", ps.RxBelowThresh)
		add("phy/rx_aborted_by_tx", "in-progress receptions destroyed by own transmission", ps.RxAbortedByTx)

		add("ifq/dropped_total", "packets dropped by interface queues", n.Ifq.Drops())

		ns := n.Net.Stats()
		add("net/sent", "locally originated packets handed to routing", ns.Sent)
		add("net/delivered", "packets delivered to a local port", ns.Delivered)
		add("net/no_port", "local deliveries with no bound handler", ns.NoPort)

		as := n.AODV.Stats()
		add("aodv/rreq_originated", "route requests originated", as.RREQOriginated)
		add("aodv/rreq_forwarded", "route requests rebroadcast", as.RREQForwarded)
		add("aodv/rreq_stale", "route requests discarded for outliving the dedup window", as.RREQStale)
		add("aodv/rrep_originated", "route replies originated", as.RREPOriginated)
		add("aodv/rrep_forwarded", "route replies forwarded", as.RREPForwarded)
		add("aodv/rerr_sent", "route errors sent", as.RERRSent)
		add("aodv/hellos_sent", "hello beacons sent", as.HellosSent)
		add("aodv/rreq_bytes", "bytes of RREQ traffic offered to the stack", as.RREQBytes)
		add("aodv/rrep_bytes", "bytes of RREP traffic offered to the stack", as.RREPBytes)
		add("aodv/rerr_bytes", "bytes of RERR traffic offered to the stack", as.RERRBytes)
		add("aodv/hello_bytes", "bytes of hello traffic offered to the stack", as.HelloBytes)
		add("aodv/data_no_route", "data packets lacking a route", as.DataNoRoute)
		add("aodv/buffered_dropped", "buffered packets abandoned after failed discovery", as.BufferedDropped)
		add("aodv/link_breaks", "MAC-reported link failures", as.LinkBreaks)

		switch {
		case n.TDMA != nil:
			ms := n.TDMA.Stats()
			add("mac/tdma/tx_data", "frames transmitted", ms.TxData)
			add("mac/tdma/rx_delivered", "frames delivered upward", ms.RxDelivered)
			add("mac/tdma/rx_corrupted", "collision-damaged frames discarded", ms.RxCorrupted)
			add("mac/tdma/rx_filtered", "overheard frames addressed elsewhere", ms.RxFiltered)
			add("mac/tdma/idle_slots", "own slots that began with an empty queue", ms.IdleSlots)
		case n.DCF != nil:
			ms := n.DCF.Stats()
			add("mac/dcf/tx_data", "data transmissions including retries", ms.TxData)
			add("mac/dcf/tx_ack", "acknowledgements sent", ms.TxAck)
			add("mac/dcf/tx_rts", "RTS frames sent", ms.TxRTS)
			add("mac/dcf/tx_cts", "CTS responses sent", ms.TxCTS)
			add("mac/dcf/retries_total", "retransmission attempts", ms.Retries)
			add("mac/dcf/drops", "frames dropped after the retry limit", ms.Drops)
			add("mac/dcf/rx_delivered", "frames delivered upward", ms.RxDelivered)
			add("mac/dcf/rx_dup", "duplicate data frames suppressed", ms.RxDup)
			add("mac/dcf/rx_corrupted", "collision-damaged frames discarded", ms.RxCorrupted)
		}
	}

	// Transport, summed over every EBL flow.
	for _, pc := range comms {
		for _, f := range pc.Flows() {
			ts := f.Sender.Stats()
			add("tcp/segments_sent", "first transmissions of TCP segments", ts.SegmentsSent)
			add("tcp/retransmits", "TCP retransmissions", ts.Retransmits)
			add("tcp/timeouts", "TCP retransmission timeouts", ts.Timeouts)
			add("tcp/fast_retransmits", "TCP fast retransmits", ts.FastRetransmits)
			add("tcp/acks_received", "acknowledgements received by senders", ts.AcksReceived)
			add("tcp/dup_acks", "duplicate acknowledgements received", ts.DupAcks)
		}
	}

	// Fault layer — registered only when a plan is active, so an unfaulted
	// run's telemetry export is byte-identical to one built without the
	// fault package at all.
	if w.cfg.Faults.Enabled() {
		var rxOut, txOut, imp int
		for _, n := range w.Nodes {
			ps := n.Radio.Stats()
			rxOut += ps.RxDroppedOutage
			txOut += ps.TxSuppressedOutage
			imp += ps.RxImpaired
		}
		add("fault/rx_impaired", "intact receptions destroyed by error models", imp)
		add("fault/rx_dropped_outage", "arrivals and in-progress receptions lost to radio outages", rxOut)
		add("fault/tx_suppressed_outage", "transmissions suppressed while a radio was down", txOut)
		fs := w.FaultStats()
		add("fault/rx_dropped_bernoulli", "frames destroyed by the Bernoulli error model", fs.DroppedBernoulli)
		add("fault/rx_dropped_burst", "frames destroyed by Gilbert–Elliott bursts", fs.DroppedBurst)
		add("fault/rx_dropped_data_frames", "destroyed frames carrying transport or application data", fs.DroppedData)
		add("fault/burst_transitions", "Gilbert–Elliott state flips across all links", fs.BurstTransitions)
		if w.shadow != nil {
			r.Counter("fault/shadow_samples", "log-normal shadowing draws").Add(w.shadow.Samples())
		}
		r.Gauge("fault/outage_seconds", "scheduled radio-down time within the run").
			Set(w.cfg.Faults.OutageSeconds(w.Sched.Now()))
	}

	// Scheduler execution profile.
	s := w.Sched
	r.Counter("sched/events_executed", "events fired by the scheduler").Add(s.Executed())
	for k, n := range s.ExecutedByKind() {
		if n == 0 {
			continue
		}
		r.Counter("sched/events_"+kindSlug(sim.EventKind(k)),
			"events fired, by scheduling layer").Add(n)
	}
	r.Gauge("sched/max_pending", "pending-heap high-water mark").
		Set(float64(s.MaxPending()))

	// Per-shard offer-pipeline profile, registered only when intra-run
	// sharding ran. Like run/wall_*, these are host-execution diagnostics:
	// deterministic for a fixed shard count but necessarily different
	// across shard counts, so byte-identity comparisons strip sched/shard_*
	// lines alongside the wall-clock gauges.
	for i, ps := range w.Channel.PipeStats() {
		r.Gauge(fmt.Sprintf("sched/shard_%d_staged", i),
			"offer-pipeline candidates computed by this shard").Set(float64(ps.Staged))
		r.Gauge(fmt.Sprintf("sched/shard_%d_heard", i),
			"staged candidates that cleared carrier sense on this shard").Set(float64(ps.Heard))
		r.Gauge(fmt.Sprintf("sched/shard_%d_batches", i),
			"staged broadcasts this shard participated in").Set(float64(ps.Batches))
	}

	r.Gauge("run/sim_seconds", "simulated time covered by the run").
		Set(float64(s.Now()))

	return r.Snapshot()
}

// kindSlug lower-cases an EventKind for metric names.
func kindSlug(k sim.EventKind) string {
	switch k {
	case sim.KindPHY:
		return "phy"
	case sim.KindMAC:
		return "mac"
	case sim.KindRouting:
		return "routing"
	case sim.KindTransport:
		return "transport"
	case sim.KindApp:
		return "app"
	case sim.KindMobility:
		return "mobility"
	case sim.KindObs:
		return "obs"
	default:
		return "other"
	}
}
