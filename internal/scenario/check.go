package scenario

import (
	"fmt"

	"vanetsim/internal/check"
	"vanetsim/internal/ebl"
)

// AuditInvariants runs the end-of-run conservation audits against the
// world's invariant registry and returns every violation recorded during
// the run (seam-time checks included). It is a no-op returning nil when
// checking is disabled. comms are the EBL applications whose transport
// counters should be audited.
//
// The audits are pure observations of counters the simulation maintains
// anyway, so calling (or not calling) this never changes a run's outputs.
func (w *World) AuditInvariants(comms ...*ebl.PlatoonComms) []check.Violation {
	if w.check == nil {
		return nil
	}
	now := w.Sched.Now()

	// PHY conservation: every first-bit arrival a radio was offered must
	// end in exactly one terminal counter, or still be locked in flight at
	// the end of the run.
	for _, r := range w.Channel.Radios() {
		st := r.Stats()
		inFlight := 0
		if r.ReceptionInProgress() {
			inFlight = 1
		}
		terminal := st.RxOK + st.RxCollided + st.RxImpaired + st.RxCaptured +
			st.RxOverlapLost + st.RxWhileTx + st.RxBelowThresh +
			st.RxDroppedOutage + st.RxAbortedByTx
		if st.RxArrivals != terminal+inFlight {
			w.check.Violationf(now, "phy", "rx_conservation",
				"radio %v: %d arrivals != %d accounted (ok %d, collided %d, impaired %d, captured %d, overlap %d, while-tx %d, weak %d, outage %d, aborted %d, in-flight %d)",
				r.ID(), st.RxArrivals, terminal+inFlight,
				st.RxOK, st.RxCollided, st.RxImpaired, st.RxCaptured,
				st.RxOverlapLost, st.RxWhileTx, st.RxBelowThresh,
				st.RxDroppedOutage, st.RxAbortedByTx, inFlight)
		}
	}

	// Channel conservation: every fired arrival event was either
	// frequency-filtered or offered to its destination radio, and no more
	// events fired than were scheduled (the difference is still on the air).
	cs := w.Channel.Stats()
	sumArrivals := 0
	for _, r := range w.Channel.Radios() {
		sumArrivals += r.Stats().RxArrivals
	}
	if cs.Delivered != cs.FilteredFreq+sumArrivals {
		w.check.Violationf(now, "phy", "channel_conservation",
			"channel delivered %d arrivals but radios saw %d and %d were frequency-filtered",
			cs.Delivered, sumArrivals, cs.FilteredFreq)
	}
	if cs.Offered < cs.Delivered {
		w.check.Violationf(now, "phy", "channel_conservation",
			"channel delivered %d arrivals but only %d were offered", cs.Delivered, cs.Offered)
	}

	// Staged-offer pipeline conservation, when intra-run sharding ran:
	// every shard saw every staged broadcast, heard no more than it staged,
	// and the shards' arrivals are a subset of the channel's offered count.
	if pipe := w.Channel.PipeStats(); len(pipe) > 0 {
		counts := make([]check.ShardCounts, len(pipe))
		for i, s := range pipe {
			counts[i] = check.ShardCounts{Staged: s.Staged, Heard: s.Heard, Batches: s.Batches}
		}
		check.AuditShards(w.check, now, counts, cs.Offered)
	}

	// Interface-queue conservation per node.
	for _, lq := range w.chkQueues {
		lq.q.Audit(w.check, now, fmt.Sprintf("node %v", lq.id))
	}

	// TCP accounting. Equalities on transmit counts are unsound here —
	// AODV salvage legally duplicates MAC-level deliveries — so only the
	// direction-safe inequalities are audited.
	for _, pc := range comms {
		if pc == nil {
			continue
		}
		for _, f := range pc.Flows() {
			snd, snk := f.Sender.Stats(), f.Sink.Stats()
			unique := snk.SegmentsReceived - snk.Duplicates
			if unique < 0 || unique > snd.SegmentsSent {
				w.check.Violationf(now, "tcp", "segment_conservation",
					"flow to %v: %d unique segments received (recv %d, dup %d) vs %d sent",
					f.Receiver, unique, snk.SegmentsReceived, snk.Duplicates, snd.SegmentsSent)
			}
			if ha := f.Sender.HighestAcked(); ha > unique {
				w.check.Violationf(now, "tcp", "segment_conservation",
					"flow to %v: %d segments acknowledged but only %d unique deliveries",
					f.Receiver, ha, unique)
			}
			if out := f.Sender.Outstanding(); out < 0 {
				w.check.Violationf(now, "tcp", "segment_conservation",
					"flow to %v: negative outstanding window %d", f.Receiver, out)
			}
			if bl := f.Sender.Backlog(); bl < 0 {
				w.check.Violationf(now, "tcp", "segment_conservation",
					"flow to %v: negative backlog %d bytes", f.Receiver, bl)
			}
		}
		// The metrics layer must never have refused a delivery sample.
		if rej := pc.Throughput().Rejected(); rej > 0 {
			w.check.Violationf(now, "ebl", "metric_sample",
				"throughput sampler rejected %d samples", rej)
		}
	}

	return w.check.Violations()
}
