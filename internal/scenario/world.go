// Package scenario assembles full protocol stacks — application,
// transport, AODV, interface queue, MAC, radio — into simulated nodes, and
// defines the paper's two-platoon intersection scenario and its three
// trials. It is the Go equivalent of the paper's Tcl script.
package scenario

import (
	"fmt"

	"vanetsim/internal/aodv"
	"vanetsim/internal/check"
	"vanetsim/internal/fault"
	"vanetsim/internal/mac"
	"vanetsim/internal/mac80211"
	"vanetsim/internal/mactdma"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// MACType selects the medium-access protocol — the paper's second variable
// parameter.
type MACType uint8

// Supported MAC types.
const (
	MACTDMA MACType = iota
	MAC80211
)

var macNames = [...]string{"TDMA", "802.11"}

// String returns the MAC name as the paper writes it.
func (m MACType) String() string {
	if int(m) < len(macNames) {
		return macNames[m]
	}
	return fmt.Sprintf("mac(%d)", uint8(m))
}

// QueueType selects the interface queue flavour.
type QueueType uint8

// Supported queue types.
const (
	QueueDropTail QueueType = iota
	QueuePri
	// QueueRED uses random early detection — the ablation against the
	// paper's drop-tail choice (RED cuts the standing queue and with it
	// the steady-state delay plateau).
	QueueRED
)

// StackConfig describes how every node's stack is built.
type StackConfig struct {
	MAC      MACType
	Queue    QueueType
	QueueCap int
	Radio    phy.RadioParams
	Prop     phy.Propagation
	TDMA     mactdma.Config
	DCF      mac80211.Config
	AODV     aodv.Config
	// Obs receives cross-layer telemetry when non-nil. Instrumentation is
	// observation-only: the same seed produces identical runs with it on
	// or off.
	Obs *obs.Registry
	// Faults is the impairment recipe. The zero value injects nothing and
	// leaves every unfaulted golden digest untouched.
	Faults fault.Plan
	// Check, when non-nil, arms the runtime invariant checker: layer seams
	// audit packet conservation, slot exclusivity, route sanity and event
	// monotonicity into this registry. Checking is observation-only — runs
	// are byte-identical with it on or off.
	Check *check.Registry
	// Spans, when non-nil, arms the causal per-packet tracer: every layer
	// seam records lifecycle events into this recorder. Tracing is
	// observation-only and, like Check, byte-identical on or off.
	Spans *span.Recorder
	// DisableCulling forces the channel's full-receiver scan even when the
	// propagation model would allow spatial-index culling. Culling is exact
	// — indexed and scanned runs are byte-identical — so this only costs
	// time; it exists for equivalence tests and scaling benchmarks.
	DisableCulling bool
	// Shards is the intra-run shard count for the channel's staged offer
	// pipeline: broadcast receivers are partitioned by grid region, the pure
	// per-receiver computation runs across the shards, and arrivals commit
	// serially in candidate order. Sharding is exact — any shard count
	// (0 and 1 mean fully serial) produces a byte-identical run — and
	// requires culling, so it is inert under DisableCulling or shadowing.
	Shards int
}

// DefaultStackConfig returns the paper's fixed parameters: drop-tail
// priority queue of 50 packets, AODV routing, ns-2 WaveLAN radio, with the
// requested MAC.
func DefaultStackConfig(m MACType) StackConfig {
	return StackConfig{
		MAC:      m,
		Queue:    QueuePri,
		QueueCap: 50,
		Radio:    phy.DefaultRadioParams(),
		Prop:     phy.DefaultPropagation(),
		TDMA:     mactdma.DefaultConfig(),
		DCF:      mac80211.DefaultConfig(),
		AODV:     aodv.DefaultConfig(),
	}
}

// Node is one assembled stack.
type Node struct {
	ID    packet.NodeID
	Net   *netlayer.Net
	AODV  *aodv.Agent
	Radio *phy.Radio
	Ifq   queue.Queue
	MAC   mac.MAC

	// Exactly one of these is non-nil, matching the world's MAC type;
	// they expose protocol-specific statistics.
	TDMA *mactdma.MAC
	DCF  *mac80211.MAC
}

// World owns the shared simulation infrastructure and the set of nodes.
type World struct {
	Sched   *sim.Scheduler
	Channel *phy.Channel
	PF      *packet.Factory
	RNG     *sim.RNG
	Nodes   []*Node
	// Obs is the telemetry registry (nil when telemetry is disabled).
	Obs *obs.Registry

	cfg      StackConfig
	spans    *span.Recorder    // nil when span tracing is disarmed
	schedule *mactdma.Schedule // TDMA worlds only
	live     liveInstruments
	fault    *fault.Injector // nil unless a per-link loss model is enabled
	shadow   *phy.Shadowing  // nil unless shadowing is enabled

	// Invariant-checking state (all nil/empty when cfg.Check is nil).
	check      *check.Registry
	chkQueues  []labeledQueue
	slotGuard  *check.SlotGuard  // TDMA worlds only
	routeGuard *check.RouteGuard // shared across all agents
}

// labeledQueue pairs a conservation-counting queue with its owner for
// end-of-run audit messages.
type labeledQueue struct {
	id packet.NodeID
	q  *check.CountingQueue
}

// NewWorld creates an empty world with the given stack recipe and seed.
func NewWorld(cfg StackConfig, seed uint64) *World {
	if err := cfg.Faults.Validate(); err != nil {
		panic(err)
	}
	s := sim.New()
	rng := sim.NewRNG(seed)
	prop := cfg.Prop
	var shadow *phy.Shadowing
	if cfg.Faults.ShadowSigmaDB > 0 {
		// Shadowing draws from its own forked stream (Fork reads without
		// advancing), so enabling it shifts no other layer's randomness.
		shadow = phy.NewShadowing(prop, cfg.Faults.ShadowSigmaDB, rng.Fork("fault/shadow"))
		prop = shadow
	}
	w := &World{
		Sched:   s,
		Channel: phy.NewChannel(s, prop),
		PF:      &packet.Factory{},
		RNG:     rng,
		Obs:     cfg.Obs,
		cfg:     cfg,
		spans:   cfg.Spans,
		live:    newLiveInstruments(cfg.Obs, cfg.MAC),
		shadow:  shadow,
	}
	// The recorder carries the run's clock so clockless layers (netlayer,
	// queue taps) can stamp events; Bind is nil-safe.
	w.spans.Bind(s)
	if shadow == nil && !cfg.DisableCulling {
		// Spatial-index neighbor culling is exact (byte-identical digests)
		// for every deterministic monotone propagation model. Shadowing is
		// the exception: its per-computation RNG draw means skipping a
		// below-median receiver would also skip a draw and shift every
		// subsequent sample, so shadowed worlds keep the full scan.
		w.Channel.EnableCulling()
		if cfg.Shards > 1 {
			w.Channel.EnableSharding(cfg.Shards)
		}
	}
	if cfg.Faults.LinkEnabled() {
		w.fault = fault.NewInjector(cfg.Faults, rng.Fork("fault/link"))
	}
	if cfg.MAC == MACTDMA {
		w.schedule = mactdma.NewSchedule(cfg.TDMA.SlotDuration())
	}
	if cfg.Check != nil {
		w.check = cfg.Check
		s.SetStepHook(check.Monotonic(w.check))
		w.routeGuard = check.NewRouteGuard(w.check)
		if cfg.MAC == MACTDMA {
			w.slotGuard = check.NewSlotGuard(w.check, cfg.TDMA.SlotDuration())
		}
		// With both subsystems armed, violations carry the offending
		// packet's flight-recorder trail (TrailFn is nil when spans are off,
		// which leaves the registry's zero-cost default in place).
		w.check.SetTrail(w.spans.TrailFn())
	}
	return w
}

// Close releases the world's host-side resources: the channel's parked
// shard workers, when sharding was enabled. The world remains usable —
// broadcasts simply return to the serial offer loop, which is
// byte-identical anyway. Idempotent.
func (w *World) Close() { w.Channel.CloseSharding() }

// CheckRegistry returns the invariant-violation registry (nil when
// checking is disabled).
func (w *World) CheckRegistry() *check.Registry { return w.check }

// FaultStats returns the per-link injector's counters (zero when no loss
// model is enabled).
func (w *World) FaultStats() fault.Stats {
	if w.fault == nil {
		return fault.Stats{}
	}
	return w.fault.Stats()
}

// Config returns the stack recipe the world builds with.
func (w *World) Config() StackConfig { return w.cfg }

// TDMASchedule returns the shared slot schedule (nil for 802.11 worlds).
func (w *World) TDMASchedule() *mactdma.Schedule { return w.schedule }

// AddNode assembles a full stack for node id whose position is reported by
// pos, attaches it to the channel, and returns it.
func (w *World) AddNode(id packet.NodeID, pos phy.PositionFn) *Node {
	n := &Node{ID: id}
	n.Radio = phy.NewRadio(id, w.Sched, pos, w.cfg.Radio)
	w.Channel.Attach(n.Radio)
	if w.fault != nil {
		n.Radio.SetImpairment(w.fault)
	}
	w.scheduleOutages(n.Radio)
	n.Net = netlayer.New(id)
	// IfqDropFn is nil when spans are disarmed, preserving the queues'
	// silent-discard fast path.
	onDrop := w.spans.IfqDropFn(id)
	switch w.cfg.Queue {
	case QueuePri:
		n.Ifq = queue.NewPriQueue(w.cfg.QueueCap, onDrop)
	case QueueRED:
		n.Ifq = queue.NewRED(w.cfg.QueueCap, queue.DefaultREDConfig(), w.RNG.Fork(fmt.Sprintf("red-%d", id)), onDrop)
	default:
		n.Ifq = queue.NewDropTail(w.cfg.QueueCap, onDrop)
	}
	if w.check != nil {
		// Transparent conservation counter under the telemetry decorator so
		// it sees exactly what the MAC and network layer exchange.
		cq := check.Count(n.Ifq)
		w.chkQueues = append(w.chkQueues, labeledQueue{id: id, q: cq})
		n.Ifq = cq
	}
	if w.Obs.Enabled() {
		// Transparent decorator: an unwrapped queue pays nothing when
		// telemetry is off.
		n.Ifq = queue.Instrument(n.Ifq, w.Sched, w.live.ifqOccupancy, w.live.ifqEnqueued, w.live.ifqOccSeries)
	}
	// Span tap outermost, so enq/deq events reflect exactly what the
	// network layer and MAC exchange. TapQueue is the identity when
	// tracing is disarmed.
	n.Ifq = span.TapQueue(n.Ifq, w.spans, id)
	n.Radio.SetSpans(w.spans)
	switch w.cfg.MAC {
	case MACTDMA:
		n.TDMA = mactdma.New(id, w.Sched, n.Radio, n.Ifq, n.Net, w.schedule, w.cfg.TDMA)
		n.TDMA.SetObs(w.live.tdmaSlotWait)
		n.TDMA.SetCheck(w.slotGuard)
		n.TDMA.SetSpans(w.spans)
		n.MAC = n.TDMA
	case MAC80211:
		rng := w.RNG.Fork(fmt.Sprintf("mac80211-%d", id))
		n.DCF = mac80211.New(id, w.Sched, n.Radio, n.Ifq, n.Net, w.PF, rng, w.cfg.DCF)
		n.DCF.SetObs(w.live.dcfBackoffWait, w.live.dcfRetries, w.live.dcfService)
		n.DCF.SetSpans(w.spans)
		n.MAC = n.DCF
	default:
		panic(fmt.Sprintf("scenario: unknown MAC type %v", w.cfg.MAC))
	}
	n.Net.Attach(n.Ifq, n.MAC)
	n.Net.SetSpans(w.spans)
	n.AODV = aodv.New(w.Sched, n.Net, w.PF, w.RNG.Fork(fmt.Sprintf("aodv-%d", id)), w.cfg.AODV)
	n.AODV.SetCheck(w.routeGuard)
	n.AODV.SetSpans(w.spans)
	w.Nodes = append(w.Nodes, n)
	return n
}

// AddVehicleNode assembles a stack for a mobile vehicle and gives the
// channel's spatial index kinematic visibility into it: the index learns
// the vehicle's constant-acceleration segment and is notified on every
// trajectory change, so the radio's grid cell is revalidated only when the
// vehicle could actually have strayed. Nodes added via plain AddNode are
// never culled, so mixing the two stays exact.
func (w *World) AddVehicleNode(v *mobility.Vehicle) *Node {
	n := w.AddNode(v.ID(), v.Position)
	w.Channel.SetMotion(n.Radio, func() phy.Motion {
		pos, vel, acc := v.Motion()
		return phy.Motion{Pos: pos, Vel: vel, Acc: acc}
	})
	radio := n.Radio
	v.OnMotionChange(func() { w.Channel.MotionChanged(radio) })
	return n
}

// scheduleOutages arms the plan's outage windows targeting r's node: the
// radio goes down at each window's start and recovers at its end. Windows
// whose start lies in the past are clamped to now (the radio drops
// immediately); non-positive durations are no-ops.
func (w *World) scheduleOutages(r *phy.Radio) {
	for _, o := range w.cfg.Faults.Outages {
		if o.Node != r.ID() || o.Duration <= 0 {
			continue
		}
		down, up := o.Start, o.Start+o.Duration
		if down < w.Sched.Now() {
			down = w.Sched.Now()
		}
		if up <= down {
			continue
		}
		r := r
		w.Sched.AtKind(sim.KindPHY, down, func() { r.SetDown(true) })
		w.Sched.AtKind(sim.KindPHY, up, func() { r.SetDown(false) })
	}
}

// Node returns the node with the given ID, or nil.
func (w *World) Node(id packet.NodeID) *Node {
	for _, n := range w.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}
