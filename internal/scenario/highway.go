package scenario

import (
	"fmt"
	"time"

	"vanetsim/internal/check"
	"vanetsim/internal/ebl"
	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// HighwayConfig describes the extension scenario the paper's conclusion
// asks for ("a larger and more complex vehicular configuration"): an
// N-vehicle platoon cruising on a highway whose lead vehicle brakes hard.
// Followers brake only after the EBL brake indication reaches them (plus
// driver reaction), so the MAC's notification latency translates directly
// into consumed following distance — and possibly collisions.
type HighwayConfig struct {
	MAC         MACType
	Vehicles    int     // platoon size including the lead
	SpacingM    float64 // following distance
	SpeedMS     float64 // cruise speed
	DecelMS2    float64 // braking deceleration
	CarLengthM  float64 // collision threshold between stopped vehicles
	PacketSize  int
	RateBps     float64
	TDMARateBps float64  // TDMA radio rate override (0 = package default)
	ReactionS   sim.Time // driver reaction after the indication arrives
	BrakeAt     sim.Time // when the lead brakes
	Duration    sim.Time
	QueueCap    int
	Seed        uint64
	Telemetry   bool // collect a cross-layer metrics snapshot
	Check       bool // arm the runtime invariant checker (observation-only)
	Spans       bool // arm causal span tracing (observation-only)
}

// DefaultHighway returns a 50-mph, 25-m-spacing emergency-braking run
// with n vehicles on the given MAC.
func DefaultHighway(mac MACType, n int) HighwayConfig {
	return HighwayConfig{
		MAC:         mac,
		Vehicles:    n,
		SpacingM:    25,
		SpeedMS:     ebl.MPHToMS(50),
		DecelMS2:    6,
		CarLengthM:  4.5,
		PacketSize:  1000,
		RateBps:     1.4e6,
		TDMARateBps: 1e6,
		ReactionS:   0.7,
		BrakeAt:     10,
		Duration:    60,
		QueueCap:    50,
		Seed:        1,
	}
}

// BrakeIndication is one follower's outcome in a highway run.
type BrakeIndication struct {
	Vehicle packet.NodeID
	// IndicationDelay is from the lead's brake event to the first EBL
	// packet arriving at this vehicle.
	IndicationDelay sim.Time
	// DistanceBlind is how far the vehicle travelled between the lead's
	// brake event and its own braking (indication + reaction).
	DistanceBlind float64
	// FinalGap is the bumper-to-bumper distance to the vehicle ahead once
	// everything has stopped.
	FinalGap float64
	// Collided reports whether the vehicle ran into its predecessor.
	Collided bool
}

// HighwayResult is a completed highway emergency-braking run.
type HighwayResult struct {
	Config      HighwayConfig
	World       *World
	Platoon     *mobility.Platoon
	Comms       *ebl.PlatoonComms
	Indications []BrakeIndication
	Collisions  int
	// Telemetry is the metrics snapshot (nil unless Config.Telemetry).
	Telemetry *obs.Snapshot
	// Violations are the invariant violations of a checked run (nil unless
	// checking was armed; empty means clean).
	Violations []check.Violation
	// Spans is the causal per-packet event stream (nil unless Config.Spans).
	Spans []span.Event
	// WallSeconds is the host wall-clock cost of the run (host-dependent,
	// never feeds simulation output).
	WallSeconds float64
}

// RunHighway executes the emergency-braking scenario. It returns an error
// on an unrunnable configuration (fewer than two vehicles).
func RunHighway(cfg HighwayConfig) (*HighwayResult, error) {
	if cfg.Vehicles < 2 {
		return nil, fmt.Errorf("scenario: highway needs at least two vehicles, got %d", cfg.Vehicles)
	}
	stack := DefaultStackConfig(cfg.MAC)
	stack.QueueCap = cfg.QueueCap
	if cfg.TDMARateBps > 0 {
		stack.TDMA.DataRateBps = cfg.TDMARateBps
	}
	if cfg.Telemetry {
		stack.Obs = obs.NewRegistry()
	}
	if cfg.Check || check.ForceAll {
		stack.Check = check.New()
	}
	if cfg.Spans {
		stack.Spans = span.NewRecorder()
	}
	w := NewWorld(stack, cfg.Seed)
	s := w.Sched
	wallStart := time.Now()

	// Long straight road along +x; start far enough back that the run
	// fits entirely at positive coordinates.
	p := mobility.NewPlatoon(s, 0, cfg.Vehicles, geom.V(float64(cfg.Vehicles)*cfg.SpacingM, 0), geom.V(1, 0), cfg.SpacingM)
	nets := make([]*netlayer.Net, 0, p.Len())
	for _, v := range p.Vehicles() {
		nets = append(nets, w.AddVehicleNode(v).Net)
	}
	p.SetDest(geom.V(1e6, 0), cfg.SpeedMS) // cruise: silent

	c := ebl.DefaultCommsConfig()
	c.PacketSize = cfg.PacketSize
	c.RateBps = cfg.RateBps
	c.Obs = stack.Obs
	c.Spans = stack.Spans
	if stack.Check != nil {
		c.Check = check.NewEnvelope(stack.Check, envelopeRate(stack))
	}
	comms := ebl.NewPlatoonComms(s, p, nets, w.PF, c, nil)

	// Follower reaction: brake on the first indication after BrakeAt.
	firstAt := make(map[packet.NodeID]sim.Time, cfg.Vehicles-1)
	vehicleByID := make(map[packet.NodeID]*mobility.Vehicle, cfg.Vehicles)
	for _, v := range p.Vehicles() {
		vehicleByID[v.ID()] = v
	}
	comms.OnDeliver(func(f *ebl.Flow, _ *packet.Packet, at sim.Time) {
		if at < cfg.BrakeAt {
			return
		}
		if _, seen := firstAt[f.Receiver]; seen {
			return
		}
		firstAt[f.Receiver] = at
		v := vehicleByID[f.Receiver]
		s.Schedule(cfg.ReactionS, func() { v.Brake(cfg.DecelMS2) })
	})

	s.At(cfg.BrakeAt, func() { p.Lead().Brake(cfg.DecelMS2) })
	s.RunUntil(cfg.Duration)

	res := &HighwayResult{Config: cfg, World: w, Platoon: p, Comms: comms}
	vehicles := p.Vehicles()
	for i := 1; i < len(vehicles); i++ {
		v := vehicles[i]
		ind := BrakeIndication{Vehicle: v.ID()}
		if at, ok := firstAt[v.ID()]; ok {
			ind.IndicationDelay = at - cfg.BrakeAt
			ind.DistanceBlind = cfg.SpeedMS * float64(ind.IndicationDelay+cfg.ReactionS)
		} else {
			ind.IndicationDelay = -1 // never notified
			ind.DistanceBlind = cfg.SpeedMS * float64(cfg.Duration-cfg.BrakeAt)
		}
		ahead := vehicles[i-1]
		// Signed along-road gap: a follower that overran its predecessor
		// must not read as "far apart" again.
		along := ahead.Position().Sub(v.Position()).Dot(p.Heading())
		ind.FinalGap = along - cfg.CarLengthM
		ind.Collided = ind.FinalGap <= 0
		if ind.Collided {
			res.Collisions++
		}
		res.Indications = append(res.Indications, ind)
	}
	res.Telemetry = w.HarvestTelemetry(comms)
	res.Violations = w.AuditInvariants(comms)
	res.Spans = stack.Spans.Events()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}
