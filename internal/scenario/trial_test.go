package scenario_test

import (
	"math"
	"testing"

	"vanetsim/internal/mobility"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

// Trials are expensive-ish; run each once and share.
var (
	trial1 = scenario.RunTrial(scenario.Trial1())
	trial2 = scenario.RunTrial(scenario.Trial2())
	trial3 = scenario.RunTrial(scenario.Trial3())
)

func TestScenarioChoreography(t *testing.T) {
	r := trial1
	// Platoon 1 halted at the intersection in its own lane.
	lead1 := r.Platoon1.Platoon.Lead()
	if lead1.Phase() != mobility.Stopped {
		t.Fatalf("platoon 1 lead phase = %v", lead1.Phase())
	}
	if pos := lead1.Position(); math.Abs(pos.X-5) > 1e-6 || math.Abs(pos.Y) > 1e-6 {
		t.Fatalf("platoon 1 lead at %v, want (5, 0)", pos)
	}
	// Platoon 2 drove away east.
	lead2 := r.Platoon2.Platoon.Lead()
	if lead2.Position().X < 1000 {
		t.Fatalf("platoon 2 lead at %v, should have departed east", lead2.Position())
	}
}

func TestCommunicationWindows(t *testing.T) {
	r := trial1
	// Platoon 1 is silent while approaching (first ~20 s), active after.
	series := r.Platoon1.Throughput().SeriesUntil(r.Config.Duration)
	for _, p := range series {
		if p.T < 19 && p.Mbps > 0 {
			t.Fatalf("platoon 1 received traffic at %v while still approaching", p.T)
		}
	}
	activeAfter := false
	for _, p := range series {
		if p.T > 25 && p.Mbps > 0 {
			activeAfter = true
			break
		}
	}
	if !activeAfter {
		t.Fatal("platoon 1 never communicated after stopping")
	}
	// Platoon 2 is active early and quiet after departing (+ drain slack).
	series2 := r.Platoon2.Throughput().SeriesUntil(r.Config.Duration)
	activeEarly, lateTraffic := false, sim.Time(0)
	for _, p := range series2 {
		if p.T < 20 && p.Mbps > 0 {
			activeEarly = true
		}
		if p.Mbps > 0 && p.T > lateTraffic {
			lateTraffic = p.T
		}
	}
	if !activeEarly {
		t.Fatal("platoon 2 never communicated while stopped at the intersection")
	}
	if lateTraffic > 40 {
		t.Fatalf("platoon 2 still receiving at %v, long after departing at ~20 s", lateTraffic)
	}
}

// The paper's trial-1-vs-trial-2 findings: halving the packet size halves
// TDMA throughput but leaves one-way delay essentially unchanged.
func TestPacketSizeEffectUnderTDMA(t *testing.T) {
	d1 := trial1.Platoon1.MiddleDelays().Summary()
	d2 := trial2.Platoon1.MiddleDelays().Summary()
	if rel := math.Abs(d1.Mean-d2.Mean) / d1.Mean; rel > 0.05 {
		t.Fatalf("TDMA delay changed %.1f%% with packet size; paper: essentially unchanged", rel*100)
	}
	_, s1 := trial1.Platoon1.MiddleDelays().SteadyState()
	_, s2 := trial2.Platoon1.MiddleDelays().SteadyState()
	if rel := math.Abs(s1-s2) / s1; rel > 0.05 {
		t.Fatalf("TDMA steady-state delay changed %.1f%% with packet size", rel*100)
	}

	t1 := trial1.Platoon1.Throughput().Summary(trial1.Config.Duration)
	t2 := trial2.Platoon1.Throughput().Summary(trial2.Config.Duration)
	ratio := t2.Mean / t1.Mean
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("trial2/trial1 throughput ratio = %.2f, want ~0.5 (one packet per slot)", ratio)
	}
}

// The paper's trial-1-vs-trial-3 findings: 802.11 gives far higher
// throughput and far lower delay than TDMA.
func TestMACEffect(t *testing.T) {
	dTDMA := trial1.Platoon1.MiddleDelays().Summary()
	dDCF := trial3.Platoon1.MiddleDelays().Summary()
	if dTDMA.Mean < 10*dDCF.Mean {
		t.Fatalf("TDMA delay (%.3fs) should dwarf 802.11 delay (%.5fs)", dTDMA.Mean, dDCF.Mean)
	}
	tTDMA := trial1.Platoon1.Throughput().Summary(trial1.Config.Duration)
	tDCF := trial3.Platoon1.Throughput().Summary(trial3.Config.Duration)
	if tDCF.Mean < 2*tTDMA.Mean {
		t.Fatalf("802.11 throughput (%.3f) should far exceed TDMA (%.3f)", tDCF.Mean, tTDMA.Mean)
	}
	// Initial-packet delays, the paper's safety argument: TDMA ~0.2 s,
	// 802.11 under 20 ms.
	f1, ok1 := trial1.Platoon1.MiddleDelays().First()
	f3, ok3 := trial3.Platoon1.MiddleDelays().First()
	if !ok1 || !ok3 {
		t.Fatal("missing initial packets")
	}
	if f1 < 0.1 || f1 > 0.5 {
		t.Fatalf("TDMA initial-packet delay = %v, want a few tenths of a second", f1)
	}
	if f3 > 0.02 {
		t.Fatalf("802.11 initial-packet delay = %v, want < 20 ms", f3)
	}
}

// The transient/steady structure of Figs. 5–9: delay ramps up while the
// sender's window opens, then plateaus.
func TestDelayTransientThenSteady(t *testing.T) {
	s := trial1.Platoon1.MiddleDelays()
	cut := s.TruncationIndex()
	if cut == 0 {
		t.Fatal("no transient detected; the paper's Figs. 5-6 show one")
	}
	transient, steadyPts := s.Points()[:cut], s.Points()[cut:]
	if len(steadyPts) < 10*len(transient)/2 && len(steadyPts) < 100 {
		t.Fatalf("steady region too short: %d vs %d transient", len(steadyPts), len(transient))
	}
	_, level := s.SteadyState()
	// The first packet is far below the steady level (queue still empty).
	first, _ := s.First()
	if float64(first) > level/2 {
		t.Fatalf("first delay %v vs steady %v: transient should start low", first, level)
	}
	// Steady region is flat: standard deviation well under the mean.
	var sum, ss float64
	for _, p := range steadyPts {
		sum += float64(p.Delay)
	}
	mean := sum / float64(len(steadyPts))
	for _, p := range steadyPts {
		d := float64(p.Delay) - mean
		ss += d * d
	}
	if sd := math.Sqrt(ss / float64(len(steadyPts))); sd > 0.2*mean {
		t.Fatalf("steady state not flat: sd=%v mean=%v", sd, mean)
	}
}

func TestThroughputConfidenceAnalysis(t *testing.T) {
	// The paper: "actual average throughput ... within X Mbps of the
	// observed value, with a 95% confidence and a Y% relative precision".
	ci := trial1.Platoon1.Throughput().CI(trial1.Config.Duration, 10, 0.95)
	if ci.HalfWidth <= 0 || math.IsInf(ci.HalfWidth, 1) {
		t.Fatalf("degenerate CI: %+v", ci)
	}
	if ci.Mean <= 0 {
		t.Fatal("throughput CI mean must be positive")
	}
}

func TestTrialDeterminism(t *testing.T) {
	a := scenario.RunTrial(scenario.Trial1())
	b := scenario.RunTrial(scenario.Trial1())
	pa, pb := a.Platoon1.MiddleDelays().Points(), b.Platoon1.MiddleDelays().Points()
	if len(pa) != len(pb) {
		t.Fatalf("same seed, different packet counts: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed diverged at point %d: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestTrialSeedSensitivity(t *testing.T) {
	cfg := scenario.Trial3() // 802.11 actually uses randomness (backoff)
	cfg.Seed = 2
	b := scenario.RunTrial(cfg)
	pa := trial3.Platoon1.MiddleDelays().Delays()
	pb := b.Platoon1.MiddleDelays().Delays()
	if len(pa) == len(pb) {
		same := true
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical 802.11 delay series")
		}
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := scenario.Trial1()
	cfg.Duration = 40
	cfg.CollectTrace = true
	r := scenario.RunTrial(cfg)
	if len(r.Trace) == 0 {
		t.Fatal("no trace records collected")
	}
	sends, recvs := 0, 0
	for _, rec := range r.Trace {
		switch rec.Op {
		case 's':
			sends++
		case 'r':
			recvs++
		}
	}
	if sends == 0 || recvs == 0 {
		t.Fatalf("trace incomplete: %d sends, %d recvs", sends, recvs)
	}
	if recvs > sends {
		t.Fatal("more receives than sends is impossible")
	}
}

func TestRunTrialPanicsOnTinyPlatoon(t *testing.T) {
	cfg := scenario.Trial1()
	cfg.PlatoonSize = 1
	defer func() {
		if recover() == nil {
			t.Fatal("platoon of one did not panic")
		}
	}()
	scenario.RunTrial(cfg)
}

func TestMACTypeString(t *testing.T) {
	if scenario.MACTDMA.String() != "TDMA" || scenario.MAC80211.String() != "802.11" {
		t.Fatal("MAC names wrong")
	}
}

func TestTrialResultAccessors(t *testing.T) {
	r := trial1
	if got := r.Platoon1.TrailingDelays(); got == nil || got.Len() == 0 {
		t.Fatal("TrailingDelays empty")
	}
	all := r.Platoon1.AllDelays()
	if len(all) != 2 {
		t.Fatalf("AllDelays = %d series, want 2", len(all))
	}
	if all[0] != r.Platoon1.MiddleDelays() || all[1] != r.Platoon1.TrailingDelays() {
		t.Fatal("AllDelays order wrong")
	}
	if s := r.Config.String(); s != "trial1{mac=TDMA pkt=1000B}" {
		t.Fatalf("TrialConfig.String = %q", s)
	}
	w := r.World
	if w.Config().MAC != scenario.MACTDMA {
		t.Fatal("World.Config wrong")
	}
	if w.Node(0) == nil || w.Node(0).ID != 0 {
		t.Fatal("World.Node lookup broken")
	}
	if w.Node(99) != nil {
		t.Fatal("phantom node")
	}
	if got := scenario.MACType(9).String(); got != "mac(9)" {
		t.Fatalf("unknown MAC string = %q", got)
	}
}
