package scenario_test

import (
	"bytes"
	"strings"
	"testing"

	"vanetsim/internal/scenario"
)

// TestPaperTrialsCleanUnderCheck runs the paper's three trials at full
// length with the invariant checker armed: conservation, slot exclusivity,
// route sanity, time monotonicity, and the delay envelope must all hold on
// the configurations the reproduction's claims rest on.
func TestPaperTrialsCleanUnderCheck(t *testing.T) {
	for _, mk := range []func() scenario.TrialConfig{
		scenario.Trial1, scenario.Trial2, scenario.Trial3,
	} {
		cfg := mk()
		cfg.Check = true
		r := scenario.RunTrial(cfg)
		for _, v := range r.Violations {
			t.Errorf("%s: %v", cfg.Name, v.Error())
		}
		if r.WallSeconds <= 0 {
			t.Errorf("%s: WallSeconds = %v, want > 0", cfg.Name, r.WallSeconds)
		}
	}
}

// TestHighwayCleanUnderCheck checks the mobile highway scenario, whose
// changing geometry exercises route breaks and re-discovery.
func TestHighwayCleanUnderCheck(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MACTDMA, scenario.MAC80211} {
		cfg := scenario.DefaultHighway(mac, 4)
		cfg.Check = true
		r, err := scenario.RunHighway(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mac, err)
		}
		for _, v := range r.Violations {
			t.Errorf("%v: %v", mac, v.Error())
		}
	}
}

// TestJammingCleanUnderCheck checks the adversarial scenario: a jammer
// radio violates every politeness assumption a MAC makes, and the
// conservation audit must still balance each radio's books.
func TestJammingCleanUnderCheck(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MACTDMA, scenario.MAC80211} {
		cfg := scenario.DefaultJamming(mac)
		cfg.Check = true
		r, err := scenario.RunJamming(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mac, err)
		}
		for _, v := range r.Violations {
			t.Errorf("%v: %v", mac, v.Error())
		}
	}
}

// TestRunReportWallClockIndependent pins the satellite fix for the
// wall-clock leak: two runs of the same seed must render byte-identical
// telemetry reports, and no host-clock metric may appear in them (host
// cost lives on the result's WallSeconds field instead).
func TestRunReportWallClockIndependent(t *testing.T) {
	render := func() []byte {
		cfg := scenario.Trial1()
		cfg.Duration = 30
		cfg.Telemetry = true
		r := scenario.RunTrial(cfg)
		var buf bytes.Buffer
		if err := r.Telemetry.NDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different telemetry bytes")
	}
	if strings.Contains(string(a), "run/wall") {
		t.Fatal("host-clock metric leaked into the run report")
	}
	if !strings.Contains(string(a), "run/sim_seconds") {
		t.Fatal("simulated-time gauge missing from the run report")
	}
}
