package scenario

import (
	"fmt"
	"time"

	"vanetsim/internal/app"
	"vanetsim/internal/check"
	"vanetsim/internal/ebl"
	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// DenseHighwayConfig describes the scaling scenario: a multi-lane highway
// carrying hundreds to thousands of vehicles organised into per-lane
// platoons, under a heterogeneous traffic mix — periodic beacon datagrams
// from a configurable fraction of vehicles plus event-triggered safety
// streams from each platoon lead to its near followers once it brakes.
// It is the workload the channel's spatial-index culling exists for: at
// 25 m spacing a transmitter's carrier-sense disc holds a few dozen
// radios regardless of how many thousands share the road.
type DenseHighwayConfig struct {
	MAC        MACType
	Vehicles   int     // total vehicle count across all lanes
	Lanes      int     // parallel lanes along +x
	PlatoonLen int     // vehicles per platoon (last platoon per lane may be shorter)
	SpacingM   float64 // intra-platoon following distance
	GapM       float64 // extra gap between consecutive platoons in a lane
	LaneWidthM float64
	SpeedMS    float64
	DecelMS2   float64
	CarLengthM float64

	// SafetyDepth is how many of each platoon's nearest followers receive
	// the lead's brake-triggered safety stream; 0 or negative means every
	// follower. Followers beyond the depth get no indication and brake
	// only by luck — their collisions measure the coverage gap.
	SafetyDepth int
	PacketSize  int     // safety segment payload bytes
	RateBps     float64 // safety stream offered rate per flow

	// BeaconFraction of vehicles (deterministically every k-th by ID)
	// source periodic beacon datagrams to the vehicle directly ahead in
	// their lane (the lane's front vehicle beacons backward), with start
	// phases staggered by the run's forked RNG so the load spreads over
	// the beacon interval instead of arriving in lockstep.
	BeaconFraction float64
	BeaconSize     int
	BeaconRateBps  float64
	// BeaconJitter desynchronises the beacon sources' send intervals: each
	// source's interval is scaled by a deterministic per-vehicle factor in
	// [1-BeaconJitter, 1+BeaconJitter), drawn from the run seed's
	// dense/beacon stream. 0 (the default) keeps every source on the exact
	// nominal interval — and, drawing nothing extra, keeps the run
	// byte-identical to configs predating the knob. Must be in [0, 1).
	BeaconJitter float64

	TDMARateBps float64  // TDMA radio rate override (0 = package default)
	ReactionS   sim.Time // driver reaction after the indication arrives
	BrakeAt     sim.Time // when every platoon lead brakes
	Duration    sim.Time
	QueueCap    int
	Seed        uint64
	Telemetry   bool // collect a cross-layer metrics snapshot
	Check       bool // arm the runtime invariant checker (observation-only)
	Spans       bool // arm causal span tracing (observation-only)
	// DisableCulling runs the same workload on the channel's full-receiver
	// scan, for culled-vs-scan equivalence tests and scaling benchmarks.
	DisableCulling bool
	// Shards is the intra-run shard count for the channel's staged offer
	// pipeline (see StackConfig.Shards). Exact: any value, including 0/1
	// (serial), produces a byte-identical run.
	Shards int
}

// DefaultDenseHighway returns an n-vehicle four-lane run on the given MAC:
// 25 m platoons of ten, every follower covered by its lead's safety
// stream, and a quarter of the fleet beaconing at 10 Hz.
func DefaultDenseHighway(mac MACType, n int) DenseHighwayConfig {
	return DenseHighwayConfig{
		MAC:            mac,
		Vehicles:       n,
		Lanes:          4,
		PlatoonLen:     10,
		SpacingM:       25,
		GapM:           50,
		LaneWidthM:     3.7,
		SpeedMS:        ebl.MPHToMS(50),
		DecelMS2:       6,
		CarLengthM:     4.5,
		SafetyDepth:    0, // all followers
		PacketSize:     500,
		RateBps:        200e3,
		BeaconFraction: 0.25,
		BeaconSize:     200,
		BeaconRateBps:  1.6e3, // 200 B at 1 Hz
		TDMARateBps:    1e6,
		ReactionS:      0.7,
		BrakeAt:        5,
		Duration:       30,
		QueueCap:       50,
		Seed:           1,
	}
}

// DenseHighwayResult is a completed dense-highway run.
type DenseHighwayResult struct {
	Config DenseHighwayConfig
	World  *World
	// Indications holds one entry per follower of every platoon, in
	// vehicle-ID order. Followers outside the safety depth report
	// IndicationDelay = -1 (never notified).
	Indications []BrakeIndication
	Collisions  int // rear-end collisions, counted per lane ordering
	Platoons    int

	// Traffic-mix delivery totals.
	SafetySent, SafetyReceived int
	BeaconSent, BeaconReceived int
	// RxCollided sums frames delivered corrupted across every radio — the
	// medium-contention signal that grows with density.
	RxCollided int
	Channel    phy.ChannelStats

	// Telemetry is the metrics snapshot (nil unless Config.Telemetry).
	Telemetry *obs.Snapshot
	// Violations are the invariant violations of a checked run (nil unless
	// checking was armed; empty means clean).
	Violations []check.Violation
	// Spans is the causal per-packet event stream (nil unless Config.Spans).
	Spans []span.Event
	// WallSeconds is the host wall-clock cost of the run (host-dependent,
	// never feeds simulation output).
	WallSeconds float64
}

// densePlatoon is one platoon's wiring during a dense run.
type densePlatoon struct {
	platoon *mobility.Platoon
	lane    int
	comms   *ebl.PlatoonComms
}

// RunDenseHighway executes the dense multi-lane scaling scenario.
func RunDenseHighway(cfg DenseHighwayConfig) (*DenseHighwayResult, error) {
	switch {
	case cfg.Vehicles < 2:
		return nil, fmt.Errorf("scenario: dense highway needs at least two vehicles, got %d", cfg.Vehicles)
	case cfg.Lanes < 1:
		return nil, fmt.Errorf("scenario: dense highway needs at least one lane, got %d", cfg.Lanes)
	case cfg.PlatoonLen < 2:
		return nil, fmt.Errorf("scenario: dense highway needs platoons of at least two, got %d", cfg.PlatoonLen)
	case cfg.BeaconFraction < 0 || cfg.BeaconFraction > 1:
		return nil, fmt.Errorf("scenario: beacon fraction must be in [0,1], got %v", cfg.BeaconFraction)
	case cfg.BeaconJitter < 0 || cfg.BeaconJitter >= 1:
		return nil, fmt.Errorf("scenario: beacon jitter must be in [0,1), got %v", cfg.BeaconJitter)
	}
	stack := DefaultStackConfig(cfg.MAC)
	stack.QueueCap = cfg.QueueCap
	stack.DisableCulling = cfg.DisableCulling
	stack.Shards = cfg.Shards
	if cfg.TDMARateBps > 0 {
		stack.TDMA.DataRateBps = cfg.TDMARateBps
	}
	// Every flow in this scenario targets a direct neighbor (platoon
	// members sit well inside radio range), so discovery opens with the
	// RFC 3561 TTL_START=1 ring: the destination answers the first hop and
	// no one rebroadcasts. The default five-hop opening ring would blanket
	// the fleet — ~45 in-range rebroadcasters per flood — and at TDMA's
	// ~81 network-wide slots/s the floods alone would exceed the entire
	// slot budget of the run. The expanding ring still reaches farther
	// destinations if a scenario variant ever needs them.
	if stack.AODV.TTLStart > 1 {
		stack.AODV.TTLStart = 1
	}
	if cfg.MAC == MACTDMA {
		// AODV's default traversal estimate assumes a millisecond MAC. A
		// TDMA frame spans one slot per vehicle, so at dense fleet sizes a
		// single hop takes seconds; left alone, the ring-search timeout
		// (2·TTL·traversal) expires before any RREP can physically return
		// and routing never converges. Scale the discovery timers to the
		// frame, and the flood lifetime with them.
		frame := stack.TDMA.SlotDuration() * sim.Time(cfg.Vehicles)
		if frame > stack.AODV.NodeTraversalTime {
			stack.AODV.NodeTraversalTime = frame
		}
		if t := 3 * frame; t > stack.AODV.BcastIDSave {
			stack.AODV.BcastIDSave = t
		}
	}
	if cfg.Telemetry {
		stack.Obs = obs.NewRegistry()
	}
	if cfg.Check || check.ForceAll {
		stack.Check = check.New()
	}
	if cfg.Spans {
		stack.Spans = span.NewRecorder()
	}
	w := NewWorld(stack, cfg.Seed)
	defer w.Close()
	s := w.Sched
	wallStart := time.Now()

	// Lay the fleet out lane by lane, each lane a chain of platoons along
	// +x with the lead of the first platoon at the front. A remainder of
	// one vehicle folds into the lane's last platoon (platoons need two).
	perLane := cfg.Vehicles / cfg.Lanes
	extra := cfg.Vehicles % cfg.Lanes
	var (
		platoons   []*densePlatoon
		nodeOf     = make(map[packet.NodeID]*Node, cfg.Vehicles)
		vehicleOf  = make(map[packet.NodeID]*mobility.Vehicle, cfg.Vehicles)
		laneOrder  = make([][]*mobility.Vehicle, cfg.Lanes) // front to back
		nextID    packet.NodeID
		frontX    = float64(cfg.Vehicles) * (cfg.SpacingM + cfg.GapM) // room to brake at positive x
	)
	for lane := 0; lane < cfg.Lanes; lane++ {
		count := perLane
		if lane < extra {
			count++
		}
		y := float64(lane) * cfg.LaneWidthM
		backX := frontX
		for count >= 2 {
			size := cfg.PlatoonLen
			if count < 2*cfg.PlatoonLen && count > cfg.PlatoonLen {
				// Splitting would leave a sub-two remainder platoon only if
				// count-PlatoonLen < 2; fold such a remainder in instead.
				if count-cfg.PlatoonLen < 2 {
					size = count
				}
			} else if count <= cfg.PlatoonLen {
				size = count
			}
			p := mobility.NewPlatoon(s, nextID, size, geom.V(backX, y), geom.V(1, 0), cfg.SpacingM)
			nextID += packet.NodeID(size)
			backX -= float64(size)*cfg.SpacingM + cfg.GapM
			dp := &densePlatoon{platoon: p, lane: lane}
			platoons = append(platoons, dp)
			for _, v := range p.Vehicles() {
				nodeOf[v.ID()] = w.AddVehicleNode(v)
				vehicleOf[v.ID()] = v
				laneOrder[lane] = append(laneOrder[lane], v)
			}
			count -= size
		}
		if count == 1 {
			// A lane with a single leftover vehicle (tiny totals): park it
			// as a stackless obstacle is overkill — drop it from the run.
			return nil, fmt.Errorf("scenario: lane %d left with a single vehicle; pick Vehicles/Lanes >= 2", lane)
		}
	}

	// Cruise before wiring comms: a freshly built platoon is stopped, and
	// stopped means Communicating() — comms built first would start their
	// flows at t=0 and the orphan head-of-window segments would wedge
	// every TCP window until their multi-second queue residency ends.
	for _, dp := range platoons {
		dp.platoon.SetDest(geom.V(1e7, float64(dp.lane)*cfg.LaneWidthM), cfg.SpeedMS)
	}

	// Safety streams: each platoon runs the EBL lead-to-followers comms
	// stack — TCP flows that transmit only while the lead brakes. TCP's
	// window keeps the interface queues shallow enough for AODV discovery
	// to complete even when the TDMA frame stretches across hundreds of
	// slots; one-shot datagram streams at these fleet sizes just bury the
	// control traffic and nothing ever gets through. Flows beyond
	// SafetyDepth are muted right after every (re)start, so uncovered
	// followers stay dark.
	firstAt := make(map[packet.NodeID]sim.Time, cfg.Vehicles)
	for _, dp := range platoons {
		c := ebl.DefaultCommsConfig()
		c.PacketSize = cfg.PacketSize
		c.RateBps = cfg.RateBps
		c.Obs = stack.Obs
		c.Spans = stack.Spans
		if stack.Check != nil {
			c.Check = check.NewEnvelope(stack.Check, envelopeRate(stack))
		}
		nets := make([]*netlayer.Net, 0, dp.platoon.Len())
		for _, v := range dp.platoon.Vehicles() {
			nets = append(nets, nodeOf[v.ID()].Net)
		}
		dp.comms = ebl.NewPlatoonComms(s, dp.platoon, nets, w.PF, c, nil)
		depth := cfg.SafetyDepth
		if depth <= 0 || depth > len(dp.comms.Flows()) {
			depth = len(dp.comms.Flows())
		}
		if muted := dp.comms.Flows()[depth:]; len(muted) > 0 {
			// Subscribed after NewPlatoonComms's own sync hook, so this
			// runs after the comms stack has (re)started its flows.
			dp.platoon.Lead().Subscribe(func(mobility.Event) {
				for _, f := range muted {
					f.CBR.Stop()
					f.Sender.ClearBacklog()
				}
			})
		}
		dp.comms.OnDeliver(func(f *ebl.Flow, _ *packet.Packet, at sim.Time) {
			if at < cfg.BrakeAt {
				return
			}
			if _, seen := firstAt[f.Receiver]; seen {
				return
			}
			firstAt[f.Receiver] = at
			fv := vehicleOf[f.Receiver]
			s.Schedule(cfg.ReactionS, func() { fv.Brake(cfg.DecelMS2) })
		})
	}

	// Beacon mix: every k-th vehicle unicasts periodic beacons to the
	// vehicle directly ahead in its lane (the lane's front vehicle beacons
	// backward), with a deterministic RNG-staggered start phase. Adjacent
	// targets keep every destination one hop away and spread the
	// route-discovery answering load across the fleet — aiming everything
	// at the platoon leads starves their slots for the safety streams.
	var beaconSources []*app.UDPSource
	var beaconSinks []*app.UDPSink
	if cfg.BeaconFraction > 0 {
		stride := int(1/cfg.BeaconFraction + 0.5)
		if stride < 1 {
			stride = 1
		}
		rng := w.RNG.Fork("dense/beacon")
		beaconPort := 20000
		interval := sim.Time(float64(cfg.BeaconSize) * 8 / cfg.BeaconRateBps)
		for lane := range laneOrder {
			for i, v := range laneOrder[lane] {
				if int(v.ID())%stride != 0 {
					continue
				}
				var dst packet.NodeID
				if i > 0 {
					dst = laneOrder[lane][i-1].ID()
				} else {
					dst = laneOrder[lane][i+1].ID()
				}
				src := app.NewUDPSource(s, nodeOf[v.ID()].Net, w.PF, beaconPort, dst, beaconPort+1, packet.TypeCBR)
				sink := app.NewUDPSink(s, nodeOf[dst].Net, beaconPort+1)
				sink.SetSpans(stack.Spans)
				beaconPort += 2
				rate := cfg.BeaconRateBps
				if cfg.BeaconJitter > 0 {
					// Per-vehicle interval scale in [1-j, 1+j), as an extra
					// draw taken only when jitter is on so the zero-jitter
					// stream — and with it the pinned goldens — is untouched.
					rate = cfg.BeaconRateBps / (1 + cfg.BeaconJitter*(2*rng.Float64()-1))
				}
				gen := app.NewCBR(s, src, cfg.BeaconSize, rate)
				phase := sim.Time(rng.Float64() * float64(interval))
				s.At(phase, gen.Start)
				beaconSources = append(beaconSources, src)
				beaconSinks = append(beaconSinks, sink)
			}
		}
	}

	// Brake every lead simultaneously — the highway-wide emergency stop
	// whose notification latency the run measures.
	s.At(cfg.BrakeAt, func() {
		for _, dp := range platoons {
			dp.platoon.Lead().Brake(cfg.DecelMS2)
		}
	})
	// Epoch batching drains each equal-timestamp cohort in one structural
	// heap repair — byte-for-byte the execution RunUntil produces.
	s.RunEpochs(cfg.Duration)

	res := &DenseHighwayResult{Config: cfg, World: w, Platoons: len(platoons)}
	for _, dp := range platoons {
		vehicles := dp.platoon.Vehicles()
		for i := 1; i < len(vehicles); i++ {
			v := vehicles[i]
			ind := BrakeIndication{Vehicle: v.ID()}
			if at, ok := firstAt[v.ID()]; ok {
				ind.IndicationDelay = at - cfg.BrakeAt
				ind.DistanceBlind = cfg.SpeedMS * float64(ind.IndicationDelay+cfg.ReactionS)
			} else {
				ind.IndicationDelay = -1 // outside safety depth, or never reached
				ind.DistanceBlind = cfg.SpeedMS * float64(cfg.Duration-cfg.BrakeAt)
			}
			res.Indications = append(res.Indications, ind)
		}
	}
	// Gaps and collisions follow lane order, crossing platoon boundaries:
	// a platoon tail can be overrun by the next platoon's lead too.
	indOf := make(map[packet.NodeID]int, len(res.Indications))
	for j := range res.Indications {
		indOf[res.Indications[j].Vehicle] = j
	}
	for lane := range laneOrder {
		for i := 1; i < len(laneOrder[lane]); i++ {
			v, ahead := laneOrder[lane][i], laneOrder[lane][i-1]
			along := ahead.Position().Sub(v.Position()).Dot(geom.V(1, 0))
			gap := along - cfg.CarLengthM
			if gap <= 0 {
				res.Collisions++
			}
			if j, ok := indOf[v.ID()]; ok {
				res.Indications[j].FinalGap = gap
				res.Indications[j].Collided = gap <= 0
			}
		}
	}
	allComms := make([]*ebl.PlatoonComms, 0, len(platoons))
	for _, dp := range platoons {
		allComms = append(allComms, dp.comms)
		for _, f := range dp.comms.Flows() {
			res.SafetySent += f.Sender.Stats().SegmentsSent
			res.SafetyReceived += f.Delays.Len()
		}
	}
	for _, src := range beaconSources {
		res.BeaconSent += src.Sent()
	}
	for _, sink := range beaconSinks {
		res.BeaconReceived += sink.Received()
	}
	for _, n := range w.Nodes {
		res.RxCollided += n.Radio.Stats().RxCollided
	}
	res.Channel = w.Channel.Stats()
	res.Telemetry = w.HarvestTelemetry(allComms...)
	res.Violations = w.AuditInvariants(allComms...)
	res.Spans = stack.Spans.Events()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}
