package scenario_test

import (
	"testing"

	"vanetsim/internal/scenario"
)

func runJam(t *testing.T, mod func(*scenario.JammingConfig)) *scenario.JammingResult {
	t.Helper()
	cfg := scenario.DefaultJamming(scenario.MAC80211)
	mod(&cfg)
	r, err := scenario.RunJamming(cfg)
	if err != nil {
		t.Fatalf("RunJamming: %v", err)
	}
	return r
}

func TestNoJamBaselineDelivers(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MAC80211, scenario.MACTDMA} {
		r := runJam(t, func(c *scenario.JammingConfig) {
			c.MAC = mac
			c.Jam.StartAt = 1e9 // attack never starts
		})
		if r.OverallDelivery < 0.99 {
			t.Fatalf("%v baseline delivery = %.3f, want ~1", mac, r.OverallDelivery)
		}
		if r.Jammer.Bursts() != 0 {
			t.Fatal("jammer transmitted before its start time")
		}
	}
}

func TestCoChannelJammerKillsBothMACs(t *testing.T) {
	// During the attack window neither plain 802.11 (carrier sense defers
	// forever) nor plain TDMA (every slot collides) gets anything through;
	// overall delivery is just the pre-attack fraction of the run.
	preAttack := 10.0 / 60.0
	for _, mac := range []scenario.MACType{scenario.MAC80211, scenario.MACTDMA} {
		r := runJam(t, func(c *scenario.JammingConfig) { c.MAC = mac })
		if r.OverallDelivery > preAttack+0.05 {
			t.Fatalf("%v delivered %.3f under co-channel jamming, want ~%.3f (pre-attack only)",
				mac, r.OverallDelivery, preAttack)
		}
		if r.Jammer.Bursts() == 0 {
			t.Fatal("jammer never ran")
		}
	}
}

func TestFHSSSurvivesSingleChannelJammer(t *testing.T) {
	// The paper's §III.E security argument quantified: hopping over 8
	// channels, a single-channel jammer can spoil only ~1/8 of slots.
	r := runJam(t, func(c *scenario.JammingConfig) {
		c.MAC = scenario.MACTDMA
		c.HopChannels = 8
	})
	if r.OverallDelivery < 0.75 {
		t.Fatalf("FHSS delivery = %.3f under single-channel jamming, want > 0.75", r.OverallDelivery)
	}
	// And it clearly beats the non-hopping run.
	plain := runJam(t, func(c *scenario.JammingConfig) { c.MAC = scenario.MACTDMA })
	if r.OverallDelivery < 2*plain.OverallDelivery {
		t.Fatalf("FHSS (%.3f) should far exceed plain TDMA (%.3f) under attack",
			r.OverallDelivery, plain.OverallDelivery)
	}
}

func TestJammerStopRestoresDelivery(t *testing.T) {
	// Bounded attack window: delivery resumes after StopAt.
	r := runJam(t, func(c *scenario.JammingConfig) {
		c.MAC = scenario.MAC80211
		c.Jam.StartAt = 10
		c.Jam.StopAt = 20
	})
	// 50/60 of the run is clean: expect most datagrams through.
	if r.OverallDelivery < 0.75 {
		t.Fatalf("delivery = %.3f with a 10 s attack in a 60 s run", r.OverallDelivery)
	}
	if r.Jammer.Running() {
		t.Fatal("jammer still running after StopAt")
	}
}

func TestJammingPerFlowAccounting(t *testing.T) {
	r := runJam(t, func(c *scenario.JammingConfig) { c.MAC = scenario.MAC80211 })
	if len(r.Flows) != 2 {
		t.Fatalf("flows = %d", len(r.Flows))
	}
	for _, f := range r.Flows {
		if f.Received > f.Sent {
			t.Fatalf("flow to %v received more than sent: %d > %d", f.Receiver, f.Received, f.Sent)
		}
		if f.Delays.Len() != f.Received {
			t.Fatalf("delay series (%d) disagrees with received count (%d)", f.Delays.Len(), f.Received)
		}
	}
}

func TestJammingErrorsOnTinyPlatoon(t *testing.T) {
	cfg := scenario.DefaultJamming(scenario.MAC80211)
	cfg.Vehicles = 1
	if _, err := scenario.RunJamming(cfg); err == nil {
		t.Fatal("single-vehicle jamming run did not return an error")
	}
}
