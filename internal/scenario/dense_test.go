package scenario_test

import (
	"testing"

	"vanetsim/internal/scenario"
)

func denseTestConfig(mac scenario.MACType, n int) scenario.DenseHighwayConfig {
	cfg := scenario.DefaultDenseHighway(mac, n)
	cfg.Lanes = 3
	cfg.BrakeAt = 3
	cfg.Duration = 15
	return cfg
}

func mustDense(t *testing.T, cfg scenario.DenseHighwayConfig) *scenario.DenseHighwayResult {
	t.Helper()
	r, err := scenario.RunDenseHighway(cfg)
	if err != nil {
		t.Fatalf("RunDenseHighway: %v", err)
	}
	return r
}

func TestDenseHighwaySmoke(t *testing.T) {
	r := mustDense(t, denseTestConfig(scenario.MAC80211, 60))
	if r.Platoons == 0 {
		t.Fatal("no platoons built")
	}
	if want := 60 - r.Platoons; len(r.Indications) != want {
		t.Fatalf("indications = %d, want one per follower (%d)", len(r.Indications), want)
	}
	if r.SafetySent == 0 || r.SafetyReceived == 0 {
		t.Fatalf("safety traffic missing: sent %d received %d", r.SafetySent, r.SafetyReceived)
	}
	if r.BeaconSent == 0 || r.BeaconReceived == 0 {
		t.Fatalf("beacon traffic missing: sent %d received %d", r.BeaconSent, r.BeaconReceived)
	}
	if r.Channel.Offered < r.Channel.Delivered {
		t.Fatalf("channel offered %d < delivered %d", r.Channel.Offered, r.Channel.Delivered)
	}
	notified := 0
	for _, ind := range r.Indications {
		if ind.IndicationDelay >= 0 {
			notified++
		}
	}
	if notified == 0 {
		t.Fatal("no follower ever received a brake indication")
	}
}

// TestDenseHighwayCulledMatchesScan is the determinism contract end to end:
// the spatial index changes who is iterated, never what is delivered, so a
// culled run and a full-scan run of the same config are indistinguishable
// in every simulation-visible output.
func TestDenseHighwayCulledMatchesScan(t *testing.T) {
	cfg := denseTestConfig(scenario.MAC80211, 45)
	culled := mustDense(t, cfg)
	cfg.DisableCulling = true
	scan := mustDense(t, cfg)

	if !culled.World.Channel.CullingEnabled() {
		t.Fatal("culled run did not enable the spatial index")
	}
	if scan.World.Channel.CullingEnabled() {
		t.Fatal("scan run unexpectedly enabled the spatial index")
	}
	if culled.Channel != scan.Channel {
		t.Fatalf("channel stats diverged: culled %+v vs scan %+v", culled.Channel, scan.Channel)
	}
	if culled.Collisions != scan.Collisions || culled.RxCollided != scan.RxCollided {
		t.Fatalf("collision outcomes diverged: culled (%d, rx %d) vs scan (%d, rx %d)",
			culled.Collisions, culled.RxCollided, scan.Collisions, scan.RxCollided)
	}
	if culled.SafetySent != scan.SafetySent || culled.SafetyReceived != scan.SafetyReceived ||
		culled.BeaconSent != scan.BeaconSent || culled.BeaconReceived != scan.BeaconReceived {
		t.Fatalf("traffic totals diverged: culled %+v vs scan %+v",
			[4]int{culled.SafetySent, culled.SafetyReceived, culled.BeaconSent, culled.BeaconReceived},
			[4]int{scan.SafetySent, scan.SafetyReceived, scan.BeaconSent, scan.BeaconReceived})
	}
	if len(culled.Indications) != len(scan.Indications) {
		t.Fatalf("indication counts diverged: %d vs %d", len(culled.Indications), len(scan.Indications))
	}
	for i := range culled.Indications {
		if culled.Indications[i] != scan.Indications[i] {
			t.Fatalf("indication %d diverged: culled %+v vs scan %+v",
				i, culled.Indications[i], scan.Indications[i])
		}
	}
}

func TestDenseHighwayDeterminism(t *testing.T) {
	a := mustDense(t, denseTestConfig(scenario.MACTDMA, 24))
	b := mustDense(t, denseTestConfig(scenario.MACTDMA, 24))
	if a.Collisions != b.Collisions || a.Channel != b.Channel ||
		a.SafetySent != b.SafetySent || a.SafetyReceived != b.SafetyReceived {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Channel, b.Channel)
	}
	for i := range a.Indications {
		if a.Indications[i] != b.Indications[i] {
			t.Fatalf("same seed diverged at indication %d: %+v vs %+v",
				i, a.Indications[i], b.Indications[i])
		}
	}
}

func TestDenseHighwayCleanUnderCheck(t *testing.T) {
	cfg := denseTestConfig(scenario.MAC80211, 30)
	cfg.Check = true
	r := mustDense(t, cfg)
	for _, v := range r.Violations {
		t.Errorf("%v", v.Error())
	}
}

func TestDenseHighwayConfigErrors(t *testing.T) {
	cases := []func(*scenario.DenseHighwayConfig){
		func(c *scenario.DenseHighwayConfig) { c.Vehicles = 1 },
		func(c *scenario.DenseHighwayConfig) { c.Lanes = 0 },
		func(c *scenario.DenseHighwayConfig) { c.PlatoonLen = 1 },
		func(c *scenario.DenseHighwayConfig) { c.BeaconFraction = 1.5 },
		func(c *scenario.DenseHighwayConfig) { c.BeaconJitter = 1 },
		func(c *scenario.DenseHighwayConfig) { c.BeaconJitter = -0.1 },
		func(c *scenario.DenseHighwayConfig) { c.Vehicles = 4; c.Lanes = 3 }, // a lane gets 1 vehicle
	}
	for i, mutate := range cases {
		cfg := denseTestConfig(scenario.MAC80211, 30)
		mutate(&cfg)
		if _, err := scenario.RunDenseHighway(cfg); err == nil {
			t.Errorf("case %d: invalid config did not return an error", i)
		}
	}
}
