package scenario_test

import (
	"testing"

	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

func mustHighway(t *testing.T, cfg scenario.HighwayConfig) *scenario.HighwayResult {
	t.Helper()
	r, err := scenario.RunHighway(cfg)
	if err != nil {
		t.Fatalf("RunHighway: %v", err)
	}
	return r
}

func TestHighwayIndicationsOrdered(t *testing.T) {
	r := mustHighway(t, scenario.DefaultHighway(scenario.MAC80211, 6))
	if len(r.Indications) != 5 {
		t.Fatalf("indications = %d, want one per follower", len(r.Indications))
	}
	var prev sim.Time
	for _, ind := range r.Indications {
		if ind.IndicationDelay < 0 {
			t.Fatalf("vehicle %v never notified", ind.Vehicle)
		}
		if ind.IndicationDelay < prev {
			t.Fatalf("indication delays not monotone down the platoon: %v after %v",
				ind.IndicationDelay, prev)
		}
		prev = ind.IndicationDelay
		if ind.DistanceBlind <= 0 {
			t.Fatalf("blind distance = %v", ind.DistanceBlind)
		}
	}
}

func TestHighway80211SafeTDMANot(t *testing.T) {
	// The paper's conclusion, end-to-end: with 25 m gaps at 50 mph, the
	// sub-10-ms 802.11 indication leaves everyone room to stop, while the
	// TDMA slot wait puts the first follower into the lead's bumper.
	dcf := mustHighway(t, scenario.DefaultHighway(scenario.MAC80211, 6))
	if dcf.Collisions != 0 {
		t.Fatalf("802.11 run had %d collisions, want 0", dcf.Collisions)
	}
	tdma := mustHighway(t, scenario.DefaultHighway(scenario.MACTDMA, 6))
	if tdma.Collisions == 0 {
		t.Fatal("TDMA run had no collisions; the latency penalty should be unsafe here")
	}
	// And the indication latencies differ by orders of magnitude.
	if tdma.Indications[0].IndicationDelay < 10*dcf.Indications[0].IndicationDelay {
		t.Fatalf("latency contrast too weak: TDMA %v vs 802.11 %v",
			tdma.Indications[0].IndicationDelay, dcf.Indications[0].IndicationDelay)
	}
}

func TestHighwayAllStopped(t *testing.T) {
	r := mustHighway(t, scenario.DefaultHighway(scenario.MAC80211, 5))
	for _, v := range r.Platoon.Vehicles() {
		if v.Speed() != 0 {
			t.Fatalf("vehicle %v still moving at end of run", v.ID())
		}
	}
}

func TestHighwayWiderGapsSafeEverywhere(t *testing.T) {
	// With generous spacing even TDMA stops in time — the outcome is a
	// function of gap vs latency, not hardwired.
	cfg := scenario.DefaultHighway(scenario.MACTDMA, 5)
	cfg.SpacingM = 60
	r := mustHighway(t, cfg)
	if r.Collisions != 0 {
		t.Fatalf("60 m gaps should be safe even under TDMA; got %d collisions", r.Collisions)
	}
}

func TestHighwayDeterminism(t *testing.T) {
	a := mustHighway(t, scenario.DefaultHighway(scenario.MAC80211, 5))
	b := mustHighway(t, scenario.DefaultHighway(scenario.MAC80211, 5))
	for i := range a.Indications {
		if a.Indications[i] != b.Indications[i] {
			t.Fatalf("same seed diverged: %+v vs %+v", a.Indications[i], b.Indications[i])
		}
	}
}

func TestHighwayErrorsOnOneVehicle(t *testing.T) {
	cfg := scenario.DefaultHighway(scenario.MAC80211, 1)
	if _, err := scenario.RunHighway(cfg); err == nil {
		t.Fatal("single-vehicle highway did not return an error")
	}
}
