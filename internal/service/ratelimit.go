package service

import (
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter for the run
// endpoint. Each client (keyed by remote host) gets burst tokens that
// refill at rate per second; a request spends one token or is refused.
type limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	clients map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter; rate <= 0 disables limiting entirely.
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		clients: make(map[string]*tokenBucket),
	}
}

// allow reports whether the client may proceed, spending a token if so.
func (l *limiter) allow(client string) bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[client]
	if !ok {
		l.prune(now)
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// prune caps the client map: buckets idle long enough to have refilled
// completely carry no state worth keeping. Called with l.mu held, only
// on the new-client path, so steady traffic never pays for it.
func (l *limiter) prune(now time.Time) {
	if len(l.clients) < 4096 {
		return
	}
	for key, b := range l.clients {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, key)
		}
	}
}
