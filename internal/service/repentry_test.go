package service

import (
	"math"
	"strings"
	"testing"

	"vanetsim"
)

// TestRepEntryRoundTrip: the codec must reproduce every measurement
// bit-exactly — including a NaN first-packet delay, the explicit
// "never received" marker — or a rebuilt study would drift from a
// fresh one.
func TestRepEntryRoundTrip(t *testing.T) {
	for _, rep := range []vanetsim.Replication{
		{Seed: 7, AvgDelayS: 0.0024589403, SteadyS: 2.944354, FirstS: 0.237547, AvgTputMbps: 0.0538},
		{Seed: 16530426615209737554, AvgDelayS: 1e-9, SteadyS: 0, FirstS: math.NaN(), AvgTputMbps: 123.456},
	} {
		data := encodeRepEntry(rep)
		back, err := decodeRepEntry(rep.Seed, data)
		if err != nil {
			t.Fatalf("decode(%s): %v", data, err)
		}
		same := back.Seed == rep.Seed &&
			back.AvgDelayS == rep.AvgDelayS &&
			back.SteadyS == rep.SteadyS &&
			back.AvgTputMbps == rep.AvgTputMbps &&
			(back.FirstS == rep.FirstS || (math.IsNaN(back.FirstS) && math.IsNaN(rep.FirstS)))
		if !same {
			t.Fatalf("round trip changed the entry:\nin:  %+v\nout: %+v", rep, back)
		}
	}
}

// TestRepEntryDecodeStrict: any malformed entry must be an error (the
// study treats it as a cache miss), never a silently-wrong measurement.
func TestRepEntryDecodeStrict(t *testing.T) {
	good := string(encodeRepEntry(vanetsim.Replication{Seed: 7, AvgDelayS: 1, SteadyS: 2, FirstS: 3, AvgTputMbps: 4}))
	for name, data := range map[string]string{
		"wrong seed":    strings.Replace(good, "seed=7", "seed=8", 1),
		"missing seed":  strings.Replace(good, "seed=7\n", "", 1),
		"missing field": strings.Replace(good, "steady_s=2\n", "", 1),
		"unknown field": good + "p99_s=9\n",
		"repeated":      good + "seed=7\n",
		"not key=value": strings.Replace(good, "steady_s=2", "steady_s 2", 1),
		"bad float":     strings.Replace(good, "steady_s=2", "steady_s=two", 1),
		"bad seed":      strings.Replace(good, "seed=7", "seed=-7", 1),
	} {
		if _, err := decodeRepEntry(7, []byte(data)); err == nil {
			t.Errorf("%s: decode accepted:\n%s", name, data)
		}
	}
	if _, err := decodeRepEntry(7, []byte(good)); err != nil {
		t.Fatalf("good entry rejected: %v", err)
	}
}
