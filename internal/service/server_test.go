package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// trialBody is the small paper trial the endpoint tests submit: 40 s
// covers the t≈20 s communication start, so the tables carry data.
const trialBody = `{"kind":"trial","trial":{"trial":1,"duration_s":40,"check":true,"telemetry":true}}`

// newTestServer spins up a Server over a temp cache plus an httptest
// front end, torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postRun submits a run request and decodes its NDJSON event stream.
func postRun(t *testing.T, ts *httptest.Server, body string) []event {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/run = %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	return events
}

// getResult fetches a cached artifact.
func getResult(t *testing.T, ts *httptest.Server, hash string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s = %d", hash, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// scrapeMetric pulls one value from the /metrics Prometheus text.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v float64
		if n, _ := fmt.Sscanf(sc.Text(), name+" %g", &v); n == 1 {
			return v, true
		}
	}
	return 0, false
}

func TestRunMissThenHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// First submission: a miss that runs, streams progress, caches.
	events := postRun(t, ts, trialBody)
	if events[0].Event != "accepted" || events[0].Cached {
		t.Fatalf("first event = %+v, want uncached accepted", events[0])
	}
	hash := events[0].Hash
	if len(hash) != 64 {
		t.Fatalf("accepted hash = %q", hash)
	}
	progress := 0
	for _, e := range events {
		if e.Event == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no progress events in %+v", events)
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.Error != "" || last.Bytes == 0 || last.Hash != hash {
		t.Fatalf("final event = %+v", last)
	}

	data := getResult(t, ts, hash)
	if len(data) != last.Bytes {
		t.Fatalf("artifact is %d bytes, done event said %d", len(data), last.Bytes)
	}

	// Second submission: a hit, answered without running anything.
	events = postRun(t, ts, trialBody)
	if len(events) != 2 || !events[0].Cached || events[1].Event != "done" || !events[1].Cached {
		t.Fatalf("hit stream = %+v", events)
	}
	if events[1].Hash != hash || events[1].Bytes != len(data) {
		t.Fatalf("hit done = %+v, want hash %s with %d bytes", events[1], hash, len(data))
	}

	for name, want := range map[string]float64{
		"service_cache_hits_total":     1,
		"service_cache_misses_total":   1,
		"service_jobs_completed_total": 1,
		"service_jobs_failed_total":    0,
	} {
		if got, ok := scrapeMetric(t, ts, name); !ok || got != want {
			t.Errorf("%s = %g (present=%v), want %g", name, got, ok, want)
		}
	}
}

// TestFieldOrderHitsSameEntry submits the same configuration spelled
// differently (reordered fields, defaults explicit) and requires it to
// land on the first submission's cache entry.
func TestFieldOrderHitsSameEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	first := postRun(t, ts, trialBody)
	reordered := `{"trial":{"telemetry":true,"check":true,"duration_s":40,"seed":1,"trial":1},"kind":"trial"}`
	second := postRun(t, ts, reordered)
	if !second[0].Cached {
		t.Fatalf("reordered spelling missed the cache: %+v", second)
	}
	if second[0].Hash != first[0].Hash {
		t.Fatalf("hashes differ: %s vs %s", first[0].Hash, second[0].Hash)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"not json":       `{"kind":`,
		"unknown kind":   `{"kind":"jam"}`,
		"unknown field":  `{"kind":"trial","trial":{"trial":1,"warp":9}}`,
		"missing kind":   `{"trial":{"trial":1}}`,
		"bad trial":      `{"kind":"trial","trial":{"trial":7}}`,
		"preset overrid": `{"kind":"trial","trial":{"trial":1,"mac":"802.11"}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestRunEnforcesBudgets(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSimSeconds: 100, MaxVehicles: 100})
	for name, body := range map[string]string{
		"sim seconds": `{"kind":"trial","trial":{"trial":1,"duration_s":200}}`,
		"vehicles":    `{"kind":"dense","dense":{"vehicles":240,"duration_s":5}}`,
		"sweep total": `{"kind":"degradation","degradation":{"loss_probs":[0,0.1,0.2],"duration_s":50}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status = %d, want 422", name, resp.StatusCode)
		}
	}
	// Within budget still runs.
	if events := postRun(t, ts, `{"kind":"trial","trial":{"trial":1,"duration_s":40}}`); events[len(events)-1].Error != "" {
		t.Fatalf("in-budget run failed: %+v", events)
	}
}

func TestRateLimitPerClient(t *testing.T) {
	clock := time.Unix(1000, 0)
	_, ts := newTestServer(t, Config{
		RatePerSec: 1, RateBurst: 2,
		Now: func() time.Time { return clock },
	})
	// Burst of 2 passes; the third request inside the same instant is
	// refused. (httptest clients share one host, i.e. one bucket.)
	cheap := `{"kind":"trial","trial":{"trial":1,"duration_s":40}}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(cheap))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(cheap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request = %d, want 429", resp.StatusCode)
	}
	if got, ok := scrapeMetric(t, ts, "service_rate_limited_total"); !ok || got != 1 {
		t.Fatalf("service_rate_limited_total = %g (present=%v), want 1", got, ok)
	}
	// Advancing the clock refills the bucket.
	clock = clock.Add(time.Second)
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(cheap))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill request = %d, want 200", resp.StatusCode)
	}
}

func TestResultEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/results/not-a-hash")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed hash = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncached hash = %d, want 404", resp.StatusCode)
	}
}

func TestCoalescingAttachesToInflightJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Plant a fake in-flight job under the request's canonical hash;
	// the submission must attach to it instead of starting a run.
	hash := canonHash(t, trialBody)
	j := newJob()
	s.jobsMu.Lock()
	s.jobs[hash] = j
	s.jobsMu.Unlock()

	var events []event
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		events = postRun(t, ts, trialBody)
	}()
	// Feed the job only once the subscriber has attached (the coalesced
	// counter ticks before the handler starts streaming).
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.metricsMu.Lock()
		n := s.coalesced.Value()
		s.metricsMu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never attached to the planted job")
		}
		time.Sleep(time.Millisecond)
	}
	j.appendLine("synthetic progress 1")
	j.appendLine("synthetic progress 2")
	s.jobsMu.Lock()
	delete(s.jobs, hash)
	s.jobsMu.Unlock()
	j.finish(42, nil)
	wg.Wait()

	var lines []string
	for _, e := range events {
		if e.Event == "progress" {
			lines = append(lines, e.Line)
		}
	}
	if len(lines) != 2 || lines[0] != "synthetic progress 1" || lines[1] != "synthetic progress 2" {
		t.Fatalf("progress = %q", lines)
	}
	if last := events[len(events)-1]; last.Event != "done" || last.Bytes != 42 {
		t.Fatalf("final event = %+v", last)
	}
	if got, ok := scrapeMetric(t, ts, "service_coalesced_total"); !ok || got != 1 {
		t.Fatalf("service_coalesced_total = %g (present=%v), want 1", got, ok)
	}
	if got, _ := scrapeMetric(t, ts, "service_cache_misses_total"); got != 0 {
		t.Fatalf("coalesced request also counted as a miss (%g)", got)
	}
}

func TestDrainRefusesNewRunsAndFinishesAccepted(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Open the run stream by hand so the drain can begin after the job
	// is accepted but (very likely) before it finishes: the "accepted"
	// event is written strictly after the queue admits the job.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(trialBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event: %v", sc.Err())
	}
	var accepted event
	if err := json.Unmarshal(sc.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Event != "accepted" || accepted.Cached {
		t.Fatalf("first event = %+v", accepted)
	}
	s.BeginDrain()

	drained, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(trialBody))
	if err != nil {
		t.Fatal(err)
	}
	drained.Body.Close()
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining = %d, want 503", drained.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", health.StatusCode)
	}

	// The accepted job survives the drain: its stream ends in a clean
	// "done" and the artifact is cached once Close returns.
	var last event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if last.Event != "done" || last.Error != "" {
		t.Fatalf("drained job's stream ended with %+v", last)
	}
	s.Close()
	if !s.Cache().Contains(accepted.Hash) {
		t.Fatalf("drained job's artifact not cached")
	}
}

// TestReplicationRefinementReusesEntries is the per-replication cache
// proof, end to end over HTTP: a study at ±5% runs fresh; resubmitting
// the same base config at ±2% with a larger minimum must recall every
// previously run replication from its cache entry and simulate only
// the delta. Trial 1's TDMA schedule has no cross-seed variance at
// this scale, so the stopping points — and therefore the exact
// cached/fresh counts — are deterministic.
func TestReplicationRefinementReusesEntries(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	loose := `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.05,"min_reps":3,"max_reps":8}}`
	events := postRun(t, ts, loose)
	if events[0].Cached {
		t.Fatalf("first study claimed a hit on an empty cache")
	}
	if last := events[len(events)-1]; last.Event != "done" || last.Error != "" {
		t.Fatalf("first study ended badly: %+v", last)
	}
	first := string(getResult(t, ts, events[0].Hash))
	if !strings.Contains(first, "tolerance ±5% met after 3 replications") {
		t.Fatalf("loose artifact missing its verdict:\n%s", first)
	}
	// Minimum 3, batch 4: one batch of 4 fresh replications, all stored.
	for name, want := range map[string]float64{
		"service_rep_fresh_total":  4,
		"service_rep_cached_total": 0,
	} {
		if got, ok := scrapeMetric(t, ts, name); !ok || got != want {
			t.Fatalf("after loose study: %s = %g (present=%v), want %g", name, got, ok, want)
		}
	}

	// Tighter tolerance and a larger minimum: a different study hash
	// (artifact miss), but the same per-replication entry keys.
	tight := `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.02,"min_reps":6,"max_reps":8}}`
	events = postRun(t, ts, tight)
	if events[0].Cached {
		t.Fatalf("tightened study hit the artifact cache (hashes must differ)")
	}
	if last := events[len(events)-1]; last.Event != "done" || last.Error != "" {
		t.Fatalf("tightened study ended badly: %+v", last)
	}
	second := string(getResult(t, ts, events[0].Hash))
	if !strings.Contains(second, "tolerance ±2% met after 6 replications") {
		t.Fatalf("tight artifact missing its verdict:\n%s", second)
	}
	// The first batch of 4 comes entirely from cached entries; only the
	// second batch (replications 5–8) simulates.
	for name, want := range map[string]float64{
		"service_rep_cached_total": 4,
		"service_rep_fresh_total":  8,
	} {
		if got, ok := scrapeMetric(t, ts, name); !ok || got != want {
			t.Fatalf("after tight study: %s = %g (present=%v), want %g", name, got, ok, want)
		}
	}
	// The shared prefix must agree measurement for measurement: the
	// cached entries reproduced exactly what the fresh run measured.
	for i := 1; i <= 3; i++ {
		row := fmt.Sprintf("  %-3d", i)
		a, b := findLine(first, row), findLine(second, row)
		if a == "" || a != b {
			t.Fatalf("replication %d differs between studies:\n%q\n%q", i, a, b)
		}
	}
}

// findLine returns the first line of s with the given prefix.
func findLine(s, prefix string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRun(t, ts, trialBody)
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Service  string `json:"service"`
		Version  string `json:"version"`
		Draining bool   `json:"draining"`
		Cache    struct {
			Entries int `json:"entries"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Service != "vanetsimd" || status.Version == "" || status.Draining || status.Cache.Entries != 1 {
		t.Fatalf("status = %+v", status)
	}
}
