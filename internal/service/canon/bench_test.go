package canon

import (
	"crypto/sha256"
	"strings"
	"testing"
)

// sinkHash keeps the compiler from eliding the hash computation.
var sinkHash Hash

// BenchmarkCanonicalHash pins the cache-key hot path: encoding a
// resolved trial config into a reused buffer and hashing it must not
// allocate (BENCH_SERVICE.json holds it at 0 allocs/op). Every request
// the daemon serves — hit or miss — pays exactly this cost before the
// cache is consulted.
func BenchmarkCanonicalHash(b *testing.B) {
	req, err := Decode(strings.NewReader(
		`{"kind":"trial","trial":{"trial":1,"telemetry":true,"check":true,"faults":{"loss":0.05,"burst_loss":0.1,"outages":[{"node":1,"start_s":22,"duration_s":5}]}}}`))
	if err != nil {
		b.Fatal(err)
	}
	c, err := Canonicalize(req)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendBinary(buf[:0])
		sinkHash = sha256.Sum256(buf)
	}
}
