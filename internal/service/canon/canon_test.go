package canon

import (
	"strings"
	"testing"

	"vanetsim/internal/scenario"
)

func mustCanon(t *testing.T, body string) *Canonical {
	t.Helper()
	req, err := Decode(strings.NewReader(body))
	if err != nil {
		t.Fatalf("Decode(%s): %v", body, err)
	}
	c, err := Canonicalize(req)
	if err != nil {
		t.Fatalf("Canonicalize(%s): %v", body, err)
	}
	return c
}

func TestFieldOrderDoesNotChangeHash(t *testing.T) {
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":2,"seed":7,"duration_s":40}}`)
	b := mustCanon(t, `{"trial":{"duration_s":40,"seed":7,"trial":2},"kind":"trial"}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("field reordering changed the hash:\n%q\n%q", a.AppendBinary(nil), b.AppendBinary(nil))
	}
}

func TestDefaultElisionDoesNotChangeHash(t *testing.T) {
	// Trial 1's defaults spelled out must hash like trial 1 elided.
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":1}}`)
	b := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"duration_s":200,"seed":1}}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("explicit defaults changed the hash:\n%q\n%q", a.AppendBinary(nil), b.AppendBinary(nil))
	}
	if a.Trial.Duration != 200 || a.Trial.Seed != 1 {
		t.Fatalf("trial 1 defaults not applied: %+v", a.Trial)
	}
}

func TestDistinctConfigsHashDistinctly(t *testing.T) {
	seen := map[Hash]string{}
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":1}}`,
		`{"kind":"trial","trial":{"trial":2}}`,
		`{"kind":"trial","trial":{"trial":3}}`,
		`{"kind":"trial","trial":{"trial":1,"seed":2}}`,
		`{"kind":"trial","trial":{"trial":1,"duration_s":40}}`,
		`{"kind":"trial","trial":{"trial":1,"telemetry":true}}`,
		`{"kind":"trial","trial":{"trial":1,"check":true}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"loss":0.05}}}`,
		`{"kind":"trial","trial":{"trial":0}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"802.11","packet":500}}`,
		`{"kind":"dense","dense":{"vehicles":240}}`,
		`{"kind":"dense","dense":{"vehicles":240,"mac":"802.11"}}`,
		`{"kind":"dense","dense":{"vehicles":240,"beacon_fraction":0}}`,
		`{"kind":"degradation","degradation":{}}`,
		`{"kind":"degradation","degradation":{"mac":"802.11"}}`,
		`{"kind":"degradation","degradation":{"loss_probs":[0,0.5]}}`,
	} {
		h := mustCanon(t, body).Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %s and %s", prev, body)
		}
		seen[h] = body
	}
}

func TestExecutionKnobsExcluded(t *testing.T) {
	// The canonical form has no shard/culling field at all: grep the
	// encoding to prove execution knobs cannot split the cache.
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":1}}`,
		`{"kind":"dense","dense":{"vehicles":240}}`,
	} {
		enc := string(mustCanon(t, body).AppendBinary(nil))
		if strings.Contains(enc, "shard") || strings.Contains(enc, "cull") {
			t.Fatalf("canonical encoding leaks an execution knob:\n%s", enc)
		}
	}
}

func TestOutageOrderNormalized(t *testing.T) {
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":4,"start_s":10,"duration_s":3},{"node":1,"start_s":22,"duration_s":5}]}}}`)
	b := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":1,"start_s":22,"duration_s":5},{"node":4,"start_s":10,"duration_s":3}]}}}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("outage order changed the hash")
	}
}

func TestMACSpellingsNormalized(t *testing.T) {
	variants := []string{"802.11", "dcf", "80211", "DCF"}
	want := mustCanon(t, `{"kind":"dense","dense":{"vehicles":48,"mac":"802.11"}}`).Hash()
	for _, v := range variants {
		got := mustCanon(t, `{"kind":"dense","dense":{"vehicles":48,"mac":"`+v+`"}}`).Hash()
		if got != want {
			t.Fatalf("MAC spelling %q hashes differently", v)
		}
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	for _, body := range []string{
		`{}`,
		`{"kind":"warp"}`,
		`{"kind":"trial"}`,
		`{"kind":"trial","dense":{"vehicles":10}}`,
		`{"kind":"trial","trial":{"trial":4}}`,
		`{"kind":"trial","trial":{"trial":1,"mac":"802.11"}}`,
		`{"kind":"trial","trial":{"trial":1,"packet":500}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"token-ring"}}`,
		`{"kind":"trial","trial":{"trial":1,"duration_s":-5}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"loss":1.5}}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"burst_loss":-0.1}}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":-1,"start_s":0,"duration_s":1}]}}}`,
		`{"kind":"dense","dense":{"vehicles":1}}`,
		`{"kind":"dense","dense":{"vehicles":48,"beacon_jitter":1}}`,
		`{"kind":"dense","dense":{"vehicles":48,"beacon_fraction":2}}`,
		`{"kind":"dense","dense":{"vehicles":48,"platoon_len":1}}`,
		`{"kind":"degradation","degradation":{"loss_probs":[2]}}`,
		`{"kind":"degradation","degradation":{"burst_len":-1}}`,
	} {
		req, err := Decode(strings.NewReader(body))
		if err != nil {
			continue // decode-level rejection is fine too
		}
		if _, err := Canonicalize(req); err == nil {
			t.Errorf("Canonicalize(%s) accepted, want error", body)
		}
	}
}

func TestDecodeRejectsUnknownFieldsAndTrailer(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"kind":"trial","trial":{"trial":1,"warp":9}}`)); err == nil {
		t.Fatalf("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"kind":"trial","trial":{"trial":1}} trailing`)); err == nil {
		t.Fatalf("trailing data accepted")
	}
}

func TestNormalizedRequestRoundTrips(t *testing.T) {
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":3,"seed":9,"faults":{"burst_loss":0.1}}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"dcf"}}`,
		`{"kind":"dense","dense":{"vehicles":96,"beacon_fraction":0,"safety_depth":2}}`,
		`{"kind":"degradation","degradation":{"mac":"802.11","outage":{"node":1,"start_s":22,"duration_s":5}}}`,
	} {
		c := mustCanon(t, body)
		c2, err := Canonicalize(c.Request())
		if err != nil {
			t.Fatalf("normalized request of %s rejected: %v", body, err)
		}
		a, b := c.AppendBinary(nil), c2.AppendBinary(nil)
		if string(a) != string(b) {
			t.Fatalf("round trip changed the canonical form:\n%q\n%q", a, b)
		}
	}
}

func TestCost(t *testing.T) {
	c := mustCanon(t, `{"kind":"degradation","degradation":{"duration_s":10,"loss_probs":[0,0.1,0.2]}}`)
	cost := c.Cost()
	if cost.Runs != 3 || cost.SimSeconds != 30 {
		t.Fatalf("degradation cost = %+v, want 3 runs / 30 sim-seconds", cost)
	}
	d := mustCanon(t, `{"kind":"dense","dense":{"vehicles":240,"duration_s":8}}`).Cost()
	if d.Vehicles != 240 || d.SimSeconds != 8 || d.Runs != 1 {
		t.Fatalf("dense cost = %+v", d)
	}
}

func TestParseHash(t *testing.T) {
	h := mustCanon(t, `{"kind":"trial","trial":{"trial":1}}`).Hash()
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("ParseHash(%q) = %v, %v", h.String(), back, err)
	}
	if _, err := ParseHash("abc"); err == nil {
		t.Fatalf("short hash accepted")
	}
	if _, err := ParseHash(strings.Repeat("zz", 32)); err == nil {
		t.Fatalf("non-hex hash accepted")
	}
}

func TestTrialPresetMatchesScenario(t *testing.T) {
	c := mustCanon(t, `{"kind":"trial","trial":{"trial":2}}`)
	want := scenario.Trial2()
	if c.Trial.Name != want.Name || c.Trial.PacketSize != want.PacketSize || c.Trial.MAC != want.MAC {
		t.Fatalf("trial 2 canonical = %+v, want preset %+v", c.Trial, want)
	}
}
