package canon

import (
	"strings"
	"testing"

	"vanetsim/internal/scenario"
)

func mustCanon(t *testing.T, body string) *Canonical {
	t.Helper()
	req, err := Decode(strings.NewReader(body))
	if err != nil {
		t.Fatalf("Decode(%s): %v", body, err)
	}
	c, err := Canonicalize(req)
	if err != nil {
		t.Fatalf("Canonicalize(%s): %v", body, err)
	}
	return c
}

func TestFieldOrderDoesNotChangeHash(t *testing.T) {
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":2,"seed":7,"duration_s":40}}`)
	b := mustCanon(t, `{"trial":{"duration_s":40,"seed":7,"trial":2},"kind":"trial"}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("field reordering changed the hash:\n%q\n%q", a.AppendBinary(nil), b.AppendBinary(nil))
	}
}

func TestDefaultElisionDoesNotChangeHash(t *testing.T) {
	// Trial 1's defaults spelled out must hash like trial 1 elided.
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":1}}`)
	b := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"duration_s":200,"seed":1}}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("explicit defaults changed the hash:\n%q\n%q", a.AppendBinary(nil), b.AppendBinary(nil))
	}
	if a.Trial.Duration != 200 || a.Trial.Seed != 1 {
		t.Fatalf("trial 1 defaults not applied: %+v", a.Trial)
	}
}

func TestDistinctConfigsHashDistinctly(t *testing.T) {
	seen := map[Hash]string{}
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":1}}`,
		`{"kind":"trial","trial":{"trial":2}}`,
		`{"kind":"trial","trial":{"trial":3}}`,
		`{"kind":"trial","trial":{"trial":1,"seed":2}}`,
		`{"kind":"trial","trial":{"trial":1,"duration_s":40}}`,
		`{"kind":"trial","trial":{"trial":1,"telemetry":true}}`,
		`{"kind":"trial","trial":{"trial":1,"check":true}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"loss":0.05}}}`,
		`{"kind":"trial","trial":{"trial":0}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"802.11","packet":500}}`,
		`{"kind":"dense","dense":{"vehicles":240}}`,
		`{"kind":"dense","dense":{"vehicles":240,"mac":"802.11"}}`,
		`{"kind":"dense","dense":{"vehicles":240,"beacon_fraction":0}}`,
		`{"kind":"degradation","degradation":{}}`,
		`{"kind":"degradation","degradation":{"mac":"802.11"}}`,
		`{"kind":"degradation","degradation":{"loss_probs":[0,0.5]}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0.05}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0.02}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0.05,"max_reps":16}}`,
		`{"kind":"replication","replication":{"trial":{"trial":3,"duration_s":40},"tolerance":0.05}}`,
	} {
		h := mustCanon(t, body).Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %s and %s", prev, body)
		}
		seen[h] = body
	}
}

func TestExecutionKnobsExcluded(t *testing.T) {
	// The canonical form has no shard/culling field at all: grep the
	// encoding to prove execution knobs cannot split the cache.
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":1}}`,
		`{"kind":"dense","dense":{"vehicles":240}}`,
	} {
		enc := string(mustCanon(t, body).AppendBinary(nil))
		if strings.Contains(enc, "shard") || strings.Contains(enc, "cull") {
			t.Fatalf("canonical encoding leaks an execution knob:\n%s", enc)
		}
	}
}

func TestOutageOrderNormalized(t *testing.T) {
	a := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":4,"start_s":10,"duration_s":3},{"node":1,"start_s":22,"duration_s":5}]}}}`)
	b := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":1,"start_s":22,"duration_s":5},{"node":4,"start_s":10,"duration_s":3}]}}}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("outage order changed the hash")
	}
}

func TestMACSpellingsNormalized(t *testing.T) {
	variants := []string{"802.11", "dcf", "80211", "DCF"}
	want := mustCanon(t, `{"kind":"dense","dense":{"vehicles":48,"mac":"802.11"}}`).Hash()
	for _, v := range variants {
		got := mustCanon(t, `{"kind":"dense","dense":{"vehicles":48,"mac":"`+v+`"}}`).Hash()
		if got != want {
			t.Fatalf("MAC spelling %q hashes differently", v)
		}
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	for _, body := range []string{
		`{}`,
		`{"kind":"warp"}`,
		`{"kind":"trial"}`,
		`{"kind":"trial","dense":{"vehicles":10}}`,
		`{"kind":"trial","trial":{"trial":4}}`,
		`{"kind":"trial","trial":{"trial":1,"mac":"802.11"}}`,
		`{"kind":"trial","trial":{"trial":1,"packet":500}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"token-ring"}}`,
		`{"kind":"trial","trial":{"trial":1,"duration_s":-5}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"loss":1.5}}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"burst_loss":-0.1}}}`,
		`{"kind":"trial","trial":{"trial":1,"faults":{"outages":[{"node":-1,"start_s":0,"duration_s":1}]}}}`,
		`{"kind":"dense","dense":{"vehicles":1}}`,
		`{"kind":"dense","dense":{"vehicles":48,"beacon_jitter":1}}`,
		`{"kind":"dense","dense":{"vehicles":48,"beacon_fraction":2}}`,
		`{"kind":"dense","dense":{"vehicles":48,"platoon_len":1}}`,
		`{"kind":"degradation","degradation":{"loss_probs":[2]}}`,
		`{"kind":"degradation","degradation":{"burst_len":-1}}`,
		`{"kind":"replication"}`,
		`{"kind":"replication","replication":{"tolerance":0.05}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":5}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":1}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":-0.05}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0.05,"min_reps":1}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1},"tolerance":0.05,"min_reps":8,"max_reps":4}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1,"telemetry":true},"tolerance":0.05}}`,
		`{"kind":"replication","replication":{"trial":{"trial":4},"tolerance":0.05}}`,
	} {
		req, err := Decode(strings.NewReader(body))
		if err != nil {
			continue // decode-level rejection is fine too
		}
		if _, err := Canonicalize(req); err == nil {
			t.Errorf("Canonicalize(%s) accepted, want error", body)
		}
	}
}

func TestDecodeRejectsUnknownFieldsAndTrailer(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"kind":"trial","trial":{"trial":1,"warp":9}}`)); err == nil {
		t.Fatalf("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"kind":"trial","trial":{"trial":1}} trailing`)); err == nil {
		t.Fatalf("trailing data accepted")
	}
}

func TestNormalizedRequestRoundTrips(t *testing.T) {
	for _, body := range []string{
		`{"kind":"trial","trial":{"trial":3,"seed":9,"faults":{"burst_loss":0.1}}}`,
		`{"kind":"trial","trial":{"trial":0,"mac":"dcf"}}`,
		`{"kind":"dense","dense":{"vehicles":96,"beacon_fraction":0,"safety_depth":2}}`,
		`{"kind":"degradation","degradation":{"mac":"802.11","outage":{"node":1,"start_s":22,"duration_s":5}}}`,
		`{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.05,"min_reps":3,"max_reps":8}}`,
	} {
		c := mustCanon(t, body)
		c2, err := Canonicalize(c.Request())
		if err != nil {
			t.Fatalf("normalized request of %s rejected: %v", body, err)
		}
		a, b := c.AppendBinary(nil), c2.AppendBinary(nil)
		if string(a) != string(b) {
			t.Fatalf("round trip changed the canonical form:\n%q\n%q", a, b)
		}
	}
}

func TestCost(t *testing.T) {
	c := mustCanon(t, `{"kind":"degradation","degradation":{"duration_s":10,"loss_probs":[0,0.1,0.2]}}`)
	cost := c.Cost()
	if cost.Runs != 3 || cost.SimSeconds != 30 {
		t.Fatalf("degradation cost = %+v, want 3 runs / 30 sim-seconds", cost)
	}
	d := mustCanon(t, `{"kind":"dense","dense":{"vehicles":240,"duration_s":8}}`).Cost()
	if d.Vehicles != 240 || d.SimSeconds != 8 || d.Runs != 1 {
		t.Fatalf("dense cost = %+v", d)
	}
}

func TestReplicationDefaultsAndCost(t *testing.T) {
	c := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.05}}`)
	if c.Rep.MinReps != 4 || c.Rep.MaxReps != 64 {
		t.Fatalf("replication defaults = min %d / max %d, want 4 / 64", c.Rep.MinReps, c.Rep.MaxReps)
	}
	// Defaults spelled out must hash like defaults elided.
	explicit := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40,"seed":1},"tolerance":0.05,"min_reps":4,"max_reps":64}}`)
	if c.Hash() != explicit.Hash() {
		t.Fatalf("explicit replication defaults changed the hash:\n%q\n%q",
			c.AppendBinary(nil), explicit.AppendBinary(nil))
	}
	// Admission control budgets the worst case: the full MaxReps budget.
	cost := c.Cost()
	if cost.Runs != 64 || cost.SimSeconds != 40*64 {
		t.Fatalf("replication cost = %+v, want 64 runs / 2560 sim-seconds", cost)
	}
	if cost.Vehicles != 2*c.Rep.Base.PlatoonSize {
		t.Fatalf("replication cost vehicles = %d, want both platoons (%d)", cost.Vehicles, 2*c.Rep.Base.PlatoonSize)
	}
}

// TestRepEntryHash pins the per-replication cache-entry addressing: an
// entry key depends only on (base config, derived seed), never on the
// study parameters or observation-only knobs, so a tighter-tolerance
// resubmission addresses the very same entries.
func TestRepEntryHash(t *testing.T) {
	loose := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.05,"min_reps":3,"max_reps":8}}`)
	tight := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40},"tolerance":0.02,"min_reps":6,"max_reps":16}}`)
	checked := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":1,"duration_s":40,"check":true},"tolerance":0.05}}`)
	other := mustCanon(t, `{"kind":"replication","replication":{"trial":{"trial":3,"duration_s":40},"tolerance":0.05}}`)

	if loose.Hash() == tight.Hash() {
		t.Fatal("study hashes must differ across tolerances (distinct artifacts)")
	}
	if loose.RepEntryHash(7) != tight.RepEntryHash(7) {
		t.Fatal("entry hash depends on the study tolerance/budget — refinement cannot reuse entries")
	}
	if loose.RepEntryHash(7) != checked.RepEntryHash(7) {
		t.Fatal("entry hash depends on the check knob — checked and unchecked studies must share entries")
	}
	if loose.RepEntryHash(7) == loose.RepEntryHash(8) {
		t.Fatal("entry hash ignores the replication seed")
	}
	if loose.RepEntryHash(7) == other.RepEntryHash(7) {
		t.Fatal("entry hash ignores the base config")
	}
	if loose.RepEntryHash(7) == loose.Hash() {
		t.Fatal("entry hash collides with the study hash")
	}
	// The entry namespace must not collide with a plain trial request for
	// the same config and seed (their artifacts have different shapes).
	trial := mustCanon(t, `{"kind":"trial","trial":{"trial":1,"duration_s":40,"seed":7}}`)
	if loose.RepEntryHash(7) == trial.Hash() {
		t.Fatal("entry hash collides with the equivalent trial-request hash")
	}
}

func TestParseHash(t *testing.T) {
	h := mustCanon(t, `{"kind":"trial","trial":{"trial":1}}`).Hash()
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("ParseHash(%q) = %v, %v", h.String(), back, err)
	}
	if _, err := ParseHash("abc"); err == nil {
		t.Fatalf("short hash accepted")
	}
	if _, err := ParseHash(strings.Repeat("zz", 32)); err == nil {
		t.Fatalf("non-hex hash accepted")
	}
}

func TestTrialPresetMatchesScenario(t *testing.T) {
	c := mustCanon(t, `{"kind":"trial","trial":{"trial":2}}`)
	want := scenario.Trial2()
	if c.Trial.Name != want.Name || c.Trial.PacketSize != want.PacketSize || c.Trial.MAC != want.MAC {
		t.Fatalf("trial 2 canonical = %+v, want preset %+v", c.Trial, want)
	}
}
