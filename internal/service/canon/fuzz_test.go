package canon

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCanonicalRoundTrip is the canonicaliser's stability target: for
// any JSON body the decoder accepts, (1) re-encoding the normalized
// request and canonicalising again must reproduce the exact canonical
// bytes and hash, and (2) rewriting the body through a generic
// map[string]any — which re-orders every object's keys — must too. A
// failure means the cache key depends on the wire form instead of the
// semantic configuration, which would split (or worse, alias) cache
// entries.
func FuzzCanonicalRoundTrip(f *testing.F) {
	f.Add(`{"kind":"trial","trial":{"trial":1}}`)
	f.Add(`{"kind":"trial","trial":{"trial":0,"mac":"802.11","packet":500,"duration_s":40,"seed":7}}`)
	f.Add(`{"kind":"trial","trial":{"trial":2,"telemetry":true,"check":true}}`)
	f.Add(`{"kind":"trial","trial":{"trial":3,"faults":{"loss":0.05,"burst_loss":0.1,"burst_len":4,"shadow_db":6,"outages":[{"node":1,"start_s":22,"duration_s":5}]}}}`)
	f.Add(`{"kind":"dense","dense":{"vehicles":240,"lanes":4,"platoon_len":10,"beacon_fraction":0.25,"duration_s":8}}`)
	f.Add(`{"kind":"dense","dense":{"vehicles":48,"mac":"dcf","beacon_fraction":0,"safety_depth":2,"beacon_jitter":0.5}}`)
	f.Add(`{"kind":"degradation","degradation":{"mac":"tdma","loss_probs":[0,0.1,0.3],"burst_len":4,"duration_s":20}}`)
	f.Add(`{"kind":"degradation","degradation":{"outage":{"node":1,"start_s":22,"duration_s":5}}}`)
	f.Add(`{"kind":"replication","replication":{"trial":{"trial":3,"duration_s":40},"tolerance":0.05}}`)
	f.Add(`{"kind":"replication","replication":{"trial":{"trial":1,"seed":9,"check":true},"tolerance":0.02,"min_reps":3,"max_reps":8}}`)
	f.Add(`{"kind":"replication","replication":{"trial":{"trial":0,"mac":"802.11","packet":500,"faults":{"loss":0.1}},"tolerance":0.1,"max_reps":16}}`)

	f.Fuzz(func(t *testing.T, body string) {
		req, err := Decode(strings.NewReader(body))
		if err != nil {
			return
		}
		c1, err := Canonicalize(req)
		if err != nil {
			return
		}
		enc1 := c1.AppendBinary(nil)
		h1 := c1.Hash()

		// Round trip 1: the normalized request (defaults explicit,
		// spellings canonical) must reproduce the canonical form.
		norm, err := json.Marshal(c1.Request())
		if err != nil {
			t.Fatalf("marshal normalized request: %v", err)
		}
		req2, err := Decode(bytes.NewReader(norm))
		if err != nil {
			t.Fatalf("normalized request %s does not decode: %v", norm, err)
		}
		c2, err := Canonicalize(req2)
		if err != nil {
			t.Fatalf("normalized request %s does not canonicalise: %v", norm, err)
		}
		if !bytes.Equal(enc1, c2.AppendBinary(nil)) {
			t.Fatalf("normalized round trip changed the canonical form:\n%q\n%q", enc1, c2.AppendBinary(nil))
		}
		if c2.Hash() != h1 {
			t.Fatalf("normalized round trip changed the hash")
		}

		// Round trip 2: reorder every object's fields by bouncing the
		// original body through a generic map (Go maps marshal with
		// sorted keys). UseNumber keeps 64-bit seeds exact.
		dec := json.NewDecoder(strings.NewReader(body))
		dec.UseNumber()
		var generic any
		if err := dec.Decode(&generic); err != nil {
			return
		}
		reordered, err := json.Marshal(generic)
		if err != nil {
			return
		}
		req3, err := Decode(bytes.NewReader(reordered))
		if err != nil {
			// The generic bounce can legalise duplicate keys the strict
			// decoder tolerated; only equal-decodable bodies must agree.
			return
		}
		c3, err := Canonicalize(req3)
		if err != nil {
			return
		}
		if c3.Hash() != h1 {
			t.Fatalf("field reordering changed the hash:\noriginal:  %s\nreordered: %s", body, reordered)
		}
	})
}
