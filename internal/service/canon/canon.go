// Package canon canonicalises vanetsimd's JSON scenario requests and
// derives their content hash — the key of the service's result cache.
//
// Every run in this repository is a deterministic pure function of its
// configuration: the same canonical config always produces the same
// result bytes, at any worker count and any shard count. The cache key
// must therefore depend on exactly the semantic configuration and
// nothing else. Canonicalisation enforces that in three steps:
//
//  1. Decode the request JSON into typed structs, so field order in the
//     wire form is irrelevant.
//  2. Apply every default (preset trials, dense-highway defaults, the
//     paper's degradation grid) before hashing, so an elided field and
//     an explicitly spelled-out default hash identically.
//  3. Encode the fully resolved configuration in a fixed field order
//     (AppendBinary) and hash that — never the incoming JSON bytes.
//
// Execution-only knobs (shard count, spatial-culling toggles) are
// deliberately excluded from the canonical form: they are proven
// byte-identical on output, so they must not split the cache.
//
// The hash hot path is allocation-free: AppendBinary appends into a
// caller-reused buffer with strconv appenders, and sha256.Sum256 runs
// without heap allocation (BenchmarkCanonicalHash pins 0 allocs/op).
package canon

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"vanetsim/internal/fault"
	"vanetsim/internal/packet"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

// Version tags the canonical encoding and the artifact schema derived
// from it. Bumping it invalidates every cached result, which is exactly
// what a change to either the encoding or the report rendering needs.
const Version = "vanetsimd/v1"

// Request is the wire form of one simulation request. Exactly one of
// the kind-specific payloads must be set, matching Kind.
type Request struct {
	Kind        string              `json:"kind"` // "trial", "dense", "degradation" or "replication"
	Trial       *TrialRequest       `json:"trial,omitempty"`
	Dense       *DenseRequest       `json:"dense,omitempty"`
	Degradation *DegradationRequest `json:"degradation,omitempty"`
	Replication *ReplicationRequest `json:"replication,omitempty"`
}

// TrialRequest asks for one run of the paper's intersection scenario.
// Trial 1–3 select the paper's presets; 0 builds a custom configuration
// from MAC and Packet (which are only valid with Trial = 0, exactly as
// cmd/vanetsim's -mac/-packet flags pair with -trial 0).
type TrialRequest struct {
	Trial     int           `json:"trial"`
	MAC       string        `json:"mac,omitempty"`
	Packet    int           `json:"packet,omitempty"`
	DurationS float64       `json:"duration_s,omitempty"` // 0 = paper default
	Seed      uint64        `json:"seed,omitempty"`       // 0 = default
	Faults    *FaultRequest `json:"faults,omitempty"`
	Telemetry bool          `json:"telemetry,omitempty"` // include telemetry in the artifact
	Check     bool          `json:"check,omitempty"`     // arm the invariant checker
}

// FaultRequest is a trial's impairment recipe (the -loss/-ber/
// -burst-loss/-shadow/-outage flag family as JSON).
type FaultRequest struct {
	Loss      float64         `json:"loss,omitempty"`
	BER       float64         `json:"ber,omitempty"`
	BurstLoss float64         `json:"burst_loss,omitempty"`
	BurstLen  float64         `json:"burst_len,omitempty"` // 0 = default 4
	ShadowDB  float64         `json:"shadow_db,omitempty"`
	Outages   []OutageRequest `json:"outages,omitempty"`
}

// OutageRequest schedules one node's radio off the air.
type OutageRequest struct {
	Node      int     `json:"node"`
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
}

// DenseRequest asks for one run of the dense multi-lane highway
// scenario. Zero fields take DefaultDenseHighway's values;
// BeaconFraction is a pointer because an explicit 0 (no beacons) is
// semantically different from "use the 0.25 default".
type DenseRequest struct {
	Vehicles       int      `json:"vehicles"`
	MAC            string   `json:"mac,omitempty"`
	Lanes          int      `json:"lanes,omitempty"`
	PlatoonLen     int      `json:"platoon_len,omitempty"`
	BeaconFraction *float64 `json:"beacon_fraction,omitempty"`
	BeaconJitter   float64  `json:"beacon_jitter,omitempty"`
	SafetyDepth    int      `json:"safety_depth,omitempty"`
	DurationS      float64  `json:"duration_s,omitempty"`
	Seed           uint64   `json:"seed,omitempty"`
	Telemetry      bool     `json:"telemetry,omitempty"`
	Check          bool     `json:"check,omitempty"`
}

// ReplicationRequest asks for an adaptive-precision replication study:
// the base trial re-run under deterministically derived seeds until
// every headline metric's 95% CI relative half-width is at most
// Tolerance, or the MaxReps budget is exhausted ("give me this answer
// to ±2%"). The base trial's seed roots the derived seed stream; its
// telemetry flag must be off (a study has no single telemetry
// snapshot), while check applies to every replication.
type ReplicationRequest struct {
	Trial     *TrialRequest `json:"trial"`
	Tolerance float64       `json:"tolerance"`          // relative half-width, e.g. 0.05 = ±5%
	MinReps   int           `json:"min_reps,omitempty"` // 0 = 4; at least 2
	MaxReps   int           `json:"max_reps,omitempty"` // 0 = 64
}

// DegradationRequest asks for the fault-degradation sweep: the base
// trial on MAC swept across LossProbs (default: the paper grid).
type DegradationRequest struct {
	MAC       string         `json:"mac,omitempty"`
	LossProbs []float64      `json:"loss_probs,omitempty"`
	BurstLen  float64        `json:"burst_len,omitempty"` // <= 1 = independent losses
	ShadowDB  float64        `json:"shadow_db,omitempty"`
	Outage    *OutageRequest `json:"outage,omitempty"`
	DurationS float64        `json:"duration_s,omitempty"` // 0 = default 80
	Seed      uint64         `json:"seed,omitempty"`
	Check     bool           `json:"check,omitempty"`
}

// Decode reads one Request from r, rejecting unknown fields and
// trailing garbage.
func Decode(r io.Reader) (Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("canon: decode request: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("canon: trailing data after request object")
	}
	return req, nil
}

// Request kinds, as they appear on the wire and in Canonical.Kind.
const (
	KindTrial       = "trial"
	KindDense       = "dense"
	KindDegradation = "degradation"
	KindReplication = "replication"
)

// ReplicationSpec is the fully resolved adaptive-precision study: the
// base trial (whose Seed roots the derived seed stream) plus the
// stopping parameters. Batch size and worker count are execution-only
// (the study is byte-identical at any value) and deliberately absent.
type ReplicationSpec struct {
	Base      scenario.TrialConfig
	Tolerance float64
	MinReps   int
	MaxReps   int
}

// DegradationSpec is the fully resolved degradation sweep.
type DegradationSpec struct {
	Base      scenario.TrialConfig // Telemetry forced on (the sweep reads fault counters)
	LossProbs []float64
	BurstLen  float64
	ShadowDB  float64
	Outage    fault.Outage // Duration 0 = none
}

// Plan builds one sweep point's impairment recipe, mirroring the
// DegradationConfig.plan rules of the root package: BurstLen > 1
// selects Gilbert–Elliott bursts, otherwise independent Bernoulli
// losses; the outage (if any) applies verbatim at every point.
func (s DegradationSpec) Plan(lossProb float64) fault.Plan {
	p := fault.Plan{ShadowSigmaDB: s.ShadowDB}
	if s.BurstLen > 1 {
		p.Burst = fault.Burst(lossProb, s.BurstLen)
	} else {
		p.Bernoulli = fault.Bernoulli{LossProb: lossProb}
	}
	if s.Outage.Duration > 0 {
		p.Outages = []fault.Outage{s.Outage}
	}
	return p
}

// Canonical is a fully resolved request: defaults applied, fields
// validated, execution-only knobs zeroed. Exactly one of Trial, Dense,
// Deg is meaningful, selected by Kind.
type Canonical struct {
	Kind  string
	Trial scenario.TrialConfig
	Dense scenario.DenseHighwayConfig
	Deg   DegradationSpec
	Rep   ReplicationSpec

	req Request // normalized wire form (defaults made explicit)
}

// Cost is a request's admission-control weight, judged against the
// server's per-job budgets before the job is queued.
type Cost struct {
	SimSeconds float64 // total simulated seconds across all runs
	Vehicles   int     // largest single-run fleet size
	Runs       int     // independent simulation runs
}

// Canonicalize validates req, applies every default, and returns the
// canonical form. All errors are client errors (bad requests).
func Canonicalize(req Request) (*Canonical, error) {
	kinds := 0
	for _, set := range []bool{req.Trial != nil, req.Dense != nil, req.Degradation != nil, req.Replication != nil} {
		if set {
			kinds++
		}
	}
	if kinds > 1 {
		return nil, fmt.Errorf("canon: request sets %d kind payloads, want exactly one", kinds)
	}
	switch req.Kind {
	case "trial":
		if req.Trial == nil {
			return nil, fmt.Errorf(`canon: kind "trial" needs a "trial" payload`)
		}
		return canonTrial(*req.Trial)
	case "dense":
		if req.Dense == nil {
			return nil, fmt.Errorf(`canon: kind "dense" needs a "dense" payload`)
		}
		return canonDense(*req.Dense)
	case "degradation":
		if req.Degradation == nil {
			return nil, fmt.Errorf(`canon: kind "degradation" needs a "degradation" payload`)
		}
		return canonDegradation(*req.Degradation)
	case "replication":
		if req.Replication == nil {
			return nil, fmt.Errorf(`canon: kind "replication" needs a "replication" payload`)
		}
		return canonReplication(*req.Replication)
	case "":
		return nil, fmt.Errorf(`canon: missing "kind" (want "trial", "dense", "degradation" or "replication")`)
	default:
		return nil, fmt.Errorf("canon: unknown kind %q", req.Kind)
	}
}

// ParseMAC resolves the wire MAC names shared with the CLI flags; the
// empty string is TDMA (the paper's base MAC).
func ParseMAC(s string) (scenario.MACType, error) {
	switch strings.ToLower(s) {
	case "", "tdma":
		return scenario.MACTDMA, nil
	case "802.11", "dcf", "80211":
		return scenario.MAC80211, nil
	default:
		return 0, fmt.Errorf("canon: unknown MAC %q", s)
	}
}

// macName is the canonical wire spelling of a MAC type.
func macName(m scenario.MACType) string {
	if m == scenario.MAC80211 {
		return "802.11"
	}
	return "tdma"
}

// finite rejects NaN and infinities, which would make a run
// canonicalise but never behave.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("canon: %s = %v is not finite", name, v)
	}
	return nil
}

// duration resolves an optional duration override against a default,
// rejecting non-finite and negative values.
func duration(name string, overrideS float64, def sim.Time) (sim.Time, error) {
	if err := finite(name, overrideS); err != nil {
		return 0, err
	}
	if overrideS < 0 {
		return 0, fmt.Errorf("canon: %s = %v is negative", name, overrideS)
	}
	if overrideS == 0 {
		return def, nil
	}
	return sim.Time(overrideS), nil
}

// canonFaults resolves an optional impairment recipe. Outages are
// sorted by (node, start, duration): their order never changes the
// plan's semantics, so two spellings of the same plan hash identically.
func canonFaults(fr *FaultRequest) (fault.Plan, *FaultRequest, error) {
	if fr == nil {
		return fault.Plan{}, nil, nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"faults.loss", fr.Loss}, {"faults.ber", fr.BER},
		{"faults.burst_loss", fr.BurstLoss}, {"faults.burst_len", fr.BurstLen},
		{"faults.shadow_db", fr.ShadowDB},
	} {
		if err := finite(f.name, f.v); err != nil {
			return fault.Plan{}, nil, err
		}
	}
	norm := FaultRequest{
		Loss: fr.Loss, BER: fr.BER,
		BurstLoss: fr.BurstLoss, BurstLen: fr.BurstLen, ShadowDB: fr.ShadowDB,
	}
	if fr.BurstLoss > 0 && norm.BurstLen == 0 {
		norm.BurstLen = 4 // the -burst-len default
	}
	if norm.BurstLoss == 0 {
		norm.BurstLen = 0 // inert without a burst model; don't split the form
	}
	if fr.BurstLoss < 0 || fr.BurstLoss > 1 {
		return fault.Plan{}, nil, fmt.Errorf("canon: faults.burst_loss = %v outside [0, 1]", fr.BurstLoss)
	}
	plan := fault.Plan{
		Bernoulli:     fault.Bernoulli{LossProb: fr.Loss, BitErrorRate: fr.BER},
		ShadowSigmaDB: fr.ShadowDB,
	}
	if norm.BurstLoss > 0 {
		plan.Burst = fault.Burst(norm.BurstLoss, norm.BurstLen)
	}
	for i, o := range fr.Outages {
		fo, err := canonOutage(fmt.Sprintf("faults.outages[%d]", i), o)
		if err != nil {
			return fault.Plan{}, nil, err
		}
		plan.Outages = append(plan.Outages, fo)
	}
	sort.Slice(plan.Outages, func(i, j int) bool {
		a, b := plan.Outages[i], plan.Outages[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Duration < b.Duration
	})
	if err := plan.Validate(); err != nil {
		return fault.Plan{}, nil, fmt.Errorf("canon: %w", err)
	}
	for _, o := range plan.Outages {
		norm.Outages = append(norm.Outages, OutageRequest{
			Node: int(o.Node), StartS: float64(o.Start), DurationS: float64(o.Duration),
		})
	}
	if norm.Loss == 0 && norm.BER == 0 && norm.BurstLoss == 0 &&
		norm.ShadowDB == 0 && len(norm.Outages) == 0 {
		return plan, nil, nil
	}
	return plan, &norm, nil
}

func canonOutage(name string, o OutageRequest) (fault.Outage, error) {
	if err := finite(name+".start_s", o.StartS); err != nil {
		return fault.Outage{}, err
	}
	if err := finite(name+".duration_s", o.DurationS); err != nil {
		return fault.Outage{}, err
	}
	if o.Node < 0 || o.StartS < 0 || o.DurationS <= 0 {
		return fault.Outage{}, fmt.Errorf("canon: %s needs node >= 0, start_s >= 0, duration_s > 0", name)
	}
	return fault.Outage{
		Node:     packet.NodeID(o.Node),
		Start:    sim.Time(o.StartS),
		Duration: sim.Time(o.DurationS),
	}, nil
}

func canonTrial(tr TrialRequest) (*Canonical, error) {
	var cfg scenario.TrialConfig
	switch tr.Trial {
	case 1:
		cfg = scenario.Trial1()
	case 2:
		cfg = scenario.Trial2()
	case 3:
		cfg = scenario.Trial3()
	case 0:
		cfg = scenario.Trial1()
		cfg.Name = "custom"
		mac, err := ParseMAC(tr.MAC)
		if err != nil {
			return nil, err
		}
		cfg.MAC = mac
		if tr.Packet != 0 {
			if tr.Packet < 1 {
				return nil, fmt.Errorf("canon: packet = %d must be positive", tr.Packet)
			}
			cfg.PacketSize = tr.Packet
		}
	default:
		return nil, fmt.Errorf("canon: unknown trial %d (want 1..3, or 0 for custom)", tr.Trial)
	}
	if tr.Trial != 0 && (tr.MAC != "" || tr.Packet != 0) {
		return nil, fmt.Errorf("canon: mac/packet overrides need trial = 0 (trial %d fixes both)", tr.Trial)
	}
	d, err := duration("duration_s", tr.DurationS, cfg.Duration)
	if err != nil {
		return nil, err
	}
	cfg.Duration = d
	if tr.Seed != 0 {
		cfg.Seed = tr.Seed
	}
	plan, normFaults, err := canonFaults(tr.Faults)
	if err != nil {
		return nil, err
	}
	cfg.Faults = plan
	cfg.Telemetry = tr.Telemetry
	cfg.Check = tr.Check
	// Execution-only knobs stay zero: they never change result bytes.
	cfg.Shards = 0
	cfg.CollectTrace = false
	cfg.Spans = false
	cfg.AnimInterval = 0

	c := &Canonical{Kind: "trial", Trial: cfg}
	norm := TrialRequest{
		Trial:     tr.Trial,
		DurationS: float64(cfg.Duration),
		Seed:      cfg.Seed,
		Faults:    normFaults,
		Telemetry: cfg.Telemetry,
		Check:     cfg.Check,
	}
	if tr.Trial == 0 {
		norm.MAC = macName(cfg.MAC)
		norm.Packet = cfg.PacketSize
	}
	c.req = Request{Kind: "trial", Trial: &norm}
	return c, nil
}

func canonDense(dr DenseRequest) (*Canonical, error) {
	mac, err := ParseMAC(dr.MAC)
	if err != nil {
		return nil, err
	}
	if dr.Vehicles < 2 {
		return nil, fmt.Errorf("canon: dense.vehicles = %d needs at least 2", dr.Vehicles)
	}
	cfg := scenario.DefaultDenseHighway(mac, dr.Vehicles)
	if dr.Lanes != 0 {
		if dr.Lanes < 1 {
			return nil, fmt.Errorf("canon: dense.lanes = %d needs at least 1", dr.Lanes)
		}
		cfg.Lanes = dr.Lanes
	}
	if dr.PlatoonLen != 0 {
		if dr.PlatoonLen < 2 {
			return nil, fmt.Errorf("canon: dense.platoon_len = %d needs at least 2", dr.PlatoonLen)
		}
		cfg.PlatoonLen = dr.PlatoonLen
	}
	if dr.BeaconFraction != nil {
		if err := finite("dense.beacon_fraction", *dr.BeaconFraction); err != nil {
			return nil, err
		}
		if *dr.BeaconFraction < 0 || *dr.BeaconFraction > 1 {
			return nil, fmt.Errorf("canon: dense.beacon_fraction = %v outside [0, 1]", *dr.BeaconFraction)
		}
		cfg.BeaconFraction = *dr.BeaconFraction
	}
	if err := finite("dense.beacon_jitter", dr.BeaconJitter); err != nil {
		return nil, err
	}
	if dr.BeaconJitter < 0 || dr.BeaconJitter >= 1 {
		return nil, fmt.Errorf("canon: dense.beacon_jitter = %v outside [0, 1)", dr.BeaconJitter)
	}
	cfg.BeaconJitter = dr.BeaconJitter
	if dr.SafetyDepth < 0 {
		return nil, fmt.Errorf("canon: dense.safety_depth = %d is negative", dr.SafetyDepth)
	}
	cfg.SafetyDepth = dr.SafetyDepth
	d, err := duration("dense.duration_s", dr.DurationS, cfg.Duration)
	if err != nil {
		return nil, err
	}
	cfg.Duration = d
	if dr.Seed != 0 {
		cfg.Seed = dr.Seed
	}
	cfg.Telemetry = dr.Telemetry
	cfg.Check = dr.Check
	// Execution-only knobs stay zero (culling and sharding are proven
	// byte-identical on output, so they must not split the cache).
	cfg.DisableCulling = false
	cfg.Shards = 0
	cfg.Spans = false

	frac := cfg.BeaconFraction
	c := &Canonical{Kind: "dense", Dense: cfg}
	c.req = Request{Kind: "dense", Dense: &DenseRequest{
		Vehicles:       cfg.Vehicles,
		MAC:            macName(cfg.MAC),
		Lanes:          cfg.Lanes,
		PlatoonLen:     cfg.PlatoonLen,
		BeaconFraction: &frac,
		BeaconJitter:   cfg.BeaconJitter,
		SafetyDepth:    cfg.SafetyDepth,
		DurationS:      float64(cfg.Duration),
		Seed:           cfg.Seed,
		Telemetry:      cfg.Telemetry,
		Check:          cfg.Check,
	}}
	return c, nil
}

func canonDegradation(gr DegradationRequest) (*Canonical, error) {
	mac, err := ParseMAC(gr.MAC)
	if err != nil {
		return nil, err
	}
	base := scenario.Trial1()
	if mac == scenario.MAC80211 {
		base = scenario.Trial3()
	}
	d, err := duration("degradation.duration_s", gr.DurationS, 80)
	if err != nil {
		return nil, err
	}
	base.Duration = d
	if gr.Seed != 0 {
		base.Seed = gr.Seed
	}
	base.Telemetry = true // the sweep reads fault counters
	base.Check = gr.Check
	base.Shards = 0

	spec := DegradationSpec{Base: base, BurstLen: gr.BurstLen, ShadowDB: gr.ShadowDB}
	if err := finite("degradation.burst_len", gr.BurstLen); err != nil {
		return nil, err
	}
	if gr.BurstLen < 0 {
		return nil, fmt.Errorf("canon: degradation.burst_len = %v is negative", gr.BurstLen)
	}
	if err := finite("degradation.shadow_db", gr.ShadowDB); err != nil {
		return nil, err
	}
	if gr.ShadowDB < 0 {
		return nil, fmt.Errorf("canon: degradation.shadow_db = %v is negative", gr.ShadowDB)
	}
	if len(gr.LossProbs) == 0 {
		// The paper grid, as in DefaultDegradation.
		spec.LossProbs = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3}
	} else {
		for i, p := range gr.LossProbs {
			if err := finite(fmt.Sprintf("degradation.loss_probs[%d]", i), p); err != nil {
				return nil, err
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("canon: degradation.loss_probs[%d] = %v outside [0, 1]", i, p)
			}
		}
		spec.LossProbs = append([]float64(nil), gr.LossProbs...)
	}
	if gr.Outage != nil {
		spec.Outage, err = canonOutage("degradation.outage", *gr.Outage)
		if err != nil {
			return nil, err
		}
	}

	c := &Canonical{Kind: "degradation", Deg: spec}
	norm := DegradationRequest{
		MAC:       macName(mac),
		LossProbs: spec.LossProbs,
		BurstLen:  spec.BurstLen,
		ShadowDB:  spec.ShadowDB,
		DurationS: float64(base.Duration),
		Seed:      base.Seed,
		Check:     base.Check,
	}
	if spec.Outage.Duration > 0 {
		norm.Outage = &OutageRequest{
			Node:      int(spec.Outage.Node),
			StartS:    float64(spec.Outage.Start),
			DurationS: float64(spec.Outage.Duration),
		}
	}
	c.req = Request{Kind: "degradation", Degradation: &norm}
	return c, nil
}

func canonReplication(rr ReplicationRequest) (*Canonical, error) {
	if rr.Trial == nil {
		return nil, fmt.Errorf(`canon: replication needs a "trial" base config`)
	}
	if rr.Trial.Telemetry {
		return nil, fmt.Errorf("canon: replication.trial.telemetry is not supported (a study has no single telemetry snapshot)")
	}
	base, err := canonTrial(*rr.Trial)
	if err != nil {
		return nil, err
	}
	if err := finite("replication.tolerance", rr.Tolerance); err != nil {
		return nil, err
	}
	// The open interval catches the classic unit mistake of sending 5
	// for ±5% (tolerances are relative fractions, not percentages).
	if rr.Tolerance <= 0 || rr.Tolerance >= 1 {
		return nil, fmt.Errorf("canon: replication.tolerance = %v outside (0, 1) — a relative half-width fraction, e.g. 0.05 for ±5%%", rr.Tolerance)
	}
	minReps := rr.MinReps
	if minReps == 0 {
		minReps = 4
	}
	if minReps < 2 {
		return nil, fmt.Errorf("canon: replication.min_reps = %d needs at least 2 (no interval exists on fewer)", rr.MinReps)
	}
	maxReps := rr.MaxReps
	if maxReps == 0 {
		maxReps = 64
	}
	if maxReps < minReps {
		return nil, fmt.Errorf("canon: replication.max_reps = %d below min_reps %d", maxReps, minReps)
	}
	c := &Canonical{Kind: "replication", Rep: ReplicationSpec{
		Base:      base.Trial,
		Tolerance: rr.Tolerance,
		MinReps:   minReps,
		MaxReps:   maxReps,
	}}
	c.req = Request{Kind: "replication", Replication: &ReplicationRequest{
		Trial:     base.req.Trial,
		Tolerance: rr.Tolerance,
		MinReps:   minReps,
		MaxReps:   maxReps,
	}}
	return c, nil
}

// Request returns the normalized wire form: every default explicit,
// canonical MAC spellings, outages sorted. Canonicalising it again
// yields a byte-identical canonical encoding (the fuzz round trip).
func (c *Canonical) Request() Request { return c.req }

// Cost returns the request's admission-control weight.
func (c *Canonical) Cost() Cost {
	switch c.Kind {
	case "trial":
		return Cost{
			SimSeconds: float64(c.Trial.Duration),
			Vehicles:   2 * c.Trial.PlatoonSize,
			Runs:       1,
		}
	case "dense":
		return Cost{
			SimSeconds: float64(c.Dense.Duration),
			Vehicles:   c.Dense.Vehicles,
			Runs:       1,
		}
	case "replication":
		// Admission control must budget for the worst case: the full
		// replication budget, even though a converging study stops early.
		return Cost{
			SimSeconds: float64(c.Rep.Base.Duration) * float64(c.Rep.MaxReps),
			Vehicles:   2 * c.Rep.Base.PlatoonSize,
			Runs:       c.Rep.MaxReps,
		}
	default:
		n := len(c.Deg.LossProbs)
		return Cost{
			SimSeconds: float64(c.Deg.Base.Duration) * float64(n),
			Vehicles:   2 * c.Deg.Base.PlatoonSize,
			Runs:       n,
		}
	}
}

// Hash is a canonical request's content address.
type Hash [sha256.Size]byte

// String returns the lowercase hex form — the cache key and URL token.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses the lowercase-hex form back into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != hex.EncodedLen(len(h)) {
		return h, fmt.Errorf("canon: hash %q has length %d, want %d", s, len(s), hex.EncodedLen(len(h)))
	}
	if _, err := hex.Decode(h[:], []byte(s)); err != nil {
		return h, fmt.Errorf("canon: hash %q: %w", s, err)
	}
	return h, nil
}

// Hash returns the content address of the canonical form.
func (c *Canonical) Hash() Hash {
	var buf [1024]byte
	return sha256.Sum256(c.AppendBinary(buf[:0]))
}

// RepEntryHash returns the content address of ONE replication of a
// replication study: the study's base trial with its seed replaced by
// the derived per-replication seed. The entry key deliberately excludes
// the study parameters (tolerance, min/max reps) — a replication's
// measurements depend only on (config, seed) — so a tighter-tolerance
// resubmission addresses the very same entries and re-runs only the
// additional replications. Observation-only knobs (telemetry, check)
// are zeroed too: a checked study and an unchecked one measure the same
// numbers, so they share entries.
func (c *Canonical) RepEntryHash(seed uint64) Hash {
	t := c.Rep.Base
	t.Seed = seed
	t.Telemetry = false
	t.Check = false
	var buf [1024]byte
	dst := append(buf[:0], Version...)
	dst = append(dst, '\n')
	dst = appendStr(dst, "kind", "replication-entry")
	dst = appendTrial(dst, &t)
	return sha256.Sum256(dst)
}

// AppendBinary appends the canonical encoding to dst and returns the
// extended slice. The encoding is versioned key=value lines in a fixed
// field order; it allocates nothing beyond dst growth, so reusing dst
// across calls makes the hash hot path allocation-free.
func (c *Canonical) AppendBinary(dst []byte) []byte {
	dst = append(dst, Version...)
	dst = append(dst, '\n')
	dst = appendStr(dst, "kind", c.Kind)
	switch c.Kind {
	case "trial":
		dst = appendTrial(dst, &c.Trial)
	case "dense":
		dst = appendDense(dst, &c.Dense)
	case "replication":
		dst = appendTrial(dst, &c.Rep.Base)
		dst = appendFloat(dst, "rep.tolerance", c.Rep.Tolerance)
		dst = appendInt(dst, "rep.min_reps", c.Rep.MinReps)
		dst = appendInt(dst, "rep.max_reps", c.Rep.MaxReps)
	case "degradation":
		dst = appendStr(dst, "deg.mac", macName(c.Deg.Base.MAC))
		dst = appendTrial(dst, &c.Deg.Base)
		dst = append(dst, "deg.loss_probs="...)
		for i, p := range c.Deg.LossProbs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, p, 'g', -1, 64)
		}
		dst = append(dst, '\n')
		dst = appendFloat(dst, "deg.burst_len", c.Deg.BurstLen)
		dst = appendFloat(dst, "deg.shadow_db", c.Deg.ShadowDB)
		dst = appendOutage(dst, "deg.outage", c.Deg.Outage)
	}
	return dst
}

func appendTrial(dst []byte, t *scenario.TrialConfig) []byte {
	dst = appendStr(dst, "name", t.Name)
	dst = appendStr(dst, "mac", macName(t.MAC))
	dst = appendInt(dst, "packet", t.PacketSize)
	dst = appendFloat(dst, "speed_ms", t.SpeedMS)
	dst = appendFloat(dst, "spacing_m", t.SpacingM)
	dst = appendFloat(dst, "approach_m", t.ApproachM)
	dst = appendFloat(dst, "duration_s", float64(t.Duration))
	dst = appendInt(dst, "platoon", t.PlatoonSize)
	dst = appendFloat(dst, "depart_m", t.DepartDistM)
	dst = appendFloat(dst, "rate_bps", t.RateBps)
	dst = appendFloat(dst, "tdma_rate_bps", t.TDMARateBps)
	dst = appendInt(dst, "queue_cap", t.QueueCap)
	dst = appendInt(dst, "queue", int(t.Queue))
	dst = appendFloat(dst, "tcp_window", t.TCPWindow)
	dst = appendFloat(dst, "tput_bin_s", float64(t.ThroughputBn))
	dst = appendUint(dst, "seed", t.Seed)
	dst = appendBool(dst, "sinr", t.SINRPhy)
	dst = appendBool(dst, "telemetry", t.Telemetry)
	dst = appendBool(dst, "check", t.Check)
	dst = appendFloat(dst, "fault.loss", t.Faults.Bernoulli.LossProb)
	dst = appendFloat(dst, "fault.ber", t.Faults.Bernoulli.BitErrorRate)
	dst = appendFloat(dst, "fault.burst_pgb", t.Faults.Burst.PGoodBad)
	dst = appendFloat(dst, "fault.burst_pbg", t.Faults.Burst.PBadGood)
	dst = appendFloat(dst, "fault.burst_lg", t.Faults.Burst.LossGood)
	dst = appendFloat(dst, "fault.burst_lb", t.Faults.Burst.LossBad)
	dst = appendFloat(dst, "fault.shadow_db", t.Faults.ShadowSigmaDB)
	for _, o := range t.Faults.Outages {
		dst = appendOutage(dst, "fault.outage", o)
	}
	return dst
}

func appendDense(dst []byte, d *scenario.DenseHighwayConfig) []byte {
	dst = appendStr(dst, "mac", macName(d.MAC))
	dst = appendInt(dst, "vehicles", d.Vehicles)
	dst = appendInt(dst, "lanes", d.Lanes)
	dst = appendInt(dst, "platoon_len", d.PlatoonLen)
	dst = appendFloat(dst, "spacing_m", d.SpacingM)
	dst = appendFloat(dst, "gap_m", d.GapM)
	dst = appendFloat(dst, "lane_width_m", d.LaneWidthM)
	dst = appendFloat(dst, "speed_ms", d.SpeedMS)
	dst = appendFloat(dst, "decel_ms2", d.DecelMS2)
	dst = appendFloat(dst, "car_len_m", d.CarLengthM)
	dst = appendInt(dst, "safety_depth", d.SafetyDepth)
	dst = appendInt(dst, "packet", d.PacketSize)
	dst = appendFloat(dst, "rate_bps", d.RateBps)
	dst = appendFloat(dst, "beacon_fraction", d.BeaconFraction)
	dst = appendInt(dst, "beacon_size", d.BeaconSize)
	dst = appendFloat(dst, "beacon_rate_bps", d.BeaconRateBps)
	dst = appendFloat(dst, "beacon_jitter", d.BeaconJitter)
	dst = appendFloat(dst, "tdma_rate_bps", d.TDMARateBps)
	dst = appendFloat(dst, "reaction_s", float64(d.ReactionS))
	dst = appendFloat(dst, "brake_at_s", float64(d.BrakeAt))
	dst = appendFloat(dst, "duration_s", float64(d.Duration))
	dst = appendInt(dst, "queue_cap", d.QueueCap)
	dst = appendUint(dst, "seed", d.Seed)
	dst = appendBool(dst, "telemetry", d.Telemetry)
	dst = appendBool(dst, "check", d.Check)
	return dst
}

func appendOutage(dst []byte, key string, o fault.Outage) []byte {
	if o.Duration <= 0 {
		return dst
	}
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = strconv.AppendInt(dst, int64(o.Node), 10)
	dst = append(dst, ':')
	dst = strconv.AppendFloat(dst, float64(o.Start), 'g', -1, 64)
	dst = append(dst, ':')
	dst = strconv.AppendFloat(dst, float64(o.Duration), 'g', -1, 64)
	return append(dst, '\n')
}

func appendStr(dst []byte, key, v string) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = append(dst, v...)
	return append(dst, '\n')
}

func appendInt(dst []byte, key string, v int) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = strconv.AppendInt(dst, int64(v), 10)
	return append(dst, '\n')
}

func appendUint(dst []byte, key string, v uint64) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = strconv.AppendUint(dst, v, 10)
	return append(dst, '\n')
}

func appendFloat(dst []byte, key string, v float64) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	return append(dst, '\n')
}

func appendBool(dst []byte, key string, v bool) []byte {
	dst = append(dst, key...)
	dst = append(dst, '=')
	dst = strconv.AppendBool(dst, v)
	return append(dst, '\n')
}
