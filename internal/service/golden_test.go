package service

import (
	"bytes"
	"strings"
	"testing"

	"vanetsim/internal/service/canon"
)

// canonHash canonicalises a request body and returns its cache key.
func canonHash(t *testing.T, body string) string {
	t.Helper()
	req, err := canon.Decode(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	c, err := canon.Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	return c.Hash().String()
}

// TestGoldenCacheHitMatchesFreshRun is the service's correctness bar:
// for each headline scenario — the paper's three trials and a dense
// highway, all with the invariant checker armed — a cache hit must be
// byte-identical to a fresh run. The sequence run → evict → re-run
// proves it without trusting the cache: the second run rebuilds the
// artifact from scratch on a server that has already served (and
// evicted) it, and the bytes must not move. Run under -race in CI.
func TestGoldenCacheHitMatchesFreshRun(t *testing.T) {
	bodies := map[string]string{
		"trial1": `{"kind":"trial","trial":{"trial":1,"duration_s":40,"check":true,"telemetry":true}}`,
		"trial2": `{"kind":"trial","trial":{"trial":2,"duration_s":40,"check":true,"telemetry":true}}`,
		"trial3": `{"kind":"trial","trial":{"trial":3,"duration_s":40,"check":true,"telemetry":true}}`,
		"dense":  `{"kind":"dense","dense":{"vehicles":48,"duration_s":6,"check":true,"telemetry":true}}`,
		// The replication re-run additionally rebuilds the study from the
		// per-replication entries that survived the artifact's eviction —
		// proving a cached-entry rebuild is byte-identical too.
		"replication": `{"kind":"replication","replication":{"trial":{"trial":3,"duration_s":40,"check":true},"tolerance":0.2,"min_reps":3,"max_reps":6}}`,
	}
	for name, body := range bodies {
		body := body
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, ts := newTestServer(t, Config{})

			// Fresh run through the full service path.
			first := postRun(t, ts, body)
			if first[0].Cached {
				t.Fatalf("first submission claimed a hit on an empty cache")
			}
			hash := first[0].Hash
			if last := first[len(first)-1]; last.Event != "done" || last.Error != "" {
				t.Fatalf("first run ended badly: %+v", last)
			}
			fresh := getResult(t, ts, hash)

			// Hit: same bytes straight from the cache.
			second := postRun(t, ts, body)
			if !second[0].Cached {
				t.Fatalf("second submission missed the cache")
			}
			hit := getResult(t, ts, hash)
			if !bytes.Equal(fresh, hit) {
				t.Fatalf("cache hit served different bytes than the fresh run (%d vs %d bytes)", len(hit), len(fresh))
			}

			// Evict and re-run: the rebuilt artifact must be identical.
			if !s.Cache().Evict(hash) {
				t.Fatalf("evict reported %s absent", hash)
			}
			third := postRun(t, ts, body)
			if third[0].Cached {
				t.Fatalf("post-eviction submission claimed a hit")
			}
			if third[0].Hash != hash {
				t.Fatalf("hash moved across runs: %s vs %s", third[0].Hash, hash)
			}
			rebuilt := getResult(t, ts, hash)
			if !bytes.Equal(fresh, rebuilt) {
				t.Fatalf("re-run produced different bytes than the original run (%d vs %d bytes)", len(rebuilt), len(fresh))
			}
		})
	}
}

// TestArtifactExcludesHostData greps a checked, telemetry-bearing
// artifact for the host-dependent fields that must never enter a
// content-addressed result: wall-clock cost and the shard-layout
// profile gauges.
func TestArtifactExcludesHostData(t *testing.T) {
	req, err := canon.Decode(strings.NewReader(
		`{"kind":"dense","dense":{"vehicles":48,"duration_s":6,"check":true,"telemetry":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := canon.Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := BuildArtifact(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"wall", "sched/shard_"} {
		if strings.Contains(string(data), banned) {
			t.Errorf("artifact contains host-dependent %q", banned)
		}
	}
	if !strings.Contains(string(data), "invariant check: clean") {
		t.Errorf("checked artifact missing the checker verdict")
	}
}

// TestDegradationArtifact runs the smallest sweep end to end: the
// artifact must carry the table, the CSV block, and one progress line
// per grid point in grid order.
func TestDegradationArtifact(t *testing.T) {
	req, err := canon.Decode(strings.NewReader(
		`{"kind":"degradation","degradation":{"mac":"tdma","loss_probs":[0,0.3],"duration_s":30,"check":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := canon.Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	var progress []string
	data, err := BuildArtifact(c, func(l string) { progress = append(progress, l) })
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 2 ||
		!strings.HasPrefix(progress[0], "degradation point 1/2: loss=0.000") ||
		!strings.HasPrefix(progress[1], "degradation point 2/2: loss=0.300") {
		t.Fatalf("progress = %q", progress)
	}
	for _, want := range []string{"loss_prob,avg_delay_s", "margin_m", "invariant check: clean"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("degradation artifact missing %q", want)
		}
	}
}
