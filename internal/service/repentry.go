package service

import (
	"fmt"
	"strconv"
	"strings"

	"vanetsim"
)

// RepStore is the per-replication cache seam a replication study runs
// against: one entry per (base config, derived seed), keyed by
// canon.RepEntryHash. The artifact cache satisfies it directly — entry
// keys live in their own hash domain, so they can share the artifact
// namespace without collision. A nil RepStore simply re-runs every
// replication.
type RepStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
}

// encodeRepEntry renders one replication's measurements as
// deterministic key=value lines. FormatFloat 'g'/-1 round-trips every
// float64 exactly (including NaN for a never-received first packet), so
// a study rebuilt from cached entries is byte-identical to a fresh one.
func encodeRepEntry(rep vanetsim.Replication) []byte {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", rep.Seed)
	fmt.Fprintf(&b, "avg_delay_s=%s\n", g(rep.AvgDelayS))
	fmt.Fprintf(&b, "steady_s=%s\n", g(rep.SteadyS))
	fmt.Fprintf(&b, "first_s=%s\n", g(rep.FirstS))
	fmt.Fprintf(&b, "avg_tput_mbps=%s\n", g(rep.AvgTputMbps))
	return []byte(b.String())
}

// decodeRepEntry parses an entry back. It is strict — every field
// present exactly once, the recorded seed matching the requested one —
// because a corrupt or aliased entry silently substituting wrong
// measurements would poison a study's CIs; the caller treats any error
// as a cache miss and re-simulates.
func decodeRepEntry(seed uint64, data []byte) (vanetsim.Replication, error) {
	rep := vanetsim.Replication{Seed: seed}
	fields := map[string]*float64{
		"avg_delay_s":   &rep.AvgDelayS,
		"steady_s":      &rep.SteadyS,
		"first_s":       &rep.FirstS,
		"avg_tput_mbps": &rep.AvgTputMbps,
	}
	seen := make(map[string]bool, len(fields)+1)
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return rep, fmt.Errorf("service: replication entry line %q is not key=value", line)
		}
		if seen[key] {
			return rep, fmt.Errorf("service: replication entry repeats %q", key)
		}
		seen[key] = true
		if key == "seed" {
			got, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return rep, fmt.Errorf("service: replication entry seed %q: %v", val, err)
			}
			if got != seed {
				return rep, fmt.Errorf("service: replication entry records seed %d, want %d", got, seed)
			}
			continue
		}
		dst, known := fields[key]
		if !known {
			return rep, fmt.Errorf("service: replication entry has unknown field %q", key)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return rep, fmt.Errorf("service: replication entry %s=%q: %v", key, val, err)
		}
		*dst = v
	}
	if !seen["seed"] {
		return rep, fmt.Errorf("service: replication entry missing seed")
	}
	for key := range fields {
		if !seen[key] {
			return rep, fmt.Errorf("service: replication entry missing %s", key)
		}
	}
	return rep, nil
}
