// Package service is vanetsimd's HTTP layer: simulation-as-a-service
// over the deterministic run engine. Requests arrive as JSON scenario
// configs, are canonicalised and hashed (internal/service/canon), and
// are answered from a persistent content-addressed cache
// (internal/service/cache) when the identical configuration has run
// before. Misses execute on a bounded runner.Queue with per-job cost
// budgets and stream NDJSON progress over chunked HTTP while they run.
//
// The whole design leans on one property the repository has defended
// since its first PR: a run's output is a pure function of its
// canonical configuration — byte-identical at any worker count, shard
// count, or host. That is what makes a cache hit trustworthy: the
// bytes served from disk are exactly the bytes a fresh run would
// produce (the golden test in golden_test.go proves it end to end).
package service

import (
	"fmt"
	"strings"

	"vanetsim"
	"vanetsim/internal/runner"
	"vanetsim/internal/service/canon"
)

// BuildArtifact executes the canonical configuration and renders its
// deterministic result artifact. progress (optional) receives
// human-readable lines as the run advances; the lines are themselves
// deterministic — no wall-clock, no host data — so a streamed
// transcript is reproducible too.
//
// The artifact embeds the canonical encoding as a header, making every
// cached file self-describing: the exact resolved configuration that
// produced it travels with the bytes.
func BuildArtifact(c *canon.Canonical, progress func(string)) ([]byte, error) {
	return BuildArtifactCached(c, nil, progress)
}

// BuildArtifactCached is BuildArtifact with a per-replication entry
// store. Replication studies look each derived seed up in reps before
// simulating and store what they run, so a resubmission at a tighter
// tolerance re-runs only the additional replications. The entries are
// keyed by canon.RepEntryHash — (base config, seed) only — and the
// rebuilt study is byte-identical to a fresh one, so serving from
// entries is as trustworthy as serving the cached artifact itself. A
// nil store disables entry reuse; other kinds ignore it.
func BuildArtifactCached(c *canon.Canonical, reps RepStore, progress func(string)) ([]byte, error) {
	if progress == nil {
		progress = func(string) {}
	}
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSuffix(string(c.AppendBinary(nil)), "\n"), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	b.WriteString("\n")

	var err error
	switch c.Kind {
	case canon.KindTrial:
		err = trialArtifact(&b, c, progress)
	case canon.KindDense:
		err = denseArtifact(&b, c, progress)
	case canon.KindDegradation:
		err = degradationArtifact(&b, c, progress)
	case canon.KindReplication:
		err = replicationArtifact(&b, c, reps, progress)
	default:
		err = fmt.Errorf("service: unknown kind %q", c.Kind)
	}
	if err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// trialArtifact runs one paper trial and renders the delay,
// throughput, and stopping-distance tables the CLI prints, plus the
// checker verdict and (when telemetry is armed) the metrics snapshot.
func trialArtifact(b *strings.Builder, c *canon.Canonical, progress func(string)) error {
	cfg := c.Trial
	progress(fmt.Sprintf("run %s: %v MAC, %d B packets, %.0f s simulated",
		cfg.Name, cfg.MAC, cfg.PacketSize, float64(cfg.Duration)))
	r := vanetsim.RunTrial(cfg)
	progress(fmt.Sprintf("run %s: complete", cfg.Name))

	b.WriteString(vanetsim.FormatDelayTable(vanetsim.DelayTable(r)))
	b.WriteString("\n")
	b.WriteString(vanetsim.FormatThroughputTable(vanetsim.ThroughputTable(r)))
	b.WriteString("\n")
	b.WriteString(vanetsim.FormatStoppingTable(vanetsim.StoppingTable(r)))
	writeCheckVerdict(b, cfg.Check, r.Violations)
	writeTelemetry(b, r.Telemetry)
	return nil
}

// denseArtifact runs the dense multi-lane highway and renders the
// cmd/vanetsim summary minus its host wall-clock line.
func denseArtifact(b *strings.Builder, c *canon.Canonical, progress func(string)) error {
	cfg := c.Dense
	progress(fmt.Sprintf("dense highway: %v MAC, %d vehicles, %d lanes, %.0f s simulated",
		cfg.MAC, cfg.Vehicles, cfg.Lanes, float64(cfg.Duration)))
	r, err := vanetsim.RunDenseHighway(cfg)
	if err != nil {
		return err
	}
	progress("dense highway: complete")

	fmt.Fprintf(b, "dense highway — %v MAC, %d vehicles, %d lanes, %d platoons, %.0f s simulated\n",
		cfg.MAC, cfg.Vehicles, cfg.Lanes, r.Platoons, float64(cfg.Duration))
	notified, worst := 0, vanetsim.Seconds(0)
	for _, ind := range r.Indications {
		if ind.IndicationDelay >= 0 {
			notified++
			if ind.IndicationDelay > worst {
				worst = ind.IndicationDelay
			}
		}
	}
	fmt.Fprintf(b, "brake indications: %d/%d followers notified, worst delay %.4f s\n",
		notified, len(r.Indications), float64(worst))
	fmt.Fprintf(b, "collisions: %d rear-end, %d corrupted frames (MAC contention)\n", r.Collisions, r.RxCollided)
	pct := func(recv, sent int) float64 {
		if sent == 0 {
			return 0
		}
		return 100 * float64(recv) / float64(sent)
	}
	fmt.Fprintf(b, "safety traffic: %d sent, %d delivered (%.1f%%)\n",
		r.SafetySent, r.SafetyReceived, pct(r.SafetyReceived, r.SafetySent))
	fmt.Fprintf(b, "beacon traffic: %d sent, %d delivered (%.1f%%)\n",
		r.BeaconSent, r.BeaconReceived, pct(r.BeaconReceived, r.BeaconSent))
	fmt.Fprintf(b, "channel: %d arrivals offered, %d delivered, %d frequency-filtered\n",
		r.Channel.Offered, r.Channel.Delivered, r.Channel.FilteredFreq)
	writeCheckVerdict(b, cfg.Check, r.Violations)
	writeTelemetry(b, r.Telemetry)
	return nil
}

// replicationArtifact runs the adaptive-precision study and renders
// its verdict, the achieved bound per stopping metric, and every
// replication's measurements. The rendered study depends only on the
// canonical spec — batch overshoot and cache hit/miss mix never appear
// — so the artifact stays content-addressable even though two
// executions of it may simulate very different amounts of work.
func replicationArtifact(b *strings.Builder, c *canon.Canonical, reps RepStore, progress func(string)) error {
	spec := c.Rep
	cfg := spec.Base
	progress(fmt.Sprintf("replication study %s: %v MAC, tolerance ±%g%%, %d–%d replications",
		cfg.Name, cfg.MAC, 100*spec.Tolerance, spec.MinReps, spec.MaxReps))
	opts := vanetsim.ToleranceOptions{
		MinReps:  spec.MinReps,
		MaxReps:  spec.MaxReps,
		Progress: progress,
	}
	if reps != nil {
		opts.Lookup = func(seed uint64) (vanetsim.Replication, bool) {
			data, ok := reps.Get(c.RepEntryHash(seed).String())
			if !ok {
				return vanetsim.Replication{}, false
			}
			rep, err := decodeRepEntry(seed, data)
			if err != nil {
				// A corrupt entry is a miss, not a failure: re-simulate.
				return vanetsim.Replication{}, false
			}
			return rep, true
		}
		opts.Store = func(rep vanetsim.Replication) {
			// Best-effort: a full or failing entry store must not fail
			// the study, it only costs a future re-run.
			reps.Put(c.RepEntryHash(rep.Seed).String(), encodeRepEntry(rep))
		}
	}
	st, err := vanetsim.RunReplicationsTolerance(cfg, spec.Tolerance, opts)
	if err != nil {
		return err
	}
	verdict := "tolerance met"
	if !st.Met {
		verdict = "budget exhausted"
	}
	progress(fmt.Sprintf("replication study %s: %s after %d replications", cfg.Name, verdict, len(st.Runs)))

	b.WriteString(st.String())
	b.WriteString("\nper-replication measurements:\n")
	fmt.Fprintf(b, "  %-3s %-20s %12s %12s %12s %14s\n",
		"rep", "seed", "avg_delay_s", "steady_s", "first_s", "avg_tput_mbps")
	for i, rep := range st.Runs {
		fmt.Fprintf(b, "  %-3d %-20d %12.6f %12.6f %12.6f %14.6f\n",
			i+1, rep.Seed, rep.AvgDelayS, rep.SteadyS, rep.FirstS, rep.AvgTputMbps)
	}
	if cfg.Check {
		// runReplication fails the whole study on any violation, so
		// reaching here means every replication checked clean.
		b.WriteString("\ninvariant check: clean in every replication\n")
	}
	return nil
}

// degradationArtifact sweeps the loss grid point by point (streaming
// one progress line per point, in grid order) and renders the
// degradation table plus its CSV form.
func degradationArtifact(b *strings.Builder, c *canon.Canonical, progress func(string)) error {
	spec := c.Deg
	points := make([]vanetsim.DegradationPoint, len(spec.LossProbs))
	err := runner.Each(runner.Pool{}, len(spec.LossProbs),
		func(i int) (*vanetsim.TrialResult, error) {
			cfg := spec.Base
			cfg.Faults = spec.Plan(spec.LossProbs[i])
			return vanetsim.RunTrial(cfg), nil
		},
		func(i int, r *vanetsim.TrialResult) error {
			points[i] = vanetsim.DegradationPointFrom(spec.Base, spec.LossProbs[i], r)
			progress(fmt.Sprintf("degradation point %d/%d: loss=%.3f margin=%.2fm safe=%v",
				i+1, len(spec.LossProbs), points[i].LossProb, points[i].SafetyMarginM, points[i].Safe))
			return nil
		})
	if err != nil {
		return err
	}
	b.WriteString(vanetsim.FormatDegradationTable(points))
	b.WriteString("\n")
	b.WriteString(vanetsim.DegradationCSV(points))
	var violations []string
	for _, p := range points {
		if p.Violations > 0 {
			violations = append(violations, fmt.Sprintf("loss=%.3f: %d", p.LossProb, p.Violations))
		}
	}
	if spec.Base.Check {
		b.WriteString("\n")
		if len(violations) == 0 {
			b.WriteString("invariant check: clean\n")
		} else {
			fmt.Fprintf(b, "invariant check: violations at %s\n", strings.Join(violations, ", "))
		}
	}
	return nil
}

// writeCheckVerdict appends the invariant checker's verdict when the
// run had checks armed. Violations are listed, not hidden — a cached
// artifact must carry the same bad news a fresh run would print.
func writeCheckVerdict(b *strings.Builder, checked bool, violations []vanetsim.CheckViolation) {
	if !checked {
		return
	}
	b.WriteString("\n")
	if len(violations) == 0 {
		b.WriteString("invariant check: clean\n")
		return
	}
	fmt.Fprintf(b, "invariant check: %d violation(s)\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(b, "  %s\n", v.Error())
	}
}

// writeTelemetry appends the run's metrics snapshot with the
// shard-pipeline profile gauges stripped: sched/shard_* depends on the
// executing host's shard layout, and nothing host-dependent may enter
// a content-addressed artifact (cache hits must be byte-identical to
// fresh runs at any -shards).
func writeTelemetry(b *strings.Builder, snap *vanetsim.Telemetry) {
	if snap == nil {
		return
	}
	b.WriteString("\nTelemetry:\n")
	for _, line := range strings.Split(strings.TrimSuffix(snap.FormatText(), "\n"), "\n") {
		if strings.Contains(line, "sched/shard_") {
			continue
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
}
