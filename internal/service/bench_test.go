package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchServer builds a server with one small artifact already cached,
// for exercising the hit path without ever simulating.
func benchServer(b *testing.B) (*Server, *httptest.Server, string) {
	b.Helper()
	s, err := New(Config{CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"kind":"trial","trial":{"trial":1,"duration_s":40}}`))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	keys := s.Cache().Keys()
	if len(keys) != 1 {
		b.Fatalf("seed run cached %d artifacts", len(keys))
	}
	return s, ts, keys[0]
}

// BenchmarkCacheGet measures the disk cache's hit path: index lookup,
// LRU bump, and the artifact read. This is the storage cost under every
// cache-hit response.
func BenchmarkCacheGet(b *testing.B) {
	s, _, key := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Cache().Get(key); !ok {
			b.Fatal("cached artifact vanished")
		}
	}
}

// BenchmarkServeCachedResult measures the full HTTP cache-hit
// round trip the CI gate pins: POST the config, decode, canonicalise,
// hash, hit the cache, stream the two-event NDJSON response. This is
// the latency a client sees when resubmitting a known configuration.
func BenchmarkServeCachedResult(b *testing.B) {
	_, ts, _ := benchServer(b)
	body := []byte(`{"kind":"trial","trial":{"trial":1,"duration_s":40}}`)
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Contains(data, []byte(`"cached":true`)) {
			b.Fatalf("response was not a cache hit: %s", data)
		}
	}
}
