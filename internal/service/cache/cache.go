// Package cache is vanetsimd's persistent content-addressed result
// store: one file per canonical-config hash, an in-memory LRU index,
// and a configurable on-disk byte budget enforced by least-recently-
// used eviction.
//
// Because every artifact is the deterministic output of its key's
// configuration, eviction is always safe — a re-run reproduces the
// identical bytes (the service's golden test proves it). That frees
// the cache from write-back complexity: Put writes atomically
// (temp file + rename), Get reads straight from disk, and a crashed
// or restarted daemon rebuilds its index by scanning the directory,
// ordering recency by file modification time.
package cache

import (
	"container/list"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cache is a disk-backed LRU keyed by lowercase-hex content hashes.
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	dir     string
	budget  int64 // bytes; <= 0 means unlimited
	size    int64
	entries map[string]*list.Element // key -> LRU element holding *entry
	lru     *list.List               // front = most recently used

	hits, misses, evictions, puts uint64
}

// entry is one cached artifact's index record.
type entry struct {
	key  string
	size int64
}

// Stats is a point-in-time summary of the cache.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Puts      uint64 `json:"puts"`
}

// Open loads (creating if needed) the cache rooted at dir with the
// given byte budget (<= 0 = unlimited). Existing artifacts are indexed
// oldest-first by modification time, so recency survives restarts at
// file granularity; if the directory already exceeds the budget, the
// oldest artifacts are evicted immediately.
func Open(dir string, budget int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	c := &Cache{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
	type found struct {
		key  string
		size int64
		mod  time.Time
	}
	var scan []found
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key := d.Name()
		if !validKey(key) {
			return nil // temp files, strays — leave them alone
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		scan = append(scan, found{key: key, size: info.Size(), mod: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cache: scan %s: %w", dir, err)
	}
	sort.Slice(scan, func(i, j int) bool {
		if !scan[i].mod.Equal(scan[j].mod) {
			return scan[i].mod.Before(scan[j].mod)
		}
		return scan[i].key < scan[j].key
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range scan {
		c.entries[f.key] = c.lru.PushFront(&entry{key: f.key, size: f.size})
		c.size += f.size
	}
	c.evictOverBudgetLocked()
	return c, nil
}

// validKey reports whether name looks like a lowercase-hex SHA-256.
func validKey(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// path shards artifacts across 256 subdirectories by hash prefix, so
// huge caches never pile every file into one directory.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key)
}

// Get returns the artifact stored under key and whether it exists,
// bumping the entry to most-recently-used on a hit.
func (c *Cache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.mu.Unlock()

	data, err := os.ReadFile(c.path(key))
	if err != nil {
		// The file vanished under us (external cleanup): drop the index
		// entry and report a miss so the caller re-runs.
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.size -= el.Value.(*entry).size
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return data, true
}

// Contains reports whether key is cached, without touching recency or
// the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores data under key atomically (temp file + rename) and evicts
// least-recently-used artifacts until the byte budget holds again. An
// artifact larger than the whole budget is stored and then becomes the
// sole (over-budget) resident until something else arrives — refusing
// it would make the run's result unobservable.
func (c *Cache) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("cache: invalid key %q", key)
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: publish %s: %w", key, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Replaced in place (two jobs raced to the same key): identical
		// bytes by determinism, but sizes must not double-count.
		c.size -= el.Value.(*entry).size
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, size: int64(len(data))})
	c.size += int64(len(data))
	c.puts++
	c.evictOverBudgetLocked()
	return nil
}

// Evict removes key from the cache, reporting whether it was present.
func (c *Cache) Evict(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// evictOverBudgetLocked drops least-recently-used entries until the
// budget holds. The newest entry is never evicted to make room for
// itself. Callers hold c.mu.
func (c *Cache) evictOverBudgetLocked() {
	if c.budget <= 0 {
		return
	}
	for c.size > c.budget && c.lru.Len() > 1 {
		c.removeLocked(c.lru.Back())
	}
}

// removeLocked deletes one entry's file and index record; callers hold
// c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.size -= e.size
	c.evictions++
	os.Remove(c.path(e.key))
}

// Stats returns the current counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.entries),
		Bytes:     c.size,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Puts:      c.puts,
	}
}

// Keys returns the cached keys from most to least recently used —
// diagnostics and tests only.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// Dir returns the cache root (for status reporting).
func (c *Cache) Dir() string { return c.dir }

// String summarises the cache for logs.
func (c *Cache) String() string {
	s := c.Stats()
	b := &strings.Builder{}
	fmt.Fprintf(b, "cache{%d entries, %d B", s.Entries, s.Bytes)
	if s.Budget > 0 {
		fmt.Fprintf(b, "/%d B", s.Budget)
	}
	b.WriteString("}")
	return b.String()
}
