package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// key derives a deterministic valid cache key from a label.
func key(label string) string {
	h := sha256.Sum256([]byte(label))
	return hex.EncodeToString(h[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("result bytes")
	if err := c.Put(key("a"), data); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key("a"))
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get(key("missing")); ok {
		t.Fatalf("missing key reported present")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != int64(len(data)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("../../etc/passwd", []byte("x")); err == nil {
		t.Fatalf("path-traversal key accepted")
	}
	if err := c.Put("ABCDEF", []byte("x")); err == nil {
		t.Fatalf("short key accepted")
	}
	if _, ok := c.Get("zz"); ok {
		t.Fatalf("invalid key Get reported present")
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	// Budget of 3 x 10-byte artifacts; the 4th insert evicts the least
	// recently used.
	c, err := Open(t.TempDir(), 30)
	if err != nil {
		t.Fatal(err)
	}
	ten := bytes.Repeat([]byte("x"), 10)
	for _, l := range []string{"a", "b", "c"} {
		if err := c.Put(key(l), ten); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes the eviction victim.
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a missing")
	}
	if err := c.Put(key("d"), ten); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("b")); ok {
		t.Fatalf("b survived eviction")
	}
	for _, l := range []string{"a", "c", "d"} {
		if _, ok := c.Get(key(l)); !ok {
			t.Fatalf("%s evicted, want resident", l)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOversizedArtifactStillStored(t *testing.T) {
	c, err := Open(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("y"), 100)
	if err := c.Put(key("big"), big); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(key("big")); !ok || !bytes.Equal(got, big) {
		t.Fatalf("over-budget artifact not served")
	}
	// The next insert evicts it.
	if err := c.Put(key("small"), []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("big")); ok {
		t.Fatalf("over-budget artifact survived the next insert")
	}
}

func TestExplicitEvict(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key("a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !c.Evict(key("a")) {
		t.Fatalf("Evict reported absent")
	}
	if c.Evict(key("a")) {
		t.Fatalf("second Evict reported present")
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatalf("evicted key still served")
	}
	if _, err := os.Stat(filepath.Join(c.Dir(), key("a")[:2], key("a"))); !os.IsNotExist(err) {
		t.Fatalf("evicted file still on disk: %v", err)
	}
}

func TestReopenRestoresIndexAndRecency(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range []string{"old", "mid", "new"} {
		if err := c.Put(key(l), []byte(l)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the rescan order is unambiguous even on
		// coarse filesystem clocks.
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key(l)[:2], key(l)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen with a budget that only fits two artifacts: the oldest by
	// mtime must be evicted at startup.
	c2, err := Open(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key("old")); ok {
		t.Fatalf("oldest artifact survived the reopen budget")
	}
	for _, l := range []string{"mid", "new"} {
		if got, ok := c2.Get(key(l)); !ok || string(got) != l {
			t.Fatalf("%s not restored: %q %v", l, got, ok)
		}
	}
}

func TestReopenIgnoresStrays(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("stray file indexed: %+v", s)
	}
}

func TestGetRecoversFromExternalDeletion(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key("a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(c.Dir(), key("a")[:2], key("a")))
	if _, ok := c.Get(key("a")); ok {
		t.Fatalf("deleted file served")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("index kept a deleted file: %+v", s)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("%d", i%16))
				if i%2 == 0 {
					if err := c.Put(k, bytes.Repeat([]byte("p"), 64)); err != nil {
						t.Error(err)
						return
					}
				} else if data, ok := c.Get(k); ok && len(data) != 64 {
					t.Errorf("partial read: %d bytes", len(data))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Bytes > 2048 {
		t.Fatalf("budget exceeded after concurrent load: %+v", s)
	}
}
