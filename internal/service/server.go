package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vanetsim/internal/obs"
	"vanetsim/internal/runner"
	"vanetsim/internal/service/cache"
	"vanetsim/internal/service/canon"
)

// Config sizes a Server. The zero value is usable: an unlimited cache
// in CacheDir, two workers, default budgets, rate limiting off.
type Config struct {
	// CacheDir roots the content-addressed result cache (required).
	CacheDir string
	// CacheBudget bounds the cache's disk use in bytes (<= 0 = unlimited).
	CacheBudget int64
	// Workers bounds concurrently executing simulation jobs (<= 0 = 2).
	Workers int
	// QueueDepth bounds the accepted-but-unstarted backlog (<= 0 = 16).
	// When it is full, run requests are refused with 503.
	QueueDepth int
	// MaxSimSeconds is the per-request admission budget on total
	// simulated seconds across all of the request's runs (<= 0 = 3600).
	MaxSimSeconds float64
	// MaxVehicles is the per-request admission budget on a single run's
	// fleet size (<= 0 = 4096).
	MaxVehicles int
	// RatePerSec refills each client's token bucket for the run endpoint
	// (<= 0 = rate limiting off). RateBurst is the bucket size (<= 0 = 8).
	RatePerSec float64
	RateBurst  int
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

// Server is the vanetsimd HTTP service. Create with New, serve
// Handler(), stop with Close (drains in-flight jobs).
type Server struct {
	cfg      Config
	cache    *cache.Cache
	queue    *runner.Queue
	limiter  *limiter
	mux      *http.ServeMux
	now      func() time.Time
	draining atomic.Bool

	jobsMu sync.Mutex
	jobs   map[string]*job // in-flight, keyed by canonical hash

	// metricsMu guards reg: obs.Registry is documented single-threaded
	// (the simulator owns one per run); the service shares one registry
	// across handler goroutines, so every touch takes the lock.
	metricsMu sync.Mutex
	reg       *obs.Registry
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	jobsOK    *obs.Counter
	jobsErr   *obs.Counter
	limited   *obs.Counter
	rejected  *obs.Counter
	repCached *obs.Counter
	repFresh  *obs.Counter
	queueLen  *obs.Gauge
	inflight  *obs.Gauge
	jobSecs   *obs.Histogram
}

// job is one in-flight simulation run: an append-only progress log
// with edge-triggered change notification, finished exactly once.
// Subscribers (HTTP streams) read it concurrently; a subscriber that
// disconnects abandons the stream but never the job — the result is
// cached for whoever asks next.
type job struct {
	mu      sync.Mutex
	lines   []string
	changed chan struct{} // closed and replaced on every append; closed for good at finish
	done    bool
	err     error
	bytes   int
}

func newJob() *job { return &job{changed: make(chan struct{})} }

func (j *job) appendLine(line string) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) finish(bytes int, err error) {
	j.mu.Lock()
	j.done, j.bytes, j.err = true, bytes, err
	close(j.changed)
	j.mu.Unlock()
}

// snapshot returns progress lines from index from on, the completion
// state, and the channel that closes on the next change.
func (j *job) snapshot(from int) (lines []string, done bool, bytes int, err error, changed chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.lines) {
		lines = append(lines, j.lines[from:]...)
	}
	return lines, j.done, j.bytes, j.err, j.changed
}

// New opens the cache and starts the job queue.
func New(cfg Config) (*Server, error) {
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("service: Config.CacheDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxSimSeconds <= 0 {
		cfg.MaxSimSeconds = 3600
	}
	if cfg.MaxVehicles <= 0 {
		cfg.MaxVehicles = 4096
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 8
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c, err := cache.Open(cfg.CacheDir, cfg.CacheBudget)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   c,
		queue:   runner.NewQueue(cfg.Workers, cfg.QueueDepth),
		limiter: newLimiter(cfg.RatePerSec, cfg.RateBurst, cfg.Now),
		now:     cfg.Now,
		jobs:    make(map[string]*job),
		reg:     obs.NewRegistry(),
	}
	s.hits = s.reg.Counter("service/cache_hits_total", "run requests answered from the result cache")
	s.misses = s.reg.Counter("service/cache_misses_total", "run requests that started a fresh simulation job")
	s.coalesced = s.reg.Counter("service/coalesced_total", "run requests attached to an already-running identical job")
	s.jobsOK = s.reg.Counter("service/jobs_completed_total", "simulation jobs finished and cached")
	s.jobsErr = s.reg.Counter("service/jobs_failed_total", "simulation jobs that ended in error")
	s.limited = s.reg.Counter("service/rate_limited_total", "run requests refused by the per-client rate limit")
	s.rejected = s.reg.Counter("service/queue_rejected_total", "run requests refused because the job queue was full or draining")
	s.repCached = s.reg.Counter("service/rep_cached_total", "study replications answered from cached per-replication entries")
	s.repFresh = s.reg.Counter("service/rep_fresh_total", "study replications freshly simulated and stored as entries")
	s.queueLen = s.reg.Gauge("service/queue_depth", "jobs accepted but not yet finished")
	s.inflight = s.reg.Gauge("service/inflight_jobs", "distinct configurations currently executing")
	s.jobSecs = s.reg.Histogram("service/job_seconds", "wall-clock job execution latency",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the underlying result cache (status, tests).
func (s *Server) Cache() *cache.Cache { return s.cache }

// BeginDrain stops admitting run requests; already-accepted jobs keep
// executing. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close drains: no new jobs are admitted, every accepted job runs to
// completion and lands in the cache, then the workers exit.
func (s *Server) Close() {
	s.BeginDrain()
	s.queue.Close()
}

// count increments a service counter under the registry lock.
func (s *Server) count(c *obs.Counter) {
	s.metricsMu.Lock()
	c.Inc()
	s.metricsMu.Unlock()
}

// countingRepStore adapts the artifact cache into the study's
// per-replication entry store, counting entry reuse and fresh
// simulation into the service metrics — the observable proof that a
// tighter-tolerance resubmission re-ran only the delta.
type countingRepStore struct{ s *Server }

func (r countingRepStore) Get(key string) ([]byte, bool) {
	data, ok := r.s.cache.Get(key)
	if ok {
		r.s.count(r.s.repCached)
	}
	return data, ok
}

func (r countingRepStore) Put(key string, data []byte) error {
	r.s.count(r.s.repFresh)
	return r.s.cache.Put(key, data)
}

// event is one NDJSON line of a run response stream.
type event struct {
	Event  string `json:"event"` // "accepted", "progress", "done"
	Hash   string `json:"hash,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Line   string `json:"line,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
	Error  string `json:"error,omitempty"`
}

// writeEvent emits one NDJSON event and flushes it to the client, so
// progress is visible while the simulation runs.
func writeEvent(w http.ResponseWriter, e event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return err
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// clientKey extracts the rate-limit key (remote host) for a request.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleRun is the service's core: canonicalise, consult the cache,
// and either answer immediately or stream a fresh run's progress.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.count(s.rejected)
		http.Error(w, "service draining", http.StatusServiceUnavailable)
		return
	}
	if !s.limiter.allow(clientKey(r)) {
		s.count(s.limited)
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	req, err := canon.Decode(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, err := canon.Canonicalize(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if cost := c.Cost(); cost.SimSeconds > s.cfg.MaxSimSeconds || cost.Vehicles > s.cfg.MaxVehicles {
		http.Error(w, fmt.Sprintf(
			"request exceeds budget: %.0f simulated seconds (max %.0f), %d vehicles (max %d)",
			cost.SimSeconds, s.cfg.MaxSimSeconds, cost.Vehicles, s.cfg.MaxVehicles),
			http.StatusUnprocessableEntity)
		return
	}
	hash := c.Hash().String()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if data, ok := s.cache.Get(hash); ok {
		s.count(s.hits)
		writeEvent(w, event{Event: "accepted", Hash: hash, Cached: true})
		writeEvent(w, event{Event: "done", Hash: hash, Cached: true, Bytes: len(data)})
		return
	}

	// Miss: join the in-flight job for this hash, or create it.
	// Submit happens under jobsMu so a registered job is always backed
	// by a queued execution.
	s.jobsMu.Lock()
	j, running := s.jobs[hash]
	if !running {
		j = newJob()
		if err := s.queue.Submit(func() { s.execute(hash, j, c) }); err != nil {
			s.jobsMu.Unlock()
			s.count(s.rejected)
			http.Error(w, "job queue full", http.StatusServiceUnavailable)
			return
		}
		s.jobs[hash] = j
	}
	s.jobsMu.Unlock()
	if running {
		s.count(s.coalesced)
	} else {
		s.count(s.misses)
	}

	writeEvent(w, event{Event: "accepted", Hash: hash})
	ctx := r.Context()
	for next := 0; ; {
		lines, done, bytes, jerr, changed := j.snapshot(next)
		for _, line := range lines {
			if writeEvent(w, event{Event: "progress", Line: line}) != nil {
				return // client gone; the job keeps running
			}
		}
		next += len(lines)
		if done {
			e := event{Event: "done", Hash: hash, Bytes: bytes}
			if jerr != nil {
				e.Error = jerr.Error()
			}
			writeEvent(w, e)
			return
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return
		}
	}
}

// execute runs one simulation job on a queue worker and publishes the
// artifact to the cache before announcing completion, so a subscriber
// reacting to "done" always finds the result.
func (s *Server) execute(hash string, j *job, c *canon.Canonical) {
	s.metricsMu.Lock()
	s.inflight.Add(1)
	s.metricsMu.Unlock()
	start := s.now()

	data, err := BuildArtifactCached(c, countingRepStore{s}, j.appendLine)
	if err == nil {
		err = s.cache.Put(hash, data)
	}

	s.metricsMu.Lock()
	s.inflight.Add(-1)
	s.jobSecs.Observe(s.now().Sub(start).Seconds())
	if err != nil {
		s.jobsErr.Inc()
	} else {
		s.jobsOK.Inc()
	}
	s.metricsMu.Unlock()

	// Deregister before finishing: once subscribers see "done", the
	// next identical request must re-check the cache, not join a
	// finished job.
	s.jobsMu.Lock()
	delete(s.jobs, hash)
	s.jobsMu.Unlock()
	j.finish(len(data), err)
}

// handleResult serves a cached artifact verbatim.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	h, err := canon.ParseHash(r.PathValue("hash"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, ok := s.cache.Get(h.String())
	if !ok {
		http.Error(w, "result not cached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "immutable")
	w.Write(data)
}

// handleStatus reports the service's moving parts as JSON.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	inflight := len(s.jobs)
	s.jobsMu.Unlock()
	status := struct {
		Service  string      `json:"service"`
		Version  string      `json:"version"`
		Draining bool        `json:"draining"`
		Queue    int         `json:"queue_depth"`
		Inflight int         `json:"inflight_jobs"`
		Cache    cache.Stats `json:"cache"`
	}{
		Service:  "vanetsimd",
		Version:  canon.Version,
		Draining: s.draining.Load(),
		Queue:    s.queue.Depth(),
		Inflight: inflight,
		Cache:    s.cache.Stats(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(status)
}

// handleMetrics exposes the service counters in the Prometheus text
// format via the repository's own exporter. Point-in-time values
// (queue depth, cache occupancy) are refreshed at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	depth := s.queue.Depth()
	s.metricsMu.Lock()
	s.queueLen.Set(float64(depth))
	evict := s.reg.Gauge("service/cache_evictions", "artifacts evicted by the disk budget")
	evict.Set(float64(cs.Evictions))
	entries := s.reg.Gauge("service/cache_entries", "artifacts resident in the cache")
	entries.Set(float64(cs.Entries))
	bytes := s.reg.Gauge("service/cache_bytes", "bytes resident in the cache")
	bytes.Set(float64(cs.Bytes))
	snap := s.reg.Snapshot()
	s.metricsMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.Prometheus(w)
}

// handleHealthz answers liveness probes; a draining server reports 503
// so load balancers stop routing to it while it finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
