package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vanetsim/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if !almost(s.Std, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

// Known Student-t critical values (two-sided 95% -> 0.975 quantile).
func TestTQuantileAgainstTables(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{100, 1.984},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.df)
		if !almost(got, c.want, 0.01) {
			t.Errorf("t(0.975, df=%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// 0.95 one-sided values too.
	if got := TQuantile(0.95, 10); !almost(got, 1.812, 0.01) {
		t.Errorf("t(0.95, 10) = %v", got)
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	if got := TQuantile(0.5, 7); got != 0 {
		t.Fatalf("median of t should be 0, got %v", got)
	}
	a, b := TQuantile(0.975, 7), TQuantile(0.025, 7)
	if !almost(a, -b, 1e-9) {
		t.Fatalf("quantiles not symmetric: %v vs %v", a, b)
	}
}

func TestTCDFMatchesNormalForLargeDF(t *testing.T) {
	// t with many degrees of freedom converges to the standard normal:
	// Phi(1.96) ~ 0.975.
	if got := TCDF(1.96, 10000); !almost(got, 0.975, 0.001) {
		t.Fatalf("TCDF(1.96, 10000) = %v", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x² - 2x³.
	x := 0.3
	if got := RegIncBeta(2, 2, x); !almost(got, 3*x*x-2*x*x*x, 1e-9) {
		t.Fatalf("I_0.3(2,2) = %v", got)
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// Frequentist check: ~95% of 95% CIs over normal samples cover the
	// true mean.
	rng := sim.NewRNG(2024)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 30)
		for j := range xs {
			xs[j] = rng.Normal(10, 2)
		}
		ci := MeanCI(xs, 0.95)
		if ci.Lo() <= 10 && 10 <= ci.Hi() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.91 || rate > 0.99 {
		t.Fatalf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	ci := MeanCI([]float64{5}, 0.95)
	if !math.IsInf(ci.HalfWidth, 1) {
		t.Fatal("single-sample CI must be infinitely wide")
	}
	if !math.IsInf(CI{Mean: 0, HalfWidth: 1}.RelPrecision(), 1) {
		t.Fatal("relative precision of zero mean must be +Inf")
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9} // 9 samples, 4 batches of 2
	bm := BatchMeans(xs, 4)
	want := []float64{1.5, 3.5, 5.5, 7.5}
	if len(bm) != 4 {
		t.Fatalf("got %d batches", len(bm))
	}
	for i := range want {
		if bm[i] != want[i] {
			t.Fatalf("batch means = %v, want %v", bm, want)
		}
	}
	if BatchMeans(xs, 0) != nil || BatchMeans([]float64{1}, 2) != nil {
		t.Fatal("degenerate batching should return nil")
	}
}

func TestBatchMeansPreservesOverallMeanWhenDivisible(t *testing.T) {
	f := func(raw []uint8, nbRaw uint8) bool {
		nb := int(nbRaw%8) + 1
		n := (len(raw) / nb) * nb
		if n == 0 {
			return true
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(raw[i])
		}
		bm := BatchMeans(xs, nb)
		return almost(Summarize(bm).Mean, Summarize(xs).Mean, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CI half-width shrinks (weakly) as sample size grows, for iid
// data with fixed spread.
func TestCIShrinksWithN(t *testing.T) {
	rng := sim.NewRNG(7)
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, 1)
		}
		return xs
	}
	small := MeanCI(mk(10), 0.95).HalfWidth
	large := MeanCI(mk(1000), 0.95).HalfWidth
	if large >= small {
		t.Fatalf("CI did not shrink: n=10 -> %v, n=1000 -> %v", small, large)
	}
}

func TestCIBounds(t *testing.T) {
	ci := CI{Mean: 10, HalfWidth: 2, Level: 0.95, N: 5}
	if ci.Lo() != 8 || ci.Hi() != 12 {
		t.Fatalf("bounds = [%v, %v]", ci.Lo(), ci.Hi())
	}
	if !almost(ci.RelPrecision(), 0.2, 1e-12) {
		t.Fatalf("rel precision = %v", ci.RelPrecision())
	}
}

func TestTQuantileInvalid(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, math.NaN()} {
		if !math.IsNaN(TQuantile(bad, 5)) {
			t.Fatalf("TQuantile(%v, 5) should be NaN", bad)
		}
	}
	if !math.IsNaN(TQuantile(0.9, 0)) {
		t.Fatal("df=0 should be NaN")
	}
}

// The next three tests pin the edge cases the parallel run reducer
// leans on: a reduced batch can be a single sample, have a zero mean,
// or carry NaN missing-sample markers (a replication whose trailing
// vehicle never received a packet), and percentile interpolation must
// stay in range at the sorted-array boundary.

func TestPercentileInterpolationBoundary(t *testing.T) {
	// Non-integer rank interpolates: rank = 0.75·3 = 2.25 → 3·0.75 + 4·0.25.
	if got := Percentile([]float64{1, 2, 3, 4}, 75); !almost(got, 3.25, 1e-12) {
		t.Fatalf("p75 = %v, want 3.25", got)
	}
	// The lo+1 == len guard: a single-element series hits it for every
	// interior p, and must return that element rather than read past the
	// end.
	for _, p := range []float64{1, 50, 99.999} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("single-element p%v = %v, want 7", p, got)
		}
	}
	// p at and beyond the clamps, on unsorted input.
	xs := []float64{9, 1, 5}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("p100 = %v, want 9", got)
	}
	if got := Percentile(xs, -3); got != 1 {
		t.Fatalf("p<0 = %v, want 1", got)
	}
	// A rank landing just shy of the last index must interpolate toward
	// the maximum without overshooting it.
	if got := Percentile([]float64{1, 2}, 99.9); got <= 1.99 || got > 2 {
		t.Fatalf("p99.9 of {1,2} = %v, want in (1.99, 2]", got)
	}
}

func TestMeanCISingleSampleShape(t *testing.T) {
	ci := MeanCI([]float64{3.5}, 0.95)
	if ci.Mean != 3.5 || ci.N != 1 || ci.Level != 0.95 {
		t.Fatalf("single-sample CI = %+v", ci)
	}
	if !math.IsInf(ci.HalfWidth, 1) {
		t.Fatalf("single-sample half-width = %v, want +Inf", ci.HalfWidth)
	}
	if ci := MeanCI(nil, 0.95); ci.N != 0 || !math.IsInf(ci.HalfWidth, 1) {
		t.Fatalf("empty CI = %+v", ci)
	}
	// Zero mean from real samples: relative precision is undefined, so it
	// must report +Inf, never divide to a finite nonsense value.
	if ci := MeanCI([]float64{-1, 1}, 0.95); !math.IsInf(ci.RelPrecision(), 1) {
		t.Fatalf("zero-mean rel precision = %v, want +Inf", ci.RelPrecision())
	}
}

func TestMeanCIPropagatesNaN(t *testing.T) {
	ci := MeanCI([]float64{math.NaN(), 1, 2}, 0.95)
	if !math.IsNaN(ci.Mean) || !math.IsNaN(ci.HalfWidth) {
		t.Fatalf("NaN sample must poison the CI, got %+v", ci)
	}
}

// Property: Percentile is monotone non-decreasing in p, and at the exact
// rank points p = 100·i/(n-1) it agrees with the sorted sample.
func TestPercentileMonotoneAndSortedAgreement(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := Percentile(xs, p)
			if math.IsNaN(v) || v < prev {
				return false
			}
			prev = v
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		if len(sorted) == 1 {
			return Percentile(xs, 50) == sorted[0]
		}
		for i := range sorted {
			p := 100 * float64(i) / float64(len(sorted)-1)
			if !almost(Percentile(xs, p), sorted[i], 1e-9*math.Max(1, math.Abs(sorted[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Met is the sequential-stopping rule's comparison; its whole point is
// the non-finite edge cases RelPrecision can produce. A zero mean
// (+Inf), a NaN mean (NaN — which a plain `<= tol` would pass straight
// through, since NaN comparisons are always false... and so is
// `> tol`), and the n<2 +Inf half-width must all read "not yet met".
func TestCIMetNonFinitePrecision(t *testing.T) {
	tol := 0.05
	if (CI{Mean: 0, HalfWidth: 1, N: 10}).Met(tol) {
		t.Fatal("zero mean (+Inf precision) must not meet tolerance")
	}
	if (CI{Mean: math.NaN(), HalfWidth: math.Inf(1), N: 0}).Met(tol) {
		t.Fatal("NaN mean (NaN precision) must not meet tolerance")
	}
	if ci := MeanCI([]float64{5}, 0.95); ci.Met(tol) {
		t.Fatal("n<2 (+Inf half-width) must not meet tolerance")
	}
	// Sanity in both directions on finite precision.
	if !(CI{Mean: 10, HalfWidth: 0.4, N: 8}).Met(tol) {
		t.Fatal("4% relative precision must meet a 5% tolerance")
	}
	if (CI{Mean: 10, HalfWidth: 0.6, N: 8}).Met(tol) {
		t.Fatal("6% relative precision must not meet a 5% tolerance")
	}
	// Exactly at the bound counts as met (the contract is ≤).
	if !(CI{Mean: 10, HalfWidth: 0.5, N: 8}).Met(tol) {
		t.Fatal("precision exactly at tolerance must count as met")
	}
}

// MeanCIObserved filters missing-sample markers instead of letting them
// poison the interval: one NaN among real samples must yield the CI of
// the real samples plus an explicit missing count.
func TestMeanCIObservedFiltersMissing(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	ci, missing := MeanCIObserved(xs, 0.95)
	if missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	want := MeanCI([]float64{1, 3}, 0.95)
	if ci != want {
		t.Fatalf("observed CI = %+v, want %+v", ci, want)
	}
	// No missing samples: identical to plain MeanCI.
	ci, missing = MeanCIObserved([]float64{1, 2, 3}, 0.95)
	if missing != 0 || ci != MeanCI([]float64{1, 2, 3}, 0.95) {
		t.Fatalf("all-observed CI = %+v (missing %d)", ci, missing)
	}
	// All missing: the explicit marker survives — NaN mean, +Inf width,
	// zero observed count — so downstream Met() reads "not converged",
	// never "converged at NaN".
	ci, missing = MeanCIObserved([]float64{math.NaN(), math.NaN()}, 0.95)
	if missing != 2 || ci.N != 0 || !math.IsNaN(ci.Mean) || !math.IsInf(ci.HalfWidth, 1) {
		t.Fatalf("all-missing CI = %+v (missing %d)", ci, missing)
	}
	if ci.Met(0.5) {
		t.Fatal("all-missing interval must not meet any tolerance")
	}
}

// MeanCI on identical samples: the variance is exactly zero, so the
// interval must collapse to a zero half-width, not go NaN or negative.
func TestMeanCIZeroVariance(t *testing.T) {
	ci := MeanCI([]float64{2.5, 2.5, 2.5, 2.5}, 0.95)
	if ci.Mean != 2.5 {
		t.Fatalf("mean = %v, want 2.5", ci.Mean)
	}
	if ci.HalfWidth != 0 {
		t.Fatalf("half-width = %v, want exactly 0", ci.HalfWidth)
	}
	if ci.Lo() != 2.5 || ci.Hi() != 2.5 {
		t.Fatalf("interval = [%v, %v], want degenerate at 2.5", ci.Lo(), ci.Hi())
	}
	// Near-zero variance (1 ulp of spread): half-width must stay finite,
	// non-negative, and far below the mean.
	eps := math.Nextafter(2.5, 3) - 2.5
	ci = MeanCI([]float64{2.5, 2.5 + eps, 2.5, 2.5 + eps}, 0.95)
	if math.IsNaN(ci.HalfWidth) || ci.HalfWidth < 0 || ci.HalfWidth > 1e-10 {
		t.Fatalf("near-zero-variance half-width = %v", ci.HalfWidth)
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TQuantile(0.975, 9)
	}
}

func BenchmarkBatchMeansCI(b *testing.B) {
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i % 13)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BatchMeansCI(xs, 10, 0.95)
	}
}
