// Package stats provides the summary statistics and confidence-interval
// machinery the paper's analysis uses: per-metric min/mean/max, Student-t
// confidence intervals on a mean, batch means for autocorrelated
// simulation output, and relative precision ("within X Mbps of the
// observed value, with a 95% confidence and a Y% relative precision").
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for every
// metric.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Std  float64 // sample standard deviation (n-1)
}

// Summarize computes a Summary of xs. An empty input returns a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI is a two-sided confidence interval on a mean.
type CI struct {
	Mean      float64
	HalfWidth float64
	Level     float64 // e.g. 0.95
	N         int
}

// Lo returns the interval's lower bound.
func (c CI) Lo() float64 { return c.Mean - c.HalfWidth }

// Hi returns the interval's upper bound.
func (c CI) Hi() float64 { return c.Mean + c.HalfWidth }

// RelPrecision returns half-width / |mean| — the paper's "relative
// precision" (reported as a percentage). It returns +Inf for a zero mean
// and NaN for a NaN mean (an interval with no observed samples).
func (c CI) RelPrecision() float64 {
	if c.Mean == 0 {
		return math.Inf(1)
	}
	return math.Abs(c.HalfWidth / c.Mean)
}

// Met reports whether the interval satisfies a relative-precision
// tolerance: RelPrecision() must be finite and at most tol. Non-finite
// precision — the +Inf of a zero mean or an n<2 half-width, or the NaN
// of a mean over no observed samples — never satisfies a tolerance;
// NaN in particular compares as neither above nor below tol, so a
// stopping rule using a plain `<=` would treat an all-missing metric as
// converged. Sequential-stopping rules must use Met.
func (c CI) Met(tol float64) bool {
	p := c.RelPrecision()
	return !math.IsNaN(p) && !math.IsInf(p, 0) && p <= tol
}

// MeanCI returns the level (e.g. 0.95) confidence interval for the mean of
// xs, assuming independent samples (use BatchMeans first for correlated
// simulation output). With fewer than two samples the half-width is +Inf.
func MeanCI(xs []float64, level float64) CI {
	s := Summarize(xs)
	ci := CI{Mean: s.Mean, Level: level, N: s.N}
	if s.N < 2 {
		ci.HalfWidth = math.Inf(1)
		return ci
	}
	t := TQuantile(1-(1-level)/2, s.N-1)
	ci.HalfWidth = t * s.Std / math.Sqrt(float64(s.N))
	return ci
}

// MeanCIObserved is MeanCI restricted to the observed (non-NaN) values
// of xs, returning the interval plus the number of missing samples. A
// simulation metric can be legitimately unobservable in one replication
// (a trailing vehicle that never receives a packet has no
// initial-packet delay); plain MeanCI would propagate that NaN and
// poison the whole interval. With no observed values at all the result
// keeps the explicit missing marker: Mean NaN, HalfWidth +Inf, N 0.
func MeanCIObserved(xs []float64, level float64) (CI, int) {
	observed := make([]float64, 0, len(xs))
	missing := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			missing++
			continue
		}
		observed = append(observed, x)
	}
	ci := MeanCI(observed, level)
	if len(observed) == 0 {
		ci.Mean = math.NaN()
	}
	return ci, missing
}

// BatchMeans reduces a correlated series to nbatches approximately
// independent batch means (dropping a remainder tail shorter than a
// batch). It returns nil if the series is shorter than nbatches.
func BatchMeans(xs []float64, nbatches int) []float64 {
	if nbatches <= 0 || len(xs) < nbatches {
		return nil
	}
	size := len(xs) / nbatches
	out := make([]float64, 0, nbatches)
	for b := 0; b < nbatches; b++ {
		sum := 0.0
		for i := b * size; i < (b+1)*size; i++ {
			sum += xs[i]
		}
		out = append(out, sum/float64(size))
	}
	return out
}

// BatchMeansCI is the paper's throughput confidence analysis in one call:
// batch the series, then compute the Student-t interval on the batch
// means.
func BatchMeansCI(xs []float64, nbatches int, level float64) CI {
	return MeanCI(BatchMeans(xs, nbatches), level)
}

// TQuantile returns the p-quantile (0 < p < 1) of Student's t
// distribution with df degrees of freedom, by inverting the CDF with
// bisection on a numerically stable incomplete-beta CDF.
func TQuantile(p float64, df int) float64 {
	if df <= 0 || math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns P(T <= t) for Student's t with df degrees of freedom.
func TCDF(t float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := float64(df) / (float64(df) + t*t)
	p := 0.5 * RegIncBeta(float64(df)/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Symmetry transformation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a

	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			num = -((a + float64(m)) * (a + b + float64(m)) * x) / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < 1e-12 {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
