package seqstop

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"vanetsim/internal/runner"
	"vanetsim/internal/sim"
	"vanetsim/internal/stats"
)

// sample is the synthetic replication used throughout: a pure function
// of the replication index (the engine's determinism precondition),
// with enough spread that the CI needs several replications to close.
func sample(i int) []float64 {
	rng := sim.NewRNG(uint64(i) + 1).Fork("seqstop-test")
	return []float64{rng.Normal(100, 5), rng.Normal(10, 0.2)}
}

// expectN is the reference stopping rule, computed directly from the
// definition: the earliest prefix k in [minReps, maxReps] whose every
// metric CI meets tol.
func expectN(minReps, maxReps int, tol float64) (int, bool) {
	for k := minReps; k <= maxReps; k++ {
		cols := [][]float64{make([]float64, k), make([]float64, k)}
		for i := 0; i < k; i++ {
			v := sample(i)
			cols[0][i], cols[1][i] = v[0], v[1]
		}
		met := true
		for _, col := range cols {
			ci, _ := stats.MeanCIObserved(col, 0.95)
			if !ci.Met(tol) {
				met = false
			}
		}
		if met {
			return k, true
		}
	}
	return maxReps, false
}

func TestRunStopsAtEarliestQualifyingPrefix(t *testing.T) {
	const tol = 0.02
	wantN, wantMet := expectN(2, 64, tol)
	if !wantMet {
		t.Fatalf("test data never meets tolerance %v within 64 reps", tol)
	}
	if wantN <= 2 {
		t.Fatalf("test data converges immediately (N=%d); pick wider spread", wantN)
	}
	res, err := Run(Config{
		Metrics: []string{"a", "b"}, Tolerance: tol, MinReps: 2,
	}, func(i int) ([]float64, error) { return sample(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.N != wantN {
		t.Fatalf("N = %d (met %v), want %d", res.N, res.Met, wantN)
	}
	if len(res.Samples) != wantN {
		t.Fatalf("verdict carries %d samples, want %d", len(res.Samples), wantN)
	}
	if res.Executed < res.N {
		t.Fatalf("executed %d < used %d", res.Executed, res.N)
	}
	for _, m := range res.Metrics {
		if !m.CI.Met(tol) {
			t.Fatalf("metric %s reported unmet CI in a met verdict: %+v", m.Name, m.CI)
		}
		if m.CI.N != wantN {
			t.Fatalf("metric %s CI over %d samples, want %d", m.Name, m.CI.N, wantN)
		}
	}
}

// The determinism contract: the verdict (N, Met, Metrics, Samples) is
// identical at any batch size and any worker-pool width; only Executed
// (overshoot) may differ.
func TestRunBatchSizeAndPoolInvariance(t *testing.T) {
	const tol = 0.02
	var ref *Result
	for _, tc := range []struct {
		batch, workers int
	}{
		{1, 1}, {4, 1}, {1, 8}, {4, 8}, {3, 2}, {7, 8}, {64, 8},
	} {
		res, err := Run(Config{
			Metrics: []string{"a", "b"}, Tolerance: tol, MinReps: 2,
			BatchSize: tc.batch, Pool: runner.Pool{Workers: tc.workers},
		}, func(i int) ([]float64, error) { return sample(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.N != ref.N || res.Met != ref.Met {
			t.Fatalf("batch=%d workers=%d: N=%d met=%v, want N=%d met=%v",
				tc.batch, tc.workers, res.N, res.Met, ref.N, ref.Met)
		}
		if !reflect.DeepEqual(res.Metrics, ref.Metrics) {
			t.Fatalf("batch=%d workers=%d: metrics diverge:\n%+v\nvs\n%+v",
				tc.batch, tc.workers, res.Metrics, ref.Metrics)
		}
		if !reflect.DeepEqual(res.Samples, ref.Samples) {
			t.Fatalf("batch=%d workers=%d: samples diverge", tc.batch, tc.workers)
		}
	}
}

func TestRunBudgetExhaustedReportsAchievedBound(t *testing.T) {
	// An impossible tolerance: the budget must run out, Met must be
	// false, and the achieved (finite) bound must still be reported.
	res, err := Run(Config{
		Metrics: []string{"a", "b"}, Tolerance: 1e-9, MinReps: 2, MaxReps: 6,
	}, func(i int) ([]float64, error) { return sample(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("±1e-9 tolerance reported met")
	}
	if res.N != 6 || res.Executed != 6 || len(res.Samples) != 6 {
		t.Fatalf("budget verdict N=%d executed=%d samples=%d, want all 6", res.N, res.Executed, len(res.Samples))
	}
	for _, m := range res.Metrics {
		p := m.CI.RelPrecision()
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 1e-9 {
			t.Fatalf("metric %s achieved bound = %v, want finite and above tolerance", m.Name, p)
		}
	}
}

func TestRunAllMissingMetricNeverMet(t *testing.T) {
	// A metric that is NaN in every replication must hold the study at
	// "not met" until the budget runs out — never converge at NaN.
	res, err := Run(Config{
		Metrics: []string{"real", "ghost"}, Tolerance: 0.5, MinReps: 2, MaxReps: 5,
	}, func(i int) ([]float64, error) {
		return []float64{100, math.NaN()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("all-missing metric reported met")
	}
	ghost := res.Metrics[1]
	if ghost.Missing != 5 || ghost.CI.N != 0 || !math.IsNaN(ghost.CI.Mean) {
		t.Fatalf("ghost metric = %+v, want 5 missing and NaN mean", ghost)
	}
	// The real metric (zero variance) individually met it.
	if !res.Metrics[0].CI.Met(0.5) {
		t.Fatalf("real metric = %+v, want met", res.Metrics[0])
	}
}

func TestRunPartialMissingUsesObservedSamples(t *testing.T) {
	// One missing sample among real ones: the CI covers the observed
	// remainder and the verdict can still be met.
	res, err := Run(Config{
		Metrics: []string{"m"}, Tolerance: 0.5, MinReps: 4, MaxReps: 8, BatchSize: 4,
	}, func(i int) ([]float64, error) {
		if i == 1 {
			return []float64{math.NaN()}, nil
		}
		return []float64{100 + float64(i%2)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.N != 4 {
		t.Fatalf("N = %d (met %v), want met at 4", res.N, res.Met)
	}
	m := res.Metrics[0]
	if m.Missing != 1 || m.CI.N != 3 {
		t.Fatalf("metric = %+v, want 1 missing of 4", m)
	}
}

// Regression: a batch boundary landing BELOW MinReps must not lower the
// prefix-scan cursor — with zero-variance data and BatchSize 2, a study
// with MinReps 4 once stopped at k=3 (the cursor slipped to executed+1
// after the first batch).
func TestRunBatchBelowMinRepsRespectsMinimum(t *testing.T) {
	for _, batch := range []int{1, 2, 3, 4, 5} {
		res, err := Run(Config{
			Metrics: []string{"m"}, Tolerance: 0.5, MinReps: 4, MaxReps: 8, BatchSize: batch,
		}, func(i int) ([]float64, error) { return []float64{100}, nil })
		if err != nil {
			t.Fatal(err)
		}
		if res.N != 4 || !res.Met {
			t.Fatalf("batch=%d: N=%d met=%v, want stop exactly at MinReps 4", batch, res.N, res.Met)
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := fmt.Errorf("boom")
	if _, err := Run(Config{Metrics: []string{"m"}, Tolerance: 0.1, MinReps: 2},
		func(i int) ([]float64, error) { return nil, boom }); err == nil {
		t.Fatal("replication error not propagated")
	}
	if _, err := Run(Config{Metrics: []string{"m"}, Tolerance: 0.1, MinReps: 2},
		func(i int) ([]float64, error) { return []float64{1, 2}, nil }); err == nil ||
		!strings.Contains(err.Error(), "2 samples for 1 metrics") {
		t.Fatalf("sample-arity mismatch not caught: %v", err)
	}
}

func TestRunConfigValidation(t *testing.T) {
	rep := func(i int) ([]float64, error) { return []float64{1}, nil }
	cases := []Config{
		{Metrics: nil, Tolerance: 0.1},
		{Metrics: []string{"m"}, Tolerance: 0},
		{Metrics: []string{"m"}, Tolerance: -0.1},
		{Metrics: []string{"m"}, Tolerance: math.NaN()},
		{Metrics: []string{"m"}, Tolerance: math.Inf(1)},
		{Metrics: []string{"m"}, Tolerance: 0.1, MinReps: 1},
		{Metrics: []string{"m"}, Tolerance: 0.1, MinReps: 8, MaxReps: 4},
		{Metrics: []string{"m"}, Tolerance: 0.1, Level: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, rep); err == nil {
			t.Fatalf("case %d (%+v): invalid config accepted", i, cfg)
		}
	}
}

func TestRunProgressDeterministicAtFixedBatch(t *testing.T) {
	lines := func() []string {
		var out []string
		_, err := Run(Config{
			Metrics: []string{"a", "b"}, Tolerance: 1e-9, MinReps: 2, MaxReps: 8,
			BatchSize: 2, Progress: func(s string) { out = append(out, s) },
		}, func(i int) ([]float64, error) { return sample(i), nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := lines(), lines()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("progress lines not deterministic:\n%v\nvs\n%v", a, b)
	}
	if len(a) != 3 { // batches at 2, 4, 6; the final batch (8) emits no line
		t.Fatalf("got %d progress lines, want 3: %v", len(a), a)
	}
	for _, l := range a {
		if !strings.Contains(l, "not met yet") {
			t.Fatalf("unexpected progress line %q", l)
		}
	}
}

func TestSeedsDeterministicPrefixNonZeroUnique(t *testing.T) {
	a := Seeds(42, 16)
	b := Seeds(42, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds not deterministic")
	}
	// Prefix property: the stream never re-deals earlier seeds when asked
	// for more.
	long := Seeds(42, 64)
	if !reflect.DeepEqual(a, long[:16]) {
		t.Fatal("Seeds(42, 16) is not a prefix of Seeds(42, 64)")
	}
	seen := make(map[uint64]bool)
	for _, s := range long {
		if s == 0 {
			t.Fatal("seed stream dealt 0")
		}
		if seen[s] {
			t.Fatalf("seed stream dealt duplicate %d", s)
		}
		seen[s] = true
	}
	// Different bases give different streams.
	if reflect.DeepEqual(a, Seeds(43, 16)) {
		t.Fatal("different base seeds produced the same stream")
	}
}
