// Package seqstop implements sequential-stopping replication control:
// grow a replication set in batches and stop as soon as every watched
// metric's Student-t confidence interval meets a requested relative
// half-width, or a replication budget runs out — reporting the achieved
// bound either way.
//
// The engine is deliberately decoupled from what a "replication" is: a
// caller supplies a function mapping replication index i to a vector of
// metric samples (NaN marks a metric unobservable in that replication),
// and the engine owns batching, parallel fan-out, CI recomputation, and
// the stopping decision.
//
// # Determinism contract
//
// The stopping index is
//
//	N* = min{ k : MinReps ≤ k ≤ MaxReps, every metric's CI over
//	           replications [0, k) meets Tolerance }
//
// (or MaxReps if no such k exists). Because replication i is required
// to be a pure function of i — in practice, of the i-th deterministically
// derived seed — N* does not depend on the batch size, the worker-pool
// width, or how far past N* a batch overshot. After each batch the
// engine scans candidate prefixes in increasing order and truncates the
// study to the earliest qualifying prefix, so the returned study is
// byte-identical at any -j and any batch size. The number of
// replications actually executed (Result.Executed) DOES vary with batch
// size; it exists for cost accounting and must never be rendered into a
// deterministic artifact.
package seqstop

import (
	"fmt"
	"math"

	"vanetsim/internal/runner"
	"vanetsim/internal/sim"
	"vanetsim/internal/stats"
)

// Defaults applied by Run for zero-valued Config fields.
const (
	DefaultLevel     = 0.95
	DefaultMinReps   = 4
	DefaultMaxReps   = 64
	DefaultBatchSize = 4
)

// Config controls a sequential-stopping run.
type Config struct {
	// Metrics names the watched metrics, one per sample-vector column.
	Metrics []string
	// Tolerance is the requested relative half-width (0.05 = ±5%) every
	// metric must meet. Must be a finite positive value.
	Tolerance float64
	// Level is the confidence level (0 = 0.95).
	Level float64
	// MinReps is the smallest prefix a verdict may use (0 = 4; ≥ 2 —
	// no interval exists on fewer samples).
	MinReps int
	// MaxReps is the replication budget (0 = 64).
	MaxReps int
	// BatchSize is how many replications run between CI recomputations
	// (0 = 4). Execution-only: it affects wall-clock and overshoot,
	// never the returned study.
	BatchSize int
	// Pool fans a batch's replications across workers; every pool size
	// produces identical output.
	Pool runner.Pool
	// Progress, if non-nil, receives one line per non-final batch. The
	// lines depend only on batch boundaries and the sample values, so a
	// fixed batch size streams deterministic progress.
	Progress func(string)
}

// MetricResult is one watched metric's state at the stopping point.
type MetricResult struct {
	Name string
	CI   stats.CI
	// Missing counts replications in which the metric was unobservable
	// (NaN sample); the CI covers the observed remainder.
	Missing int
}

// Result is a sequential-stopping verdict.
type Result struct {
	// N is the number of replications the verdict uses — the study is
	// exactly the first N replications. Deterministic (see the package
	// contract).
	N int
	// Executed is how many replications actually ran, including batch
	// overshoot past N. Execution detail only: varies with batch size,
	// so it must not appear in deterministic artifacts.
	Executed int
	// Met reports whether every metric met the tolerance (false means
	// the budget was exhausted; Metrics still carries the achieved
	// bounds).
	Met bool
	// Metrics holds the per-metric CIs over the first N replications,
	// in Config.Metrics order.
	Metrics []MetricResult
	// Samples holds the first N replications' sample vectors.
	Samples [][]float64
}

// Run executes the sequential-stopping loop. rep(i) must return one
// sample per configured metric for replication i, as a pure function of
// i; NaN samples mark that metric unobservable in that replication.
func Run(cfg Config, rep func(i int) ([]float64, error)) (*Result, error) {
	if len(cfg.Metrics) == 0 {
		return nil, fmt.Errorf("seqstop: no metrics to watch")
	}
	if !(cfg.Tolerance > 0) || math.IsInf(cfg.Tolerance, 1) {
		return nil, fmt.Errorf("seqstop: tolerance %v is not a positive finite relative half-width", cfg.Tolerance)
	}
	level := cfg.Level
	if level == 0 {
		level = DefaultLevel
	}
	if !(level > 0 && level < 1) {
		return nil, fmt.Errorf("seqstop: confidence level %v outside (0, 1)", level)
	}
	minReps := cfg.MinReps
	if minReps == 0 {
		minReps = DefaultMinReps
	}
	if minReps < 2 {
		return nil, fmt.Errorf("seqstop: MinReps %d < 2: no confidence interval exists on fewer than two replications", minReps)
	}
	maxReps := cfg.MaxReps
	if maxReps == 0 {
		maxReps = DefaultMaxReps
	}
	if maxReps < minReps {
		return nil, fmt.Errorf("seqstop: MaxReps %d < MinReps %d", maxReps, minReps)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}

	samples := make([][]float64, 0, maxReps)
	executed := 0
	scanFrom := minReps
	for executed < maxReps {
		n := batch
		if executed+n > maxReps {
			n = maxReps - executed
		}
		base := executed
		out, err := runner.Map(cfg.Pool, n, func(k int) ([]float64, error) {
			v, err := rep(base + k)
			if err != nil {
				return nil, err
			}
			if len(v) != len(cfg.Metrics) {
				return nil, fmt.Errorf("seqstop: replication %d returned %d samples for %d metrics", base+k, len(v), len(cfg.Metrics))
			}
			return v, nil
		})
		if err != nil {
			return nil, err
		}
		samples = append(samples, out...)
		executed += n
		// Scan candidate prefixes in increasing order so the verdict is
		// the EARLIEST qualifying k, independent of where this batch's
		// boundary happened to land.
		for k := scanFrom; k <= executed; k++ {
			ms, met := evaluate(cfg.Metrics, samples[:k], level, cfg.Tolerance)
			if met {
				return &Result{N: k, Executed: executed, Met: true, Metrics: ms, Samples: samples[:k]}, nil
			}
		}
		// Only ever raise the scan cursor: a batch that ends before
		// MinReps must not lower it below the minimum.
		if executed+1 > scanFrom {
			scanFrom = executed + 1
		}
		if executed < maxReps {
			ms, _ := evaluate(cfg.Metrics, samples, level, cfg.Tolerance)
			progress(fmt.Sprintf("replications %d/%d: tolerance ±%g%% not met yet (worst: %s)",
				executed, maxReps, 100*cfg.Tolerance, worst(ms)))
		}
	}
	// Budget exhausted: report the achieved bound over the full budget.
	ms, met := evaluate(cfg.Metrics, samples, level, cfg.Tolerance)
	return &Result{N: executed, Executed: executed, Met: met, Metrics: ms, Samples: samples}, nil
}

// evaluate computes each metric's observed-sample CI over the given
// replication prefix and whether all of them meet tol.
func evaluate(names []string, samples [][]float64, level, tol float64) ([]MetricResult, bool) {
	out := make([]MetricResult, len(names))
	met := true
	col := make([]float64, len(samples))
	for j, name := range names {
		for i, s := range samples {
			col[i] = s[j]
		}
		ci, missing := stats.MeanCIObserved(col, level)
		out[j] = MetricResult{Name: name, CI: ci, Missing: missing}
		if !ci.Met(tol) {
			met = false
		}
	}
	return out, met
}

// worst renders the least-converged metric for progress lines. Non-finite
// precision (zero/NaN mean, n<2) sorts as least converged.
func worst(ms []MetricResult) string {
	idx, idxP := 0, -1.0
	for i, m := range ms {
		p := m.CI.RelPrecision()
		if math.IsNaN(p) || math.IsInf(p, 0) {
			p = math.Inf(1)
		}
		if p > idxP {
			idx, idxP = i, p
		}
	}
	m := ms[idx]
	p := m.CI.RelPrecision()
	if math.IsNaN(p) || math.IsInf(p, 0) {
		if m.Missing > 0 {
			return fmt.Sprintf("%s unobserved in %d replication(s)", m.Name, m.Missing)
		}
		return fmt.Sprintf("%s precision unbounded", m.Name)
	}
	return fmt.Sprintf("%s ±%.2f%%", m.Name, 100*p)
}

// Seeds returns the first n replication seeds derived from base: a
// labelled RNG stream forked off the base seed, with zero and any
// duplicate draws skipped (the splitmix64 stream makes duplicates
// astronomically unlikely, but a duplicate seed would double-count a
// run and artificially narrow every CI, so the stream is deduplicated
// by construction). Seeds(base, n) is a prefix of Seeds(base, m) for
// n ≤ m, which is what makes replication i a pure function of i: the
// same base seed yields the same i-th replication at any batch size,
// worker count, or tolerance.
func Seeds(base uint64, n int) []uint64 {
	rng := sim.NewRNG(base).Fork("replication/seeds")
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		s := rng.Uint64()
		if s == 0 || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
