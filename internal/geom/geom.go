// Package geom provides the small amount of 2-D vector geometry the
// simulator needs: positions on a flat road plane, distances for the radio
// propagation models, and interpolation for vehicle motion.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the 2-D plane, in metres.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{v.X * k, v.Y * k} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v, avoiding the sqrt when only
// comparisons are needed.
func (v Vec2) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Len() }

// DistSq returns the squared distance between v and w.
func (v Vec2) DistSq(w Vec2) float64 { return v.Sub(w).LenSq() }

// Unit returns the unit vector in the direction of v. The unit vector of
// the zero vector is the zero vector, which lets callers treat "no
// direction" uniformly.
func (v Vec2) Unit() Vec2 {
	l := v.Len()
	if l == 0 {
		return Vec2{}
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates from v to w: t=0 gives v, t=1 gives w. Values
// of t outside [0,1] extrapolate.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return v.Add(w.Sub(v).Scale(t))
}

// ApproxEqual reports whether v and w agree to within tol in each
// coordinate.
func (v Vec2) ApproxEqual(w Vec2, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol
}

// String formats the vector as "(x, y)" with centimetre precision.
func (v Vec2) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }
