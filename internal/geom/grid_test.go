package geom

import (
	"math"
	"slices"
	"testing"
)

// bruteQuery is the reference the grid must match exactly: every stored ID
// within radius of center (boundary inclusive), ascending.
func bruteQuery(pos map[int32]Vec2, center Vec2, radius float64) []int32 {
	var out []int32
	r2 := radius * radius
	for id, p := range pos {
		if p.DistSq(center) <= r2 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// lcg is a tiny deterministic generator so the property sweep never
// depends on test ordering.
type lcg uint64

func (r *lcg) next() uint64 { *r = *r*6364136223846793005 + 1442695040888963407; return uint64(*r) }
func (r *lcg) float(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(r.next()>>11)/float64(1<<53)
}

func TestGridMatchesBruteForce(t *testing.T) {
	const cell = 137.5
	g := NewGrid(cell)
	ref := make(map[int32]Vec2)
	rng := lcg(1)

	update := func(id int32, p Vec2) {
		g.Update(id, p)
		ref[id] = p
	}
	// Random scatter, including negative coordinates.
	for id := int32(0); id < 200; id++ {
		update(id, V(rng.float(-5000, 5000), rng.float(-5000, 5000)))
	}
	// Exact cell-boundary positions: corners and edges of the lattice,
	// where floor bucketing must agree with the distance test.
	id := int32(200)
	for i := -3; i <= 3; i++ {
		update(id, V(float64(i)*cell, 0))
		id++
		update(id, V(float64(i)*cell, -2*cell))
		id++
		update(id, V(float64(i)*cell+cell/2, cell))
		id++
	}
	// Churn: move half the IDs (some across cells), remove a few.
	for i := int32(0); i < 100; i++ {
		update(i, V(rng.float(-5000, 5000), rng.float(-5000, 5000)))
	}
	for i := int32(100); i < 110; i++ {
		g.Remove(i)
		delete(ref, i)
	}

	for trial := 0; trial < 200; trial++ {
		center := V(rng.float(-5200, 5200), rng.float(-5200, 5200))
		radius := rng.float(0, 1500)
		got := g.QueryInto(nil, center, radius)
		want := bruteQuery(ref, center, radius)
		if !slices.Equal(got, want) {
			t.Fatalf("query(%v, %v) = %v, want %v", center, radius, got, want)
		}
	}
}

func TestGridQueryBoundaryInclusive(t *testing.T) {
	g := NewGrid(100)
	g.Update(0, V(250, 0))
	if got := g.QueryInto(nil, V(0, 0), 250); len(got) != 1 {
		t.Fatalf("point exactly at radius excluded: %v", got)
	}
	if got := g.QueryInto(nil, V(0, 0), 249.9999); len(got) != 0 {
		t.Fatalf("point beyond radius included: %v", got)
	}
}

func TestGridUpdateMovesAcrossCells(t *testing.T) {
	g := NewGrid(10)
	g.Update(7, V(5, 5))
	g.Update(7, V(95, -95)) // different cell; must leave the old bucket
	if got := g.QueryInto(nil, V(5, 5), 1); len(got) != 0 {
		t.Fatalf("stale entry left in old cell: %v", got)
	}
	got := g.QueryInto(nil, V(95, -95), 1)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("moved entry missing from new cell: %v", got)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d after a move, want 1", g.Len())
	}
}

func TestGridRemoveAndRebuild(t *testing.T) {
	g := NewGrid(50)
	for id := int32(0); id < 20; id++ {
		g.Update(id, V(float64(id)*40, float64(id%3)*40))
	}
	g.Remove(5)
	g.Remove(5) // double remove is a no-op
	g.Remove(99)
	if g.Len() != 19 {
		t.Fatalf("Len = %d, want 19", g.Len())
	}
	before := g.QueryInto(nil, V(300, 40), 500)
	g.Rebuild(200)
	if g.Cell() != 200 {
		t.Fatalf("Cell = %v after rebuild, want 200", g.Cell())
	}
	after := g.QueryInto(nil, V(300, 40), 500)
	if !slices.Equal(before, after) {
		t.Fatalf("rebuild changed query results: %v vs %v", before, after)
	}
	if _, ok := g.Pos(5); ok {
		t.Fatal("removed ID resurrected by rebuild")
	}
}

func TestGridDegenerateCellPanics(t *testing.T) {
	for _, cell := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v) did not panic", cell)
				}
			}()
			NewGrid(cell)
		}()
	}
}
