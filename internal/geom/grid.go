package geom

import (
	"math"
	"math/bits"
)

// Grid is a uniform spatial hash over points in the plane, keyed by integer
// IDs. It exists for the PHY's neighbor culling: the channel records every
// radio's (slightly stale, slack-bounded) position here and asks for the
// IDs near a transmitter instead of scanning all attached radios.
//
// The grid is purely positional — it knows nothing about time or motion;
// the caller owns the policy of when a stored position is stale enough to
// update. Cells are square with side Cell, held in a map so the road plane
// is unbounded in every direction (negative coordinates included).
//
// QueryInto returns IDs in ascending order. That ordering is load-bearing:
// IDs are radio attach indices, and the channel's determinism contract
// requires culled iteration to visit receivers in exactly the relative
// order the full scan would have.
type Grid struct {
	cell  float64
	cells map[uint64][]int32
	// Per-ID stored state, indexed by ID (dense, grown on demand).
	pos []Vec2
	key []uint64
	in  []bool
	// hits is QueryInto's scratch bitmap, one bit per ID. Emitting set bits
	// word by word yields ascending order without a comparison sort; each
	// query clears only the words it touched.
	hits []uint64
}

// NewGrid creates an empty grid with the given cell side. It panics on a
// non-positive or non-finite cell: a degenerate cell would silently put
// every point in one bucket (or none), defeating the index.
func NewGrid(cell float64) *Grid {
	if !(cell > 0) || math.IsInf(cell, 1) {
		panic("geom: grid cell side must be positive and finite")
	}
	return &Grid{cell: cell, cells: make(map[uint64][]int32)}
}

// Cell returns the cell side length.
func (g *Grid) Cell() float64 { return g.cell }

// cellKey packs the cell coordinates containing p into one map key. Floor
// (not truncation) keeps negative coordinates in their own cells.
func (g *Grid) cellKey(p Vec2) uint64 {
	cx := int32(math.Floor(p.X / g.cell))
	cy := int32(math.Floor(p.Y / g.cell))
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// grow ensures per-ID storage covers id.
func (g *Grid) grow(id int32) {
	for int(id) >= len(g.pos) {
		g.pos = append(g.pos, Vec2{})
		g.key = append(g.key, 0)
		g.in = append(g.in, false)
	}
}

// Update stores p as id's position, moving it between cells as needed.
// Inserting a new ID and moving an existing one are the same operation.
func (g *Grid) Update(id int32, p Vec2) {
	g.grow(id)
	k := g.cellKey(p)
	if g.in[id] {
		if g.key[id] == k {
			g.pos[id] = p
			return
		}
		g.removeFromCell(id, g.key[id])
	}
	g.pos[id] = p
	g.key[id] = k
	g.in[id] = true
	g.cells[k] = append(g.cells[k], id)
}

// Remove deletes id from the grid. Removing an absent ID is a no-op.
func (g *Grid) Remove(id int32) {
	if int(id) >= len(g.in) || !g.in[id] {
		return
	}
	g.removeFromCell(id, g.key[id])
	g.in[id] = false
}

// CellKey returns the packed key of the cell currently holding id, and
// whether id is stored. The key identifies a grid region: two IDs share a
// key exactly when they occupy the same cell. Its bit layout is otherwise
// opaque (callers reducing it to a small range should mix it first — the
// packed fields make raw modulo degenerate).
func (g *Grid) CellKey(id int32) (uint64, bool) {
	if int(id) >= len(g.in) || !g.in[id] {
		return 0, false
	}
	return g.key[id], true
}

// Pos returns id's stored position and whether it is present.
func (g *Grid) Pos(id int32) (Vec2, bool) {
	if int(id) >= len(g.in) || !g.in[id] {
		return Vec2{}, false
	}
	return g.pos[id], true
}

// Len returns the number of stored IDs.
func (g *Grid) Len() int {
	n := 0
	for _, present := range g.in {
		if present {
			n++
		}
	}
	return n
}

func (g *Grid) removeFromCell(id int32, k uint64) {
	bucket := g.cells[k]
	for i, v := range bucket {
		if v == id {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			bucket = bucket[:last]
			break
		}
	}
	if len(bucket) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = bucket
	}
}

// QueryInto appends to dst every stored ID whose position lies within
// radius of center (boundary inclusive), in ascending ID order, and
// returns the extended slice. dst is reused to keep the query
// allocation-free in steady state; pass dst[:0] of a scratch buffer.
//
// Ordering comes from a per-ID scratch bitmap rather than a comparison
// sort: hits set their bit, then the touched word range is swept emitting
// set bits low to high. IDs are dense attach slots, so the sweep covers a
// few words and the whole query stays O(cells scanned + hits).
func (g *Grid) QueryInto(dst []int32, center Vec2, radius float64) []int32 {
	if radius < 0 {
		return dst
	}
	if need := (len(g.pos) + 63) / 64; len(g.hits) < need {
		g.hits = append(g.hits, make([]uint64, need-len(g.hits))...)
	}
	r2 := radius * radius
	cx0 := int32(math.Floor((center.X - radius) / g.cell))
	cx1 := int32(math.Floor((center.X + radius) / g.cell))
	cy0 := int32(math.Floor((center.Y - radius) / g.cell))
	cy1 := int32(math.Floor((center.Y + radius) / g.cell))
	w := g.hits
	lo, hi := len(w), -1
	for cx := cx0; cx <= cx1; cx++ {
		for cy := cy0; cy <= cy1; cy++ {
			k := uint64(uint32(cx))<<32 | uint64(uint32(cy))
			for _, id := range g.cells[k] {
				if g.pos[id].DistSq(center) <= r2 {
					wi := int(id) >> 6
					w[wi] |= 1 << (uint(id) & 63)
					if wi < lo {
						lo = wi
					}
					if wi > hi {
						hi = wi
					}
				}
			}
		}
	}
	for wi := lo; wi <= hi; wi++ {
		word := w[wi]
		if word == 0 {
			continue
		}
		w[wi] = 0
		base := int32(wi << 6)
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// Rebuild re-inserts every present ID with its stored position under a new
// cell side. The channel calls this when a late-attached radio pushes the
// carrier-sense range past the current cell size.
func (g *Grid) Rebuild(cell float64) {
	if !(cell > 0) || math.IsInf(cell, 1) {
		panic("geom: grid cell side must be positive and finite")
	}
	g.cell = cell
	g.cells = make(map[uint64][]int32)
	for id := range g.pos {
		if g.in[id] {
			k := g.cellKey(g.pos[id])
			g.key[id] = k
			g.cells[k] = append(g.cells[k], int32(id))
		}
	}
}
