package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a, b := V(1, 2), V(3, -4)
	if got := a.Add(b); got != V(4, -2) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 6) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestLenDist(t *testing.T) {
	if got := V(3, 4).Len(); got != 5 {
		t.Fatalf("Len = %v, want 5", got)
	}
	if got := V(3, 4).LenSq(); got != 25 {
		t.Fatalf("LenSq = %v, want 25", got)
	}
	if got := V(1, 1).Dist(V(4, 5)); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := V(1, 1).DistSq(V(4, 5)); got != 25 {
		t.Fatalf("DistSq = %v, want 25", got)
	}
}

func TestUnit(t *testing.T) {
	u := V(0, -7).Unit()
	if u != V(0, -1) {
		t.Fatalf("Unit = %v, want (0,-1)", u)
	}
	if z := V(0, 0).Unit(); z != V(0, 0) {
		t.Fatalf("Unit of zero = %v, want zero", z)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, 10) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !V(1, 1).ApproxEqual(V(1.0001, 0.9999), 0.001) {
		t.Fatal("ApproxEqual should hold within tolerance")
	}
	if V(1, 1).ApproxEqual(V(1.1, 1), 0.001) {
		t.Fatal("ApproxEqual should fail outside tolerance")
	}
}

func TestString(t *testing.T) {
	if got := V(1.5, -2).String(); got != "(1.50, -2.00)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: triangle inequality for Dist.
func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := V(float64(ax), float64(ay)), V(float64(bx), float64(by)), V(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Unit has length 1 (for non-zero vectors) and preserves
// direction.
func TestUnitProperty(t *testing.T) {
	f := func(x, y int16) bool {
		v := V(float64(x), float64(y))
		u := v.Unit()
		if v.Len() == 0 {
			return u == Vec2{}
		}
		return math.Abs(u.Len()-1) < 1e-9 && u.Dot(v) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
