package mac80211

import (
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

type upRecorder struct {
	received []*packet.Packet
	done     []*packet.Packet
	doneOK   []bool
}

func (u *upRecorder) RecvFromMac(p *packet.Packet) { u.received = append(u.received, p) }
func (u *upRecorder) MacTxDone(p *packet.Packet, ok bool) {
	u.done = append(u.done, p)
	u.doneOK = append(u.doneOK, ok)
}

type node struct {
	mac *MAC
	ifq queue.Queue
	up  *upRecorder
}

// rig builds n DCF nodes 50 m apart on a line, all in range of each other.
func rig(t *testing.T, n int, cfg Config) (*sim.Scheduler, []*node, *packet.Factory) {
	t.Helper()
	s := sim.New()
	ch := phy.NewChannel(s, phy.DefaultPropagation())
	rng := sim.NewRNG(1234)
	pf := &packet.Factory{}
	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		x := float64(i) * 50
		r := phy.NewRadio(packet.NodeID(i), s, func() geom.Vec2 { return geom.V(x, 0) }, phy.DefaultRadioParams())
		ch.Attach(r)
		up := &upRecorder{}
		ifq := queue.NewDropTail(50, nil)
		m := New(packet.NodeID(i), s, r, ifq, up, pf, rng.Fork(string(rune('a'+i))), cfg)
		nodes[i] = &node{mac: m, ifq: ifq, up: up}
	}
	return s, nodes, pf
}

func send(f *packet.Factory, n *node, dst packet.NodeID, size int) *packet.Packet {
	p := f.New(packet.TypeTCP, size, 0)
	p.IP.Src = n.mac.ID()
	p.IP.Dst = dst
	p.IP.NextHop = dst
	n.ifq.Enqueue(p)
	n.mac.Poke()
	return p
}

func TestUnicastDeliveredAndAcked(t *testing.T) {
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	p := send(f, nodes[0], 1, 1000)
	s.RunUntil(0.1)
	if len(nodes[1].up.received) != 1 || nodes[1].up.received[0].UID != p.UID {
		t.Fatalf("receiver got %d packets", len(nodes[1].up.received))
	}
	if len(nodes[0].up.done) != 1 || !nodes[0].up.doneOK[0] {
		t.Fatal("sender should see MacTxDone(ok=true) after ACK")
	}
	st := nodes[0].mac.Stats()
	if st.TxData != 1 || st.Retries != 0 {
		t.Fatalf("clean channel should need one attempt: %+v", st)
	}
	if nodes[1].mac.Stats().TxAck != 1 {
		t.Fatal("receiver should have sent exactly one ACK")
	}
}

func TestUnicastLatencyIsSmall(t *testing.T) {
	// The paper's headline: DCF access latency is DIFS + backoff + tx, a
	// few milliseconds at most — not TDMA's slot wait.
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	send(f, nodes[0], 1, 1000)
	var deliveredAt sim.Time
	for s.Step() {
		if len(nodes[1].up.received) > 0 {
			deliveredAt = s.Now()
			break
		}
	}
	if deliveredAt == 0 || deliveredAt > 5*sim.Millisecond {
		t.Fatalf("DCF delivery took %v, want a few ms at most", deliveredAt)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 3, cfg)
	send(f, nodes[0], packet.Broadcast, 64)
	s.RunUntil(0.1)
	for i := 1; i < 3; i++ {
		if len(nodes[i].up.received) != 1 {
			t.Fatalf("node %d got %d broadcast copies", i, len(nodes[i].up.received))
		}
		if nodes[i].mac.Stats().TxAck != 0 {
			t.Fatal("broadcast must not be acknowledged")
		}
	}
	if len(nodes[0].up.done) != 1 || !nodes[0].up.doneOK[0] {
		t.Fatal("broadcast completes immediately after transmission")
	}
}

func TestRetryLimitReportsLinkFailure(t *testing.T) {
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	send(f, nodes[0], 42, 1000) // no such node: no ACK will ever come
	s.RunUntil(1)
	if len(nodes[0].up.done) != 1 || nodes[0].up.doneOK[0] {
		t.Fatal("sender must report MacTxDone(ok=false) after retry limit")
	}
	st := nodes[0].mac.Stats()
	if st.TxData != cfg.RetryLimit+1 {
		t.Fatalf("TxData = %d, want RetryLimit+1 = %d", st.TxData, cfg.RetryLimit+1)
	}
	if st.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", st.Drops)
	}
}

func TestContendingSendersBothSucceed(t *testing.T) {
	// Simultaneous backlogs on two nodes: CSMA/CA with random backoff must
	// eventually deliver everything, despite early collisions.
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 3, cfg)
	const n = 30
	for i := 0; i < n; i++ {
		send(f, nodes[0], 2, 800)
		send(f, nodes[1], 2, 800)
	}
	s.RunUntil(2)
	if got := len(nodes[2].up.received); got != 2*n {
		t.Fatalf("delivered %d/%d packets under contention", got, 2*n)
	}
	for i, ok := range append(nodes[0].up.doneOK, nodes[1].up.doneOK...) {
		if !ok {
			t.Fatalf("transmission %d reported failed", i)
		}
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	var uids []uint64
	for i := 0; i < 10; i++ {
		uids = append(uids, send(f, nodes[0], 1, 500).UID)
	}
	s.RunUntil(1)
	if len(nodes[1].up.received) != 10 {
		t.Fatalf("delivered %d/10", len(nodes[1].up.received))
	}
	for i, p := range nodes[1].up.received {
		if p.UID != uids[i] {
			t.Fatal("unicast stream reordered by MAC")
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	cfg := DefaultConfig()
	_, nodes, f := rig(t, 2, cfg)
	p := f.New(packet.TypeTCP, 100, 0)
	p.Mac = packet.MacHdr{Src: 0, Dst: 1, Subtype: packet.MacData}
	nodes[1].mac.RecvFromPhy(p, false)
	nodes[1].mac.RecvFromPhy(p.Clone(), false) // retransmission of same UID
	if len(nodes[1].up.received) != 1 {
		t.Fatalf("duplicate delivered: got %d", len(nodes[1].up.received))
	}
	if nodes[1].mac.Stats().RxDup != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestCorruptedFrameIgnored(t *testing.T) {
	cfg := DefaultConfig()
	_, nodes, f := rig(t, 2, cfg)
	p := f.New(packet.TypeTCP, 100, 0)
	p.Mac = packet.MacHdr{Src: 0, Dst: 1, Subtype: packet.MacData}
	nodes[1].mac.RecvFromPhy(p, true)
	if len(nodes[1].up.received) != 0 || nodes[1].mac.Stats().RxCorrupted != 1 {
		t.Fatal("corrupted frame must be dropped and counted")
	}
}

func TestHiddenFrameNAV(t *testing.T) {
	// A frame addressed elsewhere carries a NAV; an overhearing MAC must
	// defer for its duration.
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 3, cfg)
	// Craft a long NAV reservation heard by node 2.
	nav := f.New(packet.TypeTCP, 100, 0)
	nav.Mac = packet.MacHdr{Src: 0, Dst: 1, Subtype: packet.MacData, Duration: 10 * sim.Millisecond}
	nodes[2].mac.RecvFromPhy(nav, false)
	// Node 2 now wants to send; it must hold off until the NAV expires.
	send(f, nodes[2], 1, 100)
	var deliveredAt sim.Time
	for s.Step() {
		if len(nodes[1].up.received) > 0 {
			deliveredAt = s.Now()
			break
		}
	}
	if deliveredAt < 10*sim.Millisecond {
		t.Fatalf("node transmitted at %v inside another station's NAV", deliveredAt)
	}
}

func TestBackoffWithinBounds(t *testing.T) {
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	for i := 0; i < 50; i++ {
		send(f, nodes[0], 1, 200)
	}
	s.RunUntil(1)
	m := nodes[0].mac
	if m.cw < cfg.CWMin || m.cw > cfg.CWMax {
		t.Fatalf("contention window %d outside [%d, %d]", m.cw, cfg.CWMin, cfg.CWMax)
	}
	if m.backoffSlots < 0 || m.backoffSlots > m.cw {
		t.Fatalf("backoff %d outside [0, cw=%d]", m.backoffSlots, m.cw)
	}
}

func TestConfigDerivedTimes(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DIFS <= cfg.SIFS {
		t.Fatal("DIFS must exceed SIFS (ACK priority)")
	}
	if cfg.AckTimeout() <= cfg.SIFS+cfg.AckTxTime() {
		t.Fatal("ACK timeout must cover SIFS + ACK airtime")
	}
	d1000 := cfg.DataTxTime(1000)
	d500 := cfg.DataTxTime(500)
	if d1000 <= d500 {
		t.Fatal("larger frames must take longer")
	}
	// Serialisation difference should be exactly 500 bytes at the data
	// rate (PLCP is constant).
	want := sim.Time(500 * 8 / cfg.DataRateBps)
	if diff := d1000 - d500; diff < want-sim.Nanosecond || diff > want+sim.Nanosecond {
		t.Fatalf("airtime difference = %v, want %v", diff, want)
	}
}

func TestThroughputExceedsTDMAClass(t *testing.T) {
	// Sanity: saturated one-hop DCF at 11 Mb/s moves at least 2 Mb/s of
	// 1000-byte payloads — the ballpark needed for the paper's trial 3 to
	// beat TDMA.
	cfg := DefaultConfig()
	s, nodes, f := rig(t, 2, cfg)
	const n = 600
	for i := 0; i < n; i++ {
		send(f, nodes[0], 1, 1000)
	}
	// Top the queue back up as it drains.
	var refill func()
	refill = func() {
		for nodes[0].ifq.Len() < 40 {
			send(f, nodes[0], 1, 1000)
		}
		if s.Now() < 1.9 {
			s.Schedule(10*sim.Millisecond, refill)
		}
	}
	s.Schedule(0, refill)
	s.RunUntil(2)
	bits := float64(len(nodes[1].up.received)) * 1000 * 8
	mbps := bits / 2 / 1e6
	if mbps < 2 {
		t.Fatalf("saturated DCF throughput = %.2f Mb/s, want > 2", mbps)
	}
}
