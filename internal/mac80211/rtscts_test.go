package mac80211

import (
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

// hiddenParams narrows carrier sense to the receive range so two senders
// 400 m apart are genuinely hidden from each other while both reach a
// receiver in the middle.
func hiddenParams() phy.RadioParams {
	p := phy.DefaultRadioParams()
	p.CSThreshW = p.RxThreshW
	return p
}

// hiddenRig builds A(0) - B(200) - C(400) with the narrowed carrier sense.
func hiddenRig(t *testing.T, cfg Config) (*sim.Scheduler, []*node, *packet.Factory) {
	t.Helper()
	s := sim.New()
	ch := phy.NewChannel(s, phy.DefaultPropagation())
	rng := sim.NewRNG(77)
	pf := &packet.Factory{}
	xs := []float64{0, 200, 400}
	nodes := make([]*node, len(xs))
	for i, x := range xs {
		x := x
		r := phy.NewRadio(packet.NodeID(i), s, func() geom.Vec2 { return geom.V(x, 0) }, hiddenParams())
		ch.Attach(r)
		up := &upRecorder{}
		ifq := queue.NewDropTail(50, nil)
		m := New(packet.NodeID(i), s, r, ifq, up, pf, rng.Fork(string(rune('a'+i))), cfg)
		nodes[i] = &node{mac: m, ifq: ifq, up: up}
	}
	return s, nodes, pf
}

func TestRTSCTSBasicExchange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSThresholdBytes = 1 // RTS for everything
	s, nodes, f := rig(t, 2, cfg)
	p := send(f, nodes[0], 1, 1000)
	s.RunUntil(0.1)
	if len(nodes[1].up.received) != 1 || nodes[1].up.received[0].UID != p.UID {
		t.Fatal("data not delivered through RTS/CTS exchange")
	}
	st0, st1 := nodes[0].mac.Stats(), nodes[1].mac.Stats()
	if st0.TxRTS != 1 || st1.TxCTS != 1 {
		t.Fatalf("control exchange incomplete: RTS=%d CTS=%d", st0.TxRTS, st1.TxCTS)
	}
	if st0.TxData != 1 || st1.TxAck != 1 {
		t.Fatalf("data/ack incomplete: %+v %+v", st0, st1)
	}
	if len(nodes[0].up.done) != 1 || !nodes[0].up.doneOK[0] {
		t.Fatal("sender should complete successfully")
	}
}

func TestRTSThresholdSelectivity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSThresholdBytes = 800
	s, nodes, f := rig(t, 2, cfg)
	send(f, nodes[0], 1, 500) // below threshold: no RTS
	s.RunUntil(0.05)
	if nodes[0].mac.Stats().TxRTS != 0 {
		t.Fatal("small frame should not use RTS")
	}
	send(f, nodes[0], 1, 1000) // above: RTS
	s.RunUntil(0.1)
	if nodes[0].mac.Stats().TxRTS != 1 {
		t.Fatal("large frame should use RTS")
	}
	if len(nodes[1].up.received) != 2 {
		t.Fatalf("delivered %d/2", len(nodes[1].up.received))
	}
}

func TestRTSBroadcastNeverUsesRTS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSThresholdBytes = 1
	s, nodes, f := rig(t, 3, cfg)
	send(f, nodes[0], packet.Broadcast, 1000)
	s.RunUntil(0.1)
	if nodes[0].mac.Stats().TxRTS != 0 {
		t.Fatal("broadcast must bypass RTS/CTS")
	}
	if len(nodes[1].up.received) != 1 || len(nodes[2].up.received) != 1 {
		t.Fatal("broadcast not delivered")
	}
}

func TestRTSNoCTSRetriesAndDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSThresholdBytes = 1
	s, nodes, f := rig(t, 2, cfg)
	send(f, nodes[0], 42, 1000) // nobody answers
	s.RunUntil(1)
	st := nodes[0].mac.Stats()
	if st.TxRTS != cfg.RetryLimit+1 {
		t.Fatalf("RTS attempts = %d, want RetryLimit+1", st.TxRTS)
	}
	if st.TxData != 0 {
		t.Fatal("data must never be sent without a CTS")
	}
	if len(nodes[0].up.done) != 1 || nodes[0].up.doneOK[0] {
		t.Fatal("sender should report link failure")
	}
}

// The hidden-terminal experiment: A and C cannot hear each other but both
// reach B. Without RTS/CTS their data frames collide at B constantly;
// with it, the CTS from B silences the other sender for the exchange.
func TestHiddenTerminalRTSCTSHelps(t *testing.T) {
	deliver := func(useRTS bool) (delivered int, collided int) {
		cfg := DefaultConfig()
		if useRTS {
			cfg.RTSThresholdBytes = 1
		}
		s, nodes, f := hiddenRig(t, cfg)
		const n = 40
		for i := 0; i < n; i++ {
			send(f, nodes[0], 1, 1000)
			send(f, nodes[2], 1, 1000)
		}
		s.RunUntil(3)
		return len(nodes[1].up.received), nodes[1].mac.Stats().RxCorrupted
	}
	gotPlain, collPlain := deliver(false)
	gotRTS, collRTS := deliver(true)
	if collPlain == 0 {
		t.Fatal("hidden terminals should collide without RTS/CTS")
	}
	if gotRTS <= gotPlain {
		t.Fatalf("RTS/CTS should improve hidden-terminal delivery: %d vs %d", gotRTS, gotPlain)
	}
	if collRTS >= collPlain {
		t.Fatalf("RTS/CTS should reduce data collisions: %d vs %d", collRTS, collPlain)
	}
}
