// Package mac80211 implements the IEEE 802.11 Distributed Coordination
// Function (DCF) used by the paper's trial 3: CSMA/CA with physical and
// virtual carrier sense (NAV), DIFS/SIFS interframe spaces, binary
// exponential backoff, positive acknowledgement of unicast frames, and a
// retry limit whose exhaustion is reported upward as a link failure (which
// AODV uses for route-error detection, as in ns-2).
//
// Compared with TDMA, DCF grants the channel on demand: a braking vehicle's
// first status packet goes out after at most DIFS + backoff rather than
// waiting for an assigned slot. That asymmetry is the whole of the paper's
// trial-1-versus-trial-3 result.
package mac80211

import (
	"fmt"

	"vanetsim/internal/mac"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// Config holds DCF parameters. DefaultConfig models an 802.11b radio at
// 11 Mb/s with long PLCP preambles and 1 Mb/s control frames.
type Config struct {
	SlotTime sim.Time
	SIFS     sim.Time
	DIFS     sim.Time
	// CWMin and CWMax bound the contention window (in slots; the backoff
	// count is drawn uniformly from [0, CW]).
	CWMin, CWMax int
	// DataRateBps clocks data frames; BasicRateBps clocks ACKs.
	DataRateBps, BasicRateBps float64
	// PLCPTime is the physical preamble+header prepended to every frame.
	PLCPTime sim.Time
	// DataHdrBytes and AckBytes are MAC frame overheads.
	DataHdrBytes, AckBytes int
	// RetryLimit is the maximum number of transmissions of one frame
	// before it is dropped and reported as a link failure.
	RetryLimit int
	// MaxPropDelay pads the ACK timeout for the farthest receiver.
	MaxPropDelay sim.Time
	// RTSThresholdBytes enables RTS/CTS for unicast data frames of at
	// least this size; 0 disables the exchange (the default, as in the
	// paper's ns-2 runs). RTS/CTS reserves the medium around a *hidden*
	// sender via the NAV, at the cost of two extra control frames.
	RTSThresholdBytes int
	// RTSBytes and CTSBytes are the control frame sizes.
	RTSBytes, CTSBytes int
}

// DefaultConfig returns 802.11b (11 Mb/s) DCF parameters.
func DefaultConfig() Config {
	return Config{
		SlotTime:     20 * sim.Microsecond,
		SIFS:         10 * sim.Microsecond,
		DIFS:         50 * sim.Microsecond,
		CWMin:        31,
		CWMax:        1023,
		DataRateBps:  11e6,
		BasicRateBps: 1e6,
		PLCPTime:     192 * sim.Microsecond,
		DataHdrBytes: 28,
		AckBytes:     14,
		RetryLimit:   7,
		MaxPropDelay: 2 * sim.Microsecond,
		RTSBytes:     20,
		CTSBytes:     14,
	}
}

// RTSTxTime returns the on-air time of an RTS frame.
func (c Config) RTSTxTime() sim.Time {
	return c.PLCPTime + mac.Duration(c.RTSBytes, c.BasicRateBps)
}

// CTSTxTime returns the on-air time of a CTS frame.
func (c Config) CTSTxTime() sim.Time {
	return c.PLCPTime + mac.Duration(c.CTSBytes, c.BasicRateBps)
}

// CTSTimeout returns how long an RTS sender waits for the CTS.
func (c Config) CTSTimeout() sim.Time {
	return c.SIFS + c.CTSTxTime() + 2*c.MaxPropDelay + c.SlotTime
}

// DataTxTime returns the on-air time of a data frame carrying size bytes.
func (c Config) DataTxTime(size int) sim.Time {
	return c.PLCPTime + mac.Duration(c.DataHdrBytes+size, c.DataRateBps)
}

// AckTxTime returns the on-air time of an ACK frame.
func (c Config) AckTxTime() sim.Time {
	return c.PLCPTime + mac.Duration(c.AckBytes, c.BasicRateBps)
}

// AckTimeout returns how long a sender waits for an ACK before retrying.
func (c Config) AckTimeout() sim.Time {
	return c.SIFS + c.AckTxTime() + 2*c.MaxPropDelay + c.SlotTime
}

// accessPhase tracks where the MAC is in its channel-access procedure.
type accessPhase uint8

const (
	phaseNone accessPhase = iota
	phaseDIFS
	phaseBackoff
)

// Stats counts MAC-level outcomes.
type Stats struct {
	TxData      int // data transmissions, including retries
	TxAck       int // acknowledgements sent
	TxRTS       int // RTS frames sent
	TxCTS       int // CTS responses sent
	TxErrors    int // frames the radio refused (Transmit returned an error)
	Retries     int // retransmission attempts
	Drops       int // frames dropped after RetryLimit
	RxDelivered int // frames handed to the network layer
	RxDup       int // duplicate data frames suppressed
	RxCorrupted int // collision-damaged frames discarded
}

// MAC is one node's DCF instance.
type MAC struct {
	id    packet.NodeID
	sched *sim.Scheduler
	radio *phy.Radio
	ifq   queue.Queue
	up    mac.Upcall
	cfg   Config
	rng   *sim.RNG
	pf    *packet.Factory

	current      *packet.Packet
	retries      int
	cw           int
	backoffSlots int
	phase        accessPhase
	backoffStart sim.Time
	accessTimer  sim.Timer

	waitingAck bool
	ackTimer   sim.Timer
	waitingCTS bool
	ctsTimer   sim.Timer

	navUntil sim.Time
	navTimer sim.Timer

	// Hot-path callbacks, bound once at construction: the access and NAV
	// timers are re-armed on nearly every medium transition, and a fresh
	// method value (or closure) per arming is real allocation traffic at
	// dense fleet sizes.
	difsEndFn    func()
	backoffEndFn func()
	navExpireFn  func()

	txBusy     bool // our radio is clocking out a frame
	pendingAck sim.Timer

	dedup     map[uint64]bool
	dedupFIFO []uint64

	stats Stats

	// Telemetry (nil-safe; see internal/obs). serviceStart stamps when the
	// frame in service left the queue.
	obsBackoffWait *obs.Histogram
	obsRetries     *obs.Histogram
	obsServiceTime *obs.Histogram
	serviceStart   sim.Time

	// spans records retry scheduling for the causal tracer (nil when
	// tracing is disarmed).
	spans *span.Recorder
}

var _ mac.MAC = (*MAC)(nil)
var _ phy.MAC = (*MAC)(nil)

// New creates a DCF MAC for node id and wires it to the radio. The packet
// factory mints ACK frames; rng drives backoff draws.
func New(id packet.NodeID, sched *sim.Scheduler, radio *phy.Radio, ifq queue.Queue, up mac.Upcall, pf *packet.Factory, rng *sim.RNG, cfg Config) *MAC {
	m := &MAC{
		id:    id,
		sched: sched,
		radio: radio,
		ifq:   ifq,
		up:    up,
		cfg:   cfg,
		rng:   rng,
		pf:    pf,
		cw:    cfg.CWMin,
		dedup: make(map[uint64]bool),
	}
	m.difsEndFn = m.onDifsEnd
	m.backoffEndFn = m.onBackoffEnd
	m.navExpireFn = func() {
		m.navTimer = sim.Timer{}
		m.startAccess()
	}
	radio.SetMAC(m)
	return m
}

// ID implements mac.MAC.
func (m *MAC) ID() packet.NodeID { return m.id }

// Stats returns the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// SetObs wires telemetry instruments (each may be nil): completed backoff
// stint durations, per-frame retry counts, and per-frame service time
// (dequeue to success/drop).
func (m *MAC) SetObs(backoffWait, retries, serviceTime *obs.Histogram) {
	m.obsBackoffWait = backoffWait
	m.obsRetries = retries
	m.obsServiceTime = serviceTime
}

// SetSpans wires the causal span recorder (may be nil).
func (m *MAC) SetSpans(rec *span.Recorder) { m.spans = rec }

// Poke implements mac.MAC: takes the next frame from the interface queue
// if none is in service and begins channel access.
func (m *MAC) Poke() {
	if m.current != nil {
		return
	}
	p := m.ifq.Dequeue()
	if p == nil {
		return
	}
	m.current = p
	m.retries = 0
	m.serviceStart = m.sched.Now()
	m.startAccess()
}

// mediumFree reports whether both physical and virtual carrier sense see
// the channel idle and our own transmitter is quiet.
func (m *MAC) mediumFree() bool {
	return !m.radio.CarrierBusy() && m.sched.Now() >= m.navUntil && !m.txBusy
}

// startAccess begins (or defers) the DIFS + backoff procedure for the
// frame in service.
func (m *MAC) startAccess() {
	if m.current == nil || m.phase != phaseNone || m.waitingAck || m.waitingCTS {
		return
	}
	if !m.mediumFree() {
		// A ChannelIdle (or NAV expiry) callback will retry.
		m.armNavTimer()
		return
	}
	m.phase = phaseDIFS
	m.accessTimer = m.sched.ScheduleKind(sim.KindMAC, m.cfg.DIFS, m.difsEndFn)
}

func (m *MAC) onDifsEnd() {
	m.accessTimer = sim.Timer{}
	if !m.mediumFree() {
		m.phase = phaseNone
		m.armNavTimer()
		return
	}
	if m.backoffSlots > 0 {
		m.phase = phaseBackoff
		m.backoffStart = m.sched.Now()
		d := sim.Time(float64(m.backoffSlots)) * m.cfg.SlotTime
		m.accessTimer = m.sched.ScheduleKind(sim.KindMAC, d, m.backoffEndFn)
		return
	}
	m.transmitData()
}

func (m *MAC) onBackoffEnd() {
	m.accessTimer = sim.Timer{}
	m.backoffSlots = 0
	m.obsBackoffWait.ObserveDuration(m.sched.Now() - m.backoffStart)
	if !m.mediumFree() {
		m.phase = phaseNone
		m.armNavTimer()
		return
	}
	m.transmitData()
}

// transmitData puts the frame in service on the air.
func (m *MAC) transmitData() {
	m.phase = phaseNone
	p := m.current
	if p == nil {
		return
	}
	if !m.mediumFree() {
		m.armNavTimer()
		return
	}
	p.Mac.Src = m.id
	p.Mac.Dst = p.IP.NextHop
	p.Mac.Subtype = packet.MacData
	p.Mac.Retries = m.retries
	broadcast := p.Mac.Dst == packet.Broadcast
	if !broadcast && m.cfg.RTSThresholdBytes > 0 && p.Size >= m.cfg.RTSThresholdBytes {
		m.transmitRTS(p)
		return
	}
	m.transmitDataFrame(p, broadcast)
}

// transmitDataFrame clocks out the data frame itself (directly, or as the
// third step of an RTS/CTS exchange).
func (m *MAC) transmitDataFrame(p *packet.Packet, broadcast bool) {
	dur := m.cfg.DataTxTime(p.Size)
	if broadcast {
		p.Mac.Duration = 0
	} else {
		p.Mac.Duration = m.cfg.SIFS + m.cfg.AckTxTime()
	}
	m.stats.TxData++
	m.txBusy = true
	// Schedule our end-of-transmission bookkeeping *before* the radio's
	// own tx-end event so that the ChannelIdle callback the radio emits at
	// the same instant sees txBusy already cleared.
	m.sched.ScheduleKind(sim.KindMAC, dur, func() {
		m.txBusy = false
		if broadcast {
			m.finishCurrent(true)
			return
		}
		m.waitingAck = true
		m.ackTimer = m.sched.ScheduleKind(sim.KindMAC, m.cfg.AckTimeout(), m.onAckTimeout)
	})
	if err := m.radio.Transmit(p, dur); err != nil {
		// The frame never hit the air; the bookkeeping above still runs, so
		// the exchange degrades through the normal ack-timeout path.
		m.stats.TxErrors++
	}
}

// transmitRTS opens an RTS/CTS exchange for the frame in service. The RTS
// NAV reserves the medium for the whole CTS + DATA + ACK sequence.
func (m *MAC) transmitRTS(p *packet.Packet) {
	rts := m.pf.New(packet.TypeMACAck, m.cfg.RTSBytes, m.sched.Now())
	rts.Mac = packet.MacHdr{
		Src:     m.id,
		Dst:     p.Mac.Dst,
		Subtype: packet.MacRTS,
		Duration: 3*m.cfg.SIFS + m.cfg.CTSTxTime() +
			m.cfg.DataTxTime(p.Size) + m.cfg.AckTxTime(),
	}
	dur := m.cfg.RTSTxTime()
	m.stats.TxRTS++
	m.txBusy = true
	m.sched.ScheduleKind(sim.KindMAC, dur, func() {
		m.txBusy = false
		m.waitingCTS = true
		m.ctsTimer = m.sched.ScheduleKind(sim.KindMAC, m.cfg.CTSTimeout(), m.onCtsTimeout)
	})
	if err := m.radio.Transmit(rts, dur); err != nil {
		m.stats.TxErrors++ // degrade through the CTS timeout
	}
}

// onCtsTimeout handles a missing CTS like a missing ACK: back off and
// retry the whole exchange.
func (m *MAC) onCtsTimeout() {
	m.ctsTimer = sim.Timer{}
	m.waitingCTS = false
	m.retries++
	if m.retries > m.cfg.RetryLimit {
		m.stats.Drops++
		m.cw = m.cfg.CWMin
		m.finishCurrent(false)
		return
	}
	m.stats.Retries++
	m.spans.Record(span.OpRetry, span.CauseCtsTimeout, m.id, m.current)
	m.cw = min(2*m.cw+1, m.cfg.CWMax)
	m.backoffSlots = m.rng.Intn(m.cw + 1)
	m.startAccess()
}

func (m *MAC) onAckTimeout() {
	m.ackTimer = sim.Timer{}
	m.waitingAck = false
	m.retries++
	if m.retries > m.cfg.RetryLimit {
		m.stats.Drops++
		m.cw = m.cfg.CWMin
		m.finishCurrent(false)
		return
	}
	m.stats.Retries++
	m.spans.Record(span.OpRetry, span.CauseAckTimeout, m.id, m.current)
	m.cw = min(2*m.cw+1, m.cfg.CWMax)
	m.backoffSlots = m.rng.Intn(m.cw + 1)
	m.startAccess()
}

// finishCurrent completes service of the current frame (success or drop),
// draws the post-transmission backoff, reports upward, and pulls the next
// frame.
func (m *MAC) finishCurrent(ok bool) {
	p := m.current
	m.current = nil
	m.obsRetries.Observe(float64(m.retries))
	m.obsServiceTime.ObserveDuration(m.sched.Now() - m.serviceStart)
	m.retries = 0
	if ok {
		m.cw = m.cfg.CWMin
	}
	m.backoffSlots = m.rng.Intn(m.cw + 1)
	m.up.MacTxDone(p, ok)
	m.Poke()
	if m.current != nil {
		m.startAccess()
	}
}

// RecvFromPhy implements phy.MAC.
func (m *MAC) RecvFromPhy(p *packet.Packet, corrupted bool) {
	if corrupted {
		m.stats.RxCorrupted++
		m.radio.ReleaseFrame(p)
		return
	}
	// Virtual carrier sense: honour the NAV of frames addressed elsewhere.
	if p.Mac.Dst != m.id && p.Mac.Duration > 0 {
		end := m.sched.Now() + p.Mac.Duration
		if end > m.navUntil {
			m.navUntil = end
			m.armNavTimer()
		}
	}
	// Every arm below that does not hand p to the network layer recycles
	// it: under a dense fleet almost every decoded frame is overheard
	// traffic or MAC control, and releasing those is what keeps the
	// receive path allocation-free in steady state. The handlers consume
	// header fields before the release (scheduleCTS and scheduleAck copy
	// what their deferred callbacks need).
	switch p.Mac.Subtype {
	case packet.MacAck:
		if p.Mac.Dst == m.id && m.waitingAck {
			m.ackTimer.Cancel()
			m.ackTimer = sim.Timer{}
			m.waitingAck = false
			m.finishCurrent(true)
		}
		m.radio.ReleaseFrame(p)
	case packet.MacRTS:
		if p.Mac.Dst == m.id {
			m.scheduleCTS(p)
		}
		m.radio.ReleaseFrame(p)
	case packet.MacCTS:
		if p.Mac.Dst == m.id && m.waitingCTS {
			m.ctsTimer.Cancel()
			m.ctsTimer = sim.Timer{}
			m.waitingCTS = false
			m.sendDataAfterCTS()
		}
		m.radio.ReleaseFrame(p)
	case packet.MacData:
		switch p.Mac.Dst {
		case m.id:
			m.scheduleAck(p)
			if m.isDup(p.UID) {
				m.stats.RxDup++
				m.radio.ReleaseFrame(p)
				return
			}
			m.stats.RxDelivered++
			m.up.RecvFromMac(p)
		case packet.Broadcast:
			m.stats.RxDelivered++
			m.up.RecvFromMac(p)
		default:
			m.radio.ReleaseFrame(p) // overheard unicast: NAV already honoured
		}
	default:
		m.radio.ReleaseFrame(p)
	}
}

// ReleaseDelivered lets the network layer recycle a received frame it has
// fully consumed (see netlayer's frameReleaser).
func (m *MAC) ReleaseDelivered(p *packet.Packet) { m.radio.ReleaseFrame(p) }

// scheduleAck sends an ACK one SIFS after the data frame ended. ACKs are
// sent regardless of medium state — SIFS priority is what makes them win
// the channel.
func (m *MAC) scheduleAck(data *packet.Packet) {
	to := data.Mac.Src
	m.pendingAck = m.sched.ScheduleKind(sim.KindMAC, m.cfg.SIFS, func() {
		m.pendingAck = sim.Timer{}
		if m.txBusy {
			return // pathological overlap; drop the ACK, sender retries
		}
		ack := m.pf.New(packet.TypeMACAck, m.cfg.AckBytes, m.sched.Now())
		ack.Mac = packet.MacHdr{Src: m.id, Dst: to, Subtype: packet.MacAck}
		m.stats.TxAck++
		m.txBusy = true
		dur := m.cfg.AckTxTime()
		// As in transmitData: clear txBusy before the radio's same-instant
		// ChannelIdle so a deferred access can resume.
		m.sched.ScheduleKind(sim.KindMAC, dur, func() { m.txBusy = false })
		if err := m.radio.Transmit(ack, dur); err != nil {
			m.stats.TxErrors++ // lost ACK; the data sender retries
		}
	})
}

// scheduleCTS answers an RTS after SIFS, granting the reservation.
func (m *MAC) scheduleCTS(rts *packet.Packet) {
	to := rts.Mac.Src
	navGrant := rts.Mac.Duration - m.cfg.SIFS - m.cfg.CTSTxTime()
	if navGrant < 0 {
		navGrant = 0
	}
	m.sched.ScheduleKind(sim.KindMAC, m.cfg.SIFS, func() {
		if m.txBusy {
			return // pathological overlap; RTS sender times out and retries
		}
		cts := m.pf.New(packet.TypeMACAck, m.cfg.CTSBytes, m.sched.Now())
		cts.Mac = packet.MacHdr{Src: m.id, Dst: to, Subtype: packet.MacCTS, Duration: navGrant}
		m.stats.TxCTS++
		m.txBusy = true
		dur := m.cfg.CTSTxTime()
		m.sched.ScheduleKind(sim.KindMAC, dur, func() { m.txBusy = false })
		if err := m.radio.Transmit(cts, dur); err != nil {
			m.stats.TxErrors++ // lost CTS; the RTS sender times out
		}
	})
}

// sendDataAfterCTS transmits the reserved data frame one SIFS after the
// CTS arrived.
func (m *MAC) sendDataAfterCTS() {
	m.sched.ScheduleKind(sim.KindMAC, m.cfg.SIFS, func() {
		p := m.current
		if p == nil || m.txBusy {
			return
		}
		m.transmitDataFrame(p, false)
	})
}

// isDup records and tests receipt of a data frame UID, bounding memory
// with FIFO eviction.
func (m *MAC) isDup(uid uint64) bool {
	if m.dedup[uid] {
		return true
	}
	m.dedup[uid] = true
	m.dedupFIFO = append(m.dedupFIFO, uid)
	const window = 128
	if len(m.dedupFIFO) > window {
		delete(m.dedup, m.dedupFIFO[0])
		m.dedupFIFO = m.dedupFIFO[1:]
	}
	return false
}

// ChannelBusy implements phy.MAC: pause any access procedure.
func (m *MAC) ChannelBusy() {
	switch m.phase {
	case phaseDIFS:
		// DIFS must restart from scratch after the medium clears.
		m.accessTimer.Cancel()
		m.accessTimer = sim.Timer{}
		m.phase = phaseNone
	case phaseBackoff:
		// Freeze the countdown at whole slots already consumed.
		elapsed := m.sched.Now() - m.backoffStart
		consumed := int(float64(elapsed / m.cfg.SlotTime))
		m.backoffSlots -= consumed
		if m.backoffSlots < 0 {
			m.backoffSlots = 0
		}
		m.accessTimer.Cancel()
		m.accessTimer = sim.Timer{}
		m.phase = phaseNone
	}
}

// ChannelIdle implements phy.MAC: resume access if a frame is waiting.
// Idempotent, as the radio may report idle more than once.
func (m *MAC) ChannelIdle() { m.startAccess() }

// armNavTimer schedules a wakeup at NAV expiry so a deferred access
// resumes even without a physical idle transition.
func (m *MAC) armNavTimer() {
	if m.navUntil <= m.sched.Now() {
		return
	}
	if m.navTimer.Active() && m.navTimer.When() >= m.navUntil {
		return
	}
	m.navTimer.Cancel()
	until := m.navUntil
	m.navTimer = m.sched.AtKind(sim.KindMAC, until, m.navExpireFn)
}

// String identifies the MAC in logs.
func (m *MAC) String() string { return fmt.Sprintf("dcf(%v)", m.id) }
