package packet

import (
	"testing"
)

type fakePayload struct {
	val int
}

func (f *fakePayload) ClonePayload() Payload {
	c := *f
	return &c
}

func TestFactoryUIDsUnique(t *testing.T) {
	var f Factory
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		p := f.New(TypeTCP, 1000, 0)
		if seen[p.UID] {
			t.Fatalf("duplicate UID %d", p.UID)
		}
		seen[p.UID] = true
	}
	if f.Allocated() != 1000 {
		t.Fatalf("Allocated = %d, want 1000", f.Allocated())
	}
}

func TestFactoriesIndependent(t *testing.T) {
	var a, b Factory
	p1 := a.New(TypeTCP, 100, 0)
	p2 := b.New(TypeTCP, 100, 0)
	if p1.UID != p2.UID {
		t.Fatalf("independent factories should both start at 1: %d vs %d", p1.UID, p2.UID)
	}
}

func TestNewDefaults(t *testing.T) {
	var f Factory
	p := f.New(TypeCBR, 512, 3.5)
	if p.Size != 512 || p.Type != TypeCBR || p.CreatedAt != 3.5 {
		t.Fatalf("unexpected packet fields: %+v", p)
	}
	if p.IP.Src != None || p.IP.Dst != None || p.IP.NextHop != None {
		t.Fatalf("IP header not initialised to None: %+v", p.IP)
	}
	if p.Mac.Src != None || p.Mac.Dst != None {
		t.Fatalf("MAC header not initialised to None: %+v", p.Mac)
	}
}

func TestCloneIndependence(t *testing.T) {
	var f Factory
	p := f.New(TypeTCP, 1000, 1)
	p.TCP = &TCPHdr{Seq: 5}
	p.Payload = &fakePayload{val: 7}
	p.IP.TTL = 30

	q := p.Clone()
	q.TCP.Seq = 99
	q.Payload.(*fakePayload).val = 99
	q.IP.TTL = 1
	q.NumForwards = 3

	if p.TCP.Seq != 5 {
		t.Fatalf("clone mutated original TCP header: seq=%d", p.TCP.Seq)
	}
	if p.Payload.(*fakePayload).val != 7 {
		t.Fatal("clone mutated original payload")
	}
	if p.IP.TTL != 30 || p.NumForwards != 0 {
		t.Fatal("clone mutated original IP header")
	}
	if q.UID != p.UID {
		t.Fatal("clone must preserve UID (same logical packet)")
	}
}

func TestCloneNilSubfields(t *testing.T) {
	var f Factory
	p := f.New(TypeAODV, 48, 0)
	q := p.Clone()
	if q.TCP != nil || q.Payload != nil {
		t.Fatal("clone invented sub-headers")
	}
}

func TestNodeIDString(t *testing.T) {
	cases := map[NodeID]string{
		Broadcast: "bcast",
		None:      "none",
		7:         "7",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Fatalf("NodeID(%d).String() = %q, want %q", int32(id), got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeTCP:  "tcp",
		TypeAck:  "ack",
		TypeCBR:  "cbr",
		TypeAODV: "AODV",
		TypeEBL:  "ebl",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Fatalf("Type.String() = %q, want %q", got, want)
		}
	}
	if got := Type(200).String(); got != "type(200)" {
		t.Fatalf("unknown type string = %q", got)
	}
}

func TestIsControl(t *testing.T) {
	if !TypeAODV.IsControl() {
		t.Fatal("AODV must be control traffic")
	}
	for _, ty := range []Type{TypeTCP, TypeAck, TypeCBR, TypeEBL} {
		if ty.IsControl() {
			t.Fatalf("%v must not be control traffic", ty)
		}
	}
}

func TestPacketString(t *testing.T) {
	var f Factory
	p := f.New(TypeTCP, 1040, 0)
	p.IP.Src, p.IP.Dst = 1, 2
	want := "pkt{uid=1 tcp 1040B 1->2}"
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
