// Package packet defines the unit of data exchanged between all layers of
// the simulated network stack, in the style of ns-2: one flat structure
// carrying every layer's header, passed by pointer down the sending stack
// and cloned at the broadcast boundary so that independent receivers never
// alias each other's mutable fields.
package packet

import (
	"fmt"

	"vanetsim/internal/sim"
)

// NodeID identifies a node (vehicle) in the scenario. IDs are small dense
// integers assigned by the scenario builder; they double as IP and MAC
// addresses, as in ns-2's flat addressing.
type NodeID int32

// Broadcast is the all-nodes destination address.
const Broadcast NodeID = -1

// None marks an unset node field (e.g. next hop before routing).
const None NodeID = -2

// String formats the ID, with the two sentinels named.
func (n NodeID) String() string {
	switch n {
	case Broadcast:
		return "bcast"
	case None:
		return "none"
	default:
		return fmt.Sprintf("%d", int32(n))
	}
}

// Type classifies a packet by the protocol that originated it, mirroring
// ns-2's packet_t. The type drives queue priority and trace output.
type Type uint8

// Packet types.
const (
	TypeTCP    Type = iota // TCP data segment
	TypeAck                // TCP cumulative acknowledgement
	TypeCBR                // raw CBR datagram over UDP
	TypeAODV               // AODV control packet (RREQ/RREP/RERR/HELLO)
	TypeMACAck             // 802.11 MAC-level acknowledgement frame
	TypeEBL                // extended-brake-light status message (over UDP)
)

var typeNames = [...]string{"tcp", "ack", "cbr", "AODV", "mac-ack", "ebl"}

// String returns the ns-2-style lowercase type name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// IsControl reports whether the packet is routing-protocol control traffic,
// which PriQueue services ahead of data.
func (t Type) IsControl() bool { return t == TypeAODV }

// MacSubtype distinguishes frame roles at the MAC layer.
type MacSubtype uint8

// MAC frame subtypes.
const (
	MacData MacSubtype = iota
	MacAck
	MacRTS
	MacCTS
	// MacJam marks deliberate interference from a jammer node; receivers
	// never deliver it upward, but it occupies the medium and corrupts
	// overlapping receptions like any other energy.
	MacJam
)

// MacHdr is the link-layer header.
type MacHdr struct {
	Src, Dst NodeID
	Subtype  MacSubtype
	// Duration is the NAV value: time the medium will remain busy after
	// this frame, used for 802.11 virtual carrier sense.
	Duration sim.Time
	// Retries counts MAC-level retransmissions of this frame.
	Retries int
}

// IPHdr is the network-layer header.
type IPHdr struct {
	Src, Dst NodeID
	SrcPort  int
	DstPort  int
	TTL      int
	// NextHop is the link-layer destination chosen by routing; Broadcast
	// for flooded packets.
	NextHop NodeID
}

// TCPHdr is the transport header for TypeTCP and TypeAck packets. Sequence
// numbers count segments (ns-2 convention), not bytes.
type TCPHdr struct {
	Seq int // segment sequence number (data) or highest in-order seq (ack)
	// Echo carries the timestamp of the data segment being acknowledged,
	// for RTT sampling (only meaningful on acks of first transmissions).
	Echo sim.Time
	// Retransmit marks a retransmitted data segment, so the receiver's
	// delay bookkeeping and Karn's algorithm can ignore it.
	Retransmit bool
}

// Payload is protocol-specific packet content (AODV messages, EBL brake
// status). Payloads must be clonable because broadcast delivery hands each
// receiver its own copy of the packet.
type Payload interface {
	ClonePayload() Payload
}

// ReusablePayload is an optional Payload extension for pooled packets.
// ClonePayloadOnto copies the receiver's value onto old — the payload left
// behind in a recycled packet — when old has the same concrete type,
// returning the reused object and true; otherwise it returns nil, false
// and the caller falls back to ClonePayload. Implementations exist for the
// high-rate payloads (AODV control, brake status) so that steady-state
// broadcast cloning allocates neither packets nor payloads.
type ReusablePayload interface {
	Payload
	ClonePayloadOnto(old Payload) (Payload, bool)
}

// Packet is the simulator's protocol data unit.
type Packet struct {
	UID  uint64 // unique per scenario, assigned by Factory
	Type Type
	// Size is the packet length in bytes at the network layer (payload +
	// transport + IP headers). The MAC adds its own framing overhead when
	// computing transmission duration.
	Size int

	// CreatedAt is when the originating application or agent built the
	// packet; SentAt is when the transport first put it on the wire. The
	// paper's one-way delay is receive time minus SentAt.
	CreatedAt sim.Time
	SentAt    sim.Time

	Mac MacHdr
	IP  IPHdr
	TCP *TCPHdr

	// Payload carries protocol-specific content for AODV and EBL packets.
	Payload Payload

	// NumForwards counts network-layer hops taken so far.
	NumForwards int
}

// Clone returns a deep copy of the packet. Header structs are copied by
// value; TCP header and payload are duplicated so a forwarder or broadcast
// receiver can mutate its copy freely.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.TCP != nil {
		tcp := *p.TCP
		q.TCP = &tcp
	}
	if p.Payload != nil {
		q.Payload = p.Payload.ClonePayload()
	}
	return &q
}

// CloneInto deep-copies p into dst, reusing dst's allocation (and its TCP
// header allocation, when both packets carry one). It is Clone for pooled
// destinations: the PHY channel recycles released broadcast clones through
// a free list, and this is how a recycled struct is repopulated. When the
// recycled packet still carries a payload of the same concrete type, the
// payload allocation is reused too (see ReusablePayload) — the release
// contract guarantees nothing upstack retained it. Returns dst.
func (p *Packet) CloneInto(dst *Packet) *Packet {
	tcp := dst.TCP
	old := dst.Payload
	*dst = *p
	if p.TCP != nil {
		if tcp == nil {
			tcp = new(TCPHdr)
		}
		*tcp = *p.TCP
		dst.TCP = tcp
	}
	if p.Payload != nil {
		if r, ok := p.Payload.(ReusablePayload); ok && old != nil {
			if q, ok := r.ClonePayloadOnto(old); ok {
				dst.Payload = q
				return dst
			}
		}
		dst.Payload = p.Payload.ClonePayload()
	}
	return dst
}

// String summarises the packet for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{uid=%d %s %dB %v->%v}", p.UID, p.Type, p.Size, p.IP.Src, p.IP.Dst)
}

// Factory allocates packet UIDs for one scenario. It is a struct rather
// than a package-level counter so that concurrently running scenarios (and
// tests) never share state.
type Factory struct {
	next uint64
}

// New returns a fresh packet of the given type and size with a unique UID
// and the creation timestamp filled in.
func (f *Factory) New(t Type, size int, at sim.Time) *Packet {
	f.next++
	return &Packet{
		UID:       f.next,
		Type:      t,
		Size:      size,
		CreatedAt: at,
		IP:        IPHdr{Src: None, Dst: None, NextHop: None},
		Mac:       MacHdr{Src: None, Dst: None},
	}
}

// Allocated returns how many packets this factory has created.
func (f *Factory) Allocated() uint64 { return f.next }
