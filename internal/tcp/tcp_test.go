package tcp_test

import (
	"math"
	"testing"

	"vanetsim/internal/app"
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
	"vanetsim/internal/tcp"
)

func fixed(x, y float64) phy.PositionFn {
	return func() geom.Vec2 { return geom.V(x, y) }
}

// pair builds a two-node 802.11 world with a TCP flow 0 -> 1.
func pair(t *testing.T, cfg tcp.Config) (*scenario.World, *tcp.Sender, *tcp.Sink) {
	t.Helper()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 99)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	return w, snd, snk
}

func TestSingleSegmentTransfer(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, snk := pair(t, cfg)
	snd.SendBytes(cfg.SegmentSize)
	w.Sched.RunUntil(2)
	if snk.Bytes() != cfg.SegmentSize {
		t.Fatalf("sink bytes = %d, want %d", snk.Bytes(), cfg.SegmentSize)
	}
	st := snd.Stats()
	if st.SegmentsSent != 1 || st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("clean transfer stats: %+v", st)
	}
	if snd.Outstanding() != 0 {
		t.Fatal("segment still outstanding after ACK")
	}
}

func TestBulkTransferInOrderComplete(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, snk := pair(t, cfg)
	const n = 200
	var seqs []int
	var lastDelivery sim.Time
	snk.OnRecv(func(p *packet.Packet, at sim.Time) {
		seqs = append(seqs, p.TCP.Seq)
		lastDelivery = at
	})
	snd.SendBytes(n * cfg.SegmentSize)
	w.Sched.RunUntil(60)
	if snk.Bytes() != n*cfg.SegmentSize {
		t.Fatalf("sink bytes = %d, want %d", snk.Bytes(), n*cfg.SegmentSize)
	}
	// Over a clean one-hop link the stream arrives strictly in order.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("out-of-order arrival at %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
	if lastDelivery == 0 {
		t.Fatal("no deliveries observed")
	}
}

func TestCwndGrowsInSlowStart(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, _ := pair(t, cfg)
	if snd.Cwnd() != 1 {
		t.Fatalf("initial cwnd = %v, want 1", snd.Cwnd())
	}
	snd.SendBytes(50 * cfg.SegmentSize)
	w.Sched.RunUntil(5)
	if snd.Cwnd() != cfg.MaxCwnd {
		t.Fatalf("cwnd = %v after clean bulk transfer, want cap %v", snd.Cwnd(), cfg.MaxCwnd)
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, _ := pair(t, cfg)
	snd.SendBytes(100 * cfg.SegmentSize)
	// At every step, in-flight segments never exceed the window cap.
	for i := 0; i < 200000 && w.Sched.Step(); i++ {
		if float64(snd.Outstanding()) > cfg.MaxCwnd {
			t.Fatalf("outstanding %d exceeds max window %v", snd.Outstanding(), cfg.MaxCwnd)
		}
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	// Two hops with an intermediate: contention and ifq pressure are not
	// enough to force loss here, so instead make the sink unreachable for
	// a while by dropping the route — simplest honest loss is a dead
	// receiver that comes back.
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	pos := geom.V(100, 0)
	w.AddNode(1, func() geom.Vec2 { return pos })
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	snd.SendBytes(5 * cfg.SegmentSize)
	w.Sched.RunUntil(1)
	if snk.Bytes() != 5*cfg.SegmentSize {
		t.Fatal("setup transfer failed")
	}
	// Receiver vanishes mid-transfer, then returns.
	pos = geom.V(5000, 0)
	snd.SendBytes(5 * cfg.SegmentSize)
	w.Sched.RunUntil(3)
	pos = geom.V(100, 0)
	w.Sched.RunUntil(60)
	if snk.Bytes() != 10*cfg.SegmentSize {
		t.Fatalf("sink bytes = %d, want %d after recovery", snk.Bytes(), 10*cfg.SegmentSize)
	}
	if snd.Stats().Retransmits == 0 && snd.Stats().Timeouts == 0 {
		t.Fatal("outage must have forced loss recovery")
	}
}

func TestReceiverDeliversExactlyOnceInOrder(t *testing.T) {
	// Even with retransmissions (from the outage scenario above), the
	// cumulative byte count must never double-count a segment.
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	pos := geom.V(100, 0)
	w.AddNode(1, func() geom.Vec2 { return pos })
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	const n = 30
	snd.SendBytes(n * cfg.SegmentSize)
	w.Sched.RunUntil(0.3)
	pos = geom.V(5000, 0)
	w.Sched.RunUntil(1.5)
	pos = geom.V(100, 0)
	w.Sched.RunUntil(120)
	if snk.Bytes() != n*cfg.SegmentSize {
		t.Fatalf("sink bytes = %d, want exactly %d", snk.Bytes(), n*cfg.SegmentSize)
	}
}

func TestOneWayDelayStampSurvivesRetransmit(t *testing.T) {
	// A retransmitted segment must carry its first-transmission time so
	// the paper's one-way delay includes recovery latency.
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	pos := geom.V(5000, 0) // out of range from the start
	w.AddNode(1, func() geom.Vec2 { return pos })
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	var delays []sim.Time
	snk.OnRecv(func(p *packet.Packet, at sim.Time) {
		delays = append(delays, at-p.SentAt)
	})
	snd.SendBytes(cfg.SegmentSize)
	w.Sched.RunUntil(10)
	pos = geom.V(100, 0) // now reachable; a retransmission delivers it
	w.Sched.RunUntil(120)
	if len(delays) == 0 {
		t.Fatal("segment never delivered")
	}
	if delays[0] < 5 {
		t.Fatalf("one-way delay %v too small: retransmission lost its original stamp", delays[0])
	}
}

func TestCBROverTCPPacesBytes(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, snk := pair(t, cfg)
	const rate = 400_000.0 // 400 kb/s, well under link capacity
	cbr := app.NewCBR(w.Sched, snd, cfg.SegmentSize, rate)
	cbr.Start()
	w.Sched.RunUntil(10)
	cbr.Stop()
	w.Sched.RunUntil(12)
	gotRate := float64(snk.Bytes()) * 8 / 10
	if math.Abs(gotRate-rate)/rate > 0.05 {
		t.Fatalf("delivered rate = %.0f b/s, want ~%.0f", gotRate, rate)
	}
	if cbr.Running() {
		t.Fatal("CBR still running after Stop")
	}
}

func TestFTPGreedySaturates(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w, snd, snk := pair(t, cfg)
	app.NewFTP(snd).Start()
	w.Sched.RunUntil(2)
	// 11 Mb/s link, window 20: expect multiple Mb/s of goodput.
	mbps := float64(snk.Bytes()) * 8 / 2 / 1e6
	if mbps < 2 {
		t.Fatalf("FTP goodput = %.2f Mb/s, want > 2", mbps)
	}
}

func TestSinkCountsDuplicates(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	// Hand-deliver the same segment twice.
	mk := func() *packet.Packet {
		p := w.PF.New(packet.TypeTCP, cfg.SegmentSize+cfg.HdrBytes, 0)
		p.IP = packet.IPHdr{Src: 0, Dst: 1, SrcPort: 100, DstPort: 200}
		p.TCP = &packet.TCPHdr{Seq: 1}
		return p
	}
	snk.RecvFromNet(mk())
	snk.RecvFromNet(mk())
	if snk.Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", snk.Stats().Duplicates)
	}
	if snk.Bytes() != cfg.SegmentSize {
		t.Fatalf("bytes double-counted: %d", snk.Bytes())
	}
	if snk.Stats().AcksSent != 2 {
		t.Fatal("every arrival must be acknowledged")
	}
}

func TestSinkBuffersOutOfOrder(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	mk := func(seq int) *packet.Packet {
		p := w.PF.New(packet.TypeTCP, cfg.SegmentSize+cfg.HdrBytes, 0)
		p.IP = packet.IPHdr{Src: 0, Dst: 1, SrcPort: 100, DstPort: 200}
		p.TCP = &packet.TCPHdr{Seq: seq}
		return p
	}
	snk.RecvFromNet(mk(2)) // hole at 1
	snk.RecvFromNet(mk(3))
	if snk.Stats().OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", snk.Stats().OutOfOrder)
	}
	snk.RecvFromNet(mk(1)) // fills the hole; cumulative point jumps to 3
	if snk.Bytes() != 3*cfg.SegmentSize {
		t.Fatalf("bytes = %d, want 3 segments", snk.Bytes())
	}
}

func TestSenderPanicsOnBadConfig(t *testing.T) {
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 5)
	w.AddNode(0, fixed(0, 0))
	cfg := tcp.DefaultConfig()
	cfg.SegmentSize = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero segment size did not panic")
		}
	}()
	tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
}

func TestTwoFlowsShareOneNode(t *testing.T) {
	// The paper's platoon: one lead streams to two followers over
	// separate TCP connections sharing one stack.
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 77)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(25, 0))
	w.AddNode(2, fixed(50, 0))
	s1 := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 101, 1, 200, cfg)
	s2 := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 102, 2, 200, cfg)
	k1 := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)
	k2 := tcp.NewSink(w.Sched, w.Nodes[2].Net, w.PF, 200, cfg)
	const n = 50
	s1.SendBytes(n * cfg.SegmentSize)
	s2.SendBytes(n * cfg.SegmentSize)
	w.Sched.RunUntil(30)
	if k1.Bytes() != n*cfg.SegmentSize || k2.Bytes() != n*cfg.SegmentSize {
		t.Fatalf("flows incomplete: %d and %d bytes", k1.Bytes(), k2.Bytes())
	}
}
