package tcp_test

import (
	"math"
	"testing"

	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
	"vanetsim/internal/tcp"
)

// scriptNet is a loopback "network" with a fixed one-way delay and a
// scripted set of first-transmission drops, for deterministic
// congestion-control unit tests. Sender and sink share one node; routing
// is by destination port.
type scriptNet struct {
	s     *sim.Scheduler
	net   *netlayer.Net
	delay sim.Time

	dropFirstTx map[int]bool // data seqs whose first transmission is lost
	dropped     map[int]bool
	delivered   int
}

type idleMAC struct{}

func (idleMAC) ID() packet.NodeID { return 1 }
func (idleMAC) Poke()             {}

func newScriptNet(s *sim.Scheduler, delay sim.Time) *scriptNet {
	n := netlayer.New(1)
	n.Attach(queue.NewDropTail(64, nil), idleMAC{})
	sn := &scriptNet{
		s:           s,
		net:         n,
		delay:       delay,
		dropFirstTx: make(map[int]bool),
		dropped:     make(map[int]bool),
	}
	n.SetRouting(sn)
	return sn
}

// HandleOutgoing implements netlayer.Routing: deliver locally after the
// scripted delay, unless dropped.
func (sn *scriptNet) HandleOutgoing(p *packet.Packet) {
	if p.Type == packet.TypeTCP && p.TCP != nil && sn.dropFirstTx[p.TCP.Seq] && !sn.dropped[p.TCP.Seq] {
		sn.dropped[p.TCP.Seq] = true
		return
	}
	sn.delivered++
	cp := p
	sn.s.Schedule(sn.delay, func() { sn.net.DeliverLocally(cp) })
}

func (sn *scriptNet) HandleIncoming(p *packet.Packet) { sn.net.DeliverLocally(p) }
func (sn *scriptNet) MacTxDone(*packet.Packet, bool)  {}

// ccRig wires a sender and sink over a scripted loopback.
func ccRig(t *testing.T, cfg tcp.Config, delay sim.Time) (*sim.Scheduler, *scriptNet, *tcp.Sender, *tcp.Sink) {
	t.Helper()
	s := sim.New()
	sn := newScriptNet(s, delay)
	pf := &packet.Factory{}
	snd := tcp.NewSender(s, sn.net, pf, 100, 1, 200, cfg)
	snk := tcp.NewSink(s, sn.net, pf, 200, cfg)
	return s, sn, snd, snk
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.MaxCwnd = 64
	s, _, snd, _ := ccRig(t, cfg, 50*sim.Millisecond) // RTT = 100 ms
	snd.SendBytes(1000 * cfg.SegmentSize)
	// cwnd: 1 at t=0; each delivered ACK adds 1, so it doubles per RTT
	// until ssthresh.
	s.RunUntil(0.05) // first segment in flight
	if snd.Cwnd() != 1 {
		t.Fatalf("cwnd before first ACK = %v", snd.Cwnd())
	}
	s.RunUntil(0.101) // first ACK arrived
	if snd.Cwnd() != 2 {
		t.Fatalf("cwnd after first ACK = %v, want 2", snd.Cwnd())
	}
	s.RunUntil(0.201)
	if snd.Cwnd() != 4 {
		t.Fatalf("cwnd after 2 RTTs = %v, want 4", snd.Cwnd())
	}
	s.RunUntil(0.301)
	if snd.Cwnd() != 8 {
		t.Fatalf("cwnd after 3 RTTs = %v, want 8", snd.Cwnd())
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.InitialSSThresh = 4
	cfg.MaxCwnd = 1000
	s, _, snd, _ := ccRig(t, cfg, 50*sim.Millisecond)
	snd.SendBytes(1000 * cfg.SegmentSize)
	s.RunUntil(0.301) // past slow start (ssthresh 4)
	c1 := snd.Cwnd()
	s.RunUntil(0.401) // one more RTT
	c2 := snd.Cwnd()
	if c2-c1 > 1.5 || c2-c1 < 0.5 {
		t.Fatalf("congestion avoidance grew %v per RTT, want ~1", c2-c1)
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	for _, variant := range []tcp.Variant{tcp.VariantReno, tcp.VariantTahoe} {
		cfg := tcp.DefaultConfig()
		cfg.Variant = variant
		s, sn, snd, snk := ccRig(t, cfg, 10*sim.Millisecond)
		sn.dropFirstTx[8] = true // lose segment 8's first transmission
		const n = 60
		snd.SendBytes(n * cfg.SegmentSize)
		s.RunUntil(30)
		if snk.Bytes() != n*cfg.SegmentSize {
			t.Fatalf("%v: transfer incomplete: %d bytes", variant, snk.Bytes())
		}
		st := snd.Stats()
		if st.FastRetransmits != 1 {
			t.Fatalf("%v: fast retransmits = %d, want 1", variant, st.FastRetransmits)
		}
		if st.Timeouts != 0 {
			t.Fatalf("%v: loss should be repaired without an RTO (timeouts=%d)", variant, st.Timeouts)
		}
	}
}

func TestTahoeCollapsesRenoDoesNot(t *testing.T) {
	run := func(variant tcp.Variant) (minCwndAfterLoss float64) {
		cfg := tcp.DefaultConfig()
		cfg.Variant = variant
		s, sn, snd, _ := ccRig(t, cfg, 10*sim.Millisecond)
		sn.dropFirstTx[12] = true
		snd.SendBytes(200 * cfg.SegmentSize)
		minCwndAfterLoss = math.Inf(1)
		sawLoss := false
		for s.Step() {
			if snd.Stats().FastRetransmits > 0 {
				sawLoss = true
			}
			if sawLoss && snd.Cwnd() < minCwndAfterLoss {
				minCwndAfterLoss = snd.Cwnd()
			}
			if s.Now() > 20 {
				break
			}
		}
		return minCwndAfterLoss
	}
	tahoe := run(tcp.VariantTahoe)
	reno := run(tcp.VariantReno)
	if tahoe != 1 {
		t.Fatalf("Tahoe min cwnd after loss = %v, want 1 (slow-start restart)", tahoe)
	}
	if reno < 2 {
		t.Fatalf("Reno min cwnd after loss = %v, want >= ssthresh (fast recovery)", reno)
	}
}

func TestRTOFiresWhenAllRetransmitsFail(t *testing.T) {
	cfg := tcp.DefaultConfig()
	s, sn, snd, snk := ccRig(t, cfg, 10*sim.Millisecond)
	// Lose segment 1's first transmission with nothing else in flight:
	// no duplicate ACKs can arrive, so only the RTO can repair it.
	sn.dropFirstTx[1] = true
	snd.SendBytes(cfg.SegmentSize)
	s.RunUntil(30)
	if snk.Bytes() != cfg.SegmentSize {
		t.Fatal("transfer incomplete")
	}
	st := snd.Stats()
	if st.Timeouts != 1 || st.FastRetransmits != 0 {
		t.Fatalf("want exactly one RTO and no fast retransmit: %+v", st)
	}
}

func TestRTTEstimateTracksPathDelay(t *testing.T) {
	cfg := tcp.DefaultConfig()
	s, _, snd, snk := ccRig(t, cfg, 100*sim.Millisecond) // RTT 200 ms
	snd.SendBytes(50 * cfg.SegmentSize)
	s.RunUntil(30)
	if snk.Bytes() != 50*cfg.SegmentSize {
		t.Fatal("transfer incomplete")
	}
	// No loss happened, so the RTO must never have fired even though the
	// 200 ms RTT equals MinRTO — the estimator must have adapted.
	if snd.Stats().Timeouts != 0 {
		t.Fatalf("spurious timeouts with constant 200 ms RTT: %+v", snd.Stats())
	}
}

func TestDuplicateAcksIgnoredWithNothingOutstanding(t *testing.T) {
	cfg := tcp.DefaultConfig()
	s, _, snd, _ := ccRig(t, cfg, 10*sim.Millisecond)
	snd.SendBytes(cfg.SegmentSize)
	s.RunUntil(5)
	// Inject stray duplicate ACKs; they must not trigger retransmission.
	for i := 0; i < 5; i++ {
		pf := &packet.Factory{}
		a := pf.New(packet.TypeAck, cfg.AckBytes, s.Now())
		a.IP = packet.IPHdr{Src: 1, Dst: 1, SrcPort: 200, DstPort: 100}
		a.TCP = &packet.TCPHdr{Seq: 1}
		snd.RecvFromNet(a)
	}
	if snd.Stats().Retransmits != 0 {
		t.Fatal("stray duplicate ACKs caused retransmission with empty pipe")
	}
}
