package tcp

import (
	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// RecvFn observes every data segment arriving at a sink (before duplicate
// filtering of the in-order stream — trace semantics: one event per
// received packet). Metrics collectors subscribe here.
type RecvFn func(p *packet.Packet, at sim.Time)

// SinkStats counts receiver-side events.
type SinkStats struct {
	SegmentsReceived int // data arrivals, including out-of-order
	Duplicates       int // segments at or below the cumulative ACK point
	OutOfOrder       int // segments buffered ahead of a hole
	AcksSent         int
	BytesReceived    int // payload bytes in first-time arrivals
}

// Sink is a one-way TCP receiver (ns-2 Agent/TCPSink): it acknowledges
// cumulatively and never delivers data anywhere — the byte counter is the
// "bytes_" variable the paper's Tcl `record` procedure samples for
// throughput.
type Sink struct {
	sched *sim.Scheduler
	net   *netlayer.Net
	pf    *packet.Factory
	cfg   Config
	port  int

	expected int // next in-order segment number
	buffered map[int]bool
	onRecv   RecvFn

	stats SinkStats
}

var _ netlayer.PortHandler = (*Sink)(nil)

// NewSink creates a TCP sink bound to port on net.
func NewSink(sched *sim.Scheduler, n *netlayer.Net, pf *packet.Factory, port int, cfg Config) *Sink {
	k := &Sink{
		sched:    sched,
		net:      n,
		pf:       pf,
		cfg:      cfg,
		port:     port,
		expected: 1,
		buffered: make(map[int]bool),
	}
	n.BindPort(port, k)
	return k
}

// OnRecv registers an observer for every arriving data segment.
func (k *Sink) OnRecv(fn RecvFn) { k.onRecv = fn }

// Stats returns the receiver's counters.
func (k *Sink) Stats() SinkStats { return k.stats }

// Bytes returns the cumulative payload bytes received (first arrivals),
// ns-2's "bytes_".
func (k *Sink) Bytes() int { return k.stats.BytesReceived }

// RecvFromNet implements netlayer.PortHandler.
func (k *Sink) RecvFromNet(p *packet.Packet) {
	if p.Type != packet.TypeTCP || p.TCP == nil {
		return
	}
	k.stats.SegmentsReceived++
	if k.onRecv != nil {
		k.onRecv(p, k.sched.Now())
	}
	seq := p.TCP.Seq
	switch {
	case seq == k.expected:
		k.stats.BytesReceived += p.Size - k.cfg.HdrBytes
		k.expected++
		for k.buffered[k.expected] {
			delete(k.buffered, k.expected)
			k.expected++
		}
	case seq > k.expected:
		if !k.buffered[seq] {
			k.stats.OutOfOrder++
			k.stats.BytesReceived += p.Size - k.cfg.HdrBytes
			k.buffered[seq] = true
		} else {
			k.stats.Duplicates++
		}
	default:
		k.stats.Duplicates++
	}
	k.sendAck(p)
}

// sendAck returns a cumulative acknowledgement to the segment's source.
func (k *Sink) sendAck(data *packet.Packet) {
	k.stats.AcksSent++
	a := k.pf.New(packet.TypeAck, k.cfg.AckBytes, k.sched.Now())
	a.IP.Dst = data.IP.Src
	a.IP.SrcPort = k.port
	a.IP.DstPort = data.IP.SrcPort
	a.TCP = &packet.TCPHdr{Seq: k.expected - 1, Echo: data.TCP.Echo}
	a.SentAt = k.sched.Now()
	k.net.SendFrom(a)
}
