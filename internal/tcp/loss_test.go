package tcp_test

import (
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/jammer"
	"vanetsim/internal/phy"
	"vanetsim/internal/scenario"
	"vanetsim/internal/tcp"
)

// TestBulkTransferUnderHiddenInterference drives a transfer past a
// *hidden* jammer: a low-power attacker next to the receiver that the
// sender cannot carrier-sense, so CSMA cannot defer around it and data
// frames genuinely collide at the receiver. MAC retries, AODV salvage and
// TCP loss recovery all fire, and the sink must still end with exactly
// the transferred byte count.
func TestBulkTransferUnderHiddenInterference(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 2024)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(240, 0)) // near the edge of the 250 m receive range
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)

	// The hidden jammer: 30 m from the receiver, transmit power scaled so
	// the sender (242 m away) never senses it, while the weakened data
	// signal at the receiver cannot capture over it.
	jparams := w.Config().Radio
	jparams.TxPowerW *= 5e-3
	jr := phy.NewRadio(99, w.Sched, func() geom.Vec2 { return geom.V(240, 30) }, jparams)
	w.Channel.Attach(jr)
	jcfg := jammer.DefaultConfig()
	jcfg.DutyCycle = 0.5
	jcfg.StartAt = 0.01
	jcfg.StopAt = 15
	j, err := jammer.New(99, w.Sched, jr, w.PF, jcfg)
	if err != nil {
		t.Fatalf("jammer.New: %v", err)
	}

	const n = 150
	snd.SendBytes(n * cfg.SegmentSize)
	w.Sched.RunUntil(200)

	if j.Bursts() == 0 {
		t.Fatal("jammer never ran; test proves nothing")
	}
	if w.Nodes[1].Radio.Stats().RxCollided == 0 {
		t.Fatal("hidden jammer corrupted nothing; test proves nothing")
	}
	if w.Nodes[0].DCF.Stats().Retries == 0 {
		t.Fatal("no MAC retries despite collisions; test proves nothing")
	}
	if snk.Bytes() != n*cfg.SegmentSize {
		t.Fatalf("sink bytes = %d, want exactly %d despite interference", snk.Bytes(), n*cfg.SegmentSize)
	}
	if snd.Outstanding() != 0 {
		t.Fatalf("%d segments still outstanding", snd.Outstanding())
	}
}

// TestTCPUnderSustainedJamStallsThenRecovers parks a full-power, full-duty
// jammer next to the whole link: carrier sense keeps the sender deferring
// for the attack's duration (no progress), and the transfer completes
// cleanly once the attack ends.
func TestTCPUnderSustainedJamStallsThenRecovers(t *testing.T) {
	cfg := tcp.DefaultConfig()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 7)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	snd := tcp.NewSender(w.Sched, w.Nodes[0].Net, w.PF, 100, 1, 200, cfg)
	snk := tcp.NewSink(w.Sched, w.Nodes[1].Net, w.PF, 200, cfg)

	jr := phy.NewRadio(99, w.Sched, func() geom.Vec2 { return geom.V(50, 10) }, w.Config().Radio)
	w.Channel.Attach(jr)
	jcfg := jammer.DefaultConfig()
	jcfg.StartAt = 0.005 // before slow start can finish
	jcfg.StopAt = 5
	if _, err := jammer.New(99, w.Sched, jr, w.PF, jcfg); err != nil {
		t.Fatalf("jammer.New: %v", err)
	}

	const n = 50
	snd.SendBytes(n * cfg.SegmentSize)
	w.Sched.RunUntil(4) // mid-attack
	midway := snk.Bytes()
	if midway >= n*cfg.SegmentSize/2 {
		t.Fatalf("transferred %d bytes through a continuous jammer; attack ineffective", midway)
	}
	w.Sched.RunUntil(120)
	if snk.Bytes() != n*cfg.SegmentSize {
		t.Fatalf("post-attack recovery incomplete: %d/%d bytes", snk.Bytes(), n*cfg.SegmentSize)
	}
}
