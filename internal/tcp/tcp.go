// Package tcp implements ns-2-style one-way TCP: a Reno sender (Agent/TCP)
// that transmits fixed-size segments under a congestion window, and a sink
// (Agent/TCPSink) that returns cumulative acknowledgements. There is no
// connection handshake or teardown and sequence numbers count segments,
// exactly as in the simulator the paper used — the paper's "overhead
// associated with the TCP protocol" is this ACK-clocked window dynamics.
package tcp

import (
	"math"

	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Variant selects the congestion-control flavour.
type Variant uint8

// Congestion-control variants.
const (
	// VariantReno performs fast recovery: after a fast retransmit the
	// window deflates to ssthresh instead of restarting slow start.
	VariantReno Variant = iota
	// VariantTahoe (ns-2's original Agent/TCP) collapses the window to
	// one segment on every loss signal, including triple duplicate ACKs.
	VariantTahoe
)

// Config holds TCP parameters. DefaultConfig mirrors ns-2 Agent/TCP
// defaults (window_=20, packetSize_=1000) with Reno loss recovery.
type Config struct {
	// Variant picks Reno (default) or Tahoe loss recovery.
	Variant Variant
	// SegmentSize is the data payload per segment in bytes — the paper's
	// variable "packet size" parameter (1,000 in trials 1 and 3, 500 in
	// trial 2).
	SegmentSize int
	// HdrBytes is TCP+IP header overhead added to every segment.
	HdrBytes int
	// AckBytes is the size of an acknowledgement packet.
	AckBytes int
	// MaxCwnd caps the congestion window in segments (ns-2 window_).
	MaxCwnd float64
	// InitialSSThresh starts slow start's exit threshold, in segments.
	InitialSSThresh float64
	// DupThresh duplicate ACKs trigger fast retransmit.
	DupThresh int
	// MinRTO and MaxRTO clamp the retransmission timeout.
	MinRTO, MaxRTO sim.Time
}

// DefaultConfig returns ns-2-flavoured TCP Reno defaults.
func DefaultConfig() Config {
	return Config{
		SegmentSize:     1000,
		HdrBytes:        40,
		AckBytes:        40,
		MaxCwnd:         20,
		InitialSSThresh: 64,
		DupThresh:       3,
		MinRTO:          200 * sim.Millisecond,
		MaxRTO:          64 * sim.Second,
	}
}

// Stats counts sender-side events.
type Stats struct {
	SegmentsSent    int // first transmissions
	Retransmits     int
	Timeouts        int
	FastRetransmits int
	AcksReceived    int
	DupAcks         int
}

// Sender is a one-way TCP Reno source bound to a local port.
type Sender struct {
	sched *sim.Scheduler
	net   *netlayer.Net
	pf    *packet.Factory
	cfg   Config

	dst     packet.NodeID
	dstPort int
	srcPort int

	// Sequence state, in segments.
	nextSeq      int // next never-sent segment number
	highestAcked int // highest cumulatively acknowledged segment
	backlogBytes int // bytes requested by the application, not yet sent

	cwnd     float64
	ssthresh float64
	dupAcks  int
	inFR     bool // fast recovery in progress
	recover  int  // highest segment outstanding when loss was detected

	// RTT estimation (Jacobson/Karels); firstSent remembers first-
	// transmission times per segment for Karn-safe sampling and for
	// one-way-delay stamping of retransmissions.
	srtt, rttvar  sim.Time
	rttSeeded     bool
	rtoBackoff    int
	firstSent     map[int]sim.Time
	retransmitted map[int]bool
	rtxTimer      sim.Timer

	onSend    func(p *packet.Packet)
	payloadFn func() packet.Payload

	stats  Stats
	obsRTT *obs.Histogram // nil-safe RTT sample telemetry
}

// SetObs wires the RTT-sample telemetry histogram (may be nil). Every
// Karn-valid RTT sample is observed, in seconds.
func (s *Sender) SetObs(rtt *obs.Histogram) { s.obsRTT = rtt }

// OnSend registers an observer called for every transmitted segment,
// including retransmissions — the trace collector's "s ... AGT" hook.
func (s *Sender) OnSend(fn func(p *packet.Packet)) { s.onSend = fn }

// SetPayloadFn attaches application content to every outgoing segment:
// fn is sampled at transmission time (the EBL application uses it to
// stamp live brake status onto each packet).
func (s *Sender) SetPayloadFn(fn func() packet.Payload) { s.payloadFn = fn }

// NewSender creates a TCP source on net bound to srcPort, addressing
// (dst, dstPort). It registers itself for ACK delivery.
func NewSender(sched *sim.Scheduler, n *netlayer.Net, pf *packet.Factory, srcPort int, dst packet.NodeID, dstPort int, cfg Config) *Sender {
	if cfg.SegmentSize <= 0 {
		panic("tcp: non-positive segment size")
	}
	s := &Sender{
		sched:         sched,
		net:           n,
		pf:            pf,
		cfg:           cfg,
		dst:           dst,
		dstPort:       dstPort,
		srcPort:       srcPort,
		nextSeq:       1,
		highestAcked:  0,
		cwnd:          1,
		ssthresh:      cfg.InitialSSThresh,
		firstSent:     make(map[int]sim.Time),
		retransmitted: make(map[int]bool),
	}
	n.BindPort(srcPort, s)
	return s
}

// Stats returns the sender's counters.
func (s *Sender) Stats() Stats { return s.stats }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Outstanding returns the number of unacknowledged segments in flight.
func (s *Sender) Outstanding() int { return s.nextSeq - 1 - s.highestAcked }

// HighestAcked returns the highest cumulatively acknowledged segment
// number (0 before any acknowledgement).
func (s *Sender) HighestAcked() int { return s.highestAcked }

// SendBytes asks the sender to transfer n more bytes (the application
// write interface; CBR-over-TCP calls this once per tick).
func (s *Sender) SendBytes(n int) {
	if n <= 0 {
		return
	}
	s.backlogBytes += n
	s.trySend()
}

// Backlog returns bytes accepted from the application but not yet
// transmitted for the first time.
func (s *Sender) Backlog() int { return s.backlogBytes }

// ClearBacklog discards bytes not yet transmitted for the first time.
// In-flight segments still complete normally. The EBL application calls
// this when a platoon stops communicating, so a queued-up offered load
// does not keep transmitting after the scenario says the session is over.
func (s *Sender) ClearBacklog() { s.backlogBytes = 0 }

// trySend transmits new segments while the window and backlog allow.
func (s *Sender) trySend() {
	for s.backlogBytes >= s.cfg.SegmentSize && float64(s.Outstanding()) < math.Floor(s.cwnd) {
		s.backlogBytes -= s.cfg.SegmentSize
		seq := s.nextSeq
		s.nextSeq++
		s.firstSent[seq] = s.sched.Now()
		s.stats.SegmentsSent++
		s.transmit(seq, false)
	}
}

// transmit emits one segment (first transmission or retransmission).
func (s *Sender) transmit(seq int, rtx bool) {
	p := s.pf.New(packet.TypeTCP, s.cfg.SegmentSize+s.cfg.HdrBytes, s.sched.Now())
	p.IP.Dst = s.dst
	p.IP.SrcPort = s.srcPort
	p.IP.DstPort = s.dstPort
	p.TCP = &packet.TCPHdr{Seq: seq, Retransmit: rtx}
	if s.payloadFn != nil {
		p.Payload = s.payloadFn()
	}
	// Retransmissions carry the original send time so the sink's one-way
	// delay includes loss-recovery waiting, as a trace-based analysis
	// (the paper's methodology) would measure.
	if ts, ok := s.firstSent[seq]; ok {
		p.SentAt = ts
	} else {
		p.SentAt = s.sched.Now()
	}
	p.TCP.Echo = s.sched.Now()
	s.net.SendFrom(p)
	// Observe after SendFrom so the packet carries its full address (the
	// network layer stamps IP.Src); delivery is never same-instant, so the
	// send record still precedes any receive record.
	if s.onSend != nil {
		s.onSend(p)
	}
	s.armRtx()
}

// RecvFromNet implements netlayer.PortHandler (ACK path).
func (s *Sender) RecvFromNet(p *packet.Packet) {
	if p.Type != packet.TypeAck || p.TCP == nil {
		return
	}
	ack := p.TCP.Seq
	s.stats.AcksReceived++
	switch {
	case ack > s.highestAcked:
		s.newAck(ack, p)
	case ack == s.highestAcked:
		s.dupAck()
	}
	s.trySend()
}

func (s *Sender) newAck(ack int, p *packet.Packet) {
	// RTT sample: only for segments never retransmitted (Karn).
	if ts, ok := s.firstSent[ack]; ok && !s.retransmitted[ack] {
		s.sampleRTT(s.sched.Now() - ts)
	}
	for seq := s.highestAcked + 1; seq <= ack; seq++ {
		delete(s.firstSent, seq)
		delete(s.retransmitted, seq)
	}
	s.highestAcked = ack
	s.rtoBackoff = 0
	s.dupAcks = 0

	if s.inFR {
		if ack >= s.recover {
			// Full recovery: deflate to ssthresh.
			s.cwnd = s.ssthresh
			s.inFR = false
		} else {
			// Partial ACK (NewReno-style): retransmit the next hole.
			s.retransmitted[ack+1] = true
			s.stats.Retransmits++
			s.transmit(ack+1, true)
		}
	} else if s.cwnd < s.ssthresh {
		s.cwnd++ // slow start
	} else {
		s.cwnd += 1 / s.cwnd // congestion avoidance
	}
	if s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
	if s.Outstanding() == 0 {
		s.cancelRtx()
	} else {
		s.restartRtx()
	}
}

func (s *Sender) dupAck() {
	if s.Outstanding() == 0 {
		return
	}
	s.stats.DupAcks++
	s.dupAcks++
	if s.inFR {
		s.cwnd++ // inflate during recovery
		return
	}
	if s.dupAcks == s.cfg.DupThresh {
		lost := s.highestAcked + 1
		if lost <= s.recover {
			// Still inside the window of the last loss episode: don't
			// retrigger on leftover duplicate ACKs (ns-2's recover_).
			s.dupAcks = 0
			return
		}
		// Fast retransmit.
		s.stats.FastRetransmits++
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.recover = s.nextSeq - 1
		s.retransmitted[lost] = true // Karn: no RTT sample from this one
		s.stats.Retransmits++
		if s.cfg.Variant == VariantTahoe {
			// Tahoe: no fast recovery — slow start from scratch.
			s.cwnd = 1
			s.dupAcks = 0
			s.transmit(lost, true)
			return
		}
		// Reno fast recovery.
		s.inFR = true
		s.cwnd = s.ssthresh + float64(s.cfg.DupThresh)
		s.transmit(lost, true)
	}
}

func (s *Sender) sampleRTT(rtt sim.Time) {
	if rtt < 0 {
		return
	}
	s.obsRTT.ObserveDuration(rtt)
	if !s.rttSeeded {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.rttSeeded = true
		return
	}
	delta := rtt - s.srtt
	if delta < 0 {
		delta = -delta
	}
	s.rttvar += (delta - s.rttvar) / 4
	s.srtt += (rtt - s.srtt) / 8
}

// rto returns the current retransmission timeout with backoff applied.
func (s *Sender) rto() sim.Time {
	r := s.srtt + 4*s.rttvar
	if !s.rttSeeded {
		r = 3 * sim.Second // conservative pre-sample default (RFC 6298)
	}
	for i := 0; i < s.rtoBackoff; i++ {
		r *= 2
	}
	if r < s.cfg.MinRTO {
		r = s.cfg.MinRTO
	}
	if r > s.cfg.MaxRTO {
		r = s.cfg.MaxRTO
	}
	return r
}

func (s *Sender) armRtx() {
	if s.rtxTimer.Active() {
		return
	}
	s.rtxTimer = s.sched.ScheduleKind(sim.KindTransport, s.rto(), s.onTimeout)
}

func (s *Sender) restartRtx() {
	s.cancelRtx()
	s.rtxTimer = s.sched.ScheduleKind(sim.KindTransport, s.rto(), s.onTimeout)
}

func (s *Sender) cancelRtx() {
	s.rtxTimer.Cancel()
	s.rtxTimer = sim.Timer{}
}

func (s *Sender) onTimeout() {
	s.rtxTimer = sim.Timer{}
	if s.Outstanding() == 0 {
		return
	}
	s.stats.Timeouts++
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inFR = false
	s.rtoBackoff++
	lost := s.highestAcked + 1
	s.retransmitted[lost] = true
	s.stats.Retransmits++
	s.transmit(lost, true)
}
