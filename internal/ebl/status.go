package ebl

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// BrakeStatus is the content of one extended-brake-light message: the
// lead vehicle's state at transmission time, which is what a following
// vehicle's automation would act on.
type BrakeStatus struct {
	// Vehicle is the sender.
	Vehicle packet.NodeID
	// At is the sampling time.
	At sim.Time
	// Braking reports whether the brakes are applied (true for the
	// Braking phase; a Stopped vehicle reports true as well — its lights
	// are on).
	Braking bool
	// SpeedMS is the instantaneous speed.
	SpeedMS float64
	// Position is the sender's location.
	Position geom.Vec2
}

var _ packet.Payload = (*BrakeStatus)(nil)

// ClonePayload implements packet.Payload.
func (b *BrakeStatus) ClonePayload() packet.Payload {
	c := *b
	return &c
}

// ClonePayloadOnto implements packet.ReusablePayload.
func (b *BrakeStatus) ClonePayloadOnto(old packet.Payload) (packet.Payload, bool) {
	if o, ok := old.(*BrakeStatus); ok {
		*o = *b
		return o, true
	}
	return nil, false
}

// statusSampler builds a BrakeStatus provider bound to a vehicle.
func statusSampler(sched *sim.Scheduler, v *mobility.Vehicle) func() packet.Payload {
	return func() packet.Payload {
		return &BrakeStatus{
			Vehicle:  v.ID(),
			At:       sched.Now(),
			Braking:  v.Phase().Communicating(),
			SpeedMS:  v.Speed(),
			Position: v.Position(),
		}
	}
}
