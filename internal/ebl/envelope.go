package ebl

import (
	"math"

	"vanetsim/internal/sim"
)

// Braking kinematics for the feasibility envelope. The paper's §III.E
// notes that whether the EBL warning suffices "may or may not leave the
// vehicle with a sufficient stopping distance, depending on a number of
// other parameters, including the condition of the brakes, the condition
// of the tires, the condition of the road, and the reaction time of the
// driver". BrakingModel makes those parameters explicit so the analysis
// can be swept instead of hand-waved.
type BrakingModel struct {
	// LeadDecel and FollowerDecel are braking decelerations in m/s².
	// Worn brakes / wet road lower the follower's value.
	LeadDecel, FollowerDecel float64
	// Reaction is the driver's (or automation's) delay between the brake
	// indication arriving and brake application.
	Reaction sim.Time
	// Margin is the bumper-to-bumper distance that must remain, in
	// metres (car length plus safety slack).
	Margin float64
}

// DefaultBrakingModel returns dry-road hard braking with a 0.7 s human
// reaction and a 5 m margin.
func DefaultBrakingModel() BrakingModel {
	return BrakingModel{LeadDecel: 7, FollowerDecel: 7, Reaction: 0.7, Margin: 5}
}

// blindTime is the total time the follower keeps cruising after the lead
// brakes: radio indication delay plus driver reaction.
func (m BrakingModel) blindTime(indication sim.Time) float64 {
	return float64(indication + m.Reaction)
}

// decelGap returns k = 1/(2·a_f) − 1/(2·a_l): the quadratic coefficient
// of the extra distance the follower needs because it may brake more
// weakly than the lead.
func (m BrakingModel) decelGap() float64 {
	return 1/(2*m.FollowerDecel) - 1/(2*m.LeadDecel)
}

// MinSafeGap returns the minimum initial following distance, in metres,
// that avoids a collision at the given speed when the brake indication
// takes indication seconds to arrive:
//
//	gap ≥ v·(indication + reaction) + v²·(1/2a_f − 1/2a_l) + margin
//
// (the classic worst-case leader-braking bound).
func (m BrakingModel) MinSafeGap(speedMS float64, indication sim.Time) float64 {
	return speedMS*m.blindTime(indication) + speedMS*speedMS*m.decelGap() + m.Margin
}

// MaxSafeSpeed returns the highest speed, in m/s, at which the given
// following gap is still collision-free for the given indication delay.
// It returns 0 if even a crawl is unsafe (gap below the margin), and
// +Inf is never returned: equal-or-better follower braking makes the
// bound linear in v, which still caps the speed for any finite gap
// whenever blind time is positive; with zero blind time and no decel gap
// the answer is +Inf conceptually, reported as math.MaxFloat64.
func (m BrakingModel) MaxSafeSpeed(gapM float64, indication sim.Time) float64 {
	avail := gapM - m.Margin
	if avail <= 0 {
		return 0
	}
	k := m.decelGap()
	d := m.blindTime(indication)
	switch {
	case k <= 0 && d <= 0:
		return math.MaxFloat64
	case k <= 0:
		// Follower brakes at least as hard as the lead: only the blind
		// distance matters. (For k<0 this is conservative.)
		return avail / d
	default:
		// k·v² + d·v − avail = 0, positive root.
		return (-d + math.Sqrt(d*d+4*k*avail)) / (2 * k)
	}
}

// EnvelopeRow is one speed's verdict for the two MACs' indication delays.
type EnvelopeRow struct {
	SpeedMS     float64
	MinGapTDMA  float64
	MinGap80211 float64
	// SafeAt25TDMA / SafeAt2580211 report whether the paper's 25 m
	// separation suffices at this speed.
	SafeAt25TDMA  bool
	SafeAt2580211 bool
}

// FeasibilityEnvelope sweeps speeds and reports the minimum safe gap per
// MAC, given each MAC's measured initial-packet indication delay — the
// quantitative version of the paper's "may or may not leave the vehicle
// with a sufficient stopping distance".
func FeasibilityEnvelope(model BrakingModel, delayTDMA, delay80211 sim.Time, speedsMS []float64) []EnvelopeRow {
	rows := make([]EnvelopeRow, 0, len(speedsMS))
	for _, v := range speedsMS {
		gT := model.MinSafeGap(v, delayTDMA)
		gD := model.MinSafeGap(v, delay80211)
		rows = append(rows, EnvelopeRow{
			SpeedMS:       v,
			MinGapTDMA:    gT,
			MinGap80211:   gD,
			SafeAt25TDMA:  gT <= 25,
			SafeAt2580211: gD <= 25,
		})
	}
	return rows
}
