package ebl_test

import (
	"math"
	"testing"

	"vanetsim/internal/ebl"
	"vanetsim/internal/geom"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
	"vanetsim/internal/trace"
)

// rig builds a stopped 3-vehicle platoon with full 802.11 stacks and EBL
// comms at the given rate.
func rig(t *testing.T, tracer *trace.Collector) (*scenario.World, *mobility.Platoon, *ebl.PlatoonComms) {
	t.Helper()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 3)
	p := mobility.NewPlatoon(w.Sched, 0, 3, geom.V(0, 0), geom.V(0, 1), 25)
	nets := make([]*netlayer.Net, 0, p.Len())
	for _, v := range p.Vehicles() {
		nets = append(nets, w.AddNode(v.ID(), v.Position).Net)
	}
	cfg := ebl.DefaultCommsConfig()
	cfg.RateBps = 400_000
	comms := ebl.NewPlatoonComms(w.Sched, p, nets, w.PF, cfg, tracer)
	return w, p, comms
}

func TestStoppedPlatoonCommunicates(t *testing.T) {
	w, _, comms := rig(t, nil)
	if !comms.Communicating() {
		t.Fatal("stopped platoon should communicate from t=0")
	}
	w.Sched.RunUntil(5)
	for _, f := range comms.Flows() {
		if f.Delays.Len() == 0 {
			t.Fatalf("flow to %v received nothing", f.Receiver)
		}
	}
	if comms.Throughput().TotalBytes() == 0 {
		t.Fatal("no platoon throughput recorded")
	}
}

func TestFlowsTargetFollowers(t *testing.T) {
	_, p, comms := rig(t, nil)
	flows := comms.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want one per follower", len(flows))
	}
	if flows[0].Receiver != p.Followers()[0].ID() || flows[1].Receiver != p.Followers()[1].ID() {
		t.Fatal("flow receivers out of order")
	}
	if comms.Flow(p.Followers()[1].ID()) != flows[1] {
		t.Fatal("Flow lookup broken")
	}
	if comms.Flow(99) != nil {
		t.Fatal("Flow lookup for unknown receiver should be nil")
	}
}

func TestCommunicationFollowsPhase(t *testing.T) {
	w, p, comms := rig(t, nil)
	w.Sched.RunUntil(5)
	received := comms.Flows()[0].Delays.Len()
	if received == 0 {
		t.Fatal("setup: no traffic while stopped")
	}
	// Drive off: silence (after the in-flight drain).
	p.SetDest(geom.V(0, 10000), 22.4)
	if comms.Communicating() {
		t.Fatal("moving platoon should not communicate")
	}
	w.Sched.RunUntil(10)
	quiet := comms.Flows()[0].Delays.Len()
	w.Sched.RunUntil(40)
	if got := comms.Flows()[0].Delays.Len(); got != quiet {
		t.Fatalf("traffic while moving: %d -> %d packets", quiet, got)
	}
	// Brake: communication resumes (this is the whole point of EBL).
	p.Brake(4)
	if !comms.Communicating() {
		t.Fatal("braking platoon must communicate")
	}
	w.Sched.RunUntil(60)
	if got := comms.Flows()[0].Delays.Len(); got <= quiet {
		t.Fatal("no traffic after brake event")
	}
}

func TestBrakeEventLatencyMeasured(t *testing.T) {
	// The first packet after a brake event is the paper's safety-critical
	// measurement; under 802.11 it must arrive within tens of ms. Build
	// the platoon already moving so the application starts silent.
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 3)
	p := mobility.NewPlatoon(w.Sched, 0, 3, geom.V(0, 0), geom.V(0, 1), 25)
	nets := make([]*netlayer.Net, 0, p.Len())
	for _, v := range p.Vehicles() {
		nets = append(nets, w.AddNode(v.ID(), v.Position).Net)
	}
	p.SetDest(geom.V(0, 10000), 22.4)
	cfg := ebl.DefaultCommsConfig()
	cfg.RateBps = 400_000
	comms := ebl.NewPlatoonComms(w.Sched, p, nets, w.PF, cfg, nil)
	w.Sched.RunUntil(5)
	if comms.Flows()[0].Delays.Len() != 0 {
		t.Fatal("traffic while cruising")
	}
	p.Brake(4)
	w.Sched.RunUntil(10)
	first, ok := comms.Flows()[0].Delays.First()
	if !ok {
		t.Fatal("no brake-status packet delivered")
	}
	if first > 0.05 {
		t.Fatalf("first brake indication took %v, want well under 50 ms on 802.11", first)
	}
}

func TestTraceRecordsAgentEvents(t *testing.T) {
	tracer := trace.NewCollector(nil)
	w, _, _ := rig(t, tracer)
	w.Sched.RunUntil(2)
	recs := tracer.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	// The offline analysis on these records must agree with the online
	// delay bookkeeping.
	byFlow := trace.OneWayDelays(recs)
	if len(byFlow) != 2 {
		t.Fatalf("trace has %d flows, want 2", len(byFlow))
	}
	for k, s := range byFlow {
		if s.Len() == 0 {
			t.Fatalf("flow %+v empty in trace analysis", k)
		}
		for _, pt := range s.Points() {
			if pt.Delay <= 0 {
				t.Fatalf("non-positive delay in trace analysis: %+v", pt)
			}
		}
	}
}

func TestOnlineAndTraceDelaysAgree(t *testing.T) {
	tracer := trace.NewCollector(nil)
	w, p, comms := rig(t, tracer)
	w.Sched.RunUntil(5)
	byFlow := trace.OneWayDelays(tracer.Records())
	mid := p.Followers()[0].ID()
	var fromTrace *trace.FlowKey
	for k := range byFlow {
		if k.Dst == mid {
			k := k
			fromTrace = &k
		}
	}
	if fromTrace == nil {
		t.Fatal("middle-vehicle flow missing from trace")
	}
	online := comms.Flow(mid).Delays
	offline := byFlow[*fromTrace]
	if online.Len() != offline.Len() {
		t.Fatalf("online %d vs offline %d measurements", online.Len(), offline.Len())
	}
	op, fp := online.Points(), offline.Points()
	for i := range op {
		if math.Abs(float64(op[i].Delay-fp[i].Delay)) > 1e-9 {
			t.Fatalf("delay %d disagrees: online %v, trace %v", i, op[i].Delay, fp[i].Delay)
		}
	}
}

func TestAnalyze(t *testing.T) {
	a := ebl.Analyze(0.24, 22.4, 25, 0, 0)
	if math.Abs(a.DistanceBeforeNotice-5.376) > 1e-9 {
		t.Fatalf("distance = %v, want 5.376 (paper: ~5.38 m)", a.DistanceBeforeNotice)
	}
	if math.Abs(a.FractionOfSeparation-0.21504) > 1e-9 {
		t.Fatalf("fraction = %v, want ~21.5%% (paper: over 20%%)", a.FractionOfSeparation)
	}
	if a.BrakingDistance != 0 || a.TotalStopDistance != a.DistanceBeforeNotice {
		t.Fatalf("no-braking analysis wrong: %+v", a)
	}
}

func TestAnalyzeWithBrakingModel(t *testing.T) {
	// 22.4 m/s, 8 m/s² hard braking: v²/2a = 31.36 m. With notification
	// delay and reaction, 25 m separation is insufficient.
	a := ebl.Analyze(0.018, 22.4, 25, 8, 0.7)
	if math.Abs(a.BrakingDistance-31.36) > 1e-9 {
		t.Fatalf("braking distance = %v", a.BrakingDistance)
	}
	if a.Sufficient {
		t.Fatal("25 m at 50 mph cannot be sufficient with realistic braking")
	}
	want := 22.4*0.018 + 22.4*0.7 + 31.36
	if math.Abs(a.TotalStopDistance-want) > 1e-9 {
		t.Fatalf("total = %v, want %v", a.TotalStopDistance, want)
	}
}

func TestPaperAnalysisTrialContrast(t *testing.T) {
	tdma := ebl.PaperAnalysis(0.24)
	dcf := ebl.PaperAnalysis(0.018)
	if tdma.FractionOfSeparation < 0.20 {
		t.Fatalf("TDMA fraction = %v, paper says over 20%%", tdma.FractionOfSeparation)
	}
	if dcf.FractionOfSeparation > 0.02 {
		t.Fatalf("802.11 fraction = %v, paper says under 2%%", dcf.FractionOfSeparation)
	}
}

func TestMPHConversion(t *testing.T) {
	if ms := ebl.MPHToMS(50); math.Abs(ms-22.352) > 1e-9 {
		t.Fatalf("50 mph = %v m/s", ms)
	}
}

func TestNewPlatoonCommsValidation(t *testing.T) {
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 3)
	p := mobility.NewPlatoon(w.Sched, 0, 2, geom.V(0, 0), geom.V(0, 1), 25)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched nets did not panic")
		}
	}()
	ebl.NewPlatoonComms(w.Sched, p, nil, w.PF, ebl.DefaultCommsConfig(), nil)
}

func TestBrakeStatusPayloadOnEveryPacket(t *testing.T) {
	w, p, comms := rig(t, nil)
	lead := p.Lead()
	var statuses []*ebl.BrakeStatus
	comms.OnDeliver(func(_ *ebl.Flow, pkt *packet.Packet, _ sim.Time) {
		st, ok := pkt.Payload.(*ebl.BrakeStatus)
		if !ok {
			t.Fatalf("packet %v carries no brake status", pkt)
		}
		statuses = append(statuses, st)
	})
	w.Sched.RunUntil(3)
	if len(statuses) == 0 {
		t.Fatal("no statuses observed")
	}
	for _, st := range statuses {
		if st.Vehicle != lead.ID() {
			t.Fatalf("status from %v, want the lead", st.Vehicle)
		}
		if !st.Braking {
			t.Fatal("stopped lead should report brake lights on")
		}
		if st.SpeedMS != 0 {
			t.Fatalf("stopped lead speed = %v", st.SpeedMS)
		}
		if st.At < 0 || st.At > 3 {
			t.Fatalf("status timestamp %v outside the run", st.At)
		}
	}
}

func TestBrakeStatusClone(t *testing.T) {
	orig := &ebl.BrakeStatus{Vehicle: 3, SpeedMS: 10, Braking: true}
	cp := orig.ClonePayload().(*ebl.BrakeStatus)
	cp.SpeedMS = 99
	if orig.SpeedMS != 10 {
		t.Fatal("clone aliases the original")
	}
}
