package ebl_test

import (
	"math"
	"testing"
	"testing/quick"

	"vanetsim/internal/ebl"
	"vanetsim/internal/sim"
)

func TestMinSafeGapHandComputed(t *testing.T) {
	m := ebl.BrakingModel{LeadDecel: 8, FollowerDecel: 4, Reaction: 0.5, Margin: 5}
	// v=20: blind 20*(0.1+0.5)=12; decel term 400*(1/8 - 1/16)=400*0.0625=25; +5.
	got := m.MinSafeGap(20, 0.1)
	if math.Abs(got-42) > 1e-9 {
		t.Fatalf("MinSafeGap = %v, want 42", got)
	}
}

func TestMinSafeGapEqualBraking(t *testing.T) {
	m := ebl.BrakingModel{LeadDecel: 7, FollowerDecel: 7, Reaction: 0.7, Margin: 5}
	// Equal decels: only blind distance + margin.
	got := m.MinSafeGap(22.4, 0.24)
	want := 22.4*(0.24+0.7) + 5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MinSafeGap = %v, want %v", got, want)
	}
}

func TestMaxSafeSpeedInvertsMinSafeGap(t *testing.T) {
	m := ebl.DefaultBrakingModel()
	for _, v := range []float64{5, 15, 22.4, 35} {
		gap := m.MinSafeGap(v, 0.1)
		back := m.MaxSafeSpeed(gap, 0.1)
		if math.Abs(back-v) > 1e-6 {
			t.Fatalf("round trip at v=%v: gap=%v -> v=%v", v, gap, back)
		}
	}
}

func TestMaxSafeSpeedInvertsWithDecelGap(t *testing.T) {
	m := ebl.BrakingModel{LeadDecel: 8, FollowerDecel: 5, Reaction: 0.6, Margin: 4}
	for _, v := range []float64{10, 20, 30} {
		gap := m.MinSafeGap(v, 0.05)
		back := m.MaxSafeSpeed(gap, 0.05)
		if math.Abs(back-v) > 1e-6 {
			t.Fatalf("round trip at v=%v failed: %v", v, back)
		}
	}
}

func TestMaxSafeSpeedDegenerate(t *testing.T) {
	m := ebl.DefaultBrakingModel()
	if got := m.MaxSafeSpeed(m.Margin-1, 0.1); got != 0 {
		t.Fatalf("gap below margin should be unsafe at any speed: %v", got)
	}
	zero := ebl.BrakingModel{LeadDecel: 7, FollowerDecel: 7, Reaction: 0, Margin: 0}
	if got := zero.MaxSafeSpeed(10, 0); got != math.MaxFloat64 {
		t.Fatalf("no blind time, equal braking: any speed is safe, got %v", got)
	}
}

func TestEnvelopeTDMAvs80211(t *testing.T) {
	// With the measured indication delays, the envelope must show 802.11
	// tolerating strictly higher speeds at the paper's 25 m gap.
	model := ebl.DefaultBrakingModel()
	speeds := []float64{10, 15, 20, 22.4, 25, 30}
	rows := ebl.FeasibilityEnvelope(model, 0.24, 0.006, speeds)
	if len(rows) != len(speeds) {
		t.Fatalf("rows = %d", len(rows))
	}
	sawContrast := false
	for _, r := range rows {
		if r.MinGapTDMA <= r.MinGap80211 {
			t.Fatalf("TDMA min gap (%v) should exceed 802.11's (%v) at v=%v",
				r.MinGapTDMA, r.MinGap80211, r.SpeedMS)
		}
		if !r.SafeAt25TDMA && r.SafeAt2580211 {
			sawContrast = true
		}
		if r.SafeAt25TDMA && !r.SafeAt2580211 {
			t.Fatal("TDMA can never be safe where 802.11 is not")
		}
	}
	if !sawContrast {
		t.Fatal("no speed where 802.11 is safe at 25 m and TDMA is not; envelope uninformative")
	}
}

// Property: MinSafeGap is monotone in speed, indication delay and
// reaction, and MaxSafeSpeed is monotone in gap.
func TestEnvelopeMonotonicityProperty(t *testing.T) {
	f := func(vRaw, dRaw uint8, gapRaw uint16) bool {
		m := ebl.DefaultBrakingModel()
		v := float64(vRaw%40) + 1
		d := sim.Time(dRaw%100) / 100
		if m.MinSafeGap(v+1, d) <= m.MinSafeGap(v, d) {
			return false
		}
		if m.MinSafeGap(v, d+0.1) <= m.MinSafeGap(v, d) {
			return false
		}
		gap := float64(gapRaw%200) + 6
		return m.MaxSafeSpeed(gap+1, d) >= m.MaxSafeSpeed(gap, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
