package ebl

import (
	"vanetsim/internal/mobility"
	"vanetsim/internal/sim"
)

// MPHToMS converts miles per hour to metres per second (the paper uses
// "50 mph (22.4 m/s)").
func MPHToMS(mph float64) float64 { return mph * 0.44704 }

// StoppingAnalysis is the paper's §III.E feasibility assessment: given the
// one-way delay of the *initial* brake-status packet — the first
// indication to a trailing vehicle that the lead is braking — how much of
// the inter-vehicle separation is consumed before the driver even knows,
// and is what remains enough to stop in?
type StoppingAnalysis struct {
	// Inputs.
	InitialDelay sim.Time // one-way delay of the first packet
	Speed        float64  // m/s
	Separation   float64  // m between vehicles
	Decel        float64  // braking deceleration, m/s²
	ReactionTime sim.Time // driver reaction after notification

	// Results.
	DistanceBeforeNotice float64 // m travelled during InitialDelay
	FractionOfSeparation float64 // DistanceBeforeNotice / Separation
	BrakingDistance      float64 // v²/(2a)
	TotalStopDistance    float64 // notice + reaction + braking distance
	Sufficient           bool    // TotalStopDistance <= Separation
}

// Analyze computes the stopping feasibility for the given inputs.
func Analyze(initialDelay sim.Time, speedMS, separationM, decel float64, reaction sim.Time) StoppingAnalysis {
	a := StoppingAnalysis{
		InitialDelay: initialDelay,
		Speed:        speedMS,
		Separation:   separationM,
		Decel:        decel,
		ReactionTime: reaction,
	}
	a.DistanceBeforeNotice = speedMS * float64(initialDelay)
	if separationM > 0 {
		a.FractionOfSeparation = a.DistanceBeforeNotice / separationM
	}
	if decel > 0 {
		a.BrakingDistance = mobility.BrakingDistance(speedMS, decel)
	}
	a.TotalStopDistance = a.DistanceBeforeNotice + speedMS*float64(reaction) + a.BrakingDistance
	a.Sufficient = a.TotalStopDistance <= separationM
	return a
}

// PaperAnalysis reproduces the paper's arithmetic exactly as published: no
// braking model or reaction time, just distance travelled during the
// initial packet's flight as a fraction of the 25 m separation at 22.4 m/s
// (50 mph).
func PaperAnalysis(initialDelay sim.Time) StoppingAnalysis {
	const (
		speed      = 22.4 // m/s, 50 mph
		separation = 25.0 // m
	)
	return Analyze(initialDelay, speed, separation, 0, 0)
}
