// Package ebl implements the paper's primary contribution: the Extended
// Brake Lights (EBL) application, one of the three CAMP/VSCC vehicle-safety
// scenarios and the only one that communicates vehicle-to-vehicle. A
// platoon's lead vehicle streams brake-status packets over TCP to each
// trailing vehicle, but only while the platoon is braking or stopped; the
// package also provides the stopping-distance feasibility analysis of the
// paper's §III.E.
package ebl

import (
	"fmt"

	"vanetsim/internal/app"
	"vanetsim/internal/check"
	"vanetsim/internal/metrics"
	"vanetsim/internal/mobility"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
	"vanetsim/internal/tcp"
	"vanetsim/internal/trace"
)

// CommsConfig parameterises a platoon's EBL communication.
type CommsConfig struct {
	// PacketSize is the brake-status payload in bytes — the paper's
	// variable parameter (500 or 1,000).
	PacketSize int
	// RateBps is the per-flow constant bit rate offered by the lead.
	RateBps float64
	// TCP configures the underlying transport; SegmentSize is overridden
	// with PacketSize.
	TCP tcp.Config
	// BasePort is the first port used; each flow takes two consecutive
	// ports from it.
	BasePort int
	// ThroughputBin is the throughput sampling interval (the paper's
	// record period).
	ThroughputBin sim.Time
	// Obs receives transport-layer telemetry (RTT samples) when non-nil.
	Obs *obs.Registry
	// Check, when non-nil, audits every delivery against the physical
	// envelope (one-way delay at least serialization time) and flags
	// rejected metric samples.
	Check *check.Envelope
	// Spans, when non-nil, records application-level consumption events
	// for the causal tracer.
	Spans *span.Recorder
}

// RTTBuckets are the histogram bounds (seconds) for TCP round-trip
// samples, matching the scenario layer's latency buckets.
var RTTBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30,
}

// DefaultCommsConfig returns the trial-1 configuration: 1,000-byte
// packets, 1.2 Mb/s offered load per flow, 0.5 s throughput bins.
func DefaultCommsConfig() CommsConfig {
	return CommsConfig{
		PacketSize:    1000,
		RateBps:       1.2e6,
		TCP:           tcp.DefaultConfig(),
		BasePort:      1000,
		ThroughputBin: 0.5,
	}
}

// Flow is one lead-to-follower EBL stream and its measurements.
type Flow struct {
	Receiver packet.NodeID
	Sender   *tcp.Sender
	Sink     *tcp.Sink
	CBR      *app.CBR
	// Delays indexes one-way delay by TCP segment number — the packet-ID
	// axis of the paper's delay figures.
	Delays *metrics.DelaySeries

	seen map[int]bool
}

// PlatoonComms runs the EBL application for one platoon: a TCP flow from
// the lead to every follower, paced by a CBR generator that runs exactly
// while the platoon communicates (braking or stopped, per the paper's
// scenario rules).
type PlatoonComms struct {
	sched   *sim.Scheduler
	platoon *mobility.Platoon
	flows   []*Flow
	// Throughput aggregates received payload bytes across the platoon's
	// sinks — the paper's per-platoon throughput curve.
	throughput *metrics.Throughput

	tracer    *trace.Collector // optional
	check     *check.Envelope  // optional
	spans     *span.Recorder   // optional
	onDeliver func(f *Flow, p *packet.Packet, at sim.Time)
}

// OnDeliver registers an observer called once per first-time segment
// delivery on any flow. The highway scenario uses it to trigger follower
// braking on the first brake indication.
func (pc *PlatoonComms) OnDeliver(fn func(f *Flow, p *packet.Packet, at sim.Time)) {
	pc.onDeliver = fn
}

// NewPlatoonComms wires the EBL flows for a platoon. nets must align with
// platoon.Vehicles() (nets[i] is vehicle i's network layer). tracer may be
// nil; when set, agent-level send/receive events are recorded for offline
// analysis. Communication starts/stops automatically with the lead
// vehicle's phase; the initial phase is honoured too.
func NewPlatoonComms(sched *sim.Scheduler, platoon *mobility.Platoon, nets []*netlayer.Net, pf *packet.Factory, cfg CommsConfig, tracer *trace.Collector) *PlatoonComms {
	if len(nets) != platoon.Len() {
		panic(fmt.Sprintf("ebl: %d nets for %d vehicles", len(nets), platoon.Len()))
	}
	if cfg.PacketSize <= 0 || cfg.RateBps <= 0 {
		panic("ebl: packet size and rate must be positive")
	}
	tcpCfg := cfg.TCP
	tcpCfg.SegmentSize = cfg.PacketSize
	pc := &PlatoonComms{
		sched:      sched,
		platoon:    platoon,
		throughput: metrics.NewThroughput(cfg.ThroughputBin),
		tracer:     tracer,
		check:      cfg.Check,
		spans:      cfg.Spans,
	}
	// Registry methods are nil-safe: rttHist is nil (and SetObs a no-op
	// store) when telemetry is off.
	rttHist := cfg.Obs.Histogram("tcp/rtt_s", "TCP round-trip time samples", RTTBuckets)
	lead := platoon.Lead()
	leadNet := nets[0]
	for i, follower := range platoon.Followers() {
		port := cfg.BasePort + 2*i
		snd := tcp.NewSender(sched, leadNet, pf, port, follower.ID(), port+1, tcpCfg)
		snd.SetObs(rttHist)
		snk := tcp.NewSink(sched, nets[i+1], pf, port+1, tcpCfg)
		snd.SetPayloadFn(statusSampler(sched, lead))
		f := &Flow{
			Receiver: follower.ID(),
			Sender:   snd,
			Sink:     snk,
			CBR:      app.NewCBR(sched, snd, cfg.PacketSize, cfg.RateBps),
			Delays:   &metrics.DelaySeries{},
			seen:     make(map[int]bool),
		}
		pc.observe(f, tcpCfg)
		pc.flows = append(pc.flows, f)
	}
	lead.Subscribe(func(mobility.Event) { pc.sync() })
	pc.sync()
	return pc
}

// observe wires the measurement hooks for one flow.
func (pc *PlatoonComms) observe(f *Flow, tcpCfg tcp.Config) {
	rcvNode := f.Receiver
	f.Sink.OnRecv(func(p *packet.Packet, at sim.Time) {
		if pc.tracer != nil {
			pc.tracer.Add(trace.FromPacket(trace.Recv, at, rcvNode, trace.LayerAgent, p))
		}
		if f.seen[p.TCP.Seq] {
			return // duplicate delivery: measured once, like the paper's per-ID analysis
		}
		f.seen[p.TCP.Seq] = true
		pc.spans.Record(span.OpAppRecv, span.CauseNone, rcvNode, p)
		pc.check.Delivery(at, p.SentAt, p.Size, p.UID)
		f.Delays.Add(p.TCP.Seq, at-p.SentAt)
		if err := pc.throughput.Add(at, p.Size-tcpCfg.HdrBytes); err != nil {
			pc.check.BadSample(at, err)
		}
		if pc.onDeliver != nil {
			pc.onDeliver(f, p, at)
		}
	})
	if pc.tracer != nil {
		leadID := pc.platoon.Lead().ID()
		f.Sender.OnSend(func(p *packet.Packet) {
			pc.tracer.Add(trace.FromPacket(trace.Send, pc.sched.Now(), leadID, trace.LayerAgent, p))
		})
	}
}

// sync starts or stops the CBR generators to match the platoon's phase.
func (pc *PlatoonComms) sync() {
	if pc.platoon.Communicating() {
		for _, f := range pc.flows {
			f.CBR.Start()
		}
		return
	}
	for _, f := range pc.flows {
		f.CBR.Stop()
		// Drop the unsent backlog too: a moving platoon is silent, not
		// slowly draining 20 s of queued brake-status bytes.
		f.Sender.ClearBacklog()
	}
}

// Flows returns the per-follower flows in platoon order (middle vehicle
// first, trailing vehicle last for a 3-vehicle platoon).
func (pc *PlatoonComms) Flows() []*Flow { return pc.flows }

// Flow returns the flow whose receiver is id, or nil.
func (pc *PlatoonComms) Flow(id packet.NodeID) *Flow {
	for _, f := range pc.flows {
		if f.Receiver == id {
			return f
		}
	}
	return nil
}

// Throughput returns the platoon-aggregate throughput sampler.
func (pc *PlatoonComms) Throughput() *metrics.Throughput { return pc.throughput }

// Communicating reports whether the application is currently generating
// traffic.
func (pc *PlatoonComms) Communicating() bool { return pc.platoon.Communicating() }
