// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol (RFC 3561 essentials, in the shape of ns-2's AODV agent): the
// paper's fixed routing parameter. Routes are discovered only on demand by
// flooding route requests with an expanding ring search, data packets are
// buffered during discovery, and broken links trigger route errors back
// toward traffic sources.
package aodv

import (
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Wire sizes in bytes (RFC 3561 message formats plus an IP header).
const (
	rreqSize     = 24 + 20
	rrepSize     = 20 + 20
	rerrBase     = 12 + 20
	rerrPerDest  = 8
	helloSize    = 20 + 20
	aodvPort     = 254 // routing agents talk agent-to-agent on this port
	infinityHops = 250
)

// RREQ is a route request, flooded toward the destination.
type RREQ struct {
	HopCount  int
	BcastID   uint32
	Dst       packet.NodeID
	DstSeq    uint32
	DstKnown  bool // false = "unknown sequence number" flag
	Origin    packet.NodeID
	OriginSeq uint32
	// OriginatedAt bounds the flood's lifetime: receivers discard the
	// request once it is older than BcastIDSave, so a flood cannot outlive
	// its own duplicate-suppression entries. Without it, a slow MAC (a
	// TDMA frame spanning hundreds of slots) can queue forwarded copies
	// for longer than the dedup window and the flood echoes between
	// neighbors indefinitely. Real AODV never needs this field because it
	// assumes millisecond MACs; it carries no wire bytes here.
	OriginatedAt sim.Time
}

// ClonePayload implements packet.Payload.
func (m *RREQ) ClonePayload() packet.Payload {
	c := *m
	return &c
}

// ClonePayloadOnto implements packet.ReusablePayload.
func (m *RREQ) ClonePayloadOnto(old packet.Payload) (packet.Payload, bool) {
	if o, ok := old.(*RREQ); ok {
		*o = *m
		return o, true
	}
	return nil, false
}

// RREP is a route reply, unicast hop-by-hop back to the request origin.
// Hellos are RREPs with Hello=true, broadcast with TTL 1.
type RREP struct {
	HopCount int
	Dst      packet.NodeID // the destination the route leads to
	DstSeq   uint32
	Origin   packet.NodeID // the node that asked (ignored for hellos)
	Lifetime sim.Time
	Hello    bool
}

// ClonePayload implements packet.Payload.
func (m *RREP) ClonePayload() packet.Payload {
	c := *m
	return &c
}

// ClonePayloadOnto implements packet.ReusablePayload.
func (m *RREP) ClonePayloadOnto(old packet.Payload) (packet.Payload, bool) {
	if o, ok := old.(*RREP); ok {
		*o = *m
		return o, true
	}
	return nil, false
}

// Unreachable names a destination lost with a link break.
type Unreachable struct {
	Dst packet.NodeID
	Seq uint32
}

// RERR is a route error, propagated toward sources using a broken route.
type RERR struct {
	Dests []Unreachable
}

// ClonePayload implements packet.Payload.
func (m *RERR) ClonePayload() packet.Payload {
	c := RERR{Dests: make([]Unreachable, len(m.Dests))}
	copy(c.Dests, m.Dests)
	return &c
}

// ClonePayloadOnto implements packet.ReusablePayload, reusing old's Dests
// backing array when it has the capacity.
func (m *RERR) ClonePayloadOnto(old packet.Payload) (packet.Payload, bool) {
	o, ok := old.(*RERR)
	if !ok {
		return nil, false
	}
	if cap(o.Dests) < len(m.Dests) {
		o.Dests = make([]Unreachable, len(m.Dests))
	} else {
		o.Dests = o.Dests[:len(m.Dests)]
	}
	copy(o.Dests, m.Dests)
	return o, true
}

func rerrSize(n int) int { return rerrBase + rerrPerDest*n }
