package aodv_test

import (
	"testing"

	"vanetsim/internal/aodv"
	"vanetsim/internal/app"
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
)

func fixed(x, y float64) phy.PositionFn {
	return func() geom.Vec2 { return geom.V(x, y) }
}

// line builds an 802.11 world with nodes spaced apart on the x axis.
// Spacing of 200 m keeps only adjacent nodes within the 250 m receive
// range, forcing multi-hop routes.
func line(t *testing.T, n int, spacing float64) *scenario.World {
	t.Helper()
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 42)
	for i := 0; i < n; i++ {
		w.AddNode(packet.NodeID(i), fixed(float64(i)*spacing, 0))
	}
	return w
}

func TestOneHopDiscoveryAndDelivery(t *testing.T) {
	w := line(t, 2, 100)
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 1, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[1].Net, 20)
	src.Send(512, nil)
	w.Sched.RunUntil(1)
	if sink.Received() != 1 {
		t.Fatalf("delivered %d datagrams, want 1", sink.Received())
	}
	r := w.Nodes[0].AODV.RouteTo(1)
	if r == nil || r.Hops != 1 || r.NextHop != 1 {
		t.Fatalf("route after discovery = %+v", r)
	}
	st := w.Nodes[0].AODV.Stats()
	if st.RREQOriginated < 1 {
		t.Fatal("no RREQ originated")
	}
}

func TestMultiHopDiscovery(t *testing.T) {
	w := line(t, 4, 200) // 0-1-2-3, only adjacent in range
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 3, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[3].Net, 20)
	var rxHops int
	sink.OnRecv(func(p *packet.Packet, _ sim.Time) { rxHops = p.NumForwards })
	src.Send(512, nil)
	w.Sched.RunUntil(2)
	if sink.Received() != 1 {
		t.Fatalf("delivered %d datagrams over 3 hops, want 1", sink.Received())
	}
	r := w.Nodes[0].AODV.RouteTo(3)
	if r == nil || r.Hops != 3 || r.NextHop != 1 {
		t.Fatalf("route = %+v, want 3 hops via node 1", r)
	}
	if rxHops != 2 {
		t.Fatalf("NumForwards = %d, want 2 intermediate forwards", rxHops)
	}
	// Intermediate nodes must have forwarded data.
	if w.Nodes[1].AODV.Stats().DataForwarded != 1 || w.Nodes[2].AODV.Stats().DataForwarded != 1 {
		t.Fatal("intermediate nodes did not forward")
	}
}

func TestPacketsBufferedDuringDiscovery(t *testing.T) {
	w := line(t, 3, 200)
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 2, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[2].Net, 20)
	// Burst before any route exists: all must arrive after one discovery.
	for i := 0; i < 5; i++ {
		src.Send(256, nil)
	}
	w.Sched.RunUntil(2)
	if sink.Received() != 5 {
		t.Fatalf("delivered %d/5 buffered datagrams", sink.Received())
	}
	if got := w.Nodes[0].AODV.Stats().RREQOriginated; got != 1 {
		t.Fatalf("RREQs = %d, want a single discovery for the burst", got)
	}
}

func TestUnreachableDestinationDropsBuffered(t *testing.T) {
	w := line(t, 2, 100)
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 99, 20, packet.TypeCBR)
	src.Send(256, nil)
	src.Send(256, nil)
	w.Sched.RunUntil(30)
	st := w.Nodes[0].AODV.Stats()
	if st.BufferedDropped != 2 {
		t.Fatalf("BufferedDropped = %d, want 2", st.BufferedDropped)
	}
	// Expanding ring: retries escalate the TTL, so multiple RREQs.
	wantRREQs := w.Config().AODV.RREQRetries + 1
	if st.RREQOriginated != wantRREQs {
		t.Fatalf("RREQOriginated = %d, want %d (initial + retries)", st.RREQOriginated, wantRREQs)
	}
	if w.Nodes[0].AODV.RouteTo(99) != nil {
		t.Fatal("phantom route to unreachable destination")
	}
}

func TestDuplicateRREQSuppression(t *testing.T) {
	// A dense cluster: every node hears every rebroadcast, so the dedup
	// cache must suppress the echo storm.
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 7)
	for i := 0; i < 5; i++ {
		w.AddNode(packet.NodeID(i), fixed(float64(i)*30, 0))
	}
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 4, 20, packet.TypeCBR)
	app.NewUDPSink(w.Sched, w.Nodes[4].Net, 20)
	src.Send(100, nil)
	w.Sched.RunUntil(2)
	dups := 0
	for _, n := range w.Nodes {
		dups += n.AODV.Stats().RREQDuplicates
	}
	if dups == 0 {
		t.Fatal("expected duplicate RREQs to be seen and suppressed in a dense cluster")
	}
}

func TestLinkBreakSalvageAndRediscovery(t *testing.T) {
	// 0 -> 1 -> 2; node 2 then moves out of node 1's range but within a
	// fresh route 0 -> 1 -> ... none possible; instead it moves next to 0
	// so rediscovery finds a direct route.
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 11)
	pos2 := geom.V(400, 0)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(200, 0))
	w.AddNode(2, func() geom.Vec2 { return pos2 })
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 2, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[2].Net, 20)
	src.Send(100, nil)
	w.Sched.RunUntil(1)
	if sink.Received() != 1 {
		t.Fatal("setup: two-hop route should work")
	}
	// Teleport node 2 out of node 1's range but into node 0's: the old
	// next hop fails at node 1, which repairs the route locally (node 2
	// is reachable again via node 0), so the in-flight packet survives.
	pos2 = geom.V(-150, 0)
	w.Sched.Schedule(0, func() { src.Send(100, nil) })
	w.Sched.RunUntil(3)
	if w.Nodes[1].AODV.Stats().LinkBreaks == 0 {
		t.Fatal("node 1 never detected the broken link")
	}
	if w.Nodes[1].AODV.Stats().RepairsStarted == 0 {
		t.Fatal("node 1 never attempted a local repair")
	}
	src.Send(100, nil)
	w.Sched.RunUntil(6)
	if sink.Received() != 3 {
		t.Fatalf("delivered %d/3 packets; local repair should save the in-flight one", sink.Received())
	}
	if w.Nodes[1].AODV.Stats().RepairsFailed != 0 {
		t.Fatal("repair reported failed despite an available path")
	}
}

func TestLinkBreakWithoutLocalRepairSendsRERR(t *testing.T) {
	cfg := scenario.DefaultStackConfig(scenario.MAC80211)
	cfg.AODV.LocalRepair = false
	w := scenario.NewWorld(cfg, 11)
	pos2 := geom.V(400, 0)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(200, 0))
	w.AddNode(2, func() geom.Vec2 { return pos2 })
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 2, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[2].Net, 20)
	src.Send(100, nil)
	w.Sched.RunUntil(1)
	if sink.Received() != 1 {
		t.Fatal("setup: two-hop route should work")
	}
	pos2 = geom.V(-150, 0)
	w.Sched.Schedule(0, func() { src.Send(100, nil) }) // lost in flight
	w.Sched.RunUntil(3)
	st := w.Nodes[1].AODV.Stats()
	if st.RepairsStarted != 0 {
		t.Fatal("repair attempted despite LocalRepair=false")
	}
	if st.RERRSent == 0 {
		t.Fatal("node 1 sent no route error")
	}
	// The source rediscovers on the next packet and finds node 2 directly.
	src.Send(100, nil)
	w.Sched.RunUntil(6)
	if sink.Received() < 2 {
		t.Fatalf("delivered %d packets after rediscovery", sink.Received())
	}
	r := w.Nodes[0].AODV.RouteTo(2)
	if r == nil || r.Hops != 1 || r.NextHop != 2 {
		t.Fatalf("rediscovered route = %+v, want direct 1-hop", r)
	}
}

func TestLocalRepairFailureEmitsDeferredRERR(t *testing.T) {
	// The destination disappears entirely: the intermediate node's repair
	// must fail and only then produce the route error.
	w := scenario.NewWorld(scenario.DefaultStackConfig(scenario.MAC80211), 13)
	pos2 := geom.V(400, 0)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(200, 0))
	w.AddNode(2, func() geom.Vec2 { return pos2 })
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 2, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[2].Net, 20)
	src.Send(100, nil)
	w.Sched.RunUntil(1)
	if sink.Received() != 1 {
		t.Fatal("setup failed")
	}
	pos2 = geom.V(9000, 9000) // gone for good
	w.Sched.Schedule(0, func() { src.Send(100, nil) })
	w.Sched.RunUntil(30)
	st := w.Nodes[1].AODV.Stats()
	if st.RepairsStarted == 0 {
		t.Fatal("no repair attempted")
	}
	if st.RepairsFailed == 0 {
		t.Fatal("repair against a vanished destination should fail")
	}
	if st.RERRSent == 0 {
		t.Fatal("failed repair must emit the deferred route error")
	}
	if sink.Received() != 1 {
		t.Fatal("phantom delivery to a vanished node")
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := scenario.DefaultStackConfig(scenario.MAC80211)
	cfg.AODV.ActiveRouteTimeout = 1 // second
	cfg.AODV.MyRouteTimeout = 1
	w := scenario.NewWorld(cfg, 3)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 1, 20, packet.TypeCBR)
	app.NewUDPSink(w.Sched, w.Nodes[1].Net, 20)
	src.Send(100, nil)
	w.Sched.RunUntil(0.5)
	if w.Nodes[0].AODV.RouteTo(1) == nil {
		t.Fatal("route should be fresh at 0.5 s")
	}
	w.Sched.RunUntil(3)
	if w.Nodes[0].AODV.RouteTo(1) != nil {
		t.Fatal("route should have expired after its lifetime")
	}
	st := w.Nodes[0].AODV.Stats()
	if st.RREQOriginated != 1 {
		t.Fatalf("expiry should be lazy, not trigger discovery: RREQs=%d", st.RREQOriginated)
	}
}

func TestHelloNeighborDetection(t *testing.T) {
	cfg := scenario.DefaultStackConfig(scenario.MAC80211)
	cfg.AODV.HelloInterval = 0.5
	w := scenario.NewWorld(cfg, 5)
	w.AddNode(0, fixed(0, 0))
	w.AddNode(1, fixed(100, 0))
	w.Sched.RunUntil(3)
	// Hellos alone should have created neighbour routes.
	if r := w.Nodes[0].AODV.RouteTo(1); r == nil || r.Hops != 1 {
		t.Fatalf("hello-learned route = %+v", r)
	}
	if w.Nodes[0].AODV.Stats().HellosSent < 4 {
		t.Fatalf("hellos sent = %d, want >= 4 in 3 s at 0.5 s interval", w.Nodes[0].AODV.Stats().HellosSent)
	}
}

func TestDataTTLExpiry(t *testing.T) {
	// A packet injected with TTL 1 must die at the first forwarder.
	w := line(t, 3, 200)
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 2, 20, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[2].Net, 20)
	// Prime the route first.
	src.Send(100, nil)
	w.Sched.RunUntil(2)
	if sink.Received() != 1 {
		t.Fatal("setup failed")
	}
	p := src.Send(100, nil)
	p.IP.TTL = 1 // overwrite after SendFrom set the default
	w.Sched.RunUntil(4)
	_ = p
	if sink.Received() != 2 {
		// TTL was already consumed at node 1.
		if w.Nodes[1].AODV.Stats().DataTTLExpired != 1 {
			t.Fatal("TTL-expired packet not counted")
		}
		return
	}
	t.Skip("packet raced ahead of the TTL overwrite; acceptable")
}

func TestIntermediateNodeReplies(t *testing.T) {
	// After 0 learns a route to 3 via discovery, node 1 (on the path)
	// holds a fresh route to 3. A discovery by a new node adjacent to 1
	// can be answered by 1 without reaching 3.
	w := line(t, 4, 200)
	srcA := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 10, 3, 20, packet.TypeCBR)
	app.NewUDPSink(w.Sched, w.Nodes[3].Net, 20)
	srcA.Send(100, nil)
	w.Sched.RunUntil(2)
	// New node 4 adjacent to 1 (and 0 and 2).
	n4 := w.AddNode(4, fixed(200, 100))
	srcB := app.NewUDPSource(w.Sched, n4.Net, w.PF, 10, 3, 21, packet.TypeCBR)
	srcB.Send(100, nil)
	w.Sched.RunUntil(4)
	replies := w.Nodes[1].AODV.Stats().RREPOriginated + w.Nodes[2].AODV.Stats().RREPOriginated
	if replies == 0 {
		t.Fatal("no intermediate node answered from its route cache")
	}
	if r := n4.AODV.RouteTo(3); r == nil {
		t.Fatal("node 4 has no route to 3")
	}
}

func TestAODVConfigDefaults(t *testing.T) {
	cfg := aodv.DefaultConfig()
	if cfg.TTLStart >= cfg.NetDiameter {
		t.Fatal("ring search must start below the network diameter")
	}
	if cfg.HelloInterval != 0 {
		t.Fatal("hellos must default off (link-layer detection, as in ns-2)")
	}
}
