package aodv

import (
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Route is one routing-table entry.
type Route struct {
	Dst        packet.NodeID
	Seq        uint32
	SeqValid   bool
	Hops       int
	NextHop    packet.NodeID
	Expiry     sim.Time
	Valid      bool
	Precursors map[packet.NodeID]bool
}

// table is the per-node routing table.
type table struct {
	routes map[packet.NodeID]*Route
}

func newTable() *table {
	return &table{routes: make(map[packet.NodeID]*Route)}
}

// lookup returns the entry for dst, or nil.
func (t *table) lookup(dst packet.NodeID) *Route { return t.routes[dst] }

// valid returns the entry for dst only if it is usable at time now.
func (t *table) valid(dst packet.NodeID, now sim.Time) *Route {
	r := t.routes[dst]
	if r == nil || !r.Valid || r.Expiry < now {
		return nil
	}
	return r
}

// ensure returns the entry for dst, creating an invalid placeholder if
// none exists.
func (t *table) ensure(dst packet.NodeID) *Route {
	r := t.routes[dst]
	if r == nil {
		r = &Route{Dst: dst, NextHop: packet.None, Precursors: make(map[packet.NodeID]bool)}
		t.routes[dst] = r
	}
	return r
}

// update installs fresher route information for dst, following RFC 3561
// §6.2: accept if the sequence number is newer, or equally fresh with a
// shorter hop count, or the existing entry is unusable/unknown-seq.
// It returns true if the entry changed.
func (t *table) update(dst packet.NodeID, seq uint32, seqValid bool, hops int, nextHop packet.NodeID, expiry sim.Time) bool {
	r := t.ensure(dst)
	accept := false
	switch {
	case !r.Valid:
		accept = true
	case !r.SeqValid:
		accept = true
	case seqValid && int32(seq-r.Seq) > 0:
		accept = true
	case seqValid && seq == r.Seq && hops < r.Hops:
		accept = true
	case !seqValid:
		// Unknown-sequence updates (e.g. from overheard previous hops)
		// only refresh lifetime of an existing entry toward the same next
		// hop; they never downgrade a known-seq route to a different hop.
		if r.NextHop == nextHop {
			if expiry > r.Expiry {
				r.Expiry = expiry
			}
			return false
		}
		return false
	}
	if !accept {
		// Same-or-older info toward the same next hop still proves the
		// route is alive: extend its lifetime.
		if r.NextHop == nextHop && expiry > r.Expiry {
			r.Expiry = expiry
		}
		return false
	}
	r.Seq = seq
	r.SeqValid = seqValid
	r.Hops = hops
	r.NextHop = nextHop
	if expiry > r.Expiry {
		r.Expiry = expiry
	}
	r.Valid = true
	return true
}

// refresh extends the lifetime of an active route (and its next hop's
// entry is the caller's concern).
func (t *table) refresh(dst packet.NodeID, until sim.Time) {
	if r := t.routes[dst]; r != nil && r.Valid && until > r.Expiry {
		r.Expiry = until
	}
}

// invalidate marks the route to dst broken, bumping its sequence number so
// stale information cannot resurrect it. It returns the entry, or nil.
func (t *table) invalidate(dst packet.NodeID) *Route {
	r := t.routes[dst]
	if r == nil || !r.Valid {
		return nil
	}
	r.Valid = false
	if r.SeqValid {
		r.Seq++
	}
	r.Hops = infinityHops
	return r
}

// brokenVia returns every valid route whose next hop is the given
// neighbour — the set invalidated by a link break.
func (t *table) brokenVia(neighbour packet.NodeID) []*Route {
	var out []*Route
	for _, r := range t.routes {
		if r.Valid && r.NextHop == neighbour {
			out = append(out, r)
		}
	}
	return out
}

// snapshot returns a copy of all entries, for inspection and tests.
func (t *table) snapshot() []Route {
	out := make([]Route, 0, len(t.routes))
	for _, r := range t.routes {
		cp := *r
		cp.Precursors = nil
		out = append(out, cp)
	}
	return out
}
