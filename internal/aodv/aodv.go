package aodv

import (
	"vanetsim/internal/check"
	"vanetsim/internal/netlayer"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// Config holds AODV protocol constants. DefaultConfig matches ns-2's AODV
// defaults with link-layer failure detection (hellos disabled), the
// configuration the paper's Tcl script selects.
type Config struct {
	// ActiveRouteTimeout is the lifetime granted to a route each time it
	// carries traffic.
	ActiveRouteTimeout sim.Time
	// MyRouteTimeout is the lifetime a destination grants in its RREP.
	MyRouteTimeout sim.Time
	// NodeTraversalTime estimates per-hop latency; ring-search timeouts
	// are 2·TTL·NodeTraversalTime.
	NodeTraversalTime sim.Time
	// NetDiameter bounds the final ring-search TTL.
	NetDiameter int
	// RREQRetries is how many times discovery is retried before the
	// buffered packets are dropped.
	RREQRetries int
	// TTLStart/TTLIncrement/TTLThreshold parameterise the expanding ring.
	TTLStart, TTLIncrement, TTLThreshold int
	// BcastIDSave is how long (origin, broadcast-id) pairs are remembered
	// for RREQ duplicate suppression.
	BcastIDSave sim.Time
	// MaxBufferPerDest bounds packets queued awaiting a route.
	MaxBufferPerDest int
	// BroadcastJitter randomises RREQ rebroadcast to desynchronise floods.
	BroadcastJitter sim.Time
	// HelloInterval enables periodic hello beacons when positive; zero
	// relies on MAC-layer failure detection (ns-2's -llFailure, and the
	// only failure signal available under TDMA-with-ACKs-off is none, so
	// hellos are the ablation knob for that).
	HelloInterval sim.Time
	// AllowedHelloLoss consecutive missed hellos declare a link broken.
	AllowedHelloLoss int
	// LocalRepair lets an intermediate node that loses a downstream link
	// try to re-discover the destination itself (RFC 3561 §6.12) instead
	// of immediately reporting a route error; the error is sent only if
	// the repair fails.
	LocalRepair bool
	// MaxRepairHops bounds which breaks are repairable: only routes whose
	// remaining distance was at most this many hops (RFC's
	// MAX_REPAIR_TTL intent).
	MaxRepairHops int
}

// DefaultConfig returns ns-2-flavoured AODV defaults.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 10 * sim.Second,
		MyRouteTimeout:     10 * sim.Second,
		NodeTraversalTime:  30 * sim.Millisecond,
		NetDiameter:        16,
		RREQRetries:        3,
		TTLStart:           5,
		TTLIncrement:       2,
		TTLThreshold:       7,
		BcastIDSave:        6 * sim.Second,
		MaxBufferPerDest:   64,
		BroadcastJitter:    10 * sim.Millisecond,
		HelloInterval:      0,
		AllowedHelloLoss:   2,
		LocalRepair:        true,
		MaxRepairHops:      5,
	}
}

// Stats counts protocol events.
type Stats struct {
	RREQOriginated  int
	RREQForwarded   int
	RREQDuplicates  int
	RREQStale       int // floods discarded for outliving the dedup window
	RREPOriginated  int
	RREPForwarded   int
	RERRSent        int
	HellosSent      int
	RREQBytes       int // bytes of RREQ traffic offered to the stack
	RREPBytes       int // bytes of RREP traffic offered to the stack
	RERRBytes       int // bytes of RERR traffic offered to the stack
	HelloBytes      int // bytes of hello traffic offered to the stack
	DataForwarded   int
	DataNoRoute     int // data dropped (or RERRed) for lack of a route
	DataTTLExpired  int
	BufferedDropped int // buffered packets abandoned after failed discovery
	LinkBreaks      int
	Salvaged        int // packets re-queued for rediscovery at the source
	RepairsStarted  int // local repairs attempted at intermediate nodes
	RepairsFailed   int // local repairs that ended in a route error
}

type seenKey struct {
	origin packet.NodeID
	id     uint32
}

// discovery tracks one in-flight route search.
type discovery struct {
	ttl     int
	retries int
	timer   sim.Timer
	buffer  []*packet.Packet
	// repair marks a local-repair search: its failure must be announced
	// with a route error (the sources don't yet know the route is gone).
	repair bool
}

// Agent is one node's AODV routing agent.
type Agent struct {
	id    packet.NodeID
	sched *sim.Scheduler
	net   *netlayer.Net
	pf    *packet.Factory
	rng   *sim.RNG
	cfg   Config

	seq     uint32
	bcastID uint32
	tbl     *table
	seen    map[seenKey]sim.Time
	disc    map[packet.NodeID]*discovery

	neighbors  map[packet.NodeID]sim.Time // last-heard times (hello mode)
	helloTimer sim.Timer

	stats Stats

	// chk validates routes at use time and packet hop budgets along paths
	// (nil when the invariant checker is disabled).
	chk *check.RouteGuard

	// spans records routing decisions for the causal tracer (nil when
	// tracing is disarmed).
	spans *span.Recorder
}

var _ netlayer.Routing = (*Agent)(nil)

// New creates an AODV agent for the node owning net and installs itself as
// that layer's routing agent.
func New(sched *sim.Scheduler, net *netlayer.Net, pf *packet.Factory, rng *sim.RNG, cfg Config) *Agent {
	a := &Agent{
		id:        net.ID(),
		sched:     sched,
		net:       net,
		pf:        pf,
		rng:       rng,
		cfg:       cfg,
		tbl:       newTable(),
		seen:      make(map[seenKey]sim.Time),
		disc:      make(map[packet.NodeID]*discovery),
		neighbors: make(map[packet.NodeID]sim.Time),
	}
	net.SetRouting(a)
	if cfg.HelloInterval > 0 {
		a.helloTimer = sched.ScheduleKind(sim.KindRouting, cfg.HelloInterval, a.onHelloTimer)
	}
	return a
}

// Stats returns protocol counters.
func (a *Agent) Stats() Stats { return a.stats }

// SetCheck wires the world-shared route guard (may be nil).
func (a *Agent) SetCheck(g *check.RouteGuard) { a.chk = g }

// SetSpans wires the causal span recorder (may be nil).
func (a *Agent) SetSpans(rec *span.Recorder) { a.spans = rec }

// Routes returns a snapshot of the routing table for inspection.
func (a *Agent) Routes() []Route { return a.tbl.snapshot() }

// RouteTo returns the usable route to dst, or nil.
func (a *Agent) RouteTo(dst packet.NodeID) *Route {
	r := a.tbl.valid(dst, a.sched.Now())
	if r == nil {
		return nil
	}
	cp := *r
	cp.Precursors = nil
	return &cp
}

// HandleOutgoing implements netlayer.Routing.
func (a *Agent) HandleOutgoing(p *packet.Packet) {
	now := a.sched.Now()
	if r := a.tbl.valid(p.IP.Dst, now); r != nil {
		a.useRoute(p, r)
		return
	}
	a.bufferAndDiscover(p)
}

// useRoute stamps the next hop on p, refreshes the route chain, and
// transmits.
func (a *Agent) useRoute(p *packet.Packet, r *Route) {
	now := a.sched.Now()
	a.chk.UseRoute(now, r.Dst, r.Valid, r.Expiry, r.NextHop, r.Hops)
	a.spans.Record(span.OpRouteTx, span.CauseNone, a.id, p)
	until := now + a.cfg.ActiveRouteTimeout
	p.IP.NextHop = r.NextHop
	a.tbl.refresh(r.Dst, until)
	a.tbl.refresh(r.NextHop, until)
	a.net.Send(p)
}

func (a *Agent) bufferAndDiscover(p *packet.Packet) {
	a.bufferAndDiscoverMode(p, false, span.CauseNone)
}

// bufferAndDiscoverMode buffers p pending discovery; cause distinguishes a
// plain no-route buffer (CauseNone) from local repair and source salvage in
// the span record.
func (a *Agent) bufferAndDiscoverMode(p *packet.Packet, repair bool, cause span.Cause) {
	d := a.disc[p.IP.Dst]
	if d == nil {
		d = &discovery{ttl: a.cfg.TTLStart, repair: repair}
		a.disc[p.IP.Dst] = d
		a.sendRREQ(p.IP.Dst, d)
	}
	if len(d.buffer) >= a.cfg.MaxBufferPerDest {
		a.stats.BufferedDropped++
		a.spans.Record(span.OpNetDrop, span.CauseBufOverflow, a.id, p)
		return
	}
	a.spans.Record(span.OpRouteBuf, cause, a.id, p)
	d.buffer = append(d.buffer, p)
}

// sendRREQ floods a request for dst with the discovery's current ring TTL
// and arms the retry timer.
func (a *Agent) sendRREQ(dst packet.NodeID, d *discovery) {
	a.seq++
	a.bcastID++
	a.stats.RREQOriginated++
	rq := &RREQ{
		BcastID:      a.bcastID,
		Dst:          dst,
		Origin:       a.id,
		OriginSeq:    a.seq,
		OriginatedAt: a.sched.Now(),
	}
	if e := a.tbl.lookup(dst); e != nil && e.SeqValid {
		rq.DstSeq = e.Seq
		rq.DstKnown = true
	}
	a.seen[seenKey{a.id, a.bcastID}] = a.sched.Now() + a.cfg.BcastIDSave
	p := a.pf.New(packet.TypeAODV, rreqSize, a.sched.Now())
	a.stats.RREQBytes += rreqSize
	p.IP = packet.IPHdr{
		Src: a.id, Dst: packet.Broadcast,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: d.ttl, NextHop: packet.Broadcast,
	}
	p.Payload = rq
	a.net.Send(p)

	wait := 2 * sim.Time(float64(d.ttl)) * a.cfg.NodeTraversalTime
	d.timer = a.sched.ScheduleKind(sim.KindRouting, wait, func() { a.onDiscoveryTimeout(dst) })
}

func (a *Agent) onDiscoveryTimeout(dst packet.NodeID) {
	d := a.disc[dst]
	if d == nil {
		return
	}
	d.retries++
	if d.retries > a.cfg.RREQRetries {
		a.stats.BufferedDropped += len(d.buffer)
		for _, bp := range d.buffer {
			a.spans.Record(span.OpNetDrop, span.CauseDiscoveryFail, a.id, bp)
		}
		if d.repair {
			// The repair failed: now the upstream sources must hear about
			// the broken route.
			a.stats.RepairsFailed++
			a.sendRERR([]Unreachable{{Dst: dst, Seq: a.seqOf(dst)}})
		}
		delete(a.disc, dst)
		return
	}
	if d.ttl < a.cfg.TTLThreshold {
		d.ttl += a.cfg.TTLIncrement
	} else {
		d.ttl = a.cfg.NetDiameter
	}
	a.sendRREQ(dst, d)
}

// HandleIncoming implements netlayer.Routing.
func (a *Agent) HandleIncoming(p *packet.Packet) {
	if p.Type == packet.TypeAODV {
		switch m := p.Payload.(type) {
		case *RREQ:
			a.recvRREQ(p, m)
		case *RREP:
			a.recvRREP(p, m)
		case *RERR:
			a.recvRERR(p, m)
		}
		return
	}
	a.handleData(p)
}

func (a *Agent) handleData(p *packet.Packet) {
	now := a.sched.Now()
	a.noteNeighbor(p.Mac.Src)
	if p.IP.Dst == a.id {
		a.net.DeliverLocally(p)
		return
	}
	p.IP.TTL--
	if p.IP.TTL <= 0 {
		a.stats.DataTTLExpired++
		a.spans.Record(span.OpNetDrop, span.CauseTTLExpired, a.id, p)
		return
	}
	r := a.tbl.valid(p.IP.Dst, now)
	if r == nil {
		// Forwarding failure: report back toward the source.
		a.stats.DataNoRoute++
		a.spans.Record(span.OpNetDrop, span.CauseNoRoute, a.id, p)
		a.sendRERR([]Unreachable{{Dst: p.IP.Dst, Seq: a.seqOf(p.IP.Dst)}})
		return
	}
	p.NumForwards++
	a.chk.Forward(now, p.UID, p.IP.TTL, p.NumForwards)
	a.spans.Record(span.OpFwd, span.CauseNone, a.id, p)
	a.stats.DataForwarded++
	// Traffic keeps the whole chain alive: destination, next hop, source,
	// and previous hop (RFC 3561 §6.2 last paragraph).
	until := now + a.cfg.ActiveRouteTimeout
	a.tbl.refresh(p.IP.Src, until)
	a.tbl.refresh(p.Mac.Src, until)
	a.useRoute(p, r)
}

func (a *Agent) seqOf(dst packet.NodeID) uint32 {
	if e := a.tbl.lookup(dst); e != nil {
		return e.Seq
	}
	return 0
}

func (a *Agent) recvRREQ(p *packet.Packet, rq *RREQ) {
	now := a.sched.Now()
	from := p.Mac.Src
	a.noteNeighbor(from)
	if rq.Origin == a.id {
		return // our own flood echoed back
	}
	if now-rq.OriginatedAt > a.cfg.BcastIDSave {
		// The flood has outlived its dedup window (it sat in slow MAC
		// queues): discard it, or expired seen-entries would let it echo
		// between neighbors forever.
		a.stats.RREQStale++
		return
	}
	key := seenKey{rq.Origin, rq.BcastID}
	if _, dup := a.seen[key]; dup {
		a.stats.RREQDuplicates++
		return
	}
	// The entry must outlast every copy of the flood still in flight; the
	// age check above guarantees none survives past OriginatedAt + save.
	a.seen[key] = rq.OriginatedAt + a.cfg.BcastIDSave
	a.pruneSeen(now)

	// Route back to the previous hop and to the originator.
	a.tbl.update(from, 0, false, 1, from, now+a.cfg.ActiveRouteTimeout)
	a.tbl.update(rq.Origin, rq.OriginSeq, true, rq.HopCount+1, from, now+a.cfg.ActiveRouteTimeout)

	if rq.Dst == a.id {
		// We are the destination: answer with our own sequence number,
		// first advancing it to at least the requester's view.
		if rq.DstKnown && int32(rq.DstSeq-a.seq) > 0 {
			a.seq = rq.DstSeq
		}
		a.sendRREP(rq.Origin, a.id, 0, a.seq, a.cfg.MyRouteTimeout, from)
		return
	}
	if fr := a.tbl.valid(rq.Dst, now); fr != nil && fr.SeqValid && (!rq.DstKnown || int32(fr.Seq-rq.DstSeq) >= 0) {
		// Intermediate node with a fresh-enough route replies on the
		// destination's behalf.
		fr.Precursors[from] = true
		if rev := a.tbl.lookup(rq.Origin); rev != nil {
			rev.Precursors[fr.NextHop] = true
		}
		a.sendRREP(rq.Origin, rq.Dst, fr.Hops, fr.Seq, fr.Expiry-now, from)
		return
	}
	// Rebroadcast the flood while TTL remains, after a desynchronising
	// jitter.
	if p.IP.TTL <= 1 {
		return
	}
	fwd := a.pf.New(packet.TypeAODV, rreqSize, now)
	a.stats.RREQBytes += rreqSize
	fwd.IP = packet.IPHdr{
		Src: a.id, Dst: packet.Broadcast,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: p.IP.TTL - 1, NextHop: packet.Broadcast,
	}
	frq := *rq
	frq.HopCount++
	fwd.Payload = &frq
	a.stats.RREQForwarded++
	a.sched.ScheduleKind(sim.KindRouting, a.rng.Duration(0, a.cfg.BroadcastJitter), func() {
		a.net.Send(fwd)
	})
}

// sendRREP unicasts a reply toward origin via nextHop.
func (a *Agent) sendRREP(origin, dst packet.NodeID, hops int, seq uint32, lifetime sim.Time, nextHop packet.NodeID) {
	a.stats.RREPOriginated++
	p := a.pf.New(packet.TypeAODV, rrepSize, a.sched.Now())
	a.stats.RREPBytes += rrepSize
	p.IP = packet.IPHdr{
		Src: a.id, Dst: origin,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: netlayer.DefaultTTL, NextHop: nextHop,
	}
	p.Payload = &RREP{HopCount: hops, Dst: dst, DstSeq: seq, Origin: origin, Lifetime: lifetime}
	a.net.Send(p)
}

func (a *Agent) recvRREP(p *packet.Packet, rp *RREP) {
	now := a.sched.Now()
	from := p.Mac.Src
	if rp.Hello {
		a.neighbors[from] = now
		life := sim.Time(float64(a.cfg.AllowedHelloLoss+1)) * a.cfg.HelloInterval
		if life == 0 {
			life = a.cfg.ActiveRouteTimeout
		}
		a.tbl.update(rp.Dst, rp.DstSeq, true, 1, from, now+life)
		return
	}
	a.noteNeighbor(from)
	a.tbl.update(from, 0, false, 1, from, now+a.cfg.ActiveRouteTimeout)
	a.tbl.update(rp.Dst, rp.DstSeq, true, rp.HopCount+1, from, now+rp.Lifetime)

	if rp.Origin == a.id {
		// Our discovery completed: release everything buffered for dst.
		if d := a.disc[rp.Dst]; d != nil {
			d.timer.Cancel()
			delete(a.disc, rp.Dst)
			r := a.tbl.valid(rp.Dst, now)
			for _, bp := range d.buffer {
				if r == nil {
					a.stats.BufferedDropped++
					a.spans.Record(span.OpNetDrop, span.CauseDiscoveryFail, a.id, bp)
					continue
				}
				a.useRoute(bp, r)
			}
		}
		return
	}
	// Forward the reply one hop toward the origin along the reverse route.
	rev := a.tbl.valid(rp.Origin, now)
	if rev == nil {
		return
	}
	if fr := a.tbl.lookup(rp.Dst); fr != nil {
		fr.Precursors[rev.NextHop] = true
	}
	if rr := a.tbl.lookup(rp.Origin); rr != nil {
		rr.Precursors[from] = true
	}
	fwd := a.pf.New(packet.TypeAODV, rrepSize, now)
	a.stats.RREPBytes += rrepSize
	fwd.IP = packet.IPHdr{
		Src: a.id, Dst: rp.Origin,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: p.IP.TTL - 1, NextHop: rev.NextHop,
	}
	frp := *rp
	frp.HopCount++
	fwd.Payload = &frp
	a.stats.RREPForwarded++
	a.net.Send(fwd)
}

func (a *Agent) recvRERR(p *packet.Packet, re *RERR) {
	from := p.Mac.Src
	var propagate []Unreachable
	for _, u := range re.Dests {
		r := a.tbl.lookup(u.Dst)
		if r == nil || !r.Valid || r.NextHop != from {
			continue
		}
		if int32(u.Seq-r.Seq) > 0 {
			r.Seq = u.Seq
			r.SeqValid = true
		}
		hadPrecursors := len(r.Precursors) > 0
		r.Valid = false
		r.Hops = infinityHops
		if hadPrecursors {
			propagate = append(propagate, Unreachable{Dst: u.Dst, Seq: r.Seq})
		}
	}
	if len(propagate) > 0 {
		a.sendRERR(propagate)
	}
}

// sendRERR broadcasts a route error one hop.
func (a *Agent) sendRERR(dests []Unreachable) {
	if len(dests) == 0 {
		return
	}
	a.stats.RERRSent++
	p := a.pf.New(packet.TypeAODV, rerrSize(len(dests)), a.sched.Now())
	a.stats.RERRBytes += rerrSize(len(dests))
	p.IP = packet.IPHdr{
		Src: a.id, Dst: packet.Broadcast,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: 1, NextHop: packet.Broadcast,
	}
	p.Payload = &RERR{Dests: dests}
	a.net.Send(p)
}

// MacTxDone implements netlayer.Routing: a failed unicast is a broken link.
func (a *Agent) MacTxDone(p *packet.Packet, ok bool) {
	if ok {
		return
	}
	a.linkBreak(p.Mac.Dst, p)
}

// linkBreak invalidates every route through the lost neighbour, emits a
// route error, and salvages the undelivered packet if we originated it.
func (a *Agent) linkBreak(neighbour packet.NodeID, p *packet.Packet) {
	a.stats.LinkBreaks++
	delete(a.neighbors, neighbour)

	// Decide whether the in-flight packet's destination is worth a local
	// repair (RFC 3561 §6.12): we were forwarding (not the source) and
	// the destination was close enough. Must be checked before the route
	// is invalidated, while its hop count is still meaningful.
	repairDst := packet.None
	isData := p != nil && p.Type != packet.TypeAODV && p.IP.Dst != packet.Broadcast
	if a.cfg.LocalRepair && isData && p.IP.Src != a.id {
		if r := a.tbl.lookup(p.IP.Dst); r != nil && r.Valid && r.NextHop == neighbour && r.Hops <= a.cfg.MaxRepairHops {
			repairDst = p.IP.Dst
		}
	}

	var dests []Unreachable
	for _, r := range a.tbl.brokenVia(neighbour) {
		a.tbl.invalidate(r.Dst)
		if r.Dst == repairDst {
			continue // route error deferred until the repair verdict
		}
		if len(r.Precursors) > 0 {
			dests = append(dests, Unreachable{Dst: r.Dst, Seq: r.Seq})
		}
	}
	if len(dests) > 0 {
		a.sendRERR(dests)
	}

	switch {
	case repairDst != packet.None:
		a.stats.RepairsStarted++
		a.bufferAndDiscoverMode(p, true, span.CauseRepair)
	case isData && p.IP.Src == a.id:
		// Source salvage: rediscover and retry rather than silently lose
		// locally originated data.
		a.stats.Salvaged++
		a.bufferAndDiscoverMode(p, false, span.CauseSalvage)
	}
}

// onHelloTimer broadcasts a hello and expires silent neighbours.
func (a *Agent) onHelloTimer() {
	now := a.sched.Now()
	a.stats.HellosSent++
	p := a.pf.New(packet.TypeAODV, helloSize, now)
	a.stats.HelloBytes += helloSize
	p.IP = packet.IPHdr{
		Src: a.id, Dst: packet.Broadcast,
		SrcPort: aodvPort, DstPort: aodvPort,
		TTL: 1, NextHop: packet.Broadcast,
	}
	p.Payload = &RREP{Dst: a.id, DstSeq: a.seq, Lifetime: sim.Time(float64(a.cfg.AllowedHelloLoss+1)) * a.cfg.HelloInterval, Hello: true}
	a.net.Send(p)

	deadline := now - sim.Time(float64(a.cfg.AllowedHelloLoss))*a.cfg.HelloInterval
	for n, last := range a.neighbors {
		if last < deadline {
			a.linkBreak(n, nil)
		}
	}
	a.helloTimer = a.sched.ScheduleKind(sim.KindRouting, a.cfg.HelloInterval, a.onHelloTimer)
}

// noteNeighbor records that we heard from a neighbour (hello bookkeeping).
func (a *Agent) noteNeighbor(n packet.NodeID) {
	if a.cfg.HelloInterval <= 0 {
		// Hello mode off: nothing ever reads the last-heard table, so the
		// per-reception map write would be pure overhead on the hot path.
		return
	}
	if n == packet.None || n == packet.Broadcast {
		return
	}
	a.neighbors[n] = a.sched.Now()
}

// pruneSeen drops expired RREQ-dedup entries; called opportunistically.
func (a *Agent) pruneSeen(now sim.Time) {
	if len(a.seen) < 256 {
		return
	}
	for k, exp := range a.seen {
		if exp <= now {
			delete(a.seen, k)
		}
	}
}
