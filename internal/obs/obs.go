// Package obs is the simulator's cross-layer telemetry subsystem: a
// registry of counters, gauges (with high-water marks), fixed-bucket
// histograms, and time-binned series that every stack layer reports into.
//
// The design rule is zero overhead when disabled. A nil *Registry is the
// "off" state: it hands out nil instruments, and every instrument method is
// a nil-safe no-op, so instrumented code holds possibly-nil pointers and
// calls them unconditionally — the cost of disabled telemetry is one nil
// check per event, with no allocation and no branch on a config struct.
//
// Instrumentation must also be observation-only: nothing in this package
// consumes simulator randomness or schedules events, so a run with
// telemetry enabled produces byte-identical traces and figures to the same
// run with telemetry disabled (TestTelemetryDeterminism enforces this).
package obs

import (
	"fmt"
	"math"
	"sort"

	"vanetsim/internal/sim"
)

// Registry owns one run's instruments, keyed by name. The zero value of
// *Registry (nil) is the disabled state; NewRegistry returns an enabled
// one. Registries are not safe for concurrent use; the simulator is
// single-threaded.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns (creating if needed) the named counter, or nil when the
// registry is disabled. Help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil when
// disabled.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (ascending), or nil when disabled. Bounds are
// fixed at creation; a value above the last bound lands in the overflow
// bucket.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	r.hists[name] = h
	return h
}

// Series returns (creating if needed) the named time-binned series with
// the given bin width, or nil when disabled.
func (r *Registry) Series(name, help string, bin sim.Time) *Series {
	if r == nil {
		return nil
	}
	if s, ok := r.series[name]; ok {
		return s
	}
	if bin <= 0 {
		panic(fmt.Sprintf("obs: series %q needs a positive bin width", name))
	}
	s := &Series{name: name, help: help, bin: bin}
	r.series[name] = s
	return s
}

// Counter is a monotonically increasing event count. All methods are
// nil-safe no-ops on a nil receiver.
type Counter struct {
	name, help string
	v          uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also remembers its high-water
// mark — the natural shape for queue occupancy and heap depth. All methods
// are nil-safe no-ops on a nil receiver.
type Gauge struct {
	name, help string
	v, hwm     float64
	set        bool
}

// Set records the current level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	g.set = true
	if v > g.hwm {
		g.hwm = v
	}
}

// Add shifts the current level by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HighWater returns the maximum level ever set (0 for nil or never-set).
func (g *Gauge) HighWater() float64 {
	if g == nil {
		return 0
	}
	return g.hwm
}

// Histogram accumulates a value distribution into fixed buckets, plus
// exact sum/count/min/max. All methods are nil-safe no-ops on a nil
// receiver.
type Histogram struct {
	name, help string
	bounds     []float64 // bucket upper bounds, ascending
	counts     []uint64  // len(bounds)+1; last is overflow
	sum        float64
	n          uint64
	min, max   float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveDuration records a simulated duration in seconds.
func (h *Histogram) ObserveDuration(d sim.Time) { h.Observe(float64(d)) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the observation mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper-bound estimate of the q-quantile from the
// bucket counts (the bound of the bucket the quantile falls in; +Inf for
// the overflow bucket, clamped to the observed max).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return math.Min(h.bounds[i], h.max)
			}
			return h.max
		}
	}
	return h.max
}

// Series accumulates (time, value) observations into fixed-width time
// bins, keeping per-bin sum and count so both totals and means can be
// exported. All methods are nil-safe no-ops on a nil receiver.
type Series struct {
	name, help string
	bin        sim.Time
	sums       []float64
	ns         []uint64
}

// Observe records value v at simulated time t.
func (s *Series) Observe(t sim.Time, v float64) {
	if s == nil {
		return
	}
	if t < 0 {
		t = 0
	}
	i := int(t / s.bin)
	for len(s.sums) <= i {
		s.sums = append(s.sums, 0)
		s.ns = append(s.ns, 0)
	}
	s.sums[i] += v
	s.ns[i]++
}

// Bins returns the number of populated bins (trailing empty bins
// included).
func (s *Series) Bins() int {
	if s == nil {
		return 0
	}
	return len(s.sums)
}
