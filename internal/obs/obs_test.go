package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryIsDisabledAndSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1, 2})
	s := r.Series("w", "", 1)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1.5)
	h.ObserveDuration(2)
	s.Observe(10, 1)
	if c.Value() != 0 || g.Value() != 0 || g.HighWater() != 0 || h.Count() != 0 || h.Mean() != 0 || s.Bins() != 0 {
		t.Fatal("nil instruments reported non-zero state")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var snap *Snapshot
	if snap.FormatText() != "" {
		t.Fatal("nil snapshot formats non-empty")
	}
	if err := snap.NDJSON(nil); err != nil {
		t.Fatal(err)
	}
	if err := snap.Prometheus(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events", "total events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("events", "other help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(4)
	g.Set(2)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	if g.HighWater() != 7 {
		t.Fatalf("high water = %v, want 7", g.HighWater())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	snap, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []uint64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Min != 0.0005 || snap.Max != 5 {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
	// p50: rank 3 of 5 falls in the <= 0.01 bucket.
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	// p99: rank 5 lands in the overflow bucket -> observed max.
	if got := h.Quantile(0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
}

func TestHistogramBoundaryValueGoesToItsBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound: belongs to the <= 1 bucket
	snap, _ := r.Snapshot().Histogram("b")
	if snap.Counts[0] != 1 {
		t.Fatalf("boundary value landed in %v", snap.Counts)
	}
}

func TestSeriesBinning(t *testing.T) {
	r := NewRegistry()
	s := r.Series("occ", "occupancy", 2)
	s.Observe(0.5, 10)
	s.Observe(1.9, 20)
	s.Observe(4.1, 5)
	if s.Bins() != 3 {
		t.Fatalf("bins = %d, want 3", s.Bins())
	}
	snap := r.Snapshot().Series[0]
	if snap.Sums[0] != 30 || snap.Counts[0] != 2 {
		t.Fatalf("bin 0 = %v/%v", snap.Sums[0], snap.Counts[0])
	}
	if snap.Sums[1] != 0 || snap.Sums[2] != 5 {
		t.Fatalf("sums = %v", snap.Sums)
	}
}

func TestExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("phy.tx_frames", "frames transmitted").Add(42)
	g := r.Gauge("ifq.occupancy", "queue depth")
	g.Set(7)
	g.Set(3)
	h := r.Histogram("tcp.rtt_s", "round trip", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	s := r.Series("sched.events_per_s", "event rate", 1)
	s.Observe(0.1, 100)
	snap := r.Snapshot()

	text := snap.FormatText()
	for _, want := range []string{"phy.tx_frames", "42", "ifq.occupancy", "7.0000", "tcp.rtt_s", "sched.events_per_s"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text export missing %q:\n%s", want, text)
		}
	}

	var nb strings.Builder
	if err := snap.NDJSON(&nb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("ndjson lines = %d, want 4:\n%s", len(lines), nb.String())
	}
	if !strings.Contains(lines[0], `"kind":"counter"`) || !strings.Contains(lines[0], "phy.tx_frames") {
		t.Fatalf("ndjson first line = %s", lines[0])
	}

	var pb strings.Builder
	if err := snap.Prometheus(&pb); err != nil {
		t.Fatal(err)
	}
	prom := pb.String()
	for _, want := range []string{
		"# TYPE phy_tx_frames counter", "phy_tx_frames 42",
		"ifq_occupancy_high_water 7",
		"# TYPE tcp_rtt_s histogram", `tcp_rtt_s_bucket{le="+Inf"} 2`,
		"tcp_rtt_s_count 2",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, prom)
		}
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(1)
	r.Gauge("b", "").Set(2)
	snap := r.Snapshot()
	if v, ok := snap.Counter("a"); !ok || v != 1 {
		t.Fatalf("Counter lookup = %v, %v", v, ok)
	}
	if g, ok := snap.Gauge("b"); !ok || g.Value != 2 {
		t.Fatalf("Gauge lookup = %v, %v", g, ok)
	}
	if _, ok := snap.Counter("missing"); ok {
		t.Fatal("missing counter found")
	}
}
