// Strict conformance test for the Prometheus text exposition exporter:
// every emitted line is run through a spec-level parser that enforces
// metric-name validity, label-name validity and label-value escaping,
// HELP escaping, one TYPE per family declared before its first sample,
// counter non-negativity, and full histogram shape (a "+Inf" bucket,
// cumulative monotone bucket counts, and _count consistent with the
// terminal bucket). A formatting regression that scrape-time parsers
// would reject fails here first.
package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promMetricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promTypes        = map[string]bool{
		"counter": true, "gauge": true, "histogram": true,
		"summary": true, "untyped": true,
	}
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily accumulates one metric family's declared type and samples.
// For histograms the family owns the _bucket/_sum/_count suffixed samples.
type promFamily struct {
	typ     string
	help    bool
	samples []promSample
}

// parseExposition is the strict parser. It fails the test on any line a
// spec-compliant scraper would reject.
func parseExposition(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	if text != "" && !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition does not end with a newline")
	}
	fams := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{}
			fams[name] = f
		}
		return f
	}
	// baseFamily strips histogram sample suffixes so _bucket/_sum/_count
	// lines attach to the declared histogram family.
	baseFamily := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			t.Fatalf("line %d: empty line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promMetricNameRE.MatchString(name) {
				t.Fatalf("line %d: malformed HELP %q", lineNo, line)
			}
			f := family(name)
			if f.help {
				t.Fatalf("line %d: second HELP for %s", lineNo, name)
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: HELP for %s after its samples", lineNo, name)
			}
			// Escaping check: any backslash must start \\ or \n.
			for j := 0; j < len(help); j++ {
				if help[j] != '\\' {
					continue
				}
				if j+1 >= len(help) || (help[j+1] != '\\' && help[j+1] != 'n') {
					t.Fatalf("line %d: bad HELP escape in %q", lineNo, help)
				}
				j++
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !promMetricNameRE.MatchString(fields[0]) || !promTypes[fields[1]] {
				t.Fatalf("line %d: malformed TYPE %q", lineNo, line)
			}
			f := family(fields[0])
			if f.typ != "" {
				t.Fatalf("line %d: second TYPE for %s", lineNo, fields[0])
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, fields[0])
			}
			f.typ = fields[1]
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		default:
			s := parseSampleLine(t, lineNo, line)
			family(baseFamily(s.name)).samples = append(family(baseFamily(s.name)).samples, s)
		}
	}
	return fams
}

// parseSampleLine parses `name{label="value",...} value` with strict
// name/label/escape validation.
func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		t.Fatalf("line %d: malformed sample %q", lineNo, line)
	}
	s := promSample{name: rest[:end], labels: map[string]string{}}
	if !promMetricNameRE.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for rest != "" && rest[0] != '}' {
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 {
				t.Fatalf("line %d: malformed label in %q", lineNo, line)
			}
			lname := rest[:eq]
			if !promLabelNameRE.MatchString(lname) {
				t.Fatalf("line %d: invalid label name %q", lineNo, lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				t.Fatalf("line %d: unquoted label value in %q", lineNo, line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					if j+1 >= len(rest) {
						t.Fatalf("line %d: dangling escape in %q", lineNo, line)
					}
					switch rest[j+1] {
					case '\\', '"', 'n':
					default:
						t.Fatalf("line %d: bad label escape \\%c in %q", lineNo, rest[j+1], line)
					}
					val.WriteByte(rest[j+1])
					j++
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, line)
			}
			s.labels[lname] = val.String()
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
		if rest == "" || rest[0] != '}' {
			t.Fatalf("line %d: unterminated label set in %q", lineNo, line)
		}
		rest = rest[1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("line %d: want value [timestamp] after name, got %q", lineNo, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, fields[0], err)
	}
	s.value = v
	return s
}

// conformanceRegistry builds a registry exercising every instrument kind
// plus the naming and help-text edge cases the exporter must escape.
func conformanceRegistry() *Registry {
	r := NewRegistry()
	r.Counter("phy/frames-tx.total", "frames handed to the channel").Add(12345)
	r.Counter("ifq/drops_total", "").Inc() // no HELP line
	g := r.Gauge("ifq/depth", "queue depth with\nan embedded newline and a back\\slash")
	g.Set(7)
	g.Set(3)
	h := r.Histogram("ebl/delay_s", "one-way delay", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0004, 0.002, 0.02, 0.05, 0.2, 5} {
		h.Observe(v)
	}
	r.Histogram("mac/empty_hist", "never observed", []float64{1, 2}) // all-zero buckets
	sr := r.Series("tput/platoon1_bps", "per-bin throughput", 0.5)
	sr.Observe(0.1, 1000)
	sr.Observe(0.6, 2000)
	sr.Observe(1.4, 1500)
	return r
}

func TestPrometheusConformance(t *testing.T) {
	var sb strings.Builder
	if err := conformanceRegistry().Snapshot().Prometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, sb.String())

	// Counters: declared, non-negative, finite.
	for _, name := range []string{"phy_frames_tx_total", "ifq_drops_total"} {
		f := fams[name]
		if f == nil || f.typ != "counter" {
			t.Fatalf("counter family %s missing or mistyped: %+v", name, f)
		}
		if len(f.samples) != 1 {
			t.Fatalf("%s: want 1 sample, got %d", name, len(f.samples))
		}
		if v := f.samples[0].value; v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: invalid counter value %g", name, v)
		}
	}
	if fams["phy_frames_tx_total"].samples[0].value != 12345 {
		t.Fatalf("counter value mangled: %g", fams["phy_frames_tx_total"].samples[0].value)
	}

	// Gauge: typed family plus an untyped _high_water companion; the
	// newline/backslash help text must have survived as ONE valid line
	// (parseExposition already rejected bad escapes).
	if f := fams["ifq_depth"]; f == nil || f.typ != "gauge" || !f.help || f.samples[0].value != 3 {
		t.Fatalf("gauge family wrong: %+v", f)
	}
	if f := fams["ifq_depth_high_water"]; f == nil || len(f.samples) != 1 || f.samples[0].value != 7 {
		t.Fatalf("high-water companion wrong: %+v", f)
	}

	// Histograms: +Inf bucket present, cumulative monotone, _count matches
	// the terminal bucket, _sum present — including the never-observed one.
	for _, name := range []string{"ebl_delay_s", "mac_empty_hist"} {
		checkHistogram(t, fams, name)
	}
	if got := histSample(t, fams["ebl_delay_s"], "ebl_delay_s_count", nil); got != 6 {
		t.Fatalf("ebl_delay_s_count = %g, want 6", got)
	}

	// Series: gauge-typed with a bin label per sample.
	f := fams["tput_platoon1_bps"]
	if f == nil || f.typ != "gauge" {
		t.Fatalf("series family wrong: %+v", f)
	}
	for _, s := range f.samples {
		if _, ok := s.labels["bin"]; !ok {
			t.Fatalf("series sample missing bin label: %+v", s)
		}
	}
}

// checkHistogram enforces the histogram contract on family name.
func checkHistogram(t *testing.T, fams map[string]*promFamily, name string) {
	t.Helper()
	f := fams[name]
	if f == nil || f.typ != "histogram" {
		t.Fatalf("histogram family %s missing or mistyped: %+v", name, f)
	}
	var buckets []promSample
	var count, sum *promSample
	for i := range f.samples {
		s := f.samples[i]
		switch s.name {
		case name + "_bucket":
			buckets = append(buckets, s)
		case name + "_count":
			count = &f.samples[i]
		case name + "_sum":
			sum = &f.samples[i]
		default:
			t.Fatalf("%s: unexpected sample %q in histogram family", name, s.name)
		}
	}
	if len(buckets) == 0 || count == nil || sum == nil {
		t.Fatalf("%s: incomplete histogram (buckets=%d count=%v sum=%v)",
			name, len(buckets), count != nil, sum != nil)
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Fatalf("%s: terminal bucket le=%q, want +Inf", name, last.labels["le"])
	}
	prevLe := math.Inf(-1)
	prevCum := -1.0
	for _, b := range buckets {
		le := math.Inf(1)
		if b.labels["le"] != "+Inf" {
			v, err := strconv.ParseFloat(b.labels["le"], 64)
			if err != nil {
				t.Fatalf("%s: unparseable le %q", name, b.labels["le"])
			}
			le = v
		}
		if le <= prevLe {
			t.Fatalf("%s: bucket bounds not increasing (%g after %g)", name, le, prevLe)
		}
		if b.value < prevCum {
			t.Fatalf("%s: cumulative counts decrease (%g after %g)", name, b.value, prevCum)
		}
		prevLe, prevCum = le, b.value
	}
	if last.value != count.value {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, last.value, count.value)
	}
}

// histSample fetches one sample by name (and optional labels) from a family.
func histSample(t *testing.T, f *promFamily, name string, labels map[string]string) float64 {
	t.Helper()
	for _, s := range f.samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.value
		}
	}
	t.Fatalf("sample %s %v not found", name, labels)
	return 0
}
