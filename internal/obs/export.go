package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is an immutable, export-ready copy of a registry's state, taken
// at the end of a run. A nil snapshot formats as empty output from every
// exporter, so callers can pass result.Telemetry through unconditionally.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
	Series     []SeriesSnap
}

// CounterSnap is one counter's final state.
type CounterSnap struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's final state.
type GaugeSnap struct {
	Name      string  `json:"name"`
	Help      string  `json:"help,omitempty"`
	Value     float64 `json:"value"`
	HighWater float64 `json:"high_water"`
}

// HistogramSnap is one histogram's final state.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Bounds []float64 `json:"bounds"` // bucket upper bounds
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P99    float64   `json:"p99"`
}

// SeriesSnap is one time-binned series' final state.
type SeriesSnap struct {
	Name     string    `json:"name"`
	Help     string    `json:"help,omitempty"`
	BinWidth float64   `json:"bin_width_s"`
	Sums     []float64 `json:"sums"`
	Counts   []uint64  `json:"counts"`
}

// Snapshot copies the registry's current state. A nil (disabled) registry
// snapshots to nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Help: c.help, Value: c.v})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Help: g.help, Value: g.v, HighWater: g.hwm})
	}
	for _, h := range r.hists {
		hs := HistogramSnap{
			Name:   h.name,
			Help:   h.help,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.n,
			Sum:    h.sum,
			Mean:   h.Mean(),
			P50:    h.Quantile(0.50),
			P99:    h.Quantile(0.99),
		}
		if h.n > 0 {
			hs.Min, hs.Max = h.min, h.max
		}
		s.Histograms = append(s.Histograms, hs)
	}
	for _, sr := range r.series {
		s.Series = append(s.Series, SeriesSnap{
			Name:     sr.name,
			Help:     sr.help,
			BinWidth: float64(sr.bin),
			Sums:     append([]float64(nil), sr.sums...),
			Counts:   append([]uint64(nil), sr.ns...),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	return s
}

// FormatText renders the snapshot as an aligned text summary table, one
// metric per line, grouped by instrument kind.
func (s *Snapshot) FormatText() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "%-36s %14s\n", "counter", "value")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-36s %14d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "%-36s %14s %14s\n", "gauge", "value", "high-water")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%-36s %14.4f %14.4f\n", g.Name, g.Value, g.HighWater)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "%-36s %10s %12s %12s %12s %12s %12s\n",
			"histogram", "n", "mean", "p50", "p99", "min", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-36s %10d %12.6f %12.6f %12.6f %12.6f %12.6f\n",
				h.Name, h.Count, h.Mean, h.P50, h.P99, h.Min, h.Max)
		}
	}
	if len(s.Series) > 0 {
		fmt.Fprintf(&b, "%-36s %8s %10s %14s\n", "series", "bins", "bin(s)", "total")
		for _, sr := range s.Series {
			total := 0.0
			for _, v := range sr.Sums {
				total += v
			}
			fmt.Fprintf(&b, "%-36s %8d %10.2f %14.4f\n", sr.Name, len(sr.Sums), sr.BinWidth, total)
		}
	}
	return b.String()
}

// ndjsonRecord wraps a metric with its instrument kind for NDJSON export.
type ndjsonRecord struct {
	Kind   string `json:"kind"`
	Metric any    `json:"metric"`
}

// NDJSON writes the snapshot as newline-delimited JSON, one metric per
// line, in deterministic (kind, name) order.
func (s *Snapshot) NDJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, c := range s.Counters {
		if err := enc.Encode(ndjsonRecord{Kind: "counter", Metric: c}); err != nil {
			return fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	for _, g := range s.Gauges {
		if err := enc.Encode(ndjsonRecord{Kind: "gauge", Metric: g}); err != nil {
			return fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	for _, h := range s.Histograms {
		if err := enc.Encode(ndjsonRecord{Kind: "histogram", Metric: h}); err != nil {
			return fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	for _, sr := range s.Series {
		if err := enc.Encode(ndjsonRecord{Kind: "series", Metric: sr}); err != nil {
			return fmt.Errorf("obs: ndjson: %w", err)
		}
	}
	return nil
}

// promName converts a dotted metric name to Prometheus exposition syntax.
func promName(name string) string {
	return strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
}

// promHelp escapes help text for a # HELP line: the exposition format
// requires backslash and line-feed escaping (a raw newline would split the
// comment into an invalid line).
func promHelp(help string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)
}

// Prometheus writes the snapshot in the Prometheus text exposition format:
// counters and gauges directly, histograms with cumulative _bucket lines,
// series as their per-bin sums on a "bin" label.
func (s *Snapshot) Prometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	for _, c := range s.Counters {
		n := promName(c.Name)
		if c.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, promHelp(c.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if g.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, promHelp(g.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", n, n, g.Value)
		fmt.Fprintf(&b, "%s_high_water %g\n", n, g.HighWater)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if h.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, promHelp(h.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	for _, sr := range s.Series {
		n := promName(sr.Name)
		if sr.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, promHelp(sr.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
		for i, v := range sr.Sums {
			fmt.Fprintf(&b, "%s{bin=\"%g\"} %g\n", n, float64(i)*sr.BinWidth, v)
		}
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("obs: prometheus: %w", err)
	}
	return nil
}

// Counter returns the named counter's value and whether it exists.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge snapshot and whether it exists.
func (s *Snapshot) Gauge(name string) (GaugeSnap, bool) {
	if s == nil {
		return GaugeSnap{}, false
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// Histogram returns the named histogram snapshot and whether it exists.
func (s *Snapshot) Histogram(name string) (HistogramSnap, bool) {
	if s == nil {
		return HistogramSnap{}, false
	}
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
