// Package prof starts and stops runtime/pprof CPU and heap profiles for
// the command-line tools (-cpuprofile / -memprofile), so hot-path work on
// the simulator core can be measured on real trial workloads rather than
// microbenchmarks alone.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpuPath is non-empty and returns a stop
// function that ends the CPU profile and, when memPath is non-empty,
// writes an allocation profile. With both paths empty the returned stop is
// a no-op, so callers can defer it unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
