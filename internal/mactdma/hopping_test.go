package mactdma

import (
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

func TestHoppingDisabledByDefault(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	if sch.Hopping().Enabled() {
		t.Fatal("hopping should default off")
	}
	for _, at := range []sim.Time{0, 0.5, 7} {
		if sch.ChannelAt(at) != 0 {
			t.Fatal("non-hopping schedule must stay on channel 0")
		}
	}
}

func TestHoppingDeterministicPerSlot(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	sch.SetHopping(Hopping{Channels: 8, Seed: 42})
	// Constant within a slot, reproducible across queries.
	a := sch.ChannelAt(0.0001)
	b := sch.ChannelAt(0.0009)
	if a != b {
		t.Fatalf("channel changed within a slot: %d vs %d", a, b)
	}
	other := NewSchedule(sim.Millisecond)
	other.SetHopping(Hopping{Channels: 8, Seed: 42})
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Millisecond
		if sch.ChannelAt(at) != other.ChannelAt(at) {
			t.Fatal("same seed, different hop sequence")
		}
	}
}

func TestHoppingCoversChannels(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	const n = 8
	sch.SetHopping(Hopping{Channels: n, Seed: 7})
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		c := sch.ChannelAt(sim.Time(i) * sim.Millisecond)
		if c < 0 || c >= n {
			t.Fatalf("channel %d out of range", c)
		}
		seen[c]++
	}
	if len(seen) != n {
		t.Fatalf("hop sequence used %d/%d channels in 1000 slots", len(seen), n)
	}
	for c, count := range seen {
		if count < 60 || count > 200 {
			t.Fatalf("channel %d badly skewed: %d/1000 slots", c, count)
		}
	}
}

func TestHoppingSeedsDiffer(t *testing.T) {
	a := NewSchedule(sim.Millisecond)
	a.SetHopping(Hopping{Channels: 16, Seed: 1})
	b := NewSchedule(sim.Millisecond)
	b.SetHopping(Hopping{Channels: 16, Seed: 2})
	same := 0
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * sim.Millisecond
		if a.ChannelAt(at) == b.ChannelAt(at) {
			same++
		}
	}
	// Expect ~1/16 coincidence, certainly not lockstep.
	if same > 50 {
		t.Fatalf("different seeds coincide on %d/200 slots", same)
	}
}

func TestHoppingMACRetunesRadioAndStillDelivers(t *testing.T) {
	// Build the schedule with hopping enabled *before* the MACs, as the
	// scenario builder does: every node then follows the same hop
	// sequence and intra-network delivery is unaffected.
	cfg := DefaultConfig()
	s := sim.New()
	ch := newTestChannel(s)
	schedule := NewSchedule(cfg.SlotDuration())
	schedule.SetHopping(Hopping{Channels: 4, Seed: 9})
	nodes := make([]*node, 2)
	for i := range nodes {
		nodes[i] = newTestNode(t, s, ch, schedule, cfg, packet.NodeID(i), float64(i)*50)
	}
	var f packet.Factory
	for i := 0; i < 10; i++ {
		send(&f, nodes[0], 1, 500)
	}
	s.RunUntil(2)
	if got := len(nodes[1].up.received); got != 10 {
		t.Fatalf("delivered %d/10 under common hopping", got)
	}
	// The hop sequence really does change channel across slots.
	varies := false
	base := schedule.ChannelAt(0)
	for i := 1; i < 50; i++ {
		if schedule.ChannelAt(sim.Time(i)*schedule.SlotDuration()) != base {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("hop sequence never changed channel")
	}
}

func TestJamSubtypeFiltered(t *testing.T) {
	cfg := DefaultConfig()
	_, _, nodes := rig(t, 2, cfg)
	var f packet.Factory
	p := f.New(packet.TypeCBR, 100, 0)
	p.Mac = packet.MacHdr{Src: 5, Dst: packet.Broadcast, Subtype: packet.MacJam}
	nodes[1].mac.RecvFromPhy(p, false)
	if len(nodes[1].up.received) != 0 {
		t.Fatal("jam frame delivered to network layer")
	}
	if nodes[1].mac.Stats().RxFiltered != 1 {
		t.Fatal("jam frame not counted as filtered")
	}
}
