// Package mactdma implements the Time Division Multiple Access MAC used by
// the paper's trials 1 and 2, after ns-2's Mac/Tdma: simulated time is
// divided into frames of fixed per-node slots, every node owns exactly one
// slot per frame, and a node transmits at most one packet — unicast or
// broadcast, data or routing — at the start of its own slot.
//
// Two consequences drive the paper's TDMA results:
//
//   - The slot is sized for the largest possible packet, so the *service
//     rate in packets per second is independent of packet size*: halving
//     the packet size halves throughput (trial 1 vs 2) but leaves one-way
//     delay unchanged.
//   - A node with a backlog can still send only one packet per frame, so
//     the interface queue fills and the one-way delay climbs to
//     (queue length × frame duration) — the multi-second steady state of
//     Figs. 5–9.
//
// Slot ownership guarantees collision-freedom, so TDMA needs no
// acknowledgements or retries; the price is the slot-waiting latency the
// paper's analysis calls "unnecessary overhead" for emergency braking.
package mactdma

import (
	"fmt"
	"math"

	"vanetsim/internal/check"
	"vanetsim/internal/mac"
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
	"vanetsim/internal/span"
)

// Config holds TDMA parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// DataRateBps is the radio bit rate (ns-2 WaveLAN default: 2 Mb/s).
	DataRateBps float64
	// MaxPacketBytes sizes the slot: every slot can carry one maximal
	// packet, so shorter packets waste slot tail.
	MaxPacketBytes int
	// HdrBytes is the MAC framing overhead per packet.
	HdrBytes int
	// PreambleTime is per-slot PHY synchronisation overhead.
	PreambleTime sim.Time
	// GuardTime separates slots to absorb propagation skew.
	GuardTime sim.Time
}

// DefaultConfig returns the parameters used for the paper's trials.
func DefaultConfig() Config {
	return Config{
		DataRateBps:    2e6,
		MaxPacketBytes: 1500,
		HdrBytes:       28,
		PreambleTime:   52 * sim.Microsecond,
		GuardTime:      10 * sim.Microsecond,
	}
}

// SlotDuration returns the fixed length of one slot: preamble + maximal
// frame serialisation + guard.
func (c Config) SlotDuration() sim.Time {
	return c.PreambleTime + mac.Duration(c.HdrBytes+c.MaxPacketBytes, c.DataRateBps) + c.GuardTime
}

// Hopping configures FHSS-style frequency hopping layered over the slot
// schedule: every slot, the whole network retunes to a pseudo-random
// channel derived from a shared seed. The paper's §III.E cites TDMA+FHSS
// as the denial-of-service-resistant alternative to 802.11; a jammer
// parked on one channel then hits only ~1/Channels of the slots.
type Hopping struct {
	// Channels is the hop-set size; 0 or 1 disables hopping.
	Channels int
	// Seed is the shared hop-sequence secret.
	Seed uint64
}

// Enabled reports whether hopping is active.
func (h Hopping) Enabled() bool { return h.Channels > 1 }

// Schedule is the global slot assignment shared by all nodes on a channel.
// Slots are assigned in registration order; the frame length is the number
// of registered nodes times the slot duration.
type Schedule struct {
	slotDur sim.Time
	order   []packet.NodeID
	index   map[packet.NodeID]int
	hopping Hopping
}

// NewSchedule creates an empty schedule with the given slot duration.
func NewSchedule(slotDur sim.Time) *Schedule {
	if slotDur <= 0 {
		panic("mactdma: non-positive slot duration")
	}
	return &Schedule{slotDur: slotDur, index: make(map[packet.NodeID]int)}
}

// SetHopping enables FHSS hopping on the schedule. All MACs sharing the
// schedule follow the same sequence, so intra-network traffic is
// unaffected by the retuning.
func (s *Schedule) SetHopping(h Hopping) { s.hopping = h }

// Hopping returns the hopping configuration.
func (s *Schedule) Hopping() Hopping { return s.hopping }

// ChannelAt returns the frequency channel the network occupies at time t
// (constant 0 when hopping is disabled).
func (s *Schedule) ChannelAt(t sim.Time) int {
	if !s.hopping.Enabled() {
		return 0
	}
	slot := uint64(t / s.slotDur)
	// splitmix64-style mix of (seed, absolute slot number).
	z := s.hopping.Seed + 0x9e3779b97f4a7c15*(slot+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(s.hopping.Channels))
}

// Add assigns the next free slot to id and returns its slot index. Adding
// the same node twice panics: slots are static for a scenario's lifetime.
func (s *Schedule) Add(id packet.NodeID) int {
	if _, dup := s.index[id]; dup {
		panic(fmt.Sprintf("mactdma: node %v already scheduled", id))
	}
	i := len(s.order)
	s.order = append(s.order, id)
	s.index[id] = i
	return i
}

// Slots returns the number of slots per frame.
func (s *Schedule) Slots() int { return len(s.order) }

// SlotDuration returns the slot length.
func (s *Schedule) SlotDuration() sim.Time { return s.slotDur }

// FrameDuration returns the TDMA frame length (slots × slot duration).
func (s *Schedule) FrameDuration() sim.Time {
	return sim.Time(float64(len(s.order))) * s.slotDur
}

// NextSlotStart returns the earliest time >= now at which id's slot
// begins. It panics if id was never added.
func (s *Schedule) NextSlotStart(id packet.NodeID, now sim.Time) sim.Time {
	i, ok := s.index[id]
	if !ok {
		panic(fmt.Sprintf("mactdma: node %v not in schedule", id))
	}
	frame := s.FrameDuration()
	offset := sim.Time(float64(i)) * s.slotDur
	if frame == 0 {
		return now
	}
	n := math.Ceil(float64((now - offset) / frame))
	if n < 0 {
		n = 0
	}
	start := offset + sim.Time(n)*frame
	for start < now {
		start += frame
	}
	return start
}

// Stats counts MAC-level outcomes.
type Stats struct {
	TxData      int // frames transmitted
	TxErrors    int // frames the radio refused (Transmit returned an error)
	RxDelivered int // frames delivered to the network layer
	RxCorrupted int // frames discarded due to collision (foreign traffic)
	RxFiltered  int // frames overheard but addressed elsewhere
	IdleSlots   int // own slots that began with an empty queue
}

// MAC is one node's TDMA MAC instance.
type MAC struct {
	id       packet.NodeID
	sched    *sim.Scheduler
	radio    *phy.Radio
	ifq      queue.Queue
	up       mac.Upcall
	schedule *Schedule
	cfg      Config

	slotTimer sim.Timer
	stats     Stats

	// Telemetry (nil-safe; see internal/obs). waitFrom stamps when the
	// head-of-line frame began waiting for our slot.
	obsSlotWait *obs.Histogram
	waitFrom    sim.Time

	// chk asserts slot exclusivity at transmit time (nil when the invariant
	// checker is disabled; one nil check per transmission).
	chk *check.SlotGuard

	// spans records the head-of-line wait seam for the causal tracer (nil
	// when tracing is disarmed; one nil check per Poke).
	spans *span.Recorder
}

var _ mac.MAC = (*MAC)(nil)
var _ phy.MAC = (*MAC)(nil)

// New creates a TDMA MAC for node id, registers it in schedule, and wires
// it to the radio.
func New(id packet.NodeID, sched *sim.Scheduler, radio *phy.Radio, ifq queue.Queue, up mac.Upcall, schedule *Schedule, cfg Config) *MAC {
	m := &MAC{
		id:       id,
		sched:    sched,
		radio:    radio,
		ifq:      ifq,
		up:       up,
		schedule: schedule,
		cfg:      cfg,
	}
	schedule.Add(id)
	radio.SetMAC(m)
	if schedule.Hopping().Enabled() {
		radio.SetFreqFn(func() int { return schedule.ChannelAt(sched.Now()) })
	}
	return m
}

// ID implements mac.MAC.
func (m *MAC) ID() packet.NodeID { return m.id }

// Stats returns the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// SetObs wires the slot-wait telemetry histogram (may be nil): time from a
// head-of-line frame's wakeup being armed to its slot actually starting —
// the "waiting for the assigned slot" component of TDMA's delay.
func (m *MAC) SetObs(slotWait *obs.Histogram) { m.obsSlotWait = slotWait }

// SetCheck wires the shared slot-exclusivity guard (may be nil).
func (m *MAC) SetCheck(g *check.SlotGuard) { m.chk = g }

// SetSpans wires the causal span recorder (may be nil).
func (m *MAC) SetSpans(rec *span.Recorder) { m.spans = rec }

// Poke implements mac.MAC: arms the next own-slot wakeup if the queue has
// work and no wakeup is pending.
func (m *MAC) Poke() {
	if m.slotTimer.Active() {
		return
	}
	p := m.ifq.Peek()
	if p == nil {
		return
	}
	// The slot wait starts here: the analyzer attributes Poke-to-transmit
	// time to contention rather than queueing.
	m.spans.Record(span.OpMacWait, span.CauseNone, m.id, p)
	m.waitFrom = m.sched.Now()
	start := m.schedule.NextSlotStart(m.id, m.sched.Now())
	m.slotTimer = m.sched.AtKind(sim.KindMAC, start, m.onSlot)
}

// onSlot fires at the start of this node's slot.
func (m *MAC) onSlot() {
	m.slotTimer = sim.Timer{}
	p := m.ifq.Dequeue()
	if p == nil {
		m.stats.IdleSlots++
		return
	}
	m.obsSlotWait.ObserveDuration(m.sched.Now() - m.waitFrom)
	p.Mac.Src = m.id
	p.Mac.Dst = p.IP.NextHop
	p.Mac.Subtype = packet.MacData
	dur := m.cfg.PreambleTime + mac.Duration(m.cfg.HdrBytes+p.Size, m.cfg.DataRateBps)
	m.chk.Transmitting(m.sched.Now(), m.id, p.UID)
	if err := m.radio.Transmit(p, dur); err != nil {
		// The radio refused the frame (a MAC/radio state bug): the frame is
		// lost, counted, and reported upward as a failed transmission so the
		// stack keeps flowing instead of crashing the run.
		m.stats.TxErrors++
		m.sched.ScheduleKind(sim.KindMAC, dur, func() {
			m.up.MacTxDone(p, false)
			m.Poke()
		})
		return
	}
	m.stats.TxData++
	// TDMA has no acknowledgements: the transmission is reported
	// successful when it leaves the antenna, as in ns-2's Mac/Tdma.
	m.sched.ScheduleKind(sim.KindMAC, dur, func() {
		m.up.MacTxDone(p, true)
		m.Poke()
	})
}

// RecvFromPhy implements phy.MAC.
func (m *MAC) RecvFromPhy(p *packet.Packet, corrupted bool) {
	if corrupted {
		m.stats.RxCorrupted++
		m.radio.ReleaseFrame(p)
		return
	}
	if p.Mac.Subtype != packet.MacData {
		// Jamming or foreign control energy: never delivered upward.
		m.stats.RxFiltered++
		m.radio.ReleaseFrame(p)
		return
	}
	if p.Mac.Dst != m.id && p.Mac.Dst != packet.Broadcast {
		m.stats.RxFiltered++
		m.radio.ReleaseFrame(p)
		return
	}
	m.stats.RxDelivered++
	m.up.RecvFromMac(p)
}

// ReleaseDelivered lets the network layer recycle a received frame it has
// fully consumed (see netlayer's frameReleaser).
func (m *MAC) ReleaseDelivered(p *packet.Packet) { m.radio.ReleaseFrame(p) }

// ChannelBusy implements phy.MAC; TDMA does no carrier sensing.
func (m *MAC) ChannelBusy() {}

// ChannelIdle implements phy.MAC; TDMA does no carrier sensing.
func (m *MAC) ChannelIdle() {}
