package mactdma

import (
	"math"
	"testing"

	"vanetsim/internal/geom"
	"vanetsim/internal/mac"
	"vanetsim/internal/packet"
	"vanetsim/internal/phy"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

type upRecorder struct {
	received []*packet.Packet
	rxTimes  []sim.Time
	done     []*packet.Packet
	doneOK   []bool
	sched    *sim.Scheduler
}

func (u *upRecorder) RecvFromMac(p *packet.Packet) {
	u.received = append(u.received, p)
	u.rxTimes = append(u.rxTimes, u.sched.Now())
}

func (u *upRecorder) MacTxDone(p *packet.Packet, ok bool) {
	u.done = append(u.done, p)
	u.doneOK = append(u.doneOK, ok)
}

type node struct {
	mac *MAC
	ifq queue.Queue
	up  *upRecorder
}

func newTestChannel(s *sim.Scheduler) *phy.Channel {
	return phy.NewChannel(s, phy.DefaultPropagation())
}

func newTestNode(t *testing.T, s *sim.Scheduler, ch *phy.Channel, schedule *Schedule, cfg Config, id packet.NodeID, x float64) *node {
	t.Helper()
	r := phy.NewRadio(id, s, func() geom.Vec2 { return geom.V(x, 0) }, phy.DefaultRadioParams())
	ch.Attach(r)
	up := &upRecorder{sched: s}
	ifq := queue.NewDropTail(50, nil)
	m := New(id, s, r, ifq, up, schedule, cfg)
	return &node{mac: m, ifq: ifq, up: up}
}

// rig builds n TDMA nodes spaced 50 m apart on a line, all in range.
func rig(t *testing.T, n int, cfg Config) (*sim.Scheduler, *Schedule, []*node) {
	t.Helper()
	s := sim.New()
	ch := newTestChannel(s)
	schedule := NewSchedule(cfg.SlotDuration())
	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		nodes[i] = newTestNode(t, s, ch, schedule, cfg, packet.NodeID(i), float64(i)*50)
	}
	return s, schedule, nodes
}

func send(f *packet.Factory, n *node, dst packet.NodeID, size int) *packet.Packet {
	p := f.New(packet.TypeTCP, size, 0)
	p.IP.Src = n.mac.ID()
	p.IP.Dst = dst
	p.IP.NextHop = dst
	n.ifq.Enqueue(p)
	n.mac.Poke()
	return p
}

func TestScheduleAssignment(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	if got := sch.Add(5); got != 0 {
		t.Fatalf("first slot index = %d", got)
	}
	if got := sch.Add(9); got != 1 {
		t.Fatalf("second slot index = %d", got)
	}
	if sch.Slots() != 2 || sch.FrameDuration() != 2*sim.Millisecond {
		t.Fatalf("slots=%d frame=%v", sch.Slots(), sch.FrameDuration())
	}
}

func TestScheduleDuplicatePanics(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	sch.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	sch.Add(1)
}

func TestScheduleUnknownNodePanics(t *testing.T) {
	sch := NewSchedule(sim.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("NextSlotStart for unknown node did not panic")
		}
	}()
	sch.NextSlotStart(42, 0)
}

func TestNextSlotStart(t *testing.T) {
	sch := NewSchedule(sim.Millisecond) // 3 slots, frame = 3 ms
	sch.Add(10)
	sch.Add(11)
	sch.Add(12)
	cases := []struct {
		id   packet.NodeID
		now  sim.Time
		want sim.Time
	}{
		{10, 0, 0},                        // at own slot start
		{11, 0, sim.Millisecond},          // next slot
		{12, 0, 2 * sim.Millisecond},      //
		{10, 0.0001, 3 * sim.Millisecond}, // just missed slot 0
		{11, 0.0025, 4 * sim.Millisecond}, // mid slot 2 -> next frame
		{12, 0.002, 2 * sim.Millisecond},  // exactly at own slot
	}
	for _, c := range cases {
		if got := sch.NextSlotStart(c.id, c.now); math.Abs(float64(got-c.want)) > 1e-12 {
			t.Errorf("NextSlotStart(%v, %v) = %v, want %v", c.id, c.now, got, c.want)
		}
	}
}

func TestSlotDurationFitsMaxPacket(t *testing.T) {
	cfg := DefaultConfig()
	txTime := cfg.PreambleTime + mac.Duration(cfg.HdrBytes+cfg.MaxPacketBytes, cfg.DataRateBps)
	if cfg.SlotDuration() <= txTime {
		t.Fatal("slot must be longer than a maximal transmission")
	}
	if math.Abs(float64(cfg.SlotDuration()-txTime-cfg.GuardTime)) > 1e-12 {
		t.Fatal("slot tail should be exactly the guard time")
	}
}

func TestUnicastDelivery(t *testing.T) {
	cfg := DefaultConfig()
	s, _, nodes := rig(t, 3, cfg)
	var f packet.Factory
	p := send(&f, nodes[0], 2, 1000)
	s.RunUntil(1)
	if len(nodes[2].up.received) != 1 {
		t.Fatalf("destination received %d packets, want 1", len(nodes[2].up.received))
	}
	if nodes[2].up.received[0].UID != p.UID {
		t.Fatal("wrong packet delivered")
	}
	if len(nodes[1].up.received) != 0 {
		t.Fatal("bystander should filter unicast not addressed to it")
	}
	if len(nodes[0].up.done) != 1 || !nodes[0].up.doneOK[0] {
		t.Fatal("sender should see MacTxDone(ok)")
	}
}

func TestBroadcastDelivery(t *testing.T) {
	cfg := DefaultConfig()
	s, _, nodes := rig(t, 4, cfg)
	var f packet.Factory
	send(&f, nodes[1], packet.Broadcast, 64)
	s.RunUntil(1)
	for i, n := range nodes {
		if i == 1 {
			continue
		}
		if len(n.up.received) != 1 {
			t.Fatalf("node %d received %d broadcast copies, want 1", i, len(n.up.received))
		}
	}
}

func TestTransmitOnlyInOwnSlot(t *testing.T) {
	cfg := DefaultConfig()
	s, schedule, nodes := rig(t, 3, cfg)
	var f packet.Factory
	// Enqueue on node 1 mid-frame; the delivery must happen within node
	// 1's slot window, never earlier.
	s.Schedule(0.0001, func() { send(&f, nodes[1], 0, 500) })
	s.RunUntil(1)
	if len(nodes[0].up.rxTimes) != 1 {
		t.Fatalf("got %d deliveries", len(nodes[0].up.rxTimes))
	}
	rx := nodes[0].up.rxTimes[0]
	slotStart := schedule.NextSlotStart(1, 0.0001)
	slotEnd := slotStart + schedule.SlotDuration()
	if rx < slotStart || rx > slotEnd {
		t.Fatalf("delivery at %v outside sender's slot [%v, %v]", rx, slotStart, slotEnd)
	}
}

func TestOnePacketPerSlot(t *testing.T) {
	cfg := DefaultConfig()
	s, schedule, nodes := rig(t, 2, cfg)
	var f packet.Factory
	const backlog = 10
	for i := 0; i < backlog; i++ {
		send(&f, nodes[0], 1, 1000)
	}
	// After k frames, exactly k packets (one per own slot) have arrived.
	k := 4
	s.RunUntil(sim.Time(float64(k)) * schedule.FrameDuration())
	got := len(nodes[1].up.received)
	if got != k {
		t.Fatalf("delivered %d packets in %d frames, want exactly one per frame", got, k)
	}
	s.RunUntil(1)
	if len(nodes[1].up.received) != backlog {
		t.Fatalf("backlog not fully drained: %d/%d", len(nodes[1].up.received), backlog)
	}
}

func TestNoCollisionsWithContendingBacklogs(t *testing.T) {
	cfg := DefaultConfig()
	s, _, nodes := rig(t, 4, cfg)
	var f packet.Factory
	for i := 0; i < 20; i++ {
		send(&f, nodes[0], 3, 1000)
		send(&f, nodes[1], 3, 1000)
		send(&f, nodes[2], 3, 1000)
	}
	s.RunUntil(5)
	if got := len(nodes[3].up.received); got != 60 {
		t.Fatalf("delivered %d/60 packets", got)
	}
	if nodes[3].mac.Stats().RxCorrupted != 0 {
		t.Fatal("TDMA slots must never collide")
	}
}

func TestServiceRateIndependentOfPacketSize(t *testing.T) {
	// The paper's trial 1 vs 2 mechanism: packets per second through the
	// MAC is fixed by the slot schedule, so delivered *bytes* scale with
	// packet size while delivered *packets* do not.
	counts := map[int]int{}
	for _, size := range []int{500, 1000} {
		cfg := DefaultConfig()
		s, _, nodes := rig(t, 2, cfg)
		var f packet.Factory
		for i := 0; i < 200; i++ {
			send(&f, nodes[0], 1, size)
		}
		s.RunUntil(2)
		counts[size] = len(nodes[1].up.received)
	}
	if counts[500] != counts[1000] {
		t.Fatalf("packet service rate depends on size: %v", counts)
	}
}

func TestCorruptedFrameDiscarded(t *testing.T) {
	cfg := DefaultConfig()
	_, _, nodes := rig(t, 2, cfg)
	var f packet.Factory
	p := f.New(packet.TypeTCP, 100, 0)
	p.Mac.Dst = 1
	nodes[1].mac.RecvFromPhy(p, true)
	if len(nodes[1].up.received) != 0 {
		t.Fatal("corrupted frame must not be delivered")
	}
	if nodes[1].mac.Stats().RxCorrupted != 1 {
		t.Fatal("corruption not counted")
	}
}

func TestIdleSlotWhenQueueEmptiedMeanwhile(t *testing.T) {
	cfg := DefaultConfig()
	s, _, nodes := rig(t, 2, cfg)
	var f packet.Factory
	p := send(&f, nodes[0], 1, 100)
	// Steal the packet back before the slot fires.
	if got := nodes[0].ifq.Dequeue(); got != p {
		t.Fatal("setup failed")
	}
	s.RunUntil(1)
	if nodes[0].mac.Stats().IdleSlots != 1 {
		t.Fatalf("IdleSlots = %d, want 1", nodes[0].mac.Stats().IdleSlots)
	}
	if nodes[0].mac.Stats().TxData != 0 {
		t.Fatal("nothing should have been transmitted")
	}
}

func TestNewSchedulePanicsOnBadSlot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive slot duration did not panic")
		}
	}()
	NewSchedule(0)
}
