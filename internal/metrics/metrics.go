// Package metrics computes the paper's performance measures from
// simulation observations: per-packet one-way delay as a function of
// packet ID (Figs. 5–14), binned throughput over time (Figs. 7, 10, 15),
// transient/steady-state separation, and the summary statistics and
// confidence analysis reported in the text.
package metrics

import (
	"fmt"
	"math"

	"vanetsim/internal/sim"
	"vanetsim/internal/stats"
)

// DelayPoint is one packet's one-way delay, indexed by its per-flow packet
// ID (the x-axis of the paper's delay figures).
type DelayPoint struct {
	ID    int
	Delay sim.Time
}

// DelaySeries accumulates one flow's delay measurements in arrival order.
type DelaySeries struct {
	points []DelayPoint
}

// Add appends a measurement.
func (s *DelaySeries) Add(id int, d sim.Time) {
	s.points = append(s.points, DelayPoint{ID: id, Delay: d})
}

// Points returns the series in arrival order.
func (s *DelaySeries) Points() []DelayPoint { return s.points }

// Len returns the number of measurements.
func (s *DelaySeries) Len() int { return len(s.points) }

// Delays returns just the delay values, in seconds.
func (s *DelaySeries) Delays() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = float64(p.Delay)
	}
	return out
}

// Summary returns avg/min/max over the whole series — the per-vehicle
// numbers the paper reports.
func (s *DelaySeries) Summary() stats.Summary { return stats.Summarize(s.Delays()) }

// First returns the initial packet's delay — the figure the paper's
// stopping-distance analysis is built on ("the one-way delay of the
// initial packet will be used ... since this will be the first indication
// to trailing vehicles that a lead vehicle is applying its brakes").
// It returns 0, false for an empty series.
func (s *DelaySeries) First() (sim.Time, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	return s.points[0].Delay, true
}

// SplitAt divides the series into transient (IDs < cut) and steady parts.
func (s *DelaySeries) SplitAt(cut int) (transient, steady []DelayPoint) {
	for i, p := range s.points {
		if p.ID >= cut {
			return s.points[:i], s.points[i:]
		}
	}
	return s.points, nil
}

// TruncationIndex locates the end of the warm-up transient with the MSER-5
// rule (White 1997): batch the series in fives, then choose the truncation
// that minimises the standard error of the remaining mean. It returns an
// index into Points(); 0 means no detectable transient.
func (s *DelaySeries) TruncationIndex() int {
	const batch = 5
	xs := s.Delays()
	n := len(xs) / batch
	if n < 4 {
		return 0
	}
	means := make([]float64, n)
	for b := 0; b < n; b++ {
		sum := 0.0
		for i := b * batch; i < (b+1)*batch; i++ {
			sum += xs[i]
		}
		means[b] = sum / batch
	}
	bestD, bestSE := 0, math.Inf(1)
	// Never truncate more than half the series (standard MSER guard).
	// Prefer the earliest truncation on numerical near-ties so a long
	// perfectly-flat steady state is not over-trimmed by float noise.
	for d := 0; d <= n/2; d++ {
		sm := stats.Summarize(means[d:])
		se := sm.Std / math.Sqrt(float64(sm.N))
		if se < bestSE-1e-12 {
			bestSE, bestD = se, d
		}
	}
	return bestD * batch
}

// SteadyState returns the post-transient portion (per MSER-5) and its
// mean level — the paper's "steady state with a one-way delay of
// approximately X seconds".
func (s *DelaySeries) SteadyState() ([]DelayPoint, float64) {
	cut := s.TruncationIndex()
	rest := s.points[cut:]
	if len(rest) == 0 {
		return nil, 0
	}
	sum := 0.0
	for _, p := range rest {
		sum += float64(p.Delay)
	}
	return rest, sum / float64(len(rest))
}

// TPoint is one throughput bin: the average rate over [T, T+bin).
type TPoint struct {
	T    sim.Time
	Mbps float64
}

// Throughput bins received bytes into fixed intervals, replicating the
// paper's Tcl `record` procedure ($bw/$time*8 sampled periodically).
type Throughput struct {
	bin      sim.Time
	bytes    []int
	rejected int
}

// NewThroughput creates a sampler with the given bin width. The paper's
// record interval (0.5 s here) sets the time resolution of Figs. 7/10/15.
func NewThroughput(bin sim.Time) *Throughput {
	if bin <= 0 {
		panic("metrics: non-positive throughput bin")
	}
	return &Throughput{bin: bin}
}

// Bin returns the bin width.
func (t *Throughput) Bin() sim.Time { return t.bin }

// Add records n bytes received at time at. A negative time or byte count
// is a caller bug (e.g. a corrupted delivery timestamp); the sample is
// rejected with an error and counted, rather than panicking mid-run, so
// the invariant checker can surface it with simulation-time context.
func (t *Throughput) Add(at sim.Time, n int) error {
	if at < 0 || n < 0 {
		t.rejected++
		return fmt.Errorf("metrics: rejected sample at t=%v with %d bytes (negative time or byte count)", at, n)
	}
	idx := int(at / t.bin)
	for len(t.bytes) <= idx {
		t.bytes = append(t.bytes, 0)
	}
	t.bytes[idx] += n
	return nil
}

// Rejected returns how many samples Add refused.
func (t *Throughput) Rejected() int { return t.rejected }

// SeriesUntil returns the binned rate series covering [0, end), including
// empty bins — the paper's figures show the silent prefix before
// communication starts. When end is not a multiple of the bin width, the
// final bin covers only [start, end) and its rate is normalised by that
// actual width, not the full bin width, so a truncated run does not
// understate its closing throughput.
func (t *Throughput) SeriesUntil(end sim.Time) []TPoint {
	n := int(math.Ceil(float64(end / t.bin)))
	out := make([]TPoint, 0, n)
	for i := 0; i < n; i++ {
		b := 0
		if i < len(t.bytes) {
			b = t.bytes[i]
		}
		start := sim.Time(float64(i)) * t.bin
		width := t.bin
		if i == n-1 && end-start < width {
			width = end - start
		}
		out = append(out, TPoint{
			T:    start,
			Mbps: float64(b) * 8 / float64(width) / 1e6,
		})
	}
	return out
}

// RatesMbps returns just the Mbps values of SeriesUntil(end).
func (t *Throughput) RatesMbps(end sim.Time) []float64 {
	series := t.SeriesUntil(end)
	out := make([]float64, len(series))
	for i, p := range series {
		out[i] = p.Mbps
	}
	return out
}

// Summary reports avg/min/max throughput over [0, end) — with the silent
// prefix included, which is why the paper's minima are 0 Mbps.
func (t *Throughput) Summary(end sim.Time) stats.Summary {
	return stats.Summarize(t.RatesMbps(end))
}

// CI runs the paper's confidence analysis: batch-means 95% (or level)
// interval over the bins in [0, end).
func (t *Throughput) CI(end sim.Time, nbatches int, level float64) stats.CI {
	return stats.BatchMeansCI(t.RatesMbps(end), nbatches, level)
}

// TotalBytes returns all bytes recorded.
func (t *Throughput) TotalBytes() int {
	sum := 0
	for _, b := range t.bytes {
		sum += b
	}
	return sum
}
