package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"vanetsim/internal/sim"
)

func TestDelaySeriesBasics(t *testing.T) {
	var s DelaySeries
	s.Add(1, 0.1)
	s.Add(2, 0.3)
	s.Add(3, 0.2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	sm := s.Summary()
	if !almost(sm.Mean, 0.2) || sm.Min != 0.1 || sm.Max != 0.3 {
		t.Fatalf("summary = %+v", sm)
	}
	first, ok := s.First()
	if !ok || first != 0.1 {
		t.Fatalf("First = %v, %v", first, ok)
	}
}

func TestDelaySeriesFirstEmpty(t *testing.T) {
	var s DelaySeries
	if _, ok := s.First(); ok {
		t.Fatal("empty series should report no first packet")
	}
}

func TestSplitAt(t *testing.T) {
	var s DelaySeries
	for i := 1; i <= 10; i++ {
		s.Add(i, sim.Time(i))
	}
	tr, st := s.SplitAt(4)
	if len(tr) != 3 || len(st) != 7 {
		t.Fatalf("split = %d/%d, want 3/7", len(tr), len(st))
	}
	if st[0].ID != 4 {
		t.Fatalf("steady starts at ID %d", st[0].ID)
	}
	tr, st = s.SplitAt(100)
	if len(tr) != 10 || st != nil {
		t.Fatal("split beyond end should put everything in transient")
	}
}

func TestTruncationIndexFindsWarmup(t *testing.T) {
	// A clear warm-up ramp followed by flat steady state.
	var s DelaySeries
	id := 1
	for i := 0; i < 50; i++ { // ramp 0 -> 2.5
		s.Add(id, sim.Time(float64(i)*0.05))
		id++
	}
	for i := 0; i < 200; i++ { // steady at 2.6
		s.Add(id, 2.6)
		id++
	}
	cut := s.TruncationIndex()
	if cut < 30 || cut > 80 {
		t.Fatalf("truncation at %d, want near the end of the 50-point ramp", cut)
	}
	_, level := s.SteadyState()
	if math.Abs(level-2.6) > 0.05 {
		t.Fatalf("steady level = %v, want ~2.6", level)
	}
}

func TestTruncationIndexFlatSeries(t *testing.T) {
	var s DelaySeries
	for i := 1; i <= 100; i++ {
		s.Add(i, 1.0)
	}
	if cut := s.TruncationIndex(); cut != 0 {
		t.Fatalf("flat series truncated at %d, want 0", cut)
	}
}

func TestTruncationIndexShortSeries(t *testing.T) {
	var s DelaySeries
	s.Add(1, 1)
	if s.TruncationIndex() != 0 {
		t.Fatal("tiny series must not truncate")
	}
	_, level := s.SteadyState()
	if level != 1 {
		t.Fatalf("steady level of single point = %v", level)
	}
}

func TestSteadyStateEmpty(t *testing.T) {
	var s DelaySeries
	pts, level := s.SteadyState()
	if pts != nil || level != 0 {
		t.Fatal("empty series steady state should be nil, 0")
	}
}

func TestThroughputBinning(t *testing.T) {
	tp := NewThroughput(0.5)
	tp.Add(0.1, 62500)  // 62500 B in bin 0 -> 1 Mbps over 0.5 s
	tp.Add(0.6, 125000) // bin 1 -> 2 Mbps
	tp.Add(0.7, 0)
	series := tp.SeriesUntil(1.5)
	if len(series) != 3 {
		t.Fatalf("bins = %d, want 3", len(series))
	}
	if !almost(series[0].Mbps, 1.0) || !almost(series[1].Mbps, 2.0) || series[2].Mbps != 0 {
		t.Fatalf("series = %+v", series)
	}
	if series[1].T != 0.5 {
		t.Fatalf("bin 1 starts at %v", series[1].T)
	}
	if tp.TotalBytes() != 187500 {
		t.Fatalf("total bytes = %d", tp.TotalBytes())
	}
}

// Regression: the final bin of a series cut mid-bin used to be normalised
// by the full bin width, under-reporting the closing rate. 31250 bytes in
// the quarter-second tail [1.0, 1.25) is 1 Mbps, not the 0.5 Mbps a full
// 0.5 s divisor would claim.
func TestThroughputFinalPartialBinNormalized(t *testing.T) {
	tp := NewThroughput(0.5)
	tp.Add(0.1, 62500) // bin 0, full width: 1 Mbps
	tp.Add(1.1, 31250) // bin 2, cut at 1.25: 31250·8 / 0.25 s = 1 Mbps
	series := tp.SeriesUntil(1.25)
	if len(series) != 3 {
		t.Fatalf("bins = %d, want 3", len(series))
	}
	if !almost(series[0].Mbps, 1.0) {
		t.Fatalf("full bin = %v Mbps, want 1", series[0].Mbps)
	}
	if !almost(series[2].Mbps, 1.0) {
		t.Fatalf("partial bin = %v Mbps, want 1 (normalised by 0.25 s)", series[2].Mbps)
	}
	// An end landing exactly on a bin edge keeps the full-width divisor.
	whole := tp.SeriesUntil(1.5)
	if !almost(whole[2].Mbps, 0.5) {
		t.Fatalf("full-width closing bin = %v Mbps, want 0.5", whole[2].Mbps)
	}
}

func TestThroughputSummaryIncludesSilentPrefix(t *testing.T) {
	// The paper's min throughput is 0 because bins before communication
	// starts are part of the record.
	tp := NewThroughput(0.5)
	tp.Add(5.0, 62500)
	sm := tp.Summary(10)
	if sm.Min != 0 {
		t.Fatalf("min = %v, want 0 (silent prefix)", sm.Min)
	}
	if sm.N != 20 {
		t.Fatalf("bins = %d, want 20", sm.N)
	}
	if sm.Max <= 0 {
		t.Fatal("max must reflect the active bin")
	}
}

func TestThroughputCI(t *testing.T) {
	tp := NewThroughput(0.5)
	// Steady 1 Mbps with slight alternation.
	for i := 0; i < 100; i++ {
		b := 62500
		if i%2 == 0 {
			b += 2500
		}
		tp.Add(sim.Time(float64(i))*0.5+0.1, b)
	}
	ci := tp.CI(50, 10, 0.95)
	if ci.N != 10 {
		t.Fatalf("CI batches = %d", ci.N)
	}
	if ci.Mean < 1.0 || ci.Mean > 1.1 {
		t.Fatalf("CI mean = %v", ci.Mean)
	}
	if ci.RelPrecision() > 0.10 {
		t.Fatalf("relative precision = %v, want tight for a steady series", ci.RelPrecision())
	}
}

func TestThroughputZeroBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bin did not panic")
		}
	}()
	NewThroughput(0)
}

// Regression: impossible samples are rejected with an error and counted,
// not panicked over — a corrupted timestamp mid-sweep must not kill the
// whole run, and the checker surfaces the rejection instead.
func TestThroughputRejectsBadSamples(t *testing.T) {
	tp := NewThroughput(1)
	if err := tp.Add(-1, 10); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := tp.Add(1, -10); err == nil {
		t.Fatal("negative byte count accepted")
	}
	if got := tp.Rejected(); got != 2 {
		t.Fatalf("Rejected() = %d, want 2", got)
	}
	if tp.TotalBytes() != 0 {
		t.Fatalf("rejected samples leaked %d bytes into the bins", tp.TotalBytes())
	}
	if err := tp.Add(0.5, 10); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	if got := tp.Rejected(); got != 2 {
		t.Fatalf("Rejected() after a valid sample = %d, want 2", got)
	}
}

// Property: total bytes are conserved by binning, and every bin rate is
// non-negative and bounded by bytes·8/bin.
func TestThroughputConservationProperty(t *testing.T) {
	f := func(arrivals []uint16) bool {
		tp := NewThroughput(0.5)
		total := 0
		for i, a := range arrivals {
			at := sim.Time(float64(i%200)) * 0.05
			tp.Add(at, int(a))
			total += int(a)
		}
		if tp.TotalBytes() != total {
			return false
		}
		for _, p := range tp.SeriesUntil(10) {
			if p.Mbps < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delays recorded are returned verbatim and non-negative input
// keeps a non-negative summary.
func TestDelaySeriesProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		var s DelaySeries
		for i, d := range ds {
			s.Add(i+1, sim.Time(d)/1000)
		}
		if s.Len() != len(ds) {
			return false
		}
		sm := s.Summary()
		return len(ds) == 0 || (sm.Min >= 0 && sm.Max >= sm.Min && sm.Mean >= sm.Min-1e-12 && sm.Mean <= sm.Max+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func BenchmarkThroughputAdd(b *testing.B) {
	tp := NewThroughput(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Add(sim.Time(i%400)*0.5, 1000)
	}
}

func BenchmarkDelaySeriesSteadyState(b *testing.B) {
	var s DelaySeries
	for i := 1; i <= 2000; i++ {
		s.Add(i, sim.Time(i%7)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SteadyState()
	}
}
