package mobility

import (
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Platoon is an ordered group of vehicles — lead first — travelling in
// convoy with fixed spacing, the paper's network reference model ("two
// vehicle platoons with three vehicles each", 25 m apart).
type Platoon struct {
	vehicles []*Vehicle
	heading  geom.Vec2 // unit vector of travel
	spacing  float64
}

// NewPlatoon creates n stationary vehicles: the lead at leadPos and each
// follower spacing metres behind it along -heading. IDs are assigned
// consecutively starting at firstID. It panics if n < 1 or spacing < 0 or
// heading is the zero vector.
func NewPlatoon(sched *sim.Scheduler, firstID packet.NodeID, n int, leadPos geom.Vec2, heading geom.Vec2, spacing float64) *Platoon {
	if n < 1 {
		panic("mobility: platoon needs at least one vehicle")
	}
	if spacing < 0 {
		panic("mobility: negative spacing")
	}
	dir := heading.Unit()
	if (dir == geom.Vec2{}) {
		panic("mobility: zero heading")
	}
	p := &Platoon{heading: dir, spacing: spacing}
	for i := 0; i < n; i++ {
		pos := leadPos.Sub(dir.Scale(float64(i) * spacing))
		p.vehicles = append(p.vehicles, NewVehicle(firstID+packet.NodeID(i), sched, pos))
	}
	return p
}

// Lead returns the platoon's lead vehicle.
func (p *Platoon) Lead() *Vehicle { return p.vehicles[0] }

// Followers returns the vehicles behind the lead, in order.
func (p *Platoon) Followers() []*Vehicle { return p.vehicles[1:] }

// Vehicles returns all vehicles, lead first.
func (p *Platoon) Vehicles() []*Vehicle { return p.vehicles }

// Len returns the number of vehicles.
func (p *Platoon) Len() int { return len(p.vehicles) }

// Spacing returns the inter-vehicle spacing in metres.
func (p *Platoon) Spacing() float64 { return p.spacing }

// Heading returns the platoon's unit direction of travel.
func (p *Platoon) Heading() geom.Vec2 { return p.heading }

// SetDest moves the whole platoon: the lead heads to dest at speed and
// each follower to the point spacing·i behind dest, preserving convoy
// geometry. The platoon's heading is updated to the direction of travel.
func (p *Platoon) SetDest(dest geom.Vec2, speed float64) {
	lead := p.Lead()
	dir := dest.Sub(lead.Position()).Unit()
	if (dir != geom.Vec2{}) {
		p.heading = dir
	}
	for i, v := range p.vehicles {
		target := dest.Sub(p.heading.Scale(float64(i) * p.spacing))
		v.SetDest(target, speed)
	}
}

// Brake makes every vehicle brake to a stop at decel m/s². Vehicles behind
// the lead brake simultaneously (idealised EBL response).
func (p *Platoon) Brake(decel float64) {
	for _, v := range p.vehicles {
		v.Brake(decel)
	}
}

// Halt stops every vehicle instantaneously.
func (p *Platoon) Halt() {
	for _, v := range p.vehicles {
		v.Halt()
	}
}

// Communicating reports whether the platoon's lead vehicle is in a phase
// where the EBL application transmits (braking or stopped).
func (p *Platoon) Communicating() bool { return p.Lead().Phase().Communicating() }
