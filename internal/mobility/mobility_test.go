package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"vanetsim/internal/geom"
	"vanetsim/internal/sim"
)

func TestVehicleInitialState(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(10, 20))
	if v.Phase() != Stopped {
		t.Fatalf("initial phase = %v, want stopped", v.Phase())
	}
	if v.Position() != geom.V(10, 20) {
		t.Fatalf("initial position = %v", v.Position())
	}
	if v.Speed() != 0 {
		t.Fatalf("initial speed = %v", v.Speed())
	}
	if v.ID() != 1 {
		t.Fatalf("ID = %v", v.ID())
	}
}

func TestSetDestArrivesExactly(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	v.SetDest(geom.V(0, 100), 20) // 100 m at 20 m/s = 5 s
	if v.Phase() != Moving {
		t.Fatalf("phase = %v, want moving", v.Phase())
	}
	s.RunUntil(2.5)
	if got := v.Position(); !got.ApproxEqual(geom.V(0, 50), 1e-9) {
		t.Fatalf("midway position = %v, want (0,50)", got)
	}
	if math.Abs(v.Speed()-20) > 1e-9 {
		t.Fatalf("cruise speed = %v, want 20", v.Speed())
	}
	s.RunUntil(10)
	if got := v.Position(); !got.ApproxEqual(geom.V(0, 100), 1e-9) {
		t.Fatalf("final position = %v, want (0,100)", got)
	}
	if v.Phase() != Stopped || v.Speed() != 0 {
		t.Fatalf("vehicle did not stop at destination: phase=%v speed=%v", v.Phase(), v.Speed())
	}
}

func TestSetDestEvents(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	var events []Event
	v.Subscribe(func(e Event) { events = append(events, e) })
	v.SetDest(geom.V(30, 40), 10) // 50 m at 10 m/s
	s.Run()
	if len(events) != 2 {
		t.Fatalf("got %d events, want departed+stopped", len(events))
	}
	if events[0].Type != EventDeparted || events[0].At != 0 {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].Type != EventStopped || events[1].At != 5 {
		t.Fatalf("second event = %+v", events[1])
	}
	if events[1].Vehicle != v {
		t.Fatal("event should carry the vehicle")
	}
}

func TestSetDestToCurrentPosition(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(5, 5))
	v.SetDest(geom.V(5, 5), 10)
	if v.Phase() != Stopped {
		t.Fatalf("phase = %v, want stopped", v.Phase())
	}
	s.Run()
	if v.Position() != geom.V(5, 5) {
		t.Fatalf("position = %v", v.Position())
	}
}

func TestSetDestRedirectionMidway(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	v.SetDest(geom.V(0, 100), 10)
	s.RunUntil(5) // at (0, 50)
	v.SetDest(geom.V(100, 50), 10)
	s.Run()
	if got := v.Position(); !got.ApproxEqual(geom.V(100, 50), 1e-9) {
		t.Fatalf("redirected position = %v, want (100,50)", got)
	}
	// The original arrival event must not fire a phantom stop at (0,100).
	if v.Phase() != Stopped {
		t.Fatalf("phase = %v", v.Phase())
	}
}

func TestBrakeKinematics(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	v.SetDest(geom.V(0, 10000), 22.4) // paper speed: 50 mph
	s.RunUntil(10)
	v.Brake(4) // 22.4 m/s at 4 m/s² -> stops in 5.6 s over 62.72 m
	if v.Phase() != Braking {
		t.Fatalf("phase = %v, want braking", v.Phase())
	}
	posAtBrake := v.Position()
	s.RunUntil(10 + 2.8) // halfway through braking: speed should be 11.2
	if math.Abs(v.Speed()-11.2) > 1e-9 {
		t.Fatalf("speed mid-brake = %v, want 11.2", v.Speed())
	}
	s.Run()
	if v.Phase() != Stopped || v.Speed() != 0 {
		t.Fatalf("did not stop: phase=%v speed=%v", v.Phase(), v.Speed())
	}
	stopDist := v.Position().Dist(posAtBrake)
	want := BrakingDistance(22.4, 4)
	if math.Abs(stopDist-want) > 1e-6 {
		t.Fatalf("stopping distance = %v, want %v", stopDist, want)
	}
}

func TestBrakeWhileStoppedIsNoop(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	var events []Event
	v.Subscribe(func(e Event) { events = append(events, e) })
	v.Brake(4)
	if len(events) != 0 || v.Phase() != Stopped {
		t.Fatal("braking while stopped should do nothing")
	}
}

func TestHalt(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	v.SetDest(geom.V(0, 100), 10)
	s.RunUntil(3)
	v.Halt()
	if v.Phase() != Stopped || v.Speed() != 0 {
		t.Fatal("Halt did not stop vehicle")
	}
	pos := v.Position()
	s.Run()
	if v.Position() != pos {
		t.Fatal("vehicle moved after Halt")
	}
}

func TestPositionHistory(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	v.SetDest(geom.V(0, 100), 10)
	s.Run()
	// Query past positions after the fact.
	if got := v.PositionAt(5); !got.ApproxEqual(geom.V(0, 50), 1e-9) {
		t.Fatalf("PositionAt(5) = %v, want (0,50)", got)
	}
	if got := v.PositionAt(0); got != geom.V(0, 0) {
		t.Fatalf("PositionAt(0) = %v", got)
	}
}

func TestBrakingDistance(t *testing.T) {
	if got := BrakingDistance(20, 5); got != 40 {
		t.Fatalf("BrakingDistance = %v, want 40", got)
	}
	if !math.IsInf(BrakingDistance(20, 0), 1) {
		t.Fatal("zero decel should give infinite distance")
	}
}

func TestPanics(t *testing.T) {
	s := sim.New()
	v := NewVehicle(1, s, geom.V(0, 0))
	for name, fn := range map[string]func(){
		"SetDest zero speed": func() { v.SetDest(geom.V(1, 1), 0) },
		"Brake zero decel": func() {
			v.SetDest(geom.V(0, 100), 10)
			v.Brake(0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPlatoonGeometry(t *testing.T) {
	s := sim.New()
	p := NewPlatoon(s, 0, 3, geom.V(0, 0), geom.V(0, 1), 25)
	if p.Len() != 3 || p.Spacing() != 25 {
		t.Fatalf("platoon misconfigured: len=%d spacing=%v", p.Len(), p.Spacing())
	}
	want := []geom.Vec2{geom.V(0, 0), geom.V(0, -25), geom.V(0, -50)}
	for i, v := range p.Vehicles() {
		if !v.Position().ApproxEqual(want[i], 1e-9) {
			t.Fatalf("vehicle %d at %v, want %v", i, v.Position(), want[i])
		}
	}
	if p.Lead().ID() != 0 || p.Followers()[0].ID() != 1 || p.Followers()[1].ID() != 2 {
		t.Fatal("platoon IDs not consecutive from firstID")
	}
}

func TestPlatoonConvoyMotion(t *testing.T) {
	s := sim.New()
	p := NewPlatoon(s, 0, 3, geom.V(0, -100), geom.V(0, 1), 25)
	p.SetDest(geom.V(0, 0), 22.4)
	s.Run()
	// Convoy geometry preserved at the destination.
	want := []geom.Vec2{geom.V(0, 0), geom.V(0, -25), geom.V(0, -50)}
	for i, v := range p.Vehicles() {
		if !v.Position().ApproxEqual(want[i], 1e-6) {
			t.Fatalf("vehicle %d at %v, want %v", i, v.Position(), want[i])
		}
		if v.Phase() != Stopped {
			t.Fatalf("vehicle %d phase = %v", i, v.Phase())
		}
	}
	if !p.Communicating() {
		t.Fatal("stopped platoon should be communicating")
	}
}

func TestPlatoonSpacingPreservedWhileMoving(t *testing.T) {
	s := sim.New()
	p := NewPlatoon(s, 0, 3, geom.V(0, -200), geom.V(0, 1), 25)
	p.SetDest(geom.V(0, 0), 20)
	s.RunUntil(4)
	lead, mid := p.Vehicles()[0], p.Vehicles()[1]
	if d := lead.Position().Dist(mid.Position()); math.Abs(d-25) > 1e-9 {
		t.Fatalf("spacing while moving = %v, want 25", d)
	}
}

func TestPlatoonPanics(t *testing.T) {
	s := sim.New()
	for name, fn := range map[string]func(){
		"empty":        func() { NewPlatoon(s, 0, 0, geom.V(0, 0), geom.V(0, 1), 25) },
		"zero heading": func() { NewPlatoon(s, 0, 2, geom.V(0, 0), geom.V(0, 0), 25) },
		"neg spacing":  func() { NewPlatoon(s, 0, 2, geom.V(0, 0), geom.V(0, 1), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPhaseStrings(t *testing.T) {
	if Stopped.String() != "stopped" || Moving.String() != "moving" || Braking.String() != "braking" {
		t.Fatal("phase names wrong")
	}
	if !Stopped.Communicating() || !Braking.Communicating() || Moving.Communicating() {
		t.Fatal("Communicating rule wrong")
	}
	if EventDeparted.String() != "departed" || EventBrakeStart.String() != "brake-start" || EventStopped.String() != "stopped" {
		t.Fatal("event names wrong")
	}
}

// Property: position is continuous across segment boundaries — sampling
// the trajectory densely never shows a jump larger than speed*dt.
func TestNoTeleportProperty(t *testing.T) {
	f := func(destX, destY int8, speedRaw uint8) bool {
		speed := float64(speedRaw%30) + 1
		s := sim.New()
		v := NewVehicle(1, s, geom.V(0, 0))
		dest := geom.V(float64(destX), float64(destY))
		travel := geom.V(0, 0).Dist(dest)/speed + 1
		v.SetDest(dest, speed)
		s.Run()
		const dt = 0.05
		prev := v.PositionAt(0)
		for ts := dt; ts < travel; ts += dt {
			cur := v.PositionAt(sim.Time(ts))
			if cur.Dist(prev) > speed*dt+1e-9 {
				return false
			}
			prev = cur
		}
		return v.PositionAt(sim.Time(travel)).ApproxEqual(dest, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: speed never exceeds the commanded cruise speed during a
// SetDest manoeuvre, and braking monotonically decreases speed.
func TestSpeedBoundsProperty(t *testing.T) {
	f := func(speedRaw, decelRaw uint8) bool {
		speed := float64(speedRaw%40) + 1
		decel := float64(decelRaw%8) + 1
		s := sim.New()
		v := NewVehicle(1, s, geom.V(0, 0))
		v.SetDest(geom.V(0, 1e6), speed)
		s.RunUntil(5)
		v.Brake(decel)
		prevSpeed := v.Speed()
		if prevSpeed > speed+1e-9 {
			return false
		}
		for !s.Stopped() && v.Phase() == Braking {
			if !s.Step() {
				break
			}
			cur := v.Speed()
			if cur > prevSpeed+1e-9 {
				return false
			}
			prevSpeed = cur
		}
		return v.Speed() <= speed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
