// Package mobility models vehicle motion for the EBL scenario: platoons of
// vehicles that cruise at a fixed speed, brake, stop, and depart.
//
// Motion is represented as piecewise constant-acceleration segments that
// are evaluated lazily — the simulator never ticks positions forward; a
// radio asks a vehicle where it is at transmission time and gets the exact
// kinematic answer. Phase changes (brake start, full stop, departure,
// arrival) are discrete events published to subscribers; the EBL
// application keys its communicate-only-while-braking-or-stopped rule off
// them, as the paper's scenario requires.
package mobility

import (
	"fmt"
	"math"
	"sort"

	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Phase is a vehicle's motion state. The paper's EBL rule is that vehicles
// communicate only while Braking or Stopped.
type Phase uint8

// Vehicle phases.
const (
	Stopped Phase = iota
	Moving
	Braking
)

var phaseNames = [...]string{"stopped", "moving", "braking"}

// String returns the lowercase phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Communicating reports whether the EBL application transmits in this
// phase (braking or stopped, per the paper's scenario definition).
func (p Phase) Communicating() bool { return p == Braking || p == Stopped }

// EventType classifies a motion event.
type EventType uint8

// Motion event types.
const (
	EventDeparted   EventType = iota // vehicle started moving
	EventBrakeStart                  // vehicle began braking
	EventStopped                     // vehicle came to a full stop
)

var eventNames = [...]string{"departed", "brake-start", "stopped"}

// String returns the event name.
func (e EventType) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Event is a discrete motion event delivered to subscribers.
type Event struct {
	Type    EventType
	At      sim.Time
	Vehicle *Vehicle
}

// segment is one constant-acceleration piece of a trajectory, valid from
// start until the next segment's start.
type segment struct {
	start sim.Time
	pos   geom.Vec2
	vel   geom.Vec2
	acc   geom.Vec2
}

func (s segment) at(t sim.Time) geom.Vec2 {
	dt := float64(t - s.start)
	return s.pos.Add(s.vel.Scale(dt)).Add(s.acc.Scale(0.5 * dt * dt))
}

func (s segment) velAt(t sim.Time) geom.Vec2 {
	dt := float64(t - s.start)
	return s.vel.Add(s.acc.Scale(dt))
}

// Vehicle is a single mobile node. Create vehicles with NewVehicle; the
// zero value is not usable.
type Vehicle struct {
	id    packet.NodeID
	sched *sim.Scheduler
	segs  []segment
	phase Phase

	pending   sim.Timer // arrival/stop event for the current manoeuvre
	listeners []func(Event)
	// motionHooks fire after every trajectory change (any pushSegment),
	// including phase-preserving ones like redirecting a moving vehicle.
	// The PHY's spatial index keys its cell-staleness bounds off the
	// current segment, so it must hear about every segment replacement,
	// not just the phase transitions Subscribe reports.
	motionHooks []func()
}

// NewVehicle creates a stationary vehicle at pos.
func NewVehicle(id packet.NodeID, sched *sim.Scheduler, pos geom.Vec2) *Vehicle {
	v := &Vehicle{id: id, sched: sched, phase: Stopped}
	v.segs = append(v.segs, segment{start: sched.Now(), pos: pos})
	return v
}

// ID returns the vehicle's node ID.
func (v *Vehicle) ID() packet.NodeID { return v.id }

// Phase returns the current motion phase.
func (v *Vehicle) Phase() Phase { return v.phase }

// Subscribe registers fn to receive this vehicle's motion events.
func (v *Vehicle) Subscribe(fn func(Event)) {
	v.listeners = append(v.listeners, fn)
}

// OnMotionChange registers fn to be called whenever the vehicle's
// trajectory changes — every new constant-acceleration segment, whether or
// not the phase changed. Hooks run after the new segment is in place, so
// Motion sampled inside fn reflects the new trajectory.
func (v *Vehicle) OnMotionChange(fn func()) {
	v.motionHooks = append(v.motionHooks, fn)
}

func (v *Vehicle) notifyMotion() {
	for _, fn := range v.motionHooks {
		fn()
	}
}

// Motion returns the vehicle's instantaneous kinematic state — position,
// velocity, and acceleration of the current motion segment — at the
// current simulated time. Between OnMotionChange notifications the vehicle
// follows exactly this constant-acceleration law, which is what lets the
// PHY's spatial index bound how far the vehicle can stray from a sampled
// position without re-asking.
func (v *Vehicle) Motion() (pos, vel, acc geom.Vec2) {
	now := v.sched.Now()
	s := v.segmentAt(now)
	return s.at(now), s.velAt(now), s.acc
}

func (v *Vehicle) publish(t EventType) {
	ev := Event{Type: t, At: v.sched.Now(), Vehicle: v}
	for _, fn := range v.listeners {
		fn(ev)
	}
}

// Position returns the vehicle's position at the current simulated time.
func (v *Vehicle) Position() geom.Vec2 { return v.PositionAt(v.sched.Now()) }

// PositionAt returns the position at time t, which may be any time since
// the vehicle was created (the full trajectory history is kept).
func (v *Vehicle) PositionAt(t sim.Time) geom.Vec2 {
	return v.segmentAt(t).at(t)
}

// Velocity returns the velocity vector at the current simulated time.
func (v *Vehicle) Velocity() geom.Vec2 {
	now := v.sched.Now()
	return v.segmentAt(now).velAt(now)
}

// Speed returns the scalar speed in m/s at the current simulated time.
func (v *Vehicle) Speed() float64 { return v.Velocity().Len() }

func (v *Vehicle) segmentAt(t sim.Time) segment {
	// Nearly every query is at the current simulated time, which the latest
	// segment covers; testing it first keeps the hot path free of the
	// binary search (and, being a pure read, free of any cached state that
	// concurrent position sampling would race on).
	if s := v.segs[len(v.segs)-1]; s.start <= t {
		return s
	}
	// Segments are appended in time order; find the last with start <= t.
	i := sort.Search(len(v.segs), func(i int) bool { return v.segs[i].start > t })
	if i == 0 {
		return v.segs[0] // t precedes creation; clamp to initial state
	}
	return v.segs[i-1]
}

func (v *Vehicle) pushSegment(s segment) {
	// Replace rather than append if a segment already starts at this time,
	// so repeated commands in one instant don't accumulate zero-length
	// segments.
	if n := len(v.segs); n > 0 && v.segs[n-1].start == s.start {
		v.segs[n-1] = s
	} else {
		v.segs = append(v.segs, s)
	}
	v.notifyMotion()
}

func (v *Vehicle) cancelPending() {
	v.pending.Cancel()
	v.pending = sim.Timer{}
}

// SetDest starts the vehicle moving in a straight line toward dest at the
// given constant speed, stopping exactly there — the ns-2 "setdest"
// primitive the paper's Tcl scenario uses. It publishes EventDeparted now
// and EventStopped on arrival. A dest equal to the current position stops
// the vehicle immediately. SetDest panics on non-positive speed.
func (v *Vehicle) SetDest(dest geom.Vec2, speed float64) {
	if speed <= 0 {
		panic("mobility: SetDest speed must be positive")
	}
	now := v.sched.Now()
	cur := v.PositionAt(now)
	v.cancelPending()
	dist := cur.Dist(dest)
	if dist == 0 {
		v.pushSegment(segment{start: now, pos: cur})
		v.setPhase(Stopped)
		return
	}
	dir := dest.Sub(cur).Unit()
	v.pushSegment(segment{start: now, pos: cur, vel: dir.Scale(speed)})
	v.setPhase(Moving)
	travel := sim.Time(dist / speed)
	v.pending = v.sched.ScheduleKind(sim.KindMobility, travel, func() {
		v.pending = sim.Timer{}
		v.pushSegment(segment{start: v.sched.Now(), pos: dest})
		v.setPhase(Stopped)
	})
}

// Brake decelerates the vehicle to a stop at decel m/s² along its current
// direction of travel. It publishes EventBrakeStart now and EventStopped
// when speed reaches zero. Braking while already stopped is a no-op.
// Brake panics on non-positive decel.
func (v *Vehicle) Brake(decel float64) {
	if decel <= 0 {
		panic("mobility: Brake decel must be positive")
	}
	now := v.sched.Now()
	vel := v.segmentAt(now).velAt(now)
	speed := vel.Len()
	if speed == 0 {
		return
	}
	v.cancelPending()
	cur := v.PositionAt(now)
	dir := vel.Unit()
	v.pushSegment(segment{start: now, pos: cur, vel: vel, acc: dir.Scale(-decel)})
	v.setPhase(Braking)
	stopIn := sim.Time(speed / decel)
	v.pending = v.sched.ScheduleKind(sim.KindMobility, stopIn, func() {
		v.pending = sim.Timer{}
		stopPos := cur.Add(dir.Scale(speed * speed / (2 * decel)))
		v.pushSegment(segment{start: v.sched.Now(), pos: stopPos})
		v.setPhase(Stopped)
	})
}

// Halt stops the vehicle instantaneously at its current position
// (publishing EventStopped if it was moving). It models the idealised
// stop-at-intersection of the paper's scenario when no braking dynamics
// are wanted.
func (v *Vehicle) Halt() {
	now := v.sched.Now()
	cur := v.PositionAt(now)
	v.cancelPending()
	v.pushSegment(segment{start: now, pos: cur})
	v.setPhase(Stopped)
}

// BrakingDistance returns the distance, in metres, a vehicle travelling at
// speed m/s needs to stop at decel m/s²: v²/2a.
func BrakingDistance(speed, decel float64) float64 {
	if decel <= 0 {
		return math.Inf(1)
	}
	return speed * speed / (2 * decel)
}

func (v *Vehicle) setPhase(p Phase) {
	if v.phase == p {
		return
	}
	v.phase = p
	switch p {
	case Moving:
		v.publish(EventDeparted)
	case Braking:
		v.publish(EventBrakeStart)
	case Stopped:
		v.publish(EventStopped)
	}
}
