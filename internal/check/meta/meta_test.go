package meta_test

import (
	"bytes"
	"math"
	"testing"

	vanetsim "vanetsim"

	"vanetsim/internal/app"
	"vanetsim/internal/check"
	"vanetsim/internal/fault"
	"vanetsim/internal/geom"
	"vanetsim/internal/packet"
	"vanetsim/internal/scenario"
	"vanetsim/internal/sim"
	"vanetsim/internal/trace"
)

// deliveredAtScale runs a static 4-node line topology with one CBR flow
// end to end and returns the set of unique datagram UIDs the sink saw.
// Node spacing is 20·scale metres, so the longest pairwise distance is
// 60·scale m — inside the two-ray crossover (~86 m for the WaveLAN
// geometry) and far inside the ~250 m reception range for every scale
// this test uses. The invariant checker is armed for both runs.
func deliveredAtScale(t *testing.T, mac scenario.MACType, scale float64) map[uint64]bool {
	t.Helper()
	cfg := scenario.DefaultStackConfig(mac)
	cfg.Check = check.New()
	w := scenario.NewWorld(cfg, 1)
	const n = 4
	for i := 0; i < n; i++ {
		x := float64(i) * 20 * scale
		w.AddNode(packet.NodeID(i), func() geom.Vec2 { return geom.V(x, 0) })
	}
	src := app.NewUDPSource(w.Sched, w.Nodes[0].Net, w.PF, 5000, packet.NodeID(n-1), 5001, packet.TypeCBR)
	sink := app.NewUDPSink(w.Sched, w.Nodes[n-1].Net, 5001)
	seen := make(map[uint64]bool)
	sink.OnRecv(func(p *packet.Packet, _ sim.Time) { seen[p.UID] = true })
	app.NewCBR(w.Sched, src, 400, 5e4).Start()
	w.Sched.RunUntil(10)
	for _, v := range w.AuditInvariants() {
		t.Errorf("mac=%v scale=%v: %v", mac, scale, v.Error())
	}
	if len(seen) == 0 {
		t.Fatalf("mac=%v scale=%v: no datagrams delivered — the relation would hold vacuously", mac, scale)
	}
	return seen
}

// TestDistanceScalingPreservesDelivery pins the first metamorphic
// relation: received power is a function of distance, but as long as
// every pair stays inside reception range, delivery is not. Shrinking
// the whole topology must reproduce exactly the same delivered UIDs.
func TestDistanceScalingPreservesDelivery(t *testing.T) {
	for _, mac := range []scenario.MACType{scenario.MACTDMA, scenario.MAC80211} {
		base := deliveredAtScale(t, mac, 1.0)
		for _, scale := range []float64{0.5, 0.8} {
			got := deliveredAtScale(t, mac, scale)
			if len(got) != len(base) {
				t.Fatalf("mac=%v: scale %v delivered %d unique datagrams, scale 1.0 delivered %d",
					mac, scale, len(got), len(base))
			}
			for uid := range base {
				if !got[uid] {
					t.Fatalf("mac=%v: uid %d delivered at scale 1.0 but lost at scale %v", mac, uid, scale)
				}
			}
		}
	}
}

// TestNullFaultPlanIsIdentity pins the second relation: a fault plan
// with every knob at its no-effect value (loss probability 0, a burst
// chain built for 0 stationary loss, a zero-duration outage) must
// produce byte-identical traces and telemetry to no plan at all. This
// is the fault layer's "zero effect when off" contract, checked through
// the renderers rather than trusted at the gate.
func TestNullFaultPlanIsIdentity(t *testing.T) {
	run := func(plan fault.Plan) (traceBytes, ndjson []byte) {
		cfg := vanetsim.Trial1()
		cfg.Duration = 15
		cfg.CollectTrace = true
		cfg.Telemetry = true
		cfg.Check = true
		cfg.Faults = plan
		r := vanetsim.RunTrial(cfg)
		for _, v := range r.Violations {
			t.Errorf("faults=%+v: %v", plan, v.Error())
		}
		var tb, nb bytes.Buffer
		if err := trace.WriteAll(&tb, r.Trace); err != nil {
			t.Fatal(err)
		}
		if err := r.Telemetry.NDJSON(&nb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), nb.Bytes()
	}
	baseTrace, baseTel := run(fault.Plan{})
	nullPlan := fault.Plan{
		Bernoulli: fault.Bernoulli{LossProb: 0, BitErrorRate: 0},
		Burst:     fault.Burst(0, 4),
		Outages:   []fault.Outage{{Node: 1, Start: 5, Duration: 0}},
	}
	nullTrace, nullTel := run(nullPlan)
	if !bytes.Equal(baseTrace, nullTrace) {
		t.Error("null fault plan changed the packet trace")
	}
	if !bytes.Equal(baseTel, nullTel) {
		t.Error("null fault plan changed the telemetry report")
	}
}

// sameReplication compares two per-seed results field by field, treating
// NaN as equal to NaN (a missing initial-packet sample is an explicit
// NaN, and both runs must miss it identically).
func sameReplication(a, b vanetsim.Replication) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.Seed == b.Seed &&
		eq(a.AvgDelayS, b.AvgDelayS) &&
		eq(a.SteadyS, b.SteadyS) &&
		eq(a.FirstS, b.FirstS) &&
		eq(a.AvgTputMbps, b.AvgTputMbps)
}

// TestReplicationDoublingPreservesPerSeedResults pins the third
// relation: per-seed results are a pure function of (config, seed), so
// extending the seed list must reproduce the shared prefix exactly.
// Shared RNG state, pooled-object reuse across runs, or an
// order-dependent reduction would all break this.
func TestReplicationDoublingPreservesPerSeedResults(t *testing.T) {
	cfg := vanetsim.Trial1()
	cfg.Duration = 40
	cfg.Check = true
	short, err := vanetsim.RunReplicationsPool(cfg, []uint64{1, 2, 3}, vanetsim.Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	long, err := vanetsim.RunReplicationsPool(cfg, []uint64{1, 2, 3, 4, 5, 6}, vanetsim.Pool{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Runs) != 3 || len(long.Runs) != 6 {
		t.Fatalf("run counts = %d/%d, want 3/6", len(short.Runs), len(long.Runs))
	}
	for i, a := range short.Runs {
		if b := long.Runs[i]; !sameReplication(a, b) {
			t.Errorf("seed %d: short study %+v != long study prefix %+v", a.Seed, a, b)
		}
	}
}
