// Package meta holds the simulator's metamorphic test harness.
//
// Where internal/check audits invariants *inside* one run (conservation,
// slot exclusivity, route sanity), metamorphic testing relates *pairs* of
// runs: transform the input in a way whose effect on the output is known
// exactly, run both, and compare. No oracle for the absolute answer is
// needed — only for the relation — which makes these tests sensitive to
// whole classes of bugs (hidden global state, wall-clock leaks, RNG
// stream coupling, accidental geometry dependence) that per-run
// invariants cannot see.
//
// The harness pins three relations, each chosen so the expected effect is
// *identity*:
//
//   - Distance scaling: shrinking every inter-node distance while all
//     pairs stay inside the free-space region and the reception range
//     must leave the set of delivered datagrams unchanged. Received
//     power changes; connectivity, and therefore delivery, must not.
//
//   - Null impairment: a fault plan whose every knob is at its "no
//     effect" value (zero loss probability, zero-loss burst chain,
//     zero-duration outage) must be byte-identical to no fault plan at
//     all — the fault layer's "zero effect when off" discipline, checked
//     end to end through trace and telemetry rendering.
//
//   - Replication extension: running seeds {1..n} and then {1..2n} must
//     produce identical per-seed results for the shared prefix. Any
//     cross-replication state leak (shared RNG, pooled object reuse,
//     order-dependent reduction) breaks this.
//
// All relations run under the armed invariant checker, so a metamorphic
// pass also certifies both runs clean.
package meta
