package check

import (
	"strings"
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Violationf(1, "phy", "x", "should be dropped")
	if r.Violations() != nil || r.Total() != 0 || r.Err() != nil {
		t.Fatal("nil registry recorded state")
	}
}

func TestRegistryRecordsAndCaps(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("armed registry reports disabled")
	}
	for i := 0; i < maxStored+10; i++ {
		r.Violationf(sim.Time(i), "phy", "arrival_conservation", "violation %d", i)
	}
	if got := len(r.Violations()); got != maxStored {
		t.Fatalf("stored %d violations, want cap %d", got, maxStored)
	}
	if r.Total() != maxStored+10 {
		t.Fatalf("Total = %d, want %d", r.Total(), maxStored+10)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("Err() nil with violations recorded")
	}
	if !strings.Contains(err.Error(), "violation 0") {
		t.Fatalf("Err() should cite the first violation: %v", err)
	}
	v := r.Violations()[0]
	if v.Layer != "phy" || v.Name != "arrival_conservation" || v.At != 0 {
		t.Fatalf("violation fields = %+v", v)
	}
	if !strings.Contains(v.Error(), "phy/arrival_conservation") {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestCleanRegistryErrNil(t *testing.T) {
	if err := New().Err(); err != nil {
		t.Fatalf("clean registry Err = %v", err)
	}
}

func TestMonotonicHook(t *testing.T) {
	r := New()
	hook := Monotonic(r)
	hook(1.0, 1.5) // forward: fine
	hook(1.5, 1.5) // equal times: fine (zero-delay events are legal)
	if r.Total() != 0 {
		t.Fatalf("forward steps flagged: %v", r.Violations())
	}
	hook(2.0, 1.0) // backwards
	if r.Total() != 1 {
		t.Fatalf("backwards step not flagged, total = %d", r.Total())
	}
	if v := r.Violations()[0]; v.Layer != "sched" || v.Name != "time_monotone" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestSlotGuard(t *testing.T) {
	r := New()
	g := NewSlotGuard(r, 0.1)
	g.Transmitting(0.05, 1, 101) // slot 0
	g.Transmitting(0.15, 2, 102) // slot 1: different slot, fine
	g.Transmitting(0.17, 2, 103) // slot 1 again, same owner: fine
	if r.Total() != 0 {
		t.Fatalf("legal schedule flagged: %v", r.Violations())
	}
	g.Transmitting(0.19, 3, 104) // slot 1, second owner: violation
	if r.Total() != 1 {
		t.Fatalf("slot collision not flagged, total = %d", r.Total())
	}
	if v := r.Violations()[0]; v.Layer != "mac/tdma" || v.Name != "slot_exclusive" {
		t.Fatalf("violation = %+v", v)
	}
}

// Regression: TDMA slot starts are computed as offset + n·frame in
// float64, and dividing such a sum back by the slot duration can land a
// hair under the integer slot number (trial 1's node 5 at t = 11·slotDur
// binned into slot 10, "colliding" with node 4). Boundary-exact starts
// must never be flagged.
func TestSlotGuardBoundaryRounding(t *testing.T) {
	r := New()
	slotDur := sim.Time(0.012286) // trial-1 TDMA slot: 1 Mb/s, 1528-byte frame
	g := NewSlotGuard(r, slotDur)
	// Slot starts for nodes 4 and 5 of a 6-node frame, computed the way
	// mactdma.Schedule.NextSlotStart computes them.
	frame := sim.Time(6) * slotDur
	g.Transmitting(sim.Time(4)*slotDur+frame, 4, 1) // slot 10
	g.Transmitting(sim.Time(5)*slotDur+frame, 5, 2) // slot 11
	if r.Total() != 0 {
		t.Fatalf("boundary-exact slot starts flagged: %v", r.Violations())
	}
}

func TestSlotGuardNilSafe(t *testing.T) {
	var g *SlotGuard
	g.Transmitting(1, 1, 1) // must not panic
}

func TestNewSlotGuardRejectsBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slot duration did not panic")
		}
	}()
	NewSlotGuard(New(), 0)
}

func TestRouteGuardUseRoute(t *testing.T) {
	cases := []struct {
		name    string
		valid   bool
		expiry  sim.Time
		nextHop packet.NodeID
		hops    int
		bad     bool
	}{
		{"healthy", true, 100, 2, 1, false},
		{"invalidated", false, 100, 2, 1, true},
		{"expired", true, 5, 2, 1, true},
		{"no-next-hop", true, 100, packet.None, 1, true},
		{"zero-hops", true, 100, 2, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := New()
			g := NewRouteGuard(r)
			g.UseRoute(10, 7, c.valid, c.expiry, c.nextHop, c.hops)
			if got := r.Total() > 0; got != c.bad {
				t.Fatalf("flagged = %v, want %v (%v)", got, c.bad, r.Violations())
			}
		})
	}
}

func TestRouteGuardForwardConservesHopBudget(t *testing.T) {
	r := New()
	g := NewRouteGuard(r)
	g.Forward(1, 42, 31, 1) // first hop of a TTL-32 datagram
	g.Forward(2, 42, 30, 2) // next hop: one TTL unit became one forward
	g.Forward(3, 42, 31, 1) // MAC-retry/salvage copy re-forwarded: same budget
	if r.Total() != 0 {
		t.Fatalf("legal path flagged: %v", r.Violations())
	}
	g.Forward(4, 42, 31, 2) // TTL grew without a matching hop: corruption
	if r.Total() != 1 {
		t.Fatalf("drifting hop budget not flagged, total = %d", r.Total())
	}
	if v := r.Violations()[0]; v.Layer != "aodv" || v.Name != "hop_budget" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestRouteGuardWindowEviction(t *testing.T) {
	r := New()
	g := NewRouteGuard(r)
	g.Forward(0, 1, 10, 1)
	// Push uid 1 out of the FIFO window entirely.
	for i := uint64(2); i < routeGuardWindow+2; i++ {
		g.Forward(0, i, 10, 1)
	}
	// uid 1 was evicted: a drifted budget is unobservable, and the entry is
	// simply re-admitted.
	g.Forward(1, 1, 20, 1)
	if r.Total() != 0 {
		t.Fatalf("evicted uid still tracked: %v", r.Violations())
	}
	if len(g.budget) != routeGuardWindow {
		t.Fatalf("window holds %d entries, want %d", len(g.budget), routeGuardWindow)
	}
}

func TestEnvelopeDelivery(t *testing.T) {
	r := New()
	e := NewEnvelope(r, 1e6) // 1000 bytes = 8 ms serialization
	e.Delivery(10.0, 10.0-0.008, 1000, 7)
	if r.Total() != 0 {
		t.Fatalf("exact serialization delay flagged: %v", r.Violations())
	}
	e.Delivery(10.0, 10.0-0.004, 1000, 8) // half the bound: impossible
	if r.Total() != 1 {
		t.Fatal("sub-serialization delay not flagged")
	}
	e.Delivery(10.0, 10.5, 1000, 9) // delivered before sending
	if r.Total() != 2 {
		t.Fatal("negative delay not flagged")
	}
	for _, v := range r.Violations() {
		if v.Layer != "ebl" || v.Name != "delay_envelope" {
			t.Fatalf("violation = %+v", v)
		}
	}
}

func TestEnvelopeNilSafe(t *testing.T) {
	var e *Envelope
	e.Delivery(1, 2, 100, 1)
	e.BadSample(1, nil)
}

func TestEnvelopeBadSample(t *testing.T) {
	r := New()
	e := NewEnvelope(r, 1e6)
	e.BadSample(3, nil) // nil error is not a violation
	if r.Total() != 0 {
		t.Fatal("nil error flagged")
	}
	e.BadSample(3, errSentinel{})
	if r.Total() != 1 {
		t.Fatal("rejected sample not flagged")
	}
	if v := r.Violations()[0]; v.Name != "metric_sample" {
		t.Fatalf("violation = %+v", v)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "bad sample" }

func TestCountingQueueConservation(t *testing.T) {
	cq := Count(queue.NewDropTail(2, nil))
	p := func() *packet.Packet { return &packet.Packet{} }
	if !cq.Enqueue(p()) || !cq.Enqueue(p()) {
		t.Fatal("enqueue into empty queue failed")
	}
	if cq.Enqueue(p()) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	if cq.Dequeue() == nil {
		t.Fatal("dequeue from non-empty queue failed")
	}
	if cq.Len() != 1 || cq.Cap() != 2 || cq.Drops() != 1 {
		t.Fatalf("Len/Cap/Drops = %d/%d/%d", cq.Len(), cq.Cap(), cq.Drops())
	}
	if cq.Peek() == nil {
		t.Fatal("peek at non-empty queue failed")
	}
	r := New()
	cq.Audit(r, 100, "node 1")
	if r.Total() != 0 {
		t.Fatalf("balanced queue flagged: %v", r.Violations())
	}
}

func TestCountingQueueAuditFlagsImbalance(t *testing.T) {
	cq := Count(queue.NewDropTail(4, nil))
	cq.Enqueue(&packet.Packet{})
	cq.dequeued = 5 // corrupt the books: more out than in
	r := New()
	cq.Audit(r, 100, "node 1")
	if r.Total() != 1 {
		t.Fatal("imbalanced queue not flagged")
	}
	if v := r.Violations()[0]; v.Layer != "ifq" || v.Name != "conservation" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCountingQueueAuditFlagsDropMismatch(t *testing.T) {
	cq := Count(queue.NewDropTail(1, nil))
	cq.Enqueue(&packet.Packet{})
	cq.Enqueue(&packet.Packet{}) // rejected by the inner queue
	cq.rejected = 5              // claim more rejections than inner drops
	r := New()
	cq.Audit(r, 100, "node 1")
	if r.Total() != 1 {
		t.Fatal("negative eviction count not flagged")
	}
	if v := r.Violations()[0]; v.Name != "drop_accounting" {
		t.Fatalf("violation = %+v", v)
	}
}

func TestViolationUIDfCarriesTrail(t *testing.T) {
	r := New()
	r.SetTrail(func(uid uint64) []string {
		if uid == 42 {
			return []string{"t=1.0s n0 tx uid=42", "t=1.1s n1 rx_ok uid=42"}
		}
		return nil
	})
	r.ViolationUIDf(1.5, "ebl", "delay_envelope", 42, "delay %v too low", 0.001)
	r.ViolationUIDf(1.6, "ebl", "delay_envelope", 7, "delay %v too low", 0.002)
	vs := r.Violations()
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2", len(vs))
	}
	if vs[0].UID != 42 || len(vs[0].Trail) != 2 {
		t.Fatalf("violation missing uid/trail: %+v", vs[0])
	}
	if vs[1].UID != 7 || vs[1].Trail != nil {
		t.Fatalf("unseen uid grew a trail: %+v", vs[1])
	}
	// Error() format is unchanged by the new fields.
	want := "check: t=1.500000000s ebl/delay_envelope: delay 0.001 too low"
	if got := vs[0].Error(); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

func TestSetTrailNilSafe(t *testing.T) {
	var r *Registry
	r.SetTrail(func(uint64) []string { return nil }) // must not panic
	r.ViolationUIDf(1, "x", "y", 3, "msg")
	reg := New()
	reg.ViolationUIDf(1, "x", "y", 3, "msg") // no resolver installed
	if v := reg.Violations()[0]; v.UID != 3 || v.Trail != nil {
		t.Fatalf("violation = %+v", v)
	}
}
