// Package check is the opt-in runtime invariant checker threaded through
// every layer of the simulator: frame/packet conservation at layer
// boundaries, TDMA slot exclusivity, scheduler time monotonicity, AODV
// route-table sanity, and the EBL physical delay envelope. It mirrors
// internal/fault's enabling discipline: a nil *Registry is the disabled
// state, every method is nil-safe, and a disabled checker costs exactly one
// nil comparison at each layer seam — hot paths never branch on anything
// else. Violations are recorded as structured errors with simulated-time
// context instead of panicking, so a broken invariant degrades a run into
// a diagnosable report rather than crashing a sweep.
package check

import (
	"fmt"

	"vanetsim/internal/sim"
)

// maxStored bounds how many violations a registry keeps in full; the total
// count keeps incrementing past it, so a systematically broken invariant
// cannot exhaust memory while still reporting its blast radius.
const maxStored = 64

// Violation is one invariant breach, stamped with the simulated time at
// which the checker observed it.
type Violation struct {
	At    sim.Time // simulated time of the observation
	Layer string   // layer seam, e.g. "phy", "ifq", "tcp", "sched", "aodv", "ebl"
	Name  string   // invariant slug, e.g. "arrival_conservation"
	Msg   string   // human-readable detail
	// UID is the offending packet's UID when the invariant concerns one
	// packet (0 otherwise), and Trail is that packet's recent span history
	// captured from the flight recorder at the moment the violation fired
	// (nil when span tracing is off or the violation is packet-less).
	UID   uint64
	Trail []string
}

// Error renders the violation as a structured error string.
func (v Violation) Error() string {
	return fmt.Sprintf("check: t=%.9fs %s/%s: %s", float64(v.At), v.Layer, v.Name, v.Msg)
}

// Registry accumulates invariant violations for one run. The nil registry
// is the disabled checker: every method on it is a no-op, and layer seams
// pay a single nil check, exactly like a nil *obs.Registry.
type Registry struct {
	violations []Violation
	total      int
	// trail, when set, resolves a packet UID to its recent span history
	// (the flight recorder's view) at the moment a violation is stored.
	trail func(uid uint64) []string
}

// New returns an armed registry.
func New() *Registry { return &Registry{} }

// Enabled reports whether checking is armed (nil-safe).
func (r *Registry) Enabled() bool { return r != nil }

// SetTrail installs a resolver mapping a packet UID to its recent span
// events, used to attach a flight-recorder trail to packet-scoped
// violations. A nil resolver (or a nil registry) leaves trails off; the
// resolver runs only when a violation is actually stored, so a clean run
// never pays for it.
func (r *Registry) SetTrail(fn func(uid uint64) []string) {
	if r == nil {
		return
	}
	r.trail = fn
}

// Violationf records a violation at simulated time at (nil-safe). Only the
// first maxStored violations are kept in full; all are counted.
func (r *Registry) Violationf(at sim.Time, layer, name, format string, args ...any) {
	if r == nil {
		return
	}
	r.total++
	if len(r.violations) < maxStored {
		r.violations = append(r.violations, Violation{
			At: at, Layer: layer, Name: name, Msg: fmt.Sprintf(format, args...),
		})
	}
}

// ViolationUIDf is Violationf for packet-scoped invariants: the violation
// carries the offending packet's UID and, when a trail resolver is
// installed, the packet's flight-recorder history.
func (r *Registry) ViolationUIDf(at sim.Time, layer, name string, uid uint64, format string, args ...any) {
	if r == nil {
		return
	}
	r.total++
	if len(r.violations) < maxStored {
		v := Violation{
			At: at, Layer: layer, Name: name, UID: uid,
			Msg: fmt.Sprintf(format, args...),
		}
		if r.trail != nil {
			v.Trail = r.trail(uid)
		}
		r.violations = append(r.violations, v)
	}
}

// Violations returns the recorded violations (nil when disabled or clean).
func (r *Registry) Violations() []Violation {
	if r == nil {
		return nil
	}
	return r.violations
}

// Total returns how many violations were observed, including any beyond
// the storage cap.
func (r *Registry) Total() int {
	if r == nil {
		return 0
	}
	return r.total
}

// Err returns nil when no invariant was violated, and otherwise an error
// summarising the count and the first violation.
func (r *Registry) Err() error {
	if r == nil || r.total == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s", r.total, r.violations[0].Error())
}
