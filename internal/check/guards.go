package check

import (
	"math"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Monotonic returns a scheduler step hook asserting event-time
// monotonicity: no event may fire before the clock it leaves behind, and
// no event time may be NaN. Install with sim.Scheduler.SetStepHook.
func Monotonic(r *Registry) func(from, to sim.Time) {
	return func(from, to sim.Time) {
		if to < from || math.IsNaN(float64(to)) {
			r.Violationf(from, "sched", "time_monotone",
				"event fires at %v, before the current clock %v", to, from)
		}
	}
}

// SlotGuard asserts TDMA slot exclusivity: at most one radio transmits in
// any one slot. The simulation is single-threaded and time-ordered, so two
// transmissions in one slot are necessarily consecutive observations, and
// tracking only the most recent slot suffices. A nil guard is the disabled
// state; Transmitting on it is a single nil check.
type SlotGuard struct {
	reg     *Registry
	slotDur sim.Time

	armed bool
	slot  int64
	owner packet.NodeID
}

// NewSlotGuard creates a guard for a schedule with the given slot length.
func NewSlotGuard(reg *Registry, slotDur sim.Time) *SlotGuard {
	if slotDur <= 0 {
		panic("check: non-positive slot duration")
	}
	return &SlotGuard{reg: reg, slotDur: slotDur}
}

// slotEpsilon (in slot units) absorbs float64 representation error when
// binning transmit times: a slot start computed as offset+n·frame can
// divide back to fractionally under its integer slot number (11·slotDur /
// slotDur = 10.999…), which would misfile a legal boundary transmission
// into the previous slot. One millionth of a slot is ~12 ns at the paper's
// slot lengths — far below any real slot-sharing offense — while float64
// error at simulated timescales stays under a billionth of a slot.
const slotEpsilon = 1e-6

// Transmitting records that id starts transmitting packet uid at now and
// flags a violation when another node already transmitted in the same slot.
func (g *SlotGuard) Transmitting(now sim.Time, id packet.NodeID, uid uint64) {
	if g == nil {
		return
	}
	slot := int64(float64(now/g.slotDur) + slotEpsilon)
	if g.armed && slot == g.slot && id != g.owner {
		g.reg.ViolationUIDf(now, "mac/tdma", "slot_exclusive", uid,
			"node %v transmits in slot %d already used by node %v", id, slot, g.owner)
	}
	g.armed, g.slot, g.owner = true, slot, id
}

// routeGuardWindow bounds the per-packet hop-budget history the
// conservation monitor keeps (FIFO eviction), so long runs stay O(1) in
// memory.
const routeGuardWindow = 1024

// RouteGuard asserts AODV route-table sanity at the moment a route is
// used, and per-packet hop-budget conservation along forwarding paths. It
// is shared by every agent in a world so a packet's hop history follows it
// across nodes. A nil guard is the disabled state.
type RouteGuard struct {
	reg *Registry

	budget map[uint64]int // packet UID -> TTL + NumForwards at first forward
	ring   []uint64       // FIFO of UIDs for eviction
	n      int            // entries in ring
	next   int            // eviction cursor
}

// NewRouteGuard creates a route guard reporting into reg.
func NewRouteGuard(reg *Registry) *RouteGuard {
	return &RouteGuard{reg: reg, budget: make(map[uint64]int, routeGuardWindow), ring: make([]uint64, routeGuardWindow)}
}

// UseRoute validates a route at the instant AODV stamps it on a packet: it
// must be marked valid, unexpired, with a resolved next hop and a sane hop
// count. The table's valid() lookup filters expired entries by
// construction; this check guards that property against regressions at the
// exact seam where a stale route would leak traffic.
func (g *RouteGuard) UseRoute(now sim.Time, dst packet.NodeID, valid bool, expiry sim.Time, nextHop packet.NodeID, hops int) {
	if g == nil {
		return
	}
	switch {
	case !valid:
		g.reg.Violationf(now, "aodv", "route_sanity", "invalidated route to %v used", dst)
	case expiry < now:
		g.reg.Violationf(now, "aodv", "route_sanity",
			"expired route to %v used (expiry %v < now %v)", dst, expiry, now)
	case nextHop == packet.None:
		g.reg.Violationf(now, "aodv", "route_sanity", "route to %v has no next hop", dst)
	case hops < 1:
		g.reg.Violationf(now, "aodv", "route_sanity", "route to %v has hop count %d", dst, hops)
	}
}

// Forward records one forwarding of packet uid with its post-decrement TTL
// and post-increment forward count, and flags a violation if the packet's
// hop budget is not conserved. Every network-layer hop moves exactly one
// unit from TTL to NumForwards and the PHY's per-receiver clones copy both
// fields, so ttl+numForwards is a per-packet constant along every path —
// including MAC retries and AODV salvage, which legally re-send an earlier
// (higher-TTL, lower-count) copy of the same datagram on a fresh route. A
// drifting sum means a layer corrupted the hop accounting in a way no
// legal forwarding, retry, or salvage can produce.
func (g *RouteGuard) Forward(now sim.Time, uid uint64, ttl, numForwards int) {
	if g == nil {
		return
	}
	sum := ttl + numForwards
	if prev, ok := g.budget[uid]; ok {
		if sum != prev {
			g.reg.ViolationUIDf(now, "aodv", "hop_budget", uid,
				"packet uid %d forwarded with TTL %d + %d hops = budget %d, first observed with budget %d",
				uid, ttl, numForwards, sum, prev)
		}
		return
	}
	if g.n == len(g.ring) {
		delete(g.budget, g.ring[g.next])
	} else {
		g.n++
	}
	g.ring[g.next] = uid
	g.next = (g.next + 1) % len(g.ring)
	g.budget[uid] = sum
}

// envelopeSlack absorbs float64 rounding in the serialization bound; it is
// nine orders of magnitude below the microsecond PHY timescale.
const envelopeSlack = sim.Time(1e-12)

// Envelope asserts the EBL physical delay envelope: a delivered packet's
// one-way delay can never undercut its own serialization time at the
// scenario's radio bit rate (the propagation component's lower bound is
// zero). A nil envelope is the disabled state.
type Envelope struct {
	reg     *Registry
	rateBps float64
}

// NewEnvelope creates an envelope checker for the given radio bit rate.
func NewEnvelope(reg *Registry, rateBps float64) *Envelope {
	if rateBps <= 0 {
		panic("check: non-positive envelope bit rate")
	}
	return &Envelope{reg: reg, rateBps: rateBps}
}

// Delivery checks one delivered packet: payloadBytes were handed to the
// application at time at, having been stamped sentAt at the sender. uid is
// the delivered packet's UID, for the violation's flight-recorder trail.
func (e *Envelope) Delivery(at, sentAt sim.Time, payloadBytes int, uid uint64) {
	if e == nil {
		return
	}
	delay := at - sentAt
	if delay < 0 {
		e.reg.ViolationUIDf(at, "ebl", "delay_envelope", uid,
			"packet delivered %v before it was sent", -delay)
		return
	}
	bound := sim.Time(float64(payloadBytes) * 8 / e.rateBps)
	if delay < bound-envelopeSlack {
		e.reg.ViolationUIDf(at, "ebl", "delay_envelope", uid,
			"one-way delay %v below the %v serialization bound for %d bytes at %g b/s",
			delay, bound, payloadBytes, e.rateBps)
	}
}

// BadSample reports a measurement sample a metrics collector rejected —
// a rejected sample means a layer produced an impossible observation.
func (e *Envelope) BadSample(at sim.Time, err error) {
	if e == nil || err == nil {
		return
	}
	e.reg.Violationf(at, "ebl", "metric_sample", "%v", err)
}
