package check

import "vanetsim/internal/sim"

// ShardCounts is one shard's staged-offer pipeline activity, as reported
// by the PHY's per-shard counters: candidates whose compute stage the
// shard ran, how many of those cleared carrier sense, and how many staged
// broadcasts the shard participated in.
type ShardCounts struct {
	Staged  uint64
	Heard   uint64
	Batches uint64
}

// AuditShards audits the staged-offer pipeline's cross-shard conservation
// at end of run: every shard saw every staged broadcast (the dispatch is a
// barrier, so Batches must agree across shards), no shard heard more
// candidates than it staged, and the shards' heard totals cannot exceed
// the channel's offered-arrival count (serial offers make up the
// difference). A nil registry or an empty shard set is a no-op — the audit
// is an observation of counters the pipeline maintains anyway.
func AuditShards(r *Registry, at sim.Time, shards []ShardCounts, offered int) {
	if r == nil || len(shards) == 0 {
		return
	}
	var heard uint64
	for i, s := range shards {
		if s.Heard > s.Staged {
			r.Violationf(at, "phy", "shard_conservation",
				"shard %d heard %d candidates but staged only %d", i, s.Heard, s.Staged)
		}
		if s.Batches != shards[0].Batches {
			r.Violationf(at, "phy", "shard_conservation",
				"shard %d ran %d batches but shard 0 ran %d — a staged broadcast skipped a shard",
				i, s.Batches, shards[0].Batches)
		}
		heard += s.Heard
	}
	if offered >= 0 && heard > uint64(offered) {
		r.Violationf(at, "phy", "shard_conservation",
			"shards heard %d candidates in total but the channel offered only %d arrivals",
			heard, offered)
	}
}
