//go:build checkall

package check

// ForceAll arms the invariant checker unconditionally in every scenario
// run; this build has the checkall tag set.
const ForceAll = true
