package check

import (
	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

// CountingQueue is a transparent interface-queue decorator that tallies
// accepted, rejected and dequeued packets so end-of-run conservation can
// be audited: every packet a queue accepts must either be dequeued,
// evicted (the drops the inner queue records beyond outright rejections),
// or still be queued. It changes no queue behaviour, so runs are
// byte-identical with or without it.
type CountingQueue struct {
	inner    queue.Queue
	accepted int
	rejected int
	dequeued int
}

var _ queue.Queue = (*CountingQueue)(nil)

// Count wraps q in a conservation-counting decorator.
func Count(q queue.Queue) *CountingQueue { return &CountingQueue{inner: q} }

// Enqueue implements queue.Queue.
func (q *CountingQueue) Enqueue(p *packet.Packet) bool {
	ok := q.inner.Enqueue(p)
	if ok {
		q.accepted++
	} else {
		q.rejected++
	}
	return ok
}

// Dequeue implements queue.Queue.
func (q *CountingQueue) Dequeue() *packet.Packet {
	p := q.inner.Dequeue()
	if p != nil {
		q.dequeued++
	}
	return p
}

// Peek implements queue.Queue.
func (q *CountingQueue) Peek() *packet.Packet { return q.inner.Peek() }

// Len implements queue.Queue.
func (q *CountingQueue) Len() int { return q.inner.Len() }

// Cap implements queue.Queue.
func (q *CountingQueue) Cap() int { return q.inner.Cap() }

// Drops implements queue.Queue.
func (q *CountingQueue) Drops() int { return q.inner.Drops() }

// Audit checks the conservation identity at the end of a run:
//
//	accepted == dequeued + evicted + still queued
//
// where evicted is the inner queue's total drops minus the rejections this
// decorator observed (a PriQueue eviction drops an already-accepted data
// packet to admit a control packet).
func (q *CountingQueue) Audit(reg *Registry, at sim.Time, label string) {
	evicted := q.inner.Drops() - q.rejected
	if evicted < 0 {
		reg.Violationf(at, "ifq", "drop_accounting",
			"%s: inner queue reports %d drops but %d rejections were observed",
			label, q.inner.Drops(), q.rejected)
		return
	}
	if q.accepted != q.dequeued+evicted+q.inner.Len() {
		reg.Violationf(at, "ifq", "conservation",
			"%s: accepted %d != dequeued %d + evicted %d + queued %d",
			label, q.accepted, q.dequeued, evicted, q.inner.Len())
	}
}
