//go:build !checkall

package check

// ForceAll arms the invariant checker unconditionally in every scenario
// run when the checkall build tag is set (CI's `go test -tags=checkall`
// and `make fuzz-nightly`). In normal builds it is false and the checker
// is purely opt-in.
const ForceAll = false
