package queue

import (
	"testing"
	"testing/quick"

	"vanetsim/internal/packet"
)

func mkData(f *packet.Factory) *packet.Packet { return f.New(packet.TypeTCP, 1000, 0) }
func mkCtrl(f *packet.Factory) *packet.Packet { return f.New(packet.TypeAODV, 48, 0) }

func TestDropTailFIFO(t *testing.T) {
	var f packet.Factory
	q := NewDropTail(10, nil)
	var uids []uint64
	for i := 0; i < 5; i++ {
		p := mkData(&f)
		uids = append(uids, p.UID)
		if !q.Enqueue(p) {
			t.Fatal("enqueue under capacity failed")
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue()
		if p.UID != uids[i] {
			t.Fatalf("FIFO violated at %d: got %d want %d", i, p.UID, uids[i])
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("Dequeue from empty should be nil")
	}
}

func TestDropTailDropsArrivingWhenFull(t *testing.T) {
	var f packet.Factory
	var dropped []*packet.Packet
	q := NewDropTail(2, func(p *packet.Packet, r DropReason) {
		if r != DropFull {
			t.Fatalf("reason = %v, want %v", r, DropFull)
		}
		dropped = append(dropped, p)
	})
	a, b, c := mkData(&f), mkData(&f), mkData(&f)
	q.Enqueue(a)
	q.Enqueue(b)
	if q.Enqueue(c) {
		t.Fatal("enqueue at capacity should fail")
	}
	if q.Drops() != 1 || len(dropped) != 1 || dropped[0] != c {
		t.Fatalf("the arriving packet must be the one dropped; drops=%d", q.Drops())
	}
	// The queued packets are intact.
	if q.Dequeue() != a || q.Dequeue() != b {
		t.Fatal("drop disturbed queued packets")
	}
}

func TestDropTailPeek(t *testing.T) {
	var f packet.Factory
	q := NewDropTail(4, nil)
	if q.Peek() != nil {
		t.Fatal("Peek on empty should be nil")
	}
	p := mkData(&f)
	q.Enqueue(p)
	if q.Peek() != p {
		t.Fatal("Peek should return head")
	}
	if q.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

func TestDropTailCapAndPanic(t *testing.T) {
	q := NewDropTail(7, nil)
	if q.Cap() != 7 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	NewDropTail(0, nil)
}

func TestPriQueueControlFirst(t *testing.T) {
	var f packet.Factory
	q := NewPriQueue(10, nil)
	d1, c1, d2, c2 := mkData(&f), mkCtrl(&f), mkData(&f), mkCtrl(&f)
	for _, p := range []*packet.Packet{d1, c1, d2, c2} {
		q.Enqueue(p)
	}
	want := []*packet.Packet{c1, c2, d1, d2}
	for i, w := range want {
		if got := q.Dequeue(); got != w {
			t.Fatalf("dequeue %d: got uid %d, want uid %d", i, got.UID, w.UID)
		}
	}
}

func TestPriQueueControlEvictsData(t *testing.T) {
	var f packet.Factory
	var evicted []*packet.Packet
	q := NewPriQueue(2, func(p *packet.Packet, r DropReason) {
		if r == DropEvicted {
			evicted = append(evicted, p)
		}
	})
	d1, d2 := mkData(&f), mkData(&f)
	q.Enqueue(d1)
	q.Enqueue(d2)
	c := mkCtrl(&f)
	if !q.Enqueue(c) {
		t.Fatal("control packet should displace data when full")
	}
	if len(evicted) != 1 || evicted[0] != d2 {
		t.Fatal("most recently queued data packet should be evicted")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Peek() != c {
		t.Fatal("control packet should be at head")
	}
}

func TestPriQueueDataDroppedWhenFull(t *testing.T) {
	var f packet.Factory
	q := NewPriQueue(1, nil)
	q.Enqueue(mkCtrl(&f))
	if q.Enqueue(mkData(&f)) {
		t.Fatal("data packet must be dropped when queue is full")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
}

func TestPriQueueAllControlFullDropsControl(t *testing.T) {
	var f packet.Factory
	q := NewPriQueue(2, nil)
	q.Enqueue(mkCtrl(&f))
	q.Enqueue(mkCtrl(&f))
	if q.Enqueue(mkCtrl(&f)) {
		t.Fatal("control packet with no data to evict must be dropped")
	}
}

func TestPriQueueEmpty(t *testing.T) {
	q := NewPriQueue(4, nil)
	if q.Dequeue() != nil || q.Peek() != nil || q.Len() != 0 {
		t.Fatal("empty queue invariants violated")
	}
}

// Property: DropTail never exceeds capacity, never reorders, and
// enqueued+dropped accounts for every offer.
func TestDropTailProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%20) + 1
		var pf packet.Factory
		q := NewDropTail(capacity, nil)
		var model []uint64 // expected queue contents
		accepted, dropped := 0, 0
		for _, isEnq := range ops {
			if isEnq {
				p := mkData(&pf)
				if q.Enqueue(p) {
					accepted++
					model = append(model, p.UID)
				} else {
					dropped++
				}
			} else {
				got := q.Dequeue()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got == nil || got.UID != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() > capacity || q.Len() != len(model) {
				return false
			}
		}
		return q.Drops() == dropped && accepted+dropped == int(pf.Allocated())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PriQueue never exceeds capacity and never delivers a data
// packet while control packets are queued.
func TestPriQueueProperty(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		var pf packet.Factory
		q := NewPriQueue(capacity, nil)
		ctrlQueued := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Enqueue(mkData(&pf))
			case 1:
				if q.Enqueue(mkCtrl(&pf)) {
					ctrlQueued++
				}
			case 2:
				p := q.Dequeue()
				if p != nil && p.Type.IsControl() {
					ctrlQueued--
				}
				if p != nil && !p.Type.IsControl() && ctrlQueued > 0 {
					return false // data jumped ahead of control
				}
			}
			if q.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDropTail(b *testing.B) {
	var f packet.Factory
	q := NewDropTail(64, nil)
	p := mkData(&f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p)
		q.Dequeue()
	}
}

func BenchmarkPriQueueMixed(b *testing.B) {
	var f packet.Factory
	q := NewPriQueue(64, nil)
	d, c := mkData(&f), mkCtrl(&f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(d)
		q.Enqueue(c)
		q.Dequeue()
		q.Dequeue()
	}
}
