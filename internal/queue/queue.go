// Package queue implements the interface queues that sit between the
// network layer and the MAC, modelled on ns-2's Queue/DropTail and
// Queue/DropTail/PriQueue — the paper's fixed "ifq" parameter.
//
// The drop-tail queue is load-bearing for the paper's results: the
// transient/steady-state shape of the one-way delay curves (Figs. 5–14) is
// the queue filling to capacity and then holding every later packet for
// queue-length/service-rate seconds.
package queue

import "vanetsim/internal/packet"

// DropReason explains why a queue rejected a packet, for traces.
type DropReason string

// Drop reasons.
const (
	DropFull    DropReason = "IFQ" // arriving packet found the queue full
	DropEvicted DropReason = "IFQ-EVICT"
	DropEarly   DropReason = "IFQ-RED" // probabilistic early drop
)

// DropFn observes dropped packets (for tracing and statistics). A nil DropFn
// is valid and means "discard silently".
type DropFn func(p *packet.Packet, reason DropReason)

// Queue is a bounded interface queue. Implementations are not safe for
// concurrent use; the simulator is single-threaded.
type Queue interface {
	// Enqueue offers a packet. It returns false if the packet was dropped
	// (the queue was full and the packet did not displace anything).
	Enqueue(p *packet.Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty.
	Dequeue() *packet.Packet
	// Peek returns the next packet without removing it, or nil.
	Peek() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Cap returns the capacity in packets.
	Cap() int
	// Drops returns how many packets this queue has dropped so far.
	Drops() int
}

// DropTail is a FIFO queue that drops the arriving packet when full,
// matching ns-2's Queue/DropTail.
type DropTail struct {
	items  []*packet.Packet
	cap    int
	drops  int
	onDrop DropFn
}

var _ Queue = (*DropTail)(nil)

// NewDropTail returns a drop-tail queue holding at most capacity packets.
// ns-2's default ifq length, used by the paper, is 50.
func NewDropTail(capacity int, onDrop DropFn) *DropTail {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	return &DropTail{items: make([]*packet.Packet, 0, capacity), cap: capacity, onDrop: onDrop}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *packet.Packet) bool {
	if len(q.items) >= q.cap {
		q.drop(p, DropFull)
		return false
	}
	q.items = append(q.items, p)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	if len(q.items) == 0 {
		// Reset the backing array so the slice doesn't crawl through memory.
		q.items = make([]*packet.Packet, 0, q.cap)
	}
	return p
}

// Peek implements Queue.
func (q *DropTail) Peek() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.items) }

// Cap implements Queue.
func (q *DropTail) Cap() int { return q.cap }

// Drops implements Queue.
func (q *DropTail) Drops() int { return q.drops }

func (q *DropTail) drop(p *packet.Packet, r DropReason) {
	q.drops++
	if q.onDrop != nil {
		q.onDrop(p, r)
	}
}

// PriQueue is a drop-tail queue that services routing-protocol control
// packets ahead of data, matching ns-2's Queue/DropTail/PriQueue (the
// "-ifqtype" the paper's Tcl snippet configures). When a control packet
// arrives at a full queue it evicts the most recently queued data packet;
// a data packet arriving at a full queue is dropped.
type PriQueue struct {
	control []*packet.Packet
	data    []*packet.Packet
	cap     int
	drops   int
	onDrop  DropFn
}

var _ Queue = (*PriQueue)(nil)

// NewPriQueue returns a priority interface queue with the given total
// capacity.
func NewPriQueue(capacity int, onDrop DropFn) *PriQueue {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	return &PriQueue{cap: capacity, onDrop: onDrop}
}

// Enqueue implements Queue.
func (q *PriQueue) Enqueue(p *packet.Packet) bool {
	if p.Type.IsControl() {
		if q.Len() >= q.cap {
			if len(q.data) == 0 {
				q.drop(p, DropFull)
				return false
			}
			last := q.data[len(q.data)-1]
			q.data[len(q.data)-1] = nil
			q.data = q.data[:len(q.data)-1]
			q.drop(last, DropEvicted)
		}
		q.control = append(q.control, p)
		return true
	}
	if q.Len() >= q.cap {
		q.drop(p, DropFull)
		return false
	}
	q.data = append(q.data, p)
	return true
}

// Dequeue implements Queue.
func (q *PriQueue) Dequeue() *packet.Packet {
	if len(q.control) > 0 {
		p := q.control[0]
		q.control[0] = nil
		q.control = q.control[1:]
		return p
	}
	if len(q.data) > 0 {
		p := q.data[0]
		q.data[0] = nil
		q.data = q.data[1:]
		return p
	}
	return nil
}

// Peek implements Queue.
func (q *PriQueue) Peek() *packet.Packet {
	if len(q.control) > 0 {
		return q.control[0]
	}
	if len(q.data) > 0 {
		return q.data[0]
	}
	return nil
}

// Len implements Queue.
func (q *PriQueue) Len() int { return len(q.control) + len(q.data) }

// Cap implements Queue.
func (q *PriQueue) Cap() int { return q.cap }

// Drops implements Queue.
func (q *PriQueue) Drops() int { return q.drops }

func (q *PriQueue) drop(p *packet.Packet, r DropReason) {
	q.drops++
	if q.onDrop != nil {
		q.onDrop(p, r)
	}
}
