package queue

import (
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

func newRED(t *testing.T) *RED {
	t.Helper()
	return NewRED(50, DefaultREDConfig(), sim.NewRNG(42), nil)
}

func TestREDNoDropsBelowMinThresh(t *testing.T) {
	var f packet.Factory
	q := newRED(t)
	// Keep instantaneous occupancy at ~2: enqueue/dequeue alternating.
	for i := 0; i < 2000; i++ {
		if !q.Enqueue(mkData(&f)) {
			t.Fatalf("drop at occupancy %d, avg %v", q.Len(), q.AvgQueue())
		}
		if q.Len() > 2 {
			q.Dequeue()
		}
	}
	if q.Drops() != 0 {
		t.Fatalf("drops = %d below min threshold", q.Drops())
	}
}

func TestREDDropsAllAboveMaxThresh(t *testing.T) {
	var f packet.Factory
	q := newRED(t)
	// Fill to 20 (> maxthresh 15) and hold it there long enough for the
	// slow EWMA (w=0.002) to catch up.
	for q.Len() < 20 {
		q.Enqueue(mkData(&f))
	}
	for i := 0; i < 3000; i++ {
		q.Enqueue(mkData(&f))
		if q.Len() > 20 {
			q.Dequeue()
		}
	}
	if q.AvgQueue() < q.cfg.MaxThresh {
		t.Fatalf("avg = %v never exceeded maxthresh", q.AvgQueue())
	}
	before := q.Drops()
	for i := 0; i < 50; i++ {
		if q.Enqueue(mkData(&f)) {
			t.Fatalf("enqueue accepted with avg %v above maxthresh", q.AvgQueue())
		}
	}
	if q.Drops() != before+50 {
		t.Fatal("drops not counted")
	}
}

func TestREDProbabilisticRegion(t *testing.T) {
	var f packet.Factory
	q := newRED(t)
	// Hold occupancy at 10 (between thresholds) until avg converges.
	for q.Len() < 10 {
		q.Enqueue(mkData(&f))
	}
	for i := 0; i < 5000; i++ {
		if q.Enqueue(mkData(&f)) && q.Len() > 10 {
			q.Dequeue()
		}
	}
	accepted, dropped := 0, 0
	for i := 0; i < 2000; i++ {
		if q.Enqueue(mkData(&f)) {
			accepted++
			q.Dequeue()
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no early drops in the probabilistic region")
	}
	if accepted == 0 {
		t.Fatal("everything dropped in the probabilistic region")
	}
	rate := float64(dropped) / float64(dropped+accepted)
	// avg ~10 -> pb ~ maxP/2 = 0.05; count correction raises it somewhat.
	if rate < 0.01 || rate > 0.30 {
		t.Fatalf("early-drop rate = %v, want a moderate fraction", rate)
	}
}

func TestREDControlPacketsBypassEarlyDrop(t *testing.T) {
	var f packet.Factory
	q := newRED(t)
	for q.Len() < 20 {
		q.Enqueue(mkData(&f))
	}
	for i := 0; i < 3000; i++ {
		q.Enqueue(mkData(&f))
		if q.Len() > 20 {
			q.Dequeue()
		}
	}
	// avg is above maxthresh now; a routing packet must still get in.
	if !q.Enqueue(mkCtrl(&f)) {
		t.Fatal("control packet early-dropped")
	}
}

func TestREDHardCapacity(t *testing.T) {
	var f packet.Factory
	q := NewRED(5, DefaultREDConfig(), sim.NewRNG(1), nil)
	for i := 0; i < 5; i++ {
		q.Enqueue(mkCtrl(&f)) // control bypasses early drop
	}
	if q.Enqueue(mkCtrl(&f)) {
		t.Fatal("hard capacity not enforced")
	}
	if q.Len() != 5 || q.Cap() != 5 {
		t.Fatalf("len=%d cap=%d", q.Len(), q.Cap())
	}
}

func TestREDFIFOAndPeek(t *testing.T) {
	var f packet.Factory
	q := newRED(t)
	a, b := mkData(&f), mkData(&f)
	q.Enqueue(a)
	q.Enqueue(b)
	if q.Peek() != a || q.Dequeue() != a || q.Dequeue() != b || q.Dequeue() != nil {
		t.Fatal("FIFO order violated")
	}
}

func TestREDValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	cases := map[string]func(){
		"zero cap":   func() { NewRED(0, DefaultREDConfig(), rng, nil) },
		"nil rng":    func() { NewRED(10, DefaultREDConfig(), nil, nil) },
		"bad thresh": func() { NewRED(10, REDConfig{MinThresh: 5, MaxThresh: 5, Weight: 0.002, MaxP: 0.1}, rng, nil) },
		"bad weight": func() { NewRED(10, REDConfig{MinThresh: 5, MaxThresh: 15, Weight: 0, MaxP: 0.1}, rng, nil) },
		"bad maxp":   func() { NewRED(10, REDConfig{MinThresh: 5, MaxThresh: 15, Weight: 0.002, MaxP: 0}, rng, nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
