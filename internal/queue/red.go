package queue

import (
	"math"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// REDConfig holds Random Early Detection parameters (Floyd & Jacobson
// 1993, with ns-2's defaults: minthresh 5, maxthresh 15, q_weight 0.002,
// linterm 10 → maxP 0.1).
type REDConfig struct {
	// MinThresh and MaxThresh bound the early-drop region, in packets of
	// average queue length.
	MinThresh, MaxThresh float64
	// Weight is the EWMA gain for the average queue estimate.
	Weight float64
	// MaxP is the drop probability as the average reaches MaxThresh.
	MaxP float64
}

// DefaultREDConfig returns ns-2's RED defaults.
func DefaultREDConfig() REDConfig {
	return REDConfig{MinThresh: 5, MaxThresh: 15, Weight: 0.002, MaxP: 0.1}
}

// RED is a random-early-detection queue: it drops arriving packets
// probabilistically once the *average* occupancy exceeds a threshold,
// keeping the standing queue — and with it the paper's steady-state
// queueing delay — short. The paper fixed drop-tail; RED is the ablation
// that shows how much of the measured delay is that choice.
//
// Routing-protocol packets bypass early drop (they are never the cause of
// congestion here and losing them stalls everything), but still respect
// the hard capacity.
type RED struct {
	cfg    REDConfig
	items  []*packet.Packet
	cap    int
	rng    *sim.RNG
	onDrop DropFn

	avg   float64
	count int // packets since the last early drop
	drops int
}

var _ Queue = (*RED)(nil)

// NewRED returns a RED queue with hard capacity and the given parameters.
func NewRED(capacity int, cfg REDConfig, rng *sim.RNG, onDrop DropFn) *RED {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	if cfg.MinThresh <= 0 || cfg.MaxThresh <= cfg.MinThresh || cfg.Weight <= 0 || cfg.Weight > 1 || cfg.MaxP <= 0 || cfg.MaxP > 1 {
		panic("queue: invalid RED parameters")
	}
	if rng == nil {
		panic("queue: RED needs a random source")
	}
	return &RED{cfg: cfg, cap: capacity, rng: rng, count: -1}
}

// AvgQueue returns the current EWMA queue-length estimate.
func (q *RED) AvgQueue() float64 { return q.avg }

// Enqueue implements Queue.
func (q *RED) Enqueue(p *packet.Packet) bool {
	q.avg = (1-q.cfg.Weight)*q.avg + q.cfg.Weight*float64(len(q.items))
	if len(q.items) >= q.cap {
		q.drop(p, DropFull)
		return false
	}
	if !p.Type.IsControl() && q.earlyDrop() {
		q.drop(p, DropEarly)
		return false
	}
	q.items = append(q.items, p)
	if q.count >= 0 {
		q.count++
	}
	return true
}

// earlyDrop applies the RED drop decision against the average occupancy.
func (q *RED) earlyDrop() bool {
	switch {
	case q.avg < q.cfg.MinThresh:
		q.count = -1
		return false
	case q.avg >= q.cfg.MaxThresh:
		q.count = 0
		return true
	default:
		if q.count < 0 {
			q.count = 0
		}
		pb := q.cfg.MaxP * (q.avg - q.cfg.MinThresh) / (q.cfg.MaxThresh - q.cfg.MinThresh)
		// Spread drops uniformly: pa = pb / (1 - count·pb).
		pa := pb / math.Max(1-float64(q.count)*pb, 1e-9)
		if q.rng.Float64() < pa {
			q.count = 0
			return true
		}
		return false
	}
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return p
}

// Peek implements Queue.
func (q *RED) Peek() *packet.Packet {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Len implements Queue.
func (q *RED) Len() int { return len(q.items) }

// Cap implements Queue.
func (q *RED) Cap() int { return q.cap }

// Drops implements Queue.
func (q *RED) Drops() int { return q.drops }

func (q *RED) drop(p *packet.Packet, r DropReason) {
	q.drops++
	if q.onDrop != nil {
		q.onDrop(p, r)
	}
}
