package queue

import (
	"vanetsim/internal/obs"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Instrumented is a transparent telemetry decorator around any Queue: it
// tracks occupancy (with its high-water mark), an enqueue counter, and a
// time-binned occupancy series, then delegates every operation unchanged.
// Wrap only when telemetry is enabled — an unwrapped queue pays nothing.
type Instrumented struct {
	Queue
	sched     *sim.Scheduler
	occupancy *obs.Gauge
	enqueued  *obs.Counter
	occSeries *obs.Series
}

// Instrument wraps q with telemetry instruments (any of which may be nil).
func Instrument(q Queue, sched *sim.Scheduler, occupancy *obs.Gauge, enqueued *obs.Counter, occSeries *obs.Series) *Instrumented {
	return &Instrumented{Queue: q, sched: sched, occupancy: occupancy, enqueued: enqueued, occSeries: occSeries}
}

// Enqueue implements Queue.
func (iq *Instrumented) Enqueue(p *packet.Packet) bool {
	ok := iq.Queue.Enqueue(p)
	if ok {
		iq.enqueued.Inc()
	}
	iq.observe()
	return ok
}

// Dequeue implements Queue.
func (iq *Instrumented) Dequeue() *packet.Packet {
	p := iq.Queue.Dequeue()
	if p != nil {
		iq.observe()
	}
	return p
}

func (iq *Instrumented) observe() {
	n := float64(iq.Queue.Len())
	iq.occupancy.Set(n)
	iq.occSeries.Observe(iq.sched.Now(), n)
}
