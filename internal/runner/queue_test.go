package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapErrorMidFlight covers the cancellation path the service's
// shutdown relies on: a job fails while others are still executing.
// Map must return the failing error, dispatch no new jobs after the
// reducer observes it, and — critically — not return until every job
// that already started has finished (no goroutine left running a
// simulation against freed state).
func TestMapErrorMidFlight(t *testing.T) {
	boom := errors.New("job 6 failed")
	var started, finished atomic.Int64
	out, err := Map(Pool{Workers: 4}, 512, func(i int) (int, error) {
		started.Add(1)
		defer finished.Add(1)
		time.Sleep(time.Millisecond)
		if i == 6 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("Map = %v, %v; want nil slice and job 6's error", out, err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("Map returned with %d jobs started but only %d finished", s, f)
	}
	// Dispatch must stop near the failure: with 1ms jobs the reducer
	// observes job 6's error within a few batches, nowhere near the 512
	// submitted.
	if s := started.Load(); s > 100 {
		t.Fatalf("%d jobs dispatched after job 6 failed", s)
	}
}

// TestEachConsumerAbandonsResults models a consumer that walks away
// mid-stream (a client disconnecting from the daemon's progress
// stream): the collector bails with an error while slow jobs are still
// queued. Each must stop dispatching, let in-flight jobs finish, and
// return without deadlocking on the results nobody will collect.
func TestEachConsumerAbandonsResults(t *testing.T) {
	abandoned := errors.New("consumer gone")
	var started, finished atomic.Int64
	err := Each(Pool{Workers: 4}, 512,
		func(i int) (int, error) {
			started.Add(1)
			defer finished.Add(1)
			time.Sleep(time.Millisecond)
			return i, nil
		},
		func(i, v int) error {
			if i == 2 {
				return abandoned
			}
			return nil
		})
	if !errors.Is(err, abandoned) {
		t.Fatalf("err = %v, want the consumer's abandon error", err)
	}
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("Each returned with %d jobs started but only %d finished", s, f)
	}
	// Dispatch must have stopped near the abandon point: 4 workers can
	// each have grabbed at most a handful of 1ms jobs before the
	// reducer's error propagated, nowhere near the 512 submitted.
	if s := started.Load(); s > 100 {
		t.Fatalf("%d jobs dispatched after the consumer abandoned at index 2", s)
	}
}

func TestQueueRunsSubmittedJobs(t *testing.T) {
	q := NewQueue(4, 16)
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		i := i
		if err := q.Submit(func() { sum.Add(int64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if got := sum.Load(); got != 55 {
		t.Fatalf("sum after drain = %d, want 55", got)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth after drain = %d, want 0", d)
	}
}

// TestQueueShedsLoadWhenFull pins the non-blocking admission contract:
// with every worker busy and the backlog full, Submit fails fast with
// ErrQueueFull instead of stalling the HTTP handler that called it.
func TestQueueShedsLoadWhenFull(t *testing.T) {
	q := NewQueue(1, 2)
	release := make(chan struct{})
	busy := make(chan struct{})
	if err := q.Submit(func() { close(busy); <-release }); err != nil {
		t.Fatal(err)
	}
	<-busy // the single worker is now parked
	for i := 0; i < 2; i++ {
		if err := q.Submit(func() {}); err != nil {
			t.Fatalf("backlog slot %d refused: %v", i, err)
		}
	}
	if err := q.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over capacity = %v, want ErrQueueFull", err)
	}
	if d := q.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3 (1 running + 2 queued)", d)
	}
	close(release)
	q.Close()
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth after drain = %d, want 0", d)
	}
}

// TestQueueCloseDrains is the graceful-shutdown guarantee: every job
// accepted before Close runs to completion before Close returns, and
// Submit during/after Close is refused with ErrQueueClosed.
func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(2, 64)
	var ran atomic.Int64
	for i := 0; i < 40; i++ {
		if err := q.Submit(func() {
			time.Sleep(200 * time.Microsecond)
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if got := ran.Load(); got != 40 {
		t.Fatalf("Close returned with %d/40 jobs run", got)
	}
	if err := q.Submit(func() {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close = %v, want ErrQueueClosed", err)
	}
	q.Close() // idempotent
}

// TestQueueConcurrentSubmitAndClose hammers the shutdown race: many
// goroutines submitting while another closes. Every accepted job must
// run exactly once; refused submissions must be one of the two
// sentinel errors. Run under -race this also proves the locking.
func TestQueueConcurrentSubmitAndClose(t *testing.T) {
	q := NewQueue(4, 32)
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := q.Submit(func() { ran.Add(1) })
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueClosed):
				default:
					t.Errorf("unexpected Submit error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	q.Close()
	wg.Wait()
	if a, r := accepted.Load(), ran.Load(); a != r {
		t.Fatalf("accepted %d jobs but ran %d", a, r)
	}
}

func TestQueueDefaultsWorkers(t *testing.T) {
	q := NewQueue(0, -1)
	done := make(chan struct{})
	if err := q.Submit(func() { close(done) }); err != nil {
		t.Fatalf("Submit on defaulted queue: %v", err)
	}
	<-done
	q.Close()
}
