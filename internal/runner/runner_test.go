package runner

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEachOrdersCollection proves the determinism contract: whatever
// order jobs complete in, collect sees strictly increasing indices with
// the matching values.
func TestEachOrdersCollection(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 8, 64, n + 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []int
			err := Each(Pool{Workers: workers}, n,
				func(i int) (int, error) { return i * i, nil },
				func(i, v int) error {
					if v != i*i {
						t.Fatalf("collect(%d) = %d, want %d", i, v, i*i)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("collected %d results, want %d", len(got), n)
			}
			for i, idx := range got {
				if idx != i {
					t.Fatalf("collection order broken at position %d: got index %d", i, idx)
				}
			}
		})
	}
}

// TestEachMatchesSequentialBytes renders each job's result to a shared
// buffer from the collector and requires byte equality with one worker —
// the same property the eblsweep golden test asserts end to end.
func TestEachMatchesSequentialBytes(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		err := Each(Pool{Workers: workers}, 97,
			func(i int) (string, error) { return fmt.Sprintf("run %02d ok\n", i), nil },
			func(i int, line string) error {
				_, err := buf.WriteString(line)
				return err
			})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := render(1), render(16)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential:\nseq %d bytes\npar %d bytes", len(seq), len(par))
	}
}

// TestEachLowestIndexErrorWins mirrors sequential error semantics: with
// failures at indices 7 and 3, a sequential loop stops at 3 — so must
// the pool, and no index ≥ 3 may reach collect.
func TestEachLowestIndexErrorWins(t *testing.T) {
	boom3 := errors.New("job 3 failed")
	boom7 := errors.New("job 7 failed")
	var maxCollected atomic.Int64
	maxCollected.Store(-1)
	err := Each(Pool{Workers: 8}, 32,
		func(i int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		},
		func(i, v int) error {
			if int64(i) > maxCollected.Load() {
				maxCollected.Store(int64(i))
			}
			return nil
		})
	if !errors.Is(err, boom3) {
		t.Fatalf("err = %v, want job 3's error", err)
	}
	if m := maxCollected.Load(); m >= 3 {
		t.Fatalf("collected index %d after the failing index 3", m)
	}
}

// TestEachCollectErrorStops verifies a reducer error propagates and that
// no later index reaches collect, without deadlocking in-flight workers.
// (Workers that already grabbed jobs may finish them; only collection
// stops immediately.)
func TestEachCollectErrorStops(t *testing.T) {
	stop := errors.New("reducer full")
	var lastCollected atomic.Int64
	lastCollected.Store(-1)
	err := Each(Pool{Workers: 4}, 1000,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			lastCollected.Store(int64(i))
			if i == 5 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want collect error", err)
	}
	if n := lastCollected.Load(); n != 5 {
		t.Fatalf("last collected index = %d, want 5", n)
	}
}

// TestEachEmpty covers the degenerate sizes.
func TestEachEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		err := Each(Pool{}, n,
			func(i int) (int, error) { t.Fatal("job called"); return 0, nil },
			func(i, v int) error { called = true; return nil })
		if err != nil || called {
			t.Fatalf("n=%d: err=%v called=%v", n, err, called)
		}
	}
}

// TestMap checks order and the all-or-nothing error contract.
func TestMap(t *testing.T) {
	out, err := Map(Pool{Workers: 8}, 64, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
	boom := errors.New("boom")
	out, err = Map(Pool{Workers: 8}, 64, func(i int) (int, error) {
		if i == 10 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("Map error path: out=%v err=%v", out, err)
	}
}

// TestPoolRaceHammer drives many overlapping Each invocations with
// contended jobs and collectors; its real assertions come from running
// the package under -race (the CI gate does, twice).
func TestPoolRaceHammer(t *testing.T) {
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var shared int // reducer-owned: Each must serialise access
			sums := make([]int, 256)
			err := Each(Pool{Workers: 16}, len(sums),
				func(i int) (int, error) {
					s := 0
					for k := 0; k <= i; k++ {
						s += k
					}
					return s, nil
				},
				func(i, v int) error {
					shared += v
					sums[i] = v
					return nil
				})
			if err != nil {
				t.Error(err)
			}
			if shared == 0 || sums[255] != 255*256/2 {
				t.Errorf("hammer round produced wrong sums: shared=%d last=%d", shared, sums[255])
			}
		}()
	}
	wg.Wait()
}

// TestSyncWriterAtomicWrites hammers a SyncWriter from many goroutines
// and checks no line interleaves mid-write.
func TestSyncWriterAtomicWrites(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSyncWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			line := bytes.Repeat([]byte{byte('a' + g)}, 63)
			line = append(line, '\n')
			for i := 0; i < 200; i++ {
				if _, err := sw.Write(line); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, line := range bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte{'\n'}), []byte{'\n'}) {
		if len(line) != 63 || bytes.Count(line, line[:1]) != 63 {
			t.Fatalf("interleaved line %q", line)
		}
	}
	if n, err := NewSyncWriter(nil).Write([]byte("x")); n != 1 || err != nil {
		t.Fatalf("nil-sink write = %d, %v", n, err)
	}
}

// BenchmarkEachOverhead measures the pool's dispatch cost per job with
// trivial work — the floor under which parallelising a sweep cannot pay.
func BenchmarkEachOverhead(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Each(Pool{Workers: w}, 64,
					func(i int) (int, error) { return i, nil },
					func(i, v int) error { return nil })
			}
		})
	}
}
