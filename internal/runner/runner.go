// Package runner is the bounded worker-pool run engine behind every
// multi-run workload in the repository: parameter sweeps, seeded
// replication studies, and ablation grids all fan independent
// simulation runs across cores through a Pool.
//
// The design constraint is determinism: a simulation batch must produce
// byte-identical tables, NDJSON streams, and confidence intervals
// whether it ran on one worker or sixteen. The pool therefore separates
// *execution* (any completion order, bounded concurrency) from
// *reduction* (strictly submission order, always on the calling
// goroutine). Jobs run concurrently; their results are handed to the
// caller's collector one at a time, in the order the jobs were
// submitted, so any output written from the collector is identical to a
// sequential run's.
package runner

import (
	"io"
	"runtime"
	"sync"
)

// Pool bounds the number of simulation runs executing concurrently.
// The zero value is ready to use and sizes itself to the machine.
type Pool struct {
	// Workers is the maximum number of jobs in flight at once.
	// Zero or negative means runtime.GOMAXPROCS(0) — one worker per
	// available CPU, the `-j` default of the cmd tools.
	Workers int
}

// workers resolves the effective worker count for n jobs.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Each runs jobs 0..n-1 through the pool and reduces their results in
// submission order: collect(i, v) is called exactly once per successful
// job, for increasing i, never concurrently, on the calling goroutine.
// A nil collect discards results.
//
// Errors preserve sequential semantics: the returned error is the one a
// sequential loop would have hit first — the lowest-index job error (or
// collect error), with collect never invoked for any later index.
// In-flight jobs are allowed to finish, no new jobs start, and Each
// returns after all workers have exited.
//
// Completed results awaiting their turn are buffered; in the worst case
// (job 0 slowest) that is n-1 results, so keep per-job results small —
// a pointer to the run's measurements, not the measurements' rendering.
func Each[T any](p Pool, n int, job func(i int) (T, error), collect func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if p.workers(n) == 1 {
		// One worker degenerates to the plain loop the pool replaced.
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return err
			}
			if collect != nil {
				if err := collect(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	type result struct {
		v   T
		err error
	}
	var (
		mu      sync.Mutex
		ready   = sync.NewCond(&mu)
		done    = make(map[int]result)
		next    int  // next index to hand to a worker
		stopped bool // reducer hit an error; stop dispatching
		wg      sync.WaitGroup
	)
	for w := p.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if stopped || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v, err := job(i)

				mu.Lock()
				done[i] = result{v, err}
				ready.Broadcast()
				mu.Unlock()
			}
		}()
	}

	var firstErr error
	mu.Lock()
	for i := 0; i < n && firstErr == nil; i++ {
		for {
			r, ok := done[i]
			if ok {
				delete(done, i)
				if r.err != nil {
					firstErr = r.err
					stopped = true // stop dispatch promptly
					break
				}
				if collect != nil {
					// Release the lock while reducing so workers keep
					// draining the remaining jobs.
					mu.Unlock()
					err := collect(i, r.v)
					mu.Lock()
					if err != nil {
						firstErr = err
						stopped = true
					}
				}
				break
			}
			ready.Wait()
		}
	}
	stopped = true
	mu.Unlock()
	wg.Wait()
	return firstErr
}

// Map runs jobs 0..n-1 through the pool and returns their results in
// submission order. On error it returns the lowest-index job's error
// and a nil slice (sequential error semantics, as in Each).
func Map[T any](p Pool, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Each(p, n, job, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SyncWriter serialises writes to an underlying writer, so diagnostics
// emitted by concurrently running jobs cannot interleave mid-line. It
// guarantees atomicity per Write call, not cross-job ordering — output
// that must appear in submission order belongs in an Each collector,
// which needs no lock at all.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write forwards p to the underlying writer under the lock.
func (s *SyncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return len(p), nil
	}
	return s.w.Write(p)
}
