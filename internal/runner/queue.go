package runner

import (
	"errors"
	"sync"
)

// Queue errors.
var (
	// ErrQueueFull is returned by Submit when the backlog is at capacity;
	// callers should shed load (the service answers 503).
	ErrQueueFull = errors.New("runner: queue full")
	// ErrQueueClosed is returned by Submit after Close has begun.
	ErrQueueClosed = errors.New("runner: queue closed")
)

// Queue is the daemon-shaped counterpart to Each: a long-lived
// bounded-concurrency executor that accepts jobs over time instead of
// a batch up front. A fixed pool of workers drains a bounded backlog;
// Submit never blocks (it sheds load with ErrQueueFull), and Close
// drains — it stops admissions, runs everything already accepted, and
// waits for the workers to exit. That drain is the service's graceful
// shutdown path: every in-flight simulation finishes and lands in the
// result cache before the process exits.
//
// Jobs are plain closures that own their results; ordering guarantees
// are the caller's concern (the service keys everything by content
// hash, so execution order is irrelevant there).
type Queue struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	pending int // accepted but not yet finished
}

// NewQueue starts a queue with the given worker count and backlog
// capacity. workers <= 0 defaults to 1. The backlog is floored at the
// worker count so an idle worker can never lose the race against a
// non-blocking Submit; depth <= workers therefore means "refuse
// anything the workers can't pick up immediately".
func NewQueue(workers, depth int) *Queue {
	if workers <= 0 {
		workers = 1
	}
	if depth < workers {
		depth = workers
	}
	q := &Queue{jobs: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				job()
				q.mu.Lock()
				q.pending--
				q.mu.Unlock()
			}
		}()
	}
	return q
}

// Submit enqueues job for execution. It returns immediately:
// ErrQueueFull when the backlog is at capacity, ErrQueueClosed once
// Close has begun, nil when the job was accepted (it will run even if
// Close is called right after).
func (q *Queue) Submit(job func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.jobs <- job:
		q.pending++
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth returns the number of accepted jobs not yet finished (queued
// plus executing).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending
}

// Close stops admissions, drains every accepted job, and waits for the
// workers to exit. It is idempotent; concurrent Submits during Close
// are refused with ErrQueueClosed.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}
