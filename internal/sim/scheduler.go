// Package sim provides the deterministic discrete-event core that every
// other subsystem of the simulator is built on: a virtual clock, an event
// scheduler with cancellable timers, and a reproducible random number
// generator.
//
// The engine is single-threaded by design. Determinism — the property that
// the same seed and the same scenario produce the same trace, bit for bit —
// is what makes the reproduction of the paper's figures meaningful, so the
// scheduler breaks ties between simultaneous events by scheduling order
// (FIFO) rather than by map iteration or goroutine interleaving.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
//
// A float64 carries 53 bits of mantissa: at nanosecond granularity this is
// exact past 10^6 simulated seconds, far beyond any scenario in this
// repository. This mirrors ns-2, which the paper used, and keeps arithmetic
// with physical quantities (metres, metres/second) direct.
type Time float64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time with microsecond precision, e.g. "12.000350s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// Forever is a time later than any event a scenario can schedule. It is the
// natural "no deadline" sentinel for RunUntil.
const Forever = Time(math.MaxFloat64)

// EventKind classifies a scheduled event by the stack layer that created
// it, for scheduler profiling. Tagging is optional: events scheduled via
// the plain Schedule/At are KindOther.
type EventKind uint8

// Event kinds, one per instrumented layer.
const (
	KindOther EventKind = iota
	KindPHY
	KindMAC
	KindRouting
	KindTransport
	KindApp
	KindMobility
	KindObs // measurement/recording machinery (animation, samplers)

	numKinds
)

var kindNames = [numKinds]string{
	"other", "phy", "mac", "routing", "transport", "app", "mobility", "obs",
}

// String returns the kind's profile label.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Timer is a handle to a scheduled event. The zero value is not useful;
// timers are created by Scheduler.Schedule and Scheduler.At.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	kind     EventKind
	owner    *Scheduler
	canceled bool
	fired    bool
	index    int // position in the heap, -1 once removed
}

// Cancel prevents the timer from firing and removes it from the pending
// heap immediately (O(log n) via the maintained heap index), so cancelled
// timers do not linger until their deadline. Cancelling an already-fired
// or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.fired || t.canceled {
		return
	}
	t.canceled = true
	if t.owner != nil && t.index >= 0 {
		heap.Remove(&t.owner.events, t.index)
	}
}

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t *Timer) Active() bool { return t != nil && !t.fired && !t.canceled }

// When returns the simulated time the timer is (or was) set to fire.
func (t *Timer) When() Time { return t.at }

// Scheduler is the discrete-event executive: it owns the virtual clock and
// the pending-event queue. The zero value is a ready-to-use scheduler at
// time 0.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	executed   uint64           // number of events fired, for instrumentation
	byKind     [numKinds]uint64 // events fired, split by EventKind
	maxPending int              // pending-heap high-water mark
}

// New returns a scheduler with its clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// ExecutedByKind returns per-kind fired-event counts, indexed by
// EventKind (length numKinds; use EventKind.String for labels).
func (s *Scheduler) ExecutedByKind() []uint64 {
	out := make([]uint64, numKinds)
	copy(out, s.byKind[:])
	return out
}

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.events) }

// MaxPending returns the pending-heap high-water mark: the largest number
// of simultaneously scheduled events seen so far.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Schedule runs fn after delay of simulated time and returns a cancellable
// handle. A zero delay schedules fn at the current time, after all events
// already scheduled for that time (FIFO tie-break). Schedule panics on a
// negative delay or NaN: scheduling into the past is always a simulator
// bug, and silently clamping it would hide causality violations.
func (s *Scheduler) Schedule(delay Time, fn func()) *Timer {
	return s.ScheduleKind(KindOther, delay, fn)
}

// ScheduleKind is Schedule with an EventKind tag for scheduler profiling.
func (s *Scheduler) ScheduleKind(kind EventKind, delay Time, fn func()) *Timer {
	if delay < 0 || math.IsNaN(float64(delay)) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	return s.AtKind(kind, s.now+delay, fn)
}

// At runs fn at absolute simulated time t. It panics if t is in the past.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.AtKind(KindOther, t, fn)
}

// AtKind is At with an EventKind tag for scheduler profiling.
func (s *Scheduler) AtKind(kind EventKind, t Time, fn func()) *Timer {
	if t < s.now || math.IsNaN(float64(t)) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil func")
	}
	tm := &Timer{at: t, seq: s.seq, fn: fn, kind: kind, owner: s}
	s.seq++
	heap.Push(&s.events, tm)
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
	return tm
}

// Step fires the single earliest pending event. It returns false if no
// events remain or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	for {
		if s.stopped || len(s.events) == 0 {
			return false
		}
		tm := heap.Pop(&s.events).(*Timer)
		if tm.canceled {
			// Cancel removes timers eagerly; this guards any future lazy path.
			continue
		}
		s.now = tm.at
		tm.fired = true
		s.executed++
		s.byKind[tm.kind]++
		tm.fn()
		return true
	}
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline (if the run wasn't stopped early). Events scheduled
// after the deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		if s.stopped {
			return
		}
		tm := s.peek()
		if tm == nil || tm.at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
// Pending events are kept; a stopped scheduler fires nothing further.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// peek returns the earliest non-cancelled pending timer without firing it.
func (s *Scheduler) peek() *Timer {
	for len(s.events) > 0 {
		tm := s.events[0]
		if !tm.canceled {
			return tm
		}
		heap.Pop(&s.events)
	}
	return nil
}

// eventHeap is a min-heap ordered by (time, insertion sequence).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}
