// Package sim provides the deterministic discrete-event core that every
// other subsystem of the simulator is built on: a virtual clock, an event
// scheduler with cancellable timers, and a reproducible random number
// generator.
//
// The engine is single-threaded by design. Determinism — the property that
// the same seed and the same scenario produce the same trace, bit for bit —
// is what makes the reproduction of the paper's figures meaningful, so the
// scheduler breaks ties between simultaneous events by scheduling order
// (FIFO) rather than by map iteration or goroutine interleaving.
//
// The scheduler is also the simulator's hottest loop: every frame, timer,
// and mobility manoeuvre passes through it several times. It therefore
// avoids container/heap's interface boxing with an inlined concrete
// min-heap, and recycles event nodes through a per-scheduler free list so
// steady-state scheduling performs no heap allocation at all. Timer
// handles are generation-checked values: a handle kept past its event's
// firing (or cancellation) goes permanently inert, even after the
// underlying node has been recycled for a new event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
//
// A float64 carries 53 bits of mantissa: at nanosecond granularity this is
// exact past 10^6 simulated seconds, far beyond any scenario in this
// repository. This mirrors ns-2, which the paper used, and keeps arithmetic
// with physical quantities (metres, metres/second) direct.
type Time float64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time with microsecond precision, e.g. "12.000350s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// Forever is a time later than any event a scenario can schedule. It is the
// natural "no deadline" sentinel for RunUntil.
const Forever = Time(math.MaxFloat64)

// EventKind classifies a scheduled event by the stack layer that created
// it, for scheduler profiling. Tagging is optional: events scheduled via
// the plain Schedule/At are KindOther.
type EventKind uint8

// Event kinds, one per instrumented layer.
const (
	KindOther EventKind = iota
	KindPHY
	KindMAC
	KindRouting
	KindTransport
	KindApp
	KindMobility
	KindObs // measurement/recording machinery (animation, samplers)

	numKinds
)

var kindNames = [numKinds]string{
	"other", "phy", "mac", "routing", "transport", "app", "mobility", "obs",
}

// String returns the kind's profile label.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// timerNode is the scheduler-owned state of one scheduled event. Nodes are
// recycled through the owning scheduler's free list; gen distinguishes the
// node's current tenancy from stale Timer handles issued for earlier ones.
type timerNode struct {
	at    Time
	seq   uint64
	fn    func()    // nil when fnArg carries the callback
	fnArg func(any) // argument-taking callback, avoids per-event closures
	arg   any
	owner *Scheduler
	gen   uint64
	kind  EventKind
	index int // position in the heap, -1 while free
}

// Timer is a handle to a scheduled event. It is a small value: copy it
// freely. The zero value is inert — Cancel is a no-op and Active reports
// false — so a struct field of type Timer needs no initialisation and can
// be reset by assigning Timer{}. A handle kept after its event fired or
// was cancelled is equally inert: the scheduler recycles event storage,
// and the handle's generation check makes stale use safe.
type Timer struct {
	n   *timerNode
	gen uint64
	at  Time
}

// Cancel prevents the timer from firing and removes it from the pending
// heap immediately (O(log n) via the maintained heap index), so cancelled
// timers do not linger until their deadline. Cancelling an already-fired,
// already-cancelled, or zero-value timer is a no-op.
func (t Timer) Cancel() {
	n := t.n
	if n == nil || n.gen != t.gen {
		return
	}
	n.owner.remove(n)
}

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t Timer) Active() bool { return t.n != nil && t.n.gen == t.gen }

// When returns the simulated time the timer is (or was) set to fire. The
// zero value reports 0.
func (t Timer) When() Time { return t.at }

// Scheduler is the discrete-event executive: it owns the virtual clock and
// the pending-event queue. The zero value is a ready-to-use scheduler at
// time 0.
type Scheduler struct {
	now     Time
	seq     uint64
	heap    []*timerNode // binary min-heap on (at, seq)
	free    []*timerNode // recycled nodes, LIFO
	stopped bool

	executed   uint64           // number of events fired, for instrumentation
	byKind     [numKinds]uint64 // events fired, split by EventKind
	maxPending int              // pending-heap high-water mark

	// stepHook, when non-nil, observes every clock advance just before it
	// happens (from current time to the firing event's time). It exists for
	// the runtime invariant checker; the disabled state costs Step one nil
	// comparison.
	stepHook func(from, to Time)
}

// SetStepHook installs an observer called on every Step with the clock's
// current and next value, before the advance. Pass nil to remove it. The
// hook must not schedule or cancel events.
func (s *Scheduler) SetStepHook(fn func(from, to Time)) { s.stepHook = fn }

// New returns a scheduler with its clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// ExecutedByKind returns per-kind fired-event counts, indexed by
// EventKind (length numKinds; use EventKind.String for labels).
func (s *Scheduler) ExecutedByKind() []uint64 {
	out := make([]uint64, numKinds)
	copy(out, s.byKind[:])
	return out
}

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.heap) }

// MaxPending returns the pending-heap high-water mark: the largest number
// of simultaneously scheduled events seen so far.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Schedule runs fn after delay of simulated time and returns a cancellable
// handle. A zero delay schedules fn at the current time, after all events
// already scheduled for that time (FIFO tie-break). Schedule panics on a
// negative delay or NaN: scheduling into the past is always a simulator
// bug, and silently clamping it would hide causality violations.
func (s *Scheduler) Schedule(delay Time, fn func()) Timer {
	return s.ScheduleKind(KindOther, delay, fn)
}

// ScheduleKind is Schedule with an EventKind tag for scheduler profiling.
func (s *Scheduler) ScheduleKind(kind EventKind, delay Time, fn func()) Timer {
	if delay < 0 || math.IsNaN(float64(delay)) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	return s.AtKind(kind, s.now+delay, fn)
}

// ScheduleArgKind schedules fn(arg) after delay. Passing the argument
// through the scheduler lets hot paths reuse one long-lived callback
// instead of allocating a capturing closure per event; arg is typically a
// pooled struct pointer, which boxes into the any without allocating.
func (s *Scheduler) ScheduleArgKind(kind EventKind, delay Time, fn func(any), arg any) Timer {
	if delay < 0 || math.IsNaN(float64(delay)) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	if fn == nil {
		panic("sim: At with nil func")
	}
	return s.insert(kind, s.now+delay, nil, fn, arg)
}

// At runs fn at absolute simulated time t. It panics if t is in the past.
func (s *Scheduler) At(t Time, fn func()) Timer {
	return s.AtKind(KindOther, t, fn)
}

// AtKind is At with an EventKind tag for scheduler profiling.
func (s *Scheduler) AtKind(kind EventKind, t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At with nil func")
	}
	return s.insert(kind, t, fn, nil, nil)
}

// insert allocates (or recycles) a node, pushes it, and issues its handle.
func (s *Scheduler) insert(kind EventKind, t Time, fn func(), fnArg func(any), arg any) Timer {
	if t < s.now || math.IsNaN(float64(t)) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, s.now))
	}
	var n *timerNode
	if k := len(s.free); k > 0 {
		n = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		n = &timerNode{owner: s}
	}
	n.at, n.seq, n.fn, n.fnArg, n.arg, n.kind = t, s.seq, fn, fnArg, arg, kind
	s.seq++
	s.push(n)
	if len(s.heap) > s.maxPending {
		s.maxPending = len(s.heap)
	}
	return Timer{n: n, gen: n.gen, at: t}
}

// release retires a fired or cancelled node: its generation bump turns all
// outstanding handles inert, and the callback references are dropped so the
// free list pins no closures or arguments.
func (s *Scheduler) release(n *timerNode) {
	n.gen++
	n.fn = nil
	n.fnArg = nil
	n.arg = nil
	n.index = -1
	s.free = append(s.free, n)
}

// Step fires the single earliest pending event. It returns false if no
// events remain or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	if s.stopped || len(s.heap) == 0 {
		return false
	}
	n := s.popMin()
	if s.stepHook != nil {
		s.stepHook(s.now, n.at)
	}
	s.now = n.at
	s.executed++
	s.byKind[n.kind]++
	// Capture the callback and recycle the node before invoking it, so a
	// callback that immediately reschedules reuses this node's storage.
	fn, fnArg, arg := n.fn, n.fnArg, n.arg
	s.release(n)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline (if the run wasn't stopped early). Events scheduled
// after the deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		if s.stopped {
			return
		}
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
// Pending events are kept; a stopped scheduler fires nothing further.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// The pending queue is a hand-inlined binary min-heap on (at, seq): the
// earliest deadline wins, equal deadlines fire in scheduling order. The
// sift loops move a hole instead of swapping, and node.index is maintained
// throughout so Cancel can remove from the middle in O(log n).

// lessNode orders a before b by (at, seq).
func lessNode(a, b *timerNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends n and restores the heap invariant.
func (s *Scheduler) push(n *timerNode) {
	n.index = len(s.heap)
	s.heap = append(s.heap, n)
	s.siftUp(n.index)
}

// popMin removes and returns the earliest node.
func (s *Scheduler) popMin() *timerNode {
	h := s.heap
	n := h[0]
	last := len(h) - 1
	moved := h[last]
	h[last] = nil
	s.heap = h[:last]
	if last > 0 {
		s.heap[0] = moved
		moved.index = 0
		s.siftDown(0)
	}
	return n
}

// remove deletes n from an arbitrary heap position and releases it.
func (s *Scheduler) remove(n *timerNode) {
	i := n.index
	h := s.heap
	last := len(h) - 1
	moved := h[last]
	h[last] = nil
	s.heap = h[:last]
	if i != last {
		s.heap[i] = moved
		moved.index = i
		s.siftDown(i)
		if moved.index == i {
			s.siftUp(i)
		}
	}
	s.release(n)
}

// siftUp moves the node at j toward the root until its parent is earlier.
func (s *Scheduler) siftUp(j int) {
	h := s.heap
	n := h[j]
	for j > 0 {
		i := (j - 1) / 2
		p := h[i]
		if !lessNode(n, p) {
			break
		}
		h[j] = p
		p.index = j
		j = i
	}
	h[j] = n
	n.index = j
}

// siftDown moves the node at i toward the leaves until both children are
// later.
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := h[i]
	size := len(h)
	for {
		l := 2*i + 1
		if l >= size {
			break
		}
		j := l
		if r := l + 1; r < size && lessNode(h[r], h[l]) {
			j = r
		}
		c := h[j]
		if !lessNode(c, n) {
			break
		}
		h[i] = c
		c.index = i
		i = j
	}
	h[i] = n
	n.index = i
}
