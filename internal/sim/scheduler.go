// Package sim provides the deterministic discrete-event core that every
// other subsystem of the simulator is built on: a virtual clock, an event
// scheduler with cancellable timers, and a reproducible random number
// generator.
//
// The engine is single-threaded by design. Determinism — the property that
// the same seed and the same scenario produce the same trace, bit for bit —
// is what makes the reproduction of the paper's figures meaningful, so the
// scheduler breaks ties between simultaneous events by scheduling order
// (FIFO) rather than by map iteration or goroutine interleaving.
//
// The scheduler is also the simulator's hottest loop: every frame, timer,
// and mobility manoeuvre passes through it several times. It therefore
// avoids container/heap's interface boxing with an inlined concrete
// min-heap, and recycles event nodes through a per-scheduler free list so
// steady-state scheduling performs no heap allocation at all. Timer
// handles are generation-checked values: a handle kept past its event's
// firing (or cancellation) goes permanently inert, even after the
// underlying node has been recycled for a new event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
//
// A float64 carries 53 bits of mantissa: at nanosecond granularity this is
// exact past 10^6 simulated seconds, far beyond any scenario in this
// repository. This mirrors ns-2, which the paper used, and keeps arithmetic
// with physical quantities (metres, metres/second) direct.
type Time float64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time with microsecond precision, e.g. "12.000350s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// Forever is a time later than any event a scenario can schedule. It is the
// natural "no deadline" sentinel for RunUntil.
const Forever = Time(math.MaxFloat64)

// EventKind classifies a scheduled event by the stack layer that created
// it, for scheduler profiling. Tagging is optional: events scheduled via
// the plain Schedule/At are KindOther.
type EventKind uint8

// Event kinds, one per instrumented layer.
const (
	KindOther EventKind = iota
	KindPHY
	KindMAC
	KindRouting
	KindTransport
	KindApp
	KindMobility
	KindObs // measurement/recording machinery (animation, samplers)

	numKinds
)

var kindNames = [numKinds]string{
	"other", "phy", "mac", "routing", "transport", "app", "mobility", "obs",
}

// String returns the kind's profile label.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// timerNode is the scheduler-owned state of one scheduled event. Nodes are
// recycled through the owning scheduler's free list; gen distinguishes the
// node's current tenancy from stale Timer handles issued for earlier ones.
type timerNode struct {
	at    Time
	seq   uint64
	fn    func()    // nil when fnArg carries the callback
	fnArg func(any) // argument-taking callback, avoids per-event closures
	arg   any
	owner *Scheduler
	gen   uint64
	kind  EventKind
	index int // position in the heap, -1 while free
}

// Timer is a handle to a scheduled event. It is a small value: copy it
// freely. The zero value is inert — Cancel is a no-op and Active reports
// false — so a struct field of type Timer needs no initialisation and can
// be reset by assigning Timer{}. A handle kept after its event fired or
// was cancelled is equally inert: the scheduler recycles event storage,
// and the handle's generation check makes stale use safe.
type Timer struct {
	n   *timerNode
	gen uint64
	at  Time
}

// Cancel prevents the timer from firing and removes it from the pending
// heap immediately (O(log n) via the maintained heap index), so cancelled
// timers do not linger until their deadline. Cancelling an already-fired,
// already-cancelled, or zero-value timer is a no-op.
func (t Timer) Cancel() {
	n := t.n
	if n == nil || n.gen != t.gen {
		return
	}
	n.owner.remove(n)
}

// Postpone moves a pending timer's deadline later, in place, and returns
// the replacement handle with ok true. It consumes a fresh sequence
// number, so the firing order is exactly what Cancel followed by
// re-scheduling the same callback at the new time would produce — but the
// node is repositioned inside its heap instead of being removed and
// re-inserted, which is markedly cheaper for the extend-busy pattern where
// a deadline is pushed back many times per firing. Unlike the
// cancel-and-reschedule it replaces, outstanding copies of the old handle
// stay valid and refer to the postponed event.
//
// Postpone declines (ok false, timer untouched) when the event already
// fired or was cancelled, when at precedes the current deadline, or when
// the node is temporarily outside its heap mid-DrainEpoch; the caller then
// falls back to Cancel plus a fresh schedule.
func (t Timer) Postpone(at Time) (Timer, bool) {
	n := t.n
	if n == nil || n.gen != t.gen || n.index < 0 || at < n.at || math.IsNaN(float64(at)) {
		return t, false
	}
	s := n.owner
	n.at = at
	n.seq = s.seq
	s.seq++
	e := heapEntry{at: at, seq: n.seq, n: n}
	switch {
	case n.index&farBit != 0:
		// Already in the far heap; the key only grew, so sift down.
		i := n.index &^ farBit
		s.far[i] = e
		tierSiftDown(s.far, farBit, i)
	case n.index&soonBit != 0:
		// In the soon heap: sift down in place, or move outward when the
		// new deadline crossed the soon horizon.
		i := n.index &^ soonBit
		if at <= s.soonHorizon {
			s.soon[i] = e
			tierSiftDown(s.soon, soonBit, i)
		} else {
			tierRemoveAt(&s.soon, soonBit, i)
			j := len(s.far)
			n.index = farBit | j
			s.far = append(s.far, e)
			tierSiftUp(s.far, farBit, j)
		}
	case at <= s.horizon:
		// Stays in the near heap; the key only grew, so sift down.
		i := n.index
		s.heap[i] = e
		s.siftDown(i)
	default:
		// Crossed the horizon: detach from near, insert into soon or far.
		i := n.index
		h := s.heap
		last := len(h) - 1
		moved := h[last]
		h[last] = heapEntry{}
		s.heap = h[:last]
		if i != last {
			s.heap[i] = moved
			moved.n.index = i
			s.siftDown(i)
			if moved.n.index == i {
				s.siftUp(i)
			}
		}
		if at <= s.soonHorizon {
			j := len(s.soon)
			n.index = soonBit | j
			s.soon = append(s.soon, e)
			tierSiftUp(s.soon, soonBit, j)
		} else {
			j := len(s.far)
			n.index = farBit | j
			s.far = append(s.far, e)
			tierSiftUp(s.far, farBit, j)
		}
	}
	return Timer{n: n, gen: n.gen, at: at}, true
}

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t Timer) Active() bool { return t.n != nil && t.n.gen == t.gen }

// When returns the simulated time the timer is (or was) set to fire. The
// zero value reports 0.
func (t Timer) When() Time { return t.at }

// Scheduler is the discrete-event executive: it owns the virtual clock and
// the pending-event queue. The zero value is a ready-to-use scheduler at
// time 0.
type Scheduler struct {
	now         Time
	seq         uint64
	heap        []heapEntry  // near heap: pending events with at <= horizon
	soon        []heapEntry  // soon heap: horizon < at <= soonHorizon
	far         []heapEntry  // far heap: pending events with at > soonHorizon
	horizon     Time         // near/soon split point, monotone
	soonHorizon Time         // soon/far split point, monotone, >= horizon
	free        []*timerNode // recycled nodes, LIFO
	stopped     bool

	executed   uint64           // number of events fired, for instrumentation
	byKind     [numKinds]uint64 // events fired, split by EventKind
	maxPending int              // pending-heap high-water mark

	// stepHook, when non-nil, observes every clock advance just before it
	// happens (from current time to the firing event's time). It exists for
	// the runtime invariant checker; the disabled state costs Step one nil
	// comparison.
	stepHook func(from, to Time)

	// batch is DrainEpoch's reusable scratch (see epoch.go).
	batch batchState

	// mig is prime's reusable migration scratch.
	mig migScratch
}

// migScratch holds drainTier's reusable state so steady-state horizon
// migration allocates nothing.
type migScratch struct {
	ents   []heapEntry // the migrating batch, in BFS collection order
	holes  []int       // BFS queue, then: vacated source positions
	filled []int       // hole indices that received a tail entry
}

// SetStepHook installs an observer called on every Step with the clock's
// current and next value, before the advance. Pass nil to remove it. The
// hook must not schedule or cancel events.
func (s *Scheduler) SetStepHook(fn func(from, to Time)) { s.stepHook = fn }

// New returns a scheduler with its clock at zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// ExecutedByKind returns per-kind fired-event counts, indexed by
// EventKind (length numKinds; use EventKind.String for labels).
func (s *Scheduler) ExecutedByKind() []uint64 {
	out := make([]uint64, numKinds)
	copy(out, s.byKind[:])
	return out
}

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.heap) + len(s.soon) + len(s.far) }

// MaxPending returns the pending-heap high-water mark: the largest number
// of simultaneously scheduled events seen so far.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Schedule runs fn after delay of simulated time and returns a cancellable
// handle. A zero delay schedules fn at the current time, after all events
// already scheduled for that time (FIFO tie-break). Schedule panics on a
// negative delay or NaN: scheduling into the past is always a simulator
// bug, and silently clamping it would hide causality violations.
func (s *Scheduler) Schedule(delay Time, fn func()) Timer {
	return s.ScheduleKind(KindOther, delay, fn)
}

// ScheduleKind is Schedule with an EventKind tag for scheduler profiling.
func (s *Scheduler) ScheduleKind(kind EventKind, delay Time, fn func()) Timer {
	if delay < 0 || math.IsNaN(float64(delay)) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	return s.AtKind(kind, s.now+delay, fn)
}

// ScheduleArgKind schedules fn(arg) after delay. Passing the argument
// through the scheduler lets hot paths reuse one long-lived callback
// instead of allocating a capturing closure per event; arg is typically a
// pooled struct pointer, which boxes into the any without allocating.
func (s *Scheduler) ScheduleArgKind(kind EventKind, delay Time, fn func(any), arg any) Timer {
	if delay < 0 || math.IsNaN(float64(delay)) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	if fn == nil {
		panic("sim: At with nil func")
	}
	return s.insert(kind, s.now+delay, nil, fn, arg)
}

// AtArgKind schedules fn(arg) at absolute simulated time t — the
// absolute-deadline form of ScheduleArgKind, used by the shard runtime to
// deliver cross-shard events at their exact computed timestamp (going
// through a delay would re-derive t as (t-now)+now, which need not round
// back to the same float).
func (s *Scheduler) AtArgKind(kind EventKind, t Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: At with nil func")
	}
	return s.insert(kind, t, nil, fn, arg)
}

// At runs fn at absolute simulated time t. It panics if t is in the past.
func (s *Scheduler) At(t Time, fn func()) Timer {
	return s.AtKind(KindOther, t, fn)
}

// AtKind is At with an EventKind tag for scheduler profiling.
func (s *Scheduler) AtKind(kind EventKind, t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At with nil func")
	}
	return s.insert(kind, t, fn, nil, nil)
}

// insert allocates (or recycles) a node, pushes it, and issues its handle.
func (s *Scheduler) insert(kind EventKind, t Time, fn func(), fnArg func(any), arg any) Timer {
	if t < s.now || math.IsNaN(float64(t)) {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, s.now))
	}
	var n *timerNode
	if k := len(s.free); k > 0 {
		n = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		n = &timerNode{owner: s}
	}
	n.at, n.seq, n.fn, n.fnArg, n.arg, n.kind = t, s.seq, fn, fnArg, arg, kind
	s.seq++
	s.push(n)
	if p := len(s.heap) + len(s.soon) + len(s.far); p > s.maxPending {
		s.maxPending = p
	}
	return Timer{n: n, gen: n.gen, at: t}
}

// release retires a fired or cancelled node: its generation bump turns all
// outstanding handles inert, and the callback references are dropped so the
// free list pins no closures or arguments.
func (s *Scheduler) release(n *timerNode) {
	n.gen++
	n.fn = nil
	n.fnArg = nil
	n.arg = nil
	n.index = indexFree
	s.free = append(s.free, n)
}

// Step fires the single earliest pending event. It returns false if no
// events remain or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	if len(s.heap) == 0 {
		s.prime()
		if len(s.heap) == 0 {
			return false
		}
	}
	// fireNode captures the callback and recycles the node before invoking
	// it, so a callback that immediately reschedules reuses this node's
	// storage.
	s.fireNode(s.popMin())
	return true
}

// Run fires events until none remain or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline (if the run wasn't stopped early). Events scheduled
// after the deadline remain pending.
func (s *Scheduler) RunUntil(deadline Time) {
	for {
		if s.stopped {
			return
		}
		if len(s.heap) == 0 {
			s.prime()
		}
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			break
		}
		s.fireNode(s.popMin())
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
// Pending events are kept; a stopped scheduler fires nothing further.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// The pending queue is a trio of hand-inlined binary min-heaps on
// (at, seq): the earliest deadline wins, equal deadlines fire in
// scheduling order. Heap entries carry the (at, seq) key inline next to
// the node pointer, so the sift loops compare keys without dereferencing
// nodes — on a heap of many thousands of pending events every such
// dereference is a likely cache miss, and the sift comparison is the
// scheduler's single hottest load. (A 4-ary layout was tried here and
// lost: the bottom-up pop below costs one comparison per level, so halving
// the levels while tripling the per-level comparisons is a net slowdown
// once keys are inline.) The sift loops move a hole instead of swapping,
// and node.index is maintained throughout so Cancel can remove from the
// middle in O(log n).
//
// The heaps split the queue at two moving horizons. Wireless workloads
// are sharply trimodal: the bulk of events are first-bit arrivals due
// within a couple of microseconds (propagation delay), MAC timers and
// frame-end events sit tens of microseconds to a millisecond out, and
// application/routing timers sit tens of milliseconds or seconds out. One
// combined heap forces every arrival to sift through thousands of
// far-future timers. The near heap holds events with at <= horizon and
// serves every pop; the soon heap holds (horizon, soonHorizon]; the far
// heap holds the rest. When the near heap drains, prime advances the
// horizon just past the soon heap's minimum (capped at soonHorizon) and
// migrates what now falls inside; when the soon heap drains too,
// primeSoon first refills it the same way from the far heap. The middle
// tier is what keeps migration cheap: the per-event churn of MAC-scale
// timers sifts through a heap holding only the next soonWindow of work —
// small enough to stay cache-resident — while the thousands of pending
// application timers are disturbed only once per soonWindow. Every pop
// still returns the global (at, seq) minimum — soon and far entries are
// strictly later than the horizon and so than every near entry — and
// equal keys never straddle a split, so the fired order is
// byte-identical to the single heap's.

// nearWindow is how far past the soon heap's minimum the horizon jumps
// on each prime: wide enough to keep a batch of in-flight arrivals near,
// narrow enough that the near heap stays small.
const nearWindow = 8 * Microsecond

// soonWindow is how far past the far heap's minimum the soon horizon
// jumps when the soon heap refills: wide enough to absorb the MAC/frame
// timer churn between refills, narrow enough that the soon heap stays a
// small fraction of the pending set.
const soonWindow = 8 * Millisecond

// farBit and soonBit mark node.index values that point into the far and
// soon heaps. Positions within any heap stay well below either bit, and
// the sentinel values used by DrainEpoch (indexFree and friends) stay
// negative.
const (
	farBit  = 1 << 30
	soonBit = 1 << 29
)

// heapEntry is one pending-queue slot: the ordering key, duplicated from
// the node, plus the node itself.
type heapEntry struct {
	at  Time
	seq uint64
	n   *timerNode
}

// lessEntry orders a before b by (at, seq).
func lessEntry(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push routes n into the near, soon, or far heap by its deadline.
func (s *Scheduler) push(n *timerNode) {
	e := heapEntry{at: n.at, seq: n.seq, n: n}
	switch {
	case n.at <= s.horizon:
		n.index = len(s.heap)
		s.heap = append(s.heap, e)
		s.siftUp(n.index)
	case n.at <= s.soonHorizon:
		i := len(s.soon)
		n.index = soonBit | i
		s.soon = append(s.soon, e)
		tierSiftUp(s.soon, soonBit, i)
	default:
		i := len(s.far)
		n.index = farBit | i
		s.far = append(s.far, e)
		tierSiftUp(s.far, farBit, i)
	}
}

// prime refills an empty near heap from the soon heap: the horizon
// advances to just past the soon minimum (never backwards, so the outer
// heaps' at > horizon invariant is preserved; never past soonHorizon, so
// the far heap's at > horizon invariant is preserved too) and every soon
// entry now at or below it migrates. When the soon heap is empty it is
// first refilled from the far heap. A no-op while the near heap has
// events.
func (s *Scheduler) prime() {
	if len(s.heap) != 0 {
		return
	}
	if len(s.soon) == 0 {
		s.primeSoon()
		if len(s.soon) == 0 {
			return
		}
	}
	h := s.soon[0].at + nearWindow
	if h > s.soonHorizon {
		h = s.soonHorizon
	}
	if h > s.horizon {
		s.horizon = h
	}
	// The near heap is empty here, so the migrated batch builds it with
	// one Floyd pass instead of a siftUp per entry.
	s.drainTier(&s.soon, soonBit, s.horizon)
	for _, e := range s.mig.ents {
		e.n.index = len(s.heap)
		s.heap = append(s.heap, e)
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// primeSoon refills an empty soon heap from the far heap, advancing the
// soon horizon to just past the far minimum.
func (s *Scheduler) primeSoon() {
	if len(s.far) == 0 {
		return
	}
	if h := s.far[0].at + soonWindow; h > s.soonHorizon {
		s.soonHorizon = h
	}
	s.drainTier(&s.far, farBit, s.soonHorizon)
	for _, e := range s.mig.ents {
		e.n.index = soonBit | len(s.soon)
		s.soon = append(s.soon, e)
	}
	for i := len(s.soon)/2 - 1; i >= 0; i-- {
		tierSiftDown(s.soon, soonBit, i)
	}
}

// drainTier lifts every entry of the tier heap *hp with at <= limit into
// s.mig.ents (overwriting the previous batch) and repairs the heap with
// one structural pass. The lifted set is up-closed — a lifted entry's
// parent is no later, so it is lifted too — which makes this exactly
// peelCohort's repair with a threshold in place of the equal-timestamp
// test: refill the vacated subtree from the tail, then Floyd-sift the
// refilled positions deepest-first. Lifting k entries this way costs
// O(k) collection plus the repair, where popping them one by one would
// cost a full root-to-leaf sift through the whole tier each.
func (s *Scheduler) drainTier(hp *[]heapEntry, tag int, limit Time) {
	m := &s.mig
	m.ents = m.ents[:0]
	h := *hp
	if len(h) == 0 || h[0].at > limit {
		return
	}
	m.holes = m.holes[:0]
	m.holes = append(m.holes, 0)
	for qi := 0; qi < len(m.holes); qi++ {
		i := m.holes[qi]
		m.ents = append(m.ents, h[i])
		h[i].n.index = indexMigrating
		if l := 2*i + 1; l < len(h) && h[l].at <= limit {
			m.holes = append(m.holes, l)
		}
		if r := 2*i + 2; r < len(h) && h[r].at <= limit {
			m.holes = append(m.holes, r)
		}
	}
	// A slot is dead — lifted, or the source of an earlier move — exactly
	// when its node's index disagrees with its position (see peelCohort).
	last := len(h) - 1
	m.filled = m.filled[:0]
	for _, i := range m.holes {
		for last >= 0 && h[last].n.index != tag|last {
			last--
		}
		if i >= last {
			break
		}
		h[i] = h[last]
		h[i].n.index = tag | i
		last--
		m.filled = append(m.filled, i)
	}
	for last >= 0 && h[last].n.index != tag|last {
		last--
	}
	*hp = h[:last+1]
	for j := len(m.filled) - 1; j >= 0; j-- {
		tierSiftDown(h[:last+1], tag, m.filled[j])
	}
}

// popMin removes and returns the earliest node, repairing bottom-up
// (Wegener's heapsort variant): the root hole is filled by promoting the
// min-child chain to the bottom — one comparison per level instead of the
// classic siftDown's two — and the detached tail element is re-inserted at
// the bottom hole with siftUp. Tail slots hold heap-bottom material, so
// the siftUp almost always stops immediately, roughly halving the
// comparisons on the scheduler's single hottest operation.
func (s *Scheduler) popMin() *timerNode {
	h := s.heap
	n := h[0].n
	last := len(h) - 1
	tail := h[last]
	h[last] = heapEntry{}
	s.heap = h[:last]
	if last == 0 {
		return n
	}
	h = s.heap
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		j := l
		if r := l + 1; r < last && lessEntry(h[r], h[l]) {
			j = r
		}
		c := h[j]
		h[i] = c
		c.n.index = i
		i = j
	}
	h[i] = tail
	tail.n.index = i
	s.siftUp(i)
	return n
}

// remove deletes n from an arbitrary heap position and releases it.
func (s *Scheduler) remove(n *timerNode) {
	if n.index < 0 {
		// The node is out of the heap inside a DrainEpoch batch. Mark it
		// cancelled so the batch skips it; the batch owns retirement, so
		// the node must not reach the free list (and thus a new tenancy)
		// while the batch still points at it.
		n.gen++
		n.fn = nil
		n.fnArg = nil
		n.arg = nil
		n.index = indexCancelled
		return
	}
	if n.index&farBit != 0 {
		tierRemoveAt(&s.far, farBit, n.index&^farBit)
		s.release(n)
		return
	}
	if n.index&soonBit != 0 {
		tierRemoveAt(&s.soon, soonBit, n.index&^soonBit)
		s.release(n)
		return
	}
	i := n.index
	h := s.heap
	last := len(h) - 1
	moved := h[last]
	h[last] = heapEntry{}
	s.heap = h[:last]
	if i != last {
		s.heap[i] = moved
		moved.n.index = i
		s.siftDown(i)
		if moved.n.index == i {
			s.siftUp(i)
		}
	}
	s.release(n)
}

// siftUp moves the entry at j toward the root until its parent is earlier.
func (s *Scheduler) siftUp(j int) {
	h := s.heap
	e := h[j]
	for j > 0 {
		i := (j - 1) / 2
		p := h[i]
		if !lessEntry(e, p) {
			break
		}
		h[j] = p
		p.n.index = j
		j = i
	}
	h[j] = e
	e.n.index = j
}

// The outer heaps' operations mirror the near heap's with tag-marked
// indices (soonBit or farBit). They see only inserts, cancels, and the
// prime migrations — never the per-event pop traffic — so a plain
// top-down pop suffices.

// tierRemoveAt deletes the entry at position i of the tier heap *hp.
func tierRemoveAt(hp *[]heapEntry, tag, i int) {
	h := *hp
	last := len(h) - 1
	moved := h[last]
	h[last] = heapEntry{}
	*hp = h[:last]
	if i != last {
		h = h[:last]
		h[i] = moved
		moved.n.index = tag | i
		tierSiftDown(h, tag, i)
		if moved.n.index == tag|i {
			tierSiftUp(h, tag, i)
		}
	}
}

// tierSiftUp moves the tier entry at j toward the root until its parent
// is earlier.
func tierSiftUp(h []heapEntry, tag, j int) {
	e := h[j]
	for j > 0 {
		i := (j - 1) / 2
		p := h[i]
		if !lessEntry(e, p) {
			break
		}
		h[j] = p
		p.n.index = tag | j
		j = i
	}
	h[j] = e
	e.n.index = tag | j
}

// tierSiftDown moves the tier entry at i toward the leaves until both
// children are later.
func tierSiftDown(h []heapEntry, tag, i int) {
	e := h[i]
	size := len(h)
	for {
		l := 2*i + 1
		if l >= size {
			break
		}
		j := l
		if r := l + 1; r < size && lessEntry(h[r], h[l]) {
			j = r
		}
		c := h[j]
		if !lessEntry(c, e) {
			break
		}
		h[i] = c
		c.n.index = tag | i
		i = j
	}
	h[i] = e
	e.n.index = tag | i
}

// siftDown moves the entry at i toward the leaves until both children are
// later.
func (s *Scheduler) siftDown(i int) {
	h := s.heap
	e := h[i]
	size := len(h)
	for {
		l := 2*i + 1
		if l >= size {
			break
		}
		j := l
		if r := l + 1; r < size && lessEntry(h[r], h[l]) {
			j = r
		}
		c := h[j]
		if !lessEntry(c, e) {
			break
		}
		h[i] = c
		c.n.index = i
		i = j
	}
	h[i] = e
	e.n.index = i
}
