package sim

import "slices"

// Epoch draining: a batch alternative to the Step pop loop for the common
// discrete-event pattern where many events share one timestamp (TDMA slot
// boundaries, beacon phases, barrier-aligned shard windows). The serial
// loop pays a full root-to-leaf siftDown per pop; DrainEpoch instead peels
// the whole equal-timestamp cohort off the heap in one structural repair
// and fires it from a flat slice.
//
// The peel exploits a property of the (at, seq) min-heap: every node whose
// timestamp equals the minimum has a parent with the same timestamp (the
// parent is no later, and nothing is earlier), so the cohort is a subtree
// hanging from the root. Collecting it is a bounded BFS, and after the
// matching nodes are lifted out the vacated positions are exactly that
// subtree — refilling them from the tail and running Floyd's sift-down
// pass over the refilled positions (deepest first) restores the invariant
// without touching any undisturbed branch.
//
// Execution order is the scheduler's documented contract, unchanged: equal
// timestamps fire in scheduling order (seq). Events scheduled *during* the
// batch for the same timestamp carry higher sequence numbers than every
// batched event, so draining again after the batch preserves exactly the
// serial loop's order. The property test in epoch_test.go pins this
// equivalence on randomized workloads.

// batchState holds DrainEpoch's reusable scratch so steady-state draining
// allocates nothing.
type batchState struct {
	nodes  []*timerNode // the cohort, in BFS collection order
	keys   []uint64     // seq<<batchIdxBits | collection index, sorted to fire
	holes  []int        // BFS queue, then: heap indices vacated by the cohort
	filled []int        // hole indices that received a tail node
}

// batchIdxBits is the width of the collection-index field packed into the
// low bits of a firing key. Sorting bare uint64s keeps the order pass free
// of pointer shuffling (and so of GC write barriers) and of comparison
// closures; the seq field above the index preserves exact FIFO order for
// any cohort smaller than 2^20 events and any run shorter than 2^44
// events. Cohorts past that fall back to a comparison sort.
const batchIdxBits = 20

// Node index sentinels while a node is out of the heap but not yet retired.
const (
	indexFree      = -1 // on the free list (set by release)
	indexBatched   = -2 // lifted into a DrainEpoch batch, will fire
	indexCancelled = -3 // cancelled while batched, must not fire
	indexMigrating = -4 // mid-flight inside drainTier, reassigned before it returns
)

// NextAt returns the timestamp of the earliest pending event. ok is false
// when no events are pending.
func (s *Scheduler) NextAt() (at Time, ok bool) {
	if len(s.heap) == 0 {
		s.prime()
		if len(s.heap) == 0 {
			return 0, false
		}
	}
	return s.heap[0].at, true
}

// AdvanceTo moves the clock forward to t without firing anything, exactly
// as RunUntil does after its last event. It panics if an event earlier
// than t is still pending (advancing past it would violate causality) and
// is a no-op if t is not ahead of the clock.
func (s *Scheduler) AdvanceTo(t Time) {
	if (len(s.heap) > 0 && s.heap[0].at < t) ||
		(len(s.soon) > 0 && s.soon[0].at < t) ||
		(len(s.far) > 0 && s.far[0].at < t) {
		panic("sim: AdvanceTo past a pending event")
	}
	if t > s.now {
		s.now = t
	}
}

// DrainEpoch fires every pending event scheduled for the earliest pending
// timestamp — including events that callbacks schedule for that same
// timestamp while the epoch runs — and returns the number fired. The
// execution sequence (order, clock values, step-hook observations,
// profiling counters) is identical to calling Step in a loop; only the
// heap traffic differs. It returns 0 if nothing is pending or the
// scheduler is stopped. Like Step, it must not be called from inside an
// event callback.
func (s *Scheduler) DrainEpoch() int {
	if s.stopped {
		return 0
	}
	if len(s.heap) == 0 {
		s.prime()
		if len(s.heap) == 0 {
			return 0
		}
	}
	// No re-prime inside the loop: soon- and far-heap events are strictly
	// later than the horizon, hence than t0, so the epoch lives entirely
	// in the near heap.
	t0 := s.heap[0].at
	total := 0
	for !s.stopped && len(s.heap) > 0 && s.heap[0].at == t0 {
		total += s.drainCohort(t0)
	}
	return total
}

// RunEpochs fires events in epoch batches until none remain at or before
// deadline, then advances the clock to the deadline — byte-for-byte the
// execution RunUntil produces, batched.
func (s *Scheduler) RunEpochs(deadline Time) {
	for !s.stopped {
		if len(s.heap) == 0 {
			s.prime()
		}
		if len(s.heap) == 0 || s.heap[0].at > deadline {
			break
		}
		s.drainCohort(s.heap[0].at)
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// peelThreshold is how many events of an epoch fire through plain pops
// before the batch peel takes over. Small cohorts thereby cost exactly
// what the serial loop costs — the peel's fixed overhead only buys its
// keep once a timestamp is shared by many tens of events.
const peelThreshold = 16

// drainCohort fires events scheduled for t0 — at least one, at most all
// currently pending — in sequence order. t0 must equal s.heap[0].at.
// Events that callbacks add for t0 are picked up either by the peel
// (which re-reads the heap) or by the caller's re-drain loop; either way
// they carry higher sequence numbers than everything already pending, so
// serial order is preserved.
func (s *Scheduler) drainCohort(t0 Time) int {
	for fired := 0; ; {
		if len(s.heap) == 0 || s.heap[0].at != t0 || s.stopped {
			return fired
		}
		if fired >= peelThreshold {
			return fired + s.peelCohort(t0)
		}
		s.fireNode(s.popMin())
		fired++
	}
}

// peelCohort lifts the whole equal-timestamp subtree out of the heap in
// one structural repair and fires it from a flat batch. t0 must equal
// s.heap[0].at.
func (s *Scheduler) peelCohort(t0 Time) int {
	h := s.heap

	// Collect the cohort breadth-first, using b.holes as the BFS queue.
	// BFS of a heap subtree emits indices in ascending order (children of
	// earlier parents precede children of later parents, and a parent
	// always precedes its children), so the vacated positions come out
	// pre-sorted for the refill below.
	b := &s.batch
	b.nodes, b.holes = b.nodes[:0], b.holes[:0]
	b.holes = append(b.holes, 0)
	for qi := 0; qi < len(b.holes); qi++ {
		i := b.holes[qi]
		b.nodes = append(b.nodes, h[i].n)
		h[i].n.index = indexBatched
		if l := 2*i + 1; l < len(h) && h[l].at == t0 {
			b.holes = append(b.holes, l)
		}
		if r := 2*i + 2; r < len(h) && h[r].at == t0 {
			b.holes = append(b.holes, r)
		}
	}

	// Refill the vacated subtree from the heap tail. Holes are filled in
	// ascending index order so that when the tail runs out, every hole at
	// or past the shrunken end simply falls off. A slot is dead — a hole,
	// or the source of an earlier move — exactly when its node's index
	// disagrees with its position, so no nil-marking pass (and none of its
	// GC write-barrier traffic) is needed. The Floyd pass then runs
	// deepest-first over the refilled positions: each refilled node's
	// in-range ancestors are themselves refilled holes (the cohort is
	// up-closed), so sifting in descending index order re-establishes the
	// invariant exactly as build-heap would.
	last := len(h) - 1
	b.filled = b.filled[:0]
	for _, i := range b.holes {
		for last >= 0 && h[last].n.index != last {
			last--
		}
		if i >= last {
			break
		}
		h[i] = h[last]
		h[i].n.index = i
		last--
		b.filled = append(b.filled, i)
	}
	for last >= 0 && h[last].n.index != last {
		last--
	}
	s.heap = h[:last+1]
	for j := len(b.filled) - 1; j >= 0; j-- {
		s.siftDown(b.filled[j])
	}

	// The cohort fires in sequence order — equal timestamps make seq the
	// whole key, so sorting the packed keys is sorting by seq.
	nodes := b.nodes
	b.keys = b.keys[:0]
	if len(nodes) < 1<<batchIdxBits && s.seq < 1<<(64-batchIdxBits) {
		for bi, n := range nodes {
			b.keys = append(b.keys, n.seq<<batchIdxBits|uint64(bi))
		}
		slices.Sort(b.keys)
	} else {
		// A cohort too large (or a run too long) for packed keys: sort
		// node pointers directly. Never reached by the repo's scenarios.
		slices.SortFunc(nodes, func(a, c *timerNode) int {
			if a.seq < c.seq {
				return -1
			}
			return 1
		})
		for bi := range nodes {
			b.keys = append(b.keys, uint64(bi))
		}
	}

	fired := 0
	for ki := 0; ki < len(b.keys); ki++ {
		n := nodes[b.keys[ki]&(1<<batchIdxBits-1)]
		if n.index == indexCancelled {
			// Cancelled by an earlier callback in this batch: retire the
			// node now that the batch no longer needs it.
			n.index = indexFree
			s.free = append(s.free, n)
			continue
		}
		if s.stopped {
			// Stop keeps pending events pending: return the unfired tail
			// to the heap. Sequence numbers are preserved, so relative
			// order survives the round trip.
			for _, key := range b.keys[ki:] {
				m := nodes[key&(1<<batchIdxBits-1)]
				if m.index == indexCancelled {
					m.index = indexFree
					s.free = append(s.free, m)
					continue
				}
				s.push(m)
			}
			break
		}
		if s.stepHook != nil {
			s.stepHook(s.now, n.at)
		}
		s.now = n.at
		s.executed++
		s.byKind[n.kind]++
		fn, fnArg, arg := n.fn, n.fnArg, n.arg
		s.release(n)
		if fn != nil {
			fn()
		} else {
			fnArg(arg)
		}
		fired++
	}
	// Scratch pointers left in the backing array pin nothing extra: timer
	// nodes live for the scheduler's lifetime through the free list.
	b.nodes = b.nodes[:0]
	return fired
}

// fireNode advances the clock to n and invokes its callback — the body of
// Step, shared with the thin-epoch fast path.
func (s *Scheduler) fireNode(n *timerNode) {
	if s.stepHook != nil {
		s.stepHook(s.now, n.at)
	}
	s.now = n.at
	s.executed++
	s.byKind[n.kind]++
	fn, fnArg, arg := n.fn, n.fnArg, n.arg
	s.release(n)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
}
