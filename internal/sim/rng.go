package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is self-contained so that simulation results are stable
// across Go releases, unlike math/rand whose stream is not guaranteed.
//
// Each component of a scenario gets its own RNG derived from the run seed,
// so adding randomness to one layer never perturbs the stream seen by
// another (common-random-numbers discipline for fair A/B trials).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent generator from this one, keyed by label, so
// that per-component streams are stable regardless of creation order.
func (r *RNG) Fork(label string) *RNG {
	h := r.state
	for _, c := range []byte(label) {
		h ^= uint64(c)
		h *= 0x100000001b3 // FNV-1a step keeps labels well mixed
	}
	return NewRNG(mix64(h))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Duration returns a uniform Time in [lo, hi).
func (r *RNG) Duration(lo, hi Time) Time {
	return Time(r.Range(float64(lo), float64(hi)))
}

// ExpFloat64 returns an exponentially distributed value with the given
// mean, via inversion. Useful for Poisson traffic generators.
func (r *RNG) ExpFloat64(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller, one branch).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
