package sim

import (
	"testing"
	"testing/quick"
)

// epochTrace is everything observable about an execution: which events
// fired in what order, every clock advance the step hook saw, and the
// scheduler's final profile. Two engines are equivalent iff their traces
// are identical.
type epochTrace struct {
	fired    []int
	hops     []Time // (from, to) pairs, flattened
	executed uint64
	now      Time
	pending  int
}

func (a epochTrace) equal(b epochTrace) bool {
	if a.executed != b.executed || a.now != b.now || a.pending != b.pending {
		return false
	}
	if len(a.fired) != len(b.fired) || len(a.hops) != len(b.hops) {
		return false
	}
	for i := range a.fired {
		if a.fired[i] != b.fired[i] {
			return false
		}
	}
	for i := range a.hops {
		if a.hops[i] != b.hops[i] {
			return false
		}
	}
	return true
}

// epochOp is one quick-generated scheduling operation. Delay is quantized
// hard so many events collide on the same timestamp; Chain makes the
// callback schedule a follow-up (possibly zero-delay, i.e. same epoch);
// CancelVictim makes the callback cancel an earlier-scheduled timer, which
// inside a fat epoch exercises cancellation of already-batched nodes.
type epochOp struct {
	Delay        uint8
	Chain        uint8
	CancelVictim uint8
}

// runEpochProgram executes the op program on one scheduler, driven either
// by the serial Step loop or by DrainEpoch, and returns the trace.
func runEpochProgram(ops []epochOp, drain bool) epochTrace {
	s := New()
	var tr epochTrace
	s.SetStepHook(func(from, to Time) { tr.hops = append(tr.hops, from, to) })
	timers := make([]Timer, len(ops))
	for i, o := range ops {
		i, o := i, o
		at := Time(o.Delay%16) / 4
		timers[i] = s.Schedule(at, func() {
			tr.fired = append(tr.fired, i)
			if o.CancelVictim != 0 {
				timers[int(o.CancelVictim)%len(ops)].Cancel()
			}
			if o.Chain%3 == 0 && o.Chain != 0 {
				chained := i + len(ops)
				s.Schedule(Time(o.Chain%4)/4, func() {
					tr.fired = append(tr.fired, chained)
				})
			}
		})
	}
	if drain {
		for s.DrainEpoch() > 0 {
		}
	} else {
		for s.Step() {
		}
	}
	tr.executed = s.Executed()
	tr.now = s.Now()
	tr.pending = s.Pending()
	return tr
}

// TestDrainEpochMatchesStepLoop is the epoch-engine property test: on
// arbitrary programs of colliding timestamps, same-timestamp chained
// reschedules, and mid-epoch cancellations, DrainEpoch must produce the
// exact execution trace of the serial pop loop — same firing order, same
// clock hops, same profile.
func TestDrainEpochMatchesStepLoop(t *testing.T) {
	f := func(ops []epochOp) bool {
		if len(ops) == 0 {
			return true
		}
		return runEpochProgram(ops, false).equal(runEpochProgram(ops, true))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainEpochCancelInsideBatch pins the semantics the property test
// relies on: a callback cancelling a later event in the same epoch
// prevents it from firing, exactly as the serial loop would, and the
// cancelled node's storage is recycled safely afterwards.
func TestDrainEpochCancelInsideBatch(t *testing.T) {
	s := New()
	var fired []string
	var victim Timer
	s.Schedule(1, func() {
		fired = append(fired, "killer")
		victim.Cancel()
	})
	victim = s.Schedule(1, func() { fired = append(fired, "victim") })
	s.Schedule(1, func() { fired = append(fired, "bystander") })
	if n := s.DrainEpoch(); n != 2 {
		t.Fatalf("DrainEpoch fired %d, want 2", n)
	}
	if len(fired) != 2 || fired[0] != "killer" || fired[1] != "bystander" {
		t.Fatalf("fired %v, want [killer bystander]", fired)
	}
	if victim.Active() {
		t.Fatal("cancelled batched timer still active")
	}
	// The recycled node must be a clean tenancy for the next event.
	ok := false
	s.Schedule(1, func() { ok = true })
	s.Run()
	if !ok {
		t.Fatal("node recycled from a batch-cancelled timer did not fire")
	}
}

// TestDrainEpochStopMidBatch checks Stop's contract under batching: events
// of the epoch not yet fired when a callback stops the scheduler remain
// pending, in order, and fire on a later resume.
func TestDrainEpochStopMidBatch(t *testing.T) {
	s := New()
	var fired []int
	for i := 0; i < 8; i++ {
		i := i
		s.Schedule(2, func() {
			fired = append(fired, i)
			if i == 2 {
				s.Stop()
			}
		})
	}
	s.DrainEpoch()
	if len(fired) != 3 {
		t.Fatalf("fired %d events before stop, want 3", len(fired))
	}
	if s.Pending() != 5 {
		t.Fatalf("pending after stop = %d, want 5", s.Pending())
	}
	// A fresh scheduler run (stopped is sticky) is out of scope; verify
	// the survivors kept their order by inspecting via the serial loop.
	s.stopped = false
	for s.Step() {
	}
	for i, id := range fired {
		if id != i {
			t.Fatalf("order broken across stop/resume: %v", fired)
		}
	}
	if len(fired) != 8 {
		t.Fatalf("fired %d total, want 8", len(fired))
	}
}

// TestDrainEpochSameTimestampChain checks that zero-delay reschedules made
// by epoch callbacks join the same epoch, after every already-batched
// event, in scheduling order — the serial FIFO contract.
func TestDrainEpochSameTimestampChain(t *testing.T) {
	s := New()
	var fired []int
	s.Schedule(1, func() {
		fired = append(fired, 0)
		s.Schedule(0, func() { fired = append(fired, 10) })
	})
	s.Schedule(1, func() { fired = append(fired, 1) })
	if n := s.DrainEpoch(); n != 3 {
		t.Fatalf("DrainEpoch fired %d, want 3", n)
	}
	want := []int{0, 1, 10}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if s.Now() != 1 {
		t.Fatalf("clock = %v, want 1", s.Now())
	}
}

// TestRunEpochsMatchesRunUntil drives the batched deadline loop against
// RunUntil on randomized programs cut at an arbitrary deadline.
func TestRunEpochsMatchesRunUntil(t *testing.T) {
	f := func(ops []epochOp, deadline8 uint8) bool {
		if len(ops) == 0 {
			return true
		}
		deadline := Time(deadline8%20) / 8
		run := func(batched bool) epochTrace {
			s := New()
			var tr epochTrace
			timers := make([]Timer, len(ops))
			for i, o := range ops {
				i, o := i, o
				timers[i] = s.Schedule(Time(o.Delay%16)/4, func() {
					tr.fired = append(tr.fired, i)
					if o.CancelVictim != 0 {
						timers[int(o.CancelVictim)%len(ops)].Cancel()
					}
				})
			}
			if batched {
				s.RunEpochs(deadline)
			} else {
				s.RunUntil(deadline)
			}
			tr.executed = s.Executed()
			tr.now = s.Now()
			tr.pending = s.Pending()
			return tr
		}
		return run(false).equal(run(true))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNextAtAdvanceTo covers the shard runtime's peek/advance primitives.
func TestNextAtAdvanceTo(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt reported an event on an empty scheduler")
	}
	s.Schedule(3, func() {})
	if at, ok := s.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = %v,%v want 3,true", at, ok)
	}
	s.AdvanceTo(2)
	if s.Now() != 2 {
		t.Fatalf("clock = %v after AdvanceTo(2)", s.Now())
	}
	s.AdvanceTo(1) // not ahead: no-op
	if s.Now() != 2 {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	s.AdvanceTo(5)
}
