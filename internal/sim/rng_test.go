package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGForkStability(t *testing.T) {
	// Forks with the same label from same-state parents must agree, and
	// different labels must diverge.
	p1, p2 := NewRNG(7), NewRNG(7)
	a, b := p1.Fork("mac"), p2.Fork("mac")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same-label forks disagree")
	}
	c := NewRNG(7).Fork("phy")
	d := NewRNG(7).Fork("mac")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different-label forks agree")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn badly skewed: value %d seen %d/10000 times", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(2.0)
		if v < 0 {
			t.Fatalf("exponential sample negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2.0", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Range out of [5,8): %v", v)
		}
	}
	d := r.Duration(1, 2)
	if d < 1 || d >= 2 {
		t.Fatalf("Duration out of [1,2): %v", d)
	}
}

// Property: Perm always returns a permutation of [0, n).
func TestRNGPermProperty(t *testing.T) {
	r := NewRNG(19)
	f := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
