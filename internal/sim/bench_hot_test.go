package sim

import "testing"

// BenchmarkSchedulerHotPath measures the steady-state schedule/fire loop
// with a realistically deep pending heap (512 outstanding events). This is
// the inner loop of every simulation run; it must not allocate.
func BenchmarkSchedulerHotPath(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 512; i++ {
		s.Schedule(Time(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(Microsecond, fn)
		s.Step()
	}
}

// BenchmarkSchedulerCancelReschedule measures the cancel-then-reschedule
// churn typical of MAC timers (ACK timeouts, NAV wakeups): every scheduled
// event is cancelled and replaced before it can fire.
func BenchmarkSchedulerCancelReschedule(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.Schedule(Microsecond, fn)
		tm.Cancel()
		s.Schedule(Microsecond, fn)
		s.Step()
	}
}
