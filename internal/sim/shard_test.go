package sim

import (
	"fmt"
	"testing"
)

// shardNode is one logical actor of the shard-equivalence workload: it
// lives on a shard, keeps a running hash of everything it processes, and
// forwards work to other actors through the conservative Send path.
type shardNode struct {
	id    int
	shard *Shard
	hash  uint64
	log   []shardRecord
}

type shardRecord struct {
	at  Time
	val uint64
}

func (n *shardNode) process(at Time, val uint64) {
	n.hash = n.hash*0x100000001b3 ^ val ^ uint64(len(n.log))
	n.log = append(n.log, shardRecord{at: at, val: val})
}

// runShardWorkload builds K logical nodes spread round-robin over S
// shards and runs a message-passing workload to the horizon: each node
// starts one token; on receipt a node processes the token and forwards it
// to a deterministic next hop with a sender-specific delay at or above
// the lookahead. Distinct per-sender delays keep every arrival timestamp
// at a given node unique, so a node's history is independent of how
// simultaneous deliveries would merge — the property that makes the
// history comparable across shard counts.
func runShardWorkload(shards, nodes int, horizon Time) []shardNode {
	const lookahead = Time(1e-3)
	g := NewShardGroup(ShardGroupConfig{
		Shards:    shards,
		Lookahead: lookahead,
		InboxCap:  8,
		Seed:      42,
	})
	ns := make([]shardNode, nodes)
	var deliver func(any)
	type token struct {
		dst int
		val uint64
	}
	deliver = func(a any) {
		tk := a.(*token)
		n := &ns[tk.dst]
		n.process(n.shard.Sched().Now(), tk.val)
		next := (tk.dst*7 + 3) % nodes
		delay := lookahead + Time(tk.dst%5)*Microsecond + Microsecond
		nv := tk.val*6364136223846793005 + 1442695040888963407
		n.shard.Send(ns[next].shard.ID(), delay, KindApp, deliver, &token{dst: next, val: nv})
	}
	for i := range ns {
		ns[i] = shardNode{id: i, shard: g.Shard(i % shards)}
	}
	for i := range ns {
		i := i
		ns[i].shard.Sched().ScheduleArgKind(KindApp, Time(i+1)*Microsecond, deliver,
			&token{dst: i, val: uint64(i) * 0x9e3779b97f4a7c15})
	}
	g.RunUntil(horizon)
	if g.Now() != horizon {
		panic("shard group did not reach the horizon")
	}
	return ns
}

// TestShardGroupShardCountInvariance is the conservative-engine
// equivalence test: the same logical workload produces identical per-node
// histories at 1, 2, 4, and 8 shards (run under -race in CI, so it also
// proves the barrier protocol is data-race-free).
func TestShardGroupShardCountInvariance(t *testing.T) {
	const nodes, horizon = 24, Time(0.05)
	ref := runShardWorkload(1, nodes, horizon)
	for _, s := range []int{2, 4, 8} {
		got := runShardWorkload(s, nodes, horizon)
		for i := range ref {
			if got[i].hash != ref[i].hash || len(got[i].log) != len(ref[i].log) {
				t.Fatalf("shards=%d: node %d history diverged (hash %x vs %x, %d vs %d events)",
					s, i, got[i].hash, ref[i].hash, len(got[i].log), len(ref[i].log))
			}
			for j := range ref[i].log {
				if got[i].log[j] != ref[i].log[j] {
					t.Fatalf("shards=%d: node %d event %d = %+v, want %+v",
						s, i, j, got[i].log[j], ref[i].log[j])
				}
			}
		}
	}
}

// TestShardGroupRepeatDeterminism re-runs the same multi-shard workload
// and demands identical histories: goroutine interleaving must not leak
// into execution order.
func TestShardGroupRepeatDeterminism(t *testing.T) {
	const nodes, horizon = 17, Time(0.03)
	a := runShardWorkload(4, nodes, horizon)
	b := runShardWorkload(4, nodes, horizon)
	for i := range a {
		if a[i].hash != b[i].hash {
			t.Fatalf("node %d history differs between identical runs", i)
		}
	}
}

// TestShardSendLookaheadContract pins the conservative guarantee: a
// cross-shard send below the lookahead is a protocol violation and must
// panic rather than silently corrupt causality.
func TestShardSendLookaheadContract(t *testing.T) {
	g := NewShardGroup(ShardGroupConfig{Shards: 2, Lookahead: Millisecond, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	g.Shard(0).Send(1, Microsecond, KindApp, func(any) {}, nil)
}

// TestShardGroupSingleShardIsSerialEngine checks the degenerate case: a
// one-shard group must execute exactly like a bare scheduler, including
// sub-lookahead... — there is no lookahead constraint to violate because
// Send schedules directly.
func TestShardGroupSingleShardIsSerialEngine(t *testing.T) {
	g := NewShardGroup(ShardGroupConfig{Shards: 1, Seed: 7})
	sh := g.Shard(0)
	var got []string
	sh.Sched().Schedule(2*Microsecond, func() { got = append(got, "b") })
	sh.Sched().Schedule(Microsecond, func() { got = append(got, "a") })
	// Send with any delay is legal on a single shard (lookahead is 0).
	sh.Send(0, 0, KindApp, func(any) { got = append(got, "c-sent") }, nil)
	g.RunUntil(Second)
	if fmt.Sprint(got) != "[c-sent a b]" {
		t.Fatalf("single-shard order = %v", got)
	}
	if g.Now() != Second {
		t.Fatalf("group now = %v", g.Now())
	}
}

// TestShardGroupStats sanity-checks the telemetry counters the scenario
// layer exports.
func TestShardGroupStats(t *testing.T) {
	runAndStats := func(shards int) []ShardStats {
		const lookahead = Millisecond
		g := NewShardGroup(ShardGroupConfig{Shards: shards, Lookahead: lookahead, InboxCap: 2, Seed: 3})
		var ping func(any)
		count := 0
		ping = func(a any) {
			src := a.(int)
			count++
			if count < 20 {
				dst := (src + 1) % shards
				g.Shard(src).Send(dst, lookahead, KindApp, ping, dst)
			}
		}
		g.Shard(0).Sched().ScheduleArgKind(KindApp, Microsecond, ping, 0)
		g.RunUntil(Second)
		return g.Stats()
	}
	st := runAndStats(2)
	var sent, recv, executed uint64
	for _, s := range st {
		sent += s.CrossSent
		recv += s.CrossRecv
		executed += s.Executed
	}
	if sent != 19 || recv != 19 {
		t.Fatalf("cross-shard sent/recv = %d/%d, want 19/19", sent, recv)
	}
	if executed != 20 {
		t.Fatalf("executed = %d, want 20", executed)
	}
	if st[0].Windows == 0 || st[1].Windows == 0 {
		t.Fatal("window counters did not advance")
	}
}
