package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

// TestSchedulerCancelRescheduleStorm drives the free list hard: every
// event is cancelled and replaced several times before one finally fires,
// at every heap depth from empty to deep. Exactly the survivors may fire,
// in FIFO order within each timestamp.
func TestSchedulerCancelRescheduleStorm(t *testing.T) {
	s := New()
	var fired []int
	for depth := 0; depth < 64; depth++ {
		id := depth
		var tm Timer
		for round := 0; round < 5; round++ {
			tm.Cancel()
			tm = s.Schedule(Time(depth%7)+1, func() { fired = append(fired, id) })
		}
		// Keep every 3rd timer; storm-cancel the rest.
		if depth%3 != 0 {
			tm.Cancel()
			if tm.Active() {
				t.Fatalf("timer %d active after cancel", depth)
			}
		}
	}
	s.Run()
	want := 0
	for d := 0; d < 64; d++ {
		if d%3 == 0 {
			want++
		}
	}
	if len(fired) != want {
		t.Fatalf("fired %d events, want %d survivors", len(fired), want)
	}
	seen := map[int]bool{}
	for _, id := range fired {
		if id%3 != 0 {
			t.Fatalf("cancelled timer %d fired", id)
		}
		if seen[id] {
			t.Fatalf("timer %d fired twice", id)
		}
		seen[id] = true
	}
}

// TestSchedulerStaleHandleInert pins the recycling contract: a handle kept
// past its event's firing stays inert even after the underlying node has
// been reused for a new event, so a stale Cancel can never kill a stranger.
func TestSchedulerStaleHandleInert(t *testing.T) {
	s := New()
	stale := s.Schedule(1, func() {})
	s.Run() // fires; node returns to the free list
	if stale.Active() {
		t.Fatal("handle still active after its event fired")
	}

	fired := false
	fresh := s.Schedule(1, func() { fired = true }) // reuses the node
	stale.Cancel()                                  // must not touch the new tenant
	if !fresh.Active() {
		t.Fatal("stale Cancel deactivated an unrelated timer")
	}
	s.Run()
	if !fired {
		t.Fatal("stale Cancel prevented an unrelated timer from firing")
	}
	if stale.When() != 1 {
		t.Fatalf("stale When = %v, want the original deadline 1", stale.When())
	}
}

// TestSchedulerSelfCancelDuringFire checks that a callback cancelling its
// own (already firing) timer is a harmless no-op.
func TestSchedulerSelfCancelDuringFire(t *testing.T) {
	s := New()
	var tm Timer
	count := 0
	tm = s.Schedule(1, func() {
		count++
		tm.Cancel()
	})
	s.Schedule(2, func() { count++ })
	s.Run()
	if count != 2 {
		t.Fatalf("fired %d events, want 2", count)
	}
}

// TestSchedulerFIFOTieBreakAfterRecycling re-checks the FIFO guarantee at
// equal timestamps once nodes have been through the free list: recycled
// storage must not leak old sequence numbers into the ordering.
func TestSchedulerFIFOTieBreakAfterRecycling(t *testing.T) {
	s := New()
	// Warm the free list with churn.
	for i := 0; i < 32; i++ {
		s.Schedule(Microsecond, func() {})
		s.Step()
	}
	var got []int
	for i := 0; i < 32; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	// Interleave cancels to force mid-heap removals between equal keys.
	for i := 0; i < 8; i++ {
		s.Schedule(5, func() {}).Cancel()
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events reordered after recycling: %v", got)
		}
	}
}

// refHeap is a container/heap reference implementation with the same
// (time, seq) ordering contract the scheduler documents.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// TestSchedulerMatchesReferenceHeap is the migration property test: for
// arbitrary interleavings of schedule and cancel operations, the inlined
// heap pops events in exactly the order the container/heap implementation
// it replaced would have.
func TestSchedulerMatchesReferenceHeap(t *testing.T) {
	type op struct {
		Delay    uint16
		CancelAt uint8 // cancel the op at index %len when nonzero
	}
	f := func(ops []op) bool {
		s := New()
		ref := &refHeap{}
		cancelledRef := map[int]bool{}
		var seq uint64
		var gotOrder []int
		timers := make([]Timer, len(ops))
		for i, o := range ops {
			i := i
			dt := Time(o.Delay) / 50
			timers[i] = s.Schedule(dt, func() { gotOrder = append(gotOrder, i) })
			heap.Push(ref, refEvent{at: dt, seq: seq, id: i})
			seq++
			if o.CancelAt != 0 && len(ops) > 0 {
				victim := int(o.CancelAt) % (i + 1)
				timers[victim].Cancel()
				cancelledRef[victim] = true
			}
		}
		var wantOrder []int
		for ref.Len() > 0 {
			e := heap.Pop(ref).(refEvent)
			if !cancelledRef[e.id] {
				wantOrder = append(wantOrder, e.id)
			}
		}
		s.Run()
		if len(gotOrder) != len(wantOrder) {
			return false
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerArgCallback covers the closure-free scheduling variant used
// by the PHY hot path.
func TestSchedulerArgCallback(t *testing.T) {
	s := New()
	var got []any
	fn := func(a any) { got = append(got, a) }
	s.ScheduleArgKind(KindPHY, 2, fn, "second")
	s.ScheduleArgKind(KindPHY, 1, fn, "first")
	tm := s.ScheduleArgKind(KindPHY, 3, fn, "cancelled")
	tm.Cancel()
	s.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("arg callbacks = %v", got)
	}
	if by := s.ExecutedByKind(); by[KindPHY] != 2 {
		t.Fatalf("KindPHY executed = %d, want 2", by[KindPHY])
	}

	defer func() {
		if recover() == nil {
			t.Fatal("nil arg callback did not panic")
		}
	}()
	s.ScheduleArgKind(KindPHY, 1, nil, "x")
}
