package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSchedulerZeroValueUsable(t *testing.T) {
	var s Scheduler
	fired := false
	s.Schedule(1, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if s.Now() != 1 {
		t.Fatalf("clock = %v, want 1s", s.Now())
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events reordered: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested schedule times = %v, want [1 2]", times)
	}
}

func TestSchedulerZeroDelayRunsAfterCurrentTimeEvents(t *testing.T) {
	s := New()
	var got []string
	s.Schedule(1, func() {
		s.Schedule(0, func() { got = append(got, "zero") })
		got = append(got, "first")
	})
	s.Schedule(1, func() { got = append(got, "second") })
	s.Run()
	want := []string{"first", "second", "zero"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(1, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	tm.Cancel() // idempotent
}

func TestSchedulerCancelZeroValue(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	if tm.Active() {
		t.Fatal("zero-value timer cannot be active")
	}
}

func TestSchedulerCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(2, func() { fired = true })
	s.Schedule(1, func() { tm.Cancel() })
	s.Run()
	if fired {
		t.Fatal("timer cancelled at t=1 still fired at t=2")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5 (advanced to deadline)", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four after second RunUntil", fired)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := New()
	count := 0
	s.Schedule(1, func() { count++; s.Stop() })
	s.Schedule(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("events after Stop fired; count = %d", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestSchedulerPanicsOnNegativeDelay(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestSchedulerPanicsOnNaN(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN delay did not panic")
		}
	}()
	s.Schedule(Time(math.NaN()), func() {})
}

func TestSchedulerPendingAndExecuted(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", s.Pending())
	}
	if s.Executed() != 2 {
		t.Fatalf("Executed = %d, want 2", s.Executed())
	}
}

// Property: events always fire in non-decreasing time order, whatever the
// insertion order.
func TestSchedulerMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			dt := Time(d) / 100
			s.Schedule(dt, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with interleaved schedule/cancel operations, exactly the
// non-cancelled events fire.
func TestSchedulerCancelProperty(t *testing.T) {
	f := func(ops []bool) bool {
		s := New()
		fired := map[int]bool{}
		var timers []Timer
		for i, cancel := range ops {
			i := i
			tm := s.Schedule(Time(i%7)+1, func() { fired[i] = true })
			timers = append(timers, tm)
			if cancel {
				tm.Cancel()
			}
		}
		s.Run()
		for i, cancel := range ops {
			if cancel == fired[i] {
				return false
			}
			if timers[i].Active() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1.5).String(); got != "1.500000s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := Time(2.5).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(1, func() {})
		s.Step()
	}
}

func TestCancelRemovesFromHeap(t *testing.T) {
	s := New()
	var timers []Timer
	for i := 0; i < 8; i++ {
		timers = append(timers, s.Schedule(Time(i+1), func() {}))
	}
	if s.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8", s.Pending())
	}
	timers[0].Cancel()
	timers[3].Cancel()
	timers[7].Cancel()
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d after 3 cancels, want 5 (cancel must remove eagerly)", s.Pending())
	}
	s.Run()
	if s.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", s.Executed())
	}
}

func TestExecutedByKind(t *testing.T) {
	s := New()
	s.ScheduleKind(KindMAC, 1, func() {})
	s.ScheduleKind(KindMAC, 2, func() {})
	s.ScheduleKind(KindPHY, 3, func() {})
	s.AtKind(KindTransport, 4, func() {})
	s.Schedule(5, func() {}) // untagged -> KindOther
	s.Run()
	by := s.ExecutedByKind()
	if by[KindMAC] != 2 || by[KindPHY] != 1 || by[KindTransport] != 1 || by[KindOther] != 1 {
		t.Fatalf("ExecutedByKind = %v", by)
	}
	if KindMAC.String() != "mac" || KindOther.String() != "other" {
		t.Fatalf("kind names: %v %v", KindMAC, KindOther)
	}
}

func TestMaxPending(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i+1), func() {})
	}
	if s.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d, want 5", s.MaxPending())
	}
	s.Run()
	if s.MaxPending() != 5 {
		t.Fatalf("MaxPending after run = %d, want 5 (high-water, not current)", s.MaxPending())
	}
}

func TestPostponeBasics(t *testing.T) {
	s := New()
	var at Time
	tm := s.Schedule(1, func() { at = s.Now() })
	tm2, ok := tm.Postpone(3)
	if !ok {
		t.Fatal("Postpone of a pending timer declined")
	}
	if !tm.Active() || !tm2.Active() {
		t.Fatal("both handles should remain active after Postpone")
	}
	if tm2.When() != 3 {
		t.Fatalf("When = %v, want 3", tm2.When())
	}
	if _, ok := tm2.Postpone(2); ok {
		t.Fatal("Postpone to an earlier deadline should decline")
	}
	s.Run()
	if at != 3 {
		t.Fatalf("fired at %v, want 3", at)
	}
	if _, ok := tm2.Postpone(5); ok {
		t.Fatal("Postpone of a fired timer should decline")
	}
	var zero Timer
	if _, ok := zero.Postpone(5); ok {
		t.Fatal("Postpone of a zero-value timer should decline")
	}
}

// TestPostponeMatchesCancelReschedule pins Postpone's contract: combined
// with its documented fallback, it produces exactly the execution that
// Cancel plus re-scheduling the same callback at the new time would — on
// randomized programs, under both the serial Step loop and the batched
// epoch drain (where mid-batch nodes force the fallback path).
func TestPostponeMatchesCancelReschedule(t *testing.T) {
	type ppOp struct {
		Delay  uint8
		Victim uint8
		Extend uint8
	}
	f := func(ops []ppOp, batched bool) bool {
		if len(ops) == 0 {
			return true
		}
		run := func(usePostpone bool) epochTrace {
			s := New()
			var tr epochTrace
			timers := make([]Timer, len(ops))
			fns := make([]func(), len(ops))
			for i, o := range ops {
				i, o := i, o
				fns[i] = func() {
					tr.fired = append(tr.fired, i)
					v := int(o.Victim) % len(ops)
					vt := timers[v]
					if !vt.Active() {
						return
					}
					at := vt.When() + Time(o.Extend%8)/8
					if usePostpone {
						if tm, ok := vt.Postpone(at); ok {
							timers[v] = tm
							return
						}
					}
					vt.Cancel()
					timers[v] = s.At(at, fns[v])
				}
				timers[i] = s.Schedule(Time(o.Delay%16)/4, fns[i])
			}
			if batched {
				for s.DrainEpoch() > 0 {
				}
			} else {
				s.Run()
			}
			tr.executed = s.Executed()
			tr.now = s.Now()
			tr.pending = s.Pending()
			return tr
		}
		return run(false).equal(run(true))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
