package sim

import "testing"

// The epoch benchmarks compare DrainEpoch against the serial Step loop on
// the two regimes that matter: fat epochs (many events per timestamp —
// TDMA slot boundaries, phase-aligned beacons, shard windows), where the
// batch peel is the point, and thin epochs (every timestamp unique — the
// asynchronous 802.11 arrival stream), where DrainEpoch must not regress
// past its single-node fast path.

// benchLoad schedules waves×perWave events; each callback reschedules
// itself `rounds` times so the heap stays at steady-state occupancy, the
// regime the dense scenarios run in.
func benchLoad(s *Scheduler, waves, perWave, rounds int, spread Time) {
	var fn func(any)
	fn = func(a any) {
		r := a.(int)
		if r > 0 {
			s.ScheduleArgKind(KindPHY, Time(1)+spread*Time(s.Executed()%7), fn, r-1)
		}
	}
	for w := 0; w < waves; w++ {
		for i := 0; i < perWave; i++ {
			s.ScheduleArgKind(KindPHY, Time(w)+spread*Time(i%7), fn, rounds)
		}
	}
}

func runEpochBench(b *testing.B, perWave int, spread Time) {
	b.Run("step", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New()
			benchLoad(s, 8, perWave, 6, spread)
			for s.Step() {
			}
		}
	})
	b.Run("drain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New()
			benchLoad(s, 8, perWave, 6, spread)
			for s.DrainEpoch() > 0 {
			}
		}
	})
}

// BenchmarkEpochFat: 512 events per timestamp, all colliding.
func BenchmarkEpochFat(b *testing.B) { runEpochBench(b, 512, 0) }

// BenchmarkEpochMixed: clusters of ~73 events per timestamp.
func BenchmarkEpochMixed(b *testing.B) { runEpochBench(b, 512, Microsecond) }

// BenchmarkEpochThin: effectively unique timestamps — the fast path.
func BenchmarkEpochThin(b *testing.B) { runEpochBench(b, 512, 0.01) }
