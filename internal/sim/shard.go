package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"
)

// Conservative sharded execution: a ShardGroup partitions a simulation
// into S domains, each with its own Scheduler and RNG stream, and runs
// them in parallel under the classic time-window synchronisation protocol.
// The group repeatedly finds the globally earliest pending event at T0 and
// lets every shard execute its events in the window [T0, T0+lookahead)
// concurrently; because any cross-shard interaction must be sent with at
// least the lookahead's delay, nothing a shard does inside the window can
// affect another shard within it. At the window barrier the exchanged
// events are merged into their target schedulers in a deterministic order
// — (timestamp, source shard, source sequence) — so a run's execution is a
// pure function of the configuration regardless of how goroutines
// interleave. With one shard the group degenerates to the plain serial
// engine: no goroutines, no barriers, no windows, bit-for-bit the
// behaviour of calling Scheduler.RunUntil directly.
//
// The lookahead is the protocol's correctness contract, enforced at the
// API: for radio propagation it is the minimum propagation delay plus the
// minimum frame airtime — the soonest a transmission decided in one region
// can alter what a receiver in another region observes.

// CrossEvent is one event routed between shards: fn(arg) tagged kind, to
// fire at absolute time at on the destination shard.
type CrossEvent struct {
	At   Time
	Kind EventKind
	Fn   func(any)
	Arg  any
}

// crossMsg is a CrossEvent stamped with its deterministic merge key.
type crossMsg struct {
	CrossEvent
	src    int
	srcSeq uint64
}

// inbox is a shard's bounded cross-shard receive queue. The configured
// capacity is preallocated so steady-state exchange is allocation-free;
// traffic beyond it still arrives (dropping simulation events is never
// acceptable) but grows the slice and is counted, so a miscalibrated
// bound is visible in the stats rather than silently expensive.
type inbox struct {
	mu       sync.Mutex
	msgs     []crossMsg
	overflow uint64
	high     int
}

func (ib *inbox) put(m crossMsg) {
	ib.mu.Lock()
	if len(ib.msgs) == cap(ib.msgs) {
		ib.overflow++
	}
	ib.msgs = append(ib.msgs, m)
	if len(ib.msgs) > ib.high {
		ib.high = len(ib.msgs)
	}
	ib.mu.Unlock()
}

// ShardStats is one shard's execution profile, for telemetry.
type ShardStats struct {
	Executed       uint64 // events fired by the shard's scheduler
	MaxPending     int    // shard heap high-water mark
	Windows        uint64 // synchronisation windows participated in
	BarrierWaits   uint64 // windows in which the shard had nothing to run
	CrossSent      uint64 // events sent to other shards
	CrossRecv      uint64 // events received from other shards
	InboxHighWater int    // receive-queue occupancy high-water mark
	InboxOverflow  uint64 // receives beyond the configured inbox bound
}

// Shard is one domain of a ShardGroup: a scheduler, an RNG stream forked
// from the group seed by shard label (so streams are stable no matter how
// radios are assigned), and a cross-shard mailbox.
type Shard struct {
	id    int
	group *ShardGroup
	sched *Scheduler
	rng   *RNG
	inbox inbox

	sendSeq      uint64 // numbers outgoing messages for the barrier merge
	windows      uint64
	barrierWaits uint64
	crossSent    uint64
	crossRecv    uint64
}

// ID returns the shard's index within its group.
func (sh *Shard) ID() int { return sh.id }

// Sched returns the shard's scheduler. Scheduling on it is only legal
// from the shard's own events (or between RunUntil calls).
func (sh *Shard) Sched() *Scheduler { return sh.sched }

// RNG returns the shard's random stream.
func (sh *Shard) RNG() *RNG { return sh.rng }

// Send routes an event to another shard (or this one), to fire after
// delay. The conservative contract is enforced here: delay must be at
// least the group's lookahead, otherwise the destination shard might
// already have executed past the delivery time inside the current window.
// In a single-shard group Send schedules directly, preserving the serial
// engine's exact behaviour.
func (sh *Shard) Send(dst int, delay Time, kind EventKind, fn func(any), arg any) {
	g := sh.group
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard Send with delay %v below lookahead %v", delay, g.lookahead))
	}
	if len(g.shards) == 1 {
		sh.sched.ScheduleArgKind(kind, delay, fn, arg)
		return
	}
	sh.crossSent++
	seq := sh.sendSeq
	sh.sendSeq++
	g.shards[dst].inbox.put(crossMsg{
		CrossEvent: CrossEvent{At: sh.sched.Now() + delay, Kind: kind, Fn: fn, Arg: arg},
		src:        sh.id,
		srcSeq:     seq,
	})
}

// ShardGroupConfig configures NewShardGroup.
type ShardGroupConfig struct {
	Shards    int    // number of domains; 1 is the serial engine
	Lookahead Time   // minimum cross-shard latency; must be > 0 for Shards > 1
	InboxCap  int    // per-shard inbox preallocation (default 1024)
	Seed      uint64 // root of the per-shard RNG streams
}

// ShardGroup coordinates conservative parallel execution across shards.
type ShardGroup struct {
	shards    []*Shard
	lookahead Time
	now       Time
}

// NewShardGroup builds a group of cfg.Shards domains.
func NewShardGroup(cfg ShardGroupConfig) *ShardGroup {
	if cfg.Shards < 1 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if cfg.Shards > 1 && cfg.Lookahead <= 0 {
		panic("sim: multi-shard ShardGroup needs a positive lookahead")
	}
	cap := cfg.InboxCap
	if cap <= 0 {
		cap = 1024
	}
	g := &ShardGroup{lookahead: cfg.Lookahead}
	root := NewRNG(cfg.Seed)
	for i := 0; i < cfg.Shards; i++ {
		sh := &Shard{
			id:    i,
			group: g,
			sched: New(),
			rng:   root.Fork(fmt.Sprintf("shard-%d", i)),
		}
		sh.inbox.msgs = make([]crossMsg, 0, cap)
		g.shards = append(g.shards, sh)
	}
	return g
}

// Shards returns the number of domains.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns domain i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Lookahead returns the group's conservative latency bound.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Now returns the group's committed horizon: every shard has executed all
// its events strictly before this time.
func (g *ShardGroup) Now() Time { return g.now }

// Stats returns each shard's execution profile. Call between RunUntil
// invocations.
func (g *ShardGroup) Stats() []ShardStats {
	out := make([]ShardStats, len(g.shards))
	for i, sh := range g.shards {
		out[i] = ShardStats{
			Executed:       sh.sched.Executed(),
			MaxPending:     sh.sched.MaxPending(),
			Windows:        sh.windows,
			BarrierWaits:   sh.barrierWaits,
			CrossSent:      sh.crossSent,
			CrossRecv:      sh.crossRecv,
			InboxHighWater: sh.inbox.high,
			InboxOverflow:  sh.inbox.overflow,
		}
	}
	return out
}

// RunUntil executes every shard's events with timestamps at or before
// deadline and advances all clocks to the deadline. Multi-shard groups
// run one goroutine per shard inside each synchronisation window.
func (g *ShardGroup) RunUntil(deadline Time) {
	if len(g.shards) == 1 {
		g.shards[0].sched.RunUntil(deadline)
		if deadline > g.now {
			g.now = deadline
		}
		return
	}

	type windowSpec struct {
		end  Time // exclusive bound
		incl Time // inclusive bound (the deadline on the last window)
	}
	start := make([]chan windowSpec, len(g.shards))
	var wg sync.WaitGroup
	var done sync.WaitGroup
	for i, sh := range g.shards {
		start[i] = make(chan windowSpec)
		wg.Add(1)
		go func(sh *Shard, in <-chan windowSpec) {
			defer wg.Done()
			for w := range in {
				sh.runWindow(w.end, w.incl)
				done.Done()
			}
		}(sh, start[i])
	}

	for {
		t0 := Forever
		stopped := false
		for _, sh := range g.shards {
			if at, ok := sh.sched.NextAt(); ok && at < t0 {
				t0 = at
			}
			if sh.sched.Stopped() {
				stopped = true
			}
		}
		if stopped || t0 > deadline {
			break
		}
		end := t0 + g.lookahead
		if math.IsInf(float64(end), 0) || end > Forever {
			end = Forever
		}
		spec := windowSpec{end: end, incl: -1}
		if end > deadline {
			// Final window: include events exactly at the deadline.
			spec = windowSpec{end: deadline, incl: deadline}
		}
		done.Add(len(g.shards))
		for _, ch := range start {
			ch <- spec
		}
		done.Wait()
		g.mergeInboxes()
		limit := spec.end
		if spec.incl >= 0 {
			limit = spec.incl
		}
		for _, sh := range g.shards {
			if !sh.sched.Stopped() {
				sh.sched.AdvanceTo(limit)
			}
		}
	}
	for _, ch := range start {
		close(ch)
	}
	wg.Wait()

	for _, sh := range g.shards {
		if !sh.sched.Stopped() && sh.sched.now < deadline {
			sh.sched.now = deadline
		}
	}
	if deadline > g.now {
		g.now = deadline
	}
}

// runWindow executes the shard's events with at < end (plus at == incl
// when incl >= 0) using the epoch drain, and keeps the barrier statistics.
func (sh *Shard) runWindow(end, incl Time) {
	sc := sh.sched
	sh.windows++
	fired := 0
	for {
		at, ok := sc.NextAt()
		if !ok || sc.Stopped() || at > incl && at >= end {
			break
		}
		fired += sc.DrainEpoch()
	}
	if fired == 0 {
		sh.barrierWaits++
	}
}

// mergeInboxes drains every shard's mailbox into its scheduler in the
// deterministic (timestamp, source shard, source sequence) order. Runs on
// the coordinator between windows, so no locks are contended.
func (g *ShardGroup) mergeInboxes() {
	for _, sh := range g.shards {
		ib := &sh.inbox
		ib.mu.Lock()
		msgs := ib.msgs
		ib.mu.Unlock()
		if len(msgs) == 0 {
			continue
		}
		slices.SortFunc(msgs, func(a, b crossMsg) int {
			switch {
			case a.At != b.At:
				if a.At < b.At {
					return -1
				}
				return 1
			case a.src != b.src:
				return a.src - b.src
			case a.srcSeq < b.srcSeq:
				return -1
			default:
				return 1
			}
		})
		for i := range msgs {
			m := &msgs[i]
			sh.sched.AtArgKind(m.Kind, m.At, m.Fn, m.Arg)
			m.Fn, m.Arg = nil, nil
		}
		sh.crossRecv += uint64(len(msgs))
		ib.mu.Lock()
		ib.msgs = ib.msgs[:0]
		ib.mu.Unlock()
	}
}
