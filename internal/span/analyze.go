// Latency-breakdown analyzer: folds a run's span events into per-packet
// and aggregate delay components — queueing (interface-queue residency),
// contention (MAC slot wait or DIFS/backoff), airtime (PHY transmission),
// retransmit (inter-attempt gaps at one node), rerouting (AODV discovery
// buffering) — the mechanisms behind the paper's aggregate one-way delay
// curves. Residual time (propagation, processing seams) lands in Other.
package span

import (
	"fmt"
	"strings"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Breakdown decomposes one delivered packet's end-to-end latency. The
// components sum to at most Total; Other is the remainder (propagation and
// inter-layer handoff).
type Breakdown struct {
	UID        uint64
	Type       packet.Type
	Total      sim.Time // first emit to first delivery
	Queueing   sim.Time // interface-queue residency across all hops
	Contention sim.Time // MAC wait: TDMA slot wait or DCF DIFS+backoff
	Airtime    sim.Time // transmission time on the medium
	Retransmit sim.Time // gaps between successive attempts at one node
	Rerouting  sim.Time // AODV discovery/repair buffering
	Other      sim.Time // residual: propagation, processing
}

// acc is the per-UID analyzer state machine, driven in event order.
type acc struct {
	b         Breakdown
	order     int
	emitSeen  bool
	delivered bool

	enqAt      sim.Time
	haveEnq    bool
	readyAt    sim.Time
	haveReady  bool
	bufAt      sim.Time
	haveBuf    bool
	lastTxEnd  sim.Time
	lastTxNode packet.NodeID
	haveLastTx bool
}

func (a *acc) step(e Event) {
	if a.delivered {
		return
	}
	switch e.Op {
	case OpEmit:
		if !a.emitSeen {
			a.emitSeen = true
			a.b.Total = -e.At // finalized on delivery
			a.b.Type = e.Type
		}
	case OpEnq:
		a.enqAt, a.haveEnq = e.At, true
	case OpMacWait:
		if a.haveEnq {
			a.b.Queueing += e.At - a.enqAt
			a.haveEnq = false
		}
		a.readyAt, a.haveReady = e.At, true
	case OpDeq:
		if a.haveEnq {
			a.b.Queueing += e.At - a.enqAt
			a.haveEnq = false
		}
		// With a MAC that signals head-of-line readiness (TDMA's Poke),
		// the wait clock is already running; keep the earlier mark so the
		// slot wait counts as contention.
		if !a.haveReady {
			a.readyAt, a.haveReady = e.At, true
		}
	case OpTx:
		if e.Cause != CauseNone {
			return // suppressed transmit (outage): no airtime
		}
		if a.haveReady {
			a.b.Contention += e.At - a.readyAt
			a.haveReady = false
		} else if a.haveLastTx && a.lastTxNode == e.Node && e.At > a.lastTxEnd {
			a.b.Retransmit += e.At - a.lastTxEnd
		}
		a.b.Airtime += e.Dur
		a.lastTxEnd, a.lastTxNode, a.haveLastTx = e.At+e.Dur, e.Node, true
	case OpRouteBuf:
		a.bufAt, a.haveBuf = e.At, true
	case OpRouteTx:
		if a.haveBuf {
			a.b.Rerouting += e.At - a.bufAt
			a.haveBuf = false
		}
	case OpDeliver:
		if a.emitSeen {
			a.b.Total += e.At
			a.delivered = true
		}
	}
}

// Analyze folds events (in recorded order) into one Breakdown per
// delivered packet: UIDs with both an emit and a delivery, in first-emit
// order. Other is the clamped residual, so components never report more
// than the measured total.
func Analyze(events []Event) []Breakdown {
	accs := make(map[uint64]*acc)
	var uids []uint64
	for _, e := range events {
		a := accs[e.UID]
		if a == nil {
			a = &acc{b: Breakdown{UID: e.UID}}
			accs[e.UID] = a
			uids = append(uids, e.UID)
		}
		a.step(e)
	}
	var out []Breakdown
	for _, uid := range uids {
		a := accs[uid]
		if !a.emitSeen || !a.delivered {
			continue
		}
		b := a.b
		accounted := b.Queueing + b.Contention + b.Airtime + b.Retransmit + b.Rerouting
		b.Other = b.Total - accounted
		if b.Other < 0 {
			b.Other = 0
		}
		out = append(out, b)
	}
	return out
}

// CriticalPath returns uid's events from its first emit through its first
// delivery, inclusive — the EBL delay chain for one notification.
func CriticalPath(events []Event, uid uint64) []Event {
	var out []Event
	started := false
	for _, e := range events {
		if e.UID != uid {
			continue
		}
		if !started {
			if e.Op != OpEmit {
				continue
			}
			started = true
		}
		out = append(out, e)
		if e.Op == OpDeliver {
			break
		}
	}
	if n := len(out); n == 0 || out[n-1].Op != OpDeliver {
		return nil
	}
	return out
}

// Aggregate is the mean latency decomposition over a set of delivered
// packets.
type Aggregate struct {
	N          int
	Total      sim.Time
	Queueing   sim.Time
	Contention sim.Time
	Airtime    sim.Time
	Retransmit sim.Time
	Rerouting  sim.Time
	Other      sim.Time
}

// Summarize averages breakdowns into one aggregate. An empty input returns
// the zero aggregate.
func Summarize(bs []Breakdown) Aggregate {
	var a Aggregate
	if len(bs) == 0 {
		return a
	}
	for _, b := range bs {
		a.Total += b.Total
		a.Queueing += b.Queueing
		a.Contention += b.Contention
		a.Airtime += b.Airtime
		a.Retransmit += b.Retransmit
		a.Rerouting += b.Rerouting
		a.Other += b.Other
	}
	n := sim.Time(len(bs))
	a.N = len(bs)
	a.Total /= n
	a.Queueing /= n
	a.Contention /= n
	a.Airtime /= n
	a.Retransmit /= n
	a.Rerouting /= n
	a.Other /= n
	return a
}

// componentNames orders the table rows of the format helpers.
var componentNames = [...]string{
	"queueing", "contention", "airtime", "retransmit", "rerouting", "other", "total",
}

func (a Aggregate) components() [7]sim.Time {
	return [7]sim.Time{
		a.Queueing, a.Contention, a.Airtime, a.Retransmit, a.Rerouting, a.Other, a.Total,
	}
}

// FormatComparison renders aggregates side by side as an aligned table of
// mean per-component delays in milliseconds, one labelled column per
// aggregate — the 802.11-vs-TDMA decomposition of the paper's scenario.
func FormatComparison(labels []string, aggs []Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "component")
	for _, l := range labels {
		fmt.Fprintf(&b, " %16s", l+" (ms)")
	}
	b.WriteByte('\n')
	for i, name := range componentNames {
		fmt.Fprintf(&b, "%-12s", name)
		for _, a := range aggs {
			fmt.Fprintf(&b, " %16.3f", float64(a.components()[i])*1e3)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "packets")
	for _, a := range aggs {
		fmt.Fprintf(&b, " %16d", a.N)
	}
	b.WriteByte('\n')
	return b.String()
}
