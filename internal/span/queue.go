// Queue instrumentation: a decorator recording enqueue/dequeue events and
// a DropFn adapter for the interface-queue drop reasons. Both exist only
// when a run is armed — the disarmed path constructs the bare queue with a
// nil DropFn, so it pays nothing.
package span

import (
	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
)

// tappedQueue wraps a queue.Queue, recording OpEnq on every accepted
// enqueue and OpDeq on every dequeue.
type tappedQueue struct {
	queue.Queue
	rec  *Recorder
	node packet.NodeID
}

// TapQueue returns q wrapped so that accepted enqueues and dequeues are
// recorded against node. With a nil recorder it returns q unchanged, so
// callers can wrap unconditionally.
func TapQueue(q queue.Queue, rec *Recorder, node packet.NodeID) queue.Queue {
	if rec == nil {
		return q
	}
	return &tappedQueue{Queue: q, rec: rec, node: node}
}

// Enqueue implements queue.Queue. Rejections are not recorded here — the
// queue's own DropFn (IfqDropFn) reports them with the precise reason.
func (t *tappedQueue) Enqueue(p *packet.Packet) bool {
	ok := t.Queue.Enqueue(p)
	if ok {
		t.rec.Record(OpEnq, CauseNone, t.node, p)
	}
	return ok
}

// Dequeue implements queue.Queue.
func (t *tappedQueue) Dequeue() *packet.Packet {
	p := t.Queue.Dequeue()
	if p != nil {
		t.rec.Record(OpDeq, CauseNone, t.node, p)
	}
	return p
}

// IfqDropFn returns a queue.DropFn recording OpIfqDrop events against node,
// mapping each queue drop reason to its span cause. With a nil recorder it
// returns nil, preserving the queue's zero-cost silent-discard path.
func (r *Recorder) IfqDropFn(node packet.NodeID) queue.DropFn {
	if r == nil {
		return nil
	}
	return func(p *packet.Packet, reason queue.DropReason) {
		cause := CauseIfqFull
		switch reason {
		case queue.DropEvicted:
			cause = CauseIfqEvict
		case queue.DropEarly:
			cause = CauseRedEarly
		}
		r.Record(OpIfqDrop, cause, node, p)
	}
}
