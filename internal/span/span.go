// Package span implements deterministic, simulated-time causal tracing:
// every datagram is followed through its full lifecycle — application emit,
// interface-queue enqueue/dequeue, MAC contention or slot wait, PHY
// transmission and airtime, reception (or its loss cause), network-layer
// and AODV hops, and final delivery — as a flat sequence of events keyed by
// packet UID. The per-UID event sequence is the packet's span; the analyzer
// (analyze.go) folds it into the latency components the paper's delay
// curves aggregate away (queueing vs contention vs airtime vs retransmit vs
// rerouting), and the exporters (export.go) emit NDJSON and Chrome
// trace-event JSON.
//
// The recorder follows the repo's disabled-state discipline: a nil
// *Recorder is the disarmed state, every method is nil-receiver-safe, and
// instrumented hot paths pay exactly one nil comparison when tracing is
// off. Because each run owns its recorder and the scheduler is
// single-threaded, armed output is byte-identical at any -j parallelism.
package span

import (
	"fmt"
	"strconv"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// Op is the lifecycle step an event records.
type Op uint8

// Lifecycle steps, in rough top-down stack order.
const (
	OpEmit     Op = iota // network layer accepted an application send
	OpEnq                // packet entered the interface queue
	OpDeq                // packet left the interface queue toward the MAC
	OpIfqDrop            // interface queue rejected or evicted the packet
	OpMacWait            // MAC saw the packet at the head of line (slot/medium wait begins)
	OpTx                 // PHY transmission started (Dur = airtime); Cause set when suppressed
	OpRxOK               // PHY reception completed intact
	OpRxLost             // PHY lost the frame (Cause says why)
	OpRetry              // 802.11 MAC scheduled a retransmission (Cause = missing response)
	OpMacDone            // MAC reported the transmit outcome to the network layer
	OpRouteBuf           // AODV buffered the packet pending route discovery
	OpRouteTx            // AODV released the packet onto a discovered route
	OpFwd                // intermediate node forwarded the packet
	OpNetDrop            // network layer or AODV discarded the packet (Cause says why)
	OpDeliver            // network layer delivered the packet to a local port
	OpAppRecv            // application consumed the packet
)

var opNames = [...]string{
	"emit", "enq", "deq", "ifq_drop", "mac_wait", "tx", "rx_ok", "rx_lost",
	"retry", "mac_done", "route_buf", "route_tx", "fwd", "net_drop",
	"deliver", "app_recv",
}

// String returns the op's snake_case wire name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cause qualifies an event: why a frame was lost, why a packet was dropped,
// or which timeout triggered a retry. CauseNone events omit the field in
// every export format.
type Cause uint8

// Event causes.
const (
	CauseNone          Cause = iota
	CauseIfqFull             // arriving packet found the interface queue full
	CauseIfqEvict            // control traffic evicted this queued data packet
	CauseRedEarly            // RED dropped the packet probabilistically
	CauseCollision           // reception corrupted by an overlapping frame
	CauseImpaired            // fault-injection impairment corrupted the frame
	CauseBelowThresh         // received power under the reception threshold
	CauseWhileTx             // frame arrived while the radio was transmitting
	CauseCaptured            // a stronger locked frame captured the receiver
	CauseOverlap             // overlapping arrival lost to the locked frame
	CauseOutage              // radio was down (fault injection)
	CauseAbortedByTx         // in-progress reception aborted by a local transmit
	CauseAckTimeout          // 802.11 ACK never arrived
	CauseCtsTimeout          // 802.11 CTS never arrived
	CauseLinkFail            // MAC gave up on the link (retry limit)
	CauseTTLExpired          // network-layer TTL reached zero
	CauseNoRoute             // no route and discovery not possible
	CauseBufOverflow         // AODV discovery buffer overflowed
	CauseDiscoveryFail       // route discovery timed out; buffered packets dropped
	CauseRepair              // buffered for local route repair after a link break
	CauseSalvage             // salvaged back to discovery after a link break
	CauseNoPort              // delivered to a node with no listener on the port
)

var causeNames = [...]string{
	"", "ifq_full", "ifq_evict", "red_early", "collision", "impaired",
	"below_thresh", "while_tx", "captured", "overlap", "outage",
	"aborted_by_tx", "ack_timeout", "cts_timeout", "link_fail",
	"ttl_expired", "no_route", "buf_overflow", "discovery_fail", "repair",
	"salvage", "no_port",
}

// String returns the cause's snake_case wire name ("" for CauseNone).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Event is one lifecycle step of one packet at one node. Events are
// appended in scheduler order, so the global slice is already sorted by At
// (with stable intra-timestamp ordering).
type Event struct {
	At    sim.Time      // simulated time of the step
	Dur   sim.Time      // duration (airtime for OpTx), 0 when instantaneous
	UID   uint64        // packet UID (unique per transmission copy)
	Node  packet.NodeID // node at which the step happened
	Op    Op
	Cause Cause
	Type  packet.Type // packet type ("tcp", "ebl", ...)
	Size  int32       // network-layer size in bytes
	Seq   int32       // transport sequence number, -1 when none
}

// String formats the event for violation trails and test failures.
func (e Event) String() string {
	b := make([]byte, 0, 96)
	b = append(b, 't', '=')
	b = strconv.AppendFloat(b, float64(e.At), 'f', 9, 64)
	b = append(b, "s n"...)
	b = strconv.AppendInt(b, int64(int32(e.Node)), 10)
	b = append(b, ' ')
	b = append(b, e.Op.String()...)
	if e.Cause != CauseNone {
		b = append(b, '/')
		b = append(b, e.Cause.String()...)
	}
	b = append(b, " uid="...)
	b = strconv.AppendUint(b, e.UID, 10)
	b = append(b, ' ')
	b = append(b, e.Type.String()...)
	if e.Dur > 0 {
		b = append(b, " dur="...)
		b = strconv.AppendFloat(b, float64(e.Dur), 'f', 9, 64)
		b = append(b, 's')
	}
	return string(b)
}

// flightSize is the flight-recorder ring capacity: the most recent events
// kept for violation trails. 256 events cover several seconds of a single
// packet's churn while bounding memory regardless of run length.
const flightSize = 256

// Recorder collects span events for one run. A nil Recorder is the
// disarmed state: every method is safe to call and does nothing. The
// recorder is not safe for concurrent use; like the rest of the stack it
// relies on the per-run scheduler being single-threaded.
type Recorder struct {
	sched  *sim.Scheduler
	events []Event
	// flight is a ring of the most recent events, consulted when a check
	// violation needs the trail of the offending UID.
	flight  [flightSize]Event
	flightN int // total events ever written to the ring
}

// NewRecorder returns an armed recorder. Bind it to the run's scheduler
// before the first event.
func NewRecorder() *Recorder { return &Recorder{} }

// Bind attaches the run's clock. The recorder stamps every event with the
// scheduler's current time, so layers without their own clock (netlayer,
// queue taps) need no extra plumbing.
func (r *Recorder) Bind(s *sim.Scheduler) {
	if r == nil {
		return
	}
	r.sched = s
}

// Enabled reports whether the recorder is armed. Instrumented code uses it
// only where arming changes construction (queue taps); per-event sites call
// Record directly and rely on the nil fast path.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one instantaneous event for p at node.
func (r *Recorder) Record(op Op, cause Cause, node packet.NodeID, p *packet.Packet) {
	if r == nil {
		return
	}
	r.add(op, cause, node, p, 0)
}

// RecordDur appends one event with a duration (OpTx airtime).
func (r *Recorder) RecordDur(op Op, cause Cause, node packet.NodeID, p *packet.Packet, dur sim.Time) {
	if r == nil {
		return
	}
	r.add(op, cause, node, p, dur)
}

func (r *Recorder) add(op Op, cause Cause, node packet.NodeID, p *packet.Packet, dur sim.Time) {
	seq := int32(-1)
	if p.TCP != nil {
		seq = int32(p.TCP.Seq)
	}
	e := Event{
		At: r.sched.Now(), Dur: dur,
		UID: p.UID, Node: node, Op: op, Cause: cause,
		Type: p.Type, Size: int32(p.Size), Seq: seq,
	}
	r.events = append(r.events, e)
	r.flight[r.flightN%flightSize] = e
	r.flightN++
}

// Events returns all recorded events in scheduler order. A nil recorder
// returns nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Trail returns the flight-recorder events touching uid, oldest first —
// the last-N-events context a check violation carries. A nil recorder (or
// an unseen UID) returns nil.
func (r *Recorder) Trail(uid uint64) []Event {
	if r == nil {
		return nil
	}
	n := r.flightN
	start := 0
	if n > flightSize {
		start = n - flightSize
	}
	var out []Event
	for i := start; i < n; i++ {
		if e := r.flight[i%flightSize]; e.UID == uid {
			out = append(out, e)
		}
	}
	return out
}

// TrailLines formats Trail(uid) one event per line, for embedding in
// check.Violation.
func (r *Recorder) TrailLines(uid uint64) []string {
	evs := r.Trail(uid)
	if len(evs) == 0 {
		return nil
	}
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

// TrailFn adapts the recorder to check.Registry.SetTrail. A nil recorder
// returns nil so the check registry keeps its zero-cost default.
func (r *Recorder) TrailFn() func(uid uint64) []string {
	if r == nil {
		return nil
	}
	return r.TrailLines
}
