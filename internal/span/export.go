// Exporters: NDJSON (one event per line, fixed field order, fixed-digit
// times — byte-identical across runs and -j parallelism) and Chrome
// trace-event JSON loadable in about:tracing or Perfetto (queue residency
// and airtime as complete events on per-node tracks).
package span

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
)

// AppendNDJSON appends the event's NDJSON line (no trailing newline) to buf
// and returns the extended slice. Times use fixed 9-digit (nanosecond)
// precision so output is byte-stable; zero durations and CauseNone are
// omitted. Callers reusing the returned buffer encode with zero
// allocations.
func (e Event) AppendNDJSON(buf []byte) []byte {
	buf = append(buf, `{"at":`...)
	buf = strconv.AppendFloat(buf, float64(e.At), 'f', 9, 64)
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(int32(e.Node)), 10)
	buf = append(buf, `,"op":"`...)
	buf = append(buf, e.Op.String()...)
	buf = append(buf, '"')
	if e.Cause != CauseNone {
		buf = append(buf, `,"cause":"`...)
		buf = append(buf, e.Cause.String()...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"uid":`...)
	buf = strconv.AppendUint(buf, e.UID, 10)
	buf = append(buf, `,"type":"`...)
	buf = append(buf, e.Type.String()...)
	buf = append(buf, `","size":`...)
	buf = strconv.AppendInt(buf, int64(e.Size), 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, int64(e.Seq), 10)
	if e.Dur > 0 {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendFloat(buf, float64(e.Dur), 'f', 9, 64)
	}
	buf = append(buf, '}')
	return buf
}

// WriteNDJSON writes events to w one JSON object per line, in recorded
// (scheduler) order.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range events {
		buf = e.AppendNDJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("span: ndjson: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("span: ndjson: %w", err)
	}
	return nil
}

// category buckets ops for the trace viewer's filter bar.
func category(op Op) string {
	switch op {
	case OpEmit, OpDeliver, OpAppRecv:
		return "app"
	case OpEnq, OpDeq, OpIfqDrop:
		return "ifq"
	case OpMacWait, OpRetry, OpMacDone:
		return "mac"
	case OpTx, OpRxOK, OpRxLost:
		return "phy"
	default:
		return "net"
	}
}

// appendMicros appends a simulated time as microseconds with nanosecond
// (3-digit) precision, the unit Chrome trace events use.
func appendMicros(buf []byte, t sim.Time) []byte {
	return strconv.AppendFloat(buf, float64(t)*1e6, 'f', 3, 64)
}

// appendChromeEvent appends one trace-event object. ph is "X" (complete,
// with dur) or "i" (instant); tid is the node so each vehicle gets its own
// track.
func appendChromeEvent(buf []byte, name, cat string, ph byte, ts, dur sim.Time, node packet.NodeID, e Event) []byte {
	buf = append(buf, `{"name":"`...)
	buf = append(buf, name...)
	buf = append(buf, `","cat":"`...)
	buf = append(buf, cat...)
	buf = append(buf, `","ph":"`...)
	buf = append(buf, ph)
	buf = append(buf, `","ts":`...)
	buf = appendMicros(buf, ts)
	if ph == 'X' {
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, dur)
	}
	buf = append(buf, `,"pid":1,"tid":`...)
	buf = strconv.AppendInt(buf, int64(int32(node)), 10)
	if ph == 'i' {
		buf = append(buf, `,"s":"t"`...)
	}
	buf = append(buf, `,"args":{"uid":`...)
	buf = strconv.AppendUint(buf, e.UID, 10)
	buf = append(buf, `,"type":"`...)
	buf = append(buf, e.Type.String()...)
	buf = append(buf, `","size":`...)
	buf = strconv.AppendInt(buf, int64(e.Size), 10)
	buf = append(buf, `}}`...)
	return buf
}

// WriteChrome writes events as Chrome trace-event JSON ({"traceEvents":
// [...]}) viewable in about:tracing or Perfetto. Interface-queue residency
// (enq→deq) and PHY airtime become complete ("X") events; every other
// lifecycle step is a thread-scoped instant. Output is a deterministic
// single pass over the recorded order.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return fmt.Errorf("span: chrome: %w", err)
	}
	type qkey struct {
		node packet.NodeID
		uid  uint64
	}
	enqAt := make(map[qkey]sim.Time)
	var buf []byte
	first := true
	emit := func(b []byte) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(b)
		return err
	}
	for _, e := range events {
		name := e.Op.String()
		if e.Cause != CauseNone {
			name = name + "/" + e.Cause.String()
		}
		switch e.Op {
		case OpEnq:
			enqAt[qkey{e.Node, e.UID}] = e.At
			continue
		case OpDeq:
			k := qkey{e.Node, e.UID}
			start, ok := enqAt[k]
			if !ok {
				start = e.At
			}
			delete(enqAt, k)
			buf = appendChromeEvent(buf[:0], "ifq", "ifq", 'X', start, e.At-start, e.Node, e)
		case OpTx:
			if e.Cause == CauseNone {
				buf = appendChromeEvent(buf[:0], name, category(e.Op), 'X', e.At, e.Dur, e.Node, e)
			} else {
				buf = appendChromeEvent(buf[:0], name, category(e.Op), 'i', e.At, 0, e.Node, e)
			}
		default:
			buf = appendChromeEvent(buf[:0], name, category(e.Op), 'i', e.At, 0, e.Node, e)
		}
		if err := emit(buf); err != nil {
			return fmt.Errorf("span: chrome: %w", err)
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return fmt.Errorf("span: chrome: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("span: chrome: %w", err)
	}
	return nil
}
