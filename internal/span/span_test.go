package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vanetsim/internal/packet"
	"vanetsim/internal/queue"
	"vanetsim/internal/sim"
)

// record appends an event at an explicit time by stepping a private
// scheduler, keeping tests independent of real event plumbing.
type fixture struct {
	sched *sim.Scheduler
	rec   *Recorder
}

func newFixture() *fixture {
	s := sim.New()
	r := NewRecorder()
	r.Bind(s)
	return &fixture{sched: s, rec: r}
}

// at advances the fixture clock to t and records the event there.
func (f *fixture) at(t sim.Time, op Op, cause Cause, node packet.NodeID, p *packet.Packet, dur sim.Time) {
	f.sched.At(t, func() {
		if dur > 0 {
			f.rec.RecordDur(op, cause, node, p, dur)
		} else {
			f.rec.Record(op, cause, node, p)
		}
	})
	f.sched.Run()
}

func pkt(uid uint64, t packet.Type, size int) *packet.Packet {
	return &packet.Packet{UID: uid, Type: t, Size: size}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Bind(nil)
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(OpEmit, CauseNone, 0, pkt(1, packet.TypeEBL, 100))
	r.RecordDur(OpTx, CauseNone, 0, pkt(1, packet.TypeEBL, 100), 0.001)
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
	if r.Trail(1) != nil || r.TrailLines(1) != nil {
		t.Fatal("nil recorder returned a trail")
	}
	if r.TrailFn() != nil {
		t.Fatal("nil recorder returned a trail function")
	}
	if r.IfqDropFn(0) != nil {
		t.Fatal("nil recorder returned a drop function")
	}
	q := queue.NewDropTail(4, nil)
	if TapQueue(q, r, 0) != queue.Queue(q) {
		t.Fatal("nil recorder wrapped the queue")
	}
}

func TestRecorderOrderAndFields(t *testing.T) {
	f := newFixture()
	p := pkt(7, packet.TypeTCP, 1040)
	p.TCP = &packet.TCPHdr{Seq: 3}
	f.at(1.5, OpEmit, CauseNone, 0, p, 0)
	f.at(2.0, OpTx, CauseNone, 0, p, 0.004)
	evs := f.rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	e := evs[1]
	if e.At != 2.0 || e.Dur != 0.004 || e.UID != 7 || e.Op != OpTx || e.Seq != 3 || e.Size != 1040 {
		t.Fatalf("bad event: %+v", e)
	}
	if evs[0].Seq != 3 {
		t.Fatalf("seq not captured: %+v", evs[0])
	}
}

func TestSeqDefaultsToMinusOne(t *testing.T) {
	f := newFixture()
	f.at(1, OpEmit, CauseNone, 2, pkt(9, packet.TypeEBL, 52), 0)
	if got := f.rec.Events()[0].Seq; got != -1 {
		t.Fatalf("seq = %d, want -1", got)
	}
}

func TestFlightRecorderTrail(t *testing.T) {
	f := newFixture()
	// Overflow the ring: flightSize+10 events for uid 1, then 3 for uid 2.
	for i := 0; i < flightSize+10; i++ {
		f.at(sim.Time(i), OpEnq, CauseNone, 0, pkt(1, packet.TypeEBL, 10), 0)
	}
	for i := 0; i < 3; i++ {
		f.at(sim.Time(1000+i), OpFwd, CauseNone, 1, pkt(2, packet.TypeEBL, 10), 0)
	}
	trail := f.rec.Trail(2)
	if len(trail) != 3 {
		t.Fatalf("uid 2 trail has %d events, want 3", len(trail))
	}
	for i, e := range trail {
		if e.At != sim.Time(1000+i) {
			t.Fatalf("trail out of order: %+v", trail)
		}
	}
	// uid 1 events survive only within the ring window.
	t1 := f.rec.Trail(1)
	if len(t1) != flightSize-3 {
		t.Fatalf("uid 1 trail has %d events, want %d", len(t1), flightSize-3)
	}
	if t1[0].At != sim.Time(13) {
		t.Fatalf("oldest surviving event at t=%v, want 13", t1[0].At)
	}
	lines := f.rec.TrailLines(2)
	if len(lines) != 3 || !strings.Contains(lines[0], "uid=2") || !strings.Contains(lines[0], "fwd") {
		t.Fatalf("bad trail lines: %q", lines)
	}
	if f.rec.Trail(99) != nil {
		t.Fatal("unseen uid returned a trail")
	}
}

func TestTapQueueRecordsEnqDeqAndDrops(t *testing.T) {
	f := newFixture()
	base := queue.NewDropTail(1, f.rec.IfqDropFn(4))
	q := TapQueue(base, f.rec, 4)
	p1, p2 := pkt(1, packet.TypeEBL, 10), pkt(2, packet.TypeEBL, 10)
	if !q.Enqueue(p1) {
		t.Fatal("first enqueue rejected")
	}
	if q.Enqueue(p2) {
		t.Fatal("second enqueue accepted past capacity")
	}
	if got := q.Dequeue(); got != p1 {
		t.Fatalf("dequeued %v", got)
	}
	evs := f.rec.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(evs), evs)
	}
	if evs[0].Op != OpEnq || evs[1].Op != OpIfqDrop || evs[1].Cause != CauseIfqFull || evs[2].Op != OpDeq {
		t.Fatalf("bad op sequence: %v", evs)
	}
	if evs[1].UID != 2 || evs[2].UID != 1 || evs[0].Node != 4 {
		t.Fatalf("bad attribution: %v", evs)
	}
}

func TestDropReasonMapping(t *testing.T) {
	f := newFixture()
	fn := f.rec.IfqDropFn(0)
	p := pkt(1, packet.TypeEBL, 10)
	fn(p, queue.DropFull)
	fn(p, queue.DropEvicted)
	fn(p, queue.DropEarly)
	evs := f.rec.Events()
	want := []Cause{CauseIfqFull, CauseIfqEvict, CauseRedEarly}
	for i, c := range want {
		if evs[i].Cause != c {
			t.Fatalf("drop %d mapped to %v, want %v", i, evs[i].Cause, c)
		}
	}
}

func TestNDJSONFormat(t *testing.T) {
	f := newFixture()
	p := pkt(42, packet.TypeTCP, 1040)
	p.TCP = &packet.TCPHdr{Seq: 5}
	f.at(12.00035, OpTx, CauseNone, 3, p, 0.00208)
	f.at(12.1, OpRxLost, CauseCollision, 4, p, 0)
	var b bytes.Buffer
	if err := WriteNDJSON(&b, f.rec.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	want0 := `{"at":12.000350000,"node":3,"op":"tx","uid":42,"type":"tcp","size":1040,"seq":5,"dur":0.002080000}`
	want1 := `{"at":12.100000000,"node":4,"op":"rx_lost","cause":"collision","uid":42,"type":"tcp","size":1040,"seq":5}`
	if lines[0] != want0 {
		t.Errorf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	if lines[1] != want1 {
		t.Errorf("line 1:\n got %s\nwant %s", lines[1], want1)
	}
	// Every line must round-trip as JSON.
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
	}
}

func TestChromeExport(t *testing.T) {
	f := newFixture()
	p := pkt(1, packet.TypeEBL, 52)
	f.at(1.0, OpEnq, CauseNone, 0, p, 0)
	f.at(1.5, OpDeq, CauseNone, 0, p, 0)
	f.at(1.6, OpTx, CauseNone, 0, p, 0.002)
	f.at(1.7, OpRxOK, CauseNone, 1, p, 0)
	var b bytes.Buffer
	if err := WriteChrome(&b, f.rec.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			S    string  `json:"s"`
			Args struct {
				UID  uint64 `json:"uid"`
				Type string `json:"type"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, b.String())
	}
	// enq+deq collapse into one complete event, so 3 total.
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	ifq := doc.TraceEvents[0]
	if ifq.Name != "ifq" || ifq.Ph != "X" || ifq.Ts != 1e6 || ifq.Dur != 0.5e6 {
		t.Fatalf("bad ifq event: %+v", ifq)
	}
	tx := doc.TraceEvents[1]
	if tx.Name != "tx" || tx.Ph != "X" || tx.Dur != 2000 || tx.Args.UID != 1 {
		t.Fatalf("bad tx event: %+v", tx)
	}
	rx := doc.TraceEvents[2]
	if rx.Ph != "i" || rx.S != "t" || rx.Tid != 1 {
		t.Fatalf("bad instant event: %+v", rx)
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	f := newFixture()
	p := pkt(1, packet.TypeEBL, 52)
	// emit 10.000 → enq → mac_wait 10.001 (queueing 1ms) → deq 10.004 →
	// tx 10.004 (contention 3ms from mac_wait, airtime 2ms) → retry gap →
	// tx 10.010 (retransmit 4ms) → rx → deliver 10.013.
	f.at(10.000, OpEmit, CauseNone, 0, p, 0)
	f.at(10.000, OpEnq, CauseNone, 0, p, 0)
	f.at(10.001, OpMacWait, CauseNone, 0, p, 0)
	f.at(10.004, OpDeq, CauseNone, 0, p, 0)
	f.at(10.004, OpTx, CauseNone, 0, p, 0.002)
	f.at(10.010, OpTx, CauseNone, 0, p, 0.002)
	f.at(10.012, OpRxOK, CauseNone, 1, p, 0)
	f.at(10.013, OpDeliver, CauseNone, 1, p, 0)
	bs := Analyze(f.rec.Events())
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	const tol = 1e-12
	approx := func(got, want sim.Time, name string) {
		t.Helper()
		if d := float64(got - want); d > tol || d < -tol {
			t.Errorf("%s = %v, want %v (breakdown %+v)", name, got, want, b)
		}
	}
	approx(b.Total, 0.013, "total")
	approx(b.Queueing, 0.001, "queueing")
	approx(b.Contention, 0.003, "contention")
	approx(b.Airtime, 0.004, "airtime")
	approx(b.Retransmit, 0.004, "retransmit")
	approx(b.Rerouting, 0, "rerouting")
	approx(b.Other, 0.001, "other")
}

func TestAnalyzeReroutingAndUndelivered(t *testing.T) {
	f := newFixture()
	p1, p2 := pkt(1, packet.TypeTCP, 1040), pkt(2, packet.TypeTCP, 1040)
	f.at(1.0, OpEmit, CauseNone, 0, p1, 0)
	f.at(1.0, OpRouteBuf, CauseNone, 0, p1, 0)
	f.at(1.2, OpRouteTx, CauseNone, 0, p1, 0)
	f.at(1.3, OpDeliver, CauseNone, 5, p1, 0)
	// p2 never delivered: must be excluded.
	f.at(2.0, OpEmit, CauseNone, 0, p2, 0)
	f.at(2.1, OpNetDrop, CauseTTLExpired, 3, p2, 0)
	bs := Analyze(f.rec.Events())
	if len(bs) != 1 || bs[0].UID != 1 {
		t.Fatalf("breakdowns: %+v", bs)
	}
	if got := bs[0].Rerouting; got < 0.199 || got > 0.201 {
		t.Fatalf("rerouting = %v, want 0.2", got)
	}
}

func TestCriticalPath(t *testing.T) {
	f := newFixture()
	p := pkt(1, packet.TypeEBL, 52)
	f.at(1.0, OpEmit, CauseNone, 0, p, 0)
	f.at(1.1, OpTx, CauseNone, 0, p, 0.001)
	f.at(1.2, OpDeliver, CauseNone, 1, p, 0)
	f.at(1.3, OpAppRecv, CauseNone, 1, p, 0) // after delivery: excluded
	cp := CriticalPath(f.rec.Events(), 1)
	if len(cp) != 3 || cp[0].Op != OpEmit || cp[2].Op != OpDeliver {
		t.Fatalf("critical path: %+v", cp)
	}
	if CriticalPath(f.rec.Events(), 99) != nil {
		t.Fatal("unknown uid produced a path")
	}
}

func TestSummarizeAndFormat(t *testing.T) {
	bs := []Breakdown{
		{Total: 0.010, Queueing: 0.004, Airtime: 0.002, Other: 0.004},
		{Total: 0.020, Queueing: 0.008, Airtime: 0.002, Other: 0.010},
	}
	a := Summarize(bs)
	if a.N != 2 || a.Total != 0.015 || a.Queueing != 0.006 || a.Airtime != 0.002 {
		t.Fatalf("aggregate: %+v", a)
	}
	if z := Summarize(nil); z.N != 0 || z.Total != 0 {
		t.Fatalf("empty summarize: %+v", z)
	}
	out := FormatComparison([]string{"tdma", "802.11"}, []Aggregate{a, {}})
	for _, want := range []string{"component", "tdma (ms)", "802.11 (ms)", "queueing", "total", "packets"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "15.000") {
		t.Fatalf("table missing mean total in ms:\n%s", out)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1.5, UID: 7, Node: 2, Op: OpRxLost, Cause: CauseCollision, Type: packet.TypeEBL, Dur: 0.002}
	s := e.String()
	for _, want := range []string{"t=1.500000000s", "n2", "rx_lost/collision", "uid=7", "ebl", "dur=0.002000000s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
