// Parallel run-engine benchmarks and facade tests: the 16-point
// MAC × packet-size performance sweep executed through the bounded
// worker pool at increasing -j, demonstrating the fan-out speedup while
// the determinism tests pin the results to the sequential baseline.
package vanetsim_test

import (
	"fmt"
	"runtime"
	"testing"

	"vanetsim"
)

// sweep16 is the 16-point perf grid: both MACs across eight packet
// sizes (the cmd/eblsweep grid plus the sizes between its points).
func sweep16(duration float64) []vanetsim.TrialConfig {
	var cfgs []vanetsim.TrialConfig
	for _, mac := range []vanetsim.MACType{vanetsim.MACTDMA, vanetsim.MAC80211} {
		for _, size := range []int{250, 400, 500, 750, 1000, 1200, 1400, 1500} {
			cfg := vanetsim.Trial1()
			cfg.MAC = mac
			cfg.PacketSize = size
			cfg.Duration = vanetsim.Seconds(duration)
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// TestRunTrialsMatchesSequential pins the facade's parallel entry point
// to the sequential baseline: every pool size must reproduce RunTrial's
// tables exactly.
func TestRunTrialsMatchesSequential(t *testing.T) {
	cfgs := sweep16(30)[:4] // one slice of the grid keeps the test fast
	parallel := vanetsim.RunTrials(cfgs, 8)
	if len(parallel) != len(cfgs) {
		t.Fatalf("RunTrials returned %d results for %d configs", len(parallel), len(cfgs))
	}
	for i, cfg := range cfgs {
		seq := vanetsim.RunTrial(cfg)
		want := vanetsim.FormatDelayTable(vanetsim.DelayTable(seq))
		got := vanetsim.FormatDelayTable(vanetsim.DelayTable(parallel[i]))
		if want != got {
			t.Errorf("config %d (%v): parallel delay table differs from sequential\n--- sequential\n%s--- parallel\n%s",
				i, cfg, want, got)
		}
	}
}

// BenchmarkParallelSweep16 measures the run engine on the 16-point perf
// sweep at -j 1 versus -j NumCPU (and -j 8 explicitly when the host has
// more cores). On an 8-core host the pool target is ≥ 3× over
// sequential; a single iteration runs all 16 simulations.
func BenchmarkParallelSweep16(b *testing.B) {
	jobs := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		jobs = append(jobs, n)
		if n > 8 {
			jobs = append(jobs, 8)
		}
	}
	for _, j := range jobs {
		j := j
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfgs := sweep16(40)
				results := vanetsim.RunTrials(cfgs, j)
				for _, r := range results {
					if r == nil || r.Platoon1.MiddleDelays().Len() == 0 {
						b.Fatal("sweep point produced no measurements")
					}
				}
			}
		})
	}
}
