// Command benchguard is the benchmark-regression gate: it parses `go test
// -bench` output (ns/op, B/op, allocs/op), compares every tracked
// benchmark against the committed baseline (BENCH_PR3.json "after"
// values), and exits non-zero if allocations regress at all or ns/op
// regresses beyond the tolerance.
//
//	make bench-hot | benchguard -baseline BENCH_PR3.json
//	benchguard -baseline BENCH_PR3.json -input bench.txt
//	benchguard -baseline BENCH_PR3.json -max-ns-regression 0.5
//
// Rules, per baseline benchmark:
//
//   - allocs/op must not exceed the baseline. The hot-path benchmarks are
//     pinned at 0 allocs/op, so any allocation on those paths fails the
//     gate outright.
//   - ns/op may not regress more than -max-ns-regression (default 20%).
//     With -count > 1 the best (minimum) sample is judged, so scheduler
//     noise cannot fail a healthy build; allocs use the worst (maximum)
//     sample, because a single allocating run is a real regression.
//   - every baseline benchmark must appear in the input (a silently
//     skipped benchmark is a silently disabled gate); relax with
//     -allow-missing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

// baselineFile mirrors BENCH_PR3.json.
type baselineFile struct {
	Benchmarks map[string]struct {
		After measurement `json:"after"`
	} `json:"benchmarks"`
}

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// sample is one parsed benchmark result line.
type sample struct {
	ns     float64
	allocs float64
	hasNs  bool
	hasAll bool
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_PR3.json", "baseline JSON with per-benchmark after.{ns_per_op,allocs_per_op}")
		inputPath    = fs.String("input", "", "bench output to judge (default: stdin)")
		maxNsReg     = fs.Float64("max-ns-regression", 0.20, "maximum tolerated fractional ns/op regression")
		allowMissing = fs.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the input")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", *baselinePath)
	}

	in := stdin
	if *inputPath != "" {
		f, err := os.Open(*inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, err := parseBench(in)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(out, "%-34s %12s %12s %8s %10s %10s %6s\n",
		"benchmark", "base ns/op", "got ns/op", "Δns", "base allocs", "got allocs", "ok")
	for _, name := range names {
		want := base.Benchmarks[name].After
		got, ok := samples[name]
		if !ok {
			if *allowMissing {
				fmt.Fprintf(out, "%-34s %12.1f %12s %8s %10.0f %10s %6s\n",
					name, want.NsPerOp, "-", "-", want.AllocsPerOp, "-", "skip")
				continue
			}
			failures = append(failures, fmt.Sprintf("%s: missing from bench output", name))
			continue
		}
		nsReg := got.ns/want.NsPerOp - 1
		verdict := "yes"
		if got.hasAll && got.allocs > want.AllocsPerOp {
			verdict = "NO"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %g exceeds baseline %g",
				name, got.allocs, want.AllocsPerOp))
		}
		if got.hasNs && want.NsPerOp > 0 && nsReg > *maxNsReg {
			verdict = "NO"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.1f regresses %.1f%% over baseline %.1f (max %.0f%%)",
				name, got.ns, nsReg*100, want.NsPerOp, *maxNsReg*100))
		}
		fmt.Fprintf(out, "%-34s %12.1f %12.1f %+7.1f%% %10.0f %10.0f %6s\n",
			name, want.NsPerOp, got.ns, nsReg*100, want.AllocsPerOp, got.allocs, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "benchguard: %d benchmark(s) within budget\n", len(names))
	return nil
}

// parseBench extracts per-benchmark samples from `go test -bench` output.
// Repeated samples (-count > 1) fold to min ns/op and max allocs/op.
func parseBench(r io.Reader) (map[string]sample, error) {
	out := make(map[string]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go appends to parallel-capable names.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := sample{ns: math.Inf(1)}
		if prev, ok := out[name]; ok {
			s = prev
		}
		// After the iteration count come value-unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad bench line %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = math.Min(s.ns, v)
				s.hasNs = true
			case "allocs/op":
				s.allocs = math.Max(s.allocs, v)
				s.hasAll = true
			}
		}
		if s.hasNs || s.hasAll {
			out[name] = s
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
