package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "benchmarks": {
    "BenchmarkSchedulerHotPath": {
      "after": { "ns_per_op": 127.3, "bytes_per_op": 0, "allocs_per_op": 0 }
    },
    "BenchmarkTrial1Baseline": {
      "after": { "ns_per_op": 4945466, "bytes_per_op": 1767835, "allocs_per_op": 35767 }
    }
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func guard(t *testing.T, bench string, extra ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	args := append([]string{"-baseline", writeBaseline(t)}, extra...)
	err := run(args, strings.NewReader(bench), &sb)
	return sb.String(), err
}

const healthy = `goos: linux
BenchmarkSchedulerHotPath-16   19365415   127.9 ns/op   0 B/op   0 allocs/op
BenchmarkTrial1Baseline-16     5   4900000 ns/op   1767835 B/op   35767 allocs/op
PASS
`

func TestHealthyRunPasses(t *testing.T) {
	out, err := guard(t, healthy)
	if err != nil {
		t.Fatalf("healthy run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 benchmark(s) within budget") {
		t.Fatalf("missing summary:\n%s", out)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	bench := strings.Replace(healthy, "0 allocs/op", "1 allocs/op", 1)
	out, err := guard(t, bench)
	if err == nil {
		t.Fatalf("1 alloc/op on a zero-alloc benchmark passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "allocs/op 1 exceeds baseline 0") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestNsRegressionFails(t *testing.T) {
	// 127.3 * 1.25 ≈ 159 ns/op: beyond the 20% default tolerance.
	bench := strings.Replace(healthy, "127.9 ns/op", "159.0 ns/op", 1)
	out, err := guard(t, bench)
	if err == nil {
		t.Fatalf("25%% ns/op regression passed:\n%s", out)
	}
	if !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("wrong failure: %v", err)
	}
	// A widened tolerance accepts the same run.
	if _, err := guard(t, bench, "-max-ns-regression", "0.5"); err != nil {
		t.Fatalf("-max-ns-regression 0.5 still failed: %v", err)
	}
}

func TestFasterIsFine(t *testing.T) {
	bench := strings.Replace(healthy, "127.9 ns/op", "60.0 ns/op", 1)
	if out, err := guard(t, bench); err != nil {
		t.Fatalf("an improvement failed the gate: %v\n%s", err, out)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	bench := "BenchmarkSchedulerHotPath-16 100 127.9 ns/op 0 B/op 0 allocs/op\n"
	_, err := guard(t, bench)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkTrial1Baseline: missing") {
		t.Fatalf("missing benchmark not reported: %v", err)
	}
	if out, err := guard(t, bench, "-allow-missing"); err != nil {
		t.Fatalf("-allow-missing still failed: %v\n%s", err, out)
	}
}

func TestMultipleSamplesFoldMinNsMaxAllocs(t *testing.T) {
	// -count 3 output: the slow middle sample must not fail the ns gate,
	// but the single allocating sample must fail the alloc gate.
	bench := `BenchmarkSchedulerHotPath-16 1 120.0 ns/op 0 B/op 0 allocs/op
BenchmarkSchedulerHotPath-16 1 400.0 ns/op 0 B/op 0 allocs/op
BenchmarkSchedulerHotPath-16 1 125.0 ns/op 0 B/op 0 allocs/op
BenchmarkTrial1Baseline-16 1 4900000 ns/op 0 B/op 35767 allocs/op
`
	if out, err := guard(t, bench); err != nil {
		t.Fatalf("noisy-but-healthy samples failed: %v\n%s", err, out)
	}
	bench = strings.Replace(bench, "125.0 ns/op 0 B/op 0 allocs/op",
		"125.0 ns/op 16 B/op 1 allocs/op", 1)
	if _, err := guard(t, bench); err == nil {
		t.Fatal("one allocating sample out of three passed")
	}
}

func TestGOMAXPROCSSuffixStripped(t *testing.T) {
	for _, suffix := range []string{"", "-4", "-128"} {
		bench := "BenchmarkSchedulerHotPath" + suffix + " 100 120.0 ns/op 0 B/op 0 allocs/op\n" +
			"BenchmarkTrial1Baseline" + suffix + " 5 4900000 ns/op 0 B/op 100 allocs/op\n"
		if out, err := guard(t, bench); err != nil {
			t.Fatalf("suffix %q not handled: %v\n%s", suffix, err, out)
		}
	}
}

func TestMalformedInputs(t *testing.T) {
	if _, err := guard(t, "BenchmarkSchedulerHotPath-16 100 oops ns/op\n"); err == nil {
		t.Fatal("garbage value accepted")
	}
	var sb strings.Builder
	if err := run([]string{"-baseline", "/nonexistent.json"}, strings.NewReader(""), &sb); err == nil {
		t.Fatal("missing baseline accepted")
	}
	p := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(p, []byte(`{"benchmarks":{}}`), 0o644)
	if err := run([]string{"-baseline", p}, strings.NewReader(""), &sb); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

func TestInputFileFlag(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(healthy), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-baseline", writeBaseline(t), "-input", p}, strings.NewReader("ignored"), &sb); err != nil {
		t.Fatalf("-input run failed: %v\n%s", err, sb.String())
	}
}
