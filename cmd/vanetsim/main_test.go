package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTrialTables(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trial", "1", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TDMA MAC", "One-way delay", "Throughput", "Stopping-distance", "trial1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trial", "1", "-duration", "40", "-csv", "Fig7"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# Fig7") {
		t.Fatalf("CSV output wrong: %q", sb.String()[:40])
	}
}

func TestRunASCIIFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trial", "1", "-duration", "40", "-ascii", "fig5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "packet ID") {
		t.Fatal("ASCII output missing axis labels")
	}
}

func TestRunCustomConfig(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trial", "0", "-mac", "802.11", "-packet", "500", "-duration", "40"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "802.11 MAC, 500-byte") {
		t.Fatalf("custom config not honoured:\n%s", sb.String())
	}
}

func TestRunTraceOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tr")
	var sb strings.Builder
	if err := run([]string{"-trial", "1", "-duration", "40", "-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("trace file empty")
	}
	if !strings.Contains(sb.String(), "trace records") {
		t.Fatal("no confirmation message")
	}
}

func TestRunAnimation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-trial", "1", "-duration", "30", "-anim"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "t=") || !strings.Contains(out, "= node") {
		t.Fatalf("animation output incomplete:\n%.200s", out)
	}
	// Both platoons' glyphs must appear somewhere.
	for _, g := range []string{"0", "5"} {
		if !strings.Contains(out, g) {
			t.Fatalf("glyph %s missing from animation", g)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-trial", "9"},
		{"-trial", "0", "-mac", "zigbee"},
		{"-trial", "1", "-duration", "40", "-csv", "Fig99"},
		{"-trial", "1", "-duration", "40", "-ascii", "nope"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestRunFaultFlags(t *testing.T) {
	var sb strings.Builder
	args := []string{"-trial", "1", "-duration", "30", "-stats",
		"-loss", "0.05", "-shadow", "4", "-outage", "1:22:5", "-outage", "4:10:3"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fault/rx_impaired", "fault/rx_dropped_outage", "fault/outage_seconds",
		"fault/shadow_samples",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("faulted run output missing %q", want)
		}
	}

	sb.Reset()
	if err := run([]string{"-trial", "1", "-duration", "30", "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fault/") {
		t.Fatal("unfaulted run leaked fault telemetry")
	}
}

func TestRunFaultFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-outage", "1:22"},
		{"-outage", "x:1:2"},
		{"-loss", "1.5"},
		{"-burst-loss", "-0.1"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
