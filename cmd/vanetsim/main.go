// Command vanetsim runs one trial of the paper's Extended Brake Lights
// scenario and prints its statistics tables, a figure as CSV or an ASCII
// plot, or an ns-2-style trace for offline analysis with ebltrace.
//
// Examples:
//
//	vanetsim -trial 1                 # trial 1 tables
//	vanetsim -trial 3 -ascii Fig11    # trial 3 delay curve in the terminal
//	vanetsim -trial 2 -csv Fig10      # figure data as CSV on stdout
//	vanetsim -trial 1 -trace t1.tr    # write an agent-level trace file
//	vanetsim -mac 802.11 -packet 500  # a configuration the paper didn't run
//	vanetsim -trial 3 -stats          # tables plus the telemetry summary
//	vanetsim -trial 1 -stats-json m.ndjson  # machine-readable run report
//	vanetsim -trial 1 -spans s.ndjson # causal per-packet span events
//	vanetsim -trial 3 -spans-chrome s.json  # the same, for chrome://tracing
//
// Fault injection (deterministic, seedable; see README "Fault injection"):
//
//	vanetsim -trial 1 -loss 0.05              # 5% independent frame loss
//	vanetsim -trial 1 -ber 1e-6               # per-bit error rate
//	vanetsim -trial 3 -burst-loss 0.1 -burst-len 4  # bursty Gilbert–Elliott loss
//	vanetsim -trial 1 -shadow 6               # 6 dB log-normal shadowing
//	vanetsim -trial 1 -outage 1:22:5 -outage 4:10:3  # radios down (node:start:dur)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vanetsim"
	"vanetsim/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vanetsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("vanetsim", flag.ContinueOnError)
	var (
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProf  = fs.String("memprofile", "", "write an allocation profile to this path")
		trial    = fs.Int("trial", 1, "paper trial to run (1, 2 or 3); 0 to build from -mac/-packet")
		macName  = fs.String("mac", "tdma", "MAC type for -trial 0: tdma or 802.11")
		pktSize  = fs.Int("packet", 1000, "packet size in bytes for -trial 0")
		duration = fs.Float64("duration", 0, "override simulated seconds (0 = paper default)")
		seed     = fs.Uint64("seed", 0, "override RNG seed (0 = default)")
		csvFig   = fs.String("csv", "", "print one figure as CSV (Fig5..Fig15)")
		asciiFig = fs.String("ascii", "", "print one figure as an ASCII plot (Fig5..Fig15)")
		traceOut = fs.String("trace", "", "write an agent-level trace file to this path")
		animate  = fs.Bool("anim", false, "play an ASCII animation of vehicle motion (nam's role)")
		stats    = fs.Bool("stats", false, "print the cross-layer telemetry summary after the run")
		checkInv = fs.Bool("check", false, "arm the runtime invariant checker; non-zero exit on any violation")
		spansOut = fs.String("spans", "", "write causal per-packet span events as NDJSON to this path")
		spansChr = fs.String("spans-chrome", "", "write span events as Chrome trace-event JSON to this path")
		statsJSN = fs.String("stats-json", "", "write run telemetry as NDJSON to this path")
		statsPrm = fs.String("stats-prom", "", "write run telemetry in Prometheus text format to this path")
		dense    = fs.Int("dense", 0, "run the dense multi-lane highway with this many vehicles (200–2000 typical) instead of a paper trial")
		lanes    = fs.Int("lanes", 4, "lane count for -dense")
		platoon  = fs.Int("platoon-len", 10, "vehicles per platoon for -dense")
		beaconFr = fs.Float64("beacon-frac", 0.25, "fraction of vehicles sourcing beacon traffic for -dense")
		beaconJt = fs.Float64("beacon-jitter", 0, "per-vehicle beacon-interval jitter fraction in [0,1) for -dense (0 = lockstep intervals)")
		shards   = fs.Int("shards", 1, "intra-run shard count for the staged offer pipeline (output is byte-identical at any value)")
		safDepth = fs.Int("safety-depth", 0, "followers per platoon on the lead's safety stream for -dense (0 = all)")
		noCull   = fs.Bool("no-culling", false, "disable spatial-index neighbor culling (full receiver scan) for -dense")
		loss     = fs.Float64("loss", 0, "independent per-frame loss probability")
		ber      = fs.Float64("ber", 0, "independent per-bit error rate")
		burstP   = fs.Float64("burst-loss", 0, "stationary loss probability of the bursty (Gilbert–Elliott) model")
		burstLen = fs.Float64("burst-len", 4, "mean burst length in frames for -burst-loss")
		shadow   = fs.Float64("shadow", 0, "log-normal shadowing standard deviation in dB")
		outages  outageList
	)
	fs.Var(&outages, "outage", "radio outage as node:start:duration seconds (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if e := stopProf(); err == nil {
			err = e
		}
	}()

	if *dense > 0 {
		mac := vanetsim.MACTDMA
		switch strings.ToLower(*macName) {
		case "tdma":
		case "802.11", "dcf", "80211":
			mac = vanetsim.MAC80211
		default:
			return fmt.Errorf("unknown MAC %q", *macName)
		}
		dcfg := vanetsim.DefaultDenseHighway(mac, *dense)
		dcfg.Lanes = *lanes
		dcfg.PlatoonLen = *platoon
		dcfg.BeaconFraction = *beaconFr
		dcfg.BeaconJitter = *beaconJt
		dcfg.SafetyDepth = *safDepth
		dcfg.DisableCulling = *noCull
		dcfg.Shards = *shards
		dcfg.Telemetry = *stats || *statsJSN != "" || *statsPrm != ""
		dcfg.Check = *checkInv
		if *duration > 0 {
			dcfg.Duration = vanetsim.Seconds(*duration)
		}
		if *seed != 0 {
			dcfg.Seed = *seed
		}
		return runDense(dcfg, *stats, *statsJSN, *statsPrm, out)
	}

	var cfg vanetsim.TrialConfig
	switch *trial {
	case 1:
		cfg = vanetsim.Trial1()
	case 2:
		cfg = vanetsim.Trial2()
	case 3:
		cfg = vanetsim.Trial3()
	case 0:
		cfg = vanetsim.Trial1()
		cfg.Name = "custom"
		cfg.PacketSize = *pktSize
		switch strings.ToLower(*macName) {
		case "tdma":
			cfg.MAC = vanetsim.MACTDMA
		case "802.11", "dcf", "80211":
			cfg.MAC = vanetsim.MAC80211
		default:
			return fmt.Errorf("unknown MAC %q", *macName)
		}
	default:
		return fmt.Errorf("unknown trial %d", *trial)
	}
	if *duration > 0 {
		cfg.Duration = vanetsim.Seconds(*duration)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Shards = *shards
	cfg.CollectTrace = *traceOut != ""
	cfg.Telemetry = *stats || *statsJSN != "" || *statsPrm != ""
	cfg.Check = *checkInv
	cfg.Spans = *spansOut != "" || *spansChr != ""
	if *burstP < 0 || *burstP > 1 {
		return fmt.Errorf("-burst-loss %v outside [0, 1]", *burstP)
	}
	cfg.Faults = vanetsim.FaultPlan{
		Bernoulli:     vanetsim.FaultBernoulli{LossProb: *loss, BitErrorRate: *ber},
		Burst:         vanetsim.BurstFault(*burstP, *burstLen),
		ShadowSigmaDB: *shadow,
		Outages:       outages,
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if *animate {
		cfg.AnimInterval = 2 // seconds per frame
	}

	r := vanetsim.RunTrial(cfg)
	if *checkInv {
		if n := len(r.Violations); n > 0 {
			for i, v := range r.Violations {
				fmt.Fprintln(os.Stderr, "vanetsim:", v.Error())
				for _, line := range v.Trail {
					fmt.Fprintln(os.Stderr, "vanetsim:   trail:", line)
				}
				if i == 9 && n > 10 {
					fmt.Fprintf(os.Stderr, "vanetsim: ... and %d more\n", n-10)
					break
				}
			}
			return fmt.Errorf("%d invariant violation(s)", n)
		}
		fmt.Fprintf(out, "invariant check: clean (%s)\n", cfg.Name)
	}

	// emitStats closes out every output mode: exporter files always, the
	// text summary only on -stats.
	emitStats := func() error {
		if r.Telemetry == nil {
			return nil
		}
		if *statsJSN != "" {
			if err := writeSnapshot(*statsJSN, r.Telemetry.NDJSON); err != nil {
				return err
			}
		}
		if *statsPrm != "" {
			if err := writeSnapshot(*statsPrm, r.Telemetry.Prometheus); err != nil {
				return err
			}
		}
		if *stats {
			fmt.Fprintln(out, "\nTelemetry:")
			fmt.Fprint(out, r.Telemetry.FormatText())
		}
		return nil
	}

	if *traceOut != "" {
		if err := vanetsim.WriteTrace(*traceOut, r); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace records to %s\n", len(r.Trace), *traceOut)
	}
	if *spansOut != "" {
		if err := vanetsim.WriteSpans(*spansOut, r.Spans); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d span events to %s\n", len(r.Spans), *spansOut)
	}
	if *spansChr != "" {
		if err := vanetsim.WriteSpansChrome(*spansChr, r.Spans); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d span events (chrome trace) to %s\n", len(r.Spans), *spansChr)
	}

	if *csvFig != "" {
		f, err := figureByName(r, *csvFig)
		if err != nil {
			return err
		}
		fmt.Fprint(out, f.CSV())
		return emitStats()
	}
	if *asciiFig != "" {
		f, err := figureByName(r, *asciiFig)
		if err != nil {
			return err
		}
		fmt.Fprint(out, f.ASCII(70, 16))
		return emitStats()
	}

	if *animate && r.Anim != nil {
		vp := r.Anim.AutoViewport(30)
		if err := r.Anim.Play(out, vp, 72, 18, 2); err != nil {
			return err
		}
		fmt.Fprint(out, r.Anim.Legend())
		return emitStats()
	}

	fmt.Fprintf(out, "%v — %s MAC, %d-byte packets, %.0f s simulated\n\n",
		cfg.Name, cfg.MAC, cfg.PacketSize, float64(cfg.Duration))
	fmt.Fprintln(out, "One-way delay (per receiving vehicle):")
	fmt.Fprint(out, vanetsim.FormatDelayTable(vanetsim.DelayTable(r)))
	fmt.Fprintln(out, "\nThroughput (per platoon, 95% batch-means CI):")
	fmt.Fprint(out, vanetsim.FormatThroughputTable(vanetsim.ThroughputTable(r)))
	fmt.Fprintln(out, "\nStopping-distance analysis (initial packet, platoon 1):")
	fmt.Fprint(out, vanetsim.FormatStoppingTable(vanetsim.StoppingTable(r)))
	return emitStats()
}

// runDense executes and summarises the dense multi-lane scaling scenario.
func runDense(cfg vanetsim.DenseHighwayConfig, stats bool, statsJSON, statsProm string, out io.Writer) error {
	r, err := vanetsim.RunDenseHighway(cfg)
	if err != nil {
		return err
	}
	if cfg.Check {
		if n := len(r.Violations); n > 0 {
			for _, v := range r.Violations {
				fmt.Fprintln(os.Stderr, "vanetsim:", v.Error())
			}
			return fmt.Errorf("%d invariant violation(s)", n)
		}
		fmt.Fprintln(out, "invariant check: clean (dense highway)")
	}
	culling := "culled"
	if cfg.DisableCulling {
		culling = "full scan"
	}
	fmt.Fprintf(out, "dense highway — %v MAC, %d vehicles, %d lanes, %d platoons (%s), %.0f s simulated in %.2f s wall\n\n",
		cfg.MAC, cfg.Vehicles, cfg.Lanes, r.Platoons, culling, float64(cfg.Duration), r.WallSeconds)
	notified, worst := 0, vanetsim.Seconds(0)
	for _, ind := range r.Indications {
		if ind.IndicationDelay >= 0 {
			notified++
			if ind.IndicationDelay > worst {
				worst = ind.IndicationDelay
			}
		}
	}
	fmt.Fprintf(out, "brake indications: %d/%d followers notified, worst delay %.4f s\n",
		notified, len(r.Indications), float64(worst))
	fmt.Fprintf(out, "collisions: %d rear-end, %d corrupted frames (MAC contention)\n", r.Collisions, r.RxCollided)
	safetyPct, beaconPct := 0.0, 0.0
	if r.SafetySent > 0 {
		safetyPct = 100 * float64(r.SafetyReceived) / float64(r.SafetySent)
	}
	if r.BeaconSent > 0 {
		beaconPct = 100 * float64(r.BeaconReceived) / float64(r.BeaconSent)
	}
	fmt.Fprintf(out, "safety traffic: %d sent, %d delivered (%.1f%%)\n", r.SafetySent, r.SafetyReceived, safetyPct)
	fmt.Fprintf(out, "beacon traffic: %d sent, %d delivered (%.1f%%)\n", r.BeaconSent, r.BeaconReceived, beaconPct)
	fmt.Fprintf(out, "channel: %d arrivals offered, %d delivered, %d frequency-filtered\n",
		r.Channel.Offered, r.Channel.Delivered, r.Channel.FilteredFreq)
	if r.Telemetry != nil {
		if statsJSON != "" {
			if err := writeSnapshot(statsJSON, r.Telemetry.NDJSON); err != nil {
				return err
			}
		}
		if statsProm != "" {
			if err := writeSnapshot(statsProm, r.Telemetry.Prometheus); err != nil {
				return err
			}
		}
		if stats {
			fmt.Fprintln(out, "\nTelemetry:")
			fmt.Fprint(out, r.Telemetry.FormatText())
		}
	}
	return nil
}

// outageList collects repeated -outage flags.
type outageList []vanetsim.FaultOutage

func (l *outageList) String() string {
	var parts []string
	for _, o := range *l {
		parts = append(parts, fmt.Sprintf("%v:%g:%g", o.Node, float64(o.Start), float64(o.Duration)))
	}
	return strings.Join(parts, ",")
}

func (l *outageList) Set(s string) error {
	o, err := vanetsim.ParseFaultOutage(s)
	if err != nil {
		return err
	}
	*l = append(*l, o)
	return nil
}

// writeSnapshot streams one telemetry export format to path.
func writeSnapshot(path string, export func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// figureByName resolves "Fig5".."Fig15" against the trial the figure
// belongs to (any trial's result can render any figure id; the caller is
// responsible for pairing them the way the paper does).
func figureByName(r *vanetsim.TrialResult, name string) (vanetsim.Figure, error) {
	figs := map[string]func(*vanetsim.TrialResult) vanetsim.Figure{
		"fig5": vanetsim.Fig5, "fig6": vanetsim.Fig6, "fig7": vanetsim.Fig7,
		"fig8": vanetsim.Fig8, "fig9": vanetsim.Fig9, "fig10": vanetsim.Fig10,
		"fig11": vanetsim.Fig11, "fig12": vanetsim.Fig12, "fig13": vanetsim.Fig13,
		"fig14": vanetsim.Fig14, "fig15": vanetsim.Fig15,
	}
	fn, ok := figs[strings.ToLower(name)]
	if !ok {
		return vanetsim.Figure{}, fmt.Errorf("unknown figure %q (want Fig5..Fig15)", name)
	}
	return fn(r), nil
}
