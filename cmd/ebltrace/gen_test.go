package main

import (
	"testing"

	"vanetsim"
)

// genTrace runs a short trial with trace collection and writes it to path.
func genTrace(t *testing.T, path string) {
	t.Helper()
	cfg := vanetsim.Trial1()
	cfg.Duration = vanetsim.Seconds(40)
	cfg.CollectTrace = true
	r := vanetsim.RunTrial(cfg)
	if err := vanetsim.WriteTrace(path, r); err != nil {
		t.Fatal(err)
	}
}
