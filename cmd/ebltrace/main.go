// Command ebltrace reproduces the paper's offline methodology: it parses
// an ns-2-style trace file (written by `vanetsim -trace`) and computes the
// one-way delay and throughput statistics from the raw send/receive
// events, independently of the simulator's online bookkeeping.
//
//	vanetsim -trial 1 -trace t1.tr
//	ebltrace t1.tr
//	vanetsim -trial 1 -trace /dev/stdout | ebltrace -        # stream from stdin
//	ebltrace -format chrome t1.tr > t1.json                  # chrome://tracing view
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"vanetsim"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ebltrace", flag.ContinueOnError)
	bin := fs.Float64("bin", 0.5, "throughput bin width in seconds")
	stats := fs.Bool("stats", false, "print a telemetry-style summary of the trace records")
	statsJSN := fs.String("stats-json", "", "write the trace summary as NDJSON to this path")
	format := fs.String("format", "report", "output format: report (delay/throughput tables) or chrome (trace-event JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ebltrace [-bin seconds] [-stats] [-stats-json path] [-format report|chrome] <trace-file|->")
	}
	src := in
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	recs, err := trace.ReadAll(src)
	if err != nil {
		return err
	}
	switch *format {
	case "report":
	case "chrome":
		return writeChromeTrace(out, recs)
	default:
		return fmt.Errorf("unknown -format %q (want report or chrome)", *format)
	}
	fmt.Fprintf(out, "%d trace records\n\n", len(recs))

	if *stats || *statsJSN != "" {
		snap := traceSnapshot(recs)
		if *statsJSN != "" {
			jf, err := os.Create(*statsJSN)
			if err != nil {
				return err
			}
			if err := snap.NDJSON(jf); err != nil {
				jf.Close()
				return err
			}
			if err := jf.Close(); err != nil {
				return err
			}
		}
		if *stats {
			fmt.Fprintln(out, "Trace telemetry:")
			fmt.Fprint(out, snap.FormatText())
			fmt.Fprintln(out)
		}
	}

	delays := trace.OneWayDelays(recs)
	keys := make([]trace.FlowKey, 0, len(delays))
	for k := range delays {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	fmt.Fprintln(out, "One-way delay per flow (computed from the trace):")
	fmt.Fprintf(out, "%-18s %6s %9s %9s %9s %9s %9s\n", "flow", "n", "avg(s)", "min(s)", "max(s)", "first(s)", "steady(s)")
	for _, k := range keys {
		s := delays[k]
		sm := s.Summary()
		first, _ := s.First()
		_, steady := s.SteadyState()
		flow := fmt.Sprintf("%v:%d->%v:%d", k.Src, k.SrcPt, k.Dst, k.DstPt)
		fmt.Fprintf(out, "%-18s %6d %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			flow, sm.N, sm.Mean, sm.Min, sm.Max, float64(first), steady)
	}

	fmt.Fprintln(out, "\nThroughput per receiving node:")
	fmt.Fprintf(out, "%-6s %10s %10s %10s %12s %8s\n", "node", "avg(Mbps)", "min(Mbps)", "max(Mbps)", "95%CI(Mbps)", "relprec")
	tps := trace.FlowThroughput(recs, sim.Time(*bin))
	nodes := make([]packet.NodeID, 0, len(tps))
	for n := range tps {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	end := lastTime(recs)
	for _, n := range nodes {
		tp := tps[n]
		sm := tp.Summary(end)
		ci := tp.CI(end, 10, 0.95)
		fmt.Fprintf(out, "%-6v %10.4f %10.4f %10.4f %12.4f %7.1f%%\n",
			n, sm.Mean, sm.Min, sm.Max, ci.HalfWidth, ci.RelPrecision()*100)
	}
	return nil
}

// opNames maps trace ops to metric-name slugs.
var opNames = map[trace.Op]string{
	trace.Send: "send", trace.Recv: "recv", trace.Drop: "drop", trace.Forward: "forward",
}

// traceSnapshot summarises a trace as a telemetry snapshot: record counts
// by operation × layer, drop reasons, packet types, and the covered time
// span — the same shapes the live registry reports, recovered offline.
func traceSnapshot(recs []trace.Record) *vanetsim.Telemetry {
	reg := vanetsim.NewTelemetryRegistry()
	reg.Counter("trace/records_total", "trace records parsed").Add(uint64(len(recs)))
	for _, r := range recs {
		op := opNames[r.Op]
		if op == "" {
			op = "other"
		}
		reg.Counter("trace/"+op+"_"+strings.ToLower(string(r.Layer)),
			"trace records by operation and layer").Inc()
		reg.Counter("trace/type_"+strings.ToLower(r.Type),
			"trace records by packet type").Inc()
		if r.Op == trace.Drop && r.Reason != "" {
			reg.Counter("trace/drop_reason_"+strings.ToLower(r.Reason),
				"drops by recorded reason").Inc()
		}
	}
	reg.Gauge("trace/span_s", "time covered by the trace").Set(float64(lastTime(recs)))
	return reg.Snapshot()
}

func lastTime(recs []trace.Record) sim.Time {
	var end sim.Time
	for _, r := range recs {
		if r.At > end {
			end = r.At
		}
	}
	return end
}

// writeChromeTrace converts parsed trace records to Chrome trace-event JSON
// (chrome://tracing / Perfetto): one instant event per record on the node's
// thread track, plus one complete ("X") "flight" event per agent-level
// send/receive pair showing the packet's one-way flight on the receiver's
// track. Timestamps are microseconds, as the format requires.
func writeChromeTrace(out io.Writer, recs []trace.Record) error {
	type key struct {
		uid uint64
		dst packet.NodeID
	}
	sends := make(map[key]sim.Time)
	us := func(t sim.Time) float64 { return float64(t) * 1e6 }
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		_, err := fmt.Fprintf(out, sep+format, args...)
		return err
	}
	if _, err := fmt.Fprint(out, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for _, r := range recs {
		if r.Layer == trace.LayerAgent {
			k := key{r.UID, r.Dst}
			switch r.Op {
			case trace.Send:
				sends[k] = r.At
			case trace.Recv:
				if at, ok := sends[k]; ok {
					delete(sends, k)
					if err := emit(`{"name":"flight","cat":"agt","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"uid":%d,"type":%q,"size":%d}}`,
						us(at), us(r.At-at), int32(r.Node), r.UID, r.Type, r.Size); err != nil {
						return err
					}
				}
			}
		}
		name := opNames[r.Op]
		if name == "" {
			name = "other"
		}
		name += " " + string(r.Layer)
		if r.Op == trace.Drop && r.Reason != "" {
			name += "/" + r.Reason
		}
		if err := emit(`{"name":%q,"cat":%q,"ph":"i","ts":%.3f,"pid":1,"tid":%d,"s":"t","args":{"uid":%d,"type":%q,"size":%d}}`,
			name, strings.ToLower(string(r.Layer)), us(r.At), int32(r.Node), r.UID, r.Type, r.Size); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(out, "\n]}\n")
	return err
}
