// Command ebltrace reproduces the paper's offline methodology: it parses
// an ns-2-style trace file (written by `vanetsim -trace`) and computes the
// one-way delay and throughput statistics from the raw send/receive
// events, independently of the simulator's online bookkeeping.
//
//	vanetsim -trial 1 -trace t1.tr
//	ebltrace t1.tr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"vanetsim"
	"vanetsim/internal/packet"
	"vanetsim/internal/sim"
	"vanetsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ebltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ebltrace", flag.ContinueOnError)
	bin := fs.Float64("bin", 0.5, "throughput bin width in seconds")
	stats := fs.Bool("stats", false, "print a telemetry-style summary of the trace records")
	statsJSN := fs.String("stats-json", "", "write the trace summary as NDJSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ebltrace [-bin seconds] [-stats] [-stats-json path] <trace-file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d trace records\n\n", len(recs))

	if *stats || *statsJSN != "" {
		snap := traceSnapshot(recs)
		if *statsJSN != "" {
			jf, err := os.Create(*statsJSN)
			if err != nil {
				return err
			}
			if err := snap.NDJSON(jf); err != nil {
				jf.Close()
				return err
			}
			if err := jf.Close(); err != nil {
				return err
			}
		}
		if *stats {
			fmt.Fprintln(out, "Trace telemetry:")
			fmt.Fprint(out, snap.FormatText())
			fmt.Fprintln(out)
		}
	}

	delays := trace.OneWayDelays(recs)
	keys := make([]trace.FlowKey, 0, len(delays))
	for k := range delays {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	fmt.Fprintln(out, "One-way delay per flow (computed from the trace):")
	fmt.Fprintf(out, "%-18s %6s %9s %9s %9s %9s %9s\n", "flow", "n", "avg(s)", "min(s)", "max(s)", "first(s)", "steady(s)")
	for _, k := range keys {
		s := delays[k]
		sm := s.Summary()
		first, _ := s.First()
		_, steady := s.SteadyState()
		flow := fmt.Sprintf("%v:%d->%v:%d", k.Src, k.SrcPt, k.Dst, k.DstPt)
		fmt.Fprintf(out, "%-18s %6d %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			flow, sm.N, sm.Mean, sm.Min, sm.Max, float64(first), steady)
	}

	fmt.Fprintln(out, "\nThroughput per receiving node:")
	fmt.Fprintf(out, "%-6s %10s %10s %10s %12s %8s\n", "node", "avg(Mbps)", "min(Mbps)", "max(Mbps)", "95%CI(Mbps)", "relprec")
	tps := trace.FlowThroughput(recs, sim.Time(*bin))
	nodes := make([]packet.NodeID, 0, len(tps))
	for n := range tps {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	end := lastTime(recs)
	for _, n := range nodes {
		tp := tps[n]
		sm := tp.Summary(end)
		ci := tp.CI(end, 10, 0.95)
		fmt.Fprintf(out, "%-6v %10.4f %10.4f %10.4f %12.4f %7.1f%%\n",
			n, sm.Mean, sm.Min, sm.Max, ci.HalfWidth, ci.RelPrecision()*100)
	}
	return nil
}

// opNames maps trace ops to metric-name slugs.
var opNames = map[trace.Op]string{
	trace.Send: "send", trace.Recv: "recv", trace.Drop: "drop", trace.Forward: "forward",
}

// traceSnapshot summarises a trace as a telemetry snapshot: record counts
// by operation × layer, drop reasons, packet types, and the covered time
// span — the same shapes the live registry reports, recovered offline.
func traceSnapshot(recs []trace.Record) *vanetsim.Telemetry {
	reg := vanetsim.NewTelemetryRegistry()
	reg.Counter("trace/records_total", "trace records parsed").Add(uint64(len(recs)))
	for _, r := range recs {
		op := opNames[r.Op]
		if op == "" {
			op = "other"
		}
		reg.Counter("trace/"+op+"_"+strings.ToLower(string(r.Layer)),
			"trace records by operation and layer").Inc()
		reg.Counter("trace/type_"+strings.ToLower(r.Type),
			"trace records by packet type").Inc()
		if r.Op == trace.Drop && r.Reason != "" {
			reg.Counter("trace/drop_reason_"+strings.ToLower(r.Reason),
				"drops by recorded reason").Inc()
		}
	}
	reg.Gauge("trace/span_s", "time covered by the trace").Set(float64(lastTime(recs)))
	return reg.Snapshot()
}

func lastTime(recs []trace.Record) sim.Time {
	var end sim.Time
	for _, r := range recs {
		if r.At > end {
			end = r.At
		}
	}
	return end
}
