package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is a tiny hand-written trace: two sends, two receives.
const sampleTrace = `s 1.000000 _0_ AGT --- 1 tcp 1040 [0:100 1:200] 1
r 1.250000 _1_ AGT --- 1 tcp 1040 [0:100 1:200] 1
s 2.000000 _0_ AGT --- 2 tcp 1040 [0:100 1:200] 2
r 2.300000 _1_ AGT --- 2 tcp 1040 [0:100 1:200] 2
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.tr")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeSampleTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{writeTemp(t, sampleTrace)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4 trace records") {
		t.Fatalf("record count wrong:\n%s", out)
	}
	if !strings.Contains(out, "0:100->1:200") {
		t.Fatalf("flow missing:\n%s", out)
	}
	// Average of 0.25 and 0.30 = 0.275.
	if !strings.Contains(out, "0.2750") {
		t.Fatalf("avg delay wrong:\n%s", out)
	}
	if !strings.Contains(out, "Throughput per receiving node") {
		t.Fatal("throughput section missing")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("no args should fail")
	}
	if err := run([]string{"/nonexistent/file.tr"}, &strings.Builder{}); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run([]string{writeTemp(t, "garbage\n")}, &strings.Builder{}); err == nil {
		t.Fatal("malformed trace should fail")
	}
}

func TestEndToEndWithGeneratedTrace(t *testing.T) {
	// vanetsim -trace | ebltrace round trip, in-process.
	path := filepath.Join(t.TempDir(), "gen.tr")
	genTrace(t, path)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "One-way delay per flow") {
		t.Fatal("analysis incomplete")
	}
}
