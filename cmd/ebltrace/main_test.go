package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is a tiny hand-written trace: two sends, two receives.
const sampleTrace = `s 1.000000 _0_ AGT --- 1 tcp 1040 [0:100 1:200] 1
r 1.250000 _1_ AGT --- 1 tcp 1040 [0:100 1:200] 1
s 2.000000 _0_ AGT --- 2 tcp 1040 [0:100 1:200] 2
r 2.300000 _1_ AGT --- 2 tcp 1040 [0:100 1:200] 2
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.tr")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeSampleTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{writeTemp(t, sampleTrace)}, strings.NewReader(""), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4 trace records") {
		t.Fatalf("record count wrong:\n%s", out)
	}
	if !strings.Contains(out, "0:100->1:200") {
		t.Fatalf("flow missing:\n%s", out)
	}
	// Average of 0.25 and 0.30 = 0.275.
	if !strings.Contains(out, "0.2750") {
		t.Fatalf("avg delay wrong:\n%s", out)
	}
	if !strings.Contains(out, "Throughput per receiving node") {
		t.Fatal("throughput section missing")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("no args should fail")
	}
	if err := run([]string{"/nonexistent/file.tr"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := run([]string{writeTemp(t, "garbage\n")}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("malformed trace should fail")
	}
	if err := run([]string{"-format", "bogus", "-"}, strings.NewReader(sampleTrace), &strings.Builder{}); err == nil {
		t.Fatal("unknown format should fail")
	}
}

func TestStdinDash(t *testing.T) {
	// "-" reads the trace from the in reader instead of a file.
	var sb strings.Builder
	if err := run([]string{"-"}, strings.NewReader(sampleTrace), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4 trace records") {
		t.Fatalf("stdin trace not parsed:\n%s", out)
	}
	if !strings.Contains(out, "0:100->1:200") {
		t.Fatalf("flow missing from stdin analysis:\n%s", out)
	}
}

func TestChromeFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-format", "chrome", "-"}, strings.NewReader(sampleTrace), &sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, sb.String())
	}
	// 4 instants plus 2 send/recv flight pairs.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("want 6 trace events, got %d", len(doc.TraceEvents))
	}
	flights := 0
	for _, e := range doc.TraceEvents {
		if e.Name != "flight" {
			continue
		}
		flights++
		if e.Ph != "X" || e.Dur <= 0 || e.Tid != 1 {
			t.Fatalf("bad flight event: %+v", e)
		}
	}
	if flights != 2 {
		t.Fatalf("want 2 flight events, got %d", flights)
	}
}

func TestEndToEndWithGeneratedTrace(t *testing.T) {
	// vanetsim -trace | ebltrace round trip, in-process.
	path := filepath.Join(t.TempDir(), "gen.tr")
	genTrace(t, path)
	var sb strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "One-way delay per flow") {
		t.Fatal("analysis incomplete")
	}
}
