package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportCoversEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-trial report is slow")
	}
	var sb strings.Builder
	report(&sb)
	out := sb.String()
	for _, want := range []string{
		"trial1", "trial2", "trial3",
		"One-way delay:", "Throughput:",
		"packet size (trial 1 vs trial 2)",
		"MAC type (trial 1 vs trial 3)",
		"stopping-distance analysis",
		"Fig5", "Fig7", "Fig8", "Fig10", "Fig11", "Fig15",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestToleranceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive replication report is slow")
	}
	// A generous tolerance and small budget keep the runtime bounded; the
	// structure of the report does not depend on either.
	var sb strings.Builder
	if err := run([]string{"-tolerance", "0.4", "-max-reps", "6"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Adaptive-precision replication",
		"sequential stopping on all four metrics",
		"tolerance ±40%",
		"achieved ±",
		"CRN paired comparison: TDMA (trial1) vs 802.11 (trial3)",
		"CRN paired comparison: 802.11 1000 B vs 500 B",
		"replications (95% CIs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tolerance report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Figure shapes") {
		t.Fatal("-tolerance must print only the adaptive-precision report")
	}
	// The report must be byte-identical at any -j (the engine's
	// determinism contract at the CLI surface).
	var sb8 strings.Builder
	if err := run([]string{"-tolerance", "0.4", "-max-reps", "6", "-j", "8"}, &sb8); err != nil {
		t.Fatal(err)
	}
	if sb8.String() != out {
		t.Fatal("tolerance report differs between -j defaults and -j 8")
	}
}

func TestToleranceFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-max-reps", "8"}, &sb); err == nil {
		t.Fatal("-max-reps without -tolerance accepted")
	}
	if err := run([]string{"-tolerance", "-0.1"}, &sb); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestDegradationReport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "deg.csv")
	var sb strings.Builder
	if err := run([]string{"-degrade", "-degrade-csv", csvPath}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Degradation under channel loss", "TDMA MAC", "802.11 MAC",
		"margin_m", "crash region",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("degradation report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Figure shapes") {
		t.Fatal("-degrade must print only the degradation report")
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// One header + 7 loss rates x 2 MACs.
	if len(lines) != 15 {
		t.Fatalf("csv has %d lines, want 15:\n%s", len(lines), raw)
	}
	if lines[0] != "mac,loss_prob,avg_delay_s,max_delay_s,first_delay_s,throughput_mbps,tcp_retransmits,injected_drops,safety_margin_m,safe" {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "TDMA,0,") || !strings.HasPrefix(lines[8], "802.11,0,") {
		t.Fatalf("csv rows out of order:\n%s", raw)
	}
}
