package main

import (
	"strings"
	"testing"
)

func TestReportCoversEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-trial report is slow")
	}
	var sb strings.Builder
	report(&sb)
	out := sb.String()
	for _, want := range []string{
		"trial1", "trial2", "trial3",
		"One-way delay:", "Throughput:",
		"packet size (trial 1 vs trial 2)",
		"MAC type (trial 1 vs trial 3)",
		"stopping-distance analysis",
		"Fig5", "Fig7", "Fig8", "Fig10", "Fig11", "Fig15",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
