package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportCoversEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-trial report is slow")
	}
	var sb strings.Builder
	report(&sb)
	out := sb.String()
	for _, want := range []string{
		"trial1", "trial2", "trial3",
		"One-way delay:", "Throughput:",
		"packet size (trial 1 vs trial 2)",
		"MAC type (trial 1 vs trial 3)",
		"stopping-distance analysis",
		"Fig5", "Fig7", "Fig8", "Fig10", "Fig11", "Fig15",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestDegradationReport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "deg.csv")
	var sb strings.Builder
	if err := run([]string{"-degrade", "-degrade-csv", csvPath}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Degradation under channel loss", "TDMA MAC", "802.11 MAC",
		"margin_m", "crash region",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("degradation report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Figure shapes") {
		t.Fatal("-degrade must print only the degradation report")
	}
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// One header + 7 loss rates x 2 MACs.
	if len(lines) != 15 {
		t.Fatalf("csv has %d lines, want 15:\n%s", len(lines), raw)
	}
	if lines[0] != "mac,loss_prob,avg_delay_s,max_delay_s,first_delay_s,throughput_mbps,tcp_retransmits,injected_drops,safety_margin_m,safe" {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "TDMA,0,") || !strings.HasPrefix(lines[8], "802.11,0,") {
		t.Fatalf("csv rows out of order:\n%s", raw)
	}
}
